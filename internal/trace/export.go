package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes one or more series as aligned CSV columns. Each series is
// resampled onto the union of sample times via linear interpolation, so the
// output always has a single monotone "t" column followed by one column per
// series (header "name[unit]").
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: WriteCSV needs at least one series")
	}
	// Union of all sample times.
	seen := make(map[float64]struct{})
	var times []float64
	for _, s := range series {
		for _, t := range s.times {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				times = append(times, t)
			}
		}
	}
	if len(times) == 0 {
		return ErrEmpty
	}
	sortFloat64s(times)

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "t")
	for _, s := range series {
		name := s.Name
		if name == "" {
			name = "value"
		}
		if s.Unit != "" {
			name += "[" + s.Unit + "]"
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i, s := range series {
			v, err := s.Interp(t)
			if err != nil {
				return err
			}
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortFloat64s(xs []float64) {
	// Insertion-free: use sort.Float64s via small wrapper to avoid extra import churn.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ASCIIPlot renders the series as a crude fixed-size ASCII chart suitable
// for terminal reports. width and height are in character cells; values are
// linearly binned in both axes.
func ASCIIPlot(s *Series, width, height int) string {
	if s.Len() == 0 || width < 2 || height < 2 {
		return "(empty)\n"
	}
	minV, _ := s.Min()
	maxV, _ := s.Max()
	if maxV == minV {
		maxV = minV + 1
	}
	t0, _ := s.First()
	t1, _ := s.Last()
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i := 0; i < s.Len(); i++ {
		t, v := s.At(i)
		x := int(float64(width-1) * (t - t0) / (t1 - t0))
		y := int(float64(height-1) * (v - minV) / (maxV - minV))
		row := height - 1 - y
		if x >= 0 && x < width && row >= 0 && row < height {
			grid[row][x] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]  min=%.4g max=%.4g\n", s.Name, s.Unit, minV, maxV)
	for _, line := range grid {
		b.WriteString("|")
		b.Write(line)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, " t: %.4g .. %.4g s\n", t0, t1)
	return b.String()
}

// Sparkline renders the series as a single-line unicode sparkline with n
// buckets (bucket value = mean of samples falling in the bucket).
func Sparkline(s *Series, n int) string {
	if s.Len() == 0 || n < 1 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	t0, _ := s.First()
	t1, _ := s.Last()
	if t1 == t0 {
		t1 = t0 + 1
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for i := 0; i < s.Len(); i++ {
		t, v := s.At(i)
		b := int(float64(n) * (t - t0) / (t1 - t0))
		if b >= n {
			b = n - 1
		}
		sums[b] += v
		counts[b]++
	}
	minV, maxV := 0.0, 0.0
	first := true
	vals := make([]float64, n)
	last := 0.0
	for i := range sums {
		if counts[i] > 0 {
			last = sums[i] / float64(counts[i])
		}
		vals[i] = last
		if first || last < minV {
			minV = last
		}
		if first || last > maxV {
			maxV = last
		}
		first = false
	}
	if maxV == minV {
		maxV = minV + 1
	}
	var b strings.Builder
	for _, v := range vals {
		idx := int(float64(len(levels)-1) * (v - minV) / (maxV - minV))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
