package study

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"pnps/internal/batch"
	"pnps/internal/buffer"
	"pnps/internal/pv"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/testutil"
)

// supercapVsIdeal alternates runs between the ideal 47 mF capacitor and
// a real supercap bank with ESR and leakage — the paper's storage
// comparison as a Monte-Carlo campaign.
func supercapVsIdeal(k int, _ int64, s *scenario.Spec) {
	if k%2 == 0 {
		s.Storage = sim.IdealCap{Farads: 47e-3}
		return
	}
	s.Storage = sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
	})
}

// TestCampaignDeterministicAcrossWorkers: the supercap-vs-ideal campaign
// must produce bit-identical outcomes at 1, 2 and 8 workers (CI runs
// this under -race).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 20
	mk := func(workers int) *Outcome {
		out, err := Campaign{
			Base: base, Runs: 6, Seed: 99, Vary: supercapVsIdeal, Workers: workers,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		testutil.RequireEqual(t, fmt.Sprintf("workers=%d summary", workers), got.Summary, ref.Summary)
		for i := range ref.Results {
			testutil.RequireEqualResults(t, fmt.Sprintf("workers=%d run %d", workers, i),
				got.Results[i].Result, ref.Results[i].Result)
		}
	}
}

// TestCampaignBatchedEngineBitIdentical: a campaign executed on the
// lockstep structure-of-arrays engine must reproduce the scalar
// campaign bit for bit — summary, groups, merged histogram and every
// per-run result — across pack boundaries (9 runs at width 4), at the
// default width, at a width wider than the run count (16), and at any
// worker count. The Vary hook mixes storage families, so packs hold
// heterogeneous lanes.
func TestCampaignBatchedEngineBitIdentical(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 15
	mk := func(engine string, width, workers int) *Outcome {
		out, err := Campaign{
			Base: base, Runs: 9, Seed: 23, Vary: supercapVsIdeal,
			Group: func(k int, _ int64, _ scenario.Spec) string {
				if k%2 == 0 {
					return "ideal"
				}
				return "supercap"
			},
			Workers: workers, Engine: engine, BatchWidth: width,
			VCHistBins: 32, VCHistLo: 4.0, VCHistHi: 6.0,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("engine=%q width=%d workers=%d: %v", engine, width, workers, err)
		}
		return out
	}
	ref := mk("scalar", 0, 1)
	for _, c := range []struct{ width, workers int }{{4, 1}, {0, 2}, {16, 1}} {
		got := mk("batched", c.width, c.workers)
		label := fmt.Sprintf("batched w=%d workers=%d", c.width, c.workers)
		testutil.RequireEqual(t, label+" summary", got.Summary, ref.Summary)
		for i := range ref.Groups {
			testutil.RequireEqual(t, fmt.Sprintf("%s group %q", label, ref.Groups[i].Name),
				got.Groups[i], ref.Groups[i])
		}
		for i, w := range ref.VCHistogram.Bins {
			testutil.RequireEqual(t, fmt.Sprintf("%s histogram bin %d", label, i),
				got.VCHistogram.Bins[i], w)
		}
		for i := range ref.Results {
			testutil.RequireEqualResults(t, fmt.Sprintf("%s run %d", label, i),
				got.Results[i].Result, ref.Results[i].Result)
		}
	}
	if _, err := (Campaign{Base: base, Runs: 1, Engine: "warp"}).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine accepted: %v", err)
	}
}

// TestCampaignTraceFreeDeterministicAndBounded: the default (trace-
// free) campaign retains no series on any run, still reports real
// within-band stability and supply envelopes, and its full aggregate —
// including the merged dwell-time voltage histogram — is bit-identical
// at 1, 2 and 8 workers.
func TestCampaignTraceFreeDeterministicAndBounded(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 15
	mk := func(workers int) *Outcome {
		out, err := Campaign{
			Base: base, Runs: 8, Seed: 5, Vary: supercapVsIdeal, Workers: workers,
			Group: func(k int, _ int64, _ scenario.Spec) string {
				if k%2 == 0 {
					return "ideal"
				}
				return "supercap"
			},
			VCHistBins: 64, VCHistLo: 4.0, VCHistHi: 6.0,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	ref := mk(1)
	for _, r := range ref.Results {
		if r.Result.VC != nil {
			t.Fatalf("run %d retained a series in a trace-free campaign", r.Index)
		}
		if s := r.Result.StabilityWithin(0.05); math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("run %d stability %.3f — online band missing or broken", r.Index, s)
		}
	}
	if n := ref.Summary.Stability.N; n != 8 {
		t.Fatalf("stability aggregated over %d runs, want 8", n)
	}
	if ref.Summary.Stability.P25 > ref.Summary.Stability.P75 {
		t.Error("stability quantile band inverted")
	}
	if len(ref.Groups) != 2 || ref.Groups[0].Name != "ideal" || ref.Groups[1].Name != "supercap" {
		t.Fatalf("groups = %+v, want [ideal supercap] in first-occurrence order", ref.Groups)
	}
	if ref.Groups[0].Summary.Runs+ref.Groups[1].Summary.Runs != ref.Summary.Runs {
		t.Error("group run counts do not partition the campaign")
	}
	if ref.VCHistogram == nil || ref.VCHistogram.Total() <= 0 {
		t.Fatal("merged VC histogram missing")
	}
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		testutil.RequireEqual(t, fmt.Sprintf("workers=%d summary", workers), got.Summary, ref.Summary)
		for i := range ref.Groups {
			testutil.RequireEqual(t, fmt.Sprintf("workers=%d group %q", workers, ref.Groups[i].Name),
				got.Groups[i], ref.Groups[i])
		}
		for i, w := range ref.VCHistogram.Bins {
			testutil.RequireEqual(t, fmt.Sprintf("workers=%d histogram bin %d", workers, i),
				got.VCHistogram.Bins[i], w)
		}
	}
}

// TestCampaignCustomBandsKeepSummary: overriding StabilityBands with a
// list that omits ±5% must not poison the headline Summary.Stability —
// the summary band is always accumulated alongside the custom ones.
func TestCampaignCustomBandsKeepSummary(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 10
	out, err := Campaign{
		Base: base, Runs: 3, Seed: 9, StabilityBands: []float64{0.02},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.Summary.Stability.Mean) {
		t.Fatal("custom bands without 0.05 poisoned Summary.Stability with NaN")
	}
	for _, r := range out.Results {
		if s := r.Result.StabilityWithin(0.02); math.IsNaN(s) {
			t.Fatal("requested custom band did not run")
		}
		if s := r.Result.StabilityWithin(0.05); math.IsNaN(s) {
			t.Fatal("summary band missing from run")
		}
	}
}

// TestCampaignStabilityMatchesKeepSeries: the online stability the
// trace-free campaign aggregates is bit-identical to the series-derived
// stability of the same campaign with KeepSeries.
func TestCampaignStabilityMatchesKeepSeries(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 15
	mk := func(keep bool) *Outcome {
		out, err := Campaign{Base: base, Runs: 4, Seed: 11, KeepSeries: keep}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	free, kept := mk(false), mk(true)
	if kept.Results[0].Result.VC == nil {
		t.Fatal("KeepSeries campaign did not retain series")
	}
	testutil.RequireEqual(t, "trace-free vs series-derived stability",
		free.Summary.Stability, kept.Summary.Stability)
	if free.Summary.MinVC != kept.Summary.MinVC {
		t.Error("trace-free MinVC diverged from series-retaining campaign")
	}
}

// TestCampaignExport: the CSV has one row per run with the group label,
// and the JSON aggregate round-trips without NaN.
func TestCampaignExport(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 10
	out, err := Campaign{
		Base: base, Runs: 3, Seed: 3,
		Group:      func(k int, _ int64, _ scenario.Spec) string { return "g" },
		VCHistBins: 16, VCHistLo: 4, VCHistHi: 6,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := out.WriteRunsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 runs", len(lines))
	}
	if !strings.HasPrefix(lines[0], "run,seed,group,") {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], ",g,") {
		t.Errorf("CSV row missing group label: %q", lines[1])
	}
	if strings.Contains(csv.String(), "NaN") {
		t.Error("CSV contains NaN — an online observer did not run")
	}
	var js strings.Builder
	if err := out.WriteSummaryJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"survival_rate"`, `"stability_pct5"`, `"p25"`, `"groups"`, `"vc_histogram"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	if strings.Contains(js.String(), "NaN") {
		t.Error("JSON contains bare NaN")
	}
}

// TestCampaignSeedsDecorrelated: with no Variant, runs still differ —
// each gets an independent weather realisation from its derived seed.
func TestCampaignSeedsDecorrelated(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 20
	out, err := Campaign{Base: base, Runs: 4, Seed: 7}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary.Runs != 4 {
		t.Fatalf("summary counted %d runs, want 4", out.Summary.Runs)
	}
	seen := map[float64]bool{}
	for k, r := range out.Results {
		if want := batch.Seed(7, k); r.Seed != want {
			t.Errorf("run %d seed %d, want %d", k, r.Seed, want)
		}
		seen[r.Result.Instructions] = true
	}
	if len(seen) < 2 {
		t.Error("all runs produced identical work — seeds not decorrelated")
	}
	if out.Summary.Instructions.Min > out.Summary.Instructions.Mean ||
		out.Summary.Instructions.Mean > out.Summary.Instructions.Max {
		t.Error("summary ordering broken")
	}
}

// TestCampaignSupercapPaysForParasitics: on an open-loop (static, no
// controller phase effects) run of the same weather, a leaky bank's
// supply trajectory is bounded above by the lossless capacitor's, so it
// never ends a run with more stored energy. Under closed-loop control
// this need not hold per run — the controller adapts to the lossy
// trajectory — which is exactly why the storage belongs in the live ODE.
func TestCampaignSupercapPaysForParasitics(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 20
	base.Control = scenario.Uncontrolled() // static MinOPP: event-free
	base.Profile = func(seed int64, span float64) pv.Profile {
		// Shallow clouds: deep occlusions would brown out even MinOPP.
		return pv.NewClouds(pv.Constant(800), pv.PartialSun(span), seed)
	}
	run := func(st sim.Storage) *Outcome {
		b := base
		b.Storage = st
		out, err := Campaign{Base: b, Runs: 3, Seed: 42}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ideal := run(sim.IdealCap{Farads: 47e-3})
	lossy := run(sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 100, VMax: soc.MaxOperatingVolts,
	}))
	for i := range ideal.Results {
		a, b := ideal.Results[i].Result, lossy.Results[i].Result
		if a.BrownedOut || b.BrownedOut {
			t.Fatalf("run %d browned out — comparison requires an event-free scenario", i)
		}
		if b.StorageEnergyEndJ > a.StorageEnergyEndJ {
			t.Errorf("run %d: lossy bank ended with %.3f J > ideal %.3f J",
				i, b.StorageEnergyEndJ, a.StorageEnergyEndJ)
		}
	}
}
