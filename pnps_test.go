package pnps

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pnps/internal/soc"
)

// TestFacadeEndToEnd drives the whole stack through the public API only —
// the same path the examples use.
func TestFacadeEndToEnd(t *testing.T) {
	platform := NewPlatform()
	platform.Reset(0, MinOPP())
	controller, err := NewController(DefaultControllerParams(), 5.3, MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	result, err := Simulate(SimConfig{
		Array:       NewPVArray(),
		Profile:     ConstantIrradiance(1000),
		Capacitance: 47e-3,
		InitialVC:   5.3,
		Platform:    platform,
		Controller:  controller,
		Duration:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if result.BrownedOut {
		t.Error("facade run browned out under full sun")
	}
	if result.Instructions <= 0 {
		t.Error("no work done")
	}
}

func TestFacadeProfiles(t *testing.T) {
	if ConstantIrradiance(700).Irradiance(5) != 700 {
		t.Error("ConstantIrradiance wrong")
	}
	day := SolarDayProfile()
	if day.Irradiance(13*3600) <= 0 {
		t.Error("SolarDayProfile dark at noon")
	}
	cloudy := WithPartialClouds(day, 24*3600, 5)
	if cloudy.Irradiance(13*3600) < 0 {
		t.Error("cloudy profile negative")
	}
	sh := ShadowEvent(0.5, 10, 5)
	if sh.Irradiance(12) >= sh.Irradiance(0) {
		t.Error("shadow event does not attenuate")
	}
}

func TestFacadeGovernors(t *testing.T) {
	g, err := LinuxGovernor("powersave")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "powersave" {
		t.Error("governor name wrong")
	}
	if _, err := LinuxGovernor("bogus"); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestFacadeBounds(t *testing.T) {
	if MinOPP().Config.TotalCores() != 1 || MaxOPP().Config.TotalCores() != 8 {
		t.Error("OPP bounds wrong")
	}
	if MinOPP() != soc.MinOPP() {
		t.Error("facade MinOPP diverged from soc")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	rep, err := RunExperiment("fig4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig4" {
		t.Error("wrong report")
	}
	if _, err := RunExperiment("missing", 1); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestFacadeScenarioErrors pins the facade's error paths: unknown
// scenario names surface as UnknownScenarioError (matchable with
// errors.As), a bad governor name fails at run time with the offending
// name in the message, and an inverted capacitance bracket is rejected
// before any simulation runs.
func TestFacadeScenarioErrors(t *testing.T) {
	_, err := RunScenario("no-such-scenario", 1)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	var unknown *UnknownScenarioError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %T %v, want *UnknownScenarioError", err, err)
	}
	if unknown.Name != "no-such-scenario" {
		t.Errorf("UnknownScenarioError.Name = %q", unknown.Name)
	}
	if !strings.Contains(err.Error(), "no-such-scenario") {
		t.Errorf("error %q does not name the missing scenario", err)
	}

	sc, ok := LookupScenario("steady-sun")
	if !ok {
		t.Fatal("steady-sun missing")
	}
	sc.Control = GovernedBy("no-such-governor")
	if _, err := sc.Run(1); err == nil ||
		!strings.Contains(err.Error(), "no-such-governor") {
		t.Errorf("bad governor error = %v, want it to name the governor", err)
	}

	mk := func(farads float64) Storage { return IdealCapacitor{Farads: farads} }
	sc, _ = LookupScenario("steady-sun")
	if _, err := MinScenarioCapacitance(sc, 1, mk, 1e-1, 1e-3, 0.05); err == nil ||
		!strings.Contains(err.Error(), "bracket") {
		t.Errorf("inverted [lo, hi] error = %v, want bracket rejection", err)
	}
}

// TestFacadeStudy drives a small matrix through the public Study
// surface: typed axes, paired seeds, cells, marginals and checkpoint
// sharding all reachable without importing internals.
func TestFacadeStudy(t *testing.T) {
	base, ok := LookupScenario("stress-clouds")
	if !ok {
		t.Fatal("stress-clouds missing")
	}
	base.Duration = 10
	st := Study{
		Base: base,
		Axes: []StudyAxis{
			NewStudyAxis("storage",
				StudyStorage("ideal", IdealCapacitor{Farads: 47e-3}),
				StudyStorage("hybrid", HybridBuffer{
					NodeFarads: 10e-3, ReservoirFarads: 1,
					DiodeDropVolts: 0.35, DiodeOhms: 0.2,
					ChargeOhms: 10, LeakOhms: 20000,
				})),
			NewStudyAxis("control", StudyPowerNeutral(), StudyGovernor("ondemand")),
		},
		Reps: 2, Seed: 7, SeedMode: SeedPerRep,
	}
	out, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 4 || out.Summary.Runs != 8 {
		t.Fatalf("matrix shape: %d cells, %d runs", len(out.Cells), out.Summary.Runs)
	}
	if len(out.Marginals) != 4 {
		t.Fatalf("%d marginals", len(out.Marginals))
	}

	a, err := st.RunShard(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.RunShard(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeStudyCheckpoints(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := merged.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadStudyCheckpoint(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Outcome(restored)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != out.Summary {
		t.Fatalf("sharded facade study diverged:\n%+v\nvs\n%+v", got.Summary, out.Summary)
	}
}

func TestFacadeBatch(t *testing.T) {
	ctx := context.Background()

	reps, err := RunAllExperiments(ctx, RunAllOptions{IDs: []string{"fig4", "fig10"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].ID != "fig4" || reps[1].ID != "fig10" {
		t.Error("RunAllExperiments ordering broken")
	}

	out, err := BatchMap(ctx, []int{1, 2, 3, 4},
		func(_ context.Context, n int) (string, error) { return strings.Repeat("x", n), nil },
		BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if len(s) != i+1 {
			t.Fatalf("BatchMap out[%d] = %q", i, s)
		}
	}

	if BatchSeed(7, 0) == BatchSeed(7, 1) || BatchSeed(7, 0) != BatchSeed(7, 0) {
		t.Error("BatchSeed not decorrelated/deterministic")
	}

	pts, err := RunParamSweep(ctx, SweepOptions{
		VWidths: []float64{0.144}, VQs: []float64{0.0479},
		Alphas: []float64{0.12}, Betas: []float64{0.479},
		Duration: 10, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Params.VWidth != 0.144 {
		t.Errorf("RunParamSweep points: %+v", pts)
	}
}
