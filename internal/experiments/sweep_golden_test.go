package experiments

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"pnps/internal/batch"
	"pnps/internal/core"
	"pnps/internal/scenario"
	"pnps/internal/testutil"
)

// legacyRunSweep is the pre-study sweep implementation, kept verbatim
// (series-retaining runs, stability and minimum taken from the VC
// trace) as the golden reference: RunSweep re-implemented on the study
// engine must reproduce its output bit for bit.
func legacyRunSweep(t *testing.T, opts SweepOptions) []SweepPoint {
	t.Helper()
	opts.withDefaults()
	base, ok := scenario.Lookup(opts.Scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", opts.Scenario)
	}
	base.Duration = opts.Duration
	grid := enumerateGrid(opts)
	pts, err := batch.Map(context.Background(), grid,
		func(_ context.Context, p core.Params) (SweepPoint, error) {
			sp := base
			sp.Control = scenario.Controlled(p)
			res, err := sp.Run(opts.Seed)
			if err != nil {
				return SweepPoint{}, err
			}
			minV, _ := res.VC.Min()
			return SweepPoint{
				Params:    p,
				Stability: res.StabilityWithin(0.05),
				Survived:  !res.BrownedOut,
				MinVC:     minV,
				Instr:     res.Instructions,
			}, nil
		}, batch.Options{Workers: opts.Workers})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Survived != pts[j].Survived {
			return pts[i].Survived
		}
		return pts[i].Stability > pts[j].Stability
	})
	return pts
}

// TestRunSweepGoldenOnStudyEngine: the study-engine sweep reproduces
// the legacy implementation exactly — same points, same order, every
// float bit-identical — even though the new path runs trace-free (the
// online stability band and supply envelope are bit-identical to the
// series analyses, which this test also ends up proving end to end).
func TestRunSweepGoldenOnStudyEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep in -short mode")
	}
	opts := SweepOptions{
		VWidths:  []float64{0.10, 0.144},
		VQs:      []float64{0.0479},
		Alphas:   []float64{0.06, 0.120},
		Betas:    []float64{0.479},
		Duration: 30,
	}
	want := legacyRunSweep(t, opts)
	got, err := RunSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		testutil.RequireEqual(t, fmt.Sprintf("sweep point %d", i), got[i], want[i])
	}
}

// TestRunSweepDegenerateGrids: grids the legacy implementation
// tolerated keep working on the study engine — duplicate option values
// score twice, and a fully β<α-filtered grid returns an empty result
// rather than a malformed-study error.
func TestRunSweepDegenerateGrids(t *testing.T) {
	pts, err := RunSweep(SweepOptions{
		VWidths: []float64{0.144, 0.144}, VQs: []float64{0.0479},
		Alphas: []float64{0.12}, Betas: []float64{0.479},
		Duration: 5,
	})
	if err != nil {
		t.Fatalf("duplicate grid values: %v", err)
	}
	if len(pts) != 2 || pts[0] != pts[1] {
		t.Fatalf("duplicate grid scored %d points (%+v), want 2 identical", len(pts), pts)
	}

	pts, err = RunSweep(SweepOptions{
		VWidths: []float64{0.144}, VQs: []float64{0.0479},
		Alphas: []float64{0.5}, Betas: []float64{0.1},
		Duration: 5,
	})
	if err != nil || len(pts) != 0 {
		t.Fatalf("all-filtered grid = %d points, %v; want empty, nil", len(pts), err)
	}
}
