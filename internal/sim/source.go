package sim

import (
	"fmt"
	"sort"

	"pnps/internal/pv"
)

// Source supplies current into the capacitor/supply node. The engine
// integrates C·dVc/dt = Source.Current(t, Vc) − Iload(Vc).
type Source interface {
	// Current returns the current flowing into the supply node in amps
	// at time t with node voltage vc.
	Current(t, vc float64) (float64, error)
}

// PVSource is the paper's harvesting source: a PV array driven by an
// irradiance profile (Fig. 8).
type PVSource struct {
	Array   *pv.Array
	Profile pv.Profile
}

// Current implements Source.
func (s PVSource) Current(t, vc float64) (float64, error) {
	return s.Array.CurrentAt(vc, s.Profile.Irradiance(t))
}

// VPoint is one (time, volts) waypoint of a bench-supply sequence.
type VPoint struct {
	T float64
	V float64
}

// VoltageSource models the controlled variable supply of the paper's
// Fig. 11 experiments: an ideal voltage source following piecewise-linear
// waypoints behind a small series (output) resistance.
type VoltageSource struct {
	// Points are the setpoint waypoints; voltage is interpolated
	// linearly between them and clamped outside the span. Must be
	// time-sorted (NewVoltageSource sorts).
	Points []VPoint
	// SeriesOhms is the source output resistance (must be positive).
	SeriesOhms float64
}

// NewVoltageSource builds a bench supply from waypoints.
func NewVoltageSource(seriesOhms float64, points ...VPoint) (*VoltageSource, error) {
	if seriesOhms <= 0 {
		return nil, fmt.Errorf("sim: series resistance must be positive, got %g", seriesOhms)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sim: voltage source needs at least one waypoint")
	}
	ps := append([]VPoint(nil), points...)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	return &VoltageSource{Points: ps, SeriesOhms: seriesOhms}, nil
}

// Setpoint returns the interpolated supply setpoint at time t.
func (s *VoltageSource) Setpoint(t float64) float64 {
	ps := s.Points
	if t <= ps[0].T {
		return ps[0].V
	}
	if t >= ps[len(ps)-1].T {
		return ps[len(ps)-1].V
	}
	i := sort.Search(len(ps), func(k int) bool { return ps[k].T > t }) - 1
	p0, p1 := ps[i], ps[i+1]
	if p1.T == p0.T {
		return p1.V
	}
	frac := (t - p0.T) / (p1.T - p0.T)
	return p0.V + frac*(p1.V-p0.V)
}

// Current implements Source.
func (s *VoltageSource) Current(t, vc float64) (float64, error) {
	return (s.Setpoint(t) - vc) / s.SeriesOhms, nil
}
