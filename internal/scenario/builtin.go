package scenario

import (
	"pnps/internal/buffer"
	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// Built-in scenarios: the paper's evaluation runs plus the storage
// extensions, registered under stable names so experiments, CLIs and
// campaigns assemble the exact same runs.
func init() {
	MustRegister(Spec{
		Name:        "steady-sun",
		Description: "one minute of full sun under power-neutral control (quickstart)",
		Profile:     FixedProfile(pv.Constant(1000)),
		Duration:    60,
	})
	MustRegister(Spec{
		Name:        "fig6-shadow",
		Description: "paper Fig. 6: deep 3 s shadow survived by scaling (10 s)",
		Profile:     FixedProfile(pv.DeepShadow(4)),
		Control:     Controlled(core.Fig6Params()),
		Duration:    10,
	})
	MustRegister(Spec{
		Name:        "stress-clouds",
		Description: "full sun with repeated deep occlusions — the Section III stress scenario (240 s)",
		Profile:     pvStress,
		Duration:    240,
	})
	MustRegister(Spec{
		Name:        "stress-supercap",
		Description: "the stress scenario on a real supercap bank (ESR + leakage) instead of the ideal capacitor",
		Profile:     pvStress,
		Storage: sim.NewSupercap(buffer.Supercap{
			Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
		}),
		Duration: 240,
	})
	MustRegister(Spec{
		Name:        "stress-hybrid",
		Description: "the stress scenario on a hybrid buffer: 10 mF node capacitor backed by a 1 F reservoir behind a Schottky diode",
		Profile:     pvStress,
		Storage: sim.HybridCap{
			NodeFarads: 10e-3, ReservoirFarads: 1,
			DiodeDropVolts: 0.35, DiodeOhms: 0.2,
			ChargeOhms: 10, LeakOhms: 20000,
		},
		Duration: 240,
	})
	MustRegister(Spec{
		Name:        "fig12-fullsun",
		Description: "paper Fig. 12: six-hour full-sun run from 10:30 with light haze (also feeds Figs. 13–15)",
		Profile: func(seed int64, _ float64) pv.Profile {
			clouds := pv.NewClouds(pv.StandardDay(), pv.CloudParams{
				Span: 24 * 3600, MeanGap: 700, MeanDuration: 120,
				MinTransmission: 0.7, MaxTransmission: 0.92, EdgeSeconds: 10,
			}, seed)
			return pv.Offset{Base: clouds, T0: 10.5 * 3600}
		},
		Duration: 6 * 3600,
		MaxStep:  0.5,
	})
	MustRegister(Spec{
		Name:        "table2-harvest",
		Description: "paper Table II: sixty minutes of moderate sun with cloud micro-variability",
		Profile: func(seed int64, span float64) pv.Profile {
			// Cloud field overruns the span slightly so a shadow striding
			// the end of the run is still fully formed.
			return pv.NewClouds(pv.Constant(620), pv.CloudParams{
				Span: span + 100, MeanGap: 300, MeanDuration: 60,
				MinTransmission: 0.72, MaxTransmission: 0.92, EdgeSeconds: 8,
			}, seed)
		},
		Duration: 3600,
	})
	MustRegister(Spec{
		Name:        "fig11-bench",
		Description: "paper Fig. 11: controlled variable bench supply with A/B disturbance events (140 s)",
		Source: func(int64, float64) (sim.Source, error) {
			return sim.NewVoltageSource(0.3,
				sim.VPoint{T: 0, V: 5.0},
				sim.VPoint{T: 10, V: 5.0},
				sim.VPoint{T: 20, V: 5.35}, // slow rise
				sim.VPoint{T: 30, V: 5.15}, // minor fluctuation (A)
				sim.VPoint{T: 38, V: 5.3},  // minor fluctuation (A)
				sim.VPoint{T: 48, V: 5.3},
				sim.VPoint{T: 60, V: 5.55}, // slow rise
				sim.VPoint{T: 70, V: 5.55},
				sim.VPoint{T: 71.5, V: 4.55}, // sudden reduction (B)
				sim.VPoint{T: 90, V: 4.55},
				sim.VPoint{T: 105, V: 5.1}, // recovery ramp
				sim.VPoint{T: 120, V: 5.5},
				sim.VPoint{T: 140, V: 5.45},
			)
		},
		Control:     Controlled(core.Fig11Params()),
		Boot:        soc.OPP{FreqIdx: 3, Config: soc.CoreConfig{Little: 4, Big: 1}},
		InitialVC:   5.0,
		TargetVolts: 5.3,
		Duration:    140,
	})
	MustRegister(Spec{
		Name:        "solar-day",
		Description: "24 h partly cloudy day with brownout restarts: die after sunset, reboot after sunrise",
		Profile: func(seed int64, span float64) pv.Profile {
			return pv.NewClouds(pv.StandardDay(), pv.PartialSun(span), seed)
		},
		Duration: 24 * 3600,
		MaxStep:  0.5,
		Restart:  &RestartPolicy{Cooldown: 300},
	})
	MustRegister(Spec{
		Name:        "overcast-day",
		Description: "24 h overcast day with brownout restarts — the harvest-starved counterpart of solar-day",
		Profile: func(seed int64, span float64) pv.Profile {
			return pv.NewClouds(pv.StandardDay(), pv.Overcast(span), seed)
		},
		Duration: 24 * 3600,
		MaxStep:  0.5,
		Restart:  &RestartPolicy{Cooldown: 300},
	})
}

// pvStress is the shared Section III stress profile (see pv.StressClouds).
func pvStress(seed int64, span float64) pv.Profile {
	return pv.StressClouds(seed, span)
}
