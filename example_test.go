package pnps_test

import (
	"fmt"

	"pnps"
)

// ExampleSimulate runs the power-neutral system for thirty simulated
// seconds of full sun and reports whether it stayed alive.
func ExampleSimulate() {
	platform := pnps.NewPlatform()
	platform.Reset(0, pnps.MinOPP())
	controller, err := pnps.NewController(pnps.DefaultControllerParams(), 5.3, pnps.MinOPP(), 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	result, err := pnps.Simulate(pnps.SimConfig{
		Array:       pnps.NewPVArray(),
		Profile:     pnps.ConstantIrradiance(1000),
		Capacitance: 47e-3,
		InitialVC:   5.3,
		Platform:    platform,
		Controller:  controller,
		Duration:    30,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("survived:", !result.BrownedOut)
	fmt.Println("did work:", result.Instructions > 0)
	// Output:
	// survived: true
	// did work: true
}

// ExampleNewPVArray inspects the calibrated array's maximum power point —
// the paper's 5.3 V target voltage.
func ExampleNewPVArray() {
	arr := pnps.NewPVArray()
	mpp, err := arr.MaximumPowerPoint(1000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("MPP voltage: %.1f V\n", mpp.V)
	fmt.Printf("MPP power above 5 W: %v\n", mpp.P > 5)
	// Output:
	// MPP voltage: 5.3 V
	// MPP power above 5 W: true
}

// ExampleLinuxGovernor shows the baseline governors available for
// comparison runs.
func ExampleLinuxGovernor() {
	for _, name := range []string{"performance", "powersave", "conservative"} {
		g, err := pnps.LinuxGovernor(name)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(g.Name())
	}
	// Output:
	// performance
	// powersave
	// conservative
}
