package experiments

import (
	"strings"
	"testing"
)

// The fast experiments run in every test invocation; the 6-hour scenario
// family and the sweep are skipped with -short.

func TestFig1(t *testing.T) {
	t.Parallel()
	r, err := Fig1(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	m := metricByName(t, r, "peak power output")
	if m.Value < 0.6 || m.Value > 1.5 {
		t.Errorf("peak power %.2f W, want ≈1 W", m.Value)
	}
	if v := metricByName(t, r, "micro-variability residual (std dev)").Value; v <= 0 {
		t.Error("no micro variability in the trace")
	}
	if len(r.Series) == 0 || r.Series[0].Len() < 1000 {
		t.Error("day trace under-sampled")
	}
}

func TestFig3(t *testing.T) {
	t.Parallel()
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	staticLife := metricByName(t, r, "static lifetime").Value
	ctrlLife := metricByName(t, r, "power-neutral lifetime").Value
	if ctrlLife <= staticLife*2 {
		t.Errorf("lifetime extension too small: %.1f s vs %.1f s", ctrlLife, staticLife)
	}
	if metricByName(t, r, "power-neutral browned out").Value != 0 {
		t.Error("power-neutral run browned out")
	}
	if metricByName(t, r, "static browned out").Value != 1 {
		t.Error("static run survived — scenario too easy")
	}
}

func TestFig4(t *testing.T) {
	t.Parallel()
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	min := metricByName(t, r, "min config/frequency power").Value
	max := metricByName(t, r, "max config/frequency power").Value
	if min < 1.5 || min > 2.1 {
		t.Errorf("min power %.2f W off the paper's ≈1.8 W", min)
	}
	if max < 6.2 || max > 7.8 {
		t.Errorf("max power %.2f W off the paper's ≈7 W", max)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 8 {
		t.Error("power table shape wrong")
	}
}

func TestFig6(t *testing.T) {
	t.Parallel()
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if metricByName(t, r, "controlled survived").Value != 1 {
		t.Error("controlled system browned out in the Fig. 6 scenario")
	}
	if metricByName(t, r, "uncontrolled survived").Value != 0 {
		t.Error("uncontrolled system survived — shadow too shallow")
	}
	if v := metricByName(t, r, "min Vc with control").Value; v < 4.1 {
		t.Errorf("controlled min Vc %.2f below Vmin", v)
	}
}

func TestFig7(t *testing.T) {
	t.Parallel()
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	maxFPS := metricByName(t, r, "max FPS (8 cores @1.4 GHz)").Value
	littleFPS := metricByName(t, r, "max FPS (4xA7 only)").Value
	if maxFPS <= littleFPS*2 {
		t.Errorf("full chip %.3f FPS should be well above LITTLE-only %.3f", maxFPS, littleFPS)
	}
	effL := metricByName(t, r, "LITTLE-only efficiency at 4xA7 @1.4 GHz").Value
	effM := metricByName(t, r, "full-chip efficiency at max OPP").Value
	if effL <= effM {
		t.Errorf("LITTLE-only FPS/W %.4f should beat full chip %.4f", effL, effM)
	}
}

func TestFig10(t *testing.T) {
	t.Parallel()
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	fast := metricByName(t, r, "fastest hot-plug").Value
	slow := metricByName(t, r, "slowest hot-plug").Value
	if fast >= slow {
		t.Error("hot-plug latency ordering broken")
	}
	if slow < 20 || slow > 60 {
		t.Errorf("slowest hot-plug %.1f ms off the paper's ≈40 ms", slow)
	}
	if len(r.Tables) != 2 {
		t.Error("expected hot-plug + DVFS tables")
	}
}

func TestTable1(t *testing.T) {
	t.Parallel()
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	ta := metricByName(t, r, "(a) transition time").Value
	tb := metricByName(t, r, "(b) transition time").Value
	if tb >= ta/2 {
		t.Errorf("(b) %.0f ms should be far below (a) %.0f ms", tb, ta)
	}
	if fit := metricByName(t, r, "(b) fits 47 mF buffer").Value; fit != 1 {
		t.Error("selected order does not fit the paper's 47 mF capacitor")
	}
	ratio := metricByName(t, r, "(a)/(b) charge ratio").Value
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("charge ratio %.2f outside the paper's ≈2.8 band", ratio)
	}
}

func TestFig11(t *testing.T) {
	t.Parallel()
	r, err := Fig11(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if metricByName(t, r, "survived full test").Value != 1 {
		t.Error("bench-supply run browned out")
	}
	ratio := metricByName(t, r, "DVFS:hot-plug ratio").Value
	if ratio < 2 {
		t.Errorf("DVFS:hot-plug ratio %.1f — paper wants core scaling rare", ratio)
	}
}

func TestFig12Family(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("6-hour scenario: skipped with -short")
	}
	// The four figures share one memoised 6-hour run (fig12Run), so the
	// siblings serialise behind fig12Mu on first computation; parallel
	// subtests only overlap their per-figure post-processing.
	t.Run("fig12", func(t *testing.T) {
		t.Parallel()
		r12, err := Fig12(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		within5 := metricByName(t, r12, "time within ±5% of target").Value
		if within5 < 60 {
			t.Errorf("stability %.1f%%, want the paper's >90%% order", within5)
		}
		if metricByName(t, r12, "brownouts").Value != 0 {
			t.Error("brownouts during the full-sun run")
		}
	})
	t.Run("fig13", func(t *testing.T) {
		t.Parallel()
		r13, err := Fig13(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if d := metricByName(t, r13, "|modal − MPP voltage|").Value; d > 0.5 {
			t.Errorf("modal operating voltage %.2f V away from MPP — MPPT behaviour lost", d)
		}
	})
	t.Run("fig14", func(t *testing.T) {
		t.Parallel()
		r14, err := Fig14(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		util := metricByName(t, r14, "utilisation of harvest (energy)").Value
		if util < 55 || util > 103 {
			t.Errorf("harvest utilisation %.1f%% implausible", util)
		}
	})
	t.Run("fig15", func(t *testing.T) {
		t.Parallel()
		r15, err := Fig15(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		ov := metricByName(t, r15, "controller CPU overhead").Value
		if ov <= 0 || ov > 1 {
			t.Errorf("controller overhead %.3f%% outside the paper's sub-percent order", ov)
		}
		if mp := metricByName(t, r15, "monitor hardware power").Value; mp < 1.4 || mp > 1.8 {
			t.Errorf("monitor power %.2f mW, want 1.61", mp)
		}
	})
}

func TestTable2(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("hour-long comparison: skipped with -short")
	}
	r, err := Table2(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if metricByName(t, r, "proposed lifetime").Value < 3599 {
		t.Error("proposed approach did not survive the hour")
	}
	if metricByName(t, r, "powersave lifetime").Value < 3599 {
		t.Error("powersave did not survive the hour")
	}
	gain := metricByName(t, r, "instruction gain vs powersave").Value
	if gain < 30 {
		t.Errorf("instruction gain %.0f%%, paper reports +69%%", gain)
	}
	if metricByName(t, r, "conservative lifetime").Value > 30 {
		t.Error("conservative governor survived implausibly long")
	}
}

func TestSweepShapes(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("grid search: skipped with -short")
	}
	// A reduced grid keeps the runtime bounded while still exercising
	// the search machinery.
	pts, err := RunSweep(SweepOptions{
		VWidths:  []float64{0.144, 0.28},
		VQs:      []float64{0.0479, 0.08},
		Alphas:   []float64{0.12},
		Betas:    []float64{0.479},
		Duration: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d grid points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Survived == pts[i].Survived && pts[i-1].Stability < pts[i].Stability {
			t.Error("sweep results not sorted by stability")
		}
	}
}

func TestAblations(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("ablations: skipped with -short")
	}
	rs, err := AblationSemantics(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tables[0].Rows) != 2 {
		t.Error("semantics ablation row count")
	}
	ro, err := AblationOrder(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Tables[0].Rows) != 2 {
		t.Error("order ablation row count")
	}
}

func TestMPPTComparison(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("reuses the 6-hour scenario: skipped with -short")
	}
	r, err := MPPTComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	po := metricByName(t, r, "P&O efficiency (full sun)").Value
	implicit := metricByName(t, r, "implicit power-neutral efficiency").Value
	if po < 95 {
		t.Errorf("P&O efficiency %.1f%%, want near-ideal", po)
	}
	if implicit < 85 {
		t.Errorf("implicit efficiency %.1f%%, claim needs >85%%", implicit)
	}
	if implicit > po+2 {
		t.Errorf("implicit (%.1f%%) should not beat a dedicated tracker (%.1f%%)", implicit, po)
	}
}

func TestPredictiveComparison(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("four scenario runs: skipped with -short")
	}
	r, err := PredictiveComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if metricByName(t, r, "predictive survives steady sun").Value != 1 {
		t.Error("predictive scheme should work under steady conditions")
	}
	if metricByName(t, r, "predictive survives shadowing").Value != 0 {
		t.Error("predictive scheme survived shadowing — paper's criticism not reproduced")
	}
	if metricByName(t, r, "power-neutral survives shadowing").Value != 1 {
		t.Error("power-neutral died under shadowing")
	}
}

func TestBufferComparison(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("bisection over simulations: skipped with -short")
	}
	r, err := BufferComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	en := metricByName(t, r, "energy-neutral supercap").Value
	pn := metricByName(t, r, "power-neutral min capacitance").Value // mF
	st := metricByName(t, r, "static min capacitance").Value        // F
	if en < 100 {
		t.Errorf("energy-neutral sizing %.0f F implausibly small", en)
	}
	if pn >= 47 {
		t.Errorf("power-neutral min capacitance %.1f mF exceeds the paper's 47 mF", pn)
	}
	if st < 10*pn/1e3 {
		t.Errorf("static (%.2f F) should need far more than power-neutral (%.1f mF)", st, pn)
	}
	if metricByName(t, r, "fits paper's 47 mF").Value != 1 {
		t.Error("power-neutral does not fit the deployed capacitor")
	}
}

func TestRegistryCoversEveryPaperArtefact(t *testing.T) {
	t.Parallel()
	ids := IDs()
	want := []string{"fig1", "fig3", "fig4", "fig6", "fig7", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "table1", "table2", "sweep",
		"ablation-semantics", "ablation-order", "mppt", "predictive", "buffers"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, err := Run("nonsense", 1); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestReportRendering(t *testing.T) {
	t.Parallel()
	r := &Report{ID: "x", Title: "T", Description: "D"}
	r.AddPaperMetric("m", 1.5, 2.0, "W", "note")
	r.Tables = append(r.Tables, Table{
		Title:  "tab",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	})
	out := r.String()
	for _, frag := range []string{"== x — T ==", "paper: 2", "note", "tab", "a", "1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered report missing %q:\n%s", frag, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	t.Parallel()
	if fmtSeconds(65) != "01:05" {
		t.Errorf("fmtSeconds(65) = %q", fmtSeconds(65))
	}
	if fmtSeconds(-3) != "00:00" {
		t.Error("negative seconds should clamp")
	}
	if fmtSeconds(3600) != "60:00" {
		t.Errorf("fmtSeconds(3600) = %q", fmtSeconds(3600))
	}
	if fmtGiga(2.5e9) != "2.5" {
		t.Errorf("fmtGiga = %q", fmtGiga(2.5e9))
	}
}

func metricByName(t *testing.T, r *Report, name string) Metric {
	t.Helper()
	for _, m := range r.Metrics {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not found in %s; have %v", name, r.ID, metricNames(r))
	return Metric{}
}

func metricNames(r *Report) []string {
	out := make([]string, len(r.Metrics))
	for i, m := range r.Metrics {
		out[i] = m.Name
	}
	return out
}
