#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the simulation service on
# the real binary. Starts pnserve with bearer auth, submits a study,
# waits for completion, then submits the identical study again and
# requires the second answer to be a whole-study cache hit with zero
# simulated runs and byte-identical outcome downloads in every format.
# Finishes by exercising the graceful drain path with SIGTERM. This is
# the process-level twin of internal/serve's -race suite — same
# contract, but with a real listener, real curl clients and a real
# signal.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
port="${SERVE_PORT:-18474}"
url="http://127.0.0.1:${port}"
token="smoke-secret"
auth=(-H "Authorization: Bearer ${token}")
recipe='{"scenario":"stress-clouds","duration":12,"storage":"ideal:0.047,supercap:0.047","util":"1,0.6","reps":4,"seed":23,"bins":32,"hist_lo":4,"hist_hi":6}'

pids=()
cleanup() {
    local p
    for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "serve_smoke: building pnserve"
go build -o "$work/pnserve" ./cmd/pnserve

echo "serve_smoke: starting service on $url"
"$work/pnserve" -addr "127.0.0.1:${port}" -token "$token" -v \
    >>"$work/serve.log" 2>&1 &
serve_pid=$!
pids+=("$serve_pid")

for _ in $(seq 1 100); do
    curl -sf --max-time 2 "${auth[@]}" "$url/v1/cache" >/dev/null 2>&1 && break
    sleep 0.1
done
if ! curl -sf --max-time 2 "${auth[@]}" "$url/v1/cache" >/dev/null; then
    echo "serve_smoke: service never answered on $url" >&2
    cat "$work/serve.log" >&2
    exit 1
fi

echo "serve_smoke: unauthenticated requests must be refused"
code="$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 "$url/v1/cache")"
if [ "$code" != "401" ]; then
    echo "serve_smoke: unauthenticated request got HTTP $code, want 401" >&2
    exit 1
fi

field() { sed -n "s/.*\"$1\": \"\\([^\"]*\\)\".*/\\1/p" | head -n 1; }

echo "serve_smoke: submitting study (cold)"
curl -sf "${auth[@]}" -d "$recipe" "$url/v1/jobs" >"$work/cold-submit.json"
job="$(field id <"$work/cold-submit.json")"
if [ -z "$job" ]; then
    echo "serve_smoke: no job id in submission response:" >&2
    cat "$work/cold-submit.json" >&2
    exit 1
fi

echo "serve_smoke: waiting for $job"
state=""
for _ in $(seq 1 600); do
    state="$(curl -sf "${auth[@]}" "$url/v1/jobs/$job" | field state || true)"
    [ "$state" = "done" ] && break
    [ "$state" = "failed" ] && break
    sleep 0.1
done
if [ "$state" != "done" ]; then
    echo "serve_smoke: job $job ended in state '${state:-?}'" >&2
    curl -s "${auth[@]}" "$url/v1/jobs/$job" >&2 || true
    cat "$work/serve.log" >&2
    exit 1
fi

for fmt in json cells-csv runs-csv; do
    curl -sf "${auth[@]}" "$url/v1/jobs/$job/outcome?format=$fmt" >"$work/cold.$fmt"
done

echo "serve_smoke: resubmitting the identical study (must be a cache hit)"
curl -sf "${auth[@]}" -d "$recipe" "$url/v1/jobs" >"$work/hit-submit.json"
hit="$(field id <"$work/hit-submit.json")"
if ! grep -q '"cache_hit": true' "$work/hit-submit.json" ||
   ! grep -q '"simulated_runs": 0' "$work/hit-submit.json" ||
   ! grep -q '"state": "done"' "$work/hit-submit.json"; then
    echo "serve_smoke: FAIL — resubmission was not an instant zero-work cache hit:" >&2
    cat "$work/hit-submit.json" >&2
    exit 1
fi

for fmt in json cells-csv runs-csv; do
    curl -sf "${auth[@]}" "$url/v1/jobs/$hit/outcome?format=$fmt" >"$work/hit.$fmt"
    if ! cmp -s "$work/cold.$fmt" "$work/hit.$fmt"; then
        echo "serve_smoke: FAIL — $fmt outcome of the cache hit differs from the cold run" >&2
        exit 1
    fi
done
echo "serve_smoke: cache hit is byte-identical to the cold run in all formats"

echo "serve_smoke: draining with SIGTERM"
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "serve_smoke: service did not exit cleanly on SIGTERM" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
if ! grep -q "drained" "$work/serve.log"; then
    echo "serve_smoke: no drain confirmation in the service log" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "serve_smoke: PASS — cold run, zero-work byte-identical cache hit, graceful drain"
