// Raytrace: run the paper's benchmark application (a smallpt-style path
// tracer) at several worker counts, mirroring how throughput scales with
// online cores on the big.LITTLE board (Fig. 7's FPS metric), and write
// the final frame as a PPM image.
//
//	go run ./examples/raytrace
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"pnps/internal/workload"
)

func main() {
	scene := workload.CornellScene()
	opts := workload.RenderOptions{
		Width: 160, Height: 120, SamplesPerPixel: 2, Seed: 1,
	}

	fmt.Println("smallpt throughput vs parallelism (the paper's Fig. 7 axis)")
	fmt.Printf("%-8s %-12s %s\n", "workers", "time", "frames/min")
	maxW := runtime.GOMAXPROCS(0)
	var img *workload.Image
	for workers := 1; workers <= maxW; workers *= 2 {
		opts.Workers = workers
		start := time.Now()
		var err error
		img, err = scene.Render(opts)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-8d %-12v %.2f\n", workers, el.Round(time.Millisecond), 60/el.Seconds())
	}

	const out = "cornell.ppm"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.WritePPM(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (mean luminance %.3f)\n", out, img.MeanLuminance())
}
