package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerCalibration(t *testing.T) {
	pm := DefaultPowerModel()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 4 anchor points.
	if p := pm.PowerAtFullLoad(MinOPP()); p < 1.6 || p > 2.0 {
		t.Errorf("min OPP power %.2f W, want ≈1.8 (paper Fig. 4)", p)
	}
	if p := pm.PowerAtFullLoad(MaxOPP()); p < 6.3 || p > 7.7 {
		t.Errorf("max OPP power %.2f W, want ≈7 (paper Fig. 4)", p)
	}
	// 4×A7 at max frequency stays under ≈3 W (Fig. 7 left panel).
	o := OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4}}
	if p := pm.PowerAtFullLoad(o); p < 2.4 || p > 3.2 {
		t.Errorf("4xA7 max power %.2f W, want ≈2.8", p)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	pm := DefaultPowerModel()
	for _, cfg := range ConfigLadder() {
		prev := -1.0
		for fi := 0; fi < NumFrequencyLevels; fi++ {
			p := pm.PowerAtFullLoad(OPP{FreqIdx: fi, Config: cfg})
			if p <= prev {
				t.Errorf("%v: power not increasing at level %d", cfg, fi)
			}
			prev = p
		}
	}
}

func TestPowerMonotoneInCores(t *testing.T) {
	pm := DefaultPowerModel()
	for fi := 0; fi < NumFrequencyLevels; fi++ {
		prev := -1.0
		for _, cfg := range ConfigLadder() {
			p := pm.PowerAtFullLoad(OPP{FreqIdx: fi, Config: cfg})
			if p <= prev {
				t.Errorf("level %d: power not increasing along ladder at %v", fi, cfg)
			}
			prev = p
		}
	}
}

func TestBigCoreDominatesLittle(t *testing.T) {
	pm := DefaultPowerModel()
	base := OPP{FreqIdx: 5, Config: CoreConfig{Little: 2}}
	withL := OPP{FreqIdx: 5, Config: CoreConfig{Little: 3}}
	withB := OPP{FreqIdx: 5, Config: CoreConfig{Little: 2, Big: 1}}
	dl := pm.PowerAtFullLoad(withL) - pm.PowerAtFullLoad(base)
	db := pm.PowerAtFullLoad(withB) - pm.PowerAtFullLoad(base)
	if db <= dl {
		t.Errorf("big core adds %.3f W, LITTLE adds %.3f W; big must dominate", db, dl)
	}
}

func TestUtilisationScalesDynamicOnly(t *testing.T) {
	pm := DefaultPowerModel()
	o := MaxOPP()
	idle := pm.Power(o, 0)
	full := pm.Power(o, 1)
	if idle >= full {
		t.Fatalf("idle %.2f >= full %.2f", idle, full)
	}
	if idle <= pm.BaseWatts {
		t.Errorf("idle power %.2f should still include leakage above base %.2f", idle, pm.BaseWatts)
	}
	// Clamping.
	if pm.Power(o, -3) != idle || pm.Power(o, 9) != full {
		t.Error("utilisation clamping broken")
	}
}

func TestCurrentDraw(t *testing.T) {
	pm := DefaultPowerModel()
	o := MaxOPP()
	p := pm.PowerAtFullLoad(o)
	i := pm.CurrentDraw(o, 1, 5.0)
	if math.Abs(i-p/5.0) > 1e-12 {
		t.Errorf("CurrentDraw = %g, want %g", i, p/5.0)
	}
	if pm.CurrentDraw(o, 1, 0) != 0 {
		t.Error("zero-volt draw should be 0")
	}
}

func TestHighestOPPWithin(t *testing.T) {
	pm := DefaultPowerModel()
	pf := DefaultPerfModel()
	// Generous budget: the max OPP should win.
	best, ok := pm.HighestOPPWithin(100, pf)
	if !ok || best != MaxOPP() {
		t.Errorf("unbounded budget picked %v", best)
	}
	// Impossible budget.
	if _, ok := pm.HighestOPPWithin(0.5, pf); ok {
		t.Error("sub-minimal budget should fail")
	}
	// Budget respected, and result is the performance argmax.
	budget := 3.5
	best, ok = pm.HighestOPPWithin(budget, pf)
	if !ok {
		t.Fatal("no OPP under 3.5 W")
	}
	if p := pm.PowerAtFullLoad(best); p > budget {
		t.Errorf("chosen OPP power %.2f exceeds budget", p)
	}
	bestIPS := pf.InstructionsPerSecond(best)
	for _, o := range AllOPPs() {
		if pm.PowerAtFullLoad(o) <= budget && pf.InstructionsPerSecond(o) > bestIPS+1e-6 {
			t.Errorf("OPP %v beats chosen %v within budget", o, best)
		}
	}
}

func TestPowerModelValidation(t *testing.T) {
	bad := DefaultPowerModel()
	bad.VddLittle = bad.VddLittle[:3]
	if err := bad.Validate(); err == nil {
		t.Error("short Vdd table accepted")
	}
	bad2 := DefaultPowerModel()
	bad2.DynBig = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
	bad3 := DefaultPowerModel()
	bad3.VddLittle[3] = 0.1 // non-monotone
	if err := bad3.Validate(); err == nil {
		t.Error("non-monotone Vdd accepted")
	}
}

// TestQuickPowerWithinEnvelope checks the full OPP/utilisation space maps
// into [BaseWatts, MaxPower].
func TestQuickPowerWithinEnvelope(t *testing.T) {
	pm := DefaultPowerModel()
	f := func(fi int8, l, b int8, u float64) bool {
		o := OPP{FreqIdx: int(fi), Config: CoreConfig{Little: int(l), Big: int(b)}}
		p := pm.Power(o, math.Mod(math.Abs(u), 1))
		return p >= pm.BaseWatts && p <= pm.MaxPower()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
