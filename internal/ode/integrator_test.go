package ode

import (
	"errors"
	"math"
	"testing"
)

// minStepOpts forces the reject path to clamp at MinStep with a marginal
// (1 < en <= 10) error: the first trial step of 0.1 on y' = -y at these
// tolerances has en ≈ 9.4, and the shrink factor 0.9·en^(-1/3) ≈ 0.43
// lands below MinStep = 0.05.
func minStepOpts(rtol float64) Options {
	return Options{InitialStep: 0.1, MinStep: 0.05, MaxStep: 0.1, RTol: rtol, ATol: rtol}
}

// TestRK23MinStepMarginalAcceptConsistent is the regression test for the
// reject-path fall-through: the old code accepted y1 computed with the
// pre-shrink trial step while advancing t by the clamped MinStep, letting
// state and time desynchronise (final relative error ≈ 4.9% on this
// problem). The fixed solver recomputes the step at MinStep before
// accepting, keeping the error at the tolerance scale.
func TestRK23MinStepMarginalAcceptConsistent(t *testing.T) {
	y := []float64{1}
	res, err := RK23(expDecay, 0, 1, y, minStepOpts(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("expected rejected steps; the test no longer exercises the MinStep clamp")
	}
	want := math.Exp(-1)
	if rel := math.Abs(y[0]-want) / want; rel > 1e-3 {
		t.Errorf("y(1) = %g, want %g (rel err %.2e): MinStep accept desynchronised t and y", y[0], want, rel)
	}
}

// TestRK23MinStepUnderflowStillErrors pins the failure mode: when the
// error at an actual MinStep attempt is far beyond tolerance (en > 10),
// the solver must refuse with ErrStepUnderflow instead of silently
// committing a bad step.
func TestRK23MinStepUnderflowStillErrors(t *testing.T) {
	y := []float64{1}
	_, err := RK23(expDecay, 0, 1, y, minStepOpts(1e-8))
	if !errors.Is(err, ErrStepUnderflow) {
		t.Fatalf("got err=%v, want ErrStepUnderflow", err)
	}
}

// TestIntegratorReuseMatchesRK23 verifies that one Integrator reused
// across heterogeneous problems (different dimensions, events, segmented
// continuation) is bit-identical to fresh RK23 calls.
func TestIntegratorReuseMatchesRK23(t *testing.T) {
	integ := NewIntegrator()

	// Problem 1: 2-state harmonic oscillator.
	ya := []float64{1, 0}
	yb := []float64{1, 0}
	resA, errA := integ.Integrate(harmonic, 0, 3, ya, Options{RTol: 1e-8, ATol: 1e-10})
	resB, errB := RK23(harmonic, 0, 3, yb, Options{RTol: 1e-8, ATol: 1e-10})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if ya[0] != yb[0] || ya[1] != yb[1] || resA.Steps != resB.Steps || resA.T != resB.T {
		t.Errorf("reused integrator diverged: %v vs %v (%d vs %d steps)", ya, yb, resA.Steps, resB.Steps)
	}

	// Problem 2 (reuse after a different dimension): scalar decay with a
	// terminal event, integrated in two continuation segments.
	ev := func() []Event {
		return []Event{{
			Name:      "half",
			G:         func(_ float64, y []float64) float64 { return y[0] - 0.5 },
			Direction: -1,
			Terminal:  true,
		}}
	}
	yc := []float64{1}
	yd := []float64{1}
	resC, errC := integ.Integrate(expDecay, 0, 0.3, yc, Options{Events: ev()})
	resD, errD := RK23(expDecay, 0, 0.3, yd, Options{Events: ev()})
	if errC != nil || errD != nil {
		t.Fatal(errC, errD)
	}
	if yc[0] != yd[0] {
		t.Errorf("segment 1: %g vs %g", yc[0], yd[0])
	}
	resC2, errC2 := integ.Integrate(expDecay, resC.T, 5, yc, Options{Events: ev()})
	resD2, errD2 := RK23(expDecay, resD.T, 5, yd, Options{Events: ev()})
	if errC2 != nil || errD2 != nil {
		t.Fatal(errC2, errD2)
	}
	if !resC2.Stopped || !resD2.Stopped || resC2.T != resD2.T || yc[0] != yd[0] {
		t.Errorf("segment 2 event: t=%g/%g y=%g/%g stopped=%v/%v",
			resC2.T, resD2.T, yc[0], yd[0], resC2.Stopped, resD2.Stopped)
	}
	if math.Abs(resC2.T-math.Log(2)) > 5e-6 {
		t.Errorf("event at t=%g, want ln2", resC2.T)
	}
}

// TestIntegratorSteadyStateAllocs verifies the tentpole property: after
// warm-up, Integrate performs no per-call heap allocations (event hits,
// which copy the state out, are the only permitted source).
func TestIntegratorSteadyStateAllocs(t *testing.T) {
	integ := NewIntegrator()
	y := []float64{1, 0}
	opts := Options{RTol: 1e-6, ATol: 1e-9}
	if _, err := integ.Integrate(harmonic, 0, 1, y, opts); err != nil {
		t.Fatal(err)
	}
	t0 := 1.0
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := integ.Integrate(harmonic, t0, t0+1, y, opts); err != nil {
			t.Fatal(err)
		}
		t0++
	})
	if allocs != 0 {
		t.Errorf("steady-state Integrate allocates %.1f times per call, want 0", allocs)
	}
}

// TestIntegratorDimensionGrowth reuses one Integrator on a larger system
// than it was first sized for: the buffers must transparently regrow (the
// flat backing store makes a naive capacity check on the first sub-slice
// pass even though the later sub-slices cannot hold n elements).
func TestIntegratorDimensionGrowth(t *testing.T) {
	integ := NewIntegrator()
	y1 := []float64{1}
	if _, err := integ.Integrate(expDecay, 0, 1, y1, Options{}); err != nil {
		t.Fatal(err)
	}
	y2 := []float64{1, 0}
	if _, err := integ.Integrate(harmonic, 0, 2*math.Pi, y2, Options{RTol: 1e-9, ATol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y2[0]-1) > 1e-5 || math.Abs(y2[1]) > 1e-5 {
		t.Errorf("after growth, full period gave (%g, %g), want (1, 0)", y2[0], y2[1])
	}
}

func TestIntegratorReset(t *testing.T) {
	integ := NewIntegrator()
	y := []float64{1}
	if _, err := integ.Integrate(expDecay, 0, 1, y, Options{}); err != nil {
		t.Fatal(err)
	}
	integ.Reset()
	if integ.k1 != nil {
		t.Error("Reset did not drop buffers")
	}
	y2 := []float64{1}
	if _, err := integ.Integrate(expDecay, 0, 1, y2, Options{}); err != nil {
		t.Fatal(err)
	}
	if y2[0] != y[0] {
		t.Errorf("post-Reset result %g differs from %g", y2[0], y[0])
	}
}
