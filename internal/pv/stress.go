package pv

// Shared stress scenarios. These used to be copied between the Section
// III sweep, the extension experiments and the sim property tests; they
// live here so every consumer scores against the same irradiance.

// StressClouds is the shadowing stress profile the controller parameters
// must survive: full sun with repeated deep occlusions (micro
// variability) over the given span.
func StressClouds(seed int64, span float64) *Clouds {
	return NewClouds(Constant(1000), CloudParams{
		Span: span, MeanGap: 30, MeanDuration: 12,
		MinTransmission: 0.25, MaxTransmission: 0.6, EdgeSeconds: 2,
	}, seed)
}

// DeepShadow is the paper's Fig. 6 stress event: full sun interrupted by
// a deep 3 s shadow with smooth 0.4 s edges, starting at start seconds.
// The depth is survivable with power-neutral scaling but not without.
func DeepShadow(start float64) Shadow {
	return Shadow{Base: 1000, Depth: 0.60, Start: start, Duration: 3, Edge: 0.4}
}
