// Package core implements the paper's primary contribution: the power
// neutral performance scaling controller for energy-harvesting MP-SoCs
// (Section II).
//
// The controller maintains two dynamic voltage thresholds Vhigh and Vlow,
// separated by Vwidth, around the supply capacitor voltage Vc. When Vc
// crosses a threshold the controller
//
//  1. applies *linear* DVFS control — one step along the 8-level frequency
//     ladder in the direction of the crossing;
//  2. applies *derivative* hot-plug control — the slope dVc/dt, estimated
//     as Vq/τ from the time τ since the previous crossing, decides whether
//     a 'big' (slope > β) or 'LITTLE' (slope > α) core is added/removed;
//  3. slides both thresholds by Vq in the direction of the crossing so
//     they track the harvested power.
//
// The controller is a pure decision engine: it consumes crossing events
// and emits OPP targets plus new threshold values. Wiring to the platform,
// the threshold-monitor hardware and the supply ODE lives in package sim.
package core

import (
	"fmt"

	"pnps/internal/soc"
)

// Crossing identifies which threshold Vc crossed.
type Crossing int

const (
	// CrossLow means Vc fell below Vlow: harvested power is short.
	CrossLow Crossing = iota
	// CrossHigh means Vc rose above Vhigh: harvested power is plentiful.
	CrossHigh
)

// String implements fmt.Stringer.
func (c Crossing) String() string {
	switch c {
	case CrossLow:
		return "low"
	case CrossHigh:
		return "high"
	default:
		return fmt.Sprintf("Crossing(%d)", int(c))
	}
}

// HotplugSemantics selects how the derivative (core hot-plug) response is
// derived from the slope estimate. The paper's flowchart (Fig. 5) and its
// Eq. 2 differ subtly; both are implemented and ablated.
type HotplugSemantics int

const (
	// SemanticsFlowchart (default) follows Fig. 5: the big-core test
	// (τ < Vq/β) is evaluated first and, when it fires, the LITTLE test
	// is skipped — exactly one core toggles per crossing.
	SemanticsFlowchart HotplugSemantics = iota
	// SemanticsEq2 reads Eq. 2 literally: a slope above β toggles a big
	// core AND (since β > α implies the α test also passes) a LITTLE
	// core in the same crossing.
	SemanticsEq2
)

// String implements fmt.Stringer.
func (s HotplugSemantics) String() string {
	switch s {
	case SemanticsFlowchart:
		return "flowchart"
	case SemanticsEq2:
		return "eq2"
	default:
		return fmt.Sprintf("HotplugSemantics(%d)", int(s))
	}
}

// Params are the controller's tuning parameters (paper Section II-A/B).
type Params struct {
	// VWidth is the initial separation of Vhigh and Vlow, volts.
	VWidth float64
	// VQ is the threshold slide applied on each crossing, volts.
	VQ float64
	// Alpha is the minimum |dVc/dt| (V/s) that warrants toggling a
	// LITTLE core.
	Alpha float64
	// Beta is the minimum |dVc/dt| (V/s) that warrants toggling a big
	// core. Beta must be >= Alpha.
	Beta float64
	// Semantics selects the hot-plug decision rule.
	Semantics HotplugSemantics
	// Order is the transition sequencing passed to the platform.
	Order soc.TransitionOrder
}

// DefaultParams returns the simulation-optimal parameters the paper
// selects in Section III: Vwidth=144 mV, Vq=47.9 mV, α=0.120 V/s,
// β=0.479 V/s, with the flowchart semantics and the core-first transition
// order the paper adopts from Table I.
func DefaultParams() Params {
	return Params{
		VWidth:    0.144,
		VQ:        0.0479,
		Alpha:     0.120,
		Beta:      0.479,
		Semantics: SemanticsFlowchart,
		Order:     soc.CoreFirst,
	}
}

// Fig6Params returns the parameter set of the paper's Fig. 6 simulation:
// Vwidth=0.2 V, Vq=80 mV, α=0.1 V/s, β=0.12 V/s.
func Fig6Params() Params {
	p := DefaultParams()
	p.VWidth, p.VQ, p.Alpha, p.Beta = 0.2, 0.080, 0.10, 0.12
	return p
}

// Fig11Params returns the deliberately large illustration parameters of
// the paper's Fig. 11: Vwidth=335 mV, Vq=190 mV, α=0.238 V/s, β=0.633 V/s.
func Fig11Params() Params {
	p := DefaultParams()
	p.VWidth, p.VQ, p.Alpha, p.Beta = 0.335, 0.190, 0.238, 0.633
	return p
}

// Validate checks parameter plausibility.
func (p Params) Validate() error {
	switch {
	case p.VWidth <= 0:
		return fmt.Errorf("core: VWidth must be positive, got %g", p.VWidth)
	case p.VQ <= 0:
		return fmt.Errorf("core: VQ must be positive, got %g", p.VQ)
	case p.Alpha <= 0:
		return fmt.Errorf("core: Alpha must be positive, got %g", p.Alpha)
	case p.Beta < p.Alpha:
		return fmt.Errorf("core: Beta (%g) must be >= Alpha (%g)", p.Beta, p.Alpha)
	}
	return nil
}

// Decision is the controller's response to a threshold crossing.
type Decision struct {
	// Target is the OPP the platform should move to (may equal the
	// previous OPP when every dimension is already at its bound).
	Target soc.OPP
	// FreqDelta, BigDelta, LittleDelta record the applied step in each
	// dimension (-1, 0 or +1; Eq. 2 semantics can set both core deltas).
	FreqDelta, BigDelta, LittleDelta int
	// VHigh and VLow are the new (un-quantised) threshold values.
	VHigh, VLow float64
	// Tau is the time since the previous crossing, seconds.
	Tau float64
	// Slope is the estimated |dVc/dt| = Vq/τ, V/s.
	Slope float64
	// Order is the transition sequencing to use for this change.
	Order soc.TransitionOrder
}

// Controller holds the runtime state of the power-neutral scheme.
type Controller struct {
	params Params

	opp          soc.OPP
	vhigh, vlow  float64
	lastCross    float64
	crossings    int
	lowCrossings int
	bigToggles   int
	littleToggle int
	freqSteps    int
}

// New builds a controller. Thresholds are calibrated around the initial
// capacitor voltage per the paper's Eq. 1: Vhigh = Vc + Vwidth/2,
// Vlow = Vc − Vwidth/2. t0 seeds the τ timer.
func New(p Params, initialVC float64, initialOPP soc.OPP, t0 float64) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !initialOPP.Valid() {
		return nil, fmt.Errorf("core: invalid initial OPP %v", initialOPP)
	}
	c := &Controller{params: p, opp: initialOPP, lastCross: t0}
	c.Recalibrate(initialVC)
	return c, nil
}

// Params returns the controller's parameters.
func (c *Controller) Params() Params { return c.params }

// OPP returns the controller's current OPP belief.
func (c *Controller) OPP() soc.OPP { return c.opp }

// SetOPP overrides the controller's OPP belief — used when the platform
// clamps or rejects a request, keeping controller and platform coherent.
func (c *Controller) SetOPP(o soc.OPP) { c.opp = o.Clamp() }

// Thresholds returns the current (un-quantised) Vhigh and Vlow.
func (c *Controller) Thresholds() (vhigh, vlow float64) { return c.vhigh, c.vlow }

// Recalibrate re-centres the thresholds around vc per Eq. 1 without
// altering the OPP — used at start-up and after a brownout restart.
func (c *Controller) Recalibrate(vc float64) {
	c.vhigh = vc + c.params.VWidth/2
	c.vlow = vc - c.params.VWidth/2
}

// Stats reports cumulative controller activity.
type Stats struct {
	Crossings     int // total threshold crossings handled
	LowCrossings  int // crossings of Vlow
	FreqSteps     int // DVFS steps commanded
	BigToggles    int // big-core hot-plug operations commanded
	LittleToggles int // LITTLE-core hot-plug operations commanded
}

// Stats returns cumulative controller activity counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Crossings:     c.crossings,
		LowCrossings:  c.lowCrossings,
		FreqSteps:     c.freqSteps,
		BigToggles:    c.bigToggles,
		LittleToggles: c.littleToggle,
	}
}

// OnCrossing handles a threshold-crossing interrupt at time t and returns
// the control decision. The caller (the sim engine or a real interrupt
// handler) is responsible for actuating the decision on the platform and
// reprogramming the monitor hardware with the new thresholds.
func (c *Controller) OnCrossing(which Crossing, t float64) Decision {
	tau := t - c.lastCross
	c.lastCross = t
	c.crossings++
	if which == CrossLow {
		c.lowCrossings++
	}

	d := Response(c.params, which, tau, c.opp)

	if d.FreqDelta != 0 {
		c.freqSteps++
	}
	if d.BigDelta != 0 {
		c.bigToggles++
	}
	if d.LittleDelta != 0 {
		c.littleToggle++
	}

	// Slide thresholds by Vq in the crossing direction.
	if which == CrossLow {
		c.vhigh -= c.params.VQ
		c.vlow -= c.params.VQ
	} else {
		c.vhigh += c.params.VQ
		c.vlow += c.params.VQ
	}
	d.VHigh, d.VLow = c.vhigh, c.vlow
	c.opp = d.Target
	return d
}

// Response computes the pure control response — DVFS step and hot-plug
// deltas — for a crossing of the given direction with inter-crossing time
// tau, from the OPP opp. It is exposed separately from Controller so the
// decision rule can be property-tested in isolation.
func Response(p Params, which Crossing, tau float64, opp soc.OPP) Decision {
	d := Decision{Target: opp.Clamp(), Tau: tau, Order: p.Order}
	if tau > 0 {
		d.Slope = p.VQ / tau
	} else {
		// Coincident crossings: treat as an arbitrarily steep slope.
		d.Slope = p.Beta * 1e6
	}

	dir := -1
	if which == CrossHigh {
		dir = +1
	}

	// 1. Linear DVFS response: one frequency step in the crossing
	// direction (paper Fig. 5, first box).
	next := d.Target
	next.FreqIdx += dir
	if next.FreqIdx >= 0 && next.FreqIdx < soc.NumFrequencyLevels {
		d.FreqDelta = dir
	} else {
		next.FreqIdx = d.Target.FreqIdx
	}

	// 2. Derivative hot-plug response.
	bigFires := d.Slope > p.Beta
	littleFires := d.Slope > p.Alpha
	switch p.Semantics {
	case SemanticsFlowchart:
		if bigFires {
			next, d.BigDelta, d.LittleDelta = applyCoreDelta(next, dir, true)
		} else if littleFires {
			next, d.BigDelta, d.LittleDelta = applyCoreDelta(next, dir, false)
		}
	case SemanticsEq2:
		if bigFires {
			var db, dl int
			next, db, dl = applyCoreDelta(next, dir, true)
			d.BigDelta += db
			d.LittleDelta += dl
		}
		if littleFires {
			var db, dl int
			next, db, dl = applyCoreDelta(next, dir, false)
			d.BigDelta += db
			d.LittleDelta += dl
		}
	}

	d.Target = next
	return d
}

// applyCoreDelta toggles one core of the preferred type in direction dir
// (+1 add, -1 remove), falling back to the other type when the preferred
// dimension is at its bound (e.g. a steep drop with no big cores online
// still sheds a LITTLE core; a steep rise with all big cores online still
// adds a LITTLE core). It returns the new OPP and the applied deltas.
func applyCoreDelta(o soc.OPP, dir int, preferBig bool) (out soc.OPP, dBig, dLittle int) {
	out = o
	tryBig := func() bool {
		n := out.Config.Big + dir
		if n >= 0 && n <= 4 {
			out.Config.Big = n
			dBig = dir
			return true
		}
		return false
	}
	tryLittle := func() bool {
		n := out.Config.Little + dir
		if n >= 1 && n <= 4 {
			out.Config.Little = n
			dLittle = dir
			return true
		}
		return false
	}
	if preferBig {
		if !tryBig() {
			tryLittle()
		}
	} else {
		if !tryLittle() {
			tryBig()
		}
	}
	return out, dBig, dLittle
}
