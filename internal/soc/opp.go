// Package soc models the load platform of the paper's experiments: the
// ODROID-XU4 board built around the Samsung Exynos5422 big.LITTLE MP-SoC
// (4× 'LITTLE' Cortex-A7 + 4× 'big' Cortex-A15).
//
// The model exposes exactly the surfaces the power-neutral controller and
// the baseline governors interact with:
//
//   - an operating-performance-point (OPP) space: 8 DVFS frequency levels ×
//     core configurations (1..4 LITTLE, 0..4 big cores);
//   - a board power model P(f, cores, utilisation) calibrated to Fig. 4;
//   - a performance model (instructions/s and raytrace frames/s) calibrated
//     to Fig. 7;
//   - a transition-latency model for DVFS steps and core hot-plugging
//     calibrated to Fig. 10;
//   - a transition state machine that accounts time and charge spent while
//     switching OPPs (paper Table I).
package soc

import (
	"fmt"
)

// CoreConfig is a big.LITTLE core configuration: how many LITTLE (A7) and
// big (A15) cores are online. At least one LITTLE core stays online to
// host the OS and the power-budgeting software.
type CoreConfig struct {
	Little int // online Cortex-A7 cores, 1..4
	Big    int // online Cortex-A15 cores, 0..4
}

// TotalCores returns the number of online cores.
func (c CoreConfig) TotalCores() int { return c.Little + c.Big }

// String implements fmt.Stringer ("4xA7+2xA15").
func (c CoreConfig) String() string {
	if c.Big == 0 {
		return fmt.Sprintf("%dxA7", c.Little)
	}
	return fmt.Sprintf("%dxA7+%dxA15", c.Little, c.Big)
}

// Valid reports whether the configuration is inside the platform envelope.
func (c CoreConfig) Valid() bool {
	return c.Little >= 1 && c.Little <= 4 && c.Big >= 0 && c.Big <= 4
}

// Clamp returns the configuration clamped into the platform envelope.
func (c CoreConfig) Clamp() CoreConfig {
	out := c
	if out.Little < 1 {
		out.Little = 1
	}
	if out.Little > 4 {
		out.Little = 4
	}
	if out.Big < 0 {
		out.Big = 0
	}
	if out.Big > 4 {
		out.Big = 4
	}
	return out
}

// ConfigLadder returns the core-configuration ladder the paper benchmarks
// in Fig. 4: LITTLE cores enabled first, big cores added once all four
// LITTLE cores are online. Index 0 is the minimal configuration (1×A7),
// index 7 the maximal (4×A7 + 4×A15). The runtime controller is not
// limited to these configurations (Fig. 11 shows e.g. 2×A7+2×A15), but
// the ladder orders the benchmarked power/performance curves.
func ConfigLadder() []CoreConfig {
	return []CoreConfig{
		{Little: 1}, {Little: 2}, {Little: 3}, {Little: 4},
		{Little: 4, Big: 1}, {Little: 4, Big: 2}, {Little: 4, Big: 3}, {Little: 4, Big: 4},
	}
}

// LadderIndex returns the position of c on the configuration ladder, or an
// error if c is not a ladder configuration (e.g. 2×A7+1×A15).
func LadderIndex(c CoreConfig) (int, error) {
	for i, lc := range ConfigLadder() {
		if lc == c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("soc: %v is not on the hot-plug ladder", c)
}

// FrequencyLevels returns the paper's 8 DVFS frequencies in hertz,
// ascending: 0.2, 0.45, 0.72, 0.92, 1.1, 1.2, 1.3, 1.4 GHz (Section III,
// chosen by the authors for linearly spaced power consumption).
func FrequencyLevels() []float64 {
	return []float64{0.2e9, 0.45e9, 0.72e9, 0.92e9, 1.1e9, 1.2e9, 1.3e9, 1.4e9}
}

// NumFrequencyLevels is len(FrequencyLevels()).
const NumFrequencyLevels = 8

// NumLadderConfigs is len(ConfigLadder()).
const NumLadderConfigs = 8

// OPP is an operating performance point: a frequency level applied to a
// core configuration.
type OPP struct {
	FreqIdx int        // index into FrequencyLevels(), 0 = slowest
	Config  CoreConfig // online core configuration
}

// Valid reports whether the frequency index and configuration are in range.
func (o OPP) Valid() bool {
	return o.FreqIdx >= 0 && o.FreqIdx < NumFrequencyLevels && o.Config.Valid()
}

// Frequency returns the OPP's clock frequency in hertz.
func (o OPP) Frequency() float64 { return FrequencyLevels()[o.Clamp().FreqIdx] }

// String implements fmt.Stringer ("4xA7+1xA15@1.10GHz").
func (o OPP) String() string {
	return fmt.Sprintf("%v@%.2fGHz", o.Config, o.Frequency()/1e9)
}

// MinOPP is the lowest operating point (1×A7 at 200 MHz).
func MinOPP() OPP { return OPP{FreqIdx: 0, Config: CoreConfig{Little: 1}} }

// MaxOPP is the highest operating point (4×A7+4×A15 at 1.4 GHz).
func MaxOPP() OPP {
	return OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4, Big: 4}}
}

// Clamp returns the OPP with the frequency index and configuration clamped
// into range.
func (o OPP) Clamp() OPP {
	c := o
	if c.FreqIdx < 0 {
		c.FreqIdx = 0
	}
	if c.FreqIdx >= NumFrequencyLevels {
		c.FreqIdx = NumFrequencyLevels - 1
	}
	c.Config = c.Config.Clamp()
	return c
}
