// Package coord is the distributed study coordinator: the orchestration
// layer that turns `pnstudy -shard` per machine plus hand-merged
// checkpoint files into a push-button million-run study.
//
// The Server expands a study into fixed-size ledger chunks, leases
// chunk ranges to workers over a small HTTP/JSON protocol, collects
// per-chunk study.Checkpoint submissions, re-leases chunks whose lease
// expired (a straggling or dead worker) with per-chunk retry counting
// and backoff, and refuses submissions that fail checkpoint validation
// or carry the wrong study fingerprint. Accepted chunks stream through
// a study.Folder — the canonical-ledger-order pre-merge — so the
// coordinator's histogram state stays O(outstanding chunks) however
// large the study, live per-axis marginals are available while chunks
// land, and the final outcome is bit-identical to a single-process
// Study.Run.
//
// The Worker (client.go) is the matching execution loop behind
// `pnstudy -worker <url>`: fetch the coordinator's study recipe, verify
// fingerprints agree, then lease → RunChunk → submit until the study is
// done.
//
// Failure semantics: a worker that dies mid-lease simply lets the lease
// expire — its chunk returns to the queue and another worker re-runs
// it (re-execution is safe: chunks are deterministic and the folder
// accepts exactly one submission per chunk). A chunk that fails
// MaxAttempts leases marks the whole study failed — by then the chunk
// is evidently poisoned, and silently dropping it would break the
// complete-ledger contract.
package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pnps/internal/study"
)

// Protocol types. All endpoints speak JSON.
//
//	GET  /v1/study   → StudyInfo
//	POST /v1/lease   LeaseRequest → Lease
//	POST /v1/chunks  Submission   → SubmitResult
//	GET  /v1/status  → Status
//	GET  /v1/outcome → study JSON aggregate (404 until done)

// StudyInfo is the coordinator's published study identity: the
// fingerprint workers must reproduce locally before touching the
// ledger, the chunk geometry, and the serialisable recipe (opaque to
// the coordinator) workers build their study from.
type StudyInfo struct {
	Name        string            `json:"name"`
	Fingerprint study.Fingerprint `json:"fingerprint"`
	TotalTasks  int               `json:"total_tasks"`
	ChunkSize   int               `json:"chunk_size"`
	NumChunks   int               `json:"num_chunks"`
	Recipe      json.RawMessage   `json:"recipe,omitempty"`
}

// LeaseRequest asks for the next chunk to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is the coordinator's answer: a granted chunk, "come back in
// RetryAfterMS" (everything is leased or backing off), or "the study is
// over" (Done, with Failed set when it ended in error).
type Lease struct {
	Granted      bool            `json:"granted"`
	Done         bool            `json:"done,omitempty"`
	Failed       string          `json:"failed,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Chunk        int             `json:"chunk,omitempty"`
	Range        study.TaskRange `json:"range,omitempty"`
	Attempt      int             `json:"attempt,omitempty"`
	LeaseID      string          `json:"lease_id,omitempty"`
	TTLMS        int64           `json:"ttl_ms,omitempty"`
}

// Submission delivers one executed chunk. The checkpoint rides as raw
// JSON so the server can push it through study.ReadCheckpoint — the
// same validating deserialisation path files go through.
type Submission struct {
	Worker     string          `json:"worker"`
	Chunk      int             `json:"chunk"`
	LeaseID    string          `json:"lease_id"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// SubmitResult acknowledges a submission. Duplicate marks a replayed
// submission of an already-folded chunk by the lease that completed it:
// accepted idempotently (the first copy did the folding), so a worker
// whose 200 was lost in transit can safely retry.
type SubmitResult struct {
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status is the live view of a coordinated study.
type Status struct {
	TotalTasks   int              `json:"total_tasks"`
	FoldedTasks  int              `json:"folded_tasks"`
	TotalChunks  int              `json:"total_chunks"`
	DoneChunks   int              `json:"done_chunks"`
	LeasedChunks int              `json:"leased_chunks"`
	Done         bool             `json:"done"`
	Failed       string           `json:"failed,omitempty"`
	Marginals    []study.Marginal `json:"marginals,omitempty"`
}

// Config parameterises a coordinator.
type Config struct {
	// Study is the matrix to execute (the study definition is code; the
	// serialisable Recipe below is what workers rebuild it from).
	Study study.Study
	// ChunkSize is the lease granularity in ledger tasks (default 64).
	ChunkSize int
	// LeaseTTL is how long a worker may sit on a chunk before it is
	// re-leased to someone else (default 2m). It bounds the damage of a
	// dead or straggling worker: one TTL of wasted wall clock per loss.
	LeaseTTL time.Duration
	// MaxAttempts bounds leases per chunk (default 5); exhausting it
	// fails the study rather than spinning on a poisoned chunk.
	MaxAttempts int
	// Backoff delays the re-lease of an expired chunk, scaled linearly
	// by its attempt count (default 1s). It keeps a chunk that kills
	// workers from hot-looping through its attempt budget.
	Backoff time.Duration
	// Recipe is the serialisable study recipe served to workers
	// (typically a studycli.Config); the coordinator never parses it.
	Recipe json.RawMessage
	// JournalPath, when non-empty, makes accepted chunks durable: every
	// accepted submission is appended to a write-ahead journal at this
	// path before the worker is acknowledged, and an existing journal is
	// replayed on startup (through the same validating Folder path live
	// submissions take) so a restarted coordinator resumes leasing only
	// the still-missing chunks. See journal.go for the format and the
	// torn-tail/corruption taxonomy.
	JournalPath string
	// JournalSync selects the journal fsync policy (default SyncAlways).
	JournalSync SyncPolicy
	// MaxBodyBytes caps POST /v1/chunks request bodies (default 64 MiB);
	// oversized submissions are refused before they buffer in memory.
	MaxBodyBytes int64
	// Logf, when non-nil, receives lease-lifecycle diagnostics.
	Logf func(format string, args ...any)
	// OnChunk, when non-nil, is called after every accepted chunk with
	// a status snapshot including live marginals — the streaming hook
	// pncoord prints from. Called without the server lock held.
	OnChunk func(s Status)

	// now overrides the clock in tests.
	now func() time.Time
}

type chunkPhase uint8

const (
	chunkPending chunkPhase = iota
	chunkLeased
	chunkDone
)

// chunkState is one chunk's position in the lease state machine:
// pending → leased → done, with expiry kicking leased back to pending
// (attempt count retained, re-lease gated by notBefore backoff).
// doneLease remembers which lease completed the chunk, so a worker
// replaying a submission whose acknowledgement was lost is answered
// idempotently instead of conflicting with itself.
type chunkState struct {
	phase     chunkPhase
	attempts  int
	leaseID   string
	worker    string
	expires   time.Time
	notBefore time.Time
	doneLease string
}

// Server coordinates one study across any number of workers. Create
// with NewServer, expose Handler over HTTP, wait on Done.
type Server struct {
	cfg  Config
	info StudyInfo

	mu         sync.Mutex
	folder     *study.Folder
	chunks     []chunkState
	doneChunks int
	leaseSeq   int
	failed     error
	outcome    *study.StudyOutcome
	done       chan struct{}
	journal    *Journal
	draining   bool
}

// NewServer validates the study, prepares the chunk ledger and — when
// Config.JournalPath is set — opens the write-ahead journal, replaying
// any chunks a previous incarnation already made durable.
func NewServer(cfg Config) (*Server, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	folder, err := cfg.Study.NewFolder(cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		folder: folder,
		chunks: make([]chunkState, folder.NumChunks()),
		done:   make(chan struct{}),
		info: StudyInfo{
			Name:        cfg.Study.Name,
			Fingerprint: folder.Fingerprint(),
			TotalTasks:  folder.TotalTasks(),
			ChunkSize:   cfg.ChunkSize,
			NumChunks:   folder.NumChunks(),
			Recipe:      cfg.Recipe,
		},
	}
	if cfg.JournalPath != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openJournal opens (or creates) the configured journal and replays an
// existing file's records through the validating fold path, leaving the
// server resumed at exactly the durable frontier.
func (s *Server) openJournal() error {
	j, replay, err := OpenJournal(s.cfg.JournalPath, s.info.Fingerprint,
		s.info.TotalTasks, s.info.ChunkSize, s.info.NumChunks, s.cfg.JournalSync)
	if err != nil {
		return err
	}
	if replay.TornBytes > 0 {
		s.logf("coord: journal %s: truncated %d-byte torn tail (a crash interrupted the last append; its chunk will re-lease)",
			s.cfg.JournalPath, replay.TornBytes)
	}
	for i, rec := range replay.Records {
		if rec.Chunk < 0 || rec.Chunk >= len(s.chunks) {
			j.Close()
			return fmt.Errorf("coord: journal record %d: chunk %d outside [0,%d)", i, rec.Chunk, len(s.chunks))
		}
		if s.chunks[rec.Chunk].phase == chunkDone {
			j.Close()
			return fmt.Errorf("coord: journal record %d: chunk %d journalled twice", i, rec.Chunk)
		}
		cp, err := study.ReadCheckpoint(bytes.NewReader(rec.Checkpoint))
		if err != nil {
			j.Close()
			return fmt.Errorf("coord: journal record %d (chunk %d): %w", i, rec.Chunk, err)
		}
		if err := s.folder.Fold(rec.Chunk, cp); err != nil {
			j.Close()
			return fmt.Errorf("coord: journal record %d (chunk %d): %w", i, rec.Chunk, err)
		}
		s.chunks[rec.Chunk].phase = chunkDone
		s.chunks[rec.Chunk].doneLease = rec.LeaseID
		s.doneChunks++
	}
	s.journal = j
	if len(replay.Records) > 0 {
		s.logf("coord: journal %s: replayed %d durable chunks (%d tasks), %d chunks still missing",
			s.cfg.JournalPath, s.doneChunks, s.folder.FoldedTasks(), len(s.chunks)-s.doneChunks)
	}
	if s.doneChunks == len(s.chunks) {
		out, err := s.folder.Outcome()
		if err != nil {
			return fmt.Errorf("coord: outcome from fully-journalled study: %w", err)
		}
		s.outcome = out
		close(s.done)
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Done is closed when every chunk has folded or the study failed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Drain puts the server into graceful-shutdown mode: no new leases are
// granted (workers are told to retry, and will find the restarted
// coordinator there when they do), while in-flight submissions are
// still accepted and journalled — work already paid for is not thrown
// away on the way down.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.logf("coord: draining — leases suspended, in-flight submissions still accepted")
}

// Close flushes and closes the journal (if any). Call after the HTTP
// server has shut down, so no submission can race the close.
func (s *Server) Close() error {
	s.mu.Lock()
	j := s.journal
	s.journal = nil
	s.mu.Unlock()
	return j.Close()
}

// Outcome returns the completed study aggregate. It errors until Done
// is closed, and reports the failure if the study failed.
func (s *Server) Outcome() (*study.StudyOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, s.failed
	}
	if s.outcome == nil {
		return nil, errors.New("coord: study not complete")
	}
	return s.outcome, nil
}

// Info returns the published study identity.
func (s *Server) Info() StudyInfo { return s.info }

// Status snapshots the live study state.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Server) statusLocked() Status {
	st := Status{
		TotalTasks:  s.folder.TotalTasks(),
		FoldedTasks: s.folder.FoldedTasks(),
		TotalChunks: len(s.chunks),
		DoneChunks:  s.doneChunks,
		Done:        s.outcome != nil || s.failed != nil,
		Marginals:   s.folder.Marginals(),
	}
	for i := range s.chunks {
		if s.chunks[i].phase == chunkLeased {
			st.LeasedChunks++
		}
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

// failLocked marks the study failed and releases waiters.
func (s *Server) failLocked(err error) {
	if s.failed != nil {
		return
	}
	s.failed = err
	s.logf("coord: study failed: %v", err)
	close(s.done)
}

// lease grants the next available chunk, reclaiming expired leases
// first. See Lease for the three possible answers.
func (s *Server) lease(worker string) Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.now()

	if s.failed != nil {
		return Lease{Done: true, Failed: s.failed.Error()}
	}
	if s.outcome != nil {
		return Lease{Done: true}
	}
	if s.draining {
		// Shutting down: park the workers. They retry with backoff and
		// find the restarted coordinator (same journal) when it returns.
		return Lease{RetryAfterMS: time.Second.Milliseconds()}
	}

	// Reclaim expired leases: the holder is presumed dead or straggling;
	// the chunk re-queues behind an attempt-scaled backoff.
	for i := range s.chunks {
		c := &s.chunks[i]
		if c.phase == chunkLeased && now.After(c.expires) {
			s.logf("coord: lease %s (chunk %d, worker %s) expired after attempt %d — re-queueing",
				c.leaseID, i, c.worker, c.attempts)
			c.phase = chunkPending
			c.leaseID = ""
			c.worker = ""
			c.notBefore = now.Add(time.Duration(c.attempts) * s.cfg.Backoff)
		}
	}

	// Grant the lowest eligible pending chunk; track when the next
	// ineligible one frees up so idle workers poll sensibly.
	retry := s.cfg.LeaseTTL
	for i := range s.chunks {
		c := &s.chunks[i]
		switch c.phase {
		case chunkDone:
			continue
		case chunkLeased:
			if d := c.expires.Sub(now); d < retry {
				retry = d
			}
			continue
		}
		if now.Before(c.notBefore) {
			if d := c.notBefore.Sub(now); d < retry {
				retry = d
			}
			continue
		}
		if c.attempts >= s.cfg.MaxAttempts {
			err := fmt.Errorf("coord: chunk %d exhausted %d lease attempts", i, c.attempts)
			s.failLocked(err)
			return Lease{Done: true, Failed: err.Error()}
		}
		c.phase = chunkLeased
		c.attempts++
		s.leaseSeq++
		c.leaseID = fmt.Sprintf("lease-%d-chunk-%d-attempt-%d", s.leaseSeq, i, c.attempts)
		c.worker = worker
		c.expires = now.Add(s.cfg.LeaseTTL)
		s.logf("coord: leased chunk %d %v to %s (attempt %d, lease %s)",
			i, s.folder.Range(i), worker, c.attempts, c.leaseID)
		return Lease{
			Granted: true, Chunk: i, Range: s.folder.Range(i),
			Attempt: c.attempts, LeaseID: c.leaseID,
			TTLMS: s.cfg.LeaseTTL.Milliseconds(),
		}
	}

	// Cap the idle hint: the earliest a chunk can free up is a lease
	// expiry, but the study usually *finishes* long before that — a
	// worker parked for the full residual TTL would sleep out the
	// completion (with the 2 m default, minutes past the last fold).
	// One poll per second per idle worker is negligible load.
	if retry > time.Second {
		retry = time.Second
	}
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	return Lease{RetryAfterMS: retry.Milliseconds()}
}

// submit validates and folds one chunk submission. The HTTP status
// distinguishes client mistakes (400), submissions that lost their
// lease race (409 — benign, the worker moves on) and checkpoints that
// failed validation (422 — the data is wrong and was refused).
func (s *Server) submit(sub Submission) (int, SubmitResult) {
	reject := func(code int, err error) (int, SubmitResult) {
		return code, SubmitResult{Error: err.Error()}
	}
	if sub.Chunk < 0 || sub.Chunk >= len(s.chunks) {
		return reject(http.StatusBadRequest, fmt.Errorf("chunk %d outside [0,%d)", sub.Chunk, len(s.chunks)))
	}
	if len(sub.Checkpoint) == 0 {
		return reject(http.StatusBadRequest, errors.New("submission carries no checkpoint"))
	}
	// Deserialise through the validating checkpoint reader before
	// taking the lock: hostile payloads never reach the fold, and the
	// server never parses JSON while holding its state mutex.
	cp, err := study.ReadCheckpoint(bytes.NewReader(sub.Checkpoint))
	if err != nil {
		return reject(http.StatusUnprocessableEntity, err)
	}

	s.mu.Lock()
	c := &s.chunks[sub.Chunk]
	if c.phase == chunkDone && sub.LeaseID != "" && sub.LeaseID == c.doneLease {
		// The lease that completed this chunk is submitting again: its
		// 200 was lost in transit and the worker retried. The first copy
		// already folded and journalled; acknowledge idempotently.
		s.mu.Unlock()
		s.logf("coord: chunk %d duplicate submission from %s (lease %s) — acknowledged idempotently", sub.Chunk, sub.Worker, sub.LeaseID)
		return http.StatusOK, SubmitResult{Accepted: true, Duplicate: true}
	}
	switch {
	case s.failed != nil:
		err = fmt.Errorf("study failed: %v", s.failed)
	case c.phase == chunkDone:
		err = fmt.Errorf("chunk %d already folded", sub.Chunk)
	case c.phase != chunkLeased || c.leaseID != sub.LeaseID:
		// The lease expired and someone else holds the chunk now, or the
		// lease id is plain wrong. (An expired lease that nobody has
		// re-claimed still matches leaseID and is accepted: the work is
		// done and the result is valid — re-leasing it would only waste
		// another worker's time.)
		err = fmt.Errorf("lease %q for chunk %d superseded", sub.LeaseID, sub.Chunk)
	}
	if err != nil {
		s.mu.Unlock()
		return reject(http.StatusConflict, err)
	}

	if err := s.folder.Fold(sub.Chunk, cp); err != nil {
		// Validation failures leave the folder untouched; the lease
		// stands, so the worker (or the next lease after expiry) can
		// still complete the chunk correctly.
		s.mu.Unlock()
		return reject(http.StatusUnprocessableEntity, err)
	}
	// Journal before acknowledging: once the worker sees 200 the chunk
	// must survive a coordinator crash. An append failure (disk gone)
	// fails the study — continuing would silently forfeit durability.
	if err := s.journal.Append(JournalRecord{
		Chunk: sub.Chunk, LeaseID: sub.LeaseID, Worker: sub.Worker, Checkpoint: sub.Checkpoint,
	}); err != nil {
		s.failLocked(err)
		s.mu.Unlock()
		return reject(http.StatusInternalServerError, err)
	}
	c.phase = chunkDone
	c.leaseID = ""
	c.doneLease = sub.LeaseID
	s.doneChunks++
	s.logf("coord: chunk %d folded (%d/%d) from %s", sub.Chunk, s.doneChunks, len(s.chunks), sub.Worker)

	var snapshot Status
	notify := s.cfg.OnChunk != nil
	if s.doneChunks == len(s.chunks) {
		out, err := s.folder.Outcome()
		if err != nil {
			s.failLocked(fmt.Errorf("coord: final fold: %w", err))
			s.mu.Unlock()
			return reject(http.StatusInternalServerError, err)
		}
		s.outcome = out
		close(s.done)
	}
	if notify {
		snapshot = s.statusLocked()
	}
	s.mu.Unlock()

	if notify {
		s.cfg.OnChunk(snapshot)
	}
	return http.StatusOK, SubmitResult{Accepted: true}
}

// Handler returns the coordinator's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/study", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.info)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		// Lease requests are a worker name; anything beyond 1 MiB is abuse.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, s.lease(req.Worker))
	})
	mux.HandleFunc("POST /v1/chunks", func(w http.ResponseWriter, r *http.Request) {
		var sub Submission
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&sub); err != nil {
			code := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			http.Error(w, "bad submission: "+err.Error(), code)
			return
		}
		code, res := s.submit(sub)
		writeJSON(w, code, res)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("GET /v1/outcome", func(w http.ResponseWriter, r *http.Request) {
		out, err := s.Outcome()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := out.WriteJSON(w); err != nil {
			s.logf("coord: writing outcome: %v", err)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
