package workload

import (
	"fmt"
	"math"
)

// LoadProfile yields CPU utilisation in [0,1] as a function of time — the
// signal the simulated Linux governors sample. The paper's evaluation
// workload (continuous ray tracing) is FullLoad; the other profiles
// support governor unit tests and ablations.
type LoadProfile interface {
	Load(t float64) float64
}

// FullLoad is the paper's CPU-saturating ray-tracing workload.
type FullLoad struct{}

// Load implements LoadProfile.
func (FullLoad) Load(float64) float64 { return 1 }

// ConstantLoad is a fixed utilisation level.
type ConstantLoad float64

// Load implements LoadProfile.
func (c ConstantLoad) Load(float64) float64 {
	return math.Min(math.Max(float64(c), 0), 1)
}

// SquareLoad alternates between High and Low utilisation with the given
// period and duty cycle.
type SquareLoad struct {
	High, Low float64
	Period    float64
	Duty      float64 // fraction of the period spent at High, 0..1
}

// Validate checks the profile parameters.
func (s SquareLoad) Validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("workload: square load period must be positive, got %g", s.Period)
	}
	if s.Duty < 0 || s.Duty > 1 {
		return fmt.Errorf("workload: duty cycle %g outside [0,1]", s.Duty)
	}
	return nil
}

// Load implements LoadProfile.
func (s SquareLoad) Load(t float64) float64 {
	if s.Period <= 0 {
		return math.Min(math.Max(s.High, 0), 1)
	}
	phase := math.Mod(t, s.Period)
	if phase < 0 {
		phase += s.Period
	}
	v := s.Low
	if phase < s.Duty*s.Period {
		v = s.High
	}
	return math.Min(math.Max(v, 0), 1)
}

// RampLoad rises linearly from 0 to 1 over Duration, then holds.
type RampLoad struct {
	Duration float64
}

// Load implements LoadProfile.
func (r RampLoad) Load(t float64) float64 {
	if r.Duration <= 0 || t >= r.Duration {
		return 1
	}
	if t <= 0 {
		return 0
	}
	return t / r.Duration
}
