package study

import (
	"context"
	"strings"
	"testing"
)

// TestChunkGeometry: the ledger cuts into fixed-size contiguous blocks
// with a short tail.
func TestChunkGeometry(t *testing.T) {
	st := testStudy(0) // 8 tasks
	chunks, err := st.Chunks(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskRange{{0, 3}, {3, 6}, {6, 8}}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %v, want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunk %d = %v, want %v", i, chunks[i], want[i])
		}
	}
	if _, err := st.Chunks(0); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := st.RunChunk(context.Background(), TaskRange{Lo: 6, Hi: 9}); err == nil {
		t.Error("out-of-ledger chunk range accepted")
	}
	if _, err := st.RunChunk(context.Background(), TaskRange{Lo: 3, Hi: 3}); err == nil {
		t.Error("empty chunk range accepted")
	}
}

// TestFolderBitIdentical: executing every chunk independently and
// folding the checkpoints — in order and fully out of order — rebuilds
// the unsharded outcome bit for bit, the pre-merge contract the
// coordinator relies on.
func TestFolderBitIdentical(t *testing.T) {
	ref, err := testStudy(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 3, 8, 20} {
		st := testStudy(0)
		chunks, err := st.Chunks(size)
		if err != nil {
			t.Fatal(err)
		}
		cps := make([]*Checkpoint, len(chunks))
		for i, r := range chunks {
			if cps[i], err = st.RunChunk(context.Background(), r); err != nil {
				t.Fatalf("chunk %d %v: %v", i, r, err)
			}
		}

		for _, order := range [][]int{forward(len(chunks)), reverse(len(chunks))} {
			f, err := st.NewFolder(size)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range order {
				if err := f.Fold(i, cps[i]); err != nil {
					t.Fatalf("size %d fold chunk %d: %v", size, i, err)
				}
			}
			if !f.Complete() {
				t.Fatalf("size %d: folder incomplete after all chunks, missing %v", size, f.Missing())
			}
			got, err := f.Outcome()
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, "chunk fold", ref, got)
		}
	}
}

func forward(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func reverse(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// TestFolderBuffersOutOfOrder: a chunk landing beyond the in-order
// frontier is buffered, not folded; the frontier chunk releases it.
func TestFolderBuffersOutOfOrder(t *testing.T) {
	st := testStudy(0)
	chunks, err := st.Chunks(3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.NewFolder(3)
	if err != nil {
		t.Fatal(err)
	}
	last, err := st.RunChunk(context.Background(), chunks[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fold(2, last); err != nil {
		t.Fatal(err)
	}
	if f.FoldedTasks() != 0 {
		t.Fatalf("out-of-order chunk folded eagerly: %d tasks", f.FoldedTasks())
	}
	if got := f.Missing(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Missing() = %v, want [0 1]", got)
	}
	for i := 0; i < 2; i++ {
		cp, err := st.RunChunk(context.Background(), chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Fold(i, cp); err != nil {
			t.Fatal(err)
		}
	}
	if f.FoldedTasks() != f.TotalTasks() || !f.Complete() {
		t.Fatalf("frontier did not drain: %d/%d folded", f.FoldedTasks(), f.TotalTasks())
	}
	if len(f.Marginals()) == 0 {
		t.Error("no live marginals after folding")
	}
}

// TestFolderLiveMarginals: marginal snapshots are available mid-fold
// and only cover the folded prefix.
func TestFolderLiveMarginals(t *testing.T) {
	st := testStudy(0)
	f, err := st.NewFolder(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Marginals()) != 0 {
		t.Fatal("marginals before any fold")
	}
	cp, err := st.RunChunk(context.Background(), f.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fold(0, cp); err != nil {
		t.Fatal(err)
	}
	ms := f.Marginals()
	if len(ms) == 0 {
		t.Fatal("no marginals after first chunk")
	}
	total := 0
	for _, m := range ms {
		total += m.Summary.Runs
	}
	// 4 folded tasks × 2 axes = 8 marginal run-contributions.
	if total != 8 {
		t.Fatalf("marginal run-contributions = %d, want 8", total)
	}
	if _, err := f.Outcome(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete outcome error = %v", err)
	}
}

// TestFolderRejections: the folder refuses foreign fingerprints,
// wrong-coverage checkpoints, duplicate folds and out-of-range chunk
// indices — all before touching the accumulators.
func TestFolderRejections(t *testing.T) {
	st := testStudy(0)
	f, err := st.NewFolder(3)
	if err != nil {
		t.Fatal(err)
	}

	// A strided shard does not cover chunk 0's contiguous range.
	shard, err := st.RunShard(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fold(0, shard); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Fatalf("strided shard accepted as chunk: %v", err)
	}

	// A chunk of a different study (other seed) must be refused.
	other := st
	other.Seed++
	foreign, err := other.RunChunk(context.Background(), f.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fold(0, foreign); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign chunk accepted: %v", err)
	}

	// Corrupt records are rejected by validation.
	cp, err := st.RunChunk(context.Background(), f.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	bad := cp.clone()
	bad.Records[1].Index = bad.Records[0].Index
	if err := f.Fold(0, bad); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("corrupt chunk accepted: %v", err)
	}

	if err := f.Fold(-1, cp); err == nil {
		t.Error("negative chunk index accepted")
	}
	if err := f.Fold(f.NumChunks(), cp); err == nil {
		t.Error("past-end chunk index accepted")
	}

	// The genuine chunk folds; folding it again is an error.
	if err := f.Fold(0, cp); err != nil {
		t.Fatal(err)
	}
	if err := f.Fold(0, cp); err == nil || !strings.Contains(err.Error(), "already folded") {
		t.Fatalf("duplicate fold accepted: %v", err)
	}
	if f.FoldedTasks() != 3 {
		t.Fatalf("folded %d tasks, want 3", f.FoldedTasks())
	}
}
