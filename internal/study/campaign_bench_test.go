package study

import (
	"context"
	"fmt"
	"testing"

	"pnps/internal/scenario"
	"pnps/internal/sim"
)

// BenchmarkCampaignTraceFree is the campaign-scale hot-path benchmark:
// a Monte-Carlo campaign of short cloud-stressed power-neutral runs
// with trace-free aggregation (online stability, envelopes, dwell-time
// histogram). Memory per iteration is the campaign's whole footprint —
// O(runs) scalar outcomes, no series — so allocs/op and B/op here are
// the numbers the README "Performance" section quotes for trace-free
// campaigns. The engine=… sub-benchmarks run the same campaign on the
// scalar and the batched lockstep engine (bit-identical outcomes; the
// meanPct5 metric pins that on every record).
func BenchmarkCampaignTraceFree(b *testing.B) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 10
	engines := []struct {
		label, engine string
	}{
		{"engine=scalar", "scalar"},
		{fmt.Sprintf("engine=batched-w%d", sim.DefaultBatchWidth), "batched"},
	}
	for _, workers := range []int{1, 4} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, eng.label), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := Campaign{
						Base: base, Runs: 32, Seed: 17, Workers: workers,
						Engine:     eng.engine,
						VCHistBins: 64, VCHistLo: 4.0, VCHistHi: 6.0,
					}.Run(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(out.Summary.Stability.Mean*100, "meanPct5")
					}
				}
			})
		}
	}
}
