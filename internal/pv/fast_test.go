package pv

import (
	"math"
	"testing"
)

// accuracy grid shared by the fast-vs-exact comparisons: voltages from
// short circuit past Voc, irradiances from dawn to beyond full sun.
var (
	gridG = []float64{1, 20, 100, 250, 500, 850, 1000, 1200}
	gridV = []float64{0, 0.5, 1, 2, 3, 4, 4.5, 5, 5.3, 5.8, 6.2, 6.6, 7}
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(b))
}

// TestSolverCurrentAtMatchesExact sweeps an irradiance/voltage grid in an
// order that stresses the warm start (large jumps between consecutive
// solves) and requires agreement with the exact bracketed solver within
// 1e-6 relative — the accuracy bound the sim fast path is allowed.
func TestSolverCurrentAtMatchesExact(t *testing.T) {
	for _, arr := range []*Array{SouthamptonArray(), SmallArray()} {
		s := NewSolver(arr)
		for _, g := range gridG {
			for k := range gridV {
				// Alternate ends of the voltage range so the warm seed is
				// frequently far from the root.
				v := gridV[k]
				if k%2 == 1 {
					v = gridV[len(gridV)-1-k/2]
				}
				fast, err := s.CurrentAt(v, g)
				if err != nil {
					t.Fatalf("fast CurrentAt(%g, %g): %v", v, g, err)
				}
				exact, err := arr.CurrentAt(v, g)
				if err != nil {
					t.Fatalf("exact CurrentAt(%g, %g): %v", v, g, err)
				}
				if d := relDiff(fast, exact); d > 1e-6 {
					t.Errorf("CurrentAt(%g, %g): fast %g vs exact %g (rel %g)", v, g, fast, exact, d)
				}
			}
		}
	}
}

func TestSolverOpenCircuitVoltageMatchesExact(t *testing.T) {
	arr := SouthamptonArray()
	s := NewSolver(arr)
	for _, g := range gridG {
		fast, err := s.OpenCircuitVoltage(g)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := arr.OpenCircuitVoltage(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast, exact); d > 1e-6 {
			t.Errorf("Voc(%g): fast %g vs exact %g (rel %g)", g, fast, exact, d)
		}
		// The open-circuit current at the fast Voc must be ~zero.
		i, err := arr.CurrentAt(fast, g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(i) > 1e-9 {
			t.Errorf("I(Voc=%g, g=%g) = %g, want ~0", fast, g, i)
		}
	}
	if v, err := s.OpenCircuitVoltage(0); err != nil || v != 0 {
		t.Errorf("Voc(0) = %g, %v; want 0, nil", v, err)
	}
}

func TestSolverAvailablePowerMatchesExact(t *testing.T) {
	arr := SouthamptonArray()
	s := NewSolver(arr)
	for _, g := range gridG {
		fast, err := s.AvailablePower(g)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := arr.AvailablePower(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast, exact); d > 1e-6 {
			t.Errorf("AvailablePower(%g): fast %g vs exact %g (rel %g)", g, fast, exact, d)
		}
	}
	if p, err := s.AvailablePower(0); err != nil || p != 0 {
		t.Errorf("AvailablePower(0) = %g, %v; want 0, nil", p, err)
	}
}

// TestSolverMemoisation verifies repeated MPP queries at one irradiance
// hit the memo (same struct back) and that the memo caps rather than
// growing without bound.
func TestSolverMemoisation(t *testing.T) {
	s := NewSolver(SouthamptonArray())
	m1, err := s.MaximumPowerPoint(850)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.MaximumPowerPoint(850)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("memoised MPP differs: %+v vs %+v", m1, m2)
	}
	if len(s.mpp) != 1 {
		t.Errorf("memo holds %d entries, want 1", len(s.mpp))
	}
	// Fill past the cap and confirm the map was reset, not grown.
	for i := 0; i <= memoCap; i++ {
		if _, err := s.OpenCircuitVoltage(100 + float64(i)*1e-3); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.voc) > memoCap {
		t.Errorf("voc memo grew to %d entries, cap is %d", len(s.voc), memoCap)
	}
}

// TestSolverDeterministicGivenCallSequence: two solvers fed the same call
// sequence must produce bit-identical results (the per-engine ownership
// contract that keeps parallel sweeps reproducible).
func TestSolverDeterministicGivenCallSequence(t *testing.T) {
	s1 := NewSolver(SouthamptonArray())
	s2 := NewSolver(SouthamptonArray())
	for k := 0; k < 500; k++ {
		v := 5.3 + 1.5*math.Sin(float64(k)*0.7)
		g := 600 + 400*math.Cos(float64(k)*0.3)
		i1, err1 := s1.CurrentAt(v, g)
		i2, err2 := s2.CurrentAt(v, g)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if i1 != i2 {
			t.Fatalf("step %d: %g != %g", k, i1, i2)
		}
	}
}

// TestVocMemoSharingBitIdentical checks that solvers attached to a shared
// VocMemo return bit-identical Voc values to a private solver regardless
// of which lane warms the memo first, and that attachment is refused
// across value-unequal arrays.
func TestVocMemoSharingBitIdentical(t *testing.T) {
	arrA, arrB := SouthamptonArray(), SouthamptonArray()
	memo := NewVocMemo(arrA)

	sPriv := NewSolver(SouthamptonArray())
	sA, sB := NewSolver(arrA), NewSolver(arrB)
	if !sA.ShareVoc(memo) || !sB.ShareVoc(memo) {
		t.Fatal("ShareVoc refused value-equal arrays")
	}

	for _, g := range gridG {
		want, err := sPriv.OpenCircuitVoltage(g)
		if err != nil {
			t.Fatal(err)
		}
		// sA computes (memo miss), sB hits the entry sA wrote.
		gotA, err := sA.OpenCircuitVoltage(g)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := sB.OpenCircuitVoltage(g)
		if err != nil {
			t.Fatal(err)
		}
		if gotA != want || gotB != want {
			t.Errorf("Voc(%g): shared %g/%g vs private %g", g, gotA, gotB, want)
		}
	}

	small := SmallArray()
	if NewSolver(small).ShareVoc(memo) {
		t.Error("ShareVoc accepted a value-unequal array")
	}
	if NewSolver(small).ShareVoc(nil) {
		t.Error("ShareVoc accepted nil memo")
	}
}

// TestMPPCacheBitIdentical checks the exact-MPP cache returns the same
// bits as the uncached exact solve, across distinct arrays sharing one
// cache.
func TestMPPCacheBitIdentical(t *testing.T) {
	var cache MPPCache
	for _, arr := range []*Array{SouthamptonArray(), SmallArray()} {
		for _, g := range []float64{StandardIrradiance, 250, 850} {
			want, err := arr.MaximumPowerPoint(g)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ { // miss, then hit
				got, err := cache.MaximumPowerPoint(arr, g)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("pass %d: cached MPP %+v != exact %+v", pass, got, want)
				}
			}
		}
	}
}
