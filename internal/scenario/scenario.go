// Package scenario is the declarative run-assembly layer between the
// simulation engine and its consumers (experiments, CLIs, examples,
// campaigns). A Spec names every element of one co-simulation —
// harvesting source, storage node, platform, control scheme, workload
// and duration — as data; Assemble turns it into a runnable sim.Config
// with a fresh platform and controller, so a single Spec value can fan
// out across worker pools without shared mutable state.
//
// Specs are registered under stable names (see Register and the
// built-ins in builtin.go) and varied programmatically by Monte-Carlo
// campaigns (see Campaign): every stochastic element of a run derives
// from the explicit seed passed to Assemble/Run, never from global
// state, so campaigns stay bit-reproducible at any worker count.
package scenario

import (
	"errors"
	"fmt"

	"pnps/internal/core"
	"pnps/internal/governor"
	"pnps/internal/monitor"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// ProfileFunc builds the irradiance profile for one run. Stochastic
// profiles must draw all randomness from seed; span is the scenario
// duration (profiles that pre-generate events should cover it).
type ProfileFunc func(seed int64, span float64) pv.Profile

// SourceFunc builds a non-photovoltaic supply (e.g. a bench PSU) for
// one run.
type SourceFunc func(seed int64, span float64) (sim.Source, error)

// FixedProfile adapts an already-built profile into a ProfileFunc for
// specs whose irradiance does not depend on the seed.
func FixedProfile(p pv.Profile) ProfileFunc {
	return func(int64, float64) pv.Profile { return p }
}

// ControlKind selects the power-management scheme of a run.
type ControlKind int

const (
	// PowerNeutral runs the paper's threshold-interrupt controller.
	PowerNeutral ControlKind = iota
	// Static leaves the platform at its boot OPP (the paper's
	// "without control" baselines).
	Static
	// LinuxGovernor runs a named cpufreq baseline governor.
	LinuxGovernor
)

// Control declares the control scheme. The zero value is the paper's
// power-neutral controller with its published default parameters.
type Control struct {
	Kind ControlKind
	// Params tunes the power-neutral controller; the zero value means
	// core.DefaultParams().
	Params core.Params
	// Governor names the cpufreq baseline for LinuxGovernor runs.
	Governor string
}

// Controlled returns a power-neutral Control with explicit parameters.
func Controlled(p core.Params) Control { return Control{Kind: PowerNeutral, Params: p} }

// Uncontrolled returns a static (no runtime control) Control.
func Uncontrolled() Control { return Control{Kind: Static} }

// Governed returns a Linux-governor Control by cpufreq name.
func Governed(name string) Control { return Control{Kind: LinuxGovernor, Governor: name} }

// RestartPolicy enables brownout restarts (see sim.Config).
type RestartPolicy struct {
	// RestartVolts is the recovery threshold (0 → engine default 4.6 V).
	RestartVolts float64
	// RebootSeconds is the boot time (0 → engine default 8 s).
	RebootSeconds float64
	// Cooldown is the minimum off-time before a restart attempt.
	Cooldown float64
}

// Spec declares one simulation run end to end. The zero values of most
// fields select the paper's canonical choices, so a minimal Spec —
// a Profile and a Duration — reproduces the deployed system: the
// Southampton PV array feeding the 47 mF capacitor and an Exynos5422
// board under power-neutral control at full workload.
type Spec struct {
	// Name identifies the scenario in the registry and CLIs.
	Name string
	// Description is a one-line summary for listings.
	Description string

	// Array is the PV model for Profile-driven runs; nil selects the
	// paper's pv.SouthamptonArray().
	Array *pv.Array
	// Profile builds the irradiance profile (PV runs). Exactly one of
	// Profile and Source must be set.
	Profile ProfileFunc
	// Source builds a non-PV supply (bench runs).
	Source SourceFunc

	// Storage is the supply-node buffer; nil selects the paper's 47 mF
	// ideal capacitor.
	Storage sim.Storage

	// Boot is the platform's boot OPP. The zero value selects the
	// scheme's canonical boot point: soc.MinOPP() for power-neutral and
	// static runs, everything-on at the lowest frequency for governors.
	Boot soc.OPP
	// Utilisation is the offered workload load in [0,1]; 0 means fully
	// loaded (the paper's always-busy path tracer).
	Utilisation float64

	// Control selects the power-management scheme; the zero value is
	// the power-neutral controller with default parameters.
	Control Control
	// Monitor configures the threshold hardware (zero → defaults).
	Monitor monitor.Config

	// Duration is the simulated span, seconds.
	Duration float64
	// InitialVC is the supply voltage at t=0; 0 selects the array's MPP
	// voltage at standard irradiance (PV runs; bench runs must set it).
	InitialVC float64
	// TargetVolts overrides the stability target (0 → engine default).
	TargetVolts float64
	// MaxStep bounds the ODE step (0 → engine default).
	MaxStep float64
	// Restart, when non-nil, enables brownout restarts.
	Restart *RestartPolicy
	// SkipSeries disables time-series capture.
	SkipSeries bool
}

// validate checks the declarative fields that Assemble relies on.
func (s Spec) validate() error {
	if (s.Profile == nil) == (s.Source == nil) {
		return errors.New("scenario: set exactly one of Profile and Source")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %q: duration must be positive, got %g", s.Name, s.Duration)
	}
	if s.Source != nil && s.InitialVC <= 0 {
		return fmt.Errorf("scenario %q: bench runs must set InitialVC", s.Name)
	}
	if s.Utilisation < 0 || s.Utilisation > 1 {
		return fmt.Errorf("scenario %q: utilisation %g outside [0,1]", s.Name, s.Utilisation)
	}
	if s.Control.Kind == LinuxGovernor && s.Control.Governor == "" {
		return fmt.Errorf("scenario %q: governor control needs a governor name", s.Name)
	}
	return nil
}

// params returns the effective controller parameters.
func (s Spec) params() core.Params {
	if s.Control.Params == (core.Params{}) {
		return core.DefaultParams()
	}
	return s.Control.Params
}

// boot returns the effective boot OPP.
func (s Spec) boot() soc.OPP {
	if s.Boot != (soc.OPP{}) {
		return s.Boot
	}
	if s.Control.Kind == LinuxGovernor {
		// Linux boots with every core online at the lowest frequency.
		return soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}}
	}
	return soc.MinOPP()
}

// Assemble builds a runnable sim.Config from the spec: a fresh platform
// and controller, the profile realised from seed. Each call returns an
// independent configuration, so assembled runs can execute concurrently.
func (s Spec) Assemble(seed int64) (sim.Config, error) {
	return s.assemble(seed, nil)
}

// AssembleGroup assembles one config per (spec, seed) pair with
// batch-shared setup: the exact MPP solve behind the InitialVC default —
// the dominant cost of assembling a PV run — is computed once per
// distinct array across the group instead of once per run. The cache is
// bit-transparent, so every config is identical to what Assemble would
// have produced; each gets its own platform and controller, ready for
// sim.RunBatch or an Engine group.
func AssembleGroup(specs []Spec, seeds []int64) ([]sim.Config, error) {
	if len(specs) != len(seeds) {
		return nil, fmt.Errorf("scenario: AssembleGroup got %d specs and %d seeds", len(specs), len(seeds))
	}
	var mpps pv.MPPCache
	cfgs := make([]sim.Config, len(specs))
	for i := range specs {
		cfg, err := specs[i].assemble(seeds[i], &mpps)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

func (s Spec) assemble(seed int64, mpps *pv.MPPCache) (sim.Config, error) {
	if err := s.validate(); err != nil {
		return sim.Config{}, err
	}

	arr := s.Array
	if arr == nil && s.Profile != nil {
		arr = pv.SouthamptonArray()
	}
	initialVC := s.InitialVC
	if initialVC == 0 {
		var mpp pv.MPP
		var err error
		if mpps != nil {
			mpp, err = mpps.MaximumPowerPoint(arr, pv.StandardIrradiance)
		} else {
			mpp, err = arr.MaximumPowerPoint(pv.StandardIrradiance)
		}
		if err != nil {
			return sim.Config{}, err
		}
		initialVC = mpp.V
	}

	cfg := sim.Config{
		InitialVC:   initialVC,
		Duration:    s.Duration,
		TargetVolts: s.TargetVolts,
		MaxStep:     s.MaxStep,
		SkipSeries:  s.SkipSeries,
	}
	if s.Profile != nil {
		cfg.Array = arr
		cfg.Profile = s.Profile(seed, s.Duration)
	} else {
		src, err := s.Source(seed, s.Duration)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Source = src
	}
	if s.Storage != nil {
		cfg.Storage = s.Storage
	} else {
		cfg.Capacitance = 47e-3
	}

	boot := s.boot()
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, boot)
	if s.Utilisation > 0 {
		plat.SetUtilisation(s.Utilisation)
	}
	cfg.Platform = plat

	switch s.Control.Kind {
	case PowerNeutral:
		ctrl, err := core.New(s.params(), initialVC, boot, 0)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Controller = ctrl
		cfg.MonitorConfig = s.Monitor
	case LinuxGovernor:
		gov, err := governor.ByName(s.Control.Governor)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Governor = gov
	case Static:
		// No runtime control.
	default:
		return sim.Config{}, fmt.Errorf("scenario %q: unknown control kind %d", s.Name, s.Control.Kind)
	}

	if s.Restart != nil {
		cfg.BrownoutRestart = true
		cfg.RestartVolts = s.Restart.RestartVolts
		cfg.RebootSeconds = s.Restart.RebootSeconds
		cfg.RestartCooldown = s.Restart.Cooldown
	}
	return cfg, nil
}

// Run assembles the spec with the given seed and executes it.
func (s Spec) Run(seed int64) (*sim.Result, error) {
	cfg, err := s.Assemble(seed)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}
