// Campaign: a declarative weather × storage × control study — the
// paper's headline claim ("power neutrality makes farad-scale buffers
// unnecessary") evaluated as a full cross-product instead of one run.
// One Study crosses three weather regimes over three storage families
// and two control schemes; every cell runs the same Monte-Carlo
// repetitions with common random numbers (SeedPerRep), so all eighteen
// cells face the *same* skies and every comparison is paired, not
// confounded by weather luck.
//
// The study executes trace-free over all CPU cores with bit-identical
// aggregation at any worker count, and reports per-cell summaries plus
// per-axis marginals — "how does each storage do, averaged over
// weather and control" — with dwell-time voltage quantiles from the
// merged histograms. The same matrix shards across processes with
// Study.RunShard / checkpoint merge; see `pnstudy -h`.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pnps"
)

func main() {
	base, ok := pnps.LookupScenario("stress-clouds")
	if !ok {
		log.Fatal("stress-clouds scenario missing")
	}
	base.Duration = 120

	day := pnps.SolarDayProfile()
	st := pnps.Study{
		Name: "weather-storage-control",
		Base: base,
		Axes: []pnps.StudyAxis{
			pnps.NewStudyAxis("weather",
				pnps.StudyIrradiance("full-sun", pnps.ConstantIrradiance(1000)),
				// Seed-dependent levels get fresh realisations per rep.
				pnps.StudyProfile("partial-clouds", func(seed int64, span float64) pnps.IrradianceProfile {
					return pnps.WithPartialClouds(pnps.ConstantIrradiance(900), span, seed)
				}),
				pnps.StudyProfile("morning-ramp", func(seed int64, span float64) pnps.IrradianceProfile {
					// The 7:00–9:00 shoulder of a clear day, clouds overlaid.
					return pnps.WithPartialClouds(offset{day, 7 * 3600}, span, seed)
				}),
			),
			pnps.NewStudyAxis("storage",
				pnps.StudyStorage("ideal 47mF", pnps.IdealCapacitor{Farads: 47e-3}),
				pnps.StudyStorage("supercap 47mF", pnps.NewSupercapBank(pnps.SupercapParams{
					Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: 5.7,
				})),
				pnps.StudyStorage("hybrid 10mF+1F", pnps.HybridBuffer{
					NodeFarads: 10e-3, ReservoirFarads: 1,
					DiodeDropVolts: 0.35, DiodeOhms: 0.2,
					ChargeOhms: 10, LeakOhms: 20000,
				}),
			),
			pnps.NewStudyAxis("control",
				pnps.StudyPowerNeutral(),
				pnps.StudyGovernor("ondemand"),
			),
		},
		Reps: 4, Seed: 2017,
		SeedMode:   pnps.SeedPerRep, // paired: every cell sees the same 4 skies
		VCHistBins: 64, VCHistLo: 4.0, VCHistHi: 6.0,
	}

	out, err := st.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("weather × storage × control study: %d cells × %d paired skies = %d runs, trace-free\n\n",
		len(out.Cells), st.Reps, out.Summary.Runs)
	width := 0
	for _, c := range out.Cells {
		if len(c.Cell.Key) > width {
			width = len(c.Cell.Key)
		}
	}
	fmt.Printf("%-*s %-9s %-22s %s\n",
		width, "cell", "survival", "within ±5% (P25..P75)", "mean instr")
	for _, c := range out.Cells {
		s := c.Summary
		fmt.Printf("%-*s %6.1f%%  %5.1f%% (%4.1f..%4.1f%%)     %7.2f G\n",
			width, c.Cell.Key, s.SurvivalRate*100,
			s.Stability.Mean*100, s.Stability.P25*100, s.Stability.P75*100,
			s.Instructions.Mean/1e9)
	}

	fmt.Println("\nmarginals — each level aggregated across the other two axes:")
	for _, m := range out.Marginals {
		s := m.Summary
		fmt.Printf("  %-8s %-16s survival %5.1f%%  within ±5%% %5.1f%%  min Vc %.2f V\n",
			m.Axis, m.Level, s.SurvivalRate*100, s.Stability.Mean*100, s.MinVC.Mean)
	}
	if out.DwellVC != nil {
		fmt.Printf("\nsupply dwell across all %d runs: median %.3f V (P25..P75 %.3f..%.3f V)\n",
			out.Summary.Runs, out.DwellVC.Median, out.DwellVC.P25, out.DwellVC.P75)
	}

	fmt.Println("\nSingle-seed, single-cell evaluation overfits one sky and one buffer;")
	fmt.Println("the matrix shows the interaction — power-neutral control holding every")
	fmt.Println("storage family up while the governor baseline browns out, and the")
	fmt.Println("diode-backed reservoir riding through occlusions that kill a bare")
	fmt.Println("capacitor of any realistic size.")

	// The aggregate exports as JSON (and per-cell/per-run tables as CSV)
	// for external tooling; see also `pnstudy -json/-cells-csv/-runs-csv`.
	if len(os.Args) > 1 && os.Args[1] == "-json" {
		if err := out.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// offset shifts a diurnal profile so the scenario starts mid-morning.
type offset struct {
	base pnps.IrradianceProfile
	t0   float64
}

func (o offset) Irradiance(t float64) float64 { return o.base.Irradiance(t + o.t0) }
