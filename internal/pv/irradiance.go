package pv

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Profile yields irradiance in W/m² as a function of time in seconds.
// Implementations must be safe for concurrent readers and deterministic
// (any randomness fixed at construction from an explicit seed), so that
// experiments are reproducible.
type Profile interface {
	Irradiance(t float64) float64
}

// Constant is a fixed irradiance level.
type Constant float64

// Irradiance implements Profile.
func (c Constant) Irradiance(float64) float64 { return float64(c) }

// Sinusoid is the transient test input of the paper's Fig. 3: irradiance
// oscillating about a mean. Values are clamped at zero.
type Sinusoid struct {
	Mean      float64 // W/m²
	Amplitude float64 // W/m²
	Period    float64 // seconds
	Phase     float64 // radians
}

// Irradiance implements Profile.
func (s Sinusoid) Irradiance(t float64) float64 {
	if s.Period <= 0 {
		return math.Max(0, s.Mean)
	}
	g := s.Mean + s.Amplitude*math.Sin(2*math.Pi*t/s.Period+s.Phase)
	return math.Max(0, g)
}

// Step is one segment of a piecewise-constant profile.
type Step struct {
	From float64 // start time, seconds
	G    float64 // irradiance from From onwards, W/m²
}

// Steps is a piecewise-constant profile; before the first step the first
// level applies. Construct with NewSteps to guarantee ordering.
type Steps struct {
	steps []Step
}

// NewSteps builds a piecewise-constant profile, sorting segments by start
// time. It returns an error when no segments are given.
func NewSteps(steps ...Step) (*Steps, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("pv: NewSteps needs at least one step")
	}
	ss := append([]Step(nil), steps...)
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].From < ss[j].From })
	return &Steps{steps: ss}, nil
}

// Irradiance implements Profile.
func (p *Steps) Irradiance(t float64) float64 {
	g := p.steps[0].G
	for _, s := range p.steps {
		if t >= s.From {
			g = s.G
		} else {
			break
		}
	}
	return math.Max(0, g)
}

// Shadow models the paper's Fig. 6 scenario: full sun interrupted by a
// sudden shadowing event with smooth (smoothstep) edges.
type Shadow struct {
	Base     float64 // unshadowed irradiance, W/m²
	Depth    float64 // fraction of Base removed at full shadow, 0..1
	Start    float64 // shadow onset time, seconds
	Duration float64 // full-shadow duration, seconds
	Edge     float64 // transition duration of each edge, seconds
}

// Irradiance implements Profile.
func (s Shadow) Irradiance(t float64) float64 {
	depth := math.Min(math.Max(s.Depth, 0), 1)
	att := 0.0
	switch {
	case t < s.Start || t > s.Start+s.Duration+2*s.Edge:
		att = 0
	case t < s.Start+s.Edge:
		att = smoothstep((t - s.Start) / s.Edge)
	case t < s.Start+s.Edge+s.Duration:
		att = 1
	default:
		att = 1 - smoothstep((t-s.Start-s.Edge-s.Duration)/s.Edge)
	}
	return math.Max(0, s.Base*(1-depth*att))
}

func smoothstep(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return x * x * (3 - 2*x)
}

// Day is the diurnal macro envelope of the paper's Fig. 1: zero before
// sunrise and after sunset, a raised sine-power bell in between.
type Day struct {
	Sunrise float64 // seconds from trace start
	Sunset  float64 // seconds from trace start
	Peak    float64 // peak irradiance at solar noon, W/m²
	// Shape sharpens (>1) or flattens (<1) the bell; 0 means 1.5, a good
	// fit for clear-sky global irradiance.
	Shape float64
}

// StandardDay returns a 24 h envelope with a 6:00 sunrise, 20:00 sunset and
// 1000 W/m² peak, matching the span of the paper's Fig. 1 trace.
func StandardDay() Day {
	return Day{Sunrise: 6 * 3600, Sunset: 20 * 3600, Peak: StandardIrradiance}
}

// Irradiance implements Profile.
func (d Day) Irradiance(t float64) float64 {
	if t <= d.Sunrise || t >= d.Sunset || d.Sunset <= d.Sunrise {
		return 0
	}
	shape := d.Shape
	if shape == 0 {
		shape = 1.5
	}
	x := math.Pi * (t - d.Sunrise) / (d.Sunset - d.Sunrise)
	return d.Peak * math.Pow(math.Sin(x), shape)
}

// cloudEvent is one occlusion interval with smoothstep edges.
type cloudEvent struct {
	start, duration, edge float64
	transmission          float64 // fraction of light passing at full occlusion
}

// Clouds overlays stochastic cloud shadowing ("micro variability") on a
// base profile. All randomness is drawn at construction from the seed, so
// a Clouds value is immutable and deterministic afterwards.
type Clouds struct {
	base   Profile
	events []cloudEvent
}

// CloudParams configures the stochastic cloud process.
type CloudParams struct {
	// Span is the time horizon over which cloud events are generated.
	Span float64
	// MeanGap is the mean clear-sky interval between cloud arrivals (s).
	MeanGap float64
	// MeanDuration is the mean full-occlusion duration per cloud (s).
	MeanDuration float64
	// MinTransmission..MaxTransmission bound per-cloud light transmission.
	MinTransmission, MaxTransmission float64
	// EdgeSeconds is the mean shadow edge (ramp) duration.
	EdgeSeconds float64
}

// Weather presets named after the paper's test conditions (Section V-B).
func FullSun() CloudParams {
	return CloudParams{MeanGap: math.Inf(1)}
}

// PartialSun has sparse, shallow clouds.
func PartialSun(span float64) CloudParams {
	return CloudParams{Span: span, MeanGap: 600, MeanDuration: 90,
		MinTransmission: 0.45, MaxTransmission: 0.8, EdgeSeconds: 8}
}

// Overcast has frequent deep occlusions.
func Overcast(span float64) CloudParams {
	return CloudParams{Span: span, MeanGap: 120, MeanDuration: 240,
		MinTransmission: 0.15, MaxTransmission: 0.45, EdgeSeconds: 12}
}

// Hailstorm has dense, fast, deep occlusions — the paper's harshest test.
func Hailstorm(span float64) CloudParams {
	return CloudParams{Span: span, MeanGap: 45, MeanDuration: 60,
		MinTransmission: 0.05, MaxTransmission: 0.3, EdgeSeconds: 3}
}

// NewClouds overlays a cloud process on base using the given params and
// seed. A MeanGap of +Inf produces a cloud-free overlay.
func NewClouds(base Profile, p CloudParams, seed int64) *Clouds {
	c := &Clouds{base: base}
	if math.IsInf(p.MeanGap, 1) || p.MeanGap <= 0 || p.Span <= 0 {
		return c
	}
	rng := rand.New(rand.NewSource(seed))
	t := rng.ExpFloat64() * p.MeanGap
	for t < p.Span {
		dur := rng.ExpFloat64() * p.MeanDuration
		edge := p.EdgeSeconds * (0.5 + rng.Float64())
		tr := p.MinTransmission + rng.Float64()*(p.MaxTransmission-p.MinTransmission)
		c.events = append(c.events, cloudEvent{start: t, duration: dur, edge: edge, transmission: tr})
		t += dur + 2*edge + rng.ExpFloat64()*p.MeanGap
	}
	return c
}

// Irradiance implements Profile. Overlapping events multiply, which
// naturally darkens stacked clouds.
func (c *Clouds) Irradiance(t float64) float64 {
	g := c.base.Irradiance(t)
	if g <= 0 {
		return 0
	}
	for _, ev := range c.events {
		if t < ev.start || t > ev.start+ev.duration+2*ev.edge {
			continue
		}
		var att float64
		switch {
		case t < ev.start+ev.edge:
			att = smoothstep((t - ev.start) / ev.edge)
		case t < ev.start+ev.edge+ev.duration:
			att = 1
		default:
			att = 1 - smoothstep((t-ev.start-ev.edge-ev.duration)/ev.edge)
		}
		g *= 1 - (1-ev.transmission)*att
	}
	return g
}

// NumEvents reports how many cloud events the overlay holds (useful for
// tests and trace metadata).
func (c *Clouds) NumEvents() int { return len(c.events) }

// Offset shifts a profile in time: Irradiance(t) = Base.Irradiance(t+T0).
// Use it to start a simulation mid-day (the paper's Fig. 12 run starts at
// 10:30).
type Offset struct {
	Base Profile
	T0   float64
}

// Irradiance implements Profile.
func (o Offset) Irradiance(t float64) float64 { return o.Base.Irradiance(t + o.T0) }

// Scaled multiplies a profile by a constant factor (e.g. panel soiling).
type Scaled struct {
	Base   Profile
	Factor float64
}

// Irradiance implements Profile.
func (s Scaled) Irradiance(t float64) float64 {
	return math.Max(0, s.Factor*s.Base.Irradiance(t))
}
