// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from (parameters, seed)
// to a Report containing the same rows/series the paper plots, alongside
// the paper's reported values where it states them, so paper-vs-measured
// comparisons are mechanical.
//
// Index (see DESIGN.md §5): Fig1, Fig3, Fig4, Fig6, Fig7, Fig10, Table1,
// Fig11, Fig12, Fig13, Fig14, Table2, Fig15, ParamSweep, ablations.
package experiments

import (
	"fmt"
	"strings"

	"pnps/internal/trace"
)

// Metric is one scalar result, optionally paired with the paper's value.
type Metric struct {
	Name  string
	Value float64
	Unit  string
	// Paper is the value the paper reports for this quantity; NaN or 0
	// with HasPaper=false means the paper gives none.
	Paper    float64
	HasPaper bool
	// Note carries a caveat (e.g. "shape target, not absolute").
	Note string
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the output of one experiment.
type Report struct {
	ID          string
	Title       string
	Description string
	Metrics     []Metric
	Tables      []Table
	// Series holds the plottable signals (exported as CSV by cmd/pnsim).
	Series []*trace.Series
	// Plots are pre-rendered ASCII charts for terminal output.
	Plots []string
}

// AddMetric appends a metric without a paper reference.
func (r *Report) AddMetric(name string, value float64, unit, note string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit, Note: note})
}

// AddPaperMetric appends a metric together with the paper's reported value.
func (r *Report) AddPaperMetric(name string, value, paper float64, unit, note string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit,
		Paper: paper, HasPaper: true, Note: note})
}

// String renders the report for terminal consumption.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Description)
	}
	if len(r.Metrics) > 0 {
		b.WriteString("\nMetrics:\n")
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "  %-42s %12.4g %-6s", m.Name, m.Value, m.Unit)
			if m.HasPaper {
				fmt.Fprintf(&b, " (paper: %.4g)", m.Paper)
			}
			if m.Note != "" {
				fmt.Fprintf(&b, "  [%s]", m.Note)
			}
			b.WriteByte('\n')
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n%s\n", t.Title)
		writeTable(&b, t)
	}
	for _, p := range r.Plots {
		b.WriteByte('\n')
		b.WriteString(p)
	}
	return b.String()
}

func writeTable(b *strings.Builder, t Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
}
