package scenario

import (
	"pnps/internal/buffer"
	"pnps/internal/sim"
)

// StorageMaker builds a storage model of a given headline capacitance,
// letting the minimum-buffer search range over any storage family —
// ideal capacitors, supercap banks with fixed parasitics, hybrid
// buffers with a scaled reservoir.
type StorageMaker func(farads float64) sim.Storage

// IdealCaps is the StorageMaker for lossless capacitors.
func IdealCaps() StorageMaker {
	return func(farads float64) sim.Storage { return sim.IdealCap{Farads: farads} }
}

// SupercapsLike scales the capacitance of a template bank while keeping
// its ESR, leakage and rating fixed.
func SupercapsLike(template sim.Supercap) StorageMaker {
	return func(farads float64) sim.Storage {
		bank := template.Supercap
		bank.Farads = farads
		return sim.NewSupercap(bank)
	}
}

// MinCapacitance binary-searches the smallest buffer capacitance in
// [lo, hi] farads (to within relTol) for which the scenario completes
// without a brownout — the buffers experiment generalised from the
// hard-coded ideal capacitor to any Storage family. Survival must be
// monotone in capacitance over the bracket.
func MinCapacitance(s Spec, seed int64, mk StorageMaker, lo, hi, relTol float64) (float64, error) {
	s.SkipSeries = true
	survive := func(farads float64) (bool, error) {
		sp := s
		sp.Storage = mk(farads)
		res, err := sp.Run(seed)
		if err != nil {
			return false, err
		}
		return !res.BrownedOut, nil
	}
	return buffer.MinCapacitance(survive, lo, hi, relTol)
}
