package experiments

import (
	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

// Fig3 regenerates the paper's Fig. 3: the behaviour of the energy
// harvesting system under a transient (sinusoidal) input, with and without
// power neutral performance scaling. Without scaling the supply collapses
// below the minimum operating voltage in the first trough; with scaling
// the device gracefully reduces performance and survives.
func Fig3() (*Report, error) {
	profile := pv.Sinusoid{Mean: 675, Amplitude: 330, Period: 4}
	const (
		duration    = 12.0
		capacitance = 47e-3
	)
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, err
	}
	initialVC := mpp.V

	// Static baseline: the performance point a prediction-free static
	// design would pick for the mean harvest (a mid OPP).
	staticOPP := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	staticRes, err := staticRun(staticOPP, profile, duration, capacitance, initialVC)
	if err != nil {
		return nil, err
	}

	ctrlRes, err := controllerRun(core.DefaultParams(), profile, duration, capacitance, initialVC, soc.MinOPP())
	if err != nil {
		return nil, err
	}

	staticLife := staticRes.LifetimeSeconds
	ctrlLife := ctrlRes.LifetimeSeconds
	minStatic, _ := staticRes.VC.Min()
	minCtrl, _ := ctrlRes.VC.Min()

	staticRes.VC.Name = "Vc-static"
	ctrlRes.VC.Name = "Vc-powerneutral"

	r := &Report{
		ID:    "fig3",
		Title: "Transient response with and without power-neutral scaling",
		Description: "Sinusoidal harvest; the static system rides the capacitor down " +
			"through Vmin while the power-neutral system scales its OPP and survives.",
		Series: []*trace.Series{staticRes.VC, ctrlRes.VC, ctrlRes.FreqGHz, ctrlRes.TotalCores},
	}
	r.AddMetric("static lifetime", staticLife, "s", "dies in first trough")
	r.AddMetric("power-neutral lifetime", ctrlLife, "s", "survives the full test")
	if staticLife > 0 {
		r.AddMetric("lifetime extension factor", ctrlLife/staticLife, "x", "")
	}
	r.AddMetric("min Vc, static", minStatic, "V", "")
	r.AddMetric("min Vc, power-neutral", minCtrl, "V", "must stay above 4.1 V")
	r.AddMetric("static browned out", b2f(staticRes.BrownedOut), "bool", "")
	r.AddMetric("power-neutral browned out", b2f(ctrlRes.BrownedOut), "bool", "")
	r.Plots = append(r.Plots,
		trace.ASCIIPlot(staticRes.VC, 72, 10),
		trace.ASCIIPlot(ctrlRes.VC, 72, 10))
	return r, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
