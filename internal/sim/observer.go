package sim

import (
	"math"

	"pnps/internal/stats"
)

// This file is the streaming observer pipeline: instead of implicitly
// recording every signal into trace.Series, the engine publishes one
// Sample per accepted integration step and discrete event to a set of
// Observers. Series capture is itself just one observer (seriesObserver
// below); the online observers — within-band stability, envelopes,
// time-in-state histograms — compute their statistics in O(1) memory
// without retaining samples, which is what lets Monte-Carlo campaigns
// run trace-free at hot-path speed.

// Sample is one point of the engine's observation stream. The engine
// owns the value and reuses it between calls; observers must copy any
// field they want to keep. When every attached observer declares
// SupplyOnly, only T, VC and Alive are populated (the platform
// bookkeeping behind the other fields is skipped).
type Sample struct {
	// T is the simulation time, seconds.
	T float64
	// VC is the sensed supply voltage, volts.
	VC float64
	// PowerW is board+monitor power draw, watts (0 while browned out).
	PowerW float64
	// FreqGHz is the committed DVFS frequency, GHz.
	FreqGHz float64
	// LittleCores and BigCores are the committed online-core counts.
	LittleCores, BigCores int
	// Alive reports whether the platform is powered.
	Alive bool
	// AvailW is the estimated maximum extractable PV power, watts. It is
	// sampled every Config.AvailSamplePeriod (MPP solves are relatively
	// costly); HasAvail marks the samples that carry a fresh estimate.
	AvailW   float64
	HasAvail bool
}

// Observer receives the engine's sample stream. Observe is called once
// per accepted integration step and once after each discrete event, in
// time order (equal timestamps occur at zero-order-hold step changes).
// Observers run on the engine's goroutine; implementations that want
// the trace-free hot path to stay allocation-free must not allocate in
// Observe.
type Observer interface {
	Observe(s *Sample)
}

// NeedsAvailablePower is an optional Observer refinement: an observer
// returning true forces the engine to sample the PV available-power
// estimate even when series capture is off (the estimate costs an MPP
// solve every AvailSamplePeriod, so trace-free runs skip it by default).
type NeedsAvailablePower interface {
	NeedsAvailablePower() bool
}

// SupplyOnly is an optional Observer refinement: an observer returning
// true promises to read only T, VC and Alive from each Sample. When
// every attached observer is supply-only the engine skips the per-step
// platform bookkeeping (power draw, committed OPP) entirely and leaves
// those Sample fields zero — the common trace-free campaign case (a
// voltage histogram or envelope) stays on the cheap path.
type SupplyOnly interface {
	SupplyOnly() bool
}

// Envelope is an online min/max/time-mean accumulator over a sampled
// signal, assuming zero-order hold between samples. It reproduces
// trace.Series Min/Max/TimeMean bit for bit when fed the same stream,
// in O(1) memory. The zero value is an empty envelope.
type Envelope struct {
	// N is the number of observations absorbed.
	N int
	// Min and Max are the observed extrema (undefined until N > 0).
	Min, Max float64

	area, dur    float64
	prevT, prevV float64
}

// Observe folds one (time, value) sample into the envelope.
func (e *Envelope) Observe(t, v float64) {
	if e.N == 0 {
		e.Min, e.Max = v, v
	} else {
		dt := t - e.prevT
		e.area += e.prevV * dt
		e.dur += dt
		if v < e.Min {
			e.Min = v
		}
		if v > e.Max {
			e.Max = v
		}
	}
	e.N++
	e.prevT, e.prevV = t, v
}

// TimeMean returns the time-weighted mean (zero-order hold), the last
// value when the span is empty, and NaN when nothing was observed.
func (e *Envelope) TimeMean() float64 {
	if e.N == 0 {
		return math.NaN()
	}
	if e.dur == 0 {
		return e.prevV
	}
	return e.area / e.dur
}

// stabAccum accumulates within-band supply stability online: the
// time-weighted fraction of the run spent with VC inside
// [target−|target·pct|, target+|target·pct|], zero-order hold — exactly
// trace.Series.FractionWithinPercent over the same sample stream,
// without the series.
type stabAccum struct {
	pct       float64
	lo, hi    float64
	n         int
	prevT     float64
	prevV     float64
	in, total float64
}

func newStabAccum(target, pct float64) stabAccum {
	d := math.Abs(target * pct)
	return stabAccum{pct: pct, lo: target - d, hi: target + d}
}

func (a *stabAccum) observe(t, v float64) {
	if a.n > 0 {
		dt := t - a.prevT
		a.total += dt
		if a.prevV >= a.lo && a.prevV <= a.hi {
			a.in += dt
		}
	}
	a.n++
	a.prevT, a.prevV = t, v
}

func (a *stabAccum) fraction() float64 {
	switch {
	case a.n == 0:
		return math.NaN()
	case a.n == 1:
		if a.prevV >= a.lo && a.prevV <= a.hi {
			return 1
		}
		return 0
	case a.total == 0:
		return 0
	}
	return a.in / a.total
}

// Channel selects which Sample signal a generic observer watches.
type Channel int

const (
	// ChanVC is the sensed supply voltage, volts.
	ChanVC Channel = iota
	// ChanPower is board+monitor power draw, watts.
	ChanPower
	// ChanFreqGHz is the committed DVFS frequency, GHz.
	ChanFreqGHz
	// ChanTotalCores is the committed online-core count.
	ChanTotalCores
	// ChanAvailPower is the sampled PV available-power estimate, watts.
	// Only samples with a fresh estimate are observed.
	ChanAvailPower
)

// value extracts the channel's signal from s; ok is false for samples
// that do not carry it (ChanAvailPower between estimate refreshes).
func (c Channel) value(s *Sample) (v float64, ok bool) {
	switch c {
	case ChanVC:
		return s.VC, true
	case ChanPower:
		return s.PowerW, true
	case ChanFreqGHz:
		return s.FreqGHz, true
	case ChanTotalCores:
		return float64(s.LittleCores + s.BigCores), true
	case ChanAvailPower:
		return s.AvailW, s.HasAvail
	}
	return 0, false
}

// EnvelopeObserver accumulates an Envelope (min/max/time-mean) over one
// channel of the sample stream — zero allocations per sample.
type EnvelopeObserver struct {
	// Channel selects the observed signal.
	Channel Channel
	// Env is the accumulated envelope.
	Env Envelope
}

// Observe implements Observer.
func (o *EnvelopeObserver) Observe(s *Sample) {
	if v, ok := o.Channel.value(s); ok {
		o.Env.Observe(s.T, v)
	}
}

// NeedsAvailablePower implements the optional refinement: an envelope
// over ChanAvailPower forces available-power sampling in trace-free runs.
func (o *EnvelopeObserver) NeedsAvailablePower() bool { return o.Channel == ChanAvailPower }

// SupplyOnly implements the optional refinement: a ChanVC envelope only
// reads the supply voltage.
func (o *EnvelopeObserver) SupplyOnly() bool { return o.Channel == ChanVC }

// TimeInStateObserver accumulates a dwell-time histogram of one channel:
// each inter-sample interval's duration is credited to the bin of the
// value holding over it (zero-order hold). This is the trace-free form
// of the paper's Fig. 13 "time spent at each operating voltage"
// analysis; stats.Histogram.Quantile then estimates time-weighted
// quantiles of the signal without retaining a trace.
type TimeInStateObserver struct {
	// Channel selects the observed signal.
	Channel Channel
	// Hist receives the dwell-time weight; construct with
	// stats.NewHistogram spanning the expected signal range.
	Hist *stats.Histogram

	n            int
	prevT, prevV float64
}

// NewTimeInStateObserver builds a dwell-time histogram observer with n
// equal-width bins spanning [lo, hi).
func NewTimeInStateObserver(ch Channel, lo, hi float64, n int) (*TimeInStateObserver, error) {
	h, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		return nil, err
	}
	return &TimeInStateObserver{Channel: ch, Hist: h}, nil
}

// Observe implements Observer.
func (o *TimeInStateObserver) Observe(s *Sample) {
	v, ok := o.Channel.value(s)
	if !ok {
		return
	}
	if o.n > 0 {
		if dt := s.T - o.prevT; dt > 0 {
			o.Hist.AddWeighted(o.prevV, dt)
		}
	}
	o.n++
	o.prevT, o.prevV = s.T, v
}

// NeedsAvailablePower implements the optional refinement.
func (o *TimeInStateObserver) NeedsAvailablePower() bool { return o.Channel == ChanAvailPower }

// SupplyOnly implements the optional refinement: a ChanVC histogram
// only reads the supply voltage.
func (o *TimeInStateObserver) SupplyOnly() bool { return o.Channel == ChanVC }

// seriesObserver is trace capture expressed as an observer: it appends
// every sample to the Result's series exactly as the engine's historical
// record() did, preserving bit-identical traces for trace-retaining
// runs. Appends are deduplicated per series: the integrator records the
// start of every continuation segment and the discrete handlers
// re-record after acting, so each segment boundary would otherwise
// appear twice with identical values — biasing the sample-weighted
// Series.Mean() and bloating the traces. An equal-time sample with a
// *changed* value (an OPP commit, a brownout power drop) is still
// recorded, preserving zero-order-hold steps.
type seriesObserver struct {
	res *Result
}

// Observe implements Observer.
func (o seriesObserver) Observe(s *Sample) {
	r := o.res
	r.VC.AppendDedupe(s.T, s.VC)
	r.PowerConsumed.AppendDedupe(s.T, s.PowerW)
	r.FreqGHz.AppendDedupe(s.T, s.FreqGHz)
	r.LittleCores.AppendDedupe(s.T, float64(s.LittleCores))
	r.BigCores.AppendDedupe(s.T, float64(s.BigCores))
	r.TotalCores.AppendDedupe(s.T, float64(s.LittleCores+s.BigCores))
	if s.HasAvail {
		r.PowerAvailable.Append(s.T, s.AvailW)
	}
}

// NeedsAvailablePower implements the optional refinement: series capture
// always records the available-power trace.
func (seriesObserver) NeedsAvailablePower() bool { return true }
