package sim

import (
	"math"
	"testing"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

// observerConfig assembles the standard one-minute power-neutral cloud
// run used across the observer tests.
func observerConfig(t testing.TB, dur float64) Config {
	t.Helper()
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Array: pv.SouthamptonArray(), Profile: pv.NewClouds(pv.Constant(900), pv.PartialSun(dur), 42),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: ctrl, Duration: dur,
	}
}

// TestOnlineStabilityBitIdenticalToSeries: the online within-band
// accumulator must reproduce the series-based stability computation bit
// for bit — same sample stream, same summation order — so trace-free
// campaigns report exactly the number trace-retaining runs would.
func TestOnlineStabilityBitIdenticalToSeries(t *testing.T) {
	bands := []float64{0.05, 0.10}
	withSeries, err := Run(observerConfig(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	cfg := observerConfig(t, 60)
	cfg.SkipSeries = true
	cfg.StabilityBands = bands
	traceFree, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range bands {
		series := withSeries.StabilityWithin(pct)
		online := traceFree.StabilityWithin(pct)
		if series != online {
			t.Errorf("±%g%% stability: series %.17g vs online %.17g", pct*100, series, online)
		}
	}
	// The engine feeds both paths at once too: a trace-retaining run
	// with bands answers identically from either representation.
	cfg2 := observerConfig(t, 60)
	cfg2.StabilityBands = bands
	both, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := both.StabilityWithin(0.05), withSeries.StabilityWithin(0.05); got != want {
		t.Errorf("series+bands run diverged: %.17g vs %.17g", got, want)
	}
}

// TestVCEnvelopeBitIdenticalToSeries: the always-on envelope must match
// the VC trace's Min/Max/TimeMean exactly.
func TestVCEnvelopeBitIdenticalToSeries(t *testing.T) {
	res, err := Run(observerConfig(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	minV, err := res.VC.Min()
	if err != nil {
		t.Fatal(err)
	}
	maxV, _ := res.VC.Max()
	tmean, err := res.VC.TimeMean()
	if err != nil {
		t.Fatal(err)
	}
	env := res.VCEnvelope
	if env.Min != minV || env.Max != maxV {
		t.Errorf("envelope extrema (%.17g, %.17g) vs series (%.17g, %.17g)", env.Min, env.Max, minV, maxV)
	}
	if env.TimeMean() != tmean {
		t.Errorf("envelope time-mean %.17g vs series %.17g", env.TimeMean(), tmean)
	}
	// Trace-free run: envelope unchanged without the series.
	cfg := observerConfig(t, 60)
	cfg.SkipSeries = true
	free, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if free.VCEnvelope != env {
		t.Errorf("trace-free envelope diverged: %+v vs %+v", free.VCEnvelope, env)
	}
}

// TestObserverEnvelopeMatchesSeriesChannels: generic channel envelopes
// reproduce the corresponding series analyses.
func TestObserverEnvelopeMatchesSeriesChannels(t *testing.T) {
	obs := map[Channel]*EnvelopeObserver{
		ChanVC:         {Channel: ChanVC},
		ChanPower:      {Channel: ChanPower},
		ChanFreqGHz:    {Channel: ChanFreqGHz},
		ChanTotalCores: {Channel: ChanTotalCores},
		ChanAvailPower: {Channel: ChanAvailPower},
	}
	cfg := observerConfig(t, 60)
	for _, o := range obs {
		cfg.Observers = append(cfg.Observers, o)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(ch Channel, s interface {
		Min() (float64, error)
		Max() (float64, error)
	}) {
		t.Helper()
		minV, err := s.Min()
		if err != nil {
			t.Fatal(err)
		}
		maxV, _ := s.Max()
		if env := obs[ch].Env; env.Min != minV || env.Max != maxV {
			t.Errorf("channel %d: envelope (%.17g, %.17g) vs series (%.17g, %.17g)",
				ch, env.Min, env.Max, minV, maxV)
		}
	}
	check(ChanVC, res.VC)
	check(ChanPower, res.PowerConsumed)
	check(ChanFreqGHz, res.FreqGHz)
	check(ChanTotalCores, res.TotalCores)
	check(ChanAvailPower, res.PowerAvailable)
	if n := obs[ChanAvailPower].Env.N; n != res.PowerAvailable.Len() {
		t.Errorf("avail-power observer saw %d samples, series has %d", n, res.PowerAvailable.Len())
	}
}

// TestTimeInStateObserver: the dwell-time histogram's total weight is
// the observed span, and its quantile estimate brackets the series'
// supply-voltage distribution.
func TestTimeInStateObserver(t *testing.T) {
	tis, err := NewTimeInStateObserver(ChanVC, 4.0, 6.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := observerConfig(t, 60)
	cfg.Observers = []Observer{tis}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := res.VC.Duration()
	if got := tis.Hist.Total(); math.Abs(got-span) > 1e-9 {
		t.Errorf("dwell total %.9f s, trace spans %.9f s", got, span)
	}
	med, err := tis.Hist.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	minV, _ := res.VC.Min()
	maxV, _ := res.VC.Max()
	if med < minV || med > maxV {
		t.Errorf("median dwell voltage %.3f outside observed range [%.3f, %.3f]", med, minV, maxV)
	}
}

// TestTraceFreeAvailPowerGating: trace-free runs skip the costly MPP
// available-power sampling unless an observer asks for it.
func TestTraceFreeAvailPowerGating(t *testing.T) {
	// An envelope over a non-avail channel must not trigger sampling...
	plain := &EnvelopeObserver{Channel: ChanVC}
	cfg := observerConfig(t, 20)
	cfg.SkipSeries = true
	cfg.Observers = []Observer{plain}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// ...which is observable through a ChanAvailPower observer seeing
	// nothing when it is the gating one vs when paired with series.
	avail := &EnvelopeObserver{Channel: ChanAvailPower}
	cfg = observerConfig(t, 20)
	cfg.SkipSeries = true
	cfg.Observers = []Observer{avail}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if avail.Env.N == 0 {
		t.Error("ChanAvailPower observer should force available-power sampling trace-free")
	}
}

// probeObserver records whether any sample carried platform state; it
// declares SupplyOnly so it does not itself force the bookkeeping.
type probeObserver struct {
	samples      int
	sawPlatform  bool
	minVC, maxVC float64
}

func (p *probeObserver) Observe(s *Sample) {
	if p.samples == 0 {
		p.minVC, p.maxVC = s.VC, s.VC
	}
	if s.VC < p.minVC {
		p.minVC = s.VC
	}
	if s.VC > p.maxVC {
		p.maxVC = s.VC
	}
	if s.PowerW != 0 || s.FreqGHz != 0 || s.LittleCores != 0 || s.HasAvail {
		p.sawPlatform = true
	}
	p.samples++
}

func (*probeObserver) SupplyOnly() bool { return true }

// TestSupplyOnlyObserversSkipPlatformBookkeeping: when every attached
// observer is supply-only (the trace-free campaign configuration), the
// engine must not assemble the platform fields of the Sample — and a
// non-supply-only observer in the mix must bring them back.
func TestSupplyOnlyObserversSkipPlatformBookkeeping(t *testing.T) {
	probe := &probeObserver{}
	cfg := observerConfig(t, 20)
	cfg.SkipSeries = true
	cfg.Observers = []Observer{probe, &EnvelopeObserver{Channel: ChanVC}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if probe.samples == 0 {
		t.Fatal("probe saw no samples")
	}
	if probe.sawPlatform {
		t.Error("supply-only run still assembled platform state")
	}
	if probe.minVC == probe.maxVC {
		t.Error("probe saw a constant supply voltage — VC not populated?")
	}

	probe2 := &probeObserver{}
	cfg = observerConfig(t, 20)
	cfg.SkipSeries = true
	cfg.Observers = []Observer{probe2, &EnvelopeObserver{Channel: ChanPower}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !probe2.sawPlatform {
		t.Error("a power observer should force platform state into the samples")
	}
}

// TestStabilityBandValidation: non-positive and non-finite bands are
// rejected.
func TestStabilityBandValidation(t *testing.T) {
	for _, pct := range []float64{-0.1, 0, math.NaN(), math.Inf(1)} {
		cfg := observerConfig(t, 1)
		cfg.StabilityBands = []float64{0.05, pct}
		if _, err := Run(cfg); err == nil {
			t.Errorf("stability band %g accepted", pct)
		}
	}
}

// TestZeroSteadyStateAllocs pins the headline perf property: the
// trace-free hot path allocates only a fixed per-run amount — zero
// steady-state allocations per simulated second. It runs the same
// cloud-stressed power-neutral scenario at two durations; any per-step,
// per-interrupt or per-transition allocation left in the engine, the
// platform bookkeeping or the controller would make the longer run
// allocate more. (CI runs this as the alloc-regression gate; the
// BenchmarkStorageDispatch numbers track the absolute figures.)
func TestZeroSteadyStateAllocs(t *testing.T) {
	profile := pv.NewClouds(pv.Constant(900), pv.PartialSun(120), 42)
	run := func(dur float64) float64 {
		return testing.AllocsPerRun(5, func() {
			plat := soc.NewDefaultPlatform()
			plat.Reset(0, soc.MinOPP())
			ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(Config{
				Array: pv.SouthamptonArray(), Profile: profile,
				Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
				Controller: ctrl, Duration: dur, SkipSeries: true,
				StabilityBands: []float64{0.05},
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(30), run(120)
	if long > short {
		t.Errorf("steady-state allocations: 30 s run costs %.0f allocs, 120 s costs %.0f — %+.2f allocs per extra simulated second, want 0",
			short, long, (long-short)/90)
	}
}
