// Shadowing: the paper's Fig. 6 scenario — full sun interrupted by a deep
// cloud shadow. The registered "fig6-shadow" scenario supplies the
// controlled run; one field override turns it into the uncontrolled
// static baseline, showing that only the controlled system survives.
//
//	go run ./examples/shadowing
package main

import (
	"fmt"
	"log"

	"pnps"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

func main() {
	base, ok := pnps.LookupScenario("fig6-shadow")
	if !ok {
		log.Fatal("fig6-shadow scenario missing")
	}

	// Run 1: power-neutral control (the registered scenario as-is).
	ctrlRes, err := base.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	// Run 2: the same shadow on a static high configuration (what a
	// non-adaptive system sized for full sun would run).
	static := base
	static.Control = pnps.Uncontrolled()
	static.Boot = pnps.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}}
	staticRes, err := static.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cloud-shadow stress test (10 s, 60% shadow at t=4 s)")
	fmt.Println()
	report := func(name string, r *pnps.SimResult) {
		minV, _ := r.VC.Min()
		fmt.Printf("%-22s survived=%-5v minVc=%.2fV instructions=%.1fG\n",
			name, !r.BrownedOut, minV, r.Instructions/1e9)
	}
	report("power-neutral:", ctrlRes)
	report("static 4xA7+3xA15:", staticRes)

	fmt.Println()
	fmt.Println("Supply voltage, power-neutral run:")
	fmt.Print(trace.ASCIIPlot(ctrlRes.VC, 72, 10))
	fmt.Println("Committed DVFS frequency:")
	fmt.Print(trace.ASCIIPlot(ctrlRes.FreqGHz, 72, 8))
}
