package scenario

import (
	"context"
	"errors"
	"fmt"

	"pnps/internal/batch"
	"pnps/internal/sim"
	"pnps/internal/stats"
)

// Variant perturbs the spec for one campaign run. It receives the run
// index k and the run's derived seed (already decorrelated from the base
// seed via batch.Seed) and mutates the copied spec in place — swap the
// storage model, scale a parameter, change the weather. The seed passed
// on to Assemble is the same derived seed, so weather realisations vary
// per run even with a nil Variant.
type Variant func(k int, seed int64, s *Spec)

// Campaign fans Monte-Carlo variations of a base scenario across the
// deterministic batch engine: run k executes Base (perturbed by Vary)
// with seed batch.Seed(Seed, k). Results are collected in run order and
// aggregated sequentially, so a campaign's Outcome is bit-identical for
// any Workers value.
type Campaign struct {
	// Base is the scenario every run starts from.
	Base Spec
	// Runs is the number of Monte-Carlo repetitions (must be positive).
	Runs int
	// Seed is the campaign base seed; per-run seeds derive from it.
	Seed int64
	// Vary, when non-nil, perturbs the spec for each run; a nil Vary
	// varies only the seed (independent weather realisations).
	Vary Variant
	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called after each completed run with
	// (completed, total).
	OnProgress func(completed, total int)
	// KeepSeries retains per-run time series. Off by default: a
	// campaign of long scenarios would otherwise hold every trace of
	// every run in memory at once.
	KeepSeries bool
}

// RunResult pairs one campaign run with its identity.
type RunResult struct {
	// Index is the run's position in the campaign (0-based).
	Index int
	// Seed is the derived per-run seed.
	Seed int64
	// Spec is the (possibly perturbed) scenario the run executed.
	Spec Spec
	// Result is the simulation outcome.
	Result *sim.Result
}

// Summary aggregates a campaign deterministically (in run order).
type Summary struct {
	// Runs is the number of completed runs.
	Runs int
	// SurvivalRate is the fraction of runs without a brownout.
	SurvivalRate float64
	// TotalBrownouts counts brownouts across all runs.
	TotalBrownouts int
	// Stability summarises the per-run fraction of time within ±5% of
	// the target voltage. It needs the VC trace, so it is all zeros
	// unless the campaign sets KeepSeries.
	Stability stats.Summary
	// Instructions summarises per-run completed instructions.
	Instructions stats.Summary
	// LifetimeSeconds summarises per-run alive time.
	LifetimeSeconds stats.Summary
	// FinalVC summarises the per-run final supply voltage.
	FinalVC stats.Summary
	// StorageEnergyDeltaJ summarises per-run stored-energy change
	// (end − start), joules.
	StorageEnergyDeltaJ stats.Summary
}

// Outcome is a completed campaign.
type Outcome struct {
	// Results holds every run in campaign order.
	Results []RunResult
	// Summary is the deterministic aggregate.
	Summary Summary
}

// Run executes the campaign. Runs are independent simulations fanned
// over batch.Map; a failing run fails the campaign (index-ordered error
// aggregation), and cancelling ctx abandons unstarted runs.
func (c Campaign) Run(ctx context.Context) (*Outcome, error) {
	if c.Runs <= 0 {
		return nil, fmt.Errorf("scenario: campaign needs a positive run count, got %d", c.Runs)
	}
	// Derive every run's spec and seed up front, deterministically.
	runs := make([]RunResult, c.Runs)
	for k := range runs {
		seed := batch.Seed(c.Seed, k)
		sp := c.Base
		if !c.KeepSeries {
			sp.SkipSeries = true
		}
		if c.Vary != nil {
			c.Vary(k, seed, &sp)
		}
		runs[k] = RunResult{Index: k, Seed: seed, Spec: sp}
	}
	results, err := batch.Map(ctx, runs, func(_ context.Context, r RunResult) (*sim.Result, error) {
		res, err := r.Spec.Run(r.Seed)
		if err != nil {
			return nil, fmt.Errorf("campaign run %d (seed %d): %w", r.Index, r.Seed, err)
		}
		return res, nil
	}, batch.Options{Workers: c.Workers, OnProgress: c.OnProgress})
	if err != nil {
		return nil, err
	}
	for k := range runs {
		runs[k].Result = results[k]
	}
	out := &Outcome{Results: runs}
	if err := out.summarise(); err != nil {
		return nil, err
	}
	return out, nil
}

// summarise computes the aggregate in run order.
func (o *Outcome) summarise() error {
	n := len(o.Results)
	if n == 0 {
		return errors.New("scenario: empty campaign")
	}
	s := Summary{Runs: n}
	stability := make([]float64, 0, n)
	instr := make([]float64, 0, n)
	life := make([]float64, 0, n)
	finalVC := make([]float64, 0, n)
	deltaJ := make([]float64, 0, n)
	survived := 0
	for _, r := range o.Results {
		res := r.Result
		if !res.BrownedOut {
			survived++
		}
		s.TotalBrownouts += res.Brownouts
		stability = append(stability, res.StabilityWithin(0.05))
		instr = append(instr, res.Instructions)
		life = append(life, res.LifetimeSeconds)
		finalVC = append(finalVC, res.FinalVC)
		deltaJ = append(deltaJ, res.StorageEnergyEndJ-res.StorageEnergyStartJ)
	}
	s.SurvivalRate = float64(survived) / float64(n)
	var err error
	if s.Stability, err = stats.Summarize(stability); err != nil {
		return err
	}
	if s.Instructions, err = stats.Summarize(instr); err != nil {
		return err
	}
	if s.LifetimeSeconds, err = stats.Summarize(life); err != nil {
		return err
	}
	if s.FinalVC, err = stats.Summarize(finalVC); err != nil {
		return err
	}
	if s.StorageEnergyDeltaJ, err = stats.Summarize(deltaJ); err != nil {
		return err
	}
	o.Summary = s
	return nil
}
