package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerfCalibration(t *testing.T) {
	pf := DefaultPerfModel()
	if err := pf.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 7 anchors.
	if fps := pf.FramesPerSecond(MaxOPP()); fps < 0.15 || fps > 0.40 {
		t.Errorf("max FPS %.3f, want ≈0.25 (paper Fig. 7)", fps)
	}
	littleMax := OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4}}
	if fps := pf.FramesPerSecond(littleMax); fps < 0.04 || fps > 0.10 {
		t.Errorf("4xA7 FPS %.3f, want ≈0.065 (paper Fig. 7)", fps)
	}
}

func TestPerfMonotoneInFrequency(t *testing.T) {
	pf := DefaultPerfModel()
	for _, cfg := range ConfigLadder() {
		prev := -1.0
		for fi := 0; fi < NumFrequencyLevels; fi++ {
			ips := pf.InstructionsPerSecond(OPP{FreqIdx: fi, Config: cfg})
			if ips <= prev {
				t.Errorf("%v: IPS not increasing at level %d", cfg, fi)
			}
			prev = ips
		}
	}
}

func TestPerfMonotoneAlongLadder(t *testing.T) {
	pf := DefaultPerfModel()
	prev := -1.0
	for _, cfg := range ConfigLadder() {
		ips := pf.InstructionsPerSecond(OPP{FreqIdx: 4, Config: cfg})
		if ips <= prev {
			t.Errorf("IPS not increasing at %v", cfg)
		}
		prev = ips
	}
}

func TestAmdahlEfficiency(t *testing.T) {
	pf := DefaultPerfModel()
	if e := pf.amdahlEfficiency(1); e != 1 {
		t.Errorf("E(1) = %g", e)
	}
	prev := 1.0
	for n := 2; n <= 8; n++ {
		e := pf.amdahlEfficiency(n)
		if e >= prev {
			t.Errorf("E(%d) = %g not decreasing", n, e)
		}
		if e <= 0 || e > 1 {
			t.Errorf("E(%d) = %g out of (0,1]", n, e)
		}
		prev = e
	}
}

func TestLittleOnlyWinsFPSPerWatt(t *testing.T) {
	pm := DefaultPowerModel()
	pf := DefaultPerfModel()
	littleMax := OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4}}
	effLittle := pf.FramesPerSecond(littleMax) / pm.PowerAtFullLoad(littleMax)
	effMax := pf.FramesPerSecond(MaxOPP()) / pm.PowerAtFullLoad(MaxOPP())
	if effLittle <= effMax {
		t.Errorf("LITTLE-only FPS/W %.4f should beat full-chip %.4f", effLittle, effMax)
	}
}

func TestRendersPerMinute(t *testing.T) {
	pf := DefaultPerfModel()
	o := MaxOPP()
	if got, want := pf.RendersPerMinute(o), pf.FramesPerSecond(o)*60; math.Abs(got-want) > 1e-12 {
		t.Errorf("RendersPerMinute = %g, want %g", got, want)
	}
}

func TestEnergyPerInstruction(t *testing.T) {
	pm := DefaultPowerModel()
	pf := DefaultPerfModel()
	// The LITTLE cluster at full clock beats the whole chip on energy per
	// instruction (paper Fig. 7: the A7-only points are the efficient
	// ones). Note the board's large fixed floor power means *very* low
	// OPPs are not efficient — race-to-idle applies below ≈2 W.
	eLittle := pf.EnergyPerInstruction(OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4}}, pm)
	eMax := pf.EnergyPerInstruction(MaxOPP(), pm)
	if eLittle >= eMax {
		t.Errorf("energy/instr at 4xA7@1.4 (%.3g) should beat max OPP (%.3g)", eLittle, eMax)
	}
}

func TestPerfValidation(t *testing.T) {
	bad := DefaultPerfModel()
	bad.IPCBig = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero IPC accepted")
	}
	bad2 := DefaultPerfModel()
	bad2.ParallelFraction = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("parallel fraction >1 accepted")
	}
	bad3 := DefaultPerfModel()
	bad3.InstructionsPerFrame = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero instructions/frame accepted")
	}
}

// TestQuickIPSPositive checks the whole envelope yields positive finite
// throughput.
func TestQuickIPSPositive(t *testing.T) {
	pf := DefaultPerfModel()
	f := func(fi, l, b int8) bool {
		o := OPP{FreqIdx: int(fi), Config: CoreConfig{Little: int(l), Big: int(b)}}
		ips := pf.InstructionsPerSecond(o)
		return ips > 0 && !math.IsInf(ips, 0) && !math.IsNaN(ips)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
