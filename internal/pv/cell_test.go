package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSouthamptonCalibration(t *testing.T) {
	arr := SouthamptonArray()
	if err := arr.Validate(); err != nil {
		t.Fatal(err)
	}
	isc, err := arr.ShortCircuitCurrent(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if isc < 1.0 || isc > 1.3 {
		t.Errorf("Isc = %.3f A, want ≈1.15 (paper Fig. 13)", isc)
	}
	voc, err := arr.OpenCircuitVoltage(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if voc < 6.2 || voc > 7.0 {
		t.Errorf("Voc = %.3f V, want ≈6.6 (paper Fig. 13)", voc)
	}
	mpp, err := arr.MaximumPowerPoint(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if mpp.V < 5.0 || mpp.V > 5.6 {
		t.Errorf("Vmpp = %.3f V, want ≈5.3 (paper target voltage)", mpp.V)
	}
	if mpp.P < 5.0 || mpp.P > 6.2 {
		t.Errorf("Pmpp = %.3f W, want ≈5.5 (paper Fig. 13)", mpp.P)
	}
}

func TestSmallArrayPeaksNearOneWatt(t *testing.T) {
	arr := SmallArray()
	if err := arr.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := arr.AvailablePower(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.7 || p > 1.4 {
		t.Errorf("250 cm² cell peak power %.3f W, want ≈1 W (paper Fig. 1)", p)
	}
}

func TestCurrentMonotoneInVoltage(t *testing.T) {
	arr := SouthamptonArray()
	prev := math.Inf(1)
	for v := 0.0; v <= 6.6; v += 0.1 {
		i, err := arr.CurrentAt(v, StandardIrradiance)
		if err != nil {
			t.Fatalf("CurrentAt(%g): %v", v, err)
		}
		if i > prev+1e-9 {
			t.Errorf("I(V) not non-increasing at V=%g: %g > %g", v, i, prev)
		}
		prev = i
	}
}

func TestCurrentScalesWithIrradiance(t *testing.T) {
	arr := SouthamptonArray()
	i1, err := arr.ShortCircuitCurrent(400)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := arr.ShortCircuitCurrent(800)
	if err != nil {
		t.Fatal(err)
	}
	if r := i2 / i1; r < 1.95 || r > 2.05 {
		t.Errorf("Isc(800)/Isc(400) = %.3f, want ≈2 (Il linear in G)", r)
	}
}

func TestZeroIrradiance(t *testing.T) {
	arr := SouthamptonArray()
	i, err := arr.CurrentAt(2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if i > 0 {
		t.Errorf("dark current %g A should not be positive", i)
	}
	voc, err := arr.OpenCircuitVoltage(0)
	if err != nil {
		t.Fatal(err)
	}
	if voc != 0 {
		t.Errorf("Voc at dark = %g, want 0", voc)
	}
	m, err := arr.MaximumPowerPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 0 {
		t.Errorf("dark MPP power %g, want 0", m.P)
	}
}

func TestNegativeCurrentAboveVoc(t *testing.T) {
	arr := SouthamptonArray()
	voc, err := arr.OpenCircuitVoltage(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	i, err := arr.CurrentAt(voc+0.3, StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if i >= 0 {
		t.Errorf("I above Voc = %g, want negative (diode conducts)", i)
	}
}

func TestMPPIsMaximal(t *testing.T) {
	arr := SouthamptonArray()
	for _, g := range []float64{200, 500, 1000} {
		mpp, err := arr.MaximumPowerPoint(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, dv := range []float64{-0.2, -0.05, 0.05, 0.2} {
			p, err := arr.PowerAt(mpp.V+dv, g)
			if err != nil {
				t.Fatal(err)
			}
			if p > mpp.P+1e-6 {
				t.Errorf("G=%g: P(%.3f)=%.5f exceeds MPP %.5f", g, mpp.V+dv, p, mpp.P)
			}
		}
	}
}

func TestIVCurveShape(t *testing.T) {
	arr := SouthamptonArray()
	pts, err := arr.IVCurve(StandardIrradiance, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].V != 0 {
		t.Errorf("first point V=%g, want 0", pts[0].V)
	}
	if math.Abs(pts[len(pts)-1].I) > 1e-3 {
		t.Errorf("last point I=%g, want ≈0 (Voc)", pts[len(pts)-1].I)
	}
	if _, err := arr.IVCurve(StandardIrradiance, 1); err == nil {
		t.Error("IVCurve with 1 point should error")
	}
}

func TestValidationErrors(t *testing.T) {
	mk := func(mut func(*Array)) *Array {
		a := SouthamptonArray()
		mut(a)
		return a
	}
	bad := []*Array{
		mk(func(a *Array) { a.IscSTC = 0 }),
		mk(func(a *Array) { a.I0 = -1 }),
		mk(func(a *Array) { a.Rs = -0.1 }),
		mk(func(a *Array) { a.Rp = 0 }),
		mk(func(a *Array) { a.Ns = 0 }),
		mk(func(a *Array) { a.N = 0 }),
		mk(func(a *Array) { a.TempK = 0 }),
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestQuickIVSolveConverges property-tests the implicit solver across the
// operating envelope: it must converge and satisfy the diode equation.
func TestQuickIVSolveConverges(t *testing.T) {
	arr := SouthamptonArray()
	vt := float64(arr.Ns) * arr.N * kOverQ * arr.TempK
	f := func(vRaw, gRaw float64) bool {
		v := math.Mod(math.Abs(vRaw), 7.0)
		g := math.Mod(math.Abs(gRaw), 1200.0)
		i, err := arr.CurrentAt(v, g)
		if err != nil {
			return false
		}
		// Residual of the single-diode equation at the solution.
		arg := (v + arr.Rs*i) / vt
		if arg > 500 {
			arg = 500
		}
		resid := arr.LightCurrent(g) - arr.I0*math.Expm1(arg) - (v+arr.Rs*i)/arr.Rp - i
		return math.Abs(resid) < 1e-6*(1+math.Abs(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPowerNonNegativeBelowVoc checks P(V) >= 0 on [0, Voc].
func TestQuickPowerNonNegativeBelowVoc(t *testing.T) {
	arr := SouthamptonArray()
	voc, err := arr.OpenCircuitVoltage(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	f := func(frac float64) bool {
		v := math.Mod(math.Abs(frac), 1.0) * voc
		p, err := arr.PowerAt(v, StandardIrradiance)
		return err == nil && p >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMPPMonotoneInIrradiance(t *testing.T) {
	arr := SouthamptonArray()
	prev := -1.0
	for g := 100.0; g <= 1000; g += 100 {
		m, err := arr.MaximumPowerPoint(g)
		if err != nil {
			t.Fatal(err)
		}
		if m.P <= prev {
			t.Errorf("Pmpp(%g)=%g not increasing (prev %g)", g, m.P, prev)
		}
		prev = m.P
	}
}
