package predict

import (
	"math"
	"testing"

	"pnps/internal/governor"
	"pnps/internal/soc"
)

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(-0.1, 4); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewEWMA(1.5, 4); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewEWMA(0.5, 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestEWMASeedsFromFirstObservation(t *testing.T) {
	p, err := NewEWMA(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(0, 10)
	if got := p.Predict(0); got != 10 {
		t.Errorf("seeded prediction %g, want 10", got)
	}
	// Second observation blends.
	p.Observe(0, 20)
	if got := p.Predict(0); math.Abs(got-15) > 1e-12 {
		t.Errorf("blended prediction %g, want 15", got)
	}
}

func TestEWMAUnseededFallsBackToMean(t *testing.T) {
	p, _ := NewEWMA(0.5, 4)
	if p.Predict(2) != 0 {
		t.Error("empty predictor should predict 0")
	}
	p.Observe(0, 10)
	p.Observe(1, 20)
	if got := p.Predict(3); math.Abs(got-15) > 1e-12 {
		t.Errorf("fallback prediction %g, want mean 15", got)
	}
}

func TestEWMASlotWraparound(t *testing.T) {
	p, _ := NewEWMA(1.0, 3)
	p.Observe(0, 5)
	if got := p.Predict(3); got != 5 { // slot 3 ≡ slot 0
		t.Errorf("wrapped prediction %g, want 5", got)
	}
	p.Observe(-3, 7) // negative slots wrap too
	if got := p.Predict(0); got != 7 {
		t.Errorf("negative-slot observation lost: %g", got)
	}
}

func TestEWMAConvergesOnPeriodicSignal(t *testing.T) {
	p, _ := NewEWMA(0.5, 4)
	signal := []float64{1, 2, 3, 4}
	for rep := 0; rep < 20; rep++ {
		for k, v := range signal {
			p.Observe(k, v)
		}
	}
	for k, v := range signal {
		if got := p.Predict(k); math.Abs(got-v) > 1e-6 {
			t.Errorf("slot %d prediction %g, want %g", k, got, v)
		}
	}
}

func TestPredictionError(t *testing.T) {
	p, _ := NewEWMA(0.5, 4)
	// A constant signal is perfectly predictable after the first sample.
	relErr, err := PredictionError(p, []float64{5, 5, 5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 0.2 { // only the cold-start sample misses
		t.Errorf("relative error %g on a constant signal", relErr)
	}
	if _, err := PredictionError(p, nil); err == nil {
		t.Error("empty reference accepted")
	}
}

func TestGovernorValidation(t *testing.T) {
	pred, _ := NewEWMA(0.5, 4)
	pm, pf := soc.DefaultPowerModel(), soc.DefaultPerfModel()
	if _, err := NewGovernor(0, 0.9, pred, pm, pf); err == nil {
		t.Error("zero slot accepted")
	}
	if _, err := NewGovernor(10, 0, pred, pm, pf); err == nil {
		t.Error("zero margin accepted")
	}
	if _, err := NewGovernor(10, 1.2, pred, pm, pf); err == nil {
		t.Error("margin > 1 accepted")
	}
	if _, err := NewGovernor(10, 0.9, nil, pm, pf); err == nil {
		t.Error("nil predictor accepted")
	}
}

func TestGovernorImplementsInterface(t *testing.T) {
	pred, _ := NewEWMA(0.5, 4)
	g, err := NewGovernor(10, 0.9, pred, soc.DefaultPowerModel(), soc.DefaultPerfModel())
	if err != nil {
		t.Fatal(err)
	}
	var _ governor.Governor = g
	if g.Name() != "predictive" || g.SamplingPeriod() != 10 {
		t.Error("interface metadata wrong")
	}
}

func TestGovernorCommitsWithinBudget(t *testing.T) {
	pred, _ := NewEWMA(1.0, 2)
	pm, pf := soc.DefaultPowerModel(), soc.DefaultPerfModel()
	g, err := NewGovernor(10, 0.9, pred, pm, pf)
	if err != nil {
		t.Fatal(err)
	}
	g.Sense = func(float64) float64 { return 4.0 } // steady 4 W harvest
	st := governor.State{Load: 1, OPP: soc.MinOPP()}
	var opp soc.OPP
	for i := 0; i < 6; i++ {
		opp = g.Decide(float64(i)*10, st)
		st.OPP = opp
	}
	if p := pm.PowerAtFullLoad(opp); p > 4.0*0.9+1e-9 {
		t.Errorf("committed %.2f W against a %.2f W budget", p, 4.0*0.9)
	}
	if opp == soc.MinOPP() {
		t.Error("governor never ramped up on a generous harvest")
	}
	if g.Slot() != 6 {
		t.Errorf("slot counter %d", g.Slot())
	}
	g.Reset()
	if g.Slot() != 0 {
		t.Error("Reset did not clear slot")
	}
}

func TestGovernorZeroBudgetPicksMin(t *testing.T) {
	pred, _ := NewEWMA(1.0, 2)
	g, _ := NewGovernor(10, 0.9, pred, soc.DefaultPowerModel(), soc.DefaultPerfModel())
	g.Sense = func(float64) float64 { return 0 }
	opp := g.Decide(0, governor.State{Load: 1, OPP: soc.MaxOPP()})
	if opp != soc.MinOPP() {
		t.Errorf("dark harvest committed %v, want MinOPP", opp)
	}
}

func TestGovernorConsumptionProxyDeadlocks(t *testing.T) {
	// Without a harvest sensor the consumption proxy can never discover
	// headroom above the current OPP — the reason the experiment grants
	// the baseline an ideal sensor.
	pred, _ := NewEWMA(1.0, 2)
	g, _ := NewGovernor(10, 0.9, pred, soc.DefaultPowerModel(), soc.DefaultPerfModel())
	st := governor.State{Load: 1, OPP: soc.MinOPP()}
	for i := 0; i < 10; i++ {
		st.OPP = g.Decide(float64(i)*10, st)
	}
	if st.OPP != soc.MinOPP() {
		t.Errorf("consumption proxy escaped MinOPP to %v", st.OPP)
	}
}
