// Package faults is a deterministic fault-injection harness for the
// coordinator protocol: an http.RoundTripper wrapper that drops,
// delays, duplicates and truncates chosen exchanges, and a Chaos front
// that lets a test "kill -9" the coordinator behind a stable URL and
// restart a fresh incarnation from its journal.
//
// Determinism is the point. Every fault fires on an exactly-specified
// exchange (the Nth request matching a method/path rule), so a chaos
// schedule replays identically run after run — a failing schedule is a
// reproducible bug report, not a flake. Randomised schedules belong in
// the caller: derive rules from a seeded PRNG and the schedule is still
// replayable from the seed.
package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Op is what an injected fault does to a matched exchange.
type Op int

const (
	// DropRequest fails the exchange before it reaches the server —
	// a connection that died on the way out.
	DropRequest Op = iota
	// DropResponse delivers the request, then loses the answer — the
	// lost-200 case: the server did the work, the client cannot know.
	DropResponse
	// DupRequest delivers the request twice back to back and returns
	// the second response — a retrying proxy or an at-least-once queue.
	DupRequest
	// Delay sleeps Rule.Delay before delivering — a straggling network.
	Delay
	// TruncateResponse delivers the request but cuts the response body
	// in half — a torn connection mid-answer.
	TruncateResponse
)

func (o Op) String() string {
	switch o {
	case DropRequest:
		return "drop-request"
	case DropResponse:
		return "drop-response"
	case DupRequest:
		return "dup-request"
	case Delay:
		return "delay"
	case TruncateResponse:
		return "truncate-response"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Rule fires Op on chosen exchanges: those whose method matches (empty
// = any) and whose URL path contains Path (empty = any), counted
// per-rule. Nth picks the first firing occurrence (1-based; 0 means the
// first), Times how many consecutive matches fire from there (default
// 1, negative = forever).
type Rule struct {
	Method string
	Path   string
	Nth    int
	Times  int
	Op     Op
	Delay  time.Duration

	seen int
}

func (r *Rule) matches(req *http.Request) bool {
	if r.Method != "" && r.Method != req.Method {
		return false
	}
	if r.Path != "" && !strings.Contains(req.URL.Path, r.Path) {
		return false
	}
	r.seen++
	first := r.Nth
	if first < 1 {
		first = 1
	}
	times := r.Times
	if times == 0 {
		times = 1
	}
	if r.seen < first {
		return false
	}
	return times < 0 || r.seen < first+times
}

// DroppedError is the transport error injected for dropped exchanges —
// distinguishable from real network failures in test logs.
type DroppedError struct {
	Op   Op
	Path string
}

func (e *DroppedError) Error() string {
	return fmt.Sprintf("faults: injected %s on %s", e.Op, e.Path)
}

// Timeout marks the error as transient, like the net errors it stands
// in for.
func (e *DroppedError) Timeout() bool { return true }

// Transport wraps a base http.RoundTripper with a fault schedule. Safe
// for concurrent use; rules are evaluated in order and the first match
// fires.
type Transport struct {
	Base http.RoundTripper
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	rules []*Rule
	fired int
}

// NewTransport builds a fault-injecting transport over base (nil means
// http.DefaultTransport).
func NewTransport(base http.RoundTripper, rules ...Rule) *Transport {
	t := &Transport{Base: base}
	for i := range rules {
		r := rules[i]
		t.rules = append(t.rules, &r)
	}
	return t
}

// Fired returns how many faults have been injected so far — tests
// assert their schedule actually happened.
func (t *Transport) Fired() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// RoundTrip applies the first matching rule to the exchange.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	var hit *Rule
	for _, r := range t.rules {
		if r.matches(req) {
			hit = r
			t.fired++
			break
		}
	}
	t.mu.Unlock()
	if hit == nil {
		return t.base().RoundTrip(req)
	}
	t.logf("faults: %s %s %s", hit.Op, req.Method, req.URL.Path)

	switch hit.Op {
	case DropRequest:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &DroppedError{Op: DropRequest, Path: req.URL.Path}

	case Delay:
		time.Sleep(hit.Delay)
		return t.base().RoundTrip(req)

	case DropResponse:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server processed the request; the client never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &DroppedError{Op: DropResponse, Path: req.URL.Path}

	case DupRequest:
		body, err := bufferBody(req)
		if err != nil {
			return nil, err
		}
		first := req.Clone(req.Context())
		first.Body = io.NopCloser(bytes.NewReader(body))
		resp, err := t.base().RoundTrip(first)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		second := req.Clone(req.Context())
		second.Body = io.NopCloser(bytes.NewReader(body))
		return t.base().RoundTrip(second)

	case TruncateResponse:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		cut := data[:len(data)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return nil, fmt.Errorf("faults: unknown op %v", hit.Op)
}

// bufferBody reads the request body fully so it can be replayed.
func bufferBody(req *http.Request) ([]byte, error) {
	if req.Body == nil {
		return nil, nil
	}
	defer req.Body.Close()
	return io.ReadAll(req.Body)
}

// Chaos is a stable HTTP front over a swappable backend handler: the
// coordinator-kill lever. Kill() abandons the current backend without
// any graceful shutdown — exactly what SIGKILL does to a process — and
// every request until Restart() is answered 503, which workers treat as
// a retryable outage. Restart(handler) installs the next incarnation
// (typically a coord.Server rebuilt from the same journal) behind the
// unchanged URL.
type Chaos struct {
	mu       sync.Mutex
	idle     sync.Cond
	h        http.Handler
	inflight int
}

// NewChaos fronts the given handler.
func NewChaos(h http.Handler) *Chaos {
	c := &Chaos{h: h}
	c.idle.L = &c.mu
	return c
}

// Kill takes the backend down hard: no new request reaches it, and Kill
// returns only once every in-flight request has drained — so the caller
// may hand the dead incarnation's shared state (its journal file) to a
// successor without two writers racing. Requests already inside the old
// handler finish against its now-abandoned state, exactly as they would
// against a process that died a moment after responding. Do not call
// Kill from inside a request handler; it would wait on itself.
func (c *Chaos) Kill() {
	c.mu.Lock()
	c.h = nil
	for c.inflight > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
}

// Restart installs the next incarnation.
func (c *Chaos) Restart(h http.Handler) {
	c.mu.Lock()
	c.h = h
	c.mu.Unlock()
}

func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	h := c.h
	if h == nil {
		c.mu.Unlock()
		http.Error(w, "faults: coordinator killed", http.StatusServiceUnavailable)
		return
	}
	c.inflight++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.inflight--
		if c.inflight == 0 {
			c.idle.Broadcast()
		}
		c.mu.Unlock()
	}()
	h.ServeHTTP(w, r)
}
