package buffer

import (
	"math"
	"testing"
)

func TestSupercapValidation(t *testing.T) {
	good := Supercap{Farads: 25, ESROhms: 0.05, LeakOhms: 5000, VMax: 5.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Supercap{
		{Farads: 0, LeakOhms: 1, VMax: 5},
		{Farads: 1, ESROhms: -1, LeakOhms: 1, VMax: 5},
		{Farads: 1, LeakOhms: 0, VMax: 5},
		{Farads: 1, LeakOhms: 1, VMax: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSupercapEnergy(t *testing.T) {
	s := Supercap{Farads: 2, LeakOhms: 1000, VMax: 5}
	if e := s.Energy(3); e != 9 { // ½·2·9
		t.Errorf("Energy(3) = %g", e)
	}
	if u := s.UsableEnergy(5, 4); math.Abs(u-9) > 1e-12 { // ½·2·(25−16)
		t.Errorf("UsableEnergy = %g", u)
	}
}

func TestSupercapLeakage(t *testing.T) {
	s := Supercap{Farads: 25, LeakOhms: 5000, VMax: 5.5}
	p := s.LeakagePower(5)
	if math.Abs(p-5e-3) > 1e-12 { // 25/5000
		t.Errorf("leakage %g W", p)
	}
	if d := s.DailyLeakageEnergy(5); math.Abs(d-p*86400) > 1e-9 {
		t.Errorf("daily leakage %g J", d)
	}
}

func TestEnergyNeutralSizing(t *testing.T) {
	// Harvest 2 W for half the samples, 0 for the rest; load constant
	// 1 W. Worst deficit: the dark half = 1 W × half the period.
	n := 100
	harvest := make([]float64, n)
	load := make([]float64, n)
	for i := range harvest {
		if i < n/2 {
			harvest[i] = 2
		}
		load[i] = 1
	}
	const dt = 60.0
	farads, deficit, err := EnergyNeutralSizing(harvest, load, dt, 5.7, 4.1)
	if err != nil {
		t.Fatal(err)
	}
	wantDeficit := 1.0 * dt * float64(n/2)
	if math.Abs(deficit-wantDeficit) > 1e-9 {
		t.Errorf("deficit %g, want %g", deficit, wantDeficit)
	}
	wantF := wantDeficit / (0.5 * (5.7*5.7 - 4.1*4.1))
	if math.Abs(farads-wantF) > 1e-9 {
		t.Errorf("farads %g, want %g", farads, wantF)
	}
}

func TestEnergyNeutralSizingSurplus(t *testing.T) {
	harvest := []float64{5, 5, 5}
	load := []float64{1, 1, 1}
	farads, deficit, err := EnergyNeutralSizing(harvest, load, 60, 5.7, 4.1)
	if err != nil {
		t.Fatal(err)
	}
	if farads != 0 || deficit != 0 {
		t.Errorf("pure surplus needs no buffer, got %g F", farads)
	}
}

func TestEnergyNeutralSizingValidation(t *testing.T) {
	if _, _, err := EnergyNeutralSizing([]float64{1}, []float64{1, 2}, 60, 5, 4); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := EnergyNeutralSizing([]float64{1}, []float64{1}, 0, 5, 4); err == nil {
		t.Error("zero dt accepted")
	}
	if _, _, err := EnergyNeutralSizing([]float64{1}, []float64{1}, 60, 4, 5); err == nil {
		t.Error("inverted swing accepted")
	}
}

func TestMinCapacitanceBisection(t *testing.T) {
	// Survival iff C >= 0.1 exactly.
	calls := 0
	survive := func(f float64) (bool, error) {
		calls++
		return f >= 0.1, nil
	}
	got, err := MinCapacitance(survive, 1e-3, 10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.1 || got > 0.103 {
		t.Errorf("min capacitance %g, want ≈0.1 from above", got)
	}
	if calls > 40 {
		t.Errorf("bisection used %d evaluations", calls)
	}
}

func TestMinCapacitanceBracketErrors(t *testing.T) {
	never := func(float64) (bool, error) { return false, nil }
	if _, err := MinCapacitance(never, 1e-3, 1, 0.05); err == nil {
		t.Error("unsurvivable scenario accepted")
	}
	always := func(float64) (bool, error) { return true, nil }
	got, err := MinCapacitance(always, 1e-3, 1, 0.05)
	if err != nil || got != 1e-3 {
		t.Errorf("always-survives should return the lower bracket, got %g, %v", got, err)
	}
	if _, err := MinCapacitance(always, 1, 1, 0.05); err == nil {
		t.Error("degenerate bracket accepted")
	}
}
