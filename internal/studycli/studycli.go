// Package studycli builds study.Study values from a serialisable,
// flag-level recipe — the study-identity surface shared by the pnstudy
// and pncoord CLIs. The same Config always builds the same study
// fingerprint, which is what lets separate shard, resume and merge
// invocations cooperate, and what lets a coordinator hand its recipe
// to `pnstudy -worker` processes over HTTP knowing they will execute
// bit-identically the same matrix.
package studycli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pnps/internal/buffer"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/study"
)

// Config is the study-identity recipe: everything that determines the
// matrix, the seeds and the fingerprint — and nothing that does not
// (worker counts and progress reporting are execution detail). It is
// JSON-serialisable so a coordinator can publish it to workers.
type Config struct {
	Scenario string  `json:"scenario"`
	Duration float64 `json:"duration,omitempty"`
	Storage  string  `json:"storage,omitempty"`
	Control  string  `json:"control,omitempty"`
	Util     string  `json:"util,omitempty"`
	Reps     int     `json:"reps"`
	Seed     int64   `json:"seed"`
	Paired   bool    `json:"paired,omitempty"`
	Bins     int     `json:"bins,omitempty"`
	HistLo   float64 `json:"hist_lo,omitempty"`
	HistHi   float64 `json:"hist_hi,omitempty"`
}

// DecodeConfig parses a wire-format recipe strictly: unknown fields are
// rejected, not ignored. The recipe is the one schema pnserve, pncoord
// and `pnstudy -worker` agree on, and silently dropping a field the
// sender thought mattered (a typo'd "utll", a field from a newer
// version) would make two machines build *different* studies from what
// they believe is the same recipe — the exact skew the fingerprint
// exists to catch, better refused at the parse boundary with a
// diagnostic than later with a fingerprint mismatch.
func DecodeConfig(raw []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("studycli: undecodable recipe: %w", err)
	}
	// A second document in the stream is as suspect as an unknown field.
	if dec.More() {
		return Config{}, fmt.Errorf("studycli: trailing data after recipe")
	}
	return c, nil
}

// Build assembles the study from the recipe. The same Config always
// builds the same fingerprint.
func (c Config) Build() (study.Study, error) {
	base, ok := scenario.Lookup(c.Scenario)
	if !ok {
		return study.Study{}, fmt.Errorf("unknown scenario %q (known: %v)", c.Scenario, scenario.Names())
	}
	if c.Duration > 0 {
		base.Duration = c.Duration
	}
	st := study.Study{
		Name: "pnstudy-" + c.Scenario, Base: base,
		Reps: c.Reps, Seed: c.Seed,
		VCHistBins: c.Bins, VCHistLo: c.HistLo, VCHistHi: c.HistHi,
	}
	if c.Paired {
		st.SeedMode = study.SeedPerRep
	}
	if c.Storage != "" {
		ax, err := ParseStorageAxis(c.Storage)
		if err != nil {
			return study.Study{}, err
		}
		st.Axes = append(st.Axes, ax)
	}
	if c.Control != "" {
		st.Axes = append(st.Axes, ParseControlAxis(c.Control))
	}
	if c.Util != "" {
		ax, err := ParseUtilAxis(c.Util)
		if err != nil {
			return study.Study{}, err
		}
		st.Axes = append(st.Axes, ax)
	}
	return st, nil
}

// ParseStorageAxis parses "ideal:0.047,supercap:0.047,hybrid:0.01:1"
// into a storage axis; the spec strings are the level labels.
func ParseStorageAxis(s string) (study.Axis, error) {
	var levels []study.Level
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		parts := strings.Split(spec, ":")
		farads := func(i int) (float64, error) {
			if i >= len(parts) {
				return 0, fmt.Errorf("storage spec %q: missing capacitance", spec)
			}
			v, err := strconv.ParseFloat(parts[i], 64)
			if err != nil || v <= 0 {
				return 0, fmt.Errorf("storage spec %q: bad capacitance %q", spec, parts[i])
			}
			return v, nil
		}
		switch parts[0] {
		case "ideal":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.IdealCap{Farads: fd}))
		case "supercap":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.NewSupercap(buffer.Supercap{
				Farads: fd, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
			})))
		case "hybrid":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			res, err := farads(2)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.HybridCap{
				NodeFarads: fd, ReservoirFarads: res,
				DiodeDropVolts: 0.35, DiodeOhms: 0.2,
				ChargeOhms: 10, LeakOhms: 20000,
			}))
		default:
			return study.Axis{}, fmt.Errorf("storage spec %q: unknown family %q (ideal, supercap, hybrid)", spec, parts[0])
		}
	}
	return study.NewAxis("storage", levels...), nil
}

// ParseControlAxis parses "pn,static,ondemand" into a control axis;
// governor names are validated at assembly time, not here.
func ParseControlAxis(s string) study.Axis {
	var levels []study.Level
	for _, name := range strings.Split(s, ",") {
		switch name = strings.TrimSpace(name); name {
		case "pn", "power-neutral":
			levels = append(levels, study.PowerNeutral())
		case "static":
			levels = append(levels, study.Control("static", scenario.Uncontrolled()))
		default:
			levels = append(levels, study.Governor(name))
		}
	}
	return study.NewAxis("control", levels...)
}

// ParseUtilAxis parses "1,0.6,0.3" into a workload axis.
func ParseUtilAxis(s string) (study.Axis, error) {
	var levels []study.Level
	for _, part := range strings.Split(s, ",") {
		u, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || u < 0 || u > 1 {
			return study.Axis{}, fmt.Errorf("bad utilisation %q (want [0,1])", part)
		}
		levels = append(levels, study.Utilisation(u))
	}
	return study.NewAxis("load", levels...), nil
}

// WriteFileAtomic writes atomically (temp file + rename): a crash or
// disk-full mid-write must never truncate an existing checkpoint or
// export — losing completed work is the exact failure the resumable
// ledger exists to survive.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// PrintOutcome renders the per-cell table, the per-axis marginals and
// the overall aggregate of a completed study.
func PrintOutcome(w io.Writer, st study.Study, out *study.StudyOutcome) {
	fmt.Fprintf(w, "study %s: %d cells × %d reps = %d runs (seed %d)\n\n",
		st.Name, len(out.Cells), st.Reps, out.Summary.Runs, st.Seed)
	keyWidth := len("cell")
	for _, c := range out.Cells {
		if len(c.Cell.Key) > keyWidth {
			keyWidth = len(c.Cell.Key)
		}
	}
	fmt.Fprintf(w, "%-*s  %-9s %-9s %-22s %-11s %s\n", keyWidth, "cell",
		"survival", "brownouts", "within ±5% (P25..P75)", "mean instr", "dwell med")
	for _, c := range out.Cells {
		s := c.Summary
		key := c.Cell.Key
		if key == "" {
			key = "(all)"
		}
		dwell := "-"
		if c.DwellVC != nil {
			dwell = fmt.Sprintf("%.3f V", c.DwellVC.Median)
		}
		fmt.Fprintf(w, "%-*s  %6.1f%%  %-9d %5.1f%% (%4.1f..%4.1f%%)     %7.2f G   %s\n",
			keyWidth, key, s.SurvivalRate*100, s.TotalBrownouts,
			s.Stability.Mean*100, s.Stability.P25*100, s.Stability.P75*100,
			s.Instructions.Mean/1e9, dwell)
	}
	if len(out.Marginals) > 0 {
		fmt.Fprintln(w, "\nmarginals (each level aggregated across all other axes):")
		for _, m := range out.Marginals {
			s := m.Summary
			fmt.Fprintf(w, "  %-10s %-22s survival %5.1f%%  within ±5%% %5.1f%%  instr %7.2f G\n",
				m.Axis, m.Level, s.SurvivalRate*100, s.Stability.Mean*100, s.Instructions.Mean/1e9)
		}
	}
	s := out.Summary
	fmt.Fprintf(w, "\noverall: survival %.1f%%, within ±5%% mean %.1f%% (P5 %.1f%%, median %.1f%%, P95 %.1f%%)\n",
		s.SurvivalRate*100, s.Stability.Mean*100,
		s.Stability.P5*100, s.Stability.Median*100, s.Stability.P95*100)
	if out.DwellVC != nil {
		fmt.Fprintf(w, "supply dwell: median %.3f V (P25..P75 %.3f..%.3f V) over %.0f run-seconds\n",
			out.DwellVC.Median, out.DwellVC.P25, out.DwellVC.P75, out.VCHistogram.Total())
	}
}
