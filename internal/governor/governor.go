// Package governor re-implements the default Linux cpufreq governors the
// paper compares against in Table II: performance, powersave, ondemand,
// conservative and interactive. The governors only scale frequency — like
// their Linux counterparts they keep all eight cores online — and sample
// CPU load periodically rather than reacting to supply-voltage interrupts,
// which is exactly why they fail on a storage-less harvesting supply.
package governor

import (
	"fmt"

	"pnps/internal/soc"
)

// State is the platform view a governor samples at each tick.
type State struct {
	// Load is CPU utilisation in [0,1] (1 = saturated, the paper's
	// ray-tracing workload).
	Load float64
	// OPP is the platform's committed operating point.
	OPP soc.OPP
	// SupplyVolts is the instantaneous supply voltage. Linux governors
	// ignore it — it is provided so experimental governors can cheat.
	SupplyVolts float64
}

// Governor decides a target OPP at every sampling tick.
type Governor interface {
	// Name returns the cpufreq governor name.
	Name() string
	// SamplingPeriod returns the tick interval in seconds.
	SamplingPeriod() float64
	// Decide returns the desired OPP given the sampled state.
	Decide(now float64, st State) soc.OPP
	// Reset clears internal state (called at boot).
	Reset()
}

// allCores is the fixed core configuration Linux governors run with.
var allCores = soc.CoreConfig{Little: 4, Big: 4}

// Performance pins the maximum frequency (cpufreq "performance").
type Performance struct{}

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// SamplingPeriod implements Governor.
func (Performance) SamplingPeriod() float64 { return 0.1 }

// Decide implements Governor.
func (Performance) Decide(float64, State) soc.OPP {
	return soc.OPP{FreqIdx: soc.NumFrequencyLevels - 1, Config: allCores}
}

// Reset implements Governor.
func (Performance) Reset() {}

// Powersave pins the minimum frequency (cpufreq "powersave"). The paper
// notes it "statically reduces performance to a minimum".
type Powersave struct{}

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// SamplingPeriod implements Governor.
func (Powersave) SamplingPeriod() float64 { return 0.1 }

// Decide implements Governor.
func (Powersave) Decide(float64, State) soc.OPP {
	return soc.OPP{FreqIdx: 0, Config: allCores}
}

// Reset implements Governor.
func (Powersave) Reset() {}

// Ondemand jumps straight to the maximum frequency when load exceeds
// UpThreshold and otherwise steps proportionally downwards — a faithful
// sketch of cpufreq "ondemand".
type Ondemand struct {
	// UpThreshold is the load above which the governor jumps to fmax
	// (Linux default 0.80).
	UpThreshold float64
	// Period is the sampling period, seconds (Linux default ~100 ms at
	// these transition latencies).
	Period float64
}

// NewOndemand returns an ondemand governor with Linux-default tuning.
func NewOndemand() *Ondemand { return &Ondemand{UpThreshold: 0.80, Period: 0.1} }

// Name implements Governor.
func (*Ondemand) Name() string { return "ondemand" }

// SamplingPeriod implements Governor.
func (g *Ondemand) SamplingPeriod() float64 { return g.Period }

// Decide implements Governor.
func (g *Ondemand) Decide(_ float64, st State) soc.OPP {
	if st.Load >= g.UpThreshold {
		return soc.OPP{FreqIdx: soc.NumFrequencyLevels - 1, Config: allCores}
	}
	// Proportional down-scaling: pick the lowest level whose relative
	// speed still covers the sampled load.
	levels := soc.FrequencyLevels()
	fmax := levels[len(levels)-1]
	want := st.Load * fmax
	idx := 0
	for i, f := range levels {
		if f >= want {
			idx = i
			break
		}
	}
	return soc.OPP{FreqIdx: idx, Config: allCores}
}

// Reset implements Governor.
func (g *Ondemand) Reset() {}

// Conservative steps one frequency level at a time towards the load — the
// cpufreq "conservative" governor. Under a saturating workload it ramps to
// fmax in NumFrequencyLevels·Period seconds, which is what grants it the
// paper's five seconds of life (Table II) before the harvesting supply
// collapses.
type Conservative struct {
	// UpThreshold and DownThreshold bound the dead zone (Linux defaults
	// 0.80 / 0.20).
	UpThreshold, DownThreshold float64
	// Period is the sampling period, seconds.
	Period float64
}

// NewConservative returns a conservative governor with Linux-default
// tuning (sampling stretched to the platform's transition latency scale).
func NewConservative() *Conservative {
	return &Conservative{UpThreshold: 0.80, DownThreshold: 0.20, Period: 1.0}
}

// Name implements Governor.
func (*Conservative) Name() string { return "conservative" }

// SamplingPeriod implements Governor.
func (g *Conservative) SamplingPeriod() float64 { return g.Period }

// Decide implements Governor.
func (g *Conservative) Decide(_ float64, st State) soc.OPP {
	idx := st.OPP.FreqIdx
	switch {
	case st.Load >= g.UpThreshold && idx < soc.NumFrequencyLevels-1:
		idx++
	case st.Load <= g.DownThreshold && idx > 0:
		idx--
	}
	return soc.OPP{FreqIdx: idx, Config: allCores}
}

// Reset implements Governor.
func (g *Conservative) Reset() {}

// Interactive models Android's "interactive" governor: on load above
// GoHispeedLoad it jumps to an intermediate "hispeed" frequency, then
// ramps to maximum after AboveHispeedDelay of sustained load.
type Interactive struct {
	// GoHispeedLoad is the load that triggers the hispeed jump (default
	// 0.85).
	GoHispeedLoad float64
	// HispeedIdx is the frequency index of the hispeed jump target.
	HispeedIdx int
	// AboveHispeedDelay is the sustained-load delay before ramping past
	// hispeed, seconds.
	AboveHispeedDelay float64
	// Period is the sampling period, seconds.
	Period float64

	hispeedSince float64
	armed        bool
}

// NewInteractive returns an interactive governor with Android-like tuning.
func NewInteractive() *Interactive {
	return &Interactive{GoHispeedLoad: 0.85, HispeedIdx: 4, AboveHispeedDelay: 0.2, Period: 0.1}
}

// Name implements Governor.
func (*Interactive) Name() string { return "interactive" }

// SamplingPeriod implements Governor.
func (g *Interactive) SamplingPeriod() float64 { return g.Period }

// Decide implements Governor.
func (g *Interactive) Decide(now float64, st State) soc.OPP {
	if st.Load < g.GoHispeedLoad {
		g.armed = false
		// Proportional fall-back below hispeed.
		levels := soc.FrequencyLevels()
		want := st.Load * levels[len(levels)-1]
		idx := 0
		for i, f := range levels {
			if f >= want {
				idx = i
				break
			}
		}
		if idx > g.HispeedIdx {
			idx = g.HispeedIdx
		}
		return soc.OPP{FreqIdx: idx, Config: allCores}
	}
	if !g.armed {
		g.armed = true
		g.hispeedSince = now
	}
	idx := g.HispeedIdx
	if now-g.hispeedSince >= g.AboveHispeedDelay {
		idx = soc.NumFrequencyLevels - 1
	}
	if st.OPP.FreqIdx > idx {
		idx = st.OPP.FreqIdx // never ramp down while loaded
	}
	return soc.OPP{FreqIdx: idx, Config: allCores}
}

// Reset implements Governor.
func (g *Interactive) Reset() { g.armed = false; g.hispeedSince = 0 }

// ByName returns the governor with the given cpufreq name.
func ByName(name string) (Governor, error) {
	switch name {
	case "performance":
		return Performance{}, nil
	case "powersave":
		return Powersave{}, nil
	case "ondemand":
		return NewOndemand(), nil
	case "conservative":
		return NewConservative(), nil
	case "interactive":
		return NewInteractive(), nil
	default:
		return nil, fmt.Errorf("governor: unknown governor %q", name)
	}
}

// All returns one instance of every implemented Linux governor, in the
// order of the paper's Table II discussion.
func All() []Governor {
	return []Governor{
		Performance{},
		NewOndemand(),
		NewInteractive(),
		NewConservative(),
		Powersave{},
	}
}
