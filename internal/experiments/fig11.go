package experiments

import (
	"pnps/internal/scenario"
	"pnps/internal/trace"
)

// Fig11 regenerates the paper's Fig. 11: system response to a controlled
// variable voltage supply (a bench PSU, not the PV array), with
// deliberately large Vq and Vwidth for clarity of illustration. The
// figure's qualitative claims: minor fluctuations (point 'A') are handled
// by DVFS alone, while the sudden reduction at point 'B' also disables
// big and LITTLE cores — so core scaling is applied less often than
// frequency scaling.
func Fig11(seed int64) (*Report, error) {
	// The bench-supply sequence (piecewise-linear setpoints with A-type
	// ramps and the sudden B reduction) lives in the scenario registry;
	// it is deterministic, so the seed only keeps API symmetry.
	res, err := scenario.MustLookup("fig11-bench").Run(seed)
	if err != nil {
		return nil, err
	}

	st := res.ControllerStats
	coreToggles := st.BigToggles + st.LittleToggles

	r := &Report{
		ID:    "fig11",
		Title: "Response to a controlled variable supply",
		Description: "Bench-supply setpoint sequence with minor fluctuations (A) and one " +
			"sudden drop (B). DVFS should fire far more often than core hot-plugging.",
		Series: []*trace.Series{res.VC, res.FreqGHz, res.LittleCores, res.BigCores, res.TotalCores},
	}
	r.AddMetric("threshold interrupts", float64(res.Interrupts), "", "")
	r.AddMetric("DVFS steps", float64(st.FreqSteps), "", "")
	r.AddMetric("core toggles (big+LITTLE)", float64(coreToggles), "", "")
	if coreToggles > 0 {
		r.AddMetric("DVFS:hot-plug ratio", float64(st.FreqSteps)/float64(coreToggles), "x",
			"paper: core scaling applied less often than frequency scaling")
	}
	r.AddMetric("survived full test", b2f(!res.BrownedOut), "bool", "")
	r.Plots = append(r.Plots,
		trace.ASCIIPlot(res.VC, 72, 10),
		trace.ASCIIPlot(res.FreqGHz, 72, 8),
		trace.ASCIIPlot(res.TotalCores, 72, 8))
	return r, nil
}
