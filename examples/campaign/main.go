// Campaign: a Monte-Carlo storage study — the paper's headline claim
// ("power neutrality makes farad-scale buffers unnecessary") evaluated
// across many weather realisations instead of one. Three campaigns run
// the same stress scenario on the ideal 47 mF capacitor, a real supercap
// bank (ESR + leakage in the live ODE) and a hybrid diode-backed buffer,
// each fanned over all CPU cores with bit-reproducible aggregation.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"

	"pnps"
)

func main() {
	base, ok := pnps.LookupScenario("stress-clouds")
	if !ok {
		log.Fatal("stress-clouds scenario missing")
	}
	const runs = 16

	storages := []struct {
		name string
		st   pnps.Storage
	}{
		{"ideal 47 mF", pnps.IdealCapacitor{Farads: 47e-3}},
		{"supercap 47 mF (ESR+leak)", pnps.NewSupercapBank(pnps.SupercapParams{
			Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: 5.7,
		})},
		{"hybrid 10 mF + 1 F reservoir", pnps.HybridBuffer{
			NodeFarads: 10e-3, ReservoirFarads: 1,
			DiodeDropVolts: 0.35, DiodeOhms: 0.2,
			ChargeOhms: 10, LeakOhms: 20000,
		}},
	}

	fmt.Printf("Monte-Carlo storage study: %d weather realisations of the stress scenario\n\n", runs)
	fmt.Printf("%-30s %-10s %-12s %-14s %s\n",
		"storage", "survival", "brownouts", "mean instr", "mean lifetime")

	for _, s := range storages {
		spec := base
		spec.Storage = s.st
		out, err := pnps.Campaign{
			Base: spec, Runs: runs, Seed: 2017,
		}.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		sum := out.Summary
		fmt.Printf("%-30s %7.1f%%  %-12d %9.1f G  %8.1f s\n",
			s.name, sum.SurvivalRate*100, sum.TotalBrownouts,
			sum.Instructions.Mean/1e9, sum.LifetimeSeconds.Mean)
	}

	fmt.Println("\nSingle-seed evaluation overfits the weather; the campaign shows the")
	fmt.Println("distribution — and the diode-backed reservoir riding through occlusions")
	fmt.Println("that kill a bare buffer capacitor of any realistic size.")
}
