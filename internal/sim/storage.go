package sim

import (
	"fmt"
	"math"

	"pnps/internal/buffer"
)

// MaxStorageStates bounds the internal state dimension of a Storage
// model; the engine preallocates its ODE state buffer to this size so
// pluggable storage keeps the zero-steady-state-allocation hot path.
const MaxStorageStates = 4

// Storage models the supply-node energy buffer as a small ODE system,
// replacing the hard-coded ideal capacitor of C·dVc/dt = Inet. The
// engine owns a state vector of Dim() voltages; state[0] is the sensed
// voltage — the node the threshold monitor, the brownout comparator and
// the recorded VC trace observe.
//
// Sign convention: i is the net terminal current in amps flowing *into*
// the storage branch (harvest minus load), matching the capacitor
// equation's right-hand side.
//
// Implementations must be immutable values: all mutable run state lives
// in the engine-owned state vector, so one Storage value can be shared
// by concurrent runs (sweeps, campaigns) without synchronisation.
type Storage interface {
	// Validate checks the parameters.
	Validate() error
	// Dim returns the number of internal state voltages (1..MaxStorageStates).
	Dim() int
	// Init fills state (length Dim) for a buffer at rest with terminal
	// voltage v0.
	Init(v0 float64, state []float64)
	// Terminal returns the board/node supply voltage for the given state
	// with net current i flowing into the storage. For storage with
	// series resistance this differs from state[0]; the engine then
	// re-evaluates harvest and load at the shifted voltage (one
	// corrector pass).
	Terminal(state []float64, i float64) float64
	// Derivative writes dstate/dt for net terminal current i.
	Derivative(state []float64, i float64, dstate []float64)
	// Energy returns the energy stored at the given state, joules.
	Energy(state []float64) float64
}

// IdealCap is the lossless buffer capacitor the paper deploys (47 mF):
// dVc/dt = i/C. It reproduces the engine's historical hard-coded
// behaviour bit for bit.
type IdealCap struct {
	// Farads is the buffer capacitance.
	Farads float64
}

// Validate implements Storage.
func (c IdealCap) Validate() error {
	if c.Farads <= 0 {
		return fmt.Errorf("sim: capacitance must be positive, got %g", c.Farads)
	}
	return nil
}

// Dim implements Storage.
func (IdealCap) Dim() int { return 1 }

// Init implements Storage.
func (IdealCap) Init(v0 float64, state []float64) { state[0] = v0 }

// Terminal implements Storage.
func (IdealCap) Terminal(state []float64, _ float64) float64 { return state[0] }

// Derivative implements Storage.
func (c IdealCap) Derivative(state []float64, i float64, dstate []float64) {
	dstate[0] = i / c.Farads
}

// Energy implements Storage.
func (c IdealCap) Energy(state []float64) float64 {
	return 0.5 * c.Farads * state[0] * state[0]
}

// Supercap is a supercapacitor bank with equivalent series resistance
// and a parallel leakage path — buffer.Supercap's equivalent circuit
// (Weddell et al., the paper's [5]) promoted into the live ODE:
//
//	dVc/dt = (i − Vc/Rleak) / C        (state 0: cell voltage)
//	Vnode  = Vc + i·ESR                (terminal behind the ESR)
//
// The monitor and brownout comparators sense the cell voltage Vc
// (state 0); the ESR drop shifts the operating point at which harvest
// and load currents are evaluated. With ESROhms = 0 and LeakOhms = +Inf
// the model degenerates to IdealCap exactly (bit-identical traces; see
// TestSupercapDegeneratesToIdealCap).
type Supercap struct {
	buffer.Supercap
}

// NewSupercap adapts a buffer.Supercap bank for the live ODE.
func NewSupercap(bank buffer.Supercap) Supercap { return Supercap{Supercap: bank} }

// Validate implements Storage.
func (s Supercap) Validate() error { return s.Supercap.Validate() }

// Dim implements Storage.
func (Supercap) Dim() int { return 1 }

// Init implements Storage.
func (Supercap) Init(v0 float64, state []float64) { state[0] = v0 }

// Terminal implements Storage.
func (s Supercap) Terminal(state []float64, i float64) float64 {
	return state[0] + i*s.ESROhms
}

// Derivative implements Storage.
func (s Supercap) Derivative(state []float64, i float64, dstate []float64) {
	dstate[0] = (i - state[0]/s.LeakOhms) / s.Farads
}

// Energy implements Storage.
func (s Supercap) Energy(state []float64) float64 { return s.Supercap.Energy(state[0]) }

// HybridCap is a two-stage buffer: a small capacitor directly on the
// supply node (state 0, the sensed voltage) backed by a large reservoir
// (state 1) behind a diode. The diode lets the reservoir hold the node
// up through harvest collapses — at the cost of its forward drop —
// while a trickle-charge resistor refills the reservoir from harvest
// surplus:
//
//	idis = max(0, Vres − Vf − Vnode) / Rdiode    (reservoir → node)
//	ichg = max(0, Vnode − Vres) / Rcharge        (node → reservoir)
//	dVnode/dt = (i + idis − ichg) / Cnode
//	dVres/dt  = (ichg − idis − Vres/Rleak) / Cres
type HybridCap struct {
	// NodeFarads is the small capacitor at the supply node.
	NodeFarads float64
	// ReservoirFarads is the bulk storage behind the diode.
	ReservoirFarads float64
	// DiodeDropVolts is the diode forward drop (e.g. 0.35 V Schottky).
	DiodeDropVolts float64
	// DiodeOhms is the on-resistance of the conducting diode.
	DiodeOhms float64
	// ChargeOhms is the node→reservoir trickle-charge resistance.
	ChargeOhms float64
	// LeakOhms models reservoir self-discharge; +Inf disables it.
	LeakOhms float64
}

// Validate implements Storage.
func (h HybridCap) Validate() error {
	switch {
	case h.NodeFarads <= 0:
		return fmt.Errorf("sim: hybrid node capacitance must be positive, got %g", h.NodeFarads)
	case h.ReservoirFarads <= 0:
		return fmt.Errorf("sim: hybrid reservoir capacitance must be positive, got %g", h.ReservoirFarads)
	case h.DiodeDropVolts < 0:
		return fmt.Errorf("sim: diode drop must be non-negative, got %g", h.DiodeDropVolts)
	case h.DiodeOhms <= 0:
		return fmt.Errorf("sim: diode on-resistance must be positive, got %g", h.DiodeOhms)
	case h.ChargeOhms <= 0:
		return fmt.Errorf("sim: charge resistance must be positive, got %g", h.ChargeOhms)
	case h.LeakOhms <= 0:
		return fmt.Errorf("sim: leakage resistance must be positive, got %g", h.LeakOhms)
	}
	return nil
}

// Dim implements Storage.
func (HybridCap) Dim() int { return 2 }

// Init implements Storage.
func (HybridCap) Init(v0 float64, state []float64) {
	state[0] = v0
	state[1] = v0
}

// Terminal implements Storage.
func (HybridCap) Terminal(state []float64, _ float64) float64 { return state[0] }

// Derivative implements Storage.
func (h HybridCap) Derivative(state []float64, i float64, dstate []float64) {
	vn, vr := state[0], state[1]
	idis := math.Max(0, vr-h.DiodeDropVolts-vn) / h.DiodeOhms
	ichg := math.Max(0, vn-vr) / h.ChargeOhms
	dstate[0] = (i + idis - ichg) / h.NodeFarads
	dstate[1] = (ichg - idis - vr/h.LeakOhms) / h.ReservoirFarads
}

// Energy implements Storage.
func (h HybridCap) Energy(state []float64) float64 {
	return 0.5*h.NodeFarads*state[0]*state[0] + 0.5*h.ReservoirFarads*state[1]*state[1]
}
