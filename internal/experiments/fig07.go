package experiments

import (
	"fmt"

	"pnps/internal/soc"
)

// Fig7 regenerates the paper's Fig. 7: ray-tracing performance (frames per
// second at 5 samples/pixel) versus board power consumption for the
// benchmarked operating points.
func Fig7() (*Report, error) {
	pm := soc.DefaultPowerModel()
	pf := soc.DefaultPerfModel()

	tab := Table{
		Title:  "Raytrace FPS (power W) per configuration and frequency",
		Header: []string{"f (GHz)"},
	}
	ladder := soc.ConfigLadder()
	for _, cfg := range ladder {
		tab.Header = append(tab.Header, cfg.String())
	}
	for fi, f := range soc.FrequencyLevels() {
		row := []string{fmt.Sprintf("%.2f", f/1e9)}
		for _, cfg := range ladder {
			o := soc.OPP{FreqIdx: fi, Config: cfg}
			row = append(row, fmt.Sprintf("%.4f (%.2fW)", pf.FramesPerSecond(o), pm.PowerAtFullLoad(o)))
		}
		tab.Rows = append(tab.Rows, row)
	}

	maxOPP := soc.MaxOPP()
	littleMax := soc.OPP{FreqIdx: soc.NumFrequencyLevels - 1, Config: soc.CoreConfig{Little: 4}}

	r := &Report{
		ID:          "fig7",
		Title:       "Performance vs power across operating points",
		Description: "Calibrated performance surface for the smallpt workload.",
		Tables:      []Table{tab},
	}
	r.AddPaperMetric("max FPS (8 cores @1.4 GHz)", pf.FramesPerSecond(maxOPP), 0.25, "FPS",
		"paper Fig. 7 right panel peak")
	r.AddPaperMetric("max FPS (4xA7 only)", pf.FramesPerSecond(littleMax), 0.065, "FPS",
		"paper Fig. 7 left panel peak")
	r.AddMetric("LITTLE-only efficiency at 4xA7 @1.4 GHz",
		pf.FramesPerSecond(littleMax)/pm.PowerAtFullLoad(littleMax), "FPS/W", "")
	r.AddMetric("full-chip efficiency at max OPP",
		pf.FramesPerSecond(maxOPP)/pm.PowerAtFullLoad(maxOPP), "FPS/W",
		"LITTLE-only should win on FPS/W")
	return r, nil
}
