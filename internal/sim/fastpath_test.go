package sim

import (
	"math"
	"testing"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

func controllerConfig(t *testing.T, profile pv.Profile, duration float64) Config {
	t.Helper()
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Array: pv.SouthamptonArray(), Profile: profile,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: ctrl, Duration: duration,
	}
}

// TestNoDuplicateBoundarySamples is the regression test for the segment
// double-recording bug: every per-segment integration used to re-record
// its start point (already recorded as the previous segment's end), so
// each boundary appeared twice in the series, biasing the unweighted
// Series.Mean(). Equal-time samples are still allowed when the value
// steps (zero-order-hold discontinuities); only exact (t, v) duplicates
// are forbidden.
func TestNoDuplicateBoundarySamples(t *testing.T) {
	res, err := Run(controllerConfig(t, pv.Sinusoid{Mean: 700, Amplitude: 280, Period: 10}, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupts == 0 {
		t.Fatal("scenario produced no interrupts; boundary dedupe not exercised")
	}
	for _, s := range []struct {
		name   string
		times  []float64
		values []float64
	}{
		{"VC", res.VC.Times(), res.VC.Values()},
		{"PowerConsumed", res.PowerConsumed.Times(), res.PowerConsumed.Values()},
		{"FreqGHz", res.FreqGHz.Times(), res.FreqGHz.Values()},
		{"TotalCores", res.TotalCores.Times(), res.TotalCores.Values()},
	} {
		dups := 0
		for i := 1; i < len(s.times); i++ {
			if s.times[i] == s.times[i-1] && s.values[i] == s.values[i-1] {
				dups++
			}
		}
		if dups > 0 {
			t.Errorf("%s: %d exact duplicate samples of %d", s.name, dups, len(s.times))
		}
	}
}

// exactSource routes node-current solves through the exact bracketed
// Array.CurrentAt, bypassing the engine's accelerated PVSource detection.
type exactSource struct {
	arr     *pv.Array
	profile pv.Profile
}

func (s exactSource) Current(t, vc float64) (float64, error) {
	return s.arr.CurrentAt(vc, s.profile.Irradiance(t))
}

// TestFastSourceMatchesExactSolves runs the same controller scenario
// through the accelerated per-engine solver and through the exact
// bracketed solver, and requires the end-to-end results to agree: the
// warm-started Newton fast path must be a pure optimisation, not a model
// change.
func TestFastSourceMatchesExactSolves(t *testing.T) {
	profile := pv.Sinusoid{Mean: 700, Amplitude: 280, Period: 10}
	const duration = 30.0

	fast, err := Run(controllerConfig(t, profile, duration))
	if err != nil {
		t.Fatal(err)
	}
	cfg := controllerConfig(t, profile, duration)
	cfg.Source = exactSource{arr: cfg.Array, profile: profile}
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if fast.Interrupts != exact.Interrupts || fast.Brownouts != exact.Brownouts {
		t.Errorf("discrete behaviour diverged: interrupts %d vs %d, brownouts %d vs %d",
			fast.Interrupts, exact.Interrupts, fast.Brownouts, exact.Brownouts)
	}
	if d := math.Abs(fast.FinalVC - exact.FinalVC); d > 1e-6 {
		t.Errorf("FinalVC: fast %g vs exact %g (|Δ|=%g)", fast.FinalVC, exact.FinalVC, d)
	}
	if rel := math.Abs(fast.Instructions-exact.Instructions) / (1 + exact.Instructions); rel > 1e-9 {
		t.Errorf("Instructions: fast %g vs exact %g", fast.Instructions, exact.Instructions)
	}
}
