package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecAlgebra(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Mul(b) != (Vec{4, 10, 18}) {
		t.Error("Mul")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if a.Cross(b) != (Vec{-3, 6, -3}) {
		t.Error("Cross")
	}
	if (Vec{3, 4, 0}).Length() != 5 {
		t.Error("Length")
	}
	if (Vec{0, 0, 0}).Norm() != (Vec{0, 0, 0}) {
		t.Error("zero Norm should stay zero")
	}
	if (Vec{1, 7, 3}).MaxComponent() != 7 {
		t.Error("MaxComponent")
	}
}

func TestQuickCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		bound := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e3)
		}
		a := Vec{bound(ax), bound(ay), bound(az)}
		b := Vec{bound(bx), bound(by), bound(bz)}
		c := a.Cross(b)
		scale := 1 + a.Length()*b.Length()
		return math.Abs(c.Dot(a))/scale < 1e-6 && math.Abs(c.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		if !ok(x) || !ok(y) || !ok(z) {
			return true
		}
		v := Vec{math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)}
		if v.Length() == 0 {
			return true
		}
		return math.Abs(v.Norm().Length()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Radius: 1, Position: Vec{0, 0, 5}}
	// Ray straight at the sphere hits the near surface at distance 4.
	d := s.Intersect(Ray{Origin: Vec{0, 0, 0}, Dir: Vec{0, 0, 1}})
	if math.Abs(d-4) > 1e-9 {
		t.Errorf("head-on hit at %g, want 4", d)
	}
	// Ray pointing away misses.
	if d := s.Intersect(Ray{Origin: Vec{0, 0, 0}, Dir: Vec{0, 0, -1}}); d != 0 {
		t.Errorf("behind-ray hit %g", d)
	}
	// Offset ray misses.
	if d := s.Intersect(Ray{Origin: Vec{0, 5, 0}, Dir: Vec{0, 0, 1}}); d != 0 {
		t.Errorf("offset ray hit %g", d)
	}
	// Ray from inside hits the far surface.
	din := s.Intersect(Ray{Origin: Vec{0, 0, 5}, Dir: Vec{0, 0, 1}})
	if math.Abs(din-1) > 1e-9 {
		t.Errorf("inside hit at %g, want 1", din)
	}
}

func TestToSRGB(t *testing.T) {
	if ToSRGB(0) != 0 {
		t.Error("black")
	}
	if ToSRGB(1) != 255 {
		t.Error("white")
	}
	if ToSRGB(-1) != 0 || ToSRGB(2) != 255 {
		t.Error("clamping")
	}
	if ToSRGB(0.5) <= 128 { // gamma brightens midtones
		t.Error("gamma curve missing")
	}
}

func TestCornellSceneGeometry(t *testing.T) {
	sc := CornellScene()
	if len(sc.Spheres) != 9 {
		t.Fatalf("scene has %d spheres", len(sc.Spheres))
	}
	var lights int
	for _, s := range sc.Spheres {
		if s.Emission.MaxComponent() > 0 {
			lights++
		}
	}
	if lights != 1 {
		t.Errorf("scene has %d emitters, want 1", lights)
	}
}

func TestRenderDeterministic(t *testing.T) {
	sc := CornellScene()
	opts := RenderOptions{Width: 16, Height: 12, SamplesPerPixel: 2, Seed: 11}
	a, err := sc.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1 // different parallelism must not change the image
	b, err := sc.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatalf("pixel %d differs across worker counts", i)
		}
	}
}

func TestRenderProducesLight(t *testing.T) {
	sc := CornellScene()
	img, err := sc.Render(RenderOptions{Width: 24, Height: 18, SamplesPerPixel: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lum := img.MeanLuminance()
	if lum <= 0.02 || lum >= 1 {
		t.Errorf("mean luminance %g implausible for the Cornell box", lum)
	}
	// All radiance finite and non-negative.
	for i, p := range img.Pixels {
		for _, v := range []float64{p.X, p.Y, p.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("pixel %d has invalid radiance %+v", i, p)
			}
		}
	}
	if img.At(3, 2) != img.Pixels[2*img.Width+3] {
		t.Error("At indexing wrong")
	}
}

func TestRenderOptionValidation(t *testing.T) {
	sc := CornellScene()
	if _, err := sc.Render(RenderOptions{Width: 0, Height: 5, SamplesPerPixel: 1}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := sc.Render(RenderOptions{Width: 5, Height: 5, SamplesPerPixel: 0}); err == nil {
		t.Error("zero spp accepted")
	}
}

func TestMoreSamplesLessNoise(t *testing.T) {
	sc := CornellScene()
	relNoise := func(spp int) float64 {
		// Render the same image with two seeds and measure the mean
		// squared pixel difference relative to the image brightness — a
		// Monte-Carlo noise proxy robust to the per-subpixel clamping
		// bias at very low sample counts.
		a, err := sc.Render(RenderOptions{Width: 12, Height: 9, SamplesPerPixel: spp, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.Render(RenderOptions{Width: 12, Height: 9, SamplesPerPixel: spp, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range a.Pixels {
			d := a.Pixels[i].Sub(b.Pixels[i])
			sum += d.Dot(d)
		}
		lum := (a.MeanLuminance() + b.MeanLuminance()) / 2
		return sum / float64(len(a.Pixels)) / (lum * lum)
	}
	if v2, v16 := relNoise(2), relNoise(16); v16 >= v2 {
		t.Errorf("16 spp relative noise %g not below 2 spp noise %g", v16, v2)
	}
}
