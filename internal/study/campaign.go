package study

import (
	"context"
	"errors"
	"fmt"

	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/stats"
)

// Campaign fans Monte-Carlo variations of a base scenario across the
// deterministic batch engine: run k executes Base (perturbed by Vary)
// with seed batch.Seed(Seed, k). It is the single-cell special case of
// a Study — Run builds one and executes its task ledger — kept as a
// first-class surface because "N seed-varied repetitions of one
// scenario, grouped by an ad-hoc label" is the everyday shape of
// Monte-Carlo work. Results are collected in run order and aggregated
// sequentially, so a campaign's Outcome is bit-identical for any
// Workers value.
//
// Campaigns are trace-free by default: each run carries online
// observers (stability bands, the supply envelope, optionally a
// dwell-time voltage histogram) instead of time series, so memory per
// in-flight run is O(1) and a 10k-run campaign needs no more memory
// than its worker count times one run.
type Campaign struct {
	// Base is the scenario every run starts from.
	Base scenario.Spec
	// Runs is the number of Monte-Carlo repetitions (must be positive).
	Runs int
	// Seed is the campaign base seed; per-run seeds derive from it.
	Seed int64
	// Vary, when non-nil, perturbs the spec for each run; a nil Vary
	// varies only the seed (independent weather realisations).
	Vary Variant
	// Group, when non-nil, labels each run; the Outcome then carries one
	// GroupSummary per distinct label (in first-occurrence run order)
	// alongside the overall Summary.
	Group GroupFunc
	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Engine selects the execution engine ("" or "scalar" sequential,
	// "batched" lockstep structure-of-arrays); outcomes are bit-identical
	// either way. See Study.Engine.
	Engine string
	// BatchWidth is the lockstep lane count for the batched engine; <1
	// selects sim.DefaultBatchWidth.
	BatchWidth int
	// OnProgress, when non-nil, is called after each completed run with
	// (completed, total); the batched engine reports per lane pack.
	OnProgress func(completed, total int)
	// KeepSeries retains per-run time series. Off by default: a
	// campaign of long scenarios would otherwise hold every trace of
	// every run in memory at once. Stability and envelope aggregation
	// are identical either way — the online accumulators are
	// bit-identical to the series analyses.
	KeepSeries bool
	// StabilityBands overrides DefaultStabilityBands (fractional
	// half-widths around the run's target voltage). The ±5% band the
	// Summary aggregates is always included, whatever is listed here.
	StabilityBands []float64
	// VCHistBins, when positive, attaches a per-run dwell-time histogram
	// of the supply voltage with this many bins over [VCHistLo,
	// VCHistHi) and merges them (in run order) into Outcome.VCHistogram
	// — the campaign-level "time at each operating voltage" distribution
	// (paper Fig. 13) without any trace.
	VCHistBins         int
	VCHistLo, VCHistHi float64
}

// RunResult pairs one campaign run with its identity.
type RunResult struct {
	// Index is the run's position in the campaign (0-based).
	Index int
	// Seed is the derived per-run seed.
	Seed int64
	// Group is the aggregation label assigned by Campaign.Group ("" when
	// ungrouped).
	Group string
	// Spec is the (possibly perturbed) scenario the run executed.
	Spec scenario.Spec
	// Result is the simulation outcome.
	Result *sim.Result

	// vcHist is the per-run dwell-time histogram (VCHistBins > 0 only),
	// merged into Outcome.VCHistogram during summarise.
	vcHist *stats.Histogram
}

// Summary aggregates runs deterministically (in run order). Each
// stats.Summary carries the quantile band (P5/P25/median/P75/P95)
// alongside the moments.
type Summary struct {
	// Runs is the number of completed runs.
	Runs int
	// SurvivalRate is the fraction of runs without a brownout.
	SurvivalRate float64
	// TotalBrownouts counts brownouts across all runs.
	TotalBrownouts int
	// Stability summarises the per-run fraction of time within ±5% of
	// the target voltage — computed by the online stability observers,
	// so it is available (and bit-identical) with or without KeepSeries.
	Stability stats.Summary
	// Instructions summarises per-run completed instructions.
	Instructions stats.Summary
	// LifetimeSeconds summarises per-run alive time.
	LifetimeSeconds stats.Summary
	// FinalVC summarises the per-run final supply voltage.
	FinalVC stats.Summary
	// MinVC summarises the per-run supply-voltage minimum (from the
	// online envelope; the paper's brownout-margin view).
	MinVC stats.Summary
	// StorageEnergyDeltaJ summarises per-run stored-energy change
	// (end − start), joules.
	StorageEnergyDeltaJ stats.Summary
}

// GroupSummary is the aggregate of the runs sharing one Group label.
type GroupSummary struct {
	// Name is the group label.
	Name string
	// Summary is the group's aggregate.
	Summary Summary
}

// Outcome is a completed campaign.
type Outcome struct {
	// Results holds every run in campaign order. Trace-free campaigns
	// retain only scalar outcomes per run (sim.Result without series).
	Results []RunResult
	// Summary is the deterministic aggregate over all runs.
	Summary Summary
	// Groups holds one aggregate per Campaign.Group label, ordered by
	// first occurrence; nil when the campaign was ungrouped.
	Groups []GroupSummary
	// VCHistogram is the run-order merge of the per-run dwell-time
	// voltage histograms (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
}

// Run executes the campaign on the study engine: a single-cell Study
// whose repetition ledger is the campaign's run list. Runs are
// independent simulations fanned over batch.Map; a failing run fails
// the campaign (index-ordered error aggregation), and cancelling ctx
// abandons unstarted runs.
func (c Campaign) Run(ctx context.Context) (*Outcome, error) {
	if c.Runs <= 0 {
		return nil, fmt.Errorf("study: campaign needs a positive run count, got %d", c.Runs)
	}
	st := Study{
		Name: c.Base.Name, Base: c.Base, Reps: c.Runs, Seed: c.Seed,
		Vary: c.Vary, Group: c.Group,
		Workers: c.Workers, Engine: c.Engine, BatchWidth: c.BatchWidth,
		OnProgress: c.OnProgress,
		KeepSeries: c.KeepSeries, StabilityBands: c.StabilityBands,
		VCHistBins: c.VCHistBins, VCHistLo: c.VCHistLo, VCHistHi: c.VCHistHi,
	}
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	results, err := st.runTasks(ctx, p, p.allTasks(st))
	if err != nil {
		return nil, err
	}
	runs := make([]RunResult, len(results))
	for i := range results {
		r := &results[i]
		runs[i] = RunResult{
			Index: r.Task.Index, Seed: r.Task.Seed, Group: r.Group,
			Spec: r.Spec, Result: r.Result, vcHist: r.Hist,
		}
	}
	out := &Outcome{Results: runs}
	if err := out.summarise(c); err != nil {
		return nil, err
	}
	return out, nil
}

// summaryAccum collects the per-run scalars of one aggregation bucket.
type summaryAccum struct {
	stability, instr, life, finalVC, minVC, deltaJ []float64
	survived, brownouts                            int
}

func newSummaryAccum(capacity int) *summaryAccum {
	return &summaryAccum{
		stability: make([]float64, 0, capacity),
		instr:     make([]float64, 0, capacity),
		life:      make([]float64, 0, capacity),
		finalVC:   make([]float64, 0, capacity),
		minVC:     make([]float64, 0, capacity),
		deltaJ:    make([]float64, 0, capacity),
	}
}

func (a *summaryAccum) add(m RunMetrics) {
	if m.Survived {
		a.survived++
	}
	a.brownouts += m.Brownouts
	a.stability = append(a.stability, m.Stability)
	a.instr = append(a.instr, m.Instructions)
	a.life = append(a.life, m.LifetimeSeconds)
	a.finalVC = append(a.finalVC, m.FinalVC)
	a.minVC = append(a.minVC, m.MinVC)
	a.deltaJ = append(a.deltaJ, m.StorageEnergyDeltaJ)
}

func (a *summaryAccum) summary() (Summary, error) {
	n := len(a.instr)
	s := Summary{
		Runs:           n,
		SurvivalRate:   float64(a.survived) / float64(n),
		TotalBrownouts: a.brownouts,
	}
	var err error
	if s.Stability, err = stats.Summarize(a.stability); err != nil {
		return s, err
	}
	if s.Instructions, err = stats.Summarize(a.instr); err != nil {
		return s, err
	}
	if s.LifetimeSeconds, err = stats.Summarize(a.life); err != nil {
		return s, err
	}
	if s.FinalVC, err = stats.Summarize(a.finalVC); err != nil {
		return s, err
	}
	if s.MinVC, err = stats.Summarize(a.minVC); err != nil {
		return s, err
	}
	if s.StorageEnergyDeltaJ, err = stats.Summarize(a.deltaJ); err != nil {
		return s, err
	}
	return s, nil
}

// summarise computes the aggregates strictly in run order, so the
// Outcome is bit-identical at any worker count.
func (o *Outcome) summarise(c Campaign) error {
	n := len(o.Results)
	if n == 0 {
		return errors.New("study: empty campaign")
	}
	overall := newSummaryAccum(n)
	var groupOrder []string
	groups := map[string]*summaryAccum{}
	for i := range o.Results {
		r := &o.Results[i]
		m := metricsFrom(r.Result)
		overall.add(m)
		if c.Group != nil {
			g, ok := groups[r.Group]
			if !ok {
				g = newSummaryAccum(0)
				groups[r.Group] = g
				groupOrder = append(groupOrder, r.Group)
			}
			g.add(m)
		}
		if r.vcHist != nil {
			if o.VCHistogram == nil {
				merged := *r.vcHist // copy bounds; reuse the first run's bins
				merged.Bins = append([]float64(nil), r.vcHist.Bins...)
				o.VCHistogram = &merged
			} else if err := o.VCHistogram.Merge(r.vcHist); err != nil {
				return err
			}
			// Merged; drop the per-run histogram so a 10k-run campaign
			// does not keep O(runs × bins) dead weight alive through
			// the Outcome.
			r.vcHist = nil
		}
	}
	var err error
	if o.Summary, err = overall.summary(); err != nil {
		return err
	}
	for _, name := range groupOrder {
		s, err := groups[name].summary()
		if err != nil {
			return err
		}
		o.Groups = append(o.Groups, GroupSummary{Name: name, Summary: s})
	}
	return nil
}
