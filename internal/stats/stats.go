// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, percentiles, time-weighted histograms
// (used for the paper's Fig. 13 "time spent at each operating voltage"
// analysis) and linear regression for model calibration checks.
//
// # Choosing a quantile estimator
//
// Three quantile paths coexist, in order of preference:
//
//   - Quantile / Summarize: exact order statistics when the sample fits
//     in memory — what campaign and study summaries use for per-run
//     scalar metrics.
//   - Histogram.Quantile: bin-bounded error on streams of any length
//     and ordering, and the only estimator that supports time-weighted
//     observations. Prefer it whenever a histogram is available — in
//     particular over P2 for time-ordered signals.
//   - P2: O(1)-memory single-quantile sketch for unbounded streams with
//     no histogram. Caveat: monotone (sorted or steadily drifting)
//     streams are adversarial for P² — the markers can only chase the
//     moving distribution and the estimate can be off by a tenth of the
//     data span. Simulation signals are time-ordered and often drift,
//     so summaries derived from them should use Histogram.Quantile when
//     a histogram is available (study and campaign dwell-time summaries
//     do exactly this); reach for P2 only when memory rules a histogram
//     out and the stream is not monotone.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one value.
var ErrEmpty = errors.New("stats: empty input")

// Summary holds the usual descriptive statistics of a sample. The
// Median and the P5/P25/P75/P95 percentiles together give the quantile
// bands campaign aggregation reports.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	StdDev   float64 // population standard deviation
	Median   float64
	P5, P95  float64
	P25, P75 float64 // interquartile band
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	return s, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already-sorted sample
// using linear interpolation between order statistics. It panics if sorted
// is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Weights default to 1
// per observation but AddWeighted supports time-weighted occupancy
// histograms (weight = dwell time).
type Histogram struct {
	Lo, Hi float64
	Bins   []float64 // accumulated weight per bin
	under  float64
	over   float64
	total  float64
}

// NewHistogram creates a histogram with n equal-width bins spanning
// [lo, hi). It returns an error for invalid bounds or n < 1.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram bounds [%g,%g) invalid", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]float64, n)}, nil
}

// RestoreHistogram rebuilds a histogram from serialised state — the
// exact accumulated bins, under/overflow and total of a previously
// built histogram (see the study-checkpoint protocol). The counters are
// taken verbatim rather than recomputed, so a restored histogram is
// bit-identical to the one that was serialised; bins are copied.
func RestoreHistogram(lo, hi float64, bins []float64, under, over, total float64) (*Histogram, error) {
	if len(bins) == 0 {
		return nil, fmt.Errorf("stats: restore of empty histogram")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram bounds [%g,%g) invalid", lo, hi)
	}
	return &Histogram{
		Lo: lo, Hi: hi, Bins: append([]float64(nil), bins...),
		under: under, over: over, total: total,
	}, nil
}

// Add records x with weight 1.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records x with the given weight. Out-of-range observations
// accumulate in underflow/overflow counters and still contribute to Total.
func (h *Histogram) AddWeighted(x, w float64) {
	h.total += w
	if x < h.Lo {
		h.under += w
		return
	}
	if x >= h.Hi {
		h.over += w
		return
	}
	i := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i >= len(h.Bins) { // guard against FP edge at x ≈ Hi
		i = len(h.Bins) - 1
	}
	h.Bins[i] += w
}

// Merge folds the other histogram's accumulated weights into h,
// including under/overflow. The histograms must share bounds and bin
// count; per-run observer histograms merged in a fixed order produce a
// bit-identical aggregate at any worker count.
func (h *Histogram) Merge(other *Histogram) error {
	if other.Lo != h.Lo || other.Hi != h.Hi || len(other.Bins) != len(h.Bins) {
		return fmt.Errorf("stats: merge of mismatched histograms [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Bins), other.Lo, other.Hi, len(other.Bins))
	}
	for i, w := range other.Bins {
		h.Bins[i] += w
	}
	h.under += other.under
	h.over += other.over
	h.total += other.total
	return nil
}

// Total returns the accumulated weight including under/overflow.
func (h *Histogram) Total() float64 { return h.total }

// Underflow returns the weight recorded below Lo.
func (h *Histogram) Underflow() float64 { return h.under }

// Overflow returns the weight recorded at or above Hi.
func (h *Histogram) Overflow() float64 { return h.over }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns bin i's share of the total weight (0 if nothing was
// recorded).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return h.Bins[i] / h.total
}

// ModeBin returns the index of the highest-weight bin.
func (h *Histogram) ModeBin() int {
	best := 0
	for i, w := range h.Bins {
		if w > h.Bins[best] {
			best = i
		}
	}
	_ = best
	for i, w := range h.Bins {
		if w > h.Bins[best] {
			best = i
		}
	}
	return best
}

// LinearFit holds the result of an ordinary least squares line fit y=a+bx.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLine performs ordinary least squares on paired samples. It returns an
// error if the inputs differ in length, hold fewer than two points, or all
// x values coincide.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs >=2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLine degenerate x values")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}
