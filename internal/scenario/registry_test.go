package scenario

import (
	"fmt"
	"sync"
	"testing"

	"pnps/internal/pv"
)

// TestRegistryConcurrentAccess exercises the registry's documented
// concurrency contract under the race detector (CI runs this package
// with -race): concurrent registrations, duplicate attempts, lookups
// and listings must be data-race free and first-wins consistent.
func TestRegistryConcurrentAccess(t *testing.T) {
	const (
		writers = 8
		readers = 8
		perW    = 20
	)
	name := func(w, i int) string { return fmt.Sprintf("race-test-w%d-%d", w, i) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				sp := Spec{
					Name:     name(w, i),
					Profile:  FixedProfile(pv.Constant(1000)),
					Duration: 1,
				}
				if err := Register(sp); err != nil {
					t.Errorf("register %s: %v", sp.Name, err)
					return
				}
				// Duplicate registration must error, never replace.
				sp.Duration = 99
				if err := Register(sp); err == nil {
					t.Errorf("duplicate %s accepted", sp.Name)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Lookups race with registrations by design; when a name
				// is visible it must carry the first-registered value.
				if sp, ok := Lookup(name(r%writers, i)); ok && sp.Duration != 1 {
					t.Errorf("lookup %s saw duration %g, want first-registered 1", sp.Name, sp.Duration)
					return
				}
				if _, ok := Lookup("stress-clouds"); !ok {
					t.Error("built-in vanished during concurrent registration")
					return
				}
				_ = Names()
				_ = List()
			}
		}(r)
	}
	wg.Wait()

	// Every registration must have landed and read back intact.
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			sp, ok := Lookup(name(w, i))
			if !ok || sp.Duration != 1 {
				t.Fatalf("post-race lookup %s = %+v, %v", name(w, i), sp, ok)
			}
		}
	}
}
