// Package predict implements harvest-prediction baselines from the
// paper's related work: the EWMA slot predictor of Kansal et al. (used by
// harvesting-aware schedulers) and a SolarTune-style prediction-driven
// performance governor that budgets the next interval's OPP from the
// predicted harvest.
//
// The paper's Section I argues these schemes "rely heavily upon accurate
// prediction of future availability of harvested power, making them
// unsuitable for use with sources exhibiting significant 'micro'
// variability". This package exists to reproduce that claim: the
// prediction-driven governor is run against the same shadowed profiles as
// the power-neutral controller (experiment id "predictive").
package predict

import (
	"fmt"
	"math"

	"pnps/internal/governor"
	"pnps/internal/soc"
)

// EWMA is the classic exponentially-weighted moving-average slot
// predictor: the harvest expected in slot k is a blend of the harvest
// observed in the same slot on previous days (here: previous periods)
// and the running estimate.
type EWMA struct {
	// Alpha is the blend weight of the newest observation (0..1).
	Alpha float64
	// Slots is the number of slots per period.
	Slots int

	estimates []float64
	seeded    []bool
}

// NewEWMA builds a predictor with the given blend weight and slot count.
func NewEWMA(alpha float64, slots int) (*EWMA, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: alpha %g outside [0,1]", alpha)
	}
	if slots < 1 {
		return nil, fmt.Errorf("predict: need >=1 slot, got %d", slots)
	}
	return &EWMA{Alpha: alpha, Slots: slots,
		estimates: make([]float64, slots), seeded: make([]bool, slots)}, nil
}

// Observe feeds the measured harvest (watts) of slot k.
func (p *EWMA) Observe(slot int, watts float64) {
	k := ((slot % p.Slots) + p.Slots) % p.Slots
	if !p.seeded[k] {
		p.estimates[k] = watts
		p.seeded[k] = true
		return
	}
	p.estimates[k] = p.Alpha*watts + (1-p.Alpha)*p.estimates[k]
}

// Predict returns the expected harvest of slot k (watts). Unseeded slots
// fall back to the mean of the seeded ones, or zero.
func (p *EWMA) Predict(slot int) float64 {
	k := ((slot % p.Slots) + p.Slots) % p.Slots
	if p.seeded[k] {
		return p.estimates[k]
	}
	var sum float64
	var n int
	for i, ok := range p.seeded {
		if ok {
			sum += p.estimates[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Governor is a SolarTune-style prediction-driven performance scaler: at
// the start of every slot it predicts the slot's harvest from history and
// commits the highest-performance OPP whose full-load power fits the
// predicted budget (derated by Margin). It ignores the supply voltage
// entirely — exactly the property the paper criticises.
type Governor struct {
	// SlotSeconds is the prediction/commitment interval.
	SlotSeconds float64
	// Margin derates the predicted budget (0.9 = commit 90% of the
	// prediction).
	Margin float64
	// Predictor supplies the per-slot forecast.
	Predictor *EWMA
	// Power and Perf select the OPP for a budget.
	Power *soc.PowerModel
	Perf  *soc.PerfModel
	// Sense, when non-nil, is the harvest sensor (watts at time t) that
	// SolarTune-class schemes rely on (photodiode + calibration). When
	// nil the governor falls back to its own consumption as the harvest
	// proxy — the only observable in a sensor-less deployment.
	Sense func(t float64) float64

	slot int
}

// NewGovernor builds a prediction-driven governor with the given slot
// length and derating margin.
func NewGovernor(slotSeconds, margin float64, pred *EWMA, pm *soc.PowerModel, pf *soc.PerfModel) (*Governor, error) {
	if slotSeconds <= 0 {
		return nil, fmt.Errorf("predict: slot length must be positive, got %g", slotSeconds)
	}
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("predict: margin %g outside (0,1]", margin)
	}
	if pred == nil || pm == nil || pf == nil {
		return nil, fmt.Errorf("predict: predictor and models are required")
	}
	return &Governor{SlotSeconds: slotSeconds, Margin: margin,
		Predictor: pred, Power: pm, Perf: pf}, nil
}

// Name implements governor.Governor.
func (g *Governor) Name() string { return "predictive" }

// SamplingPeriod implements governor.Governor: one decision per slot.
func (g *Governor) SamplingPeriod() float64 { return g.SlotSeconds }

// Reset implements governor.Governor.
func (g *Governor) Reset() { g.slot = 0 }

// Decide implements governor.Governor: it treats each sampling tick as a
// slot boundary, feeds the predictor the power the board actually
// sustained through the elapsed slot (the only harvest proxy available in
// the paper's storage-less topology — there is no harvest current
// sensor), and commits the largest OPP under the predicted budget for the
// next slot. The supply voltage is deliberately ignored: that is the
// defining weakness of prediction-driven schemes the paper criticises.
func (g *Governor) Decide(now float64, st governor.State) soc.OPP {
	observed := g.Power.Power(st.OPP, st.Load)
	if g.Sense != nil {
		observed = g.Sense(now)
	}
	return g.NextOPP(observed)
}

// NextOPP advances one slot: records the previous slot's observation and
// returns the OPP to commit for the next slot.
func (g *Governor) NextOPP(observedWatts float64) soc.OPP {
	g.Predictor.Observe(g.slot, observedWatts)
	g.slot++
	budget := g.Predictor.Predict(g.slot) * g.Margin
	if budget <= 0 {
		return soc.MinOPP()
	}
	opp, ok := g.Power.HighestOPPWithin(budget, g.Perf)
	if !ok {
		return soc.MinOPP()
	}
	return opp
}

// Slot returns the current slot index.
func (g *Governor) Slot() int { return g.slot }

// PredictionError summarises a predictor against a reference signal:
// mean absolute error relative to the signal mean.
func PredictionError(pred *EWMA, actual []float64) (float64, error) {
	if len(actual) == 0 {
		return 0, fmt.Errorf("predict: empty reference")
	}
	var absErr, mean float64
	for i, a := range actual {
		p := pred.Predict(i)
		absErr += math.Abs(p - a)
		mean += a
		pred.Observe(i, a)
	}
	mean /= float64(len(actual))
	if mean == 0 {
		return 0, fmt.Errorf("predict: zero-mean reference")
	}
	return absErr / float64(len(actual)) / mean, nil
}
