// Command pnbench runs the repository's key performance benchmarks
// reproducibly and emits a machine-readable JSON report, so perf
// trajectories can be tracked commit over commit without ad-hoc
// harnesses:
//
//	pnbench [-out BENCH_campaign.json] [-bench regex] [-benchtime 5x] [-count 1] [-pkg ./...]
//	pnbench -engine batched ...
//	pnbench -compare old.json ...
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` and
// parses the standard benchmark output into one record per benchmark:
// iterations, ns/op, B/op, allocs/op and any custom metrics
// (e.g. meanPct5 for campaign stability). Engine-mode sub-benchmarks
// ("…/engine=batched-w8") additionally record the execution engine and
// its lockstep batch width. The default benchmark set is the
// perf-critical path: the storage-dispatch alloc guard, the end-to-end
// controller minute, the trace-free campaign in both engine modes and
// the integrator segment.
//
// -compare gates the fresh run against a previous report: any
// allocs/op increase, or an ns/op slowdown beyond 15%, on a benchmark
// present in both reports prints a diagnostic and exits non-zero — the
// CI perf gate, replacing ad-hoc output greps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the benchmarks whose numbers the README quotes.
const defaultBench = "BenchmarkStorageDispatch|BenchmarkSimControllerMinute|BenchmarkCampaignTraceFree|BenchmarkIntegratorSegment|BenchmarkBatchRound|BenchmarkSolveLanes|BenchmarkServeCache"

// defaultBenchtime is the default -benchtime. A fixed iteration count
// (-Nx) keeps runs reproducible; 50 iterations keeps the short
// benchmarks (a lockstep round, a segment) far enough above timer and
// re-arm jitter that the -compare tolerance is meaningful.
const defaultBenchtime = "50x"

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark and the
	// -cpu suffix (e.g. "BenchmarkStorageDispatch/ideal-8").
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in.
	Package string `json:"package"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Engine and BatchWidth identify the execution engine of engine-mode
	// sub-benchmarks, parsed from an "engine=<name>[-wN]" path element
	// ("scalar"; "batched" with its lockstep lane count). Empty and zero
	// for engine-agnostic benchmarks.
	Engine     string `json:"engine,omitempty"`
	BatchWidth int    `json:"batch_width,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document. Go version, GOMAXPROCS and the
// CPU count pin the execution environment, so perf-trajectory entries
// from different machines (or container CPU quotas) are comparable —
// an ns/op regression on 4 CPUs is not a regression against a 32-CPU
// baseline.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Timestamp  string   `json:"timestamp"`
	Bench      string   `json:"bench_regex"`
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_campaign.json", "output JSON path (- for stdout)")
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", defaultBenchtime, "go test -benchtime value (fixed -Nx iteration counts keep runs reproducible)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", "./...", "package pattern to benchmark")
		engineSel = flag.String("engine", "", "run engine-mode sub-benchmarks for this engine only: scalar or batched (default both; engine-agnostic benchmarks always run)")
		compare   = flag.String("compare", "", "previous report JSON to gate against (>15% ns/op or any allocs/op regression exits non-zero)")
		verbose   = flag.Bool("v", false, "echo the raw go test output to stderr")
	)
	flag.Parse()

	// Load the -compare baseline up front: it may be the same path as
	// -out, and the gate must judge against the previous record, not
	// the one this invocation is about to write.
	var baseline Report
	if *compare != "" {
		var err error
		if baseline, err = readReport(*compare); err != nil {
			fmt.Fprintf(os.Stderr, "pnbench: -compare %s: %v\n", *compare, err)
			os.Exit(1)
		}
		// Refuse cross-benchtime comparisons before spending time on the
		// run: an ns/op measured over 5 iterations and one measured over
		// 50 are different experiments, and gating one against the other
		// produces exactly the warmup/jitter false positives the fixed
		// iteration counts exist to prevent.
		if msg, ok := benchtimeMismatch(baseline.Benchtime, *benchtime); !ok {
			fmt.Fprintf(os.Stderr, "pnbench: -compare %s: %s\n", *compare, msg)
			os.Exit(1)
		}
	}

	// -engine narrows the third sub-benchmark level to one engine mode;
	// go test matches slash-separated patterns level by level and
	// ignores pattern levels deeper than a benchmark's name, so
	// benchmarks without an engine level are unaffected.
	benchArg := *bench
	if *engineSel != "" {
		benchArg = fmt.Sprintf("(%s)/.*/engine=%s", *bench, *engineSel)
	}

	args := []string{"test", "-run", "^$", "-bench", benchArg, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if *verbose {
		fmt.Fprint(os.Stderr, string(raw))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Bench:      benchArg,
		Benchtime:  *benchtime,
		Results:    parseBenchOutput(string(raw)),
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "pnbench: no benchmark results parsed — check the -bench regex")
		os.Exit(1)
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnbench: %v\n", err)
			os.Exit(1)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "pnbench: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Printf("pnbench: wrote %d results to %s\n", len(rep.Results), *out)
	}

	if *compare != "" {
		regressions := compareReports(baseline, rep)
		for _, msg := range regressions {
			fmt.Fprintln(os.Stderr, "pnbench: regression:", msg)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Printf("pnbench: no regressions against %s\n", *compare)
	}
}

// nsTolerance is the fractional ns/op slowdown -compare tolerates:
// shared runners jitter, so only slowdowns beyond 15% fail the gate.
// Alloc counts are deterministic and tolerate no increase at all.
const nsTolerance = 0.15

// benchtimeMismatch decides whether a baseline recorded at benchtime
// prev is comparable to a run at benchtime cur. ok is false — with a
// diagnostic — when they differ or when the baseline predates benchtime
// recording; per-iteration numbers from different iteration budgets are
// different experiments and must not be gated against each other.
func benchtimeMismatch(prev, cur string) (msg string, ok bool) {
	switch {
	case prev == "":
		return fmt.Sprintf("baseline records no benchtime; regenerate it at -benchtime %s before comparing", cur), false
	case prev != cur:
		return fmt.Sprintf("baseline benchtime %s != run benchtime %s; rerun with -benchtime %s or regenerate the baseline", prev, cur, prev), false
	}
	return "", true
}

// readReport loads a previously written pnbench report.
func readReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// compareReports returns one diagnostic per regression of cur against
// prev: any allocs/op increase, or an ns/op slowdown beyond nsTolerance.
// Results are matched by package and full benchmark name; benchmarks
// absent from the baseline are new, not regressions, and are skipped.
func compareReports(prev, cur Report) []string {
	base := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		base[r.Package+" "+r.Name] = r
	}
	var regs []string
	for _, r := range cur.Results {
		b, ok := base[r.Package+" "+r.Name]
		if !ok {
			continue
		}
		if r.AllocsPerOp != nil && b.AllocsPerOp != nil && *r.AllocsPerOp > *b.AllocsPerOp {
			regs = append(regs, fmt.Sprintf("%s: allocs/op %g -> %g (any increase fails)",
				r.Name, *b.AllocsPerOp, *r.AllocsPerOp))
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+nsTolerance) {
			regs = append(regs, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, nsTolerance*100))
		}
	}
	return regs
}

// parseEngine extracts the execution engine and lockstep batch width
// from an "engine=<name>[-wN]" path element of a benchmark name, e.g.
// "BenchmarkCampaignTraceFree/workers=1/engine=batched-w8-4" (the
// trailing "-4" being go test's GOMAXPROCS suffix) yields ("batched",
// 8). Names without an engine element yield ("", 0).
func parseEngine(name string) (engine string, width int) {
	for _, el := range strings.Split(name, "/") {
		if !strings.HasPrefix(el, "engine=") {
			continue
		}
		parts := strings.Split(strings.TrimPrefix(el, "engine="), "-")
		engine = parts[0]
		for _, p := range parts[1:] {
			if len(p) > 1 && p[0] == 'w' {
				if n, err := strconv.Atoi(p[1:]); err == nil {
					width = n
				}
			}
		}
		return engine, width
	}
	return "", 0
}

// parseBenchOutput extracts benchmark result lines from go test output.
// Package context comes from the interleaved "pkg:" lines.
func parseBenchOutput(out string) []Result {
	var results []Result
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	return results
}

// parseBenchLine parses one standard benchmark output line:
//
//	BenchmarkName/sub-8  	 100	 123456 ns/op	 42 B/op	 7 allocs/op	 93.3 pct5
//
// ok is false for non-benchmark lines.
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	r.Engine, r.BatchWidth = parseEngine(fields[0])
	seen := false
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}
