package experiments

import (
	"testing"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/testutil"
)

// TestFig6GoldenThroughScenarioLayer pins the refactor invariant at the
// experiments level: the Fig. 6 runs assembled through the scenario
// layer are bit-identical to the pre-refactor hand-wired sim.Config
// assembly.
func TestFig6GoldenThroughScenarioLayer(t *testing.T) {
	t.Parallel()
	const (
		duration    = 10.0
		capacitance = 47e-3
	)
	shadow := pv.Shadow{Base: 1000, Depth: 0.60, Start: 4, Duration: 3, Edge: 0.4}
	mpp, err := fullSunMPP()
	if err != nil {
		t.Fatal(err)
	}

	// Pre-refactor assembly, verbatim.
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.Fig6Params(), mpp.V, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := sim.Run(sim.Config{
		Array:       pv.SouthamptonArray(),
		Profile:     shadow,
		Capacitance: capacitance,
		InitialVC:   mpp.V,
		Platform:    plat,
		Controller:  ctrl,
		Duration:    duration,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The experiment helper, now routed through scenario.Spec.
	got, err := controllerRun(core.Fig6Params(), pv.DeepShadow(4), duration, capacitance, mpp.V, soc.MinOPP())
	if err != nil {
		t.Fatal(err)
	}

	testutil.RequireEqualResults(t, "fig6 controller run", got, golden)

	// The static baseline too.
	staticOPP := soc.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}}
	splat := soc.NewDefaultPlatform()
	splat.Reset(0, staticOPP)
	goldenStatic, err := sim.Run(sim.Config{
		Array:       pv.SouthamptonArray(),
		Profile:     shadow,
		Capacitance: capacitance,
		InitialVC:   mpp.V,
		Platform:    splat,
		Duration:    duration,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotStatic, err := staticRun(staticOPP, pv.DeepShadow(4), duration, capacitance, mpp.V)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireEqualResults(t, "fig6 static run", gotStatic, goldenStatic)
}
