package main

import "testing"

func TestParseShard(t *testing.T) {
	i, n, err := parseShard("2/5")
	if err != nil || i != 2 || n != 5 {
		t.Fatalf("parseShard(2/5) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "5/2", "2/2", "-1/2", "a/b", "1/2/3"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}
