package ode

import (
	"fmt"
	"math"
)

// Integrator is a reusable adaptive RK23 (Bogacki–Shampine 3(2)) stepper.
// It owns every stage, error and event-localisation buffer the method
// needs, so repeated Integrate calls — the simulation engine performs tens
// of thousands of short per-segment integrations per run — do not allocate.
//
// The zero value is ready to use; buffers are sized lazily to the state
// dimension and event count of the first call and grown on demand. An
// Integrator is not safe for concurrent use; give each goroutine its own.
type Integrator struct {
	k1, k2, k3, k4     []float64
	y1, y2, ytmp, errv []float64
	yPrev              []float64
	gPrev              []float64
	yc, ybis           []float64

	// Event-localisation scratch, reused across calls: candidate hits for
	// one step, the returned Hits slice, and a flat backing store for the
	// hits' Y snapshots.
	cand []candHit
	hits []EventHit
	hitY []float64
}

type candHit struct {
	idx int
	t   float64
}

// NewIntegrator returns an empty reusable stepper.
func NewIntegrator() *Integrator { return &Integrator{} }

// Reset drops the retained buffers, returning the integrator to its zero
// state. Calling it between runs is never required — Integrate re-sizes
// buffers automatically — but it releases memory after integrating a
// large system.
func (in *Integrator) Reset() { *in = Integrator{} }

// ensure sizes the stage buffers for an n-dimensional state with nev
// events, reusing existing capacity.
func (in *Integrator) ensure(n, nev int) {
	if cap(in.k1) < n {
		// Full slice expressions cap every view at its own n floats, so a
		// later larger-dimension call cannot reslice one view into its
		// neighbour's storage — growth is detected here and reallocates.
		buf := make([]float64, 11*n)
		in.k1, in.k2, in.k3, in.k4 = buf[0:n:n], buf[n:2*n:2*n], buf[2*n:3*n:3*n], buf[3*n:4*n:4*n]
		in.y1, in.y2 = buf[4*n:5*n:5*n], buf[5*n:6*n:6*n]
		in.ytmp, in.errv = buf[6*n:7*n:7*n], buf[7*n:8*n:8*n]
		in.yPrev = buf[8*n : 9*n : 9*n]
		in.yc, in.ybis = buf[9*n:10*n:10*n], buf[10*n:11*n:11*n]
	} else {
		in.k1, in.k2, in.k3, in.k4 = in.k1[:n], in.k2[:n], in.k3[:n], in.k4[:n]
		in.y1, in.y2 = in.y1[:n], in.y2[:n]
		in.ytmp, in.errv = in.ytmp[:n], in.errv[:n]
		in.yPrev = in.yPrev[:n]
		in.yc, in.ybis = in.yc[:n], in.ybis[:n]
	}
	if cap(in.gPrev) < nev {
		in.gPrev = make([]float64, nev)
	} else {
		in.gPrev = in.gPrev[:nev]
	}
}

// Integrate advances dy/dt = f(t,y) from t0 to t1 with the Bogacki–
// Shampine 3(2) embedded pair, adapting the step to the configured
// tolerances and localising any events in opts. y is updated in place and
// aliased by the returned Result. Semantics are identical to the RK23
// function (which delegates here); the integrator's buffers are reused
// across calls. Result.Hits — including each hit's Y snapshot — aliases
// reused storage and is only valid until the next Integrate or Reset on
// this Integrator; copy it to retain it.
func (in *Integrator) Integrate(f RHS, t0, t1 float64, y []float64, opts Options) (Result, error) {
	if err := validateSpan(t0, t1, y); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults(t1 - t0)
	n := len(y)
	in.ensure(n, len(o.Events))
	in.hits, in.hitY = in.hits[:0], in.hitY[:0]

	k1, k2, k3, k4 := in.k1, in.k2, in.k3, in.k4
	y1, y2, ytmp, errv := in.y1, in.y2, in.ytmp, in.errv
	yPrev := in.yPrev

	res := Result{T: t0, Y: y}

	// Event bookkeeping: previous g values.
	gPrev := in.gPrev
	for i, ev := range o.Events {
		gPrev[i] = ev.G(t0, y)
	}
	if o.OnStep != nil {
		o.OnStep(t0, y)
	}

	t := t0
	h := clamp(o.InitialStep, o.MinStep, o.MaxStep)
	f(t, y, k1) // FSAL seed

	for t < t1 {
		if res.Steps >= o.MaxSteps {
			res.LastStep = h
			return res, fmt.Errorf("ode: RK23 exceeded MaxSteps=%d at t=%g", o.MaxSteps, t)
		}
		// hs is this attempt's step; truncation to the span end does not
		// feed back into h, so the established step size survives across
		// segmented integrations via Result.LastStep.
		hs := h
		truncated := false
		if t+hs > t1 {
			hs = t1 - t
			truncated = true
		}
		// Stage 2: k2 = f(t + hs/2, y + hs/2 k1)
		axpy(ytmp, y, hs/2, k1)
		f(t+hs/2, ytmp, k2)
		// Stage 3: k3 = f(t + 3hs/4, y + 3hs/4 k2)
		axpy(ytmp, y, 3*hs/4, k2)
		f(t+3*hs/4, ytmp, k3)
		// 3rd-order solution: y1 = y + hs(2/9 k1 + 1/3 k2 + 4/9 k3)
		for i := 0; i < n; i++ {
			y1[i] = y[i] + hs*(2.0/9.0*k1[i]+1.0/3.0*k2[i]+4.0/9.0*k3[i])
		}
		// Stage 4 (FSAL): k4 = f(t+hs, y1)
		f(t+hs, y1, k4)
		// 2nd-order solution: y2 = y + hs(7/24 k1 + 1/4 k2 + 1/3 k3 + 1/8 k4)
		for i := 0; i < n; i++ {
			y2[i] = y[i] + hs*(7.0/24.0*k1[i]+1.0/4.0*k2[i]+1.0/3.0*k3[i]+1.0/8.0*k4[i])
			errv[i] = y1[i] - y2[i]
		}
		en := errNorm(errv, y, y1, o.ATol, o.RTol)

		if en > 1 {
			// Reject: shrink and retry, unless this attempt already ran at
			// the smallest permitted step. Only a step actually computed
			// with hs <= MinStep may be accepted here — committing y1 from
			// a larger trial step while advancing t by the shrunk step
			// would desynchronise state and time.
			res.Rejected++
			if hs > o.MinStep {
				h = math.Max(o.MinStep, hs*math.Max(0.1, 0.9*math.Pow(en, -1.0/3.0)))
				continue
			}
			if en > 10 {
				res.LastStep = h
				return res, fmt.Errorf("%w: t=%g h=%g en=%g y=%v k1=%v",
					ErrStepUnderflow, t, hs, en, y, k1)
			}
			// Marginal error at MinStep: accept rather than loop forever.
		}

		// Accept the step.
		copy(yPrev, y)
		tPrev := t
		copy(y, y1)
		t += hs
		res.Steps++
		res.T = t

		// Event localisation over [tPrev, t] using cubic Hermite dense
		// output built from (yPrev, k1) and (y, k4).
		stopped, err := in.handleEvents(&res, o.Events, gPrev, tPrev, t, yPrev, y, k1, k4)
		if err != nil {
			res.LastStep = h
			return res, err
		}
		if stopped {
			res.Stopped = true
			res.LastStep = h
			if o.OnStep != nil {
				o.OnStep(res.T, y)
			}
			return res, nil
		}

		if o.OnStep != nil {
			o.OnStep(t, y)
		}

		// FSAL: k4 becomes next step's k1.
		copy(k1, k4)
		// Grow step from the attempted size; a span-truncated final step
		// may only raise the suggestion, never shrink it.
		hGrown := o.MaxStep
		if en != 0 {
			hGrown = hs * math.Min(5, 0.9*math.Pow(en, -1.0/3.0))
		}
		if !truncated || hGrown > h {
			h = hGrown
		}
		h = clamp(h, o.MinStep, o.MaxStep)
	}
	res.LastStep = h
	return res, nil
}

// handleEvents scans for sign changes of each event function across the
// accepted step and bisects the dense-output interpolant to localise them.
// If a terminal event fires, the state y is rewound to the event point.
func (in *Integrator) handleEvents(res *Result, events []Event, gPrev []float64, t0, t1 float64, y0, y1, f0, f1 []float64) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	hits := in.cand[:0]
	for i := range events {
		g1 := events[i].G(t1, y1)
		g0 := gPrev[i]
		crossed := false
		switch {
		case g0 == 0 && g1 == 0:
			// Sitting on the surface; no new crossing.
		case g0 <= 0 && g1 > 0 && events[i].Direction >= 0:
			crossed = true
		case g0 >= 0 && g1 < 0 && events[i].Direction <= 0:
			crossed = true
		}
		if crossed {
			tc := in.bisectEvent(events[i], t0, t1, y0, y1, f0, f1)
			hits = append(hits, candHit{i, tc})
		}
		gPrev[i] = g1
	}
	in.cand = hits
	if len(hits) == 0 {
		return false, nil
	}
	// Process hits in time order.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].t < hits[j-1].t; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	yc := in.yc
	for _, h := range hits {
		hermite(yc, t0, t1, h.t, y0, y1, f0, f1)
		// Snapshot the event state into the flat reused store; the Y
		// sub-slice stays valid until the next Integrate call.
		in.hitY = append(in.hitY, yc...)
		in.hits = append(in.hits, EventHit{
			Index: h.idx,
			Name:  events[h.idx].Name,
			T:     h.t,
			Y:     in.hitY[len(in.hitY)-len(yc):],
		})
		res.Hits = in.hits
		if events[h.idx].Terminal {
			// Rewind state to the event point.
			copy(y1, yc)
			res.T = h.t
			// Refresh gPrev for all events at the rewound state so a
			// subsequent integration restart is consistent.
			for i := range events {
				gPrev[i] = events[i].G(h.t, y1)
			}
			return true, nil
		}
	}
	return false, nil
}

// bisectEvent localises g=0 within [t0,t1] on the Hermite interpolant to
// ~1e-12 relative precision.
func (in *Integrator) bisectEvent(ev Event, t0, t1 float64, y0, y1, f0, f1 []float64) float64 {
	yc := in.ybis
	ga := ev.G(t0, y0)
	a, b := t0, t1
	for iter := 0; iter < 100 && (b-a) > 1e-12*math.Max(1, math.Abs(b)); iter++ {
		m := 0.5 * (a + b)
		hermite(yc, t0, t1, m, y0, y1, f0, f1)
		gm := ev.G(m, yc)
		if gm == 0 {
			return m
		}
		if (ga < 0) == (gm < 0) {
			a, ga = m, gm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b)
}
