// Package ode implements the numerical integrators used by the circuit
// simulation: fixed-step explicit Euler and classic RK4, plus an adaptive
// Bogacki–Shampine 3(2) pair — the same solver family as MATLAB's ode23,
// which the paper used for its Simulink model (Section III).
//
// The integrators are vector-valued and allocation-conscious: all stage
// buffers are reused across steps. Event functions allow the caller to stop
// integration precisely at state-dependent conditions (e.g. the capacitor
// voltage crossing a control threshold), localised by bisection on a cubic
// Hermite dense-output interpolant.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// RHS is the right-hand side of the ODE system dy/dt = f(t, y). The
// function must fill dydt and must not retain y or dydt.
type RHS func(t float64, y, dydt []float64)

// Event is a scalar function g(t, y) whose zero crossings the integrator
// localises. Crossing direction is filtered by Direction.
type Event struct {
	// Name identifies the event in results (e.g. "Vlow-crossing").
	Name string
	// G returns the event function value; a root g=0 triggers the event.
	G func(t float64, y []float64) float64
	// Direction filters crossings: +1 only rising (g goes -→+), -1 only
	// falling, 0 both.
	Direction int
	// Terminal, when true, stops the integration at the event time.
	Terminal bool
}

// EventHit records a localised event occurrence.
type EventHit struct {
	Index int // index into the Events slice passed to the integrator
	Name  string
	T     float64
	Y     []float64
}

// Options configures an integration run.
type Options struct {
	// InitialStep is the first step size attempt. If 0 a heuristic based
	// on the span is used.
	InitialStep float64
	// MinStep bounds adaptive step shrinking; reaching it without meeting
	// tolerances is an error. If 0, span*1e-14 is used.
	MinStep float64
	// MaxStep bounds the step size. If 0, the full span is allowed.
	MaxStep float64
	// RTol and ATol are the relative/absolute local error tolerances for
	// adaptive methods. Zero values default to 1e-6 and 1e-9.
	RTol, ATol float64
	// Events to localise during integration.
	Events []Event
	// OnStep, when non-nil, is invoked after every accepted step with the
	// current time and state. The callback must not retain y.
	OnStep func(t float64, y []float64)
	// MaxSteps bounds the number of accepted steps (default 50 million)
	// to guard against runaway integrations.
	MaxSteps int
}

func (o *Options) withDefaults(span float64) Options {
	out := *o
	if out.RTol == 0 {
		out.RTol = 1e-6
	}
	if out.ATol == 0 {
		out.ATol = 1e-9
	}
	if out.InitialStep == 0 {
		out.InitialStep = span / 100
	}
	if out.MinStep == 0 {
		out.MinStep = math.Max(span*1e-14, 1e-18)
	}
	if out.MaxStep == 0 {
		out.MaxStep = span
	}
	if out.MaxSteps == 0 {
		out.MaxSteps = 50_000_000
	}
	return out
}

// Result reports the outcome of an integration run.
type Result struct {
	// T and Y are the final time and state (Y aliases the caller's y
	// slice, which is updated in place).
	T float64
	Y []float64
	// Steps is the number of accepted steps.
	Steps int
	// Rejected is the number of rejected (error-controlled) steps.
	Rejected int
	// Hits lists every localised event in time order.
	Hits []EventHit
	// Stopped is true if a terminal event ended the run before t1.
	Stopped bool
	// LastStep is the adaptive controller's step-size suggestion at the
	// end of the run (excluding the truncation of the final step to the
	// span end). Callers integrating many consecutive segments should
	// feed it back as the next segment's InitialStep so each restart
	// resumes at the established step instead of the span/100 heuristic.
	LastStep float64
}

// ErrStepUnderflow is returned when the adaptive controller cannot meet the
// tolerance without shrinking the step below MinStep.
var ErrStepUnderflow = errors.New("ode: step size underflow")

func validateSpan(t0, t1 float64, y []float64) error {
	if len(y) == 0 {
		return errors.New("ode: empty state vector")
	}
	if !(t1 > t0) {
		return fmt.Errorf("ode: integration span [%g,%g] must be forward", t0, t1)
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ode: initial state y[%d]=%g not finite", i, v)
		}
	}
	return nil
}

// errNorm computes the scaled RMS norm of the error estimate used by the
// adaptive controller: sqrt(mean((err_i / (atol + rtol*max(|y0|,|y1|)))^2)).
func errNorm(err, y0, y1 []float64, atol, rtol float64) float64 {
	var sum float64
	for i := range err {
		sc := atol + rtol*math.Max(math.Abs(y0[i]), math.Abs(y1[i]))
		e := err[i] / sc
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(err)))
}
