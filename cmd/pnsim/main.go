// Command pnsim regenerates the paper's evaluation artefacts. Each
// experiment id corresponds to a table or figure of "Power Neutral
// Performance Scaling for Energy Harvesting MP-SoCs" (DATE 2017); see
// DESIGN.md for the index.
//
// Usage:
//
//	pnsim [-seed N] [-csv dir] [-workers N] <experiment>...
//	pnsim -all
//	pnsim -list
//
// With -csv, every series the experiment records is written as
// <dir>/<experiment>.csv for external plotting. Experiments are
// independent and execute concurrently on -workers goroutines (default
// GOMAXPROCS); reports are printed in the order the ids were given.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"pnps/internal/experiments"
	"pnps/internal/trace"
)

func main() {
	var (
		seed    = flag.Int64("seed", experiments.DefaultSeed, "random seed for stochastic scenarios")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV series into")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment executions")
		all     = flag.Bool("all", false, "run every registered experiment")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "pnsim: no experiments given; try -list or -all")
		os.Exit(2)
	}
	reps, runErr := experiments.RunAll(context.Background(), experiments.RunAllOptions{
		IDs: ids, Seed: *seed, Workers: *workers,
	})
	failed := runErr != nil
	for i, rep := range reps {
		if rep == nil {
			continue // failure; reported via runErr below
		}
		fmt.Println(rep.String())
		if *csvDir != "" && len(rep.Series) > 0 {
			if err := writeCSV(*csvDir, ids[i], rep); err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: csv %s: %v\n", ids[i], err)
				failed = true
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "pnsim: %v\n", runErr)
	}
	if failed {
		os.Exit(1)
	}
}

func writeCSV(dir, id string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, rep.Series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
