package coord

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"strings"
)

// Bearer-token authentication shared by the coordinator (pncoord) and
// the simulation service (pnserve). The scheme is deliberately minimal:
// a static token set, presented as "Authorization: Bearer <token>" on
// every request — enough to keep an exposed coordinator or serve
// endpoint from accepting work (or leaking results) to strangers on an
// untrusted network. Transport privacy is the deployment's problem
// (terminate TLS in front); this layer only answers "is this caller one
// of ours, and which one".
//
// Comparison is constant-time over SHA-256 digests of the tokens:
// hashing first makes the comparison length-independent (ConstantTime-
// Compare short-circuits on unequal lengths, which would leak the token
// length), and every configured token is checked on every request so
// the match position does not modulate timing either.

type bearerKey struct{}

// RequireBearer wraps h with bearer-token authentication. An empty
// token set disables authentication (h is returned unchanged) — the
// trusted-network default, matching the pre-auth behaviour. With
// tokens configured, a request without a well-formed Authorization
// header is answered 401, and a well-formed header carrying an unknown
// token 403; the matched token travels in the request context (see
// BearerToken) so multi-tenant handlers can namespace per caller.
func RequireBearer(tokens []string, h http.Handler) http.Handler {
	if len(tokens) == 0 {
		return h
	}
	sums := make([][32]byte, len(tokens))
	for i, tok := range tokens {
		sums[i] = sha256.Sum256([]byte(tok))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		presented, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || presented == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="pnps"`)
			http.Error(w, "missing bearer token", http.StatusUnauthorized)
			return
		}
		sum := sha256.Sum256([]byte(presented))
		match := -1
		for i := range sums {
			// Scan the whole set unconditionally: the first-match index
			// must not be observable through timing.
			if subtle.ConstantTimeCompare(sum[:], sums[i][:]) == 1 && match < 0 {
				match = i
			}
		}
		if match < 0 {
			http.Error(w, "unknown bearer token", http.StatusForbidden)
			return
		}
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), bearerKey{}, tokens[match])))
	})
}

// BearerToken returns the authenticated bearer token of a request that
// passed RequireBearer, or "" when authentication is disabled — the
// tenant identity multi-tenant handlers namespace by.
func BearerToken(r *http.Request) string {
	tok, _ := r.Context().Value(bearerKey{}).(string)
	return tok
}

// SplitTokens parses a comma-separated -token flag value into the token
// set, dropping empty elements ("" disables auth; "a,,b" is two tokens).
func SplitTokens(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
