package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	if Constant(500).Irradiance(123) != 500 {
		t.Error("constant profile not constant")
	}
}

func TestSinusoidClampsAtZero(t *testing.T) {
	s := Sinusoid{Mean: 100, Amplitude: 500, Period: 10}
	for tt := 0.0; tt < 20; tt += 0.1 {
		if g := s.Irradiance(tt); g < 0 {
			t.Fatalf("negative irradiance %g at t=%g", g, tt)
		}
	}
	// Mean+amplitude reached at quarter period.
	if g := s.Irradiance(2.5); math.Abs(g-600) > 1e-9 {
		t.Errorf("peak %g, want 600", g)
	}
}

func TestSinusoidDegenerate(t *testing.T) {
	s := Sinusoid{Mean: 300, Amplitude: 100, Period: 0}
	if g := s.Irradiance(5); g != 300 {
		t.Errorf("zero-period sinusoid = %g, want mean", g)
	}
}

func TestStepsProfile(t *testing.T) {
	p, err := NewSteps(
		Step{From: 10, G: 500},
		Step{From: 0, G: 100}, // out of order on purpose
		Step{From: 20, G: 900},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{-1: 100, 0: 100, 5: 100, 10: 500, 15: 500, 20: 900, 99: 900}
	for tt, want := range cases {
		if got := p.Irradiance(tt); got != want {
			t.Errorf("Irradiance(%g) = %g, want %g", tt, got, want)
		}
	}
	if _, err := NewSteps(); err == nil {
		t.Error("empty Steps should error")
	}
}

func TestShadowProfile(t *testing.T) {
	s := Shadow{Base: 1000, Depth: 0.6, Start: 10, Duration: 5, Edge: 1}
	if g := s.Irradiance(5); g != 1000 {
		t.Errorf("before shadow: %g", g)
	}
	if g := s.Irradiance(13); math.Abs(g-400) > 1e-9 {
		t.Errorf("full shadow: %g, want 400", g)
	}
	if g := s.Irradiance(30); g != 1000 {
		t.Errorf("after shadow: %g", g)
	}
	// Edges are monotone.
	prev := s.Irradiance(10.0)
	for tt := 10.0; tt <= 11.0; tt += 0.05 {
		g := s.Irradiance(tt)
		if g > prev+1e-9 {
			t.Errorf("leading edge not monotone at t=%g", tt)
		}
		prev = g
	}
}

func TestShadowDepthClamped(t *testing.T) {
	s := Shadow{Base: 1000, Depth: 1.7, Start: 0, Duration: 10, Edge: 0.1}
	if g := s.Irradiance(5); g < 0 {
		t.Errorf("over-deep shadow gives negative irradiance %g", g)
	}
}

func TestDayEnvelope(t *testing.T) {
	d := StandardDay()
	if g := d.Irradiance(0); g != 0 {
		t.Errorf("midnight irradiance %g", g)
	}
	if g := d.Irradiance(5 * 3600); g != 0 {
		t.Errorf("pre-sunrise irradiance %g", g)
	}
	noon := d.Irradiance(13 * 3600)
	if noon < 900 || noon > 1000 {
		t.Errorf("noon irradiance %g, want near peak", noon)
	}
	if g := d.Irradiance(21 * 3600); g != 0 {
		t.Errorf("post-sunset irradiance %g", g)
	}
	// Symmetric about solar noon.
	g1 := d.Irradiance(10 * 3600)
	g2 := d.Irradiance(16 * 3600)
	if math.Abs(g1-g2) > 1e-6 {
		t.Errorf("asymmetric envelope: %g vs %g", g1, g2)
	}
}

func TestCloudsDeterministic(t *testing.T) {
	span := 3600.0
	a := NewClouds(Constant(1000), PartialSun(span), 42)
	b := NewClouds(Constant(1000), PartialSun(span), 42)
	c := NewClouds(Constant(1000), PartialSun(span), 43)
	same, diff := true, false
	for tt := 0.0; tt < span; tt += 10 {
		if a.Irradiance(tt) != b.Irradiance(tt) {
			same = false
		}
		if a.Irradiance(tt) != c.Irradiance(tt) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different traces")
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestCloudsBounded(t *testing.T) {
	span := 3600.0
	cl := NewClouds(Constant(1000), Overcast(span), 7)
	if cl.NumEvents() == 0 {
		t.Fatal("overcast generated no clouds")
	}
	for tt := 0.0; tt < span; tt += 5 {
		g := cl.Irradiance(tt)
		if g < 0 || g > 1000 {
			t.Fatalf("irradiance %g out of [0, base] at t=%g", g, tt)
		}
	}
}

func TestFullSunHasNoClouds(t *testing.T) {
	cl := NewClouds(Constant(1000), FullSun(), 1)
	if cl.NumEvents() != 0 {
		t.Errorf("full sun generated %d clouds", cl.NumEvents())
	}
	if cl.Irradiance(100) != 1000 {
		t.Error("full sun attenuates")
	}
}

func TestOffsetProfile(t *testing.T) {
	d := StandardDay()
	o := Offset{Base: d, T0: 10.5 * 3600}
	if got, want := o.Irradiance(0), d.Irradiance(10.5*3600); got != want {
		t.Errorf("offset start %g, want %g", got, want)
	}
}

func TestScaledProfile(t *testing.T) {
	s := Scaled{Base: Constant(400), Factor: 0.5}
	if s.Irradiance(0) != 200 {
		t.Error("scaling wrong")
	}
	neg := Scaled{Base: Constant(400), Factor: -1}
	if neg.Irradiance(0) != 0 {
		t.Error("negative scaling should clamp to zero")
	}
}

// TestQuickProfilesNonNegative property-tests that every profile type
// yields non-negative irradiance at arbitrary times.
func TestQuickProfilesNonNegative(t *testing.T) {
	day := StandardDay()
	clouds := NewClouds(day, Hailstorm(24*3600), 99)
	shadow := Shadow{Base: 800, Depth: 0.9, Start: 100, Duration: 50, Edge: 5}
	sin := Sinusoid{Mean: 200, Amplitude: 900, Period: 30}
	profiles := []Profile{day, clouds, shadow, sin}
	f := func(tRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 24*3600)
		for _, p := range profiles {
			if p.Irradiance(tt) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
