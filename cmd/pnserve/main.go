// Command pnserve runs the simulation service: a long-lived HTTP/JSON
// API that accepts study recipes (the same studycli.Config wire format
// pncoord publishes to workers), executes them with bounded admission,
// and answers repeated or overlapping submissions from a content-
// addressed result cache — bit-identical bytes, zero simulation work.
//
// Usage:
//
//	pnserve -addr :8090 -token alice-key,bob-key -job-workers 2
//
//	curl -H 'Authorization: Bearer alice-key' -d '{"scenario":"stress-clouds","storage":"ideal:0.047,supercap:0.047","util":"1,0.6","reps":8,"seed":7,"bins":64,"hist_hi":10}' http://host:8090/v1/jobs
//	curl -H '...' http://host:8090/v1/jobs/job-1                    # status + live marginals
//	curl -H '...' http://host:8090/v1/jobs/job-1/events             # NDJSON progress stream
//	curl -H '...' http://host:8090/v1/jobs/job-1/outcome?format=csv # json | cells-csv | runs-csv
//
// When the job queue is full the service answers 429 with Retry-After
// instead of queueing without bound; on SIGINT/SIGTERM it drains like
// pncoord — new submissions get 503, accepted jobs finish and their
// results land in the cache before exit. With -token configured, each
// token is a tenant with an independent-but-reproducible seed
// namespace: two tenants submitting the same recipe get statistically
// independent studies, while each tenant's own resubmission is an
// exact cache hit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pnps/internal/coord"
	"pnps/internal/serve"
)

// options is the parsed CLI surface — separated from main so tests can
// drive flag parsing without spawning processes.
type options struct {
	addr string
	cfg  serve.Config
}

func parseOptions(args []string) (*options, error) {
	fs := flag.NewFlagSet("pnserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8090", "HTTP listen address")
		tokens     = fs.String("token", "", "comma-separated bearer tokens; empty disables authentication, each token is a tenant seed namespace")
		jobWorkers = fs.Int("job-workers", 2, "concurrently executing jobs")
		queue      = fs.Int("queue", 16, "admitted-but-not-running job bound; a full queue answers 429")
		simWorkers = fs.Int("sim-workers", 0, "per-job run concurrency (0 = GOMAXPROCS)")
		engine     = fs.String("engine", "", "execution engine: scalar or batched (cache keys are engine-independent)")
		batchWidth = fs.Int("batch-width", 0, "lockstep lane count for the batched engine (0 = default)")
		cacheMB    = fs.Int("cache-mb", 64, "content-addressed result cache budget, MiB")
		maxJobs    = fs.Int("max-jobs", 256, "retained job records (oldest finished pruned first)")
		retryAfter = fs.Duration("retry-after", time.Second, "backoff hint on 429 responses")
		verbose    = fs.Bool("v", false, "log job lifecycle events")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *cacheMB <= 0 {
		return nil, fmt.Errorf("-cache-mb %d: the result cache needs a positive budget", *cacheMB)
	}
	opt := &options{
		addr: *addr,
		cfg: serve.Config{
			Tokens:     coord.SplitTokens(*tokens),
			JobWorkers: *jobWorkers, QueueDepth: *queue, SimWorkers: *simWorkers,
			Engine: *engine, BatchWidth: *batchWidth,
			CacheBytes: int64(*cacheMB) << 20,
			MaxJobs:    *maxJobs, RetryAfter: *retryAfter,
		},
	}
	if *verbose {
		opt.cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return opt, nil
}

func main() {
	opt, err := parseOptions(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	s := serve.NewServer(opt.cfg)

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		fatal(err)
	}
	auth := "open (no -token)"
	if n := len(opt.cfg.Tokens); n > 0 {
		auth = fmt.Sprintf("%d bearer tokens", n)
	}
	fmt.Fprintf(os.Stderr, "pnserve: serving on %s — %s, %d job workers, queue %d, cache %d MiB\n",
		ln.Addr(), auth, opt.cfg.JobWorkers, opt.cfg.QueueDepth, opt.cfg.CacheBytes>>20)

	// Hardened against slow or hostile clients, like pncoord — with a
	// generous write timeout because /events streams until the job ends.
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// SIGINT/SIGTERM means drain, not die: refuse new submissions (503),
	// finish every accepted job so its results land in the cache, then
	// close the listener.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "pnserve: interrupt — draining (accepted jobs finish; new submissions get 503)")

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fatal(err)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutdownCtx)
	fmt.Fprintln(os.Stderr, "pnserve: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnserve:", err)
	os.Exit(1)
}
