module pnps

go 1.22
