package main

import (
	"context"
	"strings"
	"testing"

	"pnps/internal/study"
)

func TestParseShard(t *testing.T) {
	i, n, err := parseShard("2/5")
	if err != nil || i != 2 || n != 5 {
		t.Fatalf("parseShard(2/5) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "5/2", "2/2", "-1/2", "a/b", "1/2/3"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

func TestParseStorageAxis(t *testing.T) {
	ax, err := parseStorageAxis("ideal:0.047,supercap:0.1,hybrid:0.01:1")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "storage" || len(ax.Levels) != 3 {
		t.Fatalf("axis %q with %d levels", ax.Name, len(ax.Levels))
	}
	if ax.Levels[2].Label != "hybrid:0.01:1" {
		t.Errorf("level label %q", ax.Levels[2].Label)
	}
	for _, bad := range []string{"ideal", "ideal:zero", "ideal:-1", "flywheel:1", "hybrid:0.01"} {
		if _, err := parseStorageAxis(bad); err == nil {
			t.Errorf("parseStorageAxis(%q) accepted", bad)
		}
	}
}

func TestParseControlAxis(t *testing.T) {
	ax := parseControlAxis("pn,static,ondemand")
	if len(ax.Levels) != 3 {
		t.Fatalf("%d levels", len(ax.Levels))
	}
	want := []string{"power-neutral", "static", "ondemand"}
	for i, lv := range ax.Levels {
		if lv.Label != want[i] {
			t.Errorf("level %d label %q, want %q", i, lv.Label, want[i])
		}
	}
}

func TestParseUtilAxis(t *testing.T) {
	ax, err := parseUtilAxis("1, 0.5")
	if err != nil || len(ax.Levels) != 2 {
		t.Fatalf("parseUtilAxis = %+v, %v", ax, err)
	}
	for _, bad := range []string{"2", "-0.1", "x"} {
		if _, err := parseUtilAxis(bad); err == nil {
			t.Errorf("parseUtilAxis(%q) accepted", bad)
		}
	}
}

// TestBuildStudyFingerprintStable: the same identity flags build the
// same study twice — the property shard/resume/merge cooperation
// relies on.
func TestBuildStudyFingerprintStable(t *testing.T) {
	f := studyFlags{
		Scenario: "stress-clouds", Duration: 10,
		Storage: "ideal:0.047,hybrid:0.01:1", Control: "pn,ondemand",
		Reps: 2, Seed: 7, Paired: true, Bins: 32, HistLo: 4, HistHi: 6,
	}
	a, err := buildStudy(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildStudy(f)
	if err != nil {
		t.Fatal(err)
	}
	cpA, err := a.RunShard(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := b.RunShard(context.Background(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := study.MergeCheckpoints(cpA, cpB)
	if err != nil {
		t.Fatalf("checkpoints from identical flags refused to merge: %v", err)
	}
	if merged.Complete() {
		t.Fatal("two shards of four cannot be complete")
	}

	if _, err := buildStudy(studyFlags{Scenario: "no-such"}); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario error = %v", err)
	}
}
