package study

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Cell-level content addressing: the unit of cross-study result reuse.
//
// A study's outcome is a deterministic function of its fingerprint, but
// the fingerprint identifies the whole matrix — two studies that differ
// in one axis level share every other column of the matrix and none of
// the fingerprint. CellIdentity is the finer-grained identity: one
// matrix cell's repetitions are fully determined by the base-spec
// digest, the axis levels the cell selects, the per-repetition seeds,
// and the observer configuration (stability bands and dwell-histogram
// geometry). Two cells with equal identities — in the same study or in
// different studies submitted days apart — produce bit-identical task
// records, so a content-addressed store keyed by CellIdentity.Digest
// can answer them without simulating (see internal/serve).
//
// The identity deliberately excludes execution detail (Workers, Engine,
// BatchWidth — bit-identical by the engine contract) and KeepSeries:
// like checkpoints, cached cell records carry metrics and histograms
// only, which is everything aggregation consumes.

// CellLevel names one axis level a cell selects.
type CellLevel struct {
	Axis  string `json:"axis"`
	Level string `json:"level"`
}

// CellIdentity is the serialisable identity of one matrix cell's slice
// of the task ledger. Equal identities guarantee bit-identical task
// records (metrics and dwell histograms) whatever study the cell is
// embedded in.
type CellIdentity struct {
	// Base pins the scalar identity of the base scenario.
	Base BaseDigest `json:"base"`
	// Levels are the axis levels this cell selects, in axis order.
	Levels []CellLevel `json:"levels,omitempty"`
	// Seeds are the derived per-repetition seeds, in repetition order —
	// the explicit seed list, so cells match across studies even when
	// their ledger positions (and hence SeedPerTask derivations) differ.
	Seeds []int64 `json:"seeds"`
	// StabilityBands are the effective per-run stability bands.
	StabilityBands []float64 `json:"stability_bands"`
	// VCHistBins/Lo/Hi pin the dwell-histogram geometry.
	VCHistBins int     `json:"vc_hist_bins,omitempty"`
	VCHistLo   float64 `json:"vc_hist_lo,omitempty"`
	VCHistHi   float64 `json:"vc_hist_hi,omitempty"`
}

// Digest returns the canonical content address of the identity: the
// hex SHA-256 of its canonical JSON encoding (fixed field order, so the
// digest is stable across processes and versions of the same schema).
func (ci CellIdentity) Digest() (string, error) {
	raw, err := json.Marshal(ci)
	if err != nil {
		return "", fmt.Errorf("study: digesting cell identity: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Digest returns the canonical content address of the whole-study
// identity — the hex SHA-256 of the fingerprint's canonical JSON. Every
// input that can change the outcome is part of the fingerprint, and
// nothing that cannot (worker counts, engine, batch width), so equal
// digests guarantee bit-identical outcomes.
func (f Fingerprint) Digest() (string, error) {
	raw, err := json.Marshal(f)
	if err != nil {
		return "", fmt.Errorf("study: digesting fingerprint: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// cacheable rejects studies whose per-run behaviour is shaped by
// non-serialisable hooks: a Vary or Group func is code, not data, so
// cell identities cannot promise bit-identical records across
// processes that may run different code.
func (st Study) cacheable() error {
	if st.Vary != nil {
		return fmt.Errorf("study: cell identities need a hook-free study (Vary is set and cannot be serialised)")
	}
	if st.Group != nil {
		return fmt.Errorf("study: cell identities need a hook-free study (Group is set and cannot be serialised)")
	}
	return nil
}

// CellIdentities validates the study and returns one identity per
// matrix cell, in canonical cell order. It refuses studies with Vary or
// Group hooks — their effect on records is code, not serialisable data.
func (st Study) CellIdentities() ([]CellIdentity, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.cacheable(); err != nil {
		return nil, err
	}
	base := baseDigest(st.Base)
	bands := append([]float64(nil), st.stabilityBands()...)
	out := make([]CellIdentity, len(p.cells))
	for c := range p.cells {
		ci := CellIdentity{
			Base: base, StabilityBands: bands,
			VCHistBins: st.VCHistBins, VCHistLo: st.VCHistLo, VCHistHi: st.VCHistHi,
			Seeds: make([]int64, p.reps),
		}
		for i := range st.Axes {
			ci.Levels = append(ci.Levels, CellLevel{
				Axis: st.Axes[i].Name, Level: p.cells[c].Labels[i],
			})
		}
		for rep := 0; rep < p.reps; rep++ {
			ci.Seeds[rep] = st.taskSeed(c*p.reps+rep, rep)
		}
		out[c] = ci
	}
	return out, nil
}

// CellRange returns cell i's contiguous task range — the ledger slice
// its repetitions occupy (cells are rep-major: task = cell·reps + rep).
func (st Study) CellRange(i int) (TaskRange, error) {
	p, err := st.plan()
	if err != nil {
		return TaskRange{}, err
	}
	if i < 0 || i >= len(p.cells) {
		return TaskRange{}, fmt.Errorf("study: cell %d outside [0,%d)", i, len(p.cells))
	}
	return TaskRange{Lo: i * p.reps, Hi: (i + 1) * p.reps}, nil
}

// ExtractCellRecords cuts cell i's task records out of a checkpoint and
// re-bases their indices to repetition order (0..reps-1) — the storable
// form a content-addressed cache keys by CellIdentity.Digest. The
// checkpoint must cover the whole cell; records are deep-copied, so
// later mutation of the checkpoint cannot corrupt the cache entry.
func (st Study) ExtractCellRecords(cp *Checkpoint, i int) ([]TaskRecord, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.cacheable(); err != nil {
		return nil, err
	}
	if err := st.checkFingerprint(p, cp); err != nil {
		return nil, err
	}
	if i < 0 || i >= len(p.cells) {
		return nil, fmt.Errorf("study: cell %d outside [0,%d)", i, len(p.cells))
	}
	lo, hi := i*p.reps, (i+1)*p.reps
	out := make([]TaskRecord, 0, p.reps)
	for _, rec := range cp.Records {
		if rec.Index < lo || rec.Index >= hi {
			continue
		}
		rec.Index -= lo
		rec.HistBins = append([]float64(nil), rec.HistBins...)
		out = append(out, rec)
	}
	if len(out) != p.reps {
		return nil, fmt.Errorf("study: checkpoint covers %d of cell %d's %d repetitions", len(out), i, p.reps)
	}
	return out, nil
}

// CellCheckpoint rebuilds the chunk checkpoint of cell i of this study
// from repetition-relative records (the cache-restore path: records
// extracted from one study re-based into another that shares the cell).
// Seeds are verified against the study's own derivation — a record
// whose seed disagrees with the ledger is a mis-keyed cache entry and
// is refused, never folded — and the result passes full checkpoint
// validation, so it can go straight into a Folder.
func (st Study) CellCheckpoint(i int, recs []TaskRecord) (*Checkpoint, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.cacheable(); err != nil {
		return nil, err
	}
	if i < 0 || i >= len(p.cells) {
		return nil, fmt.Errorf("study: cell %d outside [0,%d)", i, len(p.cells))
	}
	if len(recs) != p.reps {
		return nil, fmt.Errorf("study: cell %d restore carries %d records, want %d", i, len(recs), p.reps)
	}
	cp := &Checkpoint{
		Fingerprint: st.fingerprint(p),
		Total:       p.total,
		Records:     make([]TaskRecord, len(recs)),
	}
	for rep, rec := range recs {
		if rec.Index != rep {
			return nil, fmt.Errorf("study: cell %d restore record %d carries repetition index %d", i, rep, rec.Index)
		}
		t := p.task(st, i*p.reps+rep)
		if rec.Seed != t.Seed {
			return nil, fmt.Errorf("study: cell %d repetition %d seed %d disagrees with ledger seed %d — mis-keyed cache entry",
				i, rep, rec.Seed, t.Seed)
		}
		rec.Index = t.Index
		rec.HistBins = append([]float64(nil), rec.HistBins...)
		cp.Records[rep] = rec
	}
	cp.rebuildRanges()
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}
