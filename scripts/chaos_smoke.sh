#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end crash-recovery smoke test on the real
# binaries. Runs a reference study unsharded, then the same study
# through pncoord with a write-ahead journal and three workers,
# SIGKILLs the coordinator mid-study, restarts it from the journal
# behind the same address, and requires the final JSON aggregate to be
# byte-identical to the unsharded run. This is the process-level twin
# of the in-process suite in internal/coord/faults — same contract, but
# with real SIGKILL, a real listener and real worker processes.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
port="${CHAOS_PORT:-18473}"
addr="127.0.0.1:${port}"
url="http://${addr}"

# The study: 2 storages × 2 utils × 24 reps = 96 ledger tasks, chunked
# singly — big enough that a kill at ≥3 folded chunks lands well before
# the end even on a fast machine, small enough for a CI smoke step.
matrix=(-scenario stress-clouds -duration 12
        -storage ideal:0.047,supercap:0.047 -util 1,0.6
        -reps 24 -seed 23 -bins 32 -histlo 4 -histhi 6)

pids=()
cleanup() {
    local p
    for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "chaos_smoke: building binaries"
go build -o "$work/pnstudy" ./cmd/pnstudy
go build -o "$work/pncoord" ./cmd/pncoord

echo "chaos_smoke: unsharded reference run"
"$work/pnstudy" "${matrix[@]}" -json "$work/ref.json" >/dev/null

start_coord() {
    "$work/pncoord" "${matrix[@]}" -addr "$addr" -chunk 1 \
        -journal "$work/study.journal" -json "$work/coord.json" \
        -lease-ttl 30s -backoff 100ms -v \
        >>"$work/coord.log" 2>&1 &
    coord_pid=$!
    pids+=("$coord_pid")
}

done_chunks() {
    curl -sf --max-time 2 "$url/v1/status" 2>/dev/null \
        | sed -n 's/.*"done_chunks":\([0-9]*\).*/\1/p'
}

wait_port() {
    for _ in $(seq 1 100); do
        curl -sf --max-time 2 "$url/v1/status" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "chaos_smoke: coordinator never answered on $url" >&2
    cat "$work/coord.log" >&2
    return 1
}

echo "chaos_smoke: starting coordinator (journal at $work/study.journal)"
start_coord
wait_port

echo "chaos_smoke: starting 3 workers"
for i in 1 2 3; do
    "$work/pnstudy" -worker "$url" -name "smoke-$i" \
        >"$work/worker-$i.log" 2>&1 &
    pids+=("$!")
    disown "$!"
done

echo "chaos_smoke: waiting for ≥3 folded chunks, then SIGKILL"
for _ in $(seq 1 600); do
    n="$(done_chunks || true)"
    [ -n "${n:-}" ] && [ "$n" -ge 3 ] && break
    sleep 0.05
done
n="$(done_chunks || true)"
if [ -z "${n:-}" ] || [ "$n" -lt 3 ]; then
    echo "chaos_smoke: study never reached the kill point (done_chunks=${n:-?})" >&2
    cat "$work/coord.log" >&2
    exit 1
fi

kill -9 "$coord_pid"
wait "$coord_pid" 2>/dev/null || true
echo "chaos_smoke: coordinator killed at done_chunks=$n; restarting from journal"

# The workers ride out the outage on their retry loops; the restarted
# coordinator replays the journal, serves the missing chunks and writes
# coord.json on completion. (If the kill raced a full study, the
# restart is done-on-open and exits immediately — the replay line and
# the byte-compare below still hold, so that race is not a failure.)
start_coord
if ! wait "$coord_pid"; then
    echo "chaos_smoke: restarted coordinator failed" >&2
    cat "$work/coord.log" >&2
    exit 1
fi
m="$(sed -n 's/.*resuming with \([0-9]*\) chunks already durable.*/\1/p' "$work/coord.log" | tail -n 1)"
if [ -z "$m" ] || [ "$m" -lt 1 ]; then
    echo "chaos_smoke: restart replayed ${m:-0} chunks, want ≥1 from the journal" >&2
    cat "$work/coord.log" >&2
    exit 1
fi
echo "chaos_smoke: restart replayed $m durable chunks"

if ! cmp "$work/ref.json" "$work/coord.json"; then
    echo "chaos_smoke: FAIL — crash-recovered aggregate differs from the unsharded run" >&2
    exit 1
fi
echo "chaos_smoke: PASS — crash-recovered aggregate is byte-identical to the unsharded run"
