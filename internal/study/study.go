// Package study is the declarative cross-scenario experiment surface:
// one API for the cartesian matrices, Monte-Carlo campaigns and
// parameter sweeps that the paper's results are made of.
//
// A Study is a base scenario.Spec plus typed Axes — storage family,
// irradiance profile, controller parameters, workload, or arbitrary
// func(*Spec) setters — that expand into a deterministic matrix of
// labelled cells. Each cell executes Reps Monte-Carlo repetitions; the
// cell × repetition grid is a flat, stable task ledger (task index =
// cell*Reps + rep) from which every per-run seed derives, so results
// are bit-identical at any worker count, across Shard(i, n) splits and
// across checkpoint/resume boundaries.
//
// Scale-out is first class: RunShard executes one strided slice of the
// ledger and returns a serialisable Checkpoint (completed task ranges
// plus per-task scalar metrics and dwell histograms); checkpoints from
// different shards, processes or machines Merge into one, Resume fills
// the gaps, and Outcome folds a complete checkpoint into the same
// StudyOutcome an unsharded Run produces — bit-identical, because
// aggregation always replays the ledger in canonical task order.
// Chunks, RunChunk and Folder are the coordinated form of the same
// contract: fixed-size contiguous ledger blocks a coordinator leases
// to workers and folds back, in canonical order, at O(outstanding
// chunks) histogram memory (see internal/coord).
//
// Checkpoints cross trust boundaries — files that may be truncated,
// corrupted or hand-edited, and HTTP submissions from remote workers —
// so the protocol validates rather than trusts: every deserialisation
// and merge boundary (ReadCheckpoint, Merge, MergeCheckpoints, Resume,
// Outcome, Folder.Fold) re-checks record-index uniqueness and bounds,
// histogram-counter consistency and the study fingerprint, and
// Checkpoint.Complete is a structural coverage check, not a record
// count. A hostile checkpoint produces a diagnostic error, never a
// silently wrong aggregate.
//
// The Monte-Carlo Campaign runner and the experiments-package parameter
// sweep are both implemented on top of this engine.
package study

import (
	"fmt"

	"pnps/internal/batch"
	"pnps/internal/scenario"
)

// Level is one labelled value of an Axis: a named mutation applied to
// the base spec when a cell selects this level. Apply must be
// deterministic and must not retain the spec pointer — specs fan out
// across workers.
type Level struct {
	// Label identifies the level within its axis (unique per axis).
	Label string
	// Apply mutates the spec for runs in cells that select this level.
	Apply func(s *scenario.Spec)
}

// Axis is one dimension of a study matrix: a name plus the labelled
// levels the matrix crosses. Axes are applied to the base spec in
// declaration order, last axis varying fastest in the expanded matrix.
type Axis struct {
	Name   string
	Levels []Level
}

// NewAxis builds an axis from labelled levels; see Storage, Profile,
// Params, Control, Governor, Utilisation, Duration and Setter for the
// typed level constructors.
func NewAxis(name string, levels ...Level) Axis {
	return Axis{Name: name, Levels: levels}
}

// SeedMode selects how per-run seeds derive from the study seed.
type SeedMode int

const (
	// SeedPerTask (the default) gives every cell × repetition its own
	// decorrelated seed, batch.Seed(Seed, task): fully independent
	// stochastic realisations.
	SeedPerTask SeedMode = iota
	// SeedPerRep gives repetition r the same seed batch.Seed(Seed, r)
	// in every cell — common random numbers, so all cells face the same
	// weather realisations and cross-cell comparisons are paired.
	SeedPerRep
	// SeedShared passes Seed verbatim to every run — the parameter-sweep
	// convention where the stochastic scenario is held fixed and only
	// the axes vary.
	SeedShared
)

// Variant perturbs the spec for one run. It receives the repetition
// index and the run's derived seed and mutates the copied spec in place
// after the axis levels have been applied — the Monte-Carlo hook the
// Campaign runner is built on. Axes are the declarative way to express
// structured variation; Vary covers the long tail.
type Variant func(rep int, seed int64, s *scenario.Spec)

// GroupFunc labels one run for grouped aggregation. It runs after the
// axes and Vary, so the label can reflect the perturbation; the spec is
// passed by value — grouping classifies a run, it cannot change it.
type GroupFunc func(rep int, seed int64, s scenario.Spec) string

// DefaultStabilityBands are the fractional supply-stability bands every
// run accumulates online (±5%, the paper's headline metric, and ±10%):
// studies report within-band stability without retaining any trace.
var DefaultStabilityBands = []float64{0.05, 0.10}

// Study declares a cross-scenario experiment matrix: a base spec, the
// axes it is crossed over, and the Monte-Carlo repetition count per
// cell. The zero values of most fields select sensible defaults — only
// Base is required (Reps defaults to 1).
//
// Execution is deterministic end to end: Run, RunShard at any (i, n),
// Resume and checkpoint merges all reproduce the same StudyOutcome
// bit-identically for any Workers value.
type Study struct {
	// Name identifies the study in checkpoints and exports.
	Name string
	// Base is the scenario every run starts from.
	Base scenario.Spec
	// Axes are the matrix dimensions, applied in order (last fastest).
	// An empty axis list is a single-cell study — a plain Monte-Carlo
	// campaign of Reps runs.
	Axes []Axis
	// Reps is the number of Monte-Carlo repetitions per cell (default 1).
	Reps int
	// Seed is the study base seed; per-run seeds derive from it
	// according to SeedMode.
	Seed int64
	// SeedMode selects the seed-derivation scheme (default SeedPerTask).
	SeedMode SeedMode

	// Vary, when non-nil, perturbs each run's spec after the axis levels
	// are applied (the Campaign compatibility hook).
	Vary Variant
	// Group, when non-nil, labels each run; the outcome then carries
	// one GroupSummary per distinct label (first-occurrence ledger
	// order) alongside the cells. Cells are the structured way to
	// partition a study; Group covers ad-hoc, Campaign-style labels.
	Group GroupFunc

	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Engine selects the execution engine: "" or "scalar" runs tasks one
	// at a time; "batched" advances lane packs of BatchWidth runs in
	// lockstep over the structure-of-arrays engine (see sim.BatchEngine).
	// Outcomes are bit-identical either way — the engine is execution
	// detail, like Workers, and is not part of the study fingerprint.
	Engine string
	// BatchWidth is the lockstep lane count for the batched engine; <1
	// selects sim.DefaultBatchWidth. Ignored by the scalar engine.
	BatchWidth int
	// OnProgress, when non-nil, is called after each completed run with
	// (completed, total) for the executed task set. The batched engine
	// reports once per completed lane pack (the count still covers every
	// run in the pack and still ends at total).
	OnProgress func(completed, total int)
	// FailFast cancels the remaining tasks after the first failure
	// (parameter-sweep semantics); by default every task is attempted.
	FailFast bool

	// KeepSeries retains per-run time series (off by default: studies
	// are trace-free, summarising runs with online observers).
	KeepSeries bool
	// StabilityBands overrides DefaultStabilityBands (fractional
	// half-widths around the run's target voltage). The ±5% band the
	// summaries aggregate is always included.
	StabilityBands []float64
	// VCHistBins, when positive, attaches a per-run dwell-time histogram
	// of the supply voltage with this many bins over [VCHistLo,
	// VCHistHi); cells and the study merge them into dwell-time
	// distributions whose quantile bands the summaries report.
	VCHistBins         int
	VCHistLo, VCHistHi float64
}

// Cell is one point of the expanded matrix.
type Cell struct {
	// Index is the cell's position in canonical (row-major, last axis
	// fastest) matrix order.
	Index int
	// Coords holds the selected level index per axis.
	Coords []int
	// Labels holds the selected level label per axis.
	Labels []string
	// Key is the canonical "axis=label ..." identity string.
	Key string
}

// Task is one scheduled run of the ledger: cell × repetition.
type Task struct {
	// Index is the global ledger index: Cell*Reps + Rep.
	Index int
	// Cell and Rep locate the task in the matrix.
	Cell, Rep int
	// Seed is the run's derived seed.
	Seed int64
}

// plan is the validated, expanded form of a study.
type plan struct {
	cells []Cell
	reps  int
	total int
}

// summaryBand is the fractional band the summaries aggregate (the
// paper's headline ±5%).
const summaryBand = 0.05

// stabilityBands returns the effective per-run stability bands, always
// including the summary band: without it, every run's
// StabilityWithin(0.05) would be NaN trace-free and the headline
// stability aggregate would silently vanish.
func (st Study) stabilityBands() []float64 {
	bands := st.StabilityBands
	if len(bands) == 0 {
		bands = DefaultStabilityBands
	}
	for _, pct := range bands {
		if pct == summaryBand {
			return bands
		}
	}
	return append(append([]float64(nil), bands...), summaryBand)
}

// plan validates the study and expands the matrix.
func (st Study) plan() (*plan, error) {
	reps := st.Reps
	if reps == 0 {
		reps = 1
	}
	if reps < 0 {
		return nil, fmt.Errorf("study: repetitions must be positive, got %d", reps)
	}
	if st.VCHistBins > 0 && !(st.VCHistHi > st.VCHistLo) {
		return nil, fmt.Errorf("study: VC histogram bounds [%g,%g) invalid", st.VCHistLo, st.VCHistHi)
	}
	switch st.SeedMode {
	case SeedPerTask, SeedPerRep, SeedShared:
	default:
		return nil, fmt.Errorf("study: unknown seed mode %d", st.SeedMode)
	}
	seen := map[string]bool{}
	cells := 1
	for _, ax := range st.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("study: axis needs a name")
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("study: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Levels) == 0 {
			return nil, fmt.Errorf("study: axis %q has no levels", ax.Name)
		}
		labels := map[string]bool{}
		for _, lv := range ax.Levels {
			if lv.Label == "" {
				return nil, fmt.Errorf("study: axis %q has an unlabelled level", ax.Name)
			}
			if labels[lv.Label] {
				return nil, fmt.Errorf("study: axis %q has duplicate level %q", ax.Name, lv.Label)
			}
			labels[lv.Label] = true
			if lv.Apply == nil {
				return nil, fmt.Errorf("study: axis %q level %q has no setter", ax.Name, lv.Label)
			}
		}
		cells *= len(ax.Levels)
	}
	p := &plan{reps: reps, total: cells * reps, cells: make([]Cell, cells)}
	coords := make([]int, len(st.Axes))
	for c := 0; c < cells; c++ {
		cell := Cell{
			Index:  c,
			Coords: append([]int(nil), coords...),
			Labels: make([]string, len(st.Axes)),
		}
		for i, ax := range st.Axes {
			cell.Labels[i] = ax.Levels[coords[i]].Label
			if i > 0 {
				cell.Key += " "
			}
			cell.Key += ax.Name + "=" + cell.Labels[i]
		}
		p.cells[c] = cell
		// Odometer increment, last axis fastest.
		for i := len(coords) - 1; i >= 0; i-- {
			coords[i]++
			if coords[i] < len(st.Axes[i].Levels) {
				break
			}
			coords[i] = 0
		}
	}
	return p, nil
}

// taskSeed derives the seed of ledger task t under the study's SeedMode.
func (st Study) taskSeed(t, rep int) int64 {
	switch st.SeedMode {
	case SeedPerRep:
		return batch.Seed(st.Seed, rep)
	case SeedShared:
		return st.Seed
	default:
		return batch.Seed(st.Seed, t)
	}
}

// task materialises ledger entry t.
func (p *plan) task(st Study, t int) Task {
	rep := t % p.reps
	return Task{Index: t, Cell: t / p.reps, Rep: rep, Seed: st.taskSeed(t, rep)}
}

// allTasks enumerates the full ledger in canonical order.
func (p *plan) allTasks(st Study) []Task {
	tasks := make([]Task, p.total)
	for t := range tasks {
		tasks[t] = p.task(st, t)
	}
	return tasks
}

// shardTasks enumerates shard i of n: the strided slice of the ledger
// with task.Index % n == i. Striding balances load — neighbouring tasks
// share a cell and therefore a cost profile.
func (p *plan) shardTasks(st Study, i, n int) ([]Task, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("study: shard %d/%d invalid", i, n)
	}
	var tasks []Task
	for t := i; t < p.total; t += n {
		tasks = append(tasks, p.task(st, t))
	}
	return tasks, nil
}

// taskSpec derives the (possibly perturbed) spec and group label of one
// task: base copy, trace-free default, axis levels in order, then the
// Vary and Group hooks — exactly the Campaign derivation order, so
// campaigns re-implemented on the engine reproduce their old outputs.
func (st Study) taskSpec(p *plan, t Task) (scenario.Spec, string) {
	sp := st.Base
	if !st.KeepSeries {
		sp.SkipSeries = true
	}
	cell := p.cells[t.Cell]
	for i := range st.Axes {
		st.Axes[i].Levels[cell.Coords[i]].Apply(&sp)
	}
	if st.Vary != nil {
		st.Vary(t.Rep, t.Seed, &sp)
	}
	group := ""
	if st.Group != nil {
		group = st.Group(t.Rep, t.Seed, sp)
	}
	return sp, group
}
