package scenario

import (
	"strings"
	"testing"

	"pnps/internal/buffer"
	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/testutil"
)

// TestAssembleMatchesManualAssembly is the golden-equality test for the
// scenario layer: a Spec-assembled run must be bit-identical to the
// hand-assembled sim.Config the experiments used before the refactor.
func TestAssembleMatchesManualAssembly(t *testing.T) {
	const (
		seed     = int64(20170327)
		duration = 30.0
	)

	// Pre-refactor style: everything wired by hand.
	mpp, err := pv.SouthamptonArray().MaximumPowerPoint(pv.StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), mpp.V, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := sim.Run(sim.Config{
		Array:       pv.SouthamptonArray(),
		Profile:     pv.StressClouds(seed, duration),
		Capacitance: 47e-3,
		InitialVC:   mpp.V,
		Platform:    plat,
		Controller:  ctrl,
		Duration:    duration,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scenario layer: the registered stress scenario, shortened.
	spec := MustLookup("stress-clouds")
	spec.Duration = duration
	declarative, err := spec.Run(seed)
	if err != nil {
		t.Fatal(err)
	}

	testutil.RequireEqualResults(t, "scenario-vs-manual", declarative, manual)
	if manual.Interrupts == 0 {
		t.Fatal("golden scenario produced no interrupts; equality not exercised")
	}
}

// TestBenchScenario: the Fig. 11 bench-supply scenario assembles a
// voltage source with no PV array and survives its disturbance script.
func TestBenchScenario(t *testing.T) {
	spec := MustLookup("fig11-bench")
	cfg, err := spec.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Source == nil || cfg.Array != nil {
		t.Fatal("bench scenario should assemble a Source, not an Array")
	}
	if cfg.TargetVolts != 5.3 || cfg.InitialVC != 5.0 {
		t.Fatalf("bench voltages wrong: target %g, initial %g", cfg.TargetVolts, cfg.InitialVC)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownedOut {
		t.Error("fig11 bench scenario browned out")
	}
}

// TestBootDefaults: the zero boot OPP resolves per control scheme.
func TestBootDefaults(t *testing.T) {
	base := Spec{Profile: FixedProfile(pv.Constant(800)), Duration: 1, SkipSeries: true}

	pn := base
	cfg, err := pn.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Platform.CommittedOPP(); got != soc.MinOPP() {
		t.Errorf("power-neutral boot %v, want MinOPP", got)
	}
	if cfg.Controller == nil {
		t.Error("zero Control should assemble the power-neutral controller")
	}

	gov := base
	gov.Control = Governed("powersave")
	cfg, err = gov.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	want := soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}}
	if got := cfg.Platform.CommittedOPP(); got != want {
		t.Errorf("governor boot %v, want %v", got, want)
	}
	if cfg.Governor == nil || cfg.Controller != nil {
		t.Error("governor control mis-assembled")
	}

	st := base
	st.Control = Uncontrolled()
	cfg, err = st.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Controller != nil || cfg.Governor != nil {
		t.Error("static control should assemble neither controller nor governor")
	}
}

// TestSpecValidation rejects malformed specs.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no source", Spec{Duration: 1}, "exactly one"},
		{"both sources", Spec{
			Profile:  FixedProfile(pv.Constant(1)),
			Source:   func(int64, float64) (sim.Source, error) { return nil, nil },
			Duration: 1,
		}, "exactly one"},
		{"no duration", Spec{Profile: FixedProfile(pv.Constant(1))}, "duration"},
		{"bench no initial", Spec{
			Source:   func(int64, float64) (sim.Source, error) { return nil, nil },
			Duration: 1,
		}, "InitialVC"},
		{"governor unnamed", Spec{
			Profile: FixedProfile(pv.Constant(1)), Duration: 1,
			Control: Control{Kind: LinuxGovernor},
		}, "governor"},
	}
	for _, c := range cases {
		if _, err := c.spec.Assemble(0); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestRegistry: built-ins are present, lookups copy, duplicates and
// anonymous specs are rejected.
func TestRegistry(t *testing.T) {
	for _, name := range []string{
		"steady-sun", "fig6-shadow", "stress-clouds", "stress-supercap",
		"stress-hybrid", "fig12-fullsun", "table2-harvest", "fig11-bench",
		"solar-day", "overcast-day",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("built-in scenario %q missing", name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if err := Register(Spec{Profile: FixedProfile(pv.Constant(1)), Duration: 1}); err == nil {
		t.Error("anonymous spec accepted")
	}
	if err := Register(MustLookup("steady-sun")); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Mutating a lookup result must not touch the registry.
	s := MustLookup("steady-sun")
	s.Duration = 1
	if MustLookup("steady-sun").Duration != 60 {
		t.Error("registry entry mutated through a lookup copy")
	}
}

// TestBuiltinsAssemble: every registered scenario assembles cleanly.
func TestBuiltinsAssemble(t *testing.T) {
	for _, spec := range List() {
		if _, err := spec.Assemble(1); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

// TestMinCapacitanceGeneralises: the minimum surviving buffer through
// the Fig. 6 shadow is tens of millifarads for an ideal capacitor, and
// a leaky, resistive supercap family needs at least as much.
func TestMinCapacitanceGeneralises(t *testing.T) {
	spec := MustLookup("fig6-shadow")
	spec.Duration = 12

	ideal, err := MinCapacitance(spec, 0, IdealCaps(), 0.2e-3, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ideal <= 0 || ideal >= 47e-3 {
		t.Errorf("ideal min capacitance %.1f mF outside (0, 47) mF", ideal*1e3)
	}
	bank := sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.1, LeakOhms: 200, VMax: soc.MaxOperatingVolts,
	})
	lossy, err := MinCapacitance(spec, 0, SupercapsLike(bank), 0.2e-3, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lossy < ideal*(1-0.05) {
		t.Errorf("lossy supercap min %.2f mF beat ideal %.2f mF", lossy*1e3, ideal*1e3)
	}
}
