package sim

import (
	"math"
	"testing"

	"pnps/internal/buffer"
	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

func storageControllerConfig(t *testing.T, st Storage, duration float64) Config {
	t.Helper()
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Array: pv.SouthamptonArray(), Profile: pv.StressClouds(7, duration),
		Storage: st, InitialVC: 5.3, Platform: plat,
		Controller: ctrl, Duration: duration,
	}
}

// TestSupercapDegeneratesToIdealCap is the equivalence regression test
// for the pluggable storage node: a Supercap with ESR → 0 and leakage →
// ∞ must reproduce the ideal-capacitor VC trace bit for bit on a
// representative controller run — the Storage interface is a
// generalisation, not a model change.
func TestSupercapDegeneratesToIdealCap(t *testing.T) {
	const duration = 30.0
	ideal, err := Run(storageControllerConfig(t, IdealCap{Farads: 47e-3}, duration))
	if err != nil {
		t.Fatal(err)
	}
	degenerate := NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0, LeakOhms: math.Inf(1), VMax: soc.MaxOperatingVolts,
	})
	cap, err := Run(storageControllerConfig(t, degenerate, duration))
	if err != nil {
		t.Fatal(err)
	}

	if ideal.Interrupts != cap.Interrupts || ideal.Brownouts != cap.Brownouts ||
		ideal.Instructions != cap.Instructions || ideal.FinalVC != cap.FinalVC {
		t.Fatalf("scalar results diverged: interrupts %d vs %d, brownouts %d vs %d, instr %g vs %g, finalVC %g vs %g",
			ideal.Interrupts, cap.Interrupts, ideal.Brownouts, cap.Brownouts,
			ideal.Instructions, cap.Instructions, ideal.FinalVC, cap.FinalVC)
	}
	it, iv := ideal.VC.Times(), ideal.VC.Values()
	ct, cv := cap.VC.Times(), cap.VC.Values()
	if len(it) != len(ct) {
		t.Fatalf("VC trace lengths differ: %d vs %d", len(it), len(ct))
	}
	for i := range it {
		if it[i] != ct[i] || iv[i] != cv[i] {
			t.Fatalf("VC traces diverge at sample %d: (%g,%g) vs (%g,%g)",
				i, it[i], iv[i], ct[i], cv[i])
		}
	}
	if ideal.Interrupts == 0 {
		t.Fatal("scenario produced no interrupts; equivalence not exercised")
	}
}

// TestSupercapLeakageDrains: with a finite leakage path the bank
// self-discharges, so the run ends with measurably less stored energy
// than the lossless capacitor under the same scenario.
func TestSupercapLeakageDrains(t *testing.T) {
	const duration = 30.0
	ideal, err := Run(storageControllerConfig(t, IdealCap{Farads: 47e-3}, duration))
	if err != nil {
		t.Fatal(err)
	}
	leaky := NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 50, VMax: soc.MaxOperatingVolts,
	})
	res, err := Run(storageControllerConfig(t, leaky, duration))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalVC >= ideal.FinalVC {
		t.Errorf("leaky supercap final Vc %.4f V not below ideal %.4f V", res.FinalVC, ideal.FinalVC)
	}
	if res.StorageEnergyEndJ >= ideal.StorageEnergyEndJ {
		t.Errorf("leaky supercap retained %.4f J, ideal %.4f J", res.StorageEnergyEndJ, ideal.StorageEnergyEndJ)
	}
}

// TestStorageEnergyAccounting: the Result brackets the stored energy
// with the storage model's own accounting.
func TestStorageEnergyAccounting(t *testing.T) {
	st := IdealCap{Farads: 47e-3}
	res, err := Run(storageControllerConfig(t, st, 10))
	if err != nil {
		t.Fatal(err)
	}
	wantStart := 0.5 * 47e-3 * 5.3 * 5.3
	if math.Abs(res.StorageEnergyStartJ-wantStart) > 1e-12 {
		t.Errorf("start energy %g J, want %g J", res.StorageEnergyStartJ, wantStart)
	}
	wantEnd := 0.5 * 47e-3 * res.FinalVC * res.FinalVC
	if math.Abs(res.StorageEnergyEndJ-wantEnd) > 1e-12 {
		t.Errorf("end energy %g J, want %g J from final Vc %g", res.StorageEnergyEndJ, wantEnd, res.FinalVC)
	}
}

// TestHybridReservoirRidesThroughCollapse: when the harvest collapses, a
// hybrid buffer's diode lets the reservoir hold the node above the
// brownout floor long after a bare node capacitor of the same front-end
// size has died.
func TestHybridReservoirRidesThroughCollapse(t *testing.T) {
	// Full sun for 3 s, then darkness; a static mid OPP drains the node.
	profile, err := pv.NewSteps(pv.Step{From: 0, G: 1000}, pv.Step{From: 3, G: 0})
	if err != nil {
		t.Fatal(err)
	}
	lifetime := func(st Storage) float64 {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 4}})
		res, err := Run(Config{
			Array: pv.SouthamptonArray(), Profile: profile,
			Storage: st, InitialVC: 5.3, Platform: plat,
			Duration: 60, SkipSeries: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.BrownedOut {
			return 60
		}
		return res.FirstBrownout
	}
	bare := lifetime(IdealCap{Farads: 47e-3})
	hybrid := lifetime(HybridCap{
		NodeFarads: 47e-3, ReservoirFarads: 5,
		DiodeDropVolts: 0.35, DiodeOhms: 0.2,
		ChargeOhms: 10, LeakOhms: math.Inf(1),
	})
	if hybrid <= 2*bare {
		t.Errorf("hybrid lifetime %.2f s should far exceed bare capacitor %.2f s", hybrid, bare)
	}
}

// TestStorageValidation: malformed storage configurations are rejected
// before any integration runs.
func TestStorageValidation(t *testing.T) {
	base := func() Config {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.MinOPP())
		return Config{
			Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
			InitialVC: 5.3, Platform: plat, Duration: 1, SkipSeries: true,
		}
	}
	cfg := base()
	cfg.Storage = IdealCap{Farads: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("negative capacitance accepted")
	}
	cfg = base()
	cfg.Storage = IdealCap{Farads: 47e-3}
	cfg.Capacitance = 47e-3
	if _, err := Run(cfg); err == nil {
		t.Error("both Storage and Capacitance accepted")
	}
	cfg = base()
	cfg.Storage = HybridCap{NodeFarads: 47e-3, ReservoirFarads: 5, DiodeOhms: 0.2}
	if _, err := Run(cfg); err == nil {
		t.Error("hybrid with zero charge/leak resistance accepted")
	}
}

// BenchmarkStorageDispatch guards the Storage interface dispatch in the
// ODE hot path: the one-minute controller run (series capture off to
// isolate the integration loop) must not gain steady-state allocations
// over the PR 2 fast path, whichever storage model is plugged in.
func BenchmarkStorageDispatch(b *testing.B) {
	profile := pv.NewClouds(pv.Constant(900), pv.PartialSun(60), 42)
	models := []struct {
		name string
		st   Storage
	}{
		{"ideal", IdealCap{Farads: 47e-3}},
		{"supercap", NewSupercap(buffer.Supercap{
			Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts})},
		{"hybrid", HybridCap{NodeFarads: 47e-3, ReservoirFarads: 1,
			DiodeDropVolts: 0.35, DiodeOhms: 0.2, ChargeOhms: 10, LeakOhms: 5000}},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plat := soc.NewDefaultPlatform()
				plat.Reset(0, soc.MinOPP())
				ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Run(Config{
					Array: pv.SouthamptonArray(), Profile: profile,
					Storage: m.st, InitialVC: 5.3, Platform: plat,
					Controller: ctrl, Duration: 60, SkipSeries: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
