package experiments

import (
	"context"
	"fmt"
	"sort"

	"pnps/internal/batch"
)

// Runner produces one experiment report from a seed.
type Runner func(seed int64) (*Report, error)

// Registry maps experiment ids (as used by cmd/pnsim) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":  Fig1,
		"fig3":  func(int64) (*Report, error) { return Fig3() },
		"fig4":  func(int64) (*Report, error) { return Fig4() },
		"fig6":  func(int64) (*Report, error) { return Fig6() },
		"fig7":  func(int64) (*Report, error) { return Fig7() },
		"fig10": func(int64) (*Report, error) { return Fig10() },
		"table1": func(int64) (*Report, error) {
			return Table1()
		},
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  Fig14,
		"table2": Table2,
		"fig15":  Fig15,
		"sweep": func(seed int64) (*Report, error) {
			return ParamSweep(SweepOptions{Seed: seed})
		},
		"ablation-semantics": AblationSemantics,
		"ablation-order":     AblationOrder,
		"mppt":               MPPTComparison,
		"predictive":         PredictiveComparison,
		"buffers":            BufferComparison,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, seed int64) (*Report, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(seed)
}

// RunAllOptions configures a parallel run of registered experiments.
type RunAllOptions struct {
	// IDs selects which experiments to run; empty means every
	// registered id in sorted order.
	IDs []string
	// Seed is passed verbatim to every seeded experiment; callers who
	// want the canonical scenarios pass DefaultSeed.
	Seed int64
	// Workers bounds experiment-level concurrency; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called after each experiment
	// completes with (completed, total).
	OnProgress func(completed, total int)
}

// RunAll executes independent experiments concurrently on a worker pool
// and returns their reports in the order of opts.IDs (reports[i] matches
// ids[i]). Experiments are pure functions of (parameters, seed), so
// running them in parallel cannot change any individual report. An
// unknown id or a failing experiment does not abort the rest: all
// failures are aggregated into the returned error, index-ordered.
func RunAll(ctx context.Context, opts RunAllOptions) ([]*Report, error) {
	ids := opts.IDs
	if len(ids) == 0 {
		ids = IDs()
	}
	return batch.Map(ctx, ids, func(_ context.Context, id string) (*Report, error) {
		return Run(id, opts.Seed)
	}, batch.Options{Workers: opts.Workers, OnProgress: opts.OnProgress})
}
