package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pnps/internal/coord"
	"pnps/internal/coord/faults"
	"pnps/internal/study"
	"pnps/internal/studycli"
)

// The end-to-end chaos suite: full studies executed through the
// coordinator under adversarial, deterministic fault schedules — lost
// submit acknowledgements, duplicated submissions, dropped and
// truncated exchanges, a worker SIGKILL, a coordinator SIGKILL restored
// from its journal, and a torn journal tail — each asserting the final
// JSON aggregate is byte-identical to an unsharded single-process
// Study.Run. Crash-safety is only worth having if it cannot cost a bit.

// chaosRecipe is the study under torture: 2×2 cells × 2 reps = 8 ledger
// tasks with dwell histograms on, chunked singly so every fault
// schedule has plenty of chunk boundaries to land on.
func chaosRecipe() studycli.Config {
	return studycli.Config{
		Scenario: "stress-clouds", Duration: 12,
		Storage: "ideal:0.047,supercap:0.047", Util: "1,0.6",
		Reps: 2, Seed: 23,
		Bins: 32, HistLo: 4, HistHi: 6,
	}
}

func buildRecipe(raw json.RawMessage) (study.Study, error) {
	var c studycli.Config
	if err := json.Unmarshal(raw, &c); err != nil {
		return study.Study{}, err
	}
	return c.Build()
}

// refOutcome runs the study unsharded, once per test binary.
var refOnce sync.Once
var refJSON []byte

func reference(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		st, err := chaosRecipe().Build()
		if err != nil {
			t.Fatal(err)
		}
		out, err := st.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := out.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		refJSON = buf.Bytes()
	})
	if refJSON == nil {
		t.Fatal("reference outcome unavailable (earlier failure)")
	}
	return refJSON
}

func newChaosServer(t *testing.T, cfg coord.Config) *coord.Server {
	t.Helper()
	recipe := chaosRecipe()
	st, err := recipe.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(recipe)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Study = st
	cfg.Recipe = raw
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 1
	}
	s, err := coord.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chaosWorker builds a worker with fast, deterministic retry pacing and
// an optional fault schedule on its transport.
func chaosWorker(t *testing.T, url string, i int, tr http.RoundTripper) *coord.Worker {
	t.Helper()
	w := &coord.Worker{
		URL: url, Name: fmt.Sprintf("chaos-%d", i),
		BuildStudy: buildRecipe, Workers: 1, Logf: t.Logf,
		RetryBase: 5 * time.Millisecond, RetryCap: 100 * time.Millisecond,
		RetryAttempts: 10, RetrySeed: int64(1000 + i),
	}
	if tr != nil {
		w.HTTP = &http.Client{Transport: tr}
	}
	return w
}

// runWorkers runs n workers to completion and fails the test on any
// worker error.
func runWorkers(t *testing.T, ws ...*coord.Worker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, len(ws))
	for _, w := range ws {
		wg.Add(1)
		go func(w *coord.Worker) {
			defer wg.Done()
			errs <- w.Run(ctx)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}

// assertOutcome fetches /v1/outcome and compares it byte-for-byte with
// the unsharded reference export.
func assertOutcome(t *testing.T, label, url string) {
	t.Helper()
	resp, err := http.Get(url + "/v1/outcome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: GET /v1/outcome = HTTP %d: %s", label, resp.StatusCode, got.String())
	}
	if !bytes.Equal(got.Bytes(), reference(t)) {
		t.Fatalf("%s: coordinated outcome diverges from the unsharded run:\n%s\nvs\n%s",
			label, got.String(), string(reference(t)))
	}
}

// TestChaosLostSubmitResponse: the acknowledgement of the first chunk
// submission is lost in transit. The worker must retry, the coordinator
// must answer idempotently, and not a bit of the aggregate may move.
func TestChaosLostSubmitResponse(t *testing.T) {
	s := newChaosServer(t, coord.Config{Logf: t.Logf})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	tr := faults.NewTransport(nil, faults.Rule{
		Method: http.MethodPost, Path: "/v1/chunks", Nth: 1, Op: faults.DropResponse,
	})
	tr.Logf = t.Logf
	runWorkers(t, chaosWorker(t, srv.URL, 0, tr), chaosWorker(t, srv.URL, 1, nil))
	if tr.Fired() != 1 {
		t.Fatalf("schedule fired %d faults, want 1", tr.Fired())
	}
	assertOutcome(t, "lost-submit-response", srv.URL)
}

// TestChaosDuplicatedSubmit: a fault duplicates a submission on the
// wire (an at-least-once proxy). The second copy must fold nothing.
func TestChaosDuplicatedSubmit(t *testing.T) {
	s := newChaosServer(t, coord.Config{Logf: t.Logf})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	tr := faults.NewTransport(nil, faults.Rule{
		Method: http.MethodPost, Path: "/v1/chunks", Nth: 2, Op: faults.DupRequest,
	})
	runWorkers(t, chaosWorker(t, srv.URL, 0, tr))
	if tr.Fired() != 1 {
		t.Fatalf("schedule fired %d faults, want 1", tr.Fired())
	}
	assertOutcome(t, "duplicated-submit", srv.URL)
}

// TestChaosDroppedAndTruncatedExchanges: dropped lease requests and a
// truncated study-info response force the retry path on every endpoint
// the worker loop uses.
func TestChaosDroppedAndTruncatedExchanges(t *testing.T) {
	s := newChaosServer(t, coord.Config{Logf: t.Logf})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	tr := faults.NewTransport(nil,
		faults.Rule{Method: http.MethodGet, Path: "/v1/study", Nth: 1, Op: faults.TruncateResponse},
		faults.Rule{Method: http.MethodPost, Path: "/v1/lease", Nth: 1, Times: 2, Op: faults.DropRequest},
		faults.Rule{Method: http.MethodPost, Path: "/v1/chunks", Nth: 3, Op: faults.TruncateResponse},
		faults.Rule{Method: http.MethodPost, Path: "/v1/lease", Nth: 5, Op: faults.Delay, Delay: 20 * time.Millisecond},
	)
	tr.Logf = t.Logf
	runWorkers(t, chaosWorker(t, srv.URL, 0, tr))
	if tr.Fired() < 4 {
		t.Fatalf("schedule fired %d faults, want ≥4", tr.Fired())
	}
	assertOutcome(t, "dropped-and-truncated", srv.URL)
}

// TestChaosWorkerSIGKILL: a worker leases a chunk and vanishes without
// a trace; the lease expires and survivors re-run the chunk.
func TestChaosWorkerSIGKILL(t *testing.T) {
	s := newChaosServer(t, coord.Config{
		Logf: t.Logf, LeaseTTL: 200 * time.Millisecond, Backoff: time.Millisecond,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The casualty: a real Worker loop killed (context cancel is as
	// close as in-process gets to SIGKILL — no submit, no cleanup)
	// right after it leases its first chunk.
	leased := make(chan struct{}, 1)
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	casualty := chaosWorker(t, srv.URL, 9, nil)
	casualty.Logf = func(format string, args ...any) {
		t.Logf("casualty: "+format, args...)
		if strings.Contains(format, "running chunk") {
			select {
			case leased <- struct{}{}:
			default:
			}
		}
	}
	go func() {
		_ = casualty.Run(killCtx) // error expected: killed mid-chunk
	}()
	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("casualty never leased a chunk")
	}
	kill()

	runWorkers(t, chaosWorker(t, srv.URL, 0, nil), chaosWorker(t, srv.URL, 1, nil))
	assertOutcome(t, "worker-sigkill", srv.URL)
}

// TestChaosCoordinatorKillRestart is the tentpole scenario: the
// coordinator is killed cold mid-study and a new incarnation restarts
// from the journal behind the same URL. Workers ride out the outage on
// their retry loops; no folded chunk is lost; the aggregate does not
// move a bit.
func TestChaosCoordinatorKillRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "chaos.journal")
	killArm := make(chan struct{})
	var killOnce sync.Once
	s1 := newChaosServer(t, coord.Config{
		Logf: t.Logf, JournalPath: journal,
		OnChunk: func(st coord.Status) {
			if st.DoneChunks >= 2 {
				killOnce.Do(func() { close(killArm) })
			}
		},
	})
	chaos := faults.NewChaos(s1.Handler())
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w := chaosWorker(t, srv.URL, i, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.Run(ctx)
		}()
	}

	select {
	case <-killArm:
	case <-time.After(30 * time.Second):
		t.Fatal("study never reached the kill point")
	}
	chaos.Kill() // returns once in-flight requests drain: s1 is dead and quiescent
	t.Log("chaos: coordinator killed, restarting from journal")

	s2 := newChaosServer(t, coord.Config{Logf: t.Logf, JournalPath: journal})
	if replayed := s2.Status().DoneChunks; replayed < 2 {
		t.Fatalf("restarted coordinator replayed %d chunks, want ≥2", replayed)
	}
	chaos.Restart(s2.Handler())

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	select {
	case <-s2.Done():
	default:
		t.Fatal("restarted coordinator not done after workers exited")
	}
	assertOutcome(t, "coordinator-kill-restart", srv.URL)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosTornJournalTail: the coordinator dies mid-append — the
// journal ends inside a record. Restart truncates the torn tail, keeps
// every whole record, re-leases the torn chunk and still converges to
// the reference aggregate.
func TestChaosTornJournalTail(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "torn.journal")
	s1 := newChaosServer(t, coord.Config{Logf: t.Logf, JournalPath: journal})
	srv1 := httptest.NewServer(s1.Handler())

	// Fold exactly two chunks through a budgeted worker, then abandon
	// the incarnation (no drain, no close).
	budget := chaosWorker(t, srv1.URL, 0, nil)
	budget.MaxChunks = 2
	runWorkers(t, budget)
	srv1.Close()
	if got := s1.Status().DoneChunks; got != 2 {
		t.Fatalf("pre-crash incarnation folded %d chunks, want 2", got)
	}

	// Tear the tail: the crash hit mid-append of the second record.
	if err := os.Truncate(journal, sizeOf(t, journal)-3); err != nil {
		t.Fatal(err)
	}

	s2 := newChaosServer(t, coord.Config{Logf: t.Logf, JournalPath: journal})
	if got := s2.Status().DoneChunks; got != 1 {
		t.Fatalf("post-tear replay recovered %d chunks, want 1 (the torn record re-leases)", got)
	}
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	runWorkers(t, chaosWorker(t, srv2.URL, 1, nil))
	assertOutcome(t, "torn-journal-tail", srv2.URL)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func sizeOf(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
