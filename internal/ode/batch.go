package ode

import "fmt"

// BatchIntegrator advances up to W independent segment integrations in
// lockstep. Each lane is a full Integrator whose 11 stage buffers are
// views into one shared structure-of-arrays slab — all lanes' k1 storage
// is contiguous, then all lanes' k2, and so on — so a lockstep round
// walks each stage across the whole batch with unit stride.
//
// Rounds are attempt-synchronous, not time-synchronous: every running
// lane performs exactly one step attempt per Round (its own adaptive step
// size, its own accept/reject outcome). A lane that rejects simply
// retries on the next round; a lane whose segment finishes (span covered,
// terminal event, error) drops out of the round set until the caller
// collects its Result with Take and re-arms it with Start. Because each
// lane executes the identical segState method sequence the scalar
// Integrate loop uses, per-lane results are bit-identical to scalar
// integration regardless of batch width or lane interleaving.
//
// A BatchIntegrator is not safe for concurrent use.
type BatchIntegrator struct {
	width, dim int
	slab       []float64
	lanes      []batchLane
	active     int
	stepping   []int // scratch: lane indices attempting a step this round

	// batch, when installed via SetBatchRHS, evaluates the stage
	// derivatives of every StartBatched lane in one call per stage per
	// round. The b* slices are the gathered (time, state, derivative,
	// lane) arguments of that call, reused across rounds.
	batch  BatchRHS
	bts    []float64
	bys    [][]float64
	bdys   [][]float64
	blanes []int
}

type batchLane struct {
	in      Integrator
	s       segState
	running bool
	// batched routes this lane's in-round stage evaluations through the
	// integrator's BatchRHS instead of the lane's own scalar RHS.
	batched bool
}

// BatchRHS evaluates the derivatives of several independent lanes in a
// single call, letting an implementation share work across lanes (e.g.
// advancing every lane's PV Newton solve in lockstep) that per-lane RHS
// closures would repeat. For every j, EvalLanes must set
// dys[j] = f_{lanes[j]}(ts[j], ys[j]) — exactly the values the lane's
// scalar RHS would produce, since the integrator freely mixes the two
// paths (the FSAL seed at Start always uses the scalar RHS) and batched
// results are pinned bit-identical to scalar ones. lanes[j] is the
// integrator lane index, identifying the per-lane model state; the
// slices are only valid for the duration of the call and must not be
// retained.
type BatchRHS interface {
	EvalLanes(ts []float64, ys, dys [][]float64, lanes []int)
}

// NewBatchIntegrator returns a lockstep integrator for `width` lanes of
// a `dim`-dimensional state. All lanes are idle until armed with Start.
func NewBatchIntegrator(width, dim int) *BatchIntegrator {
	if width < 1 || dim < 1 {
		panic(fmt.Sprintf("ode: NewBatchIntegrator(width=%d, dim=%d): both must be >= 1", width, dim))
	}
	b := &BatchIntegrator{
		width:    width,
		dim:      dim,
		slab:     make([]float64, 11*width*dim),
		lanes:    make([]batchLane, width),
		stepping: make([]int, 0, width),
		bts:      make([]float64, width),
		bys:      make([][]float64, width),
		bdys:     make([][]float64, width),
		blanes:   make([]int, width),
	}
	for l := range b.lanes {
		b.lanes[l].in.bindBuffers(b.slab, dim, width, l)
	}
	return b
}

// Width returns the number of lanes.
func (b *BatchIntegrator) Width() int { return b.width }

// Dim returns the per-lane state dimension.
func (b *BatchIntegrator) Dim() int { return b.dim }

// Active returns the number of lanes currently mid-segment.
func (b *BatchIntegrator) Active() int { return b.active }

// Running reports whether lane is mid-segment (armed and not finished).
func (b *BatchIntegrator) Running(lane int) bool { return b.lanes[lane].running }

// Start arms lane with a new segment — same contract as
// Integrator.Integrate, split at the first step attempt. y must have
// length at most Dim (lanes with a smaller state dimension reslice their
// stage views down; the slab stays shared) and is updated in place as
// the lane advances. Validation errors (bad span, NaN state) are
// returned immediately and leave the lane idle.
func (b *BatchIntegrator) Start(lane int, f RHS, t0, t1 float64, y []float64, opts Options) error {
	ln := &b.lanes[lane]
	if ln.running {
		panic(fmt.Sprintf("ode: BatchIntegrator.Start on running lane %d", lane))
	}
	if len(y) > b.dim {
		return fmt.Errorf("ode: BatchIntegrator.Start lane %d: len(y)=%d exceeds dim=%d", lane, len(y), b.dim)
	}
	if err := ln.in.begin(&ln.s, f, t0, t1, y, opts); err != nil {
		return err
	}
	ln.running = true
	ln.batched = false
	b.active++
	return nil
}

// SetBatchRHS installs br as the batched stage-derivative evaluator for
// lanes armed through StartBatched. Installing nil uninstalls it (all
// lanes evaluate through their scalar RHS). The evaluator may be
// replaced only while no batched lane is running.
func (b *BatchIntegrator) SetBatchRHS(br BatchRHS) { b.batch = br }

// StartBatched arms lane exactly like Start, additionally routing its
// in-round stage evaluations through the BatchRHS installed with
// SetBatchRHS — one EvalLanes call per stage per round covers every
// such lane. f is still required: it seeds the FSAL stage at segment
// start and must agree exactly with the batch evaluator for this lane
// (same model, same per-lane mutable state), since the two paths are
// mixed within one segment.
func (b *BatchIntegrator) StartBatched(lane int, f RHS, t0, t1 float64, y []float64, opts Options) error {
	if b.batch == nil {
		panic("ode: BatchIntegrator.StartBatched without SetBatchRHS")
	}
	if err := b.Start(lane, f, t0, t1, y, opts); err != nil {
		return err
	}
	b.lanes[lane].batched = true
	return nil
}

// Round performs one lockstep step attempt for every running lane,
// stage-major: each stage's update kernel sweeps the whole batch over
// the contiguous stage slab, each stage's derivative evaluations
// collapse to a single BatchRHS call for the StartBatched lanes (scalar
// RHS per lane otherwise), and the round finishes with each lane's
// accept/reject settlement. It returns the number of lanes still
// running; lanes whose segment completed this round are no longer
// Running and their Result is ready to Take.
func (b *BatchIntegrator) Round() int {
	if b.active == 0 {
		return 0
	}
	st := b.stepping[:0]
	for i := range b.lanes {
		ln := &b.lanes[i]
		if !ln.running {
			continue
		}
		if ln.in.attemptPrepare(&ln.s) {
			st = append(st, i)
		} else {
			ln.running = false
			b.active--
		}
	}
	b.stepping = st
	if len(st) > 0 {
		b.roundStages(st)
	}
	for _, i := range st {
		ln := &b.lanes[i]
		ln.in.settleStep(&ln.s)
		if ln.s.done {
			// Terminal event or integration error: the lane is finished
			// now. (A lane whose final step merely covered the span is
			// finished too, but discovers it — and records LastStep —
			// via attemptPrepare on its next round, exactly as the
			// scalar loop would.)
			ln.running = false
			b.active--
		}
	}
	return b.active
}

// Drain runs Round until every lane that can finish without caller
// intervention has finished — i.e. until no lanes are running.
func (b *BatchIntegrator) Drain() {
	for b.Round() > 0 {
	}
}

// Take returns the finished lane's segment outcome and returns the lane
// to the idle pool. Result.Hits (including Y snapshots) aliases lane
// scratch valid until the lane's next Start. Take panics if the lane is
// still running or was never armed.
func (b *BatchIntegrator) Take(lane int) (Result, error) {
	ln := &b.lanes[lane]
	if ln.running {
		panic(fmt.Sprintf("ode: BatchIntegrator.Take on running lane %d", lane))
	}
	if ln.s.y == nil {
		panic(fmt.Sprintf("ode: BatchIntegrator.Take on lane %d that was never armed", lane))
	}
	res, err := ln.s.res, ln.s.err
	ln.s = segState{}
	return res, err
}
