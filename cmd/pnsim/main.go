// Command pnsim regenerates the paper's evaluation artefacts and runs
// named scenarios from the declarative registry. Each experiment id
// corresponds to a table or figure of "Power Neutral Performance Scaling
// for Energy Harvesting MP-SoCs" (DATE 2017); see DESIGN.md for the
// index.
//
// Usage:
//
//	pnsim [-seed N] [-csv dir] [-workers N] <experiment>...
//	pnsim -all
//	pnsim -scenario name [-mc N] [-json file]
//	pnsim -list
//	pnsim -cpuprofile cpu.out -memprofile mem.out ...
//
// With -csv, every series the experiment records is written as
// <dir>/<experiment>.csv for external plotting. Experiments are
// independent and execute concurrently on -workers goroutines (default
// GOMAXPROCS); reports are printed in the order the ids were given.
//
// -scenario runs one registered scenario (see -list for names) and
// prints its outcome; with -mc N it becomes a Monte-Carlo campaign of N
// seed-varied repetitions fanned over -workers goroutines. Campaigns
// run trace-free — online observers accumulate within-band stability,
// supply envelopes and the dwell-time voltage histogram per run, so
// memory stays O(1) per in-flight run at any -mc count — and report the
// deterministic aggregate (bit-identical for any -workers). -csv writes
// the per-run scalar outcomes, -json the aggregate summary.
//
// -cpuprofile and -memprofile write pprof profiles of whatever workload
// the other flags select, so perf hunts run against the real CLI paths.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"pnps/internal/experiments"
	"pnps/internal/scenario"
	"pnps/internal/stats"
	"pnps/internal/study"
	"pnps/internal/trace"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so the profiling defers flush before
// the process exits (os.Exit would skip them).
func run() int {
	var (
		seed    = flag.Int64("seed", experiments.DefaultSeed, "random seed for stochastic scenarios")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV series into")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment/campaign executions")
		all     = flag.Bool("all", false, "run every registered experiment")
		list    = flag.Bool("list", false, "list experiment ids and scenario names, then exit")
		scn     = flag.String("scenario", "", "run a registered scenario instead of experiments")
		mc      = flag.Int("mc", 1, "with -scenario: Monte-Carlo repetitions (campaign mode when > 1)")
		jsonOut = flag.String("json", "", "with -scenario -mc: write the campaign aggregate (summary, groups, histogram) as JSON to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof)")
	)
	flag.Parse()

	// Profiling hooks so perf hunts run against the real CLI workloads
	// instead of ad-hoc harnesses: pnsim -memprofile mem.out -scenario
	// stress-clouds -mc 1000, then go tool pprof.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnsim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pnsim: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("scenarios:")
		for _, s := range scenario.List() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Description)
		}
		return 0
	}

	if *scn != "" {
		if err := runScenario(*scn, *seed, *mc, *workers, *csvDir, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "pnsim: %v\n", err)
			return 1
		}
		return 0
	}

	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "pnsim: no experiments given; try -list, -all or -scenario")
		return 2
	}
	reps, runErr := experiments.RunAll(context.Background(), experiments.RunAllOptions{
		IDs: ids, Seed: *seed, Workers: *workers,
	})
	failed := runErr != nil
	for i, rep := range reps {
		if rep == nil {
			continue // failure; reported via runErr below
		}
		fmt.Println(rep.String())
		if *csvDir != "" && len(rep.Series) > 0 {
			if err := writeCSV(*csvDir, ids[i], rep.Series...); err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: csv %s: %v\n", ids[i], err)
				failed = true
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "pnsim: %v\n", runErr)
	}
	if failed {
		return 1
	}
	return 0
}

// runScenario executes one registered scenario, or a Monte-Carlo
// campaign of it when mc > 1.
func runScenario(name string, seed int64, mc, workers int, csvDir, jsonOut string) error {
	spec, ok := scenario.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (known: %v)", name, scenario.Names())
	}
	if mc <= 1 {
		if jsonOut != "" {
			return fmt.Errorf("-json exports a campaign aggregate and needs -mc > 1")
		}
		res, err := spec.Run(seed)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %s (seed %d, %.0f s)\n", name, seed, spec.Duration)
		fmt.Printf("  survived:            %v\n", !res.BrownedOut)
		fmt.Printf("  lifetime:            %.1f s\n", res.LifetimeSeconds)
		fmt.Printf("  brownouts/restarts:  %d/%d\n", res.Brownouts, res.Restarts)
		fmt.Printf("  instructions:        %.2f G\n", res.Instructions/1e9)
		fmt.Printf("  threshold interrupts:%d\n", res.Interrupts)
		fmt.Printf("  final supply:        %.3f V\n", res.FinalVC)
		fmt.Printf("  within 5%% of target: %.1f%%\n", res.StabilityWithin(0.05)*100)
		fmt.Printf("  stored energy:       %.3f J -> %.3f J\n",
			res.StorageEnergyStartJ, res.StorageEnergyEndJ)
		if csvDir != "" && res.VC != nil {
			return writeCSV(csvDir, "scenario-"+name, res.VC, res.PowerConsumed, res.FreqGHz)
		}
		return nil
	}

	out, err := study.Campaign{
		Base: spec, Runs: mc, Seed: seed, Workers: workers,
		// Campaign-level supply distribution: trace-free dwell-time
		// histogram. The bounds span everything the node can physically
		// do — full brownout decay (0 V) up past any PV open-circuit
		// voltage — so no dwell mass lands in under/overflow and the
		// reported median is never clamped to an artificial bound.
		// 250 bins keep 40 mV resolution.
		VCHistBins: 250, VCHistLo: 0, VCHistHi: 10,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rpnsim: %d/%d campaign runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}.Run(context.Background())
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := writeCampaignCSV(csvDir, "campaign-"+name, out); err != nil {
			return err
		}
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := out.WriteSummaryJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	s := out.Summary
	fmt.Printf("campaign %s: %d runs (base seed %d)\n", name, s.Runs, seed)
	fmt.Printf("  survival rate:      %.1f%%\n", s.SurvivalRate*100)
	fmt.Printf("  total brownouts:    %d\n", s.TotalBrownouts)
	fmt.Printf("  within 5%% of target: mean %.1f%% (P5 %.1f%%, median %.1f%%, P95 %.1f%%)\n",
		s.Stability.Mean*100, s.Stability.P5*100, s.Stability.Median*100, s.Stability.P95*100)
	p := func(label, unit string, sm stats.Summary, scale float64) {
		fmt.Printf("  %-19s mean %.3f %s (min %.3f, max %.3f, σ %.3f, P25..P75 %.3f..%.3f)\n",
			label+":", sm.Mean*scale, unit, sm.Min*scale, sm.Max*scale, sm.StdDev*scale,
			sm.P25*scale, sm.P75*scale)
	}
	p("instructions", "G", s.Instructions, 1e-9)
	p("lifetime", "s", s.LifetimeSeconds, 1)
	p("final supply", "V", s.FinalVC, 1)
	p("min supply", "V", s.MinVC, 1)
	p("storage Δenergy", "J", s.StorageEnergyDeltaJ, 1)
	if h := out.VCHistogram; h != nil {
		if med, err := h.Quantile(0.5); err == nil {
			fmt.Printf("  supply dwell median: %.3f V over %.0f run-seconds\n", med, h.Total())
		}
	}
	return nil
}

// writeCampaignCSV exports the per-run scalar outcomes of a campaign.
func writeCampaignCSV(dir, id string, out *study.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := out.WriteRunsCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

func writeCSV(dir, id string, series ...*trace.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
