// Package monitor models the external voltage-monitoring hardware of the
// paper's Fig. 9: a potential divider feeding an analogue comparator
// (LT6703, 400 mV internal reference) whose trip point is tuned by an
// SPI-controlled 7-bit digital potentiometer (MCP4131), producing hardware
// interrupts when the supply crosses the Vhigh/Vlow thresholds.
//
// For control purposes the circuit reduces to three behaviours, all
// modelled here: threshold *quantisation* (the digipot has 129 taps, so
// requested thresholds snap to a finite grid), interrupt *latency*
// (comparator propagation plus GPIO/ISR dispatch), and *overheads* (the
// circuit's static power draw and the CPU time the processor spends in the
// ISR and reprogramming the digipot over SPI).
package monitor

import (
	"fmt"
	"math"
)

// Config describes one threshold channel's electrical behaviour.
type Config struct {
	// VMin and VMax bound the achievable threshold range, volts. The
	// divider and digipot in Fig. 9 are dimensioned so the comparator's
	// 400 mV reference maps onto the board's 4.1–5.7 V operating window
	// with margin.
	VMin, VMax float64
	// Taps is the number of digipot positions (129 for the MCP4131).
	Taps int
	// PropagationDelay is comparator + level-shifter delay, seconds.
	PropagationDelay float64
	// ISRLatency is the interrupt dispatch latency on the SoC, seconds.
	ISRLatency float64
	// ISRCPUSeconds is CPU time consumed per interrupt service.
	ISRCPUSeconds float64
	// SPICPUSeconds is CPU time consumed per threshold reprogramming.
	SPICPUSeconds float64
	// PowerWatts is the static draw of one monitoring channel.
	PowerWatts float64
}

// DefaultConfig returns values matching the paper's hardware: 129-tap
// MCP4131, LT6703 comparator (microsecond-class propagation), and a total
// two-channel power draw of 1.61 mW (Section V-D).
func DefaultConfig() Config {
	return Config{
		VMin:             3.8,
		VMax:             6.2,
		Taps:             129,
		PropagationDelay: 25e-6,
		ISRLatency:       80e-6,
		ISRCPUSeconds:    55e-6,
		SPICPUSeconds:    18e-6,
		PowerWatts:       0.805e-3, // half of the measured 1.61 mW pair
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.VMax > c.VMin) {
		return fmt.Errorf("monitor: VMax %g must exceed VMin %g", c.VMax, c.VMin)
	}
	if c.Taps < 2 {
		return fmt.Errorf("monitor: need >=2 digipot taps, got %d", c.Taps)
	}
	if c.PropagationDelay < 0 || c.ISRLatency < 0 || c.ISRCPUSeconds < 0 || c.SPICPUSeconds < 0 {
		return fmt.Errorf("monitor: latencies must be non-negative")
	}
	return nil
}

// Resolution returns the threshold grid pitch in volts.
func (c Config) Resolution() float64 {
	return (c.VMax - c.VMin) / float64(c.Taps-1)
}

// Quantize snaps a requested threshold to the nearest achievable tap
// voltage, clamping to the achievable range.
func (c Config) Quantize(v float64) float64 {
	if v <= c.VMin {
		return c.VMin
	}
	if v >= c.VMax {
		return c.VMax
	}
	step := c.Resolution()
	k := math.Round((v - c.VMin) / step)
	return c.VMin + k*step
}

// Channel is one comparator channel with a programmable threshold.
type Channel struct {
	cfg       Config
	name      string
	threshold float64 // quantised, volts
	updates   int
}

// NewChannel builds a channel with the given configuration and an initial
// threshold (quantised immediately).
func NewChannel(name string, cfg Config, initial float64) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, name: name, threshold: cfg.Quantize(initial)}, nil
}

// Name returns the channel name ("Vhigh"/"Vlow").
func (ch *Channel) Name() string { return ch.name }

// Threshold returns the current quantised threshold in volts.
func (ch *Channel) Threshold() float64 { return ch.threshold }

// Program sets a new threshold, returning the quantised value actually
// armed and the CPU time spent on the SPI transaction.
func (ch *Channel) Program(v float64) (actual, cpuSeconds float64) {
	ch.threshold = ch.cfg.Quantize(v)
	ch.updates++
	return ch.threshold, ch.cfg.SPICPUSeconds
}

// Updates returns how many times the channel was reprogrammed.
func (ch *Channel) Updates() int { return ch.updates }

// InterruptDelay returns the time from the analogue crossing to the ISR
// starting on the SoC.
func (ch *Channel) InterruptDelay() float64 {
	return ch.cfg.PropagationDelay + ch.cfg.ISRLatency
}

// ISRCPUSeconds returns CPU time consumed per interrupt service.
func (ch *Channel) ISRCPUSeconds() float64 { return ch.cfg.ISRCPUSeconds }

// Hardware is the complete two-channel monitoring circuit.
type Hardware struct {
	High, Low *Channel
	cfg       Config

	interrupts int
	cpuSeconds float64 // accumulated ISR + SPI CPU time
}

// NewHardware builds the two-channel monitor with both thresholds armed.
func NewHardware(cfg Config, vhigh, vlow float64) (*Hardware, error) {
	hi, err := NewChannel("Vhigh", cfg, vhigh)
	if err != nil {
		return nil, err
	}
	lo, err := NewChannel("Vlow", cfg, vlow)
	if err != nil {
		return nil, err
	}
	return &Hardware{High: hi, Low: lo, cfg: cfg}, nil
}

// PowerWatts returns the static power of both channels (the paper measured
// 1.61 mW total).
func (h *Hardware) PowerWatts() float64 { return 2 * h.cfg.PowerWatts }

// RecordInterrupt accounts one serviced interrupt and returns its CPU cost.
func (h *Hardware) RecordInterrupt() float64 {
	h.interrupts++
	h.cpuSeconds += h.cfg.ISRCPUSeconds
	return h.cfg.ISRCPUSeconds
}

// RecordProgramming accounts one SPI threshold update's CPU cost.
func (h *Hardware) RecordProgramming() float64 {
	h.cpuSeconds += h.cfg.SPICPUSeconds
	return h.cfg.SPICPUSeconds
}

// Interrupts returns the number of serviced interrupts.
func (h *Hardware) Interrupts() int { return h.interrupts }

// CPUSeconds returns total CPU time spent servicing the monitor.
func (h *Hardware) CPUSeconds() float64 { return h.cpuSeconds }

// CPUOverhead returns the fraction of wall time spent servicing the
// monitor over a run of the given duration — the paper's Fig. 15 metric
// (measured mean: 0.104%).
func (h *Hardware) CPUOverhead(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return h.cpuSeconds / duration
}
