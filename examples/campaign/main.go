// Campaign: a Monte-Carlo storage study — the paper's headline claim
// ("power neutrality makes farad-scale buffers unnecessary") evaluated
// across many weather realisations instead of one. One grouped campaign
// runs the same stress scenario on the ideal 47 mF capacitor, a real
// supercap bank (ESR + leakage in the live ODE) and a hybrid
// diode-backed buffer, fanned over all CPU cores with bit-reproducible,
// trace-free aggregation: no run retains a time series — within-band
// stability, supply envelopes and the dwell-time voltage histogram are
// accumulated online, so the campaign's memory footprint is independent
// of scenario length.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pnps"
)

func main() {
	base, ok := pnps.LookupScenario("stress-clouds")
	if !ok {
		log.Fatal("stress-clouds scenario missing")
	}
	const runsPerStorage = 16

	storages := []struct {
		name string
		st   pnps.Storage
	}{
		{"ideal 47 mF", pnps.IdealCapacitor{Farads: 47e-3}},
		{"supercap 47 mF (ESR+leak)", pnps.NewSupercapBank(pnps.SupercapParams{
			Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: 5.7,
		})},
		{"hybrid 10 mF + 1 F reservoir", pnps.HybridBuffer{
			NodeFarads: 10e-3, ReservoirFarads: 1,
			DiodeDropVolts: 0.35, DiodeOhms: 0.2,
			ChargeOhms: 10, LeakOhms: 20000,
		}},
	}

	// One campaign, grouped by storage: run k gets storage k%3 and the
	// weather realisation k/3 — common random numbers, so all three
	// storages face the *same* 16 skies and the comparison is paired,
	// not confounded by weather luck. The per-group summaries come back
	// deterministically (bit-identical at any worker count).
	out, err := pnps.Campaign{
		Base: base, Runs: runsPerStorage * len(storages), Seed: 2017,
		Vary: func(k int, _ int64, s *pnps.Scenario) {
			s.Storage = storages[k%len(storages)].st
			realisation := k / len(storages)
			orig := s.Profile
			s.Profile = func(_ int64, span float64) pnps.IrradianceProfile {
				return orig(pnps.BatchSeed(2017, realisation), span)
			}
		},
		Group: func(k int, _ int64, _ pnps.Scenario) string {
			return storages[k%len(storages)].name
		},
		VCHistBins: 64, VCHistLo: 4.0, VCHistHi: 6.0,
	}.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Monte-Carlo storage study: %d weather realisations per storage, trace-free\n\n",
		runsPerStorage)
	fmt.Printf("%-30s %-9s %-10s %-22s %s\n",
		"storage", "survival", "brownouts", "within ±5% (P25..P75)", "mean instr")
	for _, g := range out.Groups {
		s := g.Summary
		fmt.Printf("%-30s %6.1f%%  %-10d %5.1f%% (%4.1f..%4.1f%%)     %7.1f G\n",
			g.Name, s.SurvivalRate*100, s.TotalBrownouts,
			s.Stability.Mean*100, s.Stability.P25*100, s.Stability.P75*100,
			s.Instructions.Mean/1e9)
	}
	if med, err := out.VCHistogram.Quantile(0.5); err == nil {
		fmt.Printf("\nsupply dwell median across all %d runs: %.3f V (%.0f run-seconds observed)\n",
			out.Summary.Runs, med, out.VCHistogram.Total())
	}

	fmt.Println("\nSingle-seed evaluation overfits the weather; the campaign shows the")
	fmt.Println("distribution — and the diode-backed reservoir riding through occlusions")
	fmt.Println("that kill a bare buffer capacitor of any realistic size.")

	// The aggregate exports as JSON (and per-run scalars as CSV) for
	// external tooling; see also `pnsim -scenario ... -mc N -json f`.
	if len(os.Args) > 1 && os.Args[1] == "-json" {
		if err := out.WriteSummaryJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
