package experiments

import (
	"fmt"

	"pnps/internal/soc"
)

// Fig4 regenerates the paper's Fig. 4: board power consumption vs
// operating frequency for the eight benchmarked core configurations under
// the CPU-saturating ray-tracing workload.
func Fig4() (*Report, error) {
	pm := soc.DefaultPowerModel()
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	ladder := soc.ConfigLadder()
	freqs := soc.FrequencyLevels()

	tab := Table{
		Title:  "Board power (W) vs frequency for each core configuration",
		Header: []string{"f (GHz)"},
	}
	for _, cfg := range ladder {
		tab.Header = append(tab.Header, cfg.String())
	}
	for fi, f := range freqs {
		row := []string{fmt.Sprintf("%.2f", f/1e9)}
		for _, cfg := range ladder {
			p := pm.PowerAtFullLoad(soc.OPP{FreqIdx: fi, Config: cfg})
			row = append(row, fmt.Sprintf("%.2f", p))
		}
		tab.Rows = append(tab.Rows, row)
	}

	r := &Report{
		ID:          "fig4",
		Title:       "Power consumption vs operating frequency (Exynos5422 model)",
		Description: "Calibrated power surface; the paper measured ≈1.8 W (1×A7 @0.2 GHz) to ≈7 W (8 cores @1.4 GHz).",
		Tables:      []Table{tab},
	}
	r.AddPaperMetric("min config/frequency power",
		pm.PowerAtFullLoad(soc.MinOPP()), 1.8, "W", "1xA7 @ 0.2 GHz")
	r.AddPaperMetric("max config/frequency power",
		pm.PowerAtFullLoad(soc.MaxOPP()), 7.0, "W", "4xA7+4xA15 @ 1.4 GHz")
	return r, nil
}
