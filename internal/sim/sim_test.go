package sim

import (
	"math"
	"testing"

	"pnps/internal/core"
	"pnps/internal/governor"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

func defaultController(t *testing.T, vc float64) *core.Controller {
	t.Helper()
	c, err := core.New(core.DefaultParams(), vc, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	arr := pv.SouthamptonArray()
	plat := soc.NewDefaultPlatform()
	base := Config{
		Array: arr, Profile: pv.Constant(1000), Capacitance: 47e-3,
		InitialVC: 5.3, Platform: plat, Duration: 1,
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no source", func(c *Config) { c.Array = nil }},
		{"no platform", func(c *Config) { c.Platform = nil }},
		{"zero capacitance", func(c *Config) { c.Capacitance = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero initial VC", func(c *Config) { c.InitialVC = 0 }},
		{"both controllers", func(c *Config) {
			c.Controller = defaultController(t, 5.3)
			c.Governor = governor.Powersave{}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestStaticRunReachesEquilibrium(t *testing.T) {
	// A static light load under full sun settles at the PV equilibrium
	// where the array delivers exactly the board power.
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
		Capacitance: 47e-3, InitialVC: 5.0, Platform: plat, Duration: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownedOut {
		t.Fatal("light static load browned out under full sun")
	}
	// Equilibrium: P_array(Vfinal) ≈ board power.
	arr := pv.SouthamptonArray()
	pArr, err := arr.PowerAt(res.FinalVC, 1000)
	if err != nil {
		t.Fatal(err)
	}
	pBoard := plat.PowerDraw()
	if math.Abs(pArr-pBoard) > 0.05*pBoard {
		t.Errorf("array output %.3f W vs board %.3f W at Vc=%.3f — not an equilibrium",
			pArr, pBoard, res.FinalVC)
	}
}

func TestStaticOverloadBrownsOut(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MaxOPP()) // 7 W load
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000), // 5.6 W available
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat, Duration: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BrownedOut {
		t.Fatal("7 W load survived a 5.6 W harvest")
	}
	if res.FirstBrownout <= 0 || res.FirstBrownout > 5 {
		t.Errorf("brownout at %.2f s, expected within seconds", res.FirstBrownout)
	}
	if res.LifetimeSeconds >= 30 {
		t.Error("lifetime not truncated at brownout")
	}
	// The board stays dead without restart; Vc recovers to open circuit.
	if res.FinalVC < 6.0 {
		t.Errorf("final Vc %.2f, want open-circuit recovery", res.FinalVC)
	}
}

func TestControllerAvoidsBrownoutOnShadow(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	profile := pv.Shadow{Base: 1000, Depth: 0.6, Start: 10, Duration: 4, Edge: 0.5}
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: profile,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: defaultController(t, 5.3), Duration: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownedOut {
		t.Errorf("controller failed to ride through a survivable shadow (first brownout %.2f s)",
			res.FirstBrownout)
	}
	if res.Interrupts == 0 {
		t.Error("no interrupts serviced")
	}
	if res.CPUOverhead <= 0 || res.CPUOverhead > 0.05 {
		t.Errorf("CPU overhead %.4f implausible", res.CPUOverhead)
	}
}

func TestBrownoutRestartResumesWork(t *testing.T) {
	// Darkness kills the board; when the sun returns the platform
	// reboots and continues accruing work on top of the old total.
	steps, err := pv.NewSteps(
		pv.Step{From: 0, G: 1000},
		pv.Step{From: 10, G: 0},    // lights out
		pv.Step{From: 25, G: 1000}, // sun returns
	)
	if err != nil {
		t.Fatal(err)
	}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: steps,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller:      defaultController(t, 5.3),
		Duration:        60,
		BrownoutRestart: true,
		RebootSeconds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Brownouts < 1 {
		t.Fatal("expected a brownout during darkness")
	}
	if res.Restarts < 1 {
		t.Fatal("expected a restart after recovery")
	}
	// Work done before the blackout must be preserved.
	preBlackout := 10 * plat.Perf.InstructionsPerSecond(soc.MinOPP()) * 0.5
	if res.Instructions < preBlackout {
		t.Errorf("instructions %.3g suspiciously low — pre-brownout work lost?", res.Instructions)
	}
	if !plat.Alive() {
		t.Error("platform should be alive again at the end")
	}
}

func TestNoRestartWithoutFlag(t *testing.T) {
	steps, err := pv.NewSteps(
		pv.Step{From: 0, G: 1000},
		pv.Step{From: 5, G: 0},
		pv.Step{From: 15, G: 1000},
	)
	if err != nil {
		t.Fatal(err)
	}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: steps,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: defaultController(t, 5.3), Duration: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Errorf("restarted %d times without the flag", res.Restarts)
	}
	if plat.Alive() {
		t.Error("platform should stay dead")
	}
}

func TestGovernorModeTicks(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}})
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Governor: governor.Powersave{}, Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GovernorTicks < 40 { // 100 ms period over 5 s
		t.Errorf("only %d governor ticks", res.GovernorTicks)
	}
	if res.BrownedOut {
		t.Error("powersave under full sun should survive")
	}
	if res.Interrupts != 0 {
		t.Error("governor mode should service no threshold interrupts")
	}
}

func TestPerformanceGovernorDiesFast(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}})
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(600),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Governor: governor.Performance{}, Duration: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BrownedOut || res.FirstBrownout > 2 {
		t.Errorf("performance governor survived %.2f s on a 3.4 W harvest", res.FirstBrownout)
	}
}

func TestVoltageSourceSetpointTracking(t *testing.T) {
	src, err := NewVoltageSource(0.3,
		VPoint{T: 0, V: 5.0}, VPoint{T: 10, V: 5.0}, VPoint{T: 20, V: 4.5})
	if err != nil {
		t.Fatal(err)
	}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Source: src, Capacitance: 47e-3, InitialVC: 5.0,
		Platform: plat, Duration: 30, TargetVolts: 5.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vc must end near the final setpoint minus the IR drop.
	drop := plat.PowerDraw() / res.FinalVC * 0.3
	want := 4.5 - drop
	if math.Abs(res.FinalVC-want) > 0.05 {
		t.Errorf("final Vc %.3f, want ≈%.3f", res.FinalVC, want)
	}
	// Governor/PV extras must be absent.
	if res.PowerAvailable.Len() != 0 {
		t.Error("voltage source recorded PV available power")
	}
}

func TestVoltageSourceValidation(t *testing.T) {
	if _, err := NewVoltageSource(0); err == nil {
		t.Error("zero series resistance accepted")
	}
	if _, err := NewVoltageSource(1); err == nil {
		t.Error("no waypoints accepted")
	}
	src, err := NewVoltageSource(1, VPoint{T: 10, V: 5}, VPoint{T: 0, V: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted on construction; interpolation and clamping.
	if src.Setpoint(-1) != 4 || src.Setpoint(99) != 5 {
		t.Error("setpoint clamping broken")
	}
	if got := src.Setpoint(5); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("midpoint %.3f, want 4.5", got)
	}
}

func TestSeriesRecording(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: defaultController(t, 5.3), Duration: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []interface {
		Len() int
	}{res.VC, res.PowerConsumed, res.FreqGHz, res.LittleCores, res.BigCores, res.TotalCores} {
		if s.Len() < 10 {
			t.Errorf("series under-sampled: %d points", s.Len())
		}
	}
	// Times must be non-decreasing in the Vc trace.
	times := res.VC.Times()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("VC trace time goes backwards at %d", i)
		}
	}
}

func TestSkipSeries(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Duration: 5, SkipSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VC != nil {
		t.Error("series recorded despite SkipSeries")
	}
	// No series and no stability band: the measurement does not exist,
	// and the sentinel must be NaN — not a degenerate 0 that could be
	// mistaken for "0% stable".
	if s := res.StabilityWithin(0.05); !math.IsNaN(s) {
		t.Errorf("stability without series or matching band should be NaN, got %g", s)
	}
}

func TestMonitorQuantisationRespected(t *testing.T) {
	// The armed thresholds must sit on the monitor's quantisation grid,
	// not at the controller's ideal values.
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl := defaultController(t, 5.313) // deliberately off-grid
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
		Capacitance: 47e-3, InitialVC: 5.313, Platform: plat,
		Controller: ctrl, Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupts == 0 {
		t.Error("expected interrupts")
	}
	if res.MonitorPowerWatts <= 0 {
		t.Error("monitor power not reported")
	}
}

func TestEnergyConservation(t *testing.T) {
	// Energy book-keeping: harvested-in = consumed + capacitor delta,
	// within integration tolerance. Uses a static load so the power
	// traces are smooth.
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 4}})
	const c = 47e-3
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: pv.Constant(800),
		Capacitance: c, InitialVC: 5.0, Platform: plat, Duration: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	eCons, err := res.PowerConsumed.Integral()
	if err != nil {
		t.Fatal(err)
	}
	// Harvested energy: integrate array output along the recorded Vc.
	arr := pv.SouthamptonArray()
	times := res.VC.Times()
	vals := res.VC.Values()
	var eHarv float64
	for i := 0; i+1 < len(times); i++ {
		p, err := arr.PowerAt(vals[i], 800)
		if err != nil {
			t.Fatal(err)
		}
		eHarv += p * (times[i+1] - times[i])
	}
	dCap := 0.5 * c * (res.FinalVC*res.FinalVC - 5.0*5.0)
	imbalance := math.Abs(eHarv - eCons - dCap)
	if imbalance > 0.05*eCons {
		t.Errorf("energy imbalance %.3f J of %.3f J consumed", imbalance, eCons)
	}
}
