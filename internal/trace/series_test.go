package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkSeries(pts ...[2]float64) *Series {
	s := NewSeries("test", "V")
	for _, p := range pts {
		s.Append(p[0], p[1])
	}
	return s
}

func TestAppendStrict(t *testing.T) {
	s := NewSeries("x", "")
	if err := s.AppendStrict(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStrict(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStrict(0.5, 3); err == nil {
		t.Error("out-of-order append accepted")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestMinMaxMean(t *testing.T) {
	s := mkSeries([2]float64{0, 3}, [2]float64{1, 1}, [2]float64{2, 5})
	if m, _ := s.Min(); m != 1 {
		t.Errorf("min %g", m)
	}
	if m, _ := s.Max(); m != 5 {
		t.Errorf("max %g", m)
	}
	if m, _ := s.Mean(); m != 3 {
		t.Errorf("mean %g", m)
	}
	empty := NewSeries("e", "")
	if _, err := empty.Min(); err != ErrEmpty {
		t.Error("empty min should error")
	}
	if _, err := empty.Mean(); err != ErrEmpty {
		t.Error("empty mean should error")
	}
}

func TestTimeMeanZeroOrderHold(t *testing.T) {
	// Value 0 for 1 s, then 10 for 9 s: time mean = 9.
	s := mkSeries([2]float64{0, 0}, [2]float64{1, 10}, [2]float64{10, 10})
	m, err := s.TimeMean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-9) > 1e-12 {
		t.Errorf("time mean %g, want 9", m)
	}
	// Unweighted mean differs.
	um, _ := s.Mean()
	if math.Abs(um-20.0/3) > 1e-12 {
		t.Errorf("mean %g", um)
	}
}

func TestIntegralTrapezoid(t *testing.T) {
	// y = t on [0, 2]: integral = 2.
	s := mkSeries([2]float64{0, 0}, [2]float64{1, 1}, [2]float64{2, 2})
	i, err := s.Integral()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i-2) > 1e-12 {
		t.Errorf("integral %g, want 2", i)
	}
}

func TestInterp(t *testing.T) {
	s := mkSeries([2]float64{0, 0}, [2]float64{10, 100})
	cases := map[float64]float64{-5: 0, 0: 0, 5: 50, 10: 100, 15: 100}
	for tt, want := range cases {
		got, err := s.Interp(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Interp(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestFractionWithinBand(t *testing.T) {
	// 5 V for 8 s, 4 V for 2 s.
	s := mkSeries([2]float64{0, 5}, [2]float64{8, 4}, [2]float64{10, 4})
	f, err := s.FractionWithinBand(4.9, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.8) > 1e-12 {
		t.Errorf("fraction %g, want 0.8", f)
	}
	fp, err := s.FractionWithinPercent(5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp-0.8) > 1e-12 {
		t.Errorf("percent fraction %g, want 0.8", fp)
	}
}

func TestTimeBelowAndFirstCrossing(t *testing.T) {
	s := mkSeries([2]float64{0, 5}, [2]float64{2, 3.9}, [2]float64{4, 5}, [2]float64{6, 5})
	below, err := s.TimeBelow(4.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(below-2) > 1e-12 {
		t.Errorf("time below %g, want 2", below)
	}
	tc, ok := s.FirstCrossingBelow(4.0)
	if !ok || tc != 2 {
		t.Errorf("first crossing at %g, ok=%v", tc, ok)
	}
	if _, ok := s.FirstCrossingBelow(1.0); ok {
		t.Error("phantom crossing")
	}
}

func TestResample(t *testing.T) {
	s := mkSeries([2]float64{0, 0}, [2]float64{10, 10})
	r, err := s.Resample(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("resampled to %d points", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		tt, v := r.At(i)
		if math.Abs(v-tt) > 1e-9 {
			t.Errorf("resample point (%g, %g) off the line", tt, v)
		}
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("zero period accepted")
	}
}

// TestResampleNoAccumulatedDrift is the regression test for the float
// accumulation bug: computing sample times by repeated `t += period`
// drifts by many ULPs over a long span, so resampling a multi-hour trace
// at a period with no exact binary representation produced sample times
// visibly off the grid (and could drop the final sample). Times must be
// exactly t0 + i·period.
func TestResampleNoAccumulatedDrift(t *testing.T) {
	s := NewSeries("v", "V")
	// Six simulated hours, sampled every 7 s.
	const span = 6 * 3600.0
	for tt := 0.0; tt <= span; tt += 7 {
		s.Append(tt, tt)
	}
	const period = 0.1 // no exact binary representation
	r, err := s.Resample(period)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Last()
	wantN := int(math.Floor((t1+period/2)/period)) + 1
	if r.Len() != wantN {
		t.Fatalf("resampled to %d points, want %d", r.Len(), wantN)
	}
	for i := 0; i < r.Len(); i += 1000 {
		tt, _ := r.At(i)
		if want := float64(i) * period; tt != want {
			t.Fatalf("sample %d at t=%.17g, want exactly %.17g (drift %g)", i, tt, want, tt-want)
		}
	}
	if last, _ := r.Last(); math.Abs(last-t1) > period {
		t.Errorf("final sample at t=%g, want ≈%g", last, t1)
	}
}

func TestAppendDedupe(t *testing.T) {
	s := NewSeries("v", "V")
	if !s.AppendDedupe(0, 1) {
		t.Error("first sample rejected")
	}
	if s.AppendDedupe(0, 1) {
		t.Error("exact duplicate accepted")
	}
	if !s.AppendDedupe(0, 2) {
		t.Error("same-time step change rejected")
	}
	if !s.AppendDedupe(1, 2) {
		t.Error("new-time sample rejected")
	}
	if s.Len() != 3 {
		t.Errorf("series holds %d samples, want 3", s.Len())
	}
	// Mean must reflect the deduped samples only.
	m, err := s.Mean()
	if err != nil || m != (1+2+2)/3.0 {
		t.Errorf("Mean = %g, %v", m, err)
	}
}

func TestDecimateKeepsEnds(t *testing.T) {
	s := NewSeries("x", "")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Decimate(4)
	ft, _ := d.First()
	lt, _ := d.Last()
	if ft != 0 || lt != 9 {
		t.Errorf("decimated span [%g, %g], want [0, 9]", ft, lt)
	}
	if d.Len() >= s.Len() {
		t.Error("decimation did not reduce")
	}
	if s.Decimate(0).Len() != s.Len() {
		t.Error("k<1 should keep everything")
	}
}

func TestSortAndClone(t *testing.T) {
	s := mkSeries([2]float64{3, 30}, [2]float64{1, 10}, [2]float64{2, 20})
	c := s.Clone()
	s.Sort()
	for i := 1; i < s.Len(); i++ {
		t0, _ := s.At(i - 1)
		t1, _ := s.At(i)
		if t1 < t0 {
			t.Fatal("not sorted")
		}
	}
	// Clone must be unaffected by the sort.
	if tt, _ := c.At(0); tt != 3 {
		t.Error("clone aliases original")
	}
}

func TestDuration(t *testing.T) {
	if mkSeries([2]float64{2, 0}, [2]float64{7, 0}).Duration() != 5 {
		t.Error("duration wrong")
	}
	if mkSeries([2]float64{2, 0}).Duration() != 0 {
		t.Error("single-sample duration should be 0")
	}
}

// TestQuickBandFractionBounded: the band fraction is always in [0,1].
func TestQuickBandFractionBounded(t *testing.T) {
	f := func(vals []float64, lo, hi float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSeries("q", "")
		for i, v := range vals {
			s.Append(float64(i), v)
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		fr, err := s.FractionWithinBand(lo, hi)
		return err == nil && fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestASCIIPlotAndSparkline(t *testing.T) {
	s := mkSeries([2]float64{0, 0}, [2]float64{1, 1}, [2]float64{2, 4}, [2]float64{3, 2})
	plot := ASCIIPlot(s, 20, 5)
	if !strings.Contains(plot, "*") {
		t.Error("plot contains no points")
	}
	if ASCIIPlot(NewSeries("e", ""), 20, 5) != "(empty)\n" {
		t.Error("empty plot rendering wrong")
	}
	sp := Sparkline(s, 8)
	if len([]rune(sp)) != 8 {
		t.Errorf("sparkline length %d, want 8", len([]rune(sp)))
	}
	if Sparkline(NewSeries("e", ""), 8) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestWriteCSV(t *testing.T) {
	a := mkSeries([2]float64{0, 1}, [2]float64{2, 3})
	b := NewSeries("other", "W")
	b.Append(1, 10)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + union of 3 distinct times
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "t,test[V],other[W]" {
		t.Errorf("header %q", lines[0])
	}
	if err := WriteCSV(&sb); err == nil {
		t.Error("no-series CSV accepted")
	}
}
