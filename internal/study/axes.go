package study

import (
	"fmt"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/scenario"
	"pnps/internal/sim"
)

// Typed level constructors: each returns a labelled Level for the
// common matrix dimensions, so axes read declaratively —
//
//	study.NewAxis("storage",
//		study.Storage("ideal 47mF", sim.IdealCap{Farads: 47e-3}),
//		study.Storage("supercap", sim.NewSupercap(bank)))
//
// Setter covers anything the typed constructors do not.

// Setter builds a level from an arbitrary spec mutation.
func Setter(label string, apply func(s *scenario.Spec)) Level {
	return Level{Label: label, Apply: apply}
}

// Storage builds a level selecting a storage model (storage-family axes).
func Storage(label string, st sim.Storage) Level {
	return Level{Label: label, Apply: func(s *scenario.Spec) { s.Storage = st }}
}

// Profile builds a level selecting an irradiance profile (weather axes).
func Profile(label string, p scenario.ProfileFunc) Level {
	return Level{Label: label, Apply: func(s *scenario.Spec) {
		s.Profile = p
		s.Source = nil
	}}
}

// FixedProfile builds a level from an already-realised profile whose
// irradiance does not depend on the seed.
func FixedProfile(label string, p pv.Profile) Level {
	return Profile(label, scenario.FixedProfile(p))
}

// Params builds a level running the power-neutral controller with the
// given parameters (controller-tuning axes).
func Params(label string, p core.Params) Level {
	return Level{Label: label, Apply: func(s *scenario.Spec) { s.Control = scenario.Controlled(p) }}
}

// Control builds a level selecting an arbitrary control scheme.
func Control(label string, c scenario.Control) Level {
	return Level{Label: label, Apply: func(s *scenario.Spec) { s.Control = c }}
}

// Governor builds a level running the named Linux cpufreq baseline; the
// label is the governor name.
func Governor(name string) Level {
	return Control(name, scenario.Governed(name))
}

// PowerNeutral builds a level running the paper's controller with its
// published default parameters, labelled "power-neutral" — the usual
// anchor of a control axis whose other levels are Governor baselines.
func PowerNeutral() Level {
	return Control("power-neutral", scenario.Controlled(core.DefaultParams()))
}

// Utilisation builds a level setting the offered workload load in
// [0, 1] (workload axes); 0 means fully loaded.
func Utilisation(u float64) Level {
	return Level{
		Label: fmt.Sprintf("util=%g", u),
		Apply: func(s *scenario.Spec) { s.Utilisation = u },
	}
}

// Duration builds a level setting the simulated span in seconds.
func Duration(seconds float64) Level {
	return Level{
		Label: fmt.Sprintf("%gs", seconds),
		Apply: func(s *scenario.Spec) { s.Duration = seconds },
	}
}
