package core

import (
	"math"
	"testing"
	"testing/quick"

	"pnps/internal/soc"
)

func TestParamsValidation(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Params)) Params {
		p := DefaultParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.VWidth = 0 }),
		mut(func(p *Params) { p.VQ = -0.01 }),
		mut(func(p *Params) { p.Alpha = 0 }),
		mut(func(p *Params) { p.Beta = p.Alpha / 2 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestPaperParameterSets(t *testing.T) {
	d := DefaultParams()
	if d.VWidth != 0.144 || d.VQ != 0.0479 || d.Alpha != 0.120 || d.Beta != 0.479 {
		t.Errorf("default params %+v do not match the paper's Section III values", d)
	}
	f6 := Fig6Params()
	if f6.VWidth != 0.2 || f6.VQ != 0.08 || f6.Alpha != 0.1 || f6.Beta != 0.12 {
		t.Errorf("Fig6 params %+v wrong", f6)
	}
	f11 := Fig11Params()
	if f11.VWidth != 0.335 || f11.VQ != 0.190 || f11.Alpha != 0.238 || f11.Beta != 0.633 {
		t.Errorf("Fig11 params %+v wrong", f11)
	}
}

func TestInitialThresholdCalibration(t *testing.T) {
	// Paper Eq. 1: Vhigh = Vc + Vwidth/2, Vlow = Vc − Vwidth/2.
	c, err := New(DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	vh, vl := c.Thresholds()
	if math.Abs(vh-5.372) > 1e-9 || math.Abs(vl-5.228) > 1e-9 {
		t.Errorf("thresholds (%.4f, %.4f), want (5.372, 5.228)", vh, vl)
	}
	if math.Abs((vh-vl)-0.144) > 1e-12 {
		t.Errorf("threshold width %.4f, want Vwidth", vh-vl)
	}
}

func TestNewValidation(t *testing.T) {
	bad := DefaultParams()
	bad.VQ = 0
	if _, err := New(bad, 5.3, soc.MinOPP(), 0); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := New(DefaultParams(), 5.3, soc.OPP{FreqIdx: -2}, 0); err == nil {
		t.Error("invalid OPP accepted")
	}
}

func TestThresholdsSlideDownOnLowCrossing(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MaxOPP(), 0)
	vh0, vl0 := c.Thresholds()
	d := c.OnCrossing(CrossLow, 10)
	vh1, vl1 := c.Thresholds()
	vq := c.Params().VQ
	if math.Abs(vh1-(vh0-vq)) > 1e-12 || math.Abs(vl1-(vl0-vq)) > 1e-12 {
		t.Errorf("thresholds did not slide down by Vq")
	}
	if d.VHigh != vh1 || d.VLow != vl1 {
		t.Error("decision thresholds disagree with controller state")
	}
	if vh1-vl1 != vh0-vl0 {
		t.Error("threshold width changed")
	}
}

func TestThresholdsSlideUpOnHighCrossing(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MinOPP(), 0)
	vh0, vl0 := c.Thresholds()
	c.OnCrossing(CrossHigh, 10)
	vh1, vl1 := c.Thresholds()
	vq := c.Params().VQ
	if math.Abs(vh1-(vh0+vq)) > 1e-12 || math.Abs(vl1-(vl0+vq)) > 1e-12 {
		t.Error("thresholds did not slide up by Vq")
	}
}

func TestDVFSAlwaysStepsOne(t *testing.T) {
	p := DefaultParams()
	// Slow crossing: only DVFS.
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossLow, 100, start) // τ=100 s → slope ≈ 0.0005 V/s
	if d.FreqDelta != -1 {
		t.Errorf("FreqDelta = %d, want -1", d.FreqDelta)
	}
	if d.BigDelta != 0 || d.LittleDelta != 0 {
		t.Errorf("slow slope toggled cores: %+v", d)
	}
	if d.Target.FreqIdx != 3 || d.Target.Config != start.Config {
		t.Errorf("target %v", d.Target)
	}
}

func TestModerateSlopeTogglesLittle(t *testing.T) {
	p := DefaultParams()
	// slope between α (0.120) and β (0.479): τ = VQ/0.2.
	tau := p.VQ / 0.2
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossLow, tau, start)
	if d.LittleDelta != -1 || d.BigDelta != 0 {
		t.Errorf("moderate slope: deltas big=%d little=%d, want little only", d.BigDelta, d.LittleDelta)
	}
	if d.Target.Config.Little != 3 {
		t.Errorf("target %v", d.Target)
	}
}

func TestSteepSlopeTogglesBig(t *testing.T) {
	p := DefaultParams()
	tau := p.VQ / 1.0 // slope 1.0 V/s > β
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossLow, tau, start)
	if d.BigDelta != -1 || d.LittleDelta != 0 {
		t.Errorf("steep slope (flowchart): big=%d little=%d, want big only", d.BigDelta, d.LittleDelta)
	}
}

func TestEq2SemanticsTogglesBoth(t *testing.T) {
	p := DefaultParams()
	p.Semantics = SemanticsEq2
	tau := p.VQ / 1.0
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossLow, tau, start)
	if d.BigDelta != -1 || d.LittleDelta != -1 {
		t.Errorf("Eq2 steep slope: big=%d little=%d, want both", d.BigDelta, d.LittleDelta)
	}
	if d.Target.Config != (soc.CoreConfig{Little: 3, Big: 1}) {
		t.Errorf("target %v", d.Target)
	}
}

func TestSteepRiseAddsBig(t *testing.T) {
	p := DefaultParams()
	tau := p.VQ / 1.0
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossHigh, tau, start)
	if d.FreqDelta != 1 || d.BigDelta != 1 {
		t.Errorf("steep rise: freq=%d big=%d", d.FreqDelta, d.BigDelta)
	}
}

func TestBigRemovalFallsBackToLittle(t *testing.T) {
	p := DefaultParams()
	tau := p.VQ / 1.0 // steep
	start := soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 3}}
	d := Response(p, CrossLow, tau, start)
	if d.BigDelta != 0 || d.LittleDelta != -1 {
		t.Errorf("no big online: big=%d little=%d, want LITTLE fallback", d.BigDelta, d.LittleDelta)
	}
}

func TestBigAdditionFallsBackToLittle(t *testing.T) {
	p := DefaultParams()
	tau := p.VQ / 1.0
	start := soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 3, Big: 4}}
	d := Response(p, CrossHigh, tau, start)
	if d.BigDelta != 0 || d.LittleDelta != 1 {
		t.Errorf("big cluster full: big=%d little=%d, want LITTLE fallback", d.BigDelta, d.LittleDelta)
	}
}

func TestLittleRemovalAtFloorFallsBackToBig(t *testing.T) {
	p := DefaultParams()
	tau := p.VQ / 0.2 // moderate → LITTLE preferred
	start := soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 1, Big: 2}}
	d := Response(p, CrossLow, tau, start)
	if d.LittleDelta != 0 || d.BigDelta != -1 {
		t.Errorf("LITTLE at floor: big=%d little=%d, want big fallback", d.BigDelta, d.LittleDelta)
	}
}

func TestBoundsNoChange(t *testing.T) {
	p := DefaultParams()
	// At MinOPP with a steep fall, nothing can be shed.
	d := Response(p, CrossLow, p.VQ/2.0, soc.MinOPP())
	if d.Target != soc.MinOPP() {
		t.Errorf("MinOPP low crossing moved to %v", d.Target)
	}
	// At MaxOPP with a steep rise, nothing can be added.
	d = Response(p, CrossHigh, p.VQ/2.0, soc.MaxOPP())
	if d.Target != soc.MaxOPP() {
		t.Errorf("MaxOPP high crossing moved to %v", d.Target)
	}
}

func TestZeroTauTreatedAsSteep(t *testing.T) {
	p := DefaultParams()
	start := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	d := Response(p, CrossLow, 0, start)
	if d.BigDelta != -1 {
		t.Errorf("zero tau should act as steepest slope, got %+v", d)
	}
	if math.IsNaN(d.Slope) || math.IsInf(d.Slope, 0) {
		t.Errorf("slope %g not finite", d.Slope)
	}
}

func TestSlopeEstimate(t *testing.T) {
	p := DefaultParams()
	d := Response(p, CrossLow, 2.0, soc.MaxOPP())
	if math.Abs(d.Slope-p.VQ/2.0) > 1e-12 {
		t.Errorf("slope = %g, want Vq/τ = %g", d.Slope, p.VQ/2.0)
	}
	if d.Tau != 2.0 {
		t.Errorf("tau = %g", d.Tau)
	}
}

func TestTauMeasuredBetweenCrossings(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MaxOPP(), 0)
	d1 := c.OnCrossing(CrossLow, 1.0)
	if d1.Tau != 1.0 {
		t.Errorf("first tau = %g, want 1.0 (since t0)", d1.Tau)
	}
	d2 := c.OnCrossing(CrossLow, 1.5)
	if d2.Tau != 0.5 {
		t.Errorf("second tau = %g, want 0.5", d2.Tau)
	}
}

func TestStatsCounting(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MaxOPP(), 0)
	c.OnCrossing(CrossLow, 0.01) // steep: freq + big
	c.OnCrossing(CrossLow, 10)   // slow: freq only
	c.OnCrossing(CrossHigh, 10.2)
	st := c.Stats()
	if st.Crossings != 3 || st.LowCrossings != 2 {
		t.Errorf("crossings %+v", st)
	}
	if st.FreqSteps != 3 {
		t.Errorf("freq steps %d, want 3", st.FreqSteps)
	}
	if st.BigToggles < 1 {
		t.Errorf("big toggles %d", st.BigToggles)
	}
}

func TestRecalibrate(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MinOPP(), 0)
	c.OnCrossing(CrossLow, 1)
	c.Recalibrate(4.8)
	vh, vl := c.Thresholds()
	if math.Abs(vh-4.872) > 1e-9 || math.Abs(vl-4.728) > 1e-9 {
		t.Errorf("recalibrated thresholds (%.4f, %.4f)", vh, vl)
	}
}

func TestSetOPPClamps(t *testing.T) {
	c, _ := New(DefaultParams(), 5.3, soc.MinOPP(), 0)
	c.SetOPP(soc.OPP{FreqIdx: 99, Config: soc.CoreConfig{Little: 9, Big: 9}})
	if !c.OPP().Valid() {
		t.Error("SetOPP stored invalid OPP")
	}
}

// TestQuickResponseInvariants property-tests the pure decision rule:
// whatever the inputs, the target stays valid, moves at most one step per
// dimension (flowchart), and moves in the crossing direction.
func TestQuickResponseInvariants(t *testing.T) {
	p := DefaultParams()
	f := func(tauRaw float64, fi, l, b uint8, highCross bool) bool {
		tau := math.Mod(math.Abs(tauRaw), 100)
		opp := soc.OPP{
			FreqIdx: int(fi % soc.NumFrequencyLevels),
			Config:  soc.CoreConfig{Little: 1 + int(l%4), Big: int(b % 5)},
		}
		which := CrossLow
		if highCross {
			which = CrossHigh
		}
		d := Response(p, which, tau, opp)
		if !d.Target.Valid() {
			return false
		}
		df := d.Target.FreqIdx - opp.FreqIdx
		dl := d.Target.Config.Little - opp.Config.Little
		db := d.Target.Config.Big - opp.Config.Big
		if abs(df) > 1 || abs(dl) > 1 || abs(db) > 1 {
			return false
		}
		// Flowchart semantics: at most one core dimension changes.
		if abs(dl)+abs(db) > 1 {
			return false
		}
		// Direction: low crossings never increase anything; high never
		// decrease.
		if which == CrossLow && (df > 0 || dl > 0 || db > 0) {
			return false
		}
		if which == CrossHigh && (df < 0 || dl < 0 || db < 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickEq2Invariants checks the Eq. 2 variant's own invariants: up to
// two core toggles, same direction discipline.
func TestQuickEq2Invariants(t *testing.T) {
	p := DefaultParams()
	p.Semantics = SemanticsEq2
	f := func(tauRaw float64, fi, l, b uint8, highCross bool) bool {
		tau := math.Mod(math.Abs(tauRaw), 100)
		opp := soc.OPP{
			FreqIdx: int(fi % soc.NumFrequencyLevels),
			Config:  soc.CoreConfig{Little: 1 + int(l%4), Big: int(b % 5)},
		}
		which := CrossLow
		if highCross {
			which = CrossHigh
		}
		d := Response(p, which, tau, opp)
		if !d.Target.Valid() {
			return false
		}
		if which == CrossLow && (d.FreqDelta > 0 || d.LittleDelta > 0 || d.BigDelta > 0) {
			return false
		}
		if which == CrossHigh && (d.FreqDelta < 0 || d.LittleDelta < 0 || d.BigDelta < 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCrossingString(t *testing.T) {
	if CrossLow.String() != "low" || CrossHigh.String() != "high" {
		t.Error("crossing strings wrong")
	}
	if SemanticsFlowchart.String() != "flowchart" || SemanticsEq2.String() != "eq2" {
		t.Error("semantics strings wrong")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
