// Command pnsweep runs the paper's Section III parameter-selection study:
// a grid search over the controller parameters (Vwidth, Vq, alpha, beta)
// scored by supply stability under shadowing stress.
//
// Usage:
//
//	pnsweep [-seed N] [-duration S] [-workers N] [-progress] [-scenario name] [-vwidth list] [-vq list] [-alpha list] [-beta list]
//	pnsweep -list
//
// Lists are comma-separated values in volts / volts-per-second. Grid
// points are independent simulations and are scored concurrently on
// -workers goroutines (default GOMAXPROCS); the output is identical for
// any worker count. -progress streams grid completion to stderr.
//
// -scenario selects the registered stress scenario each combination is
// scored on (default "stress-clouds"; -list shows the registry), so the
// same grid search runs against supercap or hybrid storage variants.
//
// The sweep runs on the study engine (internal/study): the grid is a
// one-axis parameter matrix scored trace-free on a shared-seed
// evaluation scenario, with output pinned bit-identical to the
// historical implementation. For multi-axis matrices (storage ×
// control × workload), sharded execution and resumable checkpoints,
// see the companion command pnstudy.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pnps/internal/experiments"
	"pnps/internal/scenario"
)

func parseList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		seed     = flag.Int64("seed", experiments.DefaultSeed, "scenario seed")
		duration = flag.Float64("duration", 240, "per-point scenario duration, seconds")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent grid-point evaluations")
		progress = flag.Bool("progress", false, "report grid progress on stderr")
		scn      = flag.String("scenario", "", "registered stress scenario to score on (default stress-clouds)")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		vwidth   = flag.String("vwidth", "", "comma-separated Vwidth grid, volts")
		vq       = flag.String("vq", "", "comma-separated Vq grid, volts")
		alpha    = flag.String("alpha", "", "comma-separated alpha grid, V/s")
		beta     = flag.String("beta", "", "comma-separated beta grid, V/s")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.List() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return
	}

	opts := experiments.SweepOptions{Seed: *seed, Duration: *duration, Workers: *workers, Scenario: *scn}
	if *progress {
		opts.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rpnsweep: %d/%d grid points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var err error
	if opts.VWidths, err = parseList(*vwidth); err != nil {
		fatal(err)
	}
	if opts.VQs, err = parseList(*vq); err != nil {
		fatal(err)
	}
	if opts.Alphas, err = parseList(*alpha); err != nil {
		fatal(err)
	}
	if opts.Betas, err = parseList(*beta); err != nil {
		fatal(err)
	}

	rep, err := experiments.ParamSweep(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnsweep:", err)
	os.Exit(1)
}
