package trace

import (
	"math"
	"testing"
)

func rampSeries(n int, slope float64) *Series {
	s := NewSeries("ramp", "V")
	for i := 0; i < n; i++ {
		t := float64(i)
		s.Append(t, slope*t)
	}
	return s
}

func TestDerivativeOfRamp(t *testing.T) {
	s := rampSeries(10, 2.5)
	d, err := s.Derivative()
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != s.Len() {
		t.Fatalf("derivative length %d", d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		_, v := d.At(i)
		if math.Abs(v-2.5) > 1e-12 {
			t.Errorf("slope[%d] = %g, want 2.5", i, v)
		}
	}
	if d.Unit != "V/s" {
		t.Errorf("unit %q", d.Unit)
	}
	single := NewSeries("x", "")
	single.Append(0, 1)
	if _, err := single.Derivative(); err == nil {
		t.Error("single-sample derivative accepted")
	}
}

func TestDerivativeOfParabola(t *testing.T) {
	s := NewSeries("p", "")
	for i := 0; i <= 20; i++ {
		t := float64(i) * 0.1
		s.Append(t, t*t)
	}
	d, err := s.Derivative()
	if err != nil {
		t.Fatal(err)
	}
	// Central differences are exact for quadratics at interior points.
	for i := 1; i < d.Len()-1; i++ {
		tt, v := d.At(i)
		if math.Abs(v-2*tt) > 1e-9 {
			t.Errorf("d/dt at %g = %g, want %g", tt, v, 2*tt)
		}
	}
}

func TestMovingAverageSmoothes(t *testing.T) {
	// Alternating ±1 at 1 Hz: a 4-second window should nearly cancel.
	s := NewSeries("sq", "")
	for i := 0; i < 40; i++ {
		v := 1.0
		if i%2 == 1 {
			v = -1.0
		}
		s.Append(float64(i), v)
	}
	sm, err := s.MovingAverage(4)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Len() != s.Len() {
		t.Fatalf("length %d", sm.Len())
	}
	_, v := sm.At(20)
	if math.Abs(v) > 0.25 {
		t.Errorf("smoothed mid value %g, want ≈0", v)
	}
	if _, err := s.MovingAverage(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMovingAverageConstantIsIdentity(t *testing.T) {
	s := NewSeries("c", "")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), 7)
	}
	sm, err := s.MovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sm.Len(); i++ {
		if _, v := sm.At(i); v != 7 {
			t.Fatalf("constant series changed: %g", v)
		}
	}
}

func TestRMS(t *testing.T) {
	// Constant 3 V: RMS 3.
	s := NewSeries("c", "V")
	s.Append(0, 3)
	s.Append(10, 3)
	r, err := s.RMS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3) > 1e-12 {
		t.Errorf("RMS %g, want 3", r)
	}
	// Square wave ±2: RMS 2.
	sq := NewSeries("sq", "V")
	for i := 0; i < 20; i++ {
		v := 2.0
		if i%2 == 1 {
			v = -2.0
		}
		sq.Append(float64(i), v)
	}
	r, err = sq.RMS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("square RMS %g, want 2", r)
	}
	if _, err := NewSeries("e", "").RMS(); err != ErrEmpty {
		t.Error("empty RMS should error")
	}
}

func TestDetrendedRipple(t *testing.T) {
	// 5 V with ±0.1 ripple: detrended RMS ≈ 0.1.
	s := NewSeries("v", "V")
	for i := 0; i < 100; i++ {
		v := 5.0 + 0.1
		if i%2 == 1 {
			v = 5.0 - 0.1
		}
		s.Append(float64(i), v)
	}
	d, err := s.Detrended()
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.RMS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.1) > 0.01 {
		t.Errorf("ripple RMS %g, want ≈0.1", r)
	}
}

func TestCrossingCount(t *testing.T) {
	s := NewSeries("x", "")
	for i, v := range []float64{0.5, 1.5, 0.5, 1.5, 1.6, 0.4} {
		s.Append(float64(i), v)
	}
	// Signs relative to 1.0: −,+,−,+,+,− → four sign changes.
	if c := s.CrossingCount(1.0); c != 4 {
		t.Errorf("crossings = %d, want 4", c)
	}
	if c := s.CrossingCount(99); c != 0 {
		t.Errorf("crossings above range = %d", c)
	}
	// Touching the level exactly does not count as a crossing.
	s2 := NewSeries("y", "")
	for i, v := range []float64{0, 1, 0, 1} {
		s2.Append(float64(i), v)
	}
	if c := s2.CrossingCount(1); c != 0 {
		t.Errorf("tangent crossings = %d, want 0", c)
	}
}
