package study

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"strconv"

	"pnps/internal/stats"
)

// Campaign export: per-run scalar outcomes as CSV (one row per run, for
// external plotting and post-hoc analysis) and the deterministic
// aggregate — overall summary, per-group summaries, the merged
// dwell-time voltage histogram — as JSON. Both work trace-free; neither
// needs KeepSeries.

// runsCSVHeader is the per-run CSV column set.
var runsCSVHeader = []string{"run", "seed", "group", "survived", "brownouts",
	"lifetime_s", "instructions", "final_vc_v", "min_vc_v", "stability_pct5",
	"storage_denergy_j"}

// WriteRunsCSV writes one CSV row of scalar outcomes per campaign run.
// Group labels are user-supplied strings, so rows go through
// encoding/csv (labels containing commas, quotes or newlines are
// escaped, not allowed to shift the columns).
func (o *Outcome) WriteRunsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(runsCSVHeader); err != nil {
		return err
	}
	g := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for i := range o.Results {
		r := &o.Results[i]
		res := r.Result
		if err := cw.Write([]string{
			strconv.Itoa(r.Index),
			strconv.FormatInt(r.Seed, 10),
			r.Group,
			strconv.FormatBool(!res.BrownedOut),
			strconv.Itoa(res.Brownouts),
			g(res.LifetimeSeconds),
			g(res.Instructions),
			g(res.FinalVC),
			g(res.VCEnvelope.Min),
			g(res.StabilityWithin(summaryBand)),
			g(res.StorageEnergyEndJ - res.StorageEnergyStartJ),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSummary mirrors stats.Summary with JSON-safe values (JSON has no
// NaN; missing measurements marshal as null).
type jsonSummary struct {
	N      int      `json:"n"`
	Min    *float64 `json:"min"`
	Max    *float64 `json:"max"`
	Mean   *float64 `json:"mean"`
	StdDev *float64 `json:"stddev"`
	P5     *float64 `json:"p5"`
	P25    *float64 `json:"p25"`
	Median *float64 `json:"median"`
	P75    *float64 `json:"p75"`
	P95    *float64 `json:"p95"`
}

func jsonNum(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func toJSONSummary(s stats.Summary) jsonSummary {
	return jsonSummary{
		N: s.N, Min: jsonNum(s.Min), Max: jsonNum(s.Max),
		Mean: jsonNum(s.Mean), StdDev: jsonNum(s.StdDev),
		P5: jsonNum(s.P5), P25: jsonNum(s.P25), Median: jsonNum(s.Median),
		P75: jsonNum(s.P75), P95: jsonNum(s.P95),
	}
}

type jsonAggregate struct {
	Runs                int         `json:"runs"`
	SurvivalRate        float64     `json:"survival_rate"`
	TotalBrownouts      int         `json:"total_brownouts"`
	Stability           jsonSummary `json:"stability_pct5"`
	Instructions        jsonSummary `json:"instructions"`
	LifetimeSeconds     jsonSummary `json:"lifetime_s"`
	FinalVC             jsonSummary `json:"final_vc_v"`
	MinVC               jsonSummary `json:"min_vc_v"`
	StorageEnergyDeltaJ jsonSummary `json:"storage_denergy_j"`
}

func toJSONAggregate(s Summary) jsonAggregate {
	return jsonAggregate{
		Runs: s.Runs, SurvivalRate: s.SurvivalRate, TotalBrownouts: s.TotalBrownouts,
		Stability:           toJSONSummary(s.Stability),
		Instructions:        toJSONSummary(s.Instructions),
		LifetimeSeconds:     toJSONSummary(s.LifetimeSeconds),
		FinalVC:             toJSONSummary(s.FinalVC),
		MinVC:               toJSONSummary(s.MinVC),
		StorageEnergyDeltaJ: toJSONSummary(s.StorageEnergyDeltaJ),
	}
}

type jsonGroup struct {
	Name string `json:"name"`
	jsonAggregate
}

type jsonHistogram struct {
	Lo       float64   `json:"lo"`
	Hi       float64   `json:"hi"`
	Bins     []float64 `json:"bins"`
	Under    float64   `json:"underflow"`
	Over     float64   `json:"overflow"`
	Total    float64   `json:"total"`
	MedianVC *float64  `json:"median,omitempty"`
}

type jsonOutcome struct {
	Summary     jsonAggregate  `json:"summary"`
	Groups      []jsonGroup    `json:"groups,omitempty"`
	VCHistogram *jsonHistogram `json:"vc_histogram,omitempty"`
}

// WriteSummaryJSON writes the campaign aggregate — overall summary,
// per-group summaries and the merged dwell-time voltage histogram when
// present — as indented JSON. NaN statistics (impossible for campaign
// outcomes, which always carry the online observers) marshal as null.
func (o *Outcome) WriteSummaryJSON(w io.Writer) error {
	doc := jsonOutcome{Summary: toJSONAggregate(o.Summary)}
	for _, g := range o.Groups {
		doc.Groups = append(doc.Groups, jsonGroup{Name: g.Name, jsonAggregate: toJSONAggregate(g.Summary)})
	}
	if h := o.VCHistogram; h != nil {
		jh := &jsonHistogram{
			Lo: h.Lo, Hi: h.Hi, Bins: h.Bins,
			Under: h.Underflow(), Over: h.Overflow(), Total: h.Total(),
		}
		if med, err := h.Quantile(0.5); err == nil {
			jh.MedianVC = jsonNum(med)
		}
		doc.VCHistogram = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
