package pv

import (
	"testing"
)

func TestVocFallsWithTemperature(t *testing.T) {
	arr := SouthamptonArray()
	cold, err := arr.AtTemperature(273.15) // 0 °C
	if err != nil {
		t.Fatal(err)
	}
	hot, err := arr.AtTemperature(333.15) // 60 °C
	if err != nil {
		t.Fatal(err)
	}
	vocCold, err := cold.OpenCircuitVoltage(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	vocHot, err := hot.OpenCircuitVoltage(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if vocHot >= vocCold {
		t.Fatalf("Voc must fall with temperature: %.3f V @0°C vs %.3f V @60°C", vocCold, vocHot)
	}
	// Classic silicon magnitude: ≈ −2 mV/K per cell, 11 cells, 60 K span
	// → roughly −1.0 to −1.7 V.
	drop := vocCold - vocHot
	if drop < 0.5 || drop > 2.5 {
		t.Errorf("Voc drop over 60 K = %.2f V, want ≈1.3 V", drop)
	}
}

func TestIscRisesSlightlyWithTemperature(t *testing.T) {
	arr := SouthamptonArray()
	hot, err := arr.AtTemperature(333.15)
	if err != nil {
		t.Fatal(err)
	}
	iCold, err := arr.ShortCircuitCurrent(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	iHot, err := hot.ShortCircuitCurrent(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if iHot <= iCold {
		t.Errorf("Isc should rise slightly with temperature: %.4f vs %.4f", iCold, iHot)
	}
	if rel := (iHot - iCold) / iCold; rel > 0.05 {
		t.Errorf("Isc rise %.1f%% over 35 K too large", rel*100)
	}
}

func TestPowerTemperatureCoefficient(t *testing.T) {
	arr := SouthamptonArray()
	coef, err := arr.PowerTemperatureCoefficient(refTempK)
	if err != nil {
		t.Fatal(err)
	}
	// Silicon: ≈ −0.3 to −0.5 %/K.
	if coef > -0.002 || coef < -0.007 {
		t.Errorf("power temperature coefficient %.4f /K, want ≈-0.004", coef)
	}
}

func TestAtTemperatureValidation(t *testing.T) {
	arr := SouthamptonArray()
	if _, err := arr.AtTemperature(0); err == nil {
		t.Error("zero kelvin accepted")
	}
	if _, err := arr.AtTemperature(-50); err == nil {
		t.Error("negative temperature accepted")
	}
}

func TestAtTemperatureIdentityAtReference(t *testing.T) {
	arr := SouthamptonArray()
	same, err := arr.AtTemperature(refTempK)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := arr.AvailablePower(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := same.AvailablePower(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if diff := pa - pb; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reference-temperature copy diverges: %g vs %g", pa, pb)
	}
}

func TestHotArrayStillSupportsTheBoard(t *testing.T) {
	// Sanity for summer deployments: at 60 °C cell temperature the array
	// must still deliver more than the board's minimum power.
	arr := SouthamptonArray()
	hot, err := arr.AtTemperature(333.15)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hot.AvailablePower(StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	if p < 3.0 {
		t.Errorf("hot-array MPP %.2f W implausibly low", p)
	}
}
