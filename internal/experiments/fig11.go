package experiments

import (
	"pnps/internal/core"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

// Fig11 regenerates the paper's Fig. 11: system response to a controlled
// variable voltage supply (a bench PSU, not the PV array), with
// deliberately large Vq and Vwidth for clarity of illustration. The
// figure's qualitative claims: minor fluctuations (point 'A') are handled
// by DVFS alone, while the sudden reduction at point 'B' also disables
// big and LITTLE cores — so core scaling is applied less often than
// frequency scaling.
func Fig11(seed int64) (*Report, error) {
	_ = seed // the supply sequence is deterministic; kept for API symmetry

	// Piecewise-linear setpoint sequence mimicking the paper's manual
	// supply drive over ~140 s: gentle ramps (A-type events) and one
	// sudden reduction (B).
	src, err := sim.NewVoltageSource(0.3,
		sim.VPoint{T: 0, V: 5.0},
		sim.VPoint{T: 10, V: 5.0},
		sim.VPoint{T: 20, V: 5.35}, // slow rise
		sim.VPoint{T: 30, V: 5.15}, // minor fluctuation (A)
		sim.VPoint{T: 38, V: 5.3},  // minor fluctuation (A)
		sim.VPoint{T: 48, V: 5.3},
		sim.VPoint{T: 60, V: 5.55}, // slow rise
		sim.VPoint{T: 70, V: 5.55},
		sim.VPoint{T: 71.5, V: 4.55}, // sudden reduction (B)
		sim.VPoint{T: 90, V: 4.55},
		sim.VPoint{T: 105, V: 5.1}, // recovery ramp
		sim.VPoint{T: 120, V: 5.5},
		sim.VPoint{T: 140, V: 5.45},
	)
	if err != nil {
		return nil, err
	}

	boot := soc.OPP{FreqIdx: 3, Config: soc.CoreConfig{Little: 4, Big: 1}}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, boot)
	ctrl, err := core.New(core.Fig11Params(), 5.0, boot, 0)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Source:      src,
		Capacitance: 47e-3,
		InitialVC:   5.0,
		Platform:    plat,
		Controller:  ctrl,
		Duration:    140,
		TargetVolts: 5.3,
	})
	if err != nil {
		return nil, err
	}

	st := res.ControllerStats
	coreToggles := st.BigToggles + st.LittleToggles

	r := &Report{
		ID:    "fig11",
		Title: "Response to a controlled variable supply",
		Description: "Bench-supply setpoint sequence with minor fluctuations (A) and one " +
			"sudden drop (B). DVFS should fire far more often than core hot-plugging.",
		Series: []*trace.Series{res.VC, res.FreqGHz, res.LittleCores, res.BigCores, res.TotalCores},
	}
	r.AddMetric("threshold interrupts", float64(res.Interrupts), "", "")
	r.AddMetric("DVFS steps", float64(st.FreqSteps), "", "")
	r.AddMetric("core toggles (big+LITTLE)", float64(coreToggles), "", "")
	if coreToggles > 0 {
		r.AddMetric("DVFS:hot-plug ratio", float64(st.FreqSteps)/float64(coreToggles), "x",
			"paper: core scaling applied less often than frequency scaling")
	}
	r.AddMetric("survived full test", b2f(!res.BrownedOut), "bool", "")
	r.Plots = append(r.Plots,
		trace.ASCIIPlot(res.VC, 72, 10),
		trace.ASCIIPlot(res.FreqGHz, 72, 8),
		trace.ASCIIPlot(res.TotalCores, 72, 8))
	return r, nil
}
