// Quickstart: run the power-neutral system for one simulated minute under
// full sun and print what the controller did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pnps"
)

func main() {
	// The harvesting source: the paper's 1340 cm² monocrystalline array.
	array := pnps.NewPVArray()

	// The load: a simulated ODROID-XU4 booted at its lowest operating
	// point (1 LITTLE core @ 200 MHz).
	platform := pnps.NewPlatform()
	platform.Reset(0, pnps.MinOPP())

	// The paper's controller with its published parameters, thresholds
	// calibrated around 5.3 V (the array's maximum power point).
	const startVolts = 5.3
	controller, err := pnps.NewController(pnps.DefaultControllerParams(), startVolts, pnps.MinOPP(), 0)
	if err != nil {
		log.Fatal(err)
	}

	// Couple them through the paper's 47 mF capacitor and simulate 60 s
	// of full sun.
	result, err := pnps.Simulate(pnps.SimConfig{
		Array:       array,
		Profile:     pnps.ConstantIrradiance(1000),
		Capacitance: 47e-3,
		InitialVC:   startVolts,
		Platform:    platform,
		Controller:  controller,
		Duration:    60,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Power-neutral quickstart (60 s, full sun)")
	fmt.Printf("  survived:              %v\n", !result.BrownedOut)
	fmt.Printf("  final OPP:             %v\n", platform.CommittedOPP())
	fmt.Printf("  final supply voltage:  %.3f V\n", result.FinalVC)
	fmt.Printf("  threshold interrupts:  %d\n", result.Interrupts)
	fmt.Printf("  DVFS steps:            %d\n", result.ControllerStats.FreqSteps)
	fmt.Printf("  core hot-plugs:        %d\n",
		result.ControllerStats.BigToggles+result.ControllerStats.LittleToggles)
	fmt.Printf("  instructions done:     %.1f billion\n", result.Instructions/1e9)
	fmt.Printf("  within 10%% of target:  %.1f%% of the time\n", result.StabilityWithin(0.10)*100)
}
