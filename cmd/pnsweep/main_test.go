package main

import (
	"reflect"
	"testing"
)

func TestParseList(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		in      string
		want    []float64
		wantErr bool
	}{
		{name: "empty means use defaults", in: "", want: nil},
		{name: "single value", in: "0.144", want: []float64{0.144}},
		{name: "multiple values", in: "0.1,0.2,0.3", want: []float64{0.1, 0.2, 0.3}},
		{name: "whitespace around elements", in: " 0.1 ,\t0.2 , 0.3", want: []float64{0.1, 0.2, 0.3}},
		{name: "scientific notation", in: "4.79e-2,1e0", want: []float64{0.0479, 1}},
		{name: "negative values parse", in: "-0.5,0.5", want: []float64{-0.5, 0.5}},
		{name: "bad element", in: "0.1,abc,0.3", wantErr: true},
		{name: "trailing comma is a bad element", in: "0.1,", wantErr: true},
		{name: "lone whitespace is a bad element", in: "  ", wantErr: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := parseList(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseList(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseList(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseList(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
