package mppt

import (
	"math"
	"testing"

	"pnps/internal/pv"
)

func trackers(t *testing.T) []Tracker {
	t.Helper()
	po, err := NewPerturbObserve(0.05, 1.0, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIncCond(0.05, 1.0, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	return []Tracker{po, ic}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPerturbObserve(0, 1, 6); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := NewPerturbObserve(0.1, 6, 1); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := NewIncCond(-1, 1, 6); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := NewIncCond(0.1, 3, 3); err == nil {
		t.Error("empty window accepted")
	}
}

func TestTrackersConvergeToMPP(t *testing.T) {
	arr := pv.SouthamptonArray()
	mpp, err := arr.MaximumPowerPoint(pv.StandardIrradiance)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trackers(t) {
		res, err := Track(tr, arr, pv.StandardIrradiance, 4.0, 400)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if res.Efficiency < 0.95 {
			t.Errorf("%s efficiency %.3f, want >0.95", tr.Name(), res.Efficiency)
		}
		if math.Abs(res.FinalV-mpp.V) > 0.15 {
			t.Errorf("%s settled at %.2f V, MPP is %.2f V", tr.Name(), res.FinalV, mpp.V)
		}
	}
}

func TestTrackersConvergeFromBothSides(t *testing.T) {
	arr := pv.SouthamptonArray()
	mpp, _ := arr.MaximumPowerPoint(pv.StandardIrradiance)
	for _, tr := range trackers(t) {
		for _, v0 := range []float64{2.0, 6.3} {
			res, err := Track(tr, arr, pv.StandardIrradiance, v0, 400)
			if err != nil {
				t.Fatalf("%s from %g: %v", tr.Name(), v0, err)
			}
			if math.Abs(res.FinalV-mpp.V) > 0.2 {
				t.Errorf("%s from %.1f V settled at %.2f V (MPP %.2f)",
					tr.Name(), v0, res.FinalV, mpp.V)
			}
		}
	}
}

func TestTrackersRespectWindow(t *testing.T) {
	arr := pv.SouthamptonArray()
	for _, tr := range trackers(t) {
		tr.Reset(4.0)
		v := 4.0
		for k := 0; k < 300; k++ {
			i, err := arr.CurrentAt(v, 700)
			if err != nil {
				t.Fatal(err)
			}
			v = tr.Step(v, i)
			if v < 1.0-1e-9 || v > 6.5+1e-9 {
				t.Fatalf("%s left the window: %.3f V", tr.Name(), v)
			}
		}
	}
}

func TestTrackLowIrradiance(t *testing.T) {
	arr := pv.SouthamptonArray()
	for _, tr := range trackers(t) {
		res, err := Track(tr, arr, 150, 4.0, 400)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if res.Efficiency < 0.90 {
			t.Errorf("%s low-light efficiency %.3f", tr.Name(), res.Efficiency)
		}
	}
}

func TestTrackValidation(t *testing.T) {
	arr := pv.SouthamptonArray()
	po, _ := NewPerturbObserve(0.05, 1, 6.5)
	if _, err := Track(po, arr, 1000, 4.0, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Track(po, arr, 0, 4.0, 100); err == nil {
		t.Error("dark array accepted")
	}
}

func TestPerturbObserveOscillatesAtMPP(t *testing.T) {
	// P&O's defining behaviour: it never settles — it hunts around the
	// MPP with its step size.
	arr := pv.SouthamptonArray()
	po, _ := NewPerturbObserve(0.05, 1, 6.5)
	po.Reset(5.3)
	v := 5.3
	seen := map[float64]bool{}
	for k := 0; k < 50; k++ {
		i, err := arr.CurrentAt(v, 1000)
		if err != nil {
			t.Fatal(err)
		}
		v = tround(po.Step(v, i))
		if k > 20 {
			seen[v] = true
		}
	}
	if len(seen) < 2 {
		t.Error("P&O settled exactly — should oscillate around the MPP")
	}
}

func tround(v float64) float64 { return math.Round(v*1e6) / 1e6 }
