package batch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func squareJobs(n int) []Func[int] {
	jobs := make([]Func[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	return jobs
}

func TestRunOrdersResults(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 2, 7, 64} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			out, err := Run(context.Background(), squareJobs(50), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestRunEmpty(t *testing.T) {
	t.Parallel()
	out, err := Run[int](context.Background(), nil, Options{Workers: 4})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestRunAggregatesErrorsInOrder(t *testing.T) {
	t.Parallel()
	jobs := make([]Func[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		}
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	// Index-ordered aggregation keeps the message deterministic across
	// worker counts and schedules.
	msg := err.Error()
	last := -1
	for _, frag := range []string{"job 0", "job 3", "job 6", "job 9"} {
		at := strings.Index(msg, frag)
		if at < 0 {
			t.Fatalf("error %q missing %q", msg, frag)
		}
		if at < last {
			t.Fatalf("error fragments out of order in %q", msg)
		}
		last = at
	}
	// Successful slots survive a partial failure.
	if out[1] != 1 || out[4] != 4 {
		t.Fatalf("successful results clobbered: %v", out)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	t.Parallel()
	jobs := []Func[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("kaboom") },
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "job 1 panicked: kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if out[0] != 1 {
		t.Fatal("healthy job result lost")
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := make([]Func[int], 8)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) { ran.Add(1); return 0, nil }
	}
	_, err := Run(ctx, jobs, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran.Load())
	}
}

func TestRunProgress(t *testing.T) {
	t.Parallel()
	// Callbacks are serialised and monotone, so plain ints suffice.
	var calls, lastDone, sawTotal int
	_, err := Run(context.Background(), squareJobs(20), Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			if done != lastDone+1 {
				t.Errorf("progress went %d -> %d, want monotone +1", lastDone, done)
			}
			calls++
			lastDone, sawTotal = done, total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 || lastDone != 20 || sawTotal != 20 {
		t.Fatalf("progress calls=%d last=%d/%d, want 20 ending 20/20", calls, lastDone, sawTotal)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	t.Parallel()
	items := []string{"a", "bb", "ccc", "dddd"}
	out, err := Map(context.Background(), items,
		func(_ context.Context, s string) (int, error) { return len(s), nil },
		Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{1, 2, 3, 4}) {
		t.Fatalf("Map out = %v", out)
	}
}

func TestSeedDeterministicAndDecorrelated(t *testing.T) {
	t.Parallel()
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := Seed(42, i)
		if s2 := Seed(42, i); s2 != s {
			t.Fatalf("Seed(42,%d) unstable: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed collision: indices %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("base seed ignored")
	}
}
