package experiments

import (
	"pnps/internal/monitor"
	"pnps/internal/soc"
)

// Fig15 regenerates the paper's Fig. 15 and Section V-D: the overheads of
// the proposed approach — the CPU time consumed by the interrupt-driven
// power-budgeting software (paper: 0.104% mean) and the power drawn by the
// external voltage-monitoring hardware (paper: 1.61 mW, under 0.82% of the
// minimum system power and 0.01%-order of the maximum).
func Fig15(seed int64) (*Report, error) {
	res, _, err := fig12Run(seed)
	if err != nil {
		return nil, err
	}

	pm := soc.DefaultPowerModel()
	mc := monitor.DefaultConfig()
	monPower := 2 * mc.PowerWatts

	r := &Report{
		ID:    "fig15",
		Title: "Overheads of the proposed approach",
		Description: "Interrupt-driven control: CPU usage of the power-budgeting software " +
			"and static power of the threshold-monitoring circuit.",
	}
	r.AddPaperMetric("controller CPU overhead", res.CPUOverhead*100, 0.104, "%",
		"ISR + SPI reprogramming time over the 6 h run")
	r.AddPaperMetric("monitor hardware power", monPower*1e3, 1.61, "mW", "two channels")
	r.AddPaperMetric("monitor power / min system power", monPower/pm.MinPower()*100, 0.82, "%", "")
	r.AddMetric("monitor power / max system power", monPower/pm.MaxPower()*100, "%",
		"paper: 0.01%-order")
	r.AddMetric("threshold interrupts over run", float64(res.Interrupts), "", "")
	r.AddMetric("interrupts per minute", float64(res.Interrupts)/(fig12Duration/60), "", "")
	return r, nil
}
