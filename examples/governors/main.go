// Governors: the paper's Table II experiment as an example — race the
// power-neutral controller against every default Linux cpufreq governor
// on the same harvested supply and see who survives the hour.
//
//	go run ./examples/governors
package main

import (
	"fmt"
	"log"

	"pnps"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

func main() {
	const (
		duration = 3600.0
		startV   = 5.3
		seed     = 42
	)
	// Moderate sun with light haze — deep shadows would kill even the
	// minimal OPP, so no scheme could survive.
	mkProfile := func() pnps.IrradianceProfile {
		return pv.NewClouds(pv.Constant(640), pv.CloudParams{
			Span: duration + 60, MeanGap: 300, MeanDuration: 60,
			MinTransmission: 0.72, MaxTransmission: 0.92, EdgeSeconds: 8,
		}, seed)
	}

	fmt.Println("60-minute governor shoot-out on a harvested supply")
	fmt.Printf("%-16s %-10s %-12s %s\n", "scheme", "lifetime", "instructions", "verdict")

	for _, name := range []string{"performance", "ondemand", "interactive", "conservative", "powersave"} {
		gov, err := pnps.LinuxGovernor(name)
		if err != nil {
			log.Fatal(err)
		}
		plat := pnps.NewPlatform()
		plat.Reset(0, pnps.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}})
		res, err := pnps.Simulate(pnps.SimConfig{
			Array: pnps.NewPVArray(), Profile: mkProfile(),
			Capacitance: 47e-3, InitialVC: startV,
			Platform: plat, Governor: gov, Duration: duration,
		})
		if err != nil {
			log.Fatal(err)
		}
		print1(name, res)
	}

	plat := pnps.NewPlatform()
	plat.Reset(0, pnps.MinOPP())
	ctrl, err := pnps.NewController(pnps.DefaultControllerParams(), startV, pnps.MinOPP(), 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pnps.Simulate(pnps.SimConfig{
		Array: pnps.NewPVArray(), Profile: mkProfile(),
		Capacitance: 47e-3, InitialVC: startV,
		Platform: plat, Controller: ctrl, Duration: duration,
	})
	if err != nil {
		log.Fatal(err)
	}
	print1("power-neutral", res)
}

func print1(name string, r *pnps.SimResult) {
	verdict := "browned out"
	if !r.BrownedOut {
		verdict = "survived"
	}
	fmt.Printf("%-16s %7.1fs  %9.1fG   %s\n",
		name, r.LifetimeSeconds, r.Instructions/1e9, verdict)
}
