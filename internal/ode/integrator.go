package ode

import (
	"fmt"
	"math"
)

// Integrator is a reusable adaptive RK23 (Bogacki–Shampine 3(2)) stepper.
// It owns every stage, error and event-localisation buffer the method
// needs, so repeated Integrate calls — the simulation engine performs tens
// of thousands of short per-segment integrations per run — do not allocate.
//
// The zero value is ready to use; buffers are sized lazily to the state
// dimension and event count of the first call and grown on demand. An
// Integrator is not safe for concurrent use; give each goroutine its own.
//
// The stepping core is factored into a resumable per-step state machine
// (segState plus the begin/attemptPrepare/stage*/settleStep methods):
// Integrate drives it to completion for one segment, and BatchIntegrator
// drives W of them in lockstep over structure-of-arrays stage slabs. Both
// paths execute the identical per-lane instruction sequence, so batched
// integration is bit-identical to scalar integration by construction.
type Integrator struct {
	k1, k2, k3, k4     []float64
	y1, y2, ytmp, errv []float64
	yPrev              []float64
	gPrev              []float64
	yc, ybis           []float64

	// Event-localisation scratch, reused across calls: candidate hits for
	// one step, the returned Hits slice, and a flat backing store for the
	// hits' Y snapshots.
	cand []candHit
	hits []EventHit
	hitY []float64
}

type candHit struct {
	idx int
	t   float64
}

// NewIntegrator returns an empty reusable stepper.
func NewIntegrator() *Integrator { return &Integrator{} }

// Reset drops the retained buffers, returning the integrator to its zero
// state. Calling it between runs is never required — Integrate re-sizes
// buffers automatically — but it releases memory after integrating a
// large system.
func (in *Integrator) Reset() { *in = Integrator{} }

// ensure sizes the stage buffers for an n-dimensional state with nev
// events, reusing existing capacity.
func (in *Integrator) ensure(n, nev int) {
	if cap(in.k1) < n {
		// Full slice expressions cap every view at its own n floats, so a
		// later larger-dimension call cannot reslice one view into its
		// neighbour's storage — growth is detected here and reallocates.
		buf := make([]float64, 11*n)
		in.bindBuffers(buf, n, 1, 0)
	} else {
		in.k1, in.k2, in.k3, in.k4 = in.k1[:n], in.k2[:n], in.k3[:n], in.k4[:n]
		in.y1, in.y2 = in.y1[:n], in.y2[:n]
		in.ytmp, in.errv = in.ytmp[:n], in.errv[:n]
		in.yPrev = in.yPrev[:n]
		in.yc, in.ybis = in.yc[:n], in.ybis[:n]
	}
	if cap(in.gPrev) < nev {
		in.gPrev = make([]float64, nev)
	} else {
		in.gPrev = in.gPrev[:nev]
	}
}

// bindBuffers carves this integrator's 11 stage views out of buf, which
// holds the same 11 buffers for `lanes` lanes in structure-of-arrays
// order: all lanes' k1 first, then all lanes' k2, and so on. Each view is
// capped at its own n floats so growth is detected by ensure. The scalar
// path binds a private buffer with lanes=1, lane=0; BatchIntegrator binds
// every lane into one shared slab so each stage's storage is contiguous
// across the batch.
func (in *Integrator) bindBuffers(buf []float64, n, lanes, lane int) {
	view := func(stage int) []float64 {
		off := (stage*lanes + lane) * n
		return buf[off : off+n : off+n]
	}
	in.k1, in.k2, in.k3, in.k4 = view(0), view(1), view(2), view(3)
	in.y1, in.y2 = view(4), view(5)
	in.ytmp, in.errv = view(6), view(7)
	in.yPrev = view(8)
	in.yc, in.ybis = view(9), view(10)
}

// segState is the in-flight state of one segment integration — everything
// the step loop carries between attempts. It is the unit the batched
// engine advances in lockstep: one segState per lane, each driven by the
// same methods the scalar Integrate loop uses.
type segState struct {
	f      RHS
	o      Options
	y      []float64
	t, t1  float64
	h      float64
	res    Result
	err    error
	done   bool
	// Per-attempt state set by attemptPrepare and consumed by settleStep.
	hs        float64
	truncated bool
	en        float64
}

// begin validates and initialises a segment: buffer sizing, event seeding,
// the initial OnStep callback and the FSAL seed evaluation — exactly the
// preamble of the historical Integrate.
func (in *Integrator) begin(s *segState, f RHS, t0, t1 float64, y []float64, opts Options) error {
	if err := validateSpan(t0, t1, y); err != nil {
		return err
	}
	o := opts.withDefaults(t1 - t0)
	in.ensure(len(y), len(o.Events))
	in.hits, in.hitY = in.hits[:0], in.hitY[:0]

	*s = segState{f: f, o: o, y: y, t: t0, t1: t1}
	s.res = Result{T: t0, Y: y}
	for i, ev := range o.Events {
		in.gPrev[i] = ev.G(t0, y)
	}
	if o.OnStep != nil {
		o.OnStep(t0, y)
	}
	s.h = clamp(o.InitialStep, o.MinStep, o.MaxStep)
	f(t0, y, in.k1) // FSAL seed
	return nil
}

// attemptPrepare starts one step attempt: it finishes the segment when the
// span is covered, enforces MaxSteps, and picks this attempt's step size
// (truncated to the span end without feeding back into h). It returns
// false when the segment is finished or failed.
func (in *Integrator) attemptPrepare(s *segState) bool {
	if s.done {
		return false
	}
	if !(s.t < s.t1) {
		s.res.LastStep = s.h
		s.done = true
		return false
	}
	if s.res.Steps >= s.o.MaxSteps {
		s.res.LastStep = s.h
		s.err = fmt.Errorf("ode: RK23 exceeded MaxSteps=%d at t=%g", s.o.MaxSteps, s.t)
		s.done = true
		return false
	}
	s.hs = s.h
	s.truncated = false
	if s.t+s.hs > s.t1 {
		s.hs = s.t1 - s.t
		s.truncated = true
	}
	return true
}

// stageK2 evaluates stage 2: k2 = f(t + hs/2, y + hs/2 k1).
func (in *Integrator) stageK2(s *segState) {
	axpy(in.ytmp, s.y, s.hs/2, in.k1)
	s.f(s.t+s.hs/2, in.ytmp, in.k2)
}

// stageK3 evaluates stage 3: k3 = f(t + 3hs/4, y + 3hs/4 k2).
func (in *Integrator) stageK3(s *segState) {
	axpy(in.ytmp, s.y, 3*s.hs/4, in.k2)
	s.f(s.t+3*s.hs/4, in.ytmp, in.k3)
}

// stageY1K4 forms the 3rd-order solution and evaluates the FSAL stage:
// y1 = y + hs(2/9 k1 + 1/3 k2 + 4/9 k3), k4 = f(t+hs, y1).
func (in *Integrator) stageY1K4(s *segState) {
	y, k1, k2, k3, y1 := s.y, in.k1, in.k2, in.k3, in.y1
	hs := s.hs
	for i := range y {
		y1[i] = y[i] + hs*(2.0/9.0*k1[i]+1.0/3.0*k2[i]+4.0/9.0*k3[i])
	}
	s.f(s.t+hs, y1, in.k4)
}

// stageErr forms the embedded 2nd-order solution and the scaled error
// norm: y2 = y + hs(7/24 k1 + 1/4 k2 + 1/3 k3 + 1/8 k4).
func (in *Integrator) stageErr(s *segState) {
	y, k1, k2, k3, k4 := s.y, in.k1, in.k2, in.k3, in.k4
	y1, y2, errv := in.y1, in.y2, in.errv
	hs := s.hs
	for i := range y {
		y2[i] = y[i] + hs*(7.0/24.0*k1[i]+1.0/4.0*k2[i]+1.0/3.0*k3[i]+1.0/8.0*k4[i])
		errv[i] = y1[i] - y2[i]
	}
	s.en = errNorm(errv, y, y1, s.o.ATol, s.o.RTol)
}

// settleStep finishes one attempt: reject-and-shrink (the lane retries on
// its next round), accept with event localisation, the OnStep callback,
// the FSAL carry and step-size growth. Semantics are the historical
// accept/reject tail of Integrate, verbatim.
func (in *Integrator) settleStep(s *segState) {
	o := &s.o
	if s.en > 1 {
		// Reject: shrink and retry, unless this attempt already ran at
		// the smallest permitted step. Only a step actually computed
		// with hs <= MinStep may be accepted here — committing y1 from
		// a larger trial step while advancing t by the shrunk step
		// would desynchronise state and time.
		s.res.Rejected++
		if s.hs > o.MinStep {
			s.h = math.Max(o.MinStep, s.hs*math.Max(0.1, 0.9*math.Pow(s.en, -1.0/3.0)))
			return
		}
		if s.en > 10 {
			s.res.LastStep = s.h
			s.err = fmt.Errorf("%w: t=%g h=%g en=%g y=%v k1=%v",
				ErrStepUnderflow, s.t, s.hs, s.en, s.y, in.k1)
			s.done = true
			return
		}
		// Marginal error at MinStep: accept rather than loop forever.
	}

	// Accept the step.
	copy(in.yPrev, s.y)
	tPrev := s.t
	copy(s.y, in.y1)
	s.t += s.hs
	s.res.Steps++
	s.res.T = s.t

	// Event localisation over [tPrev, t] using cubic Hermite dense
	// output built from (yPrev, k1) and (y, k4).
	stopped, err := in.handleEvents(&s.res, o.Events, in.gPrev, tPrev, s.t, in.yPrev, s.y, in.k1, in.k4)
	if err != nil {
		s.res.LastStep = s.h
		s.err = err
		s.done = true
		return
	}
	if stopped {
		s.res.Stopped = true
		s.res.LastStep = s.h
		if o.OnStep != nil {
			o.OnStep(s.res.T, s.y)
		}
		s.done = true
		return
	}

	if o.OnStep != nil {
		o.OnStep(s.t, s.y)
	}

	// FSAL: k4 becomes next step's k1.
	copy(in.k1, in.k4)
	// Grow step from the attempted size; a span-truncated final step
	// may only raise the suggestion, never shrink it.
	hGrown := o.MaxStep
	if s.en != 0 {
		hGrown = s.hs * math.Min(5, 0.9*math.Pow(s.en, -1.0/3.0))
	}
	if !s.truncated || hGrown > s.h {
		s.h = hGrown
	}
	s.h = clamp(s.h, o.MinStep, o.MaxStep)
}

// Integrate advances dy/dt = f(t,y) from t0 to t1 with the Bogacki–
// Shampine 3(2) embedded pair, adapting the step to the configured
// tolerances and localising any events in opts. y is updated in place and
// aliased by the returned Result. Semantics are identical to the RK23
// function (which delegates here); the integrator's buffers are reused
// across calls. Result.Hits — including each hit's Y snapshot — aliases
// reused storage and is only valid until the next Integrate or Reset on
// this Integrator; copy it to retain it.
func (in *Integrator) Integrate(f RHS, t0, t1 float64, y []float64, opts Options) (Result, error) {
	var s segState
	if err := in.begin(&s, f, t0, t1, y, opts); err != nil {
		return Result{}, err
	}
	for in.attemptPrepare(&s) {
		in.stageK2(&s)
		in.stageK3(&s)
		in.stageY1K4(&s)
		in.stageErr(&s)
		in.settleStep(&s)
	}
	return s.res, s.err
}

// handleEvents scans for sign changes of each event function across the
// accepted step and bisects the dense-output interpolant to localise them.
// If a terminal event fires, the state y is rewound to the event point.
func (in *Integrator) handleEvents(res *Result, events []Event, gPrev []float64, t0, t1 float64, y0, y1, f0, f1 []float64) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	hits := in.cand[:0]
	for i := range events {
		g1 := events[i].G(t1, y1)
		g0 := gPrev[i]
		crossed := false
		switch {
		case g0 == 0 && g1 == 0:
			// Sitting on the surface; no new crossing.
		case g0 <= 0 && g1 > 0 && events[i].Direction >= 0:
			crossed = true
		case g0 >= 0 && g1 < 0 && events[i].Direction <= 0:
			crossed = true
		}
		if crossed {
			tc := in.bisectEvent(events[i], t0, t1, y0, y1, f0, f1)
			hits = append(hits, candHit{i, tc})
		}
		gPrev[i] = g1
	}
	in.cand = hits
	if len(hits) == 0 {
		return false, nil
	}
	// Process hits in time order.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].t < hits[j-1].t; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	yc := in.yc
	for _, h := range hits {
		hermite(yc, t0, t1, h.t, y0, y1, f0, f1)
		// Snapshot the event state into the flat reused store; the Y
		// sub-slice stays valid until the next Integrate call.
		in.hitY = append(in.hitY, yc...)
		in.hits = append(in.hits, EventHit{
			Index: h.idx,
			Name:  events[h.idx].Name,
			T:     h.t,
			Y:     in.hitY[len(in.hitY)-len(yc):],
		})
		res.Hits = in.hits
		if events[h.idx].Terminal {
			// Rewind state to the event point.
			copy(y1, yc)
			res.T = h.t
			// Refresh gPrev for all events at the rewound state so a
			// subsequent integration restart is consistent.
			for i := range events {
				gPrev[i] = events[i].G(h.t, y1)
			}
			return true, nil
		}
	}
	return false, nil
}

// bisectEvent localises g=0 within [t0,t1] on the Hermite interpolant to
// ~1e-12 relative precision.
func (in *Integrator) bisectEvent(ev Event, t0, t1 float64, y0, y1, f0, f1 []float64) float64 {
	yc := in.ybis
	ga := ev.G(t0, y0)
	a, b := t0, t1
	for iter := 0; iter < 100 && (b-a) > 1e-12*math.Max(1, math.Abs(b)); iter++ {
		m := 0.5 * (a + b)
		hermite(yc, t0, t1, m, y0, y1, f0, f1)
		gm := ev.G(m, yc)
		if gm == 0 {
			return m
		}
		if (ga < 0) == (gm < 0) {
			a, ga = m, gm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b)
}
