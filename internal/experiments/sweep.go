package experiments

import (
	"context"
	"fmt"
	"sort"

	"pnps/internal/core"
	"pnps/internal/scenario"
	"pnps/internal/study"
)

// SweepPoint is one evaluated parameter combination.
type SweepPoint struct {
	Params    core.Params
	Stability float64 // fraction of time within ±5% of target
	Survived  bool
	MinVC     float64
	Instr     float64
}

// SweepOptions configures the parameter search of the paper's Section III.
type SweepOptions struct {
	// Grids for each parameter; zero-length grids get paper-bracketing
	// defaults.
	VWidths, VQs, Alphas, Betas []float64
	// Scenario names the registered stress scenario each combination is
	// scored on (default "stress-clouds"). Any registered PV scenario
	// works — including the supercap and hybrid storage variants.
	Scenario string
	// Duration of each evaluation scenario, seconds (default 240).
	Duration float64
	// Seed drives the shared evaluation scenario.
	Seed int64
	// Workers is the number of grid points scored concurrently; <= 0
	// selects GOMAXPROCS. Results are bit-identical for any value.
	Workers int
	// OnProgress, when non-nil, is called after each grid point is
	// scored with (completed, total).
	OnProgress func(completed, total int)
}

func (o *SweepOptions) withDefaults() {
	if len(o.VWidths) == 0 {
		o.VWidths = []float64{0.10, 0.144, 0.20, 0.28}
	}
	if len(o.VQs) == 0 {
		o.VQs = []float64{0.024, 0.0479, 0.080, 0.150}
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{0.06, 0.120, 0.24}
	}
	if len(o.Betas) == 0 {
		o.Betas = []float64{0.24, 0.479, 0.80}
	}
	if o.Scenario == "" {
		o.Scenario = "stress-clouds"
	}
	if o.Duration == 0 {
		o.Duration = 240
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
}

// enumerateGrid expands the (Vwidth, Vq, α, β) grid into the parameter
// sets to score, in canonical (nested-loop) order. Combinations with
// β < α are not meaningful and are skipped.
func enumerateGrid(opts SweepOptions) []core.Params {
	var grid []core.Params
	for _, vw := range opts.VWidths {
		for _, vq := range opts.VQs {
			for _, a := range opts.Alphas {
				for _, b := range opts.Betas {
					if b < a {
						continue
					}
					p := core.DefaultParams()
					p.VWidth, p.VQ, p.Alpha, p.Beta = vw, vq, a, b
					grid = append(grid, p)
				}
			}
		}
	}
	return grid
}

// RunSweep evaluates the grid and returns all points sorted by stability
// (survivors first). Grid points are scored concurrently on
// opts.Workers goroutines; the output is bit-identical for any worker
// count because each point is an independent simulation from a fixed
// seed and results are collected in grid order before the stable sort.
func RunSweep(opts SweepOptions) ([]SweepPoint, error) {
	return RunSweepContext(context.Background(), opts)
}

// paramLabel renders one grid point's canonical axis label. The grid
// index keeps labels unique even when option lists contain duplicate
// values (the legacy sweep scored duplicates twice; so does the study).
func paramLabel(i int, p core.Params) string {
	return fmt.Sprintf("g%d vw=%g vq=%g a=%g b=%g", i, p.VWidth, p.VQ, p.Alpha, p.Beta)
}

// sweepStudy assembles the one-axis Study the sweep runs on: the grid
// is a "params" axis over the shared evaluation scenario, every point
// scored on the identical stochastic realisation (SeedShared — the
// sweep holds the weather fixed and varies only the controller).
func sweepStudy(opts SweepOptions, grid []core.Params) (study.Study, error) {
	base, ok := scenario.Lookup(opts.Scenario)
	if !ok {
		return study.Study{}, fmt.Errorf("sweep: unknown scenario %q (known: %v)", opts.Scenario, scenario.Names())
	}
	base.Duration = opts.Duration
	levels := make([]study.Level, len(grid))
	for i, p := range grid {
		levels[i] = study.Params(paramLabel(i, p), p)
	}
	return study.Study{
		Name:     "param-sweep",
		Base:     base,
		Axes:     []study.Axis{study.NewAxis("params", levels...)},
		Seed:     opts.Seed,
		SeedMode: study.SeedShared,
		Workers:  opts.Workers, OnProgress: opts.OnProgress,
		// Fail fast: no result is returned on error, so there is no
		// point burning the remaining grid's compute.
		FailFast: true,
	}, nil
}

// RunSweepContext is RunSweep with cancellation: when ctx is cancelled,
// in-flight points finish but unstarted points are abandoned and the
// context error is returned. A failing grid point likewise cancels the
// rest of the batch (fail-fast) — no result is returned on error, so
// there is no point burning the remaining grid's compute.
//
// The sweep is a one-axis study under the hood (see internal/study):
// grid points are matrix cells, scored trace-free on the shared-seed
// evaluation scenario. The online stability band and supply envelope
// are bit-identical to the series analyses the sweep historically used,
// so the output is pinned exactly by TestRunSweepGoldenOnStudyEngine.
func RunSweepContext(ctx context.Context, opts SweepOptions) ([]SweepPoint, error) {
	opts.withDefaults()
	grid := enumerateGrid(opts)
	if len(grid) == 0 {
		// Every combination filtered out (β < α across the board): an
		// empty result, not a malformed study.
		return nil, nil
	}
	st, err := sweepStudy(opts, grid)
	if err != nil {
		return nil, err
	}
	out, err := st.Run(ctx)
	if err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, len(grid))
	for i, r := range out.Results {
		pts[i] = SweepPoint{
			Params:    grid[i],
			Stability: r.Metrics.Stability,
			Survived:  r.Metrics.Survived,
			MinVC:     r.Metrics.MinVC,
			Instr:     r.Metrics.Instructions,
		}
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Survived != pts[j].Survived {
			return pts[i].Survived
		}
		return pts[i].Stability > pts[j].Stability
	})
	return pts, nil
}

// ParamSweep regenerates the paper's Section III parameter-selection
// study: it scores (Vwidth, Vq, α, β) combinations by supply stability
// (proportion of time within 5% of the target voltage) on a shadowing
// stress scenario. The paper's best values: Vwidth=144 mV, Vq=47.9 mV,
// α=0.120 V/s, β=0.479 V/s.
func ParamSweep(opts SweepOptions) (*Report, error) {
	pts, err := RunSweep(opts)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	tab := Table{
		Title:  "Top parameter combinations by supply stability",
		Header: []string{"Vwidth (mV)", "Vq (mV)", "alpha (V/s)", "beta (V/s)", "within 5% (%)", "survived", "min Vc (V)"},
	}
	n := len(pts)
	if n > 12 {
		n = 12
	}
	for _, p := range pts[:n] {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", p.Params.VWidth*1e3),
			fmt.Sprintf("%.1f", p.Params.VQ*1e3),
			fmt.Sprintf("%.3f", p.Params.Alpha),
			fmt.Sprintf("%.3f", p.Params.Beta),
			fmt.Sprintf("%.1f", p.Stability*100),
			fmt.Sprintf("%v", p.Survived),
			fmt.Sprintf("%.2f", p.MinVC),
		})
	}
	best := pts[0]
	r := &Report{
		ID:    "sweep",
		Title: "Parameter selection by simulation (paper Section III)",
		Description: "Grid search over (Vwidth, Vq, alpha, beta) scored by the proportion of " +
			"time the supply stays within 5% of the target voltage under shadowing stress.",
		Tables: []Table{tab},
	}
	r.AddPaperMetric("best Vwidth", best.Params.VWidth*1e3, 144, "mV", "")
	r.AddPaperMetric("best Vq", best.Params.VQ*1e3, 47.9, "mV", "")
	r.AddPaperMetric("best alpha", best.Params.Alpha, 0.120, "V/s", "")
	r.AddPaperMetric("best beta", best.Params.Beta, 0.479, "V/s", "")
	r.AddMetric("best stability", best.Stability*100, "%", "")
	r.AddMetric("grid points evaluated", float64(len(pts)), "", "")
	return r, nil
}
