// Package pnps is a reproduction of "Power Neutral Performance Scaling
// for Energy Harvesting MP-SoCs" (Fletcher, Balsamo, Merrett — DATE 2017)
// as a reusable Go library.
//
// A power-neutral system couples an energy-harvesting source (here a
// photovoltaic array) directly to a heterogeneous multicore platform
// through a tiny buffer capacitor — no battery, no supercapacitor bank.
// A controller watches the supply-node voltage through two sliding
// thresholds and continuously re-selects the platform's operating
// performance point (DVFS level + online big/LITTLE cores) so that the
// power consumed matches the power harvested instant by instant.
//
// This package is the facade over the implementation packages:
//
//   - internal/core      — the power-neutral controller (the paper's contribution)
//   - internal/pv        — single-diode PV array model + irradiance profiles
//   - internal/soc       — Exynos5422 big.LITTLE platform model
//   - internal/monitor   — threshold-interrupt hardware model
//   - internal/governor  — Linux cpufreq governor baselines
//   - internal/sim       — the ODE/discrete-event co-simulation engine
//   - internal/workload  — smallpt path tracer + load profiles
//   - internal/scenario  — declarative run specs + named registry
//   - internal/study     — cross-scenario matrices, campaigns, sharding
//   - internal/experiments — regeneration of every paper table/figure
//
// The type aliases below form the stable public API; see the examples/
// directory for end-to-end usage.
package pnps

import (
	"context"
	"io"

	"pnps/internal/batch"
	"pnps/internal/buffer"
	"pnps/internal/core"
	"pnps/internal/experiments"
	"pnps/internal/governor"
	"pnps/internal/pv"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/study"
)

// Controller types (the paper's contribution).
type (
	// ControllerParams are the tuning parameters of the power-neutral
	// scheme: threshold width/slide and the hot-plug slope thresholds.
	ControllerParams = core.Params
	// Controller is the runtime decision engine.
	Controller = core.Controller
	// ControllerStats summarises controller activity.
	ControllerStats = core.Stats
)

// Platform types.
type (
	// OPP is an operating performance point (frequency level + cores).
	OPP = soc.OPP
	// CoreConfig is a big.LITTLE online-core configuration.
	CoreConfig = soc.CoreConfig
	// Platform is the simulated ODROID-XU4 / Exynos5422 board.
	Platform = soc.Platform
)

// Harvesting types.
type (
	// PVArray is the single-diode photovoltaic array model.
	PVArray = pv.Array
	// IrradianceProfile yields irradiance (W/m²) over time.
	IrradianceProfile = pv.Profile
)

// Simulation types.
type (
	// SimConfig assembles one co-simulation run.
	SimConfig = sim.Config
	// SimResult carries traces and outcome metrics of a run.
	SimResult = sim.Result
	// Governor is a baseline cpufreq-style frequency governor.
	Governor = governor.Governor
)

// Observer types: the streaming observer pipeline. Observers receive
// one Sample per accepted integration step and discrete event and
// summarise a run online, so trace-free runs (SimConfig.SkipSeries)
// keep O(1) memory; series capture is itself just the engine's first
// observer.
type (
	// Observer receives the engine's sample stream.
	Observer = sim.Observer
	// Sample is one point of the observation stream.
	Sample = sim.Sample
	// Channel selects which Sample signal a generic observer watches.
	Channel = sim.Channel
	// Envelope is an online min/max/time-mean accumulator.
	Envelope = sim.Envelope
	// EnvelopeObserver accumulates an Envelope over one channel.
	EnvelopeObserver = sim.EnvelopeObserver
	// TimeInStateObserver accumulates a dwell-time histogram of one
	// channel (the trace-free Fig. 13 analysis).
	TimeInStateObserver = sim.TimeInStateObserver
)

// Observable channels.
const (
	ChanVC         = sim.ChanVC
	ChanPower      = sim.ChanPower
	ChanFreqGHz    = sim.ChanFreqGHz
	ChanTotalCores = sim.ChanTotalCores
	ChanAvailPower = sim.ChanAvailPower
)

// Storage types: pluggable supply-node buffers for the live ODE.
type (
	// Storage models the supply-node energy buffer (terminal voltage,
	// state derivative, energy accounting).
	Storage = sim.Storage
	// IdealCapacitor is the paper's lossless buffer capacitor.
	IdealCapacitor = sim.IdealCap
	// SupercapBank is a supercapacitor with ESR and leakage simulated in
	// the loop.
	SupercapBank = sim.Supercap
	// HybridBuffer is a small node capacitor backed by a large reservoir
	// behind a diode.
	HybridBuffer = sim.HybridCap
	// SupercapParams are the bank parameters (capacitance, ESR, leakage,
	// rating) shared with the offline sizing maths.
	SupercapParams = buffer.Supercap
)

// NewSupercapBank adapts a parameterised supercapacitor bank for the
// live simulation loop.
func NewSupercapBank(p SupercapParams) SupercapBank { return sim.NewSupercap(p) }

// Scenario and campaign types: the declarative run-assembly layer.
type (
	// Scenario declares one simulation run end to end (source, storage,
	// platform, control, workload, duration).
	Scenario = scenario.Spec
	// ScenarioControl selects a run's power-management scheme.
	ScenarioControl = scenario.Control
	// Campaign fans Monte-Carlo variations of a scenario across the
	// deterministic batch engine (the single-cell special case of a
	// Study).
	Campaign = study.Campaign
	// CampaignOutcome is a completed campaign: per-run results plus the
	// deterministic aggregate summary.
	CampaignOutcome = study.Outcome
	// CampaignSummary is the order-independent campaign aggregate.
	CampaignSummary = study.Summary
	// CampaignVariant perturbs the spec for one campaign run.
	CampaignVariant = study.Variant
	// CampaignGroup labels runs for per-variant grouped aggregation.
	CampaignGroup = study.GroupFunc
	// CampaignGroupSummary is one group's aggregate.
	CampaignGroupSummary = study.GroupSummary
)

// Study types: the declarative cross-scenario experiment surface. A
// Study crosses a base Scenario over typed axes (storage, weather,
// controller parameters, workload, arbitrary setters) into a
// deterministic matrix of labelled cells, each a seed-range of
// Monte-Carlo repetitions — with first-class sharding (RunShard),
// serialisable checkpoints and bit-identical aggregation at any worker
// or shard count.
type (
	// Study is a declarative cross-scenario experiment matrix.
	Study = study.Study
	// StudyAxis is one dimension of a study matrix.
	StudyAxis = study.Axis
	// StudyLevel is one labelled value of an axis.
	StudyLevel = study.Level
	// StudySeedMode selects how per-run seeds derive from the study seed.
	StudySeedMode = study.SeedMode
	// StudyOutcome is a completed study matrix: per-cell aggregates,
	// per-axis marginals and the overall summary, all with quantile
	// bands.
	StudyOutcome = study.StudyOutcome
	// StudyCell identifies one matrix point.
	StudyCell = study.Cell
	// StudyCellOutcome is one cell's aggregate.
	StudyCellOutcome = study.CellOutcome
	// StudyMarginal is one axis level's aggregate across all other axes.
	StudyMarginal = study.Marginal
	// StudyCheckpoint is the serialisable state of a sharded, resumed or
	// interrupted study.
	StudyCheckpoint = study.Checkpoint
	// StudyTaskRange is a half-open span of ledger task indices.
	StudyTaskRange = study.TaskRange
	// StudyRunMetrics are the scalar outcomes of one study run.
	StudyRunMetrics = study.RunMetrics
	// StudyQuantileBand is a five-point dwell-time quantile summary.
	StudyQuantileBand = study.QuantileBand
)

// Seed-derivation modes for studies.
const (
	// SeedPerTask gives every cell × repetition its own decorrelated
	// seed (independent realisations; the default).
	SeedPerTask = study.SeedPerTask
	// SeedPerRep reuses one seed per repetition across all cells
	// (common random numbers: paired cross-cell comparisons).
	SeedPerRep = study.SeedPerRep
	// SeedShared passes the study seed verbatim to every run (the
	// parameter-sweep convention).
	SeedShared = study.SeedShared
)

// NewStudyAxis builds a study axis from labelled levels.
func NewStudyAxis(name string, levels ...StudyLevel) StudyAxis {
	return study.NewAxis(name, levels...)
}

// StudyStorage builds an axis level selecting a storage model.
func StudyStorage(label string, st Storage) StudyLevel { return study.Storage(label, st) }

// StudyProfile builds an axis level selecting an irradiance profile.
func StudyProfile(label string, p scenario.ProfileFunc) StudyLevel {
	return study.Profile(label, p)
}

// StudyIrradiance builds an axis level from an already-realised
// profile whose irradiance does not depend on the seed.
func StudyIrradiance(label string, p IrradianceProfile) StudyLevel {
	return study.FixedProfile(label, p)
}

// StudyParams builds an axis level running the power-neutral controller
// with the given parameters.
func StudyParams(label string, p ControllerParams) StudyLevel { return study.Params(label, p) }

// StudyControl builds an axis level selecting an arbitrary control
// scheme.
func StudyControl(label string, c ScenarioControl) StudyLevel { return study.Control(label, c) }

// StudyGovernor builds an axis level running the named Linux cpufreq
// baseline.
func StudyGovernor(name string) StudyLevel { return study.Governor(name) }

// StudyPowerNeutral builds the "power-neutral" anchor level of a
// control axis: the paper's controller with its published defaults.
func StudyPowerNeutral() StudyLevel { return study.PowerNeutral() }

// StudyUtilisation builds an axis level setting the offered workload
// load in [0, 1].
func StudyUtilisation(u float64) StudyLevel { return study.Utilisation(u) }

// StudySetter builds an axis level from an arbitrary scenario mutation.
func StudySetter(label string, apply func(s *Scenario)) StudyLevel {
	return study.Setter(label, apply)
}

// MergeStudyCheckpoints unions shard checkpoints into one; feed the
// result to Study.Outcome once complete.
func MergeStudyCheckpoints(cps ...*StudyCheckpoint) (*StudyCheckpoint, error) {
	return study.MergeCheckpoints(cps...)
}

// ReadStudyCheckpoint deserialises a checkpoint written by
// StudyCheckpoint.WriteJSON.
func ReadStudyCheckpoint(r io.Reader) (*StudyCheckpoint, error) {
	return study.ReadCheckpoint(r)
}

// RegisterScenario adds a named scenario to the shared registry.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// LookupScenario returns a registered scenario by name; mutating the
// returned copy never affects the registry.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// ScenarioNames lists the registered scenario names in sorted order.
func ScenarioNames() []string { return scenario.Names() }

// Scenarios returns every registered scenario sorted by name.
func Scenarios() []Scenario { return scenario.List() }

// RunScenario assembles and executes a registered scenario with the
// given seed.
func RunScenario(name string, seed int64) (*SimResult, error) {
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, &UnknownScenarioError{Name: name}
	}
	return s.Run(seed)
}

// UnknownScenarioError reports a scenario name missing from the registry.
type UnknownScenarioError struct{ Name string }

func (e *UnknownScenarioError) Error() string {
	return "pnps: unknown scenario \"" + e.Name + "\""
}

// FixedIrradiance adapts an already-built profile for scenarios whose
// irradiance does not vary with the seed.
func FixedIrradiance(p IrradianceProfile) scenario.ProfileFunc {
	return scenario.FixedProfile(p)
}

// ControlledBy returns a power-neutral scenario control with explicit
// parameters; the Scenario zero value already selects the defaults.
func ControlledBy(p ControllerParams) ScenarioControl { return scenario.Controlled(p) }

// Uncontrolled returns a static (no runtime control) scenario control.
func Uncontrolled() ScenarioControl { return scenario.Uncontrolled() }

// GovernedBy returns a Linux-governor scenario control by cpufreq name.
func GovernedBy(name string) ScenarioControl { return scenario.Governed(name) }

// MinScenarioCapacitance binary-searches the smallest buffer (in farads,
// within [lo, hi] to relTol) of the given storage family that keeps the
// scenario alive.
func MinScenarioCapacitance(s Scenario, seed int64, mk func(farads float64) Storage, lo, hi, relTol float64) (float64, error) {
	return scenario.MinCapacitance(s, seed, mk, lo, hi, relTol)
}

// DefaultControllerParams returns the paper's simulation-optimised
// parameters (Section III): Vwidth=144 mV, Vq=47.9 mV, α=0.120 V/s,
// β=0.479 V/s.
func DefaultControllerParams() ControllerParams { return core.DefaultParams() }

// NewController builds a power-neutral controller with thresholds
// calibrated around the initial supply voltage (paper Eq. 1).
func NewController(p ControllerParams, initialVC float64, boot OPP, t0 float64) (*Controller, error) {
	return core.New(p, initialVC, boot, t0)
}

// NewPlatform returns the calibrated Exynos5422 platform model.
func NewPlatform() *Platform { return soc.NewDefaultPlatform() }

// NewPVArray returns the paper's 1340 cm² monocrystalline array model
// (MPP ≈ 5.5 W at ≈ 5.3 V under full sun).
func NewPVArray() *PVArray { return pv.SouthamptonArray() }

// MinOPP returns the platform's lowest operating point (1×A7 @ 200 MHz).
func MinOPP() OPP { return soc.MinOPP() }

// MaxOPP returns the platform's highest operating point (4×A7+4×A15 @
// 1.4 GHz).
func MaxOPP() OPP { return soc.MaxOPP() }

// Simulate executes a co-simulation run.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// LinuxGovernor returns a baseline governor by cpufreq name: performance,
// powersave, ondemand, conservative or interactive.
func LinuxGovernor(name string) (Governor, error) { return governor.ByName(name) }

// ConstantIrradiance returns a fixed-irradiance profile (W/m²); 1000 is
// full sun.
func ConstantIrradiance(wm2 float64) IrradianceProfile { return pv.Constant(wm2) }

// SolarDayProfile returns a 24 h clear-sky diurnal envelope (6:00 sunrise,
// 20:00 sunset, 1000 W/m² peak).
func SolarDayProfile() IrradianceProfile { return pv.StandardDay() }

// WithPartialClouds overlays deterministic (seeded) cloud shadowing on a
// base profile over the given span in seconds.
func WithPartialClouds(base IrradianceProfile, span float64, seed int64) IrradianceProfile {
	return pv.NewClouds(base, pv.PartialSun(span), seed)
}

// ShadowEvent returns full sun interrupted by one smooth shadow of the
// given depth (0..1) between start and start+duration seconds.
func ShadowEvent(depth, start, duration float64) IrradianceProfile {
	return pv.Shadow{Base: pv.StandardIrradiance, Depth: depth, Start: start,
		Duration: duration, Edge: 0.4}
}

// Experiment and batch-execution types.
type (
	// ExperimentReport is the output of one paper table/figure
	// regeneration.
	ExperimentReport = experiments.Report
	// RunAllOptions configures a parallel run of registered experiments.
	RunAllOptions = experiments.RunAllOptions
	// SweepOptions configures the Section III parameter grid search.
	SweepOptions = experiments.SweepOptions
	// SweepPoint is one scored parameter combination of the grid search.
	SweepPoint = experiments.SweepPoint
	// BatchOptions tunes the worker-pool batch engine (worker count,
	// progress callback).
	BatchOptions = batch.Options
)

// RunExperiment regenerates a paper table/figure by id (e.g. "fig12",
// "table2"); ExperimentIDs lists the available ids.
func RunExperiment(id string, seed int64) (*experiments.Report, error) {
	return experiments.Run(id, seed)
}

// RunAllExperiments executes independent experiments concurrently on a
// worker pool, returning reports in id order; see
// experiments.RunAllOptions for worker count, seed and progress control.
func RunAllExperiments(ctx context.Context, opts RunAllOptions) ([]*ExperimentReport, error) {
	return experiments.RunAll(ctx, opts)
}

// RunParamSweep scores the (Vwidth, Vq, α, β) grid concurrently and
// returns all points sorted by supply stability (survivors first). The
// result is bit-identical for any SweepOptions.Workers value.
func RunParamSweep(ctx context.Context, opts SweepOptions) ([]SweepPoint, error) {
	return experiments.RunSweepContext(ctx, opts)
}

// BatchMap runs fn over items on a worker pool with deterministic,
// input-ordered results — the execution engine underneath the sweep and
// RunAllExperiments, exposed for custom simulation campaigns.
func BatchMap[In, Out any](ctx context.Context, items []In, fn func(ctx context.Context, item In) (Out, error), opts BatchOptions) ([]Out, error) {
	return batch.Map(ctx, items, fn, opts)
}

// BatchSeed derives a decorrelated, reproducible per-job seed from a
// base seed and job index (for Monte-Carlo style batches).
func BatchSeed(base int64, index int) int64 { return batch.Seed(base, index) }

// ExperimentIDs lists the registered experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
