package experiments

import (
	"fmt"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

// AblationSemantics compares the two readings of the paper's hot-plug
// decision rule — the Fig. 5 flowchart (exclusive: big-core test first)
// versus Eq. 2 taken literally (a steep slope toggles a big AND a LITTLE
// core) — on the shadowing stress scenario.
func AblationSemantics(seed int64) (*Report, error) {
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, err
	}
	const duration = 240.0
	profile := pv.StressClouds(seed, duration)

	tab := Table{
		Title:  "Hot-plug semantics ablation (shadowing stress, 240 s)",
		Header: []string{"semantics", "within 5% (%)", "survived", "instructions (G)", "core toggles"},
	}
	type outcome struct {
		stability float64
		survived  bool
	}
	results := map[core.HotplugSemantics]outcome{}
	for _, sem := range []core.HotplugSemantics{core.SemanticsFlowchart, core.SemanticsEq2} {
		p := core.DefaultParams()
		p.Semantics = sem
		res, err := controllerRun(p, profile, duration, 47e-3, mpp.V, soc.MinOPP())
		if err != nil {
			return nil, err
		}
		st := res.ControllerStats
		tab.Rows = append(tab.Rows, []string{
			sem.String(),
			fmt.Sprintf("%.1f", res.StabilityWithin(0.05)*100),
			fmt.Sprintf("%v", !res.BrownedOut),
			fmtGiga(res.Instructions),
			fmt.Sprintf("%d", st.BigToggles+st.LittleToggles),
		})
		results[sem] = outcome{res.StabilityWithin(0.05), !res.BrownedOut}
	}

	r := &Report{
		ID:    "ablation-semantics",
		Title: "Flowchart vs Eq. 2 hot-plug semantics",
		Description: "The Fig. 5 flowchart toggles at most one core per crossing; Eq. 2 read " +
			"literally toggles two on steep slopes, shedding/adding capacity twice as fast.",
		Tables: []Table{tab},
	}
	r.AddMetric("flowchart stability", results[core.SemanticsFlowchart].stability*100, "%", "")
	r.AddMetric("eq2 stability", results[core.SemanticsEq2].stability*100, "%", "")
	return r, nil
}

// AblationOrder compares the paper's selected core-first transition
// sequencing against frequency-first (Table I scenarios (b) vs (a)) in the
// closed loop: the slower order spends more charge per downward transition
// and so dips deeper during shadows.
func AblationOrder(seed int64) (*Report, error) {
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, err
	}
	const duration = 240.0
	profile := pv.StressClouds(seed, duration)

	tab := Table{
		Title:  "Transition-order ablation (shadowing stress, 240 s)",
		Header: []string{"order", "within 5% (%)", "min Vc (V)", "survived", "instructions (G)"},
	}
	minVs := map[soc.TransitionOrder]float64{}
	for _, ord := range []soc.TransitionOrder{soc.CoreFirst, soc.FreqFirst} {
		p := core.DefaultParams()
		p.Order = ord
		res, err := controllerRun(p, profile, duration, 47e-3, mpp.V, soc.MinOPP())
		if err != nil {
			return nil, err
		}
		minV, _ := res.VC.Min()
		minVs[ord] = minV
		tab.Rows = append(tab.Rows, []string{
			ord.String(),
			fmt.Sprintf("%.1f", res.StabilityWithin(0.05)*100),
			fmt.Sprintf("%.3f", minV),
			fmt.Sprintf("%v", !res.BrownedOut),
			fmtGiga(res.Instructions),
		})
	}

	r := &Report{
		ID:    "ablation-order",
		Title: "Core-first vs frequency-first transition sequencing",
		Description: "The paper selects core-first from Table I; in the closed loop it should " +
			"hold the supply at least as high through shadows.",
		Tables: []Table{tab},
	}
	r.AddMetric("min Vc, core-first", minVs[soc.CoreFirst], "V", "")
	r.AddMetric("min Vc, frequency-first", minVs[soc.FreqFirst], "V", "")
	return r, nil
}
