package pnps

import (
	"context"
	"strings"
	"testing"

	"pnps/internal/soc"
)

// TestFacadeEndToEnd drives the whole stack through the public API only —
// the same path the examples use.
func TestFacadeEndToEnd(t *testing.T) {
	platform := NewPlatform()
	platform.Reset(0, MinOPP())
	controller, err := NewController(DefaultControllerParams(), 5.3, MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	result, err := Simulate(SimConfig{
		Array:       NewPVArray(),
		Profile:     ConstantIrradiance(1000),
		Capacitance: 47e-3,
		InitialVC:   5.3,
		Platform:    platform,
		Controller:  controller,
		Duration:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if result.BrownedOut {
		t.Error("facade run browned out under full sun")
	}
	if result.Instructions <= 0 {
		t.Error("no work done")
	}
}

func TestFacadeProfiles(t *testing.T) {
	if ConstantIrradiance(700).Irradiance(5) != 700 {
		t.Error("ConstantIrradiance wrong")
	}
	day := SolarDayProfile()
	if day.Irradiance(13*3600) <= 0 {
		t.Error("SolarDayProfile dark at noon")
	}
	cloudy := WithPartialClouds(day, 24*3600, 5)
	if cloudy.Irradiance(13*3600) < 0 {
		t.Error("cloudy profile negative")
	}
	sh := ShadowEvent(0.5, 10, 5)
	if sh.Irradiance(12) >= sh.Irradiance(0) {
		t.Error("shadow event does not attenuate")
	}
}

func TestFacadeGovernors(t *testing.T) {
	g, err := LinuxGovernor("powersave")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "powersave" {
		t.Error("governor name wrong")
	}
	if _, err := LinuxGovernor("bogus"); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestFacadeBounds(t *testing.T) {
	if MinOPP().Config.TotalCores() != 1 || MaxOPP().Config.TotalCores() != 8 {
		t.Error("OPP bounds wrong")
	}
	if MinOPP() != soc.MinOPP() {
		t.Error("facade MinOPP diverged from soc")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	rep, err := RunExperiment("fig4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig4" {
		t.Error("wrong report")
	}
	if _, err := RunExperiment("missing", 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFacadeBatch(t *testing.T) {
	ctx := context.Background()

	reps, err := RunAllExperiments(ctx, RunAllOptions{IDs: []string{"fig4", "fig10"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].ID != "fig4" || reps[1].ID != "fig10" {
		t.Error("RunAllExperiments ordering broken")
	}

	out, err := BatchMap(ctx, []int{1, 2, 3, 4},
		func(_ context.Context, n int) (string, error) { return strings.Repeat("x", n), nil },
		BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if len(s) != i+1 {
			t.Fatalf("BatchMap out[%d] = %q", i, s)
		}
	}

	if BatchSeed(7, 0) == BatchSeed(7, 1) || BatchSeed(7, 0) != BatchSeed(7, 0) {
		t.Error("BatchSeed not decorrelated/deterministic")
	}

	pts, err := RunParamSweep(ctx, SweepOptions{
		VWidths: []float64{0.144}, VQs: []float64{0.0479},
		Alphas: []float64{0.12}, Betas: []float64{0.479},
		Duration: 10, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Params.VWidth != 0.144 {
		t.Errorf("RunParamSweep points: %+v", pts)
	}
}
