// Package sim is the co-simulation engine that closes the loop of the
// paper's Fig. 8: a PV array charges a small buffer capacitor whose
// voltage node also supplies the MP-SoC board; the supply node is
// integrated as an ODE (the same topology the authors modelled in
// Simulink) while the platform, the threshold-monitor hardware and the
// control software evolve as discrete events.
//
// Continuous part:
//
//	C · dVc/dt = Ipv(Vc, G(t)) − Iboard(Vc) − Imonitor(Vc)
//
// Discrete part: threshold-crossing interrupts (power-neutral controller),
// periodic sampling ticks (Linux governors), OPP-transition completions,
// brownout and optional restart.
package sim

import (
	"errors"
	"fmt"
	"math"

	"pnps/internal/core"
	"pnps/internal/governor"
	"pnps/internal/monitor"
	"pnps/internal/ode"
	"pnps/internal/pv"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

// Config assembles one simulation run. Exactly one of Controller or
// Governor must be set; a nil pair simulates a static (uncontrolled)
// platform, which is how the paper's "without control" baselines run.
type Config struct {
	// Source supplies the node current. If nil, a PVSource is assembled
	// from Array and Profile (the common case).
	Source Source
	// Array is the PV source model (used when Source is nil).
	Array *pv.Array
	// Profile drives irradiance over time (used when Source is nil).
	Profile pv.Profile
	// Storage is the supply-node energy buffer. If nil, an IdealCap of
	// Capacitance farads is used (the historical behaviour). Set at most
	// one of Storage and Capacitance.
	Storage Storage
	// Capacitance is the buffer capacitor in farads (paper: 47 mF);
	// shorthand for Storage = IdealCap{Farads: Capacitance}.
	Capacitance float64
	// InitialVC is the buffer's terminal voltage at t=0, volts (the
	// storage is initialised at rest from it).
	InitialVC float64
	// Platform is the simulated board. Its boot OPP is taken as already
	// set by the caller via Reset.
	Platform *soc.Platform

	// Controller, when non-nil, runs the paper's power-neutral scheme.
	Controller *core.Controller
	// MonitorConfig configures the threshold interrupt hardware used by
	// the controller (ignored in governor/static runs). Zero value means
	// monitor.DefaultConfig().
	MonitorConfig monitor.Config
	// Governor, when non-nil, runs a Linux cpufreq baseline.
	Governor governor.Governor

	// Duration is the simulated time span, seconds.
	Duration float64
	// MaxStep bounds the ODE step so irradiance transients are resolved
	// (default 0.25 s).
	MaxStep float64
	// BrownoutRestart re-boots the platform when Vc recovers above
	// RestartVolts after a brownout. Default false: the board stays dead,
	// matching the paper's Table II lifetime accounting.
	BrownoutRestart bool
	// RestartVolts is the recovery threshold (default 4.6 V).
	RestartVolts float64
	// RebootSeconds is how long a restart takes before work resumes
	// (default 8 s, an ODROID Linux boot).
	RebootSeconds float64
	// RestartCooldown is the minimum off-time after a brownout before a
	// restart is attempted — a supervisor back-off that prevents dawn/dusk
	// boot loops (default 0: restart as soon as the supply recovers).
	RestartCooldown float64

	// TargetVolts is the nominal supply target used for stability metrics
	// (default: the array's MPP voltage at standard irradiance).
	TargetVolts float64
	// AvailSamplePeriod is the sampling period of the available-power
	// estimate trace (default 5 s; MPP solves are relatively costly).
	AvailSamplePeriod float64
	// RecordSeries enables time-series capture (default true via
	// NewConfig-style literal use; set SkipSeries to disable).
	SkipSeries bool

	// Observers receive the engine's sample stream (one Sample per
	// accepted integration step and discrete event). Online observers
	// summarise a run without retaining traces; series capture itself
	// runs as the first observer when SkipSeries is false.
	Observers []Observer
	// StabilityBands lists fractional half-widths (e.g. 0.05 for ±5%)
	// for online within-band supply-stability accumulators, computed
	// against TargetVolts without series capture. Result.StabilityWithin
	// answers exactly for these bands (and any band, when series capture
	// is on). Campaigns use this to report the paper's headline
	// stability metric trace-free.
	StabilityBands []float64
}

// Result carries everything the experiments need from one run.
type Result struct {
	// VC is the supply/capacitor voltage trace.
	VC *trace.Series
	// PowerConsumed is board+monitor power, watts.
	PowerConsumed *trace.Series
	// PowerAvailable is the estimated maximum extractable PV power.
	PowerAvailable *trace.Series
	// FreqGHz is the committed DVFS frequency trace.
	FreqGHz *trace.Series
	// LittleCores, BigCores and TotalCores are committed online-core
	// traces.
	LittleCores, BigCores, TotalCores *trace.Series

	// Instructions and Frames are total completed work.
	Instructions float64
	Frames       float64
	// LifetimeSeconds is accumulated alive time.
	LifetimeSeconds float64
	// FirstBrownout is the time of the first brownout; ok=false if none.
	FirstBrownout float64
	BrownedOut    bool
	Brownouts     int
	Restarts      int
	// ControllerStats is populated for power-neutral runs.
	ControllerStats core.Stats
	// Interrupts is the number of serviced threshold interrupts.
	Interrupts int
	// CPUOverhead is the fraction of run time spent in the monitor ISR
	// and SPI reprogramming (paper Fig. 15).
	CPUOverhead float64
	// MonitorPowerWatts is the static draw of the monitoring hardware.
	MonitorPowerWatts float64
	// GovernorTicks counts baseline-governor sampling ticks.
	GovernorTicks int
	// FinalVC is the supply voltage at the end of the run.
	FinalVC float64
	// StorageEnergyStartJ and StorageEnergyEndJ bracket the energy held
	// in the buffer (joules), so campaigns can account for energy parked
	// in — or drained from — the storage itself.
	StorageEnergyStartJ, StorageEnergyEndJ float64
	// TargetVolts echoes the stability target used.
	TargetVolts float64
	// VCEnvelope is the online min/max/time-mean of the supply voltage,
	// accumulated on every run — available even when series capture is
	// off, bit-identical to the VC series analyses when it is on.
	VCEnvelope Envelope

	// stability holds the online within-band accumulators configured via
	// Config.StabilityBands.
	stability []stabAccum
}

// StabilityWithin returns the fraction of the run the supply spent within
// ±pct of the target voltage (the paper's headline 93.3% at 5%). With
// series capture on it is computed from the VC trace for any pct;
// trace-free runs answer from the online accumulators configured via
// Config.StabilityBands. When neither is available — series capture was
// skipped and no matching stability band ran — it returns NaN, so a
// missing measurement can never be mistaken for 0% stability.
func (r *Result) StabilityWithin(pct float64) float64 {
	if r.VC != nil && r.VC.Len() > 0 {
		f, err := r.VC.FractionWithinPercent(r.TargetVolts, pct)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	for i := range r.stability {
		if r.stability[i].pct == pct {
			return r.stability[i].fraction()
		}
	}
	return math.NaN()
}

// StabilityBands returns the fractional band half-widths for which this
// result can answer StabilityWithin without a VC trace.
func (r *Result) StabilityBands() []float64 {
	bands := make([]float64, len(r.stability))
	for i := range r.stability {
		bands[i] = r.stability[i].pct
	}
	return bands
}

// segKind distinguishes the two integration segment shapes the discrete-
// event loop issues: monitored main segments (threshold/brownout events,
// per-step observer dispatch) and unmonitored interrupt-delay segments.
type segKind int

const (
	segMain segKind = iota
	segDelay
)

// runState is the resumption point of the segment state machine between
// integrations.
type runState int

const (
	// stSegment: advance due discrete actions and arm the next main
	// segment (or finish the run).
	stSegment runState = iota
	// stTail: run the post-event tail — the unmonitored-interval brownout
	// level check and the latched-crossing replay loop.
	stTail
)

// engine is the per-run mutable state.
type engine struct {
	cfg      Config
	src      Source
	pvSrc    *PVSource // non-nil when the source is photovoltaic
	fast     *pv.Solver
	storage  Storage
	platform *soc.Platform
	ctrl     *core.Controller
	gov      governor.Governor
	hw       *monitor.Hardware

	vc        float64
	now       float64
	alive     bool
	aliveFor  float64
	deadSince float64
	// instrBase and framesBase carry work completed before a brownout
	// restart (platform.Reset zeroes the platform's own counters).
	instrBase  float64
	framesBase float64

	// Per-run integration hot-path state, allocated once: a reusable
	// stepper, the storage state buffer, the event scratch slice and the
	// hoisted RHS/OnStep/event closures (rebuilding them per segment cost
	// an allocation each across tens of thousands of segments).
	integ ode.Integrator
	// ybuf backs the storage state vector; y is ybuf[:Storage.Dim()].
	// State 0 is the sensed supply voltage (events, traces, brownout);
	// further states are storage-internal (e.g. a hybrid reservoir).
	ybuf                               [MaxStorageStates]float64
	y                                  []float64
	lastH                              float64 // step-size carry across segments
	events                             []ode.Event
	rhsFn                              ode.RHS
	onStepFn                           func(t float64, y []float64)
	evBrownout, evVlow, evVhigh, evRec ode.Event

	// Observer pipeline state (see observer.go): the engine-owned
	// reusable sample, the dispatch list (series observer first, then
	// Config.Observers) and the always-on online accumulators. All fixed
	// at run start so the per-step dispatch is allocation-free.
	sample       Sample
	observers    []Observer
	env          Envelope // supply-voltage envelope, always accumulated
	stab         []stabAccum
	wantAvail    bool
	supplyOnly   bool // every observer reads only T/VC/Alive
	availStarted bool
	lastAvailT   float64

	// Segment state machine (see step/settle): the discrete-event loop is
	// factored so the engine alternates between "arm an integration
	// request" and "settle its result", letting the scalar driver (run)
	// and the lockstep batch driver (RunBatch) share the identical
	// per-run code path.
	state          runState
	tEnd           float64
	nextTick       float64 // governor tick time (governor mode only)
	rebootAt       float64
	pendArmed      bool
	pendKind       segKind
	pendT0, pendT1 float64
	pendWhich      core.Crossing // crossing being serviced across a delay segment

	res Result
}

// Run executes the configured simulation to completion.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.finish(), nil
}

// newEngine builds the per-run engine for an already-validated config:
// storage/solver/observer wiring, monitor hardware, and the hoisted
// integration closures.
func newEngine(cfg Config) (*engine, error) {
	e := &engine{
		cfg:      cfg,
		src:      cfg.Source,
		storage:  cfg.Storage,
		platform: cfg.Platform,
		ctrl:     cfg.Controller,
		gov:      cfg.Governor,
		vc:       cfg.InitialVC,
		alive:    true,
	}
	e.y = e.ybuf[:e.storage.Dim()]
	e.storage.Init(cfg.InitialVC, e.y)
	e.res.StorageEnergyStartJ = e.storage.Energy(e.y)
	if p, ok := e.src.(PVSource); ok {
		e.pvSrc = &p
	} else if p, ok := e.src.(*PVSource); ok {
		e.pvSrc = p
	}
	if e.pvSrc != nil {
		// Per-engine accelerated solve layer: warm-started Newton for the
		// node current, memoised Voc/MPP for the available-power trace.
		// Owned by this run, so parallel sweeps stay bit-reproducible.
		e.fast = pv.NewSolver(e.pvSrc.Array)
	}
	e.res.TargetVolts = cfg.TargetVolts
	if len(cfg.StabilityBands) > 0 {
		e.stab = make([]stabAccum, len(cfg.StabilityBands))
		for i, pct := range cfg.StabilityBands {
			e.stab[i] = newStabAccum(cfg.TargetVolts, pct)
		}
	}
	if !cfg.SkipSeries {
		e.res.VC = trace.NewSeries("Vc", "V")
		e.res.PowerConsumed = trace.NewSeries("Pconsumed", "W")
		e.res.PowerAvailable = trace.NewSeries("Pavailable", "W")
		e.res.FreqGHz = trace.NewSeries("frequency", "GHz")
		e.res.LittleCores = trace.NewSeries("littleCores", "cores")
		e.res.BigCores = trace.NewSeries("bigCores", "cores")
		e.res.TotalCores = trace.NewSeries("totalCores", "cores")
		e.observers = append(e.observers, seriesObserver{res: &e.res})
	}
	e.observers = append(e.observers, cfg.Observers...)
	e.supplyOnly = true
	for _, o := range e.observers {
		if n, ok := o.(NeedsAvailablePower); ok && n.NeedsAvailablePower() {
			e.wantAvail = true
		}
		if s, ok := o.(SupplyOnly); !ok || !s.SupplyOnly() {
			e.supplyOnly = false
		}
	}

	if e.ctrl != nil {
		mc := cfg.MonitorConfig
		if mc == (monitor.Config{}) {
			mc = monitor.DefaultConfig()
		}
		vh, vl := e.ctrl.Thresholds()
		hw, err := monitor.NewHardware(mc, vh, vl)
		if err != nil {
			return nil, err
		}
		e.hw = hw
		e.res.MonitorPowerWatts = hw.PowerWatts()
	}

	// Hoist the integration closures once per run; the discrete-event loop
	// integrates tens of thousands of short segments and must not rebuild
	// them (or the event set) each time.
	e.rhsFn = e.rhs
	e.onStepFn = func(t float64, y []float64) { e.record(t, y[0]) }
	e.evBrownout = ode.Event{
		Name:      "brownout",
		G:         func(_ float64, y []float64) float64 { return y[0] - soc.MinOperatingVolts },
		Direction: -1,
		Terminal:  true,
	}
	// The threshold closures read the channels live: thresholds are only
	// reprogrammed between segments, so within one integration they are
	// constant.
	if e.hw != nil {
		e.evVlow = ode.Event{
			Name:      "vlow",
			G:         func(_ float64, y []float64) float64 { return y[0] - e.hw.Low.Threshold() },
			Direction: -1,
			Terminal:  true,
		}
		e.evVhigh = ode.Event{
			Name:      "vhigh",
			G:         func(_ float64, y []float64) float64 { return y[0] - e.hw.High.Threshold() },
			Direction: +1,
			Terminal:  true,
		}
	}
	e.evRec = ode.Event{
		Name:      "recover",
		G:         func(_ float64, y []float64) float64 { return y[0] - e.cfg.RestartVolts },
		Direction: +1,
		Terminal:  true,
	}

	e.tEnd = e.cfg.Duration
	e.rebootAt = -1
	return e, nil
}

// finish fills the Result from the engine's terminal state.
func (e *engine) finish() *Result {
	e.res.Instructions = e.instrBase + e.platform.Instructions()
	e.res.Frames = e.framesBase + e.platform.Frames()
	e.res.LifetimeSeconds = e.aliveFor
	e.res.FinalVC = e.vc
	e.res.StorageEnergyEndJ = e.storage.Energy(e.y)
	e.res.VCEnvelope = e.env
	e.res.stability = e.stab
	if e.ctrl != nil {
		e.res.ControllerStats = e.ctrl.Stats()
		e.res.Interrupts = e.hw.Interrupts()
		e.res.CPUOverhead = e.hw.CPUOverhead(e.cfg.Duration)
	}
	return &e.res
}

func validate(cfg *Config) error { return validateCached(cfg, nil) }

// validateCached is validate with an optional shared exact-MPP cache: the
// TargetVolts default requires an exact MPP solve — the most expensive
// part of per-run setup — and a batch of runs over value-equal arrays
// needs it only once. The cache returns bit-identical values to the
// uncached solve, so scalar and batched validation agree exactly.
func validateCached(cfg *Config, mpps *pv.MPPCache) error {
	if cfg.Source == nil {
		if cfg.Array == nil || cfg.Profile == nil {
			return errors.New("sim: set Config.Source, or Config.Array and Config.Profile")
		}
		if err := cfg.Array.Validate(); err != nil {
			return err
		}
		cfg.Source = PVSource{Array: cfg.Array, Profile: cfg.Profile}
	}
	if cfg.Platform == nil {
		return errors.New("sim: Config.Platform is required")
	}
	if cfg.Storage == nil {
		if cfg.Capacitance <= 0 {
			return fmt.Errorf("sim: capacitance must be positive, got %g", cfg.Capacitance)
		}
		cfg.Storage = IdealCap{Farads: cfg.Capacitance}
	} else {
		if cfg.Capacitance != 0 {
			return errors.New("sim: set at most one of Storage and Capacitance")
		}
		if err := cfg.Storage.Validate(); err != nil {
			return err
		}
		if d := cfg.Storage.Dim(); d < 1 || d > MaxStorageStates {
			return fmt.Errorf("sim: storage dimension %d outside 1..%d", d, MaxStorageStates)
		}
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("sim: duration must be positive, got %g", cfg.Duration)
	}
	if cfg.InitialVC <= 0 {
		return fmt.Errorf("sim: initial Vc must be positive, got %g", cfg.InitialVC)
	}
	if cfg.Controller != nil && cfg.Governor != nil {
		return errors.New("sim: set at most one of Controller and Governor")
	}
	if cfg.MaxStep == 0 {
		cfg.MaxStep = 0.25
	}
	if cfg.RestartVolts == 0 {
		cfg.RestartVolts = 4.6
	}
	if cfg.RebootSeconds == 0 {
		cfg.RebootSeconds = 8
	}
	if cfg.AvailSamplePeriod == 0 {
		cfg.AvailSamplePeriod = 5
	}
	for _, pct := range cfg.StabilityBands {
		// !(pct > 0) also rejects NaN, which pct <= 0 would let through
		// as a dead accumulator no StabilityWithin call could ever match.
		if !(pct > 0) || math.IsInf(pct, 0) {
			return fmt.Errorf("sim: stability band half-width must be positive and finite, got %g", pct)
		}
	}
	if cfg.TargetVolts == 0 {
		if cfg.Array != nil {
			var m pv.MPP
			var err error
			if mpps != nil {
				m, err = mpps.MaximumPowerPoint(cfg.Array, pv.StandardIrradiance)
			} else {
				m, err = cfg.Array.MaximumPowerPoint(pv.StandardIrradiance)
			}
			if err != nil {
				return err
			}
			cfg.TargetVolts = m.V
		} else {
			cfg.TargetVolts = cfg.InitialVC
		}
	}
	return nil
}

// rhs evaluates the storage-state derivative at (t, y) for the current
// discrete state: a predictor pass computes the net node current at the
// sensed voltage y[0]; if the storage reports a shifted terminal voltage
// (series resistance), one corrector pass re-evaluates harvest and load
// there. Storage without an ESR term (ideal, hybrid) takes the single
// pass and reproduces the historical capacitor maths bit for bit.
func (e *engine) rhs(t float64, y, dydt []float64) {
	v := y[0]
	if v < 0 {
		v = 0
	}
	inet := e.netCurrent(t, v)
	if vt := e.storage.Terminal(y, inet); vt != y[0] {
		if vt < 0 {
			vt = 0
		}
		if vt != v {
			inet = e.netCurrent(t, vt)
		}
	}
	e.applyDerivative(y, dydt, inet)
}

// netCurrent returns the net current into the storage branch (harvest
// minus board and monitor draw) with the node at voltage v.
func (e *engine) netCurrent(t, v float64) float64 {
	var isrc float64
	var err error
	if e.fast != nil {
		isrc, err = e.fast.CurrentAt(v, e.pvSrc.Profile.Irradiance(t))
	} else {
		isrc, err = e.src.Current(t, v)
	}
	if err != nil {
		// Out-of-range solves should not occur with validated params;
		// treat as zero harvest rather than aborting mid-integration.
		isrc = 0
	}
	return isrc - e.loadCurrent(v)
}

// loadCurrent returns the board + monitor draw with the node at voltage
// v (zero when browned out) — the load half of netCurrent, shared by
// the scalar RHS and the batched cross-lane evaluator so both compute
// the identical value.
func (e *engine) loadCurrent(v float64) float64 {
	iload := 0.0
	if e.alive {
		iload = e.platform.CurrentDraw(v)
		if e.hw != nil && v > 0 {
			iload += e.hw.PowerWatts() / v
		}
	}
	return iload
}

// applyDerivative finishes one RHS evaluation: the storage model maps
// the net node current to state derivatives, clamped so no state
// voltage can discharge below zero (the array blocks reverse current
// physically; this guards numerical undershoot). Shared verbatim by the
// scalar RHS and the batched cross-lane evaluator.
func (e *engine) applyDerivative(y, dydt []float64, inet float64) {
	e.storage.Derivative(y, inet, dydt)
	for i := range dydt {
		if y[i] <= 0 && dydt[i] < 0 {
			dydt[i] = 0
		}
	}
}

// record publishes the sample at (t, vc) through the observer pipeline:
// the always-on online accumulators (supply envelope, stability bands)
// run first — they only need (t, vc) and cost a handful of flops — then,
// when any observer is attached, the Sample is assembled once and
// dispatched. The platform bookkeeping (power draw, committed OPP, the
// periodic available-power estimate) is only paid when some observer
// actually reads it: with no observers, or with only SupplyOnly
// observers (the trace-free campaign case — voltage histograms,
// envelopes), it is skipped entirely.
func (e *engine) record(t, vc float64) {
	e.env.Observe(t, vc)
	for i := range e.stab {
		e.stab[i].observe(t, vc)
	}
	if len(e.observers) == 0 {
		return
	}
	s := &e.sample
	s.T, s.VC, s.Alive = t, vc, e.alive
	if !e.supplyOnly {
		pw := 0.0
		if e.alive {
			pw = e.platform.PowerDraw()
			if e.hw != nil {
				pw += e.hw.PowerWatts()
			}
		}
		s.PowerW = pw
		opp := e.platform.CommittedOPP()
		s.FreqGHz = opp.Frequency() / 1e9
		s.LittleCores, s.BigCores = opp.Config.Little, opp.Config.Big
		s.HasAvail, s.AvailW = false, 0
		if e.pvSrc != nil && e.wantAvail {
			if !e.availStarted || t-e.lastAvailT >= e.cfg.AvailSamplePeriod {
				e.sampleAvailable(t)
			}
		}
	}
	for _, o := range e.observers {
		o.Observe(s)
	}
}

// sampleAvailable computes the PV array's instantaneous MPP power — the
// paper's "estimated available harvested power" (Fig. 14) — into the
// pending sample. The refresh clock only advances on a successful solve,
// matching the historical retry-next-step behaviour.
func (e *engine) sampleAvailable(t float64) {
	g := e.pvSrc.Profile.Irradiance(t)
	p, err := e.fast.AvailablePower(g)
	if err == nil {
		e.sample.HasAvail, e.sample.AvailW = true, p
		e.availStarted, e.lastAvailT = true, t
	}
}

// run is the scalar driver of the segment state machine: alternate
// between step (arm the next integration request) and settle (absorb its
// result) until the run completes. The batched driver (RunBatch) walks
// the identical step/settle sequence per lane, interleaving the
// integrations of W lanes through an ode.BatchIntegrator — which is why
// batched results are bit-identical to this loop by construction.
func (e *engine) run() error {
	for {
		if !e.pendArmed {
			more, err := e.step()
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
		kind, t0 := e.pendKind, e.pendT0
		res, err := e.integ.Integrate(e.rhsFn, e.pendT0, e.pendT1, e.stateBuf(), e.pendOptions())
		if err != nil {
			return e.wrapSegErr(kind, t0, err)
		}
		if err := e.settle(res); err != nil {
			return err
		}
	}
}

// wrapSegErr wraps an integration failure with the segment's context,
// preserving the historical messages of the main and delay paths.
func (e *engine) wrapSegErr(kind segKind, t0 float64, err error) error {
	if kind == segDelay {
		return fmt.Errorf("sim: interrupt-delay integration failed: %w", err)
	}
	return fmt.Errorf("sim: integration failed at t=%g: %w", t0, err)
}

// step advances discrete-event work until an integration segment is
// armed (returns true; integrate pendT0..pendT1 with pendOptions and the
// state from stateBuf, then call settle) or the run completes (returns
// false; finish may be called).
func (e *engine) step() (bool, error) {
	for {
		switch e.state {
		case stTail:
			if err := e.runTail(); err != nil {
				return false, err
			}
			if e.pendArmed {
				return true, nil // a replayed service needs its delay segment
			}
			e.state = stSegment
		case stSegment:
			if !e.nextSegment() {
				// Final bookkeeping sample.
				e.record(e.now, e.vc)
				return false, nil
			}
			return true, nil
		}
	}
}

// nextSegment performs the due discrete actions (governor tick, reboot)
// and arms the next main integration segment. It returns false when the
// simulated span is covered.
func (e *engine) nextSegment() bool {
	for {
		if !(e.now < e.tEnd) {
			return false
		}
		// Governor tick due exactly now.
		if e.gov != nil && e.alive && e.now >= e.nextTick {
			e.governorTick()
			e.nextTick = e.now + e.gov.SamplingPeriod()
		}
		// Reboot due now — but only if the supply is still healthy; the
		// harvest may have collapsed again during the cooldown, in which
		// case we disarm and wait for the next recovery crossing.
		if !e.alive && e.rebootAt >= 0 && e.now >= e.rebootAt {
			e.rebootAt = -1
			if e.vc >= e.cfg.RestartVolts {
				e.reboot()
				if e.gov != nil {
					e.nextTick = e.now
					continue
				}
			}
		}

		// Choose the next forced stop.
		segEnd := e.tEnd
		if e.gov != nil && e.alive && e.nextTick < segEnd {
			segEnd = e.nextTick
		}
		if c, ok := e.platform.NextCompletion(); ok && e.alive && c < segEnd {
			segEnd = c
		}
		if !e.alive && e.rebootAt >= 0 && e.rebootAt < segEnd {
			segEnd = e.rebootAt
		}
		if segEnd <= e.now {
			segEnd = math.Nextafter(e.now, math.Inf(1))
		}
		e.pendArmed = true
		e.pendKind = segMain
		e.pendT0, e.pendT1 = e.now, segEnd
		return true
	}
}

// pendOptions builds the ODE options for the armed segment. Main
// segments are monitored (threshold/brownout events, per-step observer
// dispatch); interrupt-delay segments integrate blind — the hardware has
// latched the edge. Both resume at the step size established by the
// previous segment (zero on the first selects the default heuristic):
// interrupt-driven runs integrate thousands of short segments, and
// regrowing from the span/100 default each time costs several extra RHS
// evaluations per segment.
func (e *engine) pendOptions() ode.Options {
	o := ode.Options{
		InitialStep: e.lastH,
		MaxStep:     e.cfg.MaxStep,
		RTol:        1e-6,
		ATol:        1e-7,
	}
	if e.pendKind == segMain {
		o.Events = e.buildEvents()
		o.OnStep = e.onStepFn
	}
	return o
}

// settle absorbs the result of the armed segment's integration and
// advances the state machine.
func (e *engine) settle(res ode.Result) error {
	kind := e.pendKind
	e.pendArmed = false
	switch kind {
	case segMain:
		if err := e.settleMain(res); err != nil {
			return err
		}
		// settleMain may have armed an interrupt-delay segment (a service
		// with a propagation delay); the tail runs once that settles.
		if !e.pendArmed {
			e.state = stTail
		}
	case segDelay:
		if err := e.settleDelay(res); err != nil {
			return err
		}
		e.state = stTail
	}
	return nil
}

// settleMain finishes a monitored main segment: clock/state carry,
// platform advance and terminal-event dispatch.
func (e *engine) settleMain(res ode.Result) error {
	e.lastH = res.LastStep
	// Account alive time across the integrated span.
	if e.alive {
		e.aliveFor += res.T - e.now
	}
	e.now = res.T
	e.vc = e.y[0]
	if e.alive {
		if err := e.platform.Advance(e.now); err != nil {
			return err
		}
	}
	if res.Stopped {
		// A terminal event fired: find it (the last hit).
		hit := res.Hits[len(res.Hits)-1]
		switch hit.Name {
		case "brownout":
			e.brownout()
		case "recover":
			e.rebootAt = e.now + e.cfg.RebootSeconds
			if earliest := e.deadSince + e.cfg.RestartCooldown; e.rebootAt < earliest {
				e.rebootAt = earliest
			}
		case "vlow":
			return e.beginService(core.CrossLow)
		case "vhigh":
			return e.beginService(core.CrossHigh)
		default:
			return fmt.Errorf("sim: unknown terminal event %q", hit.Name)
		}
	}
	return nil
}

// settleDelay finishes an interrupt-delay segment and completes the
// service it was integrating towards.
func (e *engine) settleDelay(res ode.Result) error {
	e.lastH = res.LastStep
	e.aliveFor += res.T - e.now
	e.now = res.T
	e.vc = e.y[0]
	if err := e.platform.Advance(e.now); err != nil {
		return err
	}
	return e.completeService(e.pendWhich)
}

// runTail runs the post-segment tail. A replayed service with an
// interrupt delay arms a delay segment and suspends the tail; resuming
// the whole tail after that service completes is equivalent to the
// historical nested flow because the tail's opening level check is
// exactly the replay loop's first clause.
func (e *engine) runTail() error {
	// Brownouts that slip through unmonitored intervals (e.g. the
	// interrupt-delay integration) are caught by a level check.
	if e.alive && e.vc < soc.MinOperatingVolts-1e-6 {
		e.brownout()
	}

	// Replay crossings latched while the platform was busy: once the
	// actuation completes, the comparator outputs are level-checked
	// and any asserted threshold is serviced immediately. Each service
	// slides the thresholds by Vq, so this loop terminates.
	for e.ctrl != nil && e.alive {
		if e.vc < soc.MinOperatingVolts-1e-6 {
			e.brownout()
			break
		}
		if _, busy := e.platform.NextCompletion(); busy {
			break
		}
		if e.vc <= e.hw.Low.Threshold() {
			if err := e.beginService(core.CrossLow); err != nil {
				return err
			}
		} else if e.vc >= e.hw.High.Threshold() {
			if err := e.beginService(core.CrossHigh); err != nil {
				return err
			}
		} else {
			break
		}
		if e.pendArmed {
			return nil // suspend: the service's delay segment must integrate first
		}
	}
	return nil
}

// stateBuf syncs the sensed voltage into the persistent storage state
// buffer; storage-internal states (indices ≥ 1) carry over untouched.
func (e *engine) stateBuf() []float64 {
	e.y[0] = e.vc
	return e.y
}

// buildEvents assembles the ODE event set for the current discrete state
// from the hoisted event closures, reusing the engine's scratch slice.
func (e *engine) buildEvents() []ode.Event {
	evs := e.events[:0]
	if e.alive {
		evs = append(evs, e.evBrownout)
		// Threshold interrupts are only armed while the platform is idle:
		// the real ISR performs the cpufreq/hot-plug syscalls synchronously,
		// so crossings during an actuation are latched, not serviced. The
		// post-actuation level check in run() replays a latched crossing.
		_, busy := e.platform.NextCompletion()
		if e.ctrl != nil && e.hw != nil && !busy {
			evs = append(evs, e.evVlow, e.evVhigh)
		}
	} else if e.cfg.BrownoutRestart {
		evs = append(evs, e.evRec)
	}
	e.events = evs
	return evs
}

// governorTick samples the governor and actuates its decision.
func (e *engine) governorTick() {
	st := governor.State{
		Load:        e.platform.Utilisation(),
		OPP:         e.platform.CommittedOPP(),
		SupplyVolts: e.vc,
	}
	target := e.gov.Decide(e.now, st).Clamp()
	if target != e.platform.CommittedOPP() {
		// Linux governors sequence frequency before cores; they never
		// change cores anyway.
		_, err := e.platform.RequestOPP(target, e.now, soc.FreqFirst)
		_ = err // cannot fail for valid adjacent targets; dead platform is guarded by caller
	}
	e.res.GovernorTicks++
}

// beginService starts servicing a Vlow/Vhigh crossing. The analogue
// crossing has happened; the ISR runs after the propagation + dispatch
// delay, so when the channel has one the supply is first integrated
// through it without threshold events (the hardware latches the edge) —
// beginService arms that delay segment and the service completes in
// settleDelay. With no delay the service completes immediately.
func (e *engine) beginService(which core.Crossing) error {
	ch := e.hw.Low
	if which == core.CrossHigh {
		ch = e.hw.High
	}
	if delay := ch.InterruptDelay(); delay > 0 {
		e.pendArmed = true
		e.pendKind = segDelay
		e.pendT0, e.pendT1 = e.now, e.now+delay
		e.pendWhich = which
		return nil
	}
	return e.completeService(which)
}

// completeService runs the ISR for a threshold crossing: controller
// decision, OPP actuation and threshold reprogramming.
func (e *engine) completeService(which core.Crossing) error {
	e.hw.RecordInterrupt()

	d := e.ctrl.OnCrossing(which, e.now)
	// Actuate the OPP change.
	if d.Target != e.platform.CommittedOPP() {
		if _, err := e.platform.RequestOPP(d.Target, e.now, d.Order); err != nil {
			return err
		}
	}
	// Reprogram both threshold channels with the slid values.
	e.hw.High.Program(d.VHigh)
	e.hw.RecordProgramming()
	e.hw.Low.Program(d.VLow)
	e.hw.RecordProgramming()
	e.record(e.now, e.vc)
	return nil
}

// brownout powers the board down.
func (e *engine) brownout() {
	e.alive = false
	e.deadSince = e.now
	e.platform.Kill()
	e.res.Brownouts++
	if !e.res.BrownedOut {
		e.res.BrownedOut = true
		e.res.FirstBrownout = e.now
	}
	e.record(e.now, e.vc)
}

// reboot restarts the platform at the minimal OPP and re-centres the
// controller thresholds.
func (e *engine) reboot() {
	// Preserve work completed before the restart; Reset zeroes the
	// platform counters.
	e.instrBase += e.platform.Instructions()
	e.framesBase += e.platform.Frames()
	e.platform.Reset(e.now, soc.MinOPP())
	e.alive = true
	e.res.Restarts++
	if e.ctrl != nil {
		e.ctrl.Recalibrate(e.vc)
		e.ctrl.SetOPP(soc.MinOPP())
		vh, vl := e.ctrl.Thresholds()
		e.hw.High.Program(vh)
		e.hw.Low.Program(vl)
	}
	if e.gov != nil {
		e.gov.Reset()
	}
	e.record(e.now, e.vc)
}
