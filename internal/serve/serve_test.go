package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pnps/internal/studycli"
)

// testRecipe is the suite's study: 2 storage × 2 load cells × 2 reps on
// a short stress scenario, with dwell histograms so the byte-identity
// checks cover the histogram fold path too.
func testRecipe(seed int64) studycli.Config {
	return studycli.Config{
		Scenario: "stress-clouds", Duration: 6,
		Storage: "ideal:0.047,supercap:0.047", Util: "1,0.5",
		Reps: 2, Seed: seed, Bins: 16, HistLo: 3, HistHi: 7,
	}
}

type env struct {
	s   *Server
	srv *httptest.Server
}

func newEnv(t testing.TB, cfg Config) *env {
	t.Helper()
	s := NewServer(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return &env{s: s, srv: srv}
}

// do performs one API request, returning the response and its body.
func (e *env) do(t testing.TB, method, path, token string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, e.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submit posts a recipe and requires the given status code.
func (e *env) submit(t testing.TB, token string, recipe studycli.Config, wantCode int) JobStatus {
	t.Helper()
	resp, data := e.do(t, http.MethodPost, "/v1/jobs", token, recipe)
	if resp.StatusCode != wantCode {
		t.Fatalf("submit: HTTP %d, want %d (%s)", resp.StatusCode, wantCode, data)
	}
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		t.Fatalf("submit response: %v (%s)", err, data)
	}
	return js
}

// await blocks until the job finishes and requires it done.
func (e *env) await(t testing.TB, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	js, err := e.s.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != JobDone {
		t.Fatalf("job %s state %s (%s), want done", id, js.State, js.Error)
	}
	return js
}

// outcome fetches one rendered outcome format.
func (e *env) outcome(t testing.TB, token, id, format string) []byte {
	t.Helper()
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/outcome?format="+format, token, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcome %s: HTTP %d (%s)", format, resp.StatusCode, data)
	}
	return data
}

// directArtifacts runs the recipe locally (no service, no cache) and
// renders it — the ground truth the service's bytes are pinned against.
func directArtifacts(t testing.TB, recipe studycli.Config) map[string][]byte {
	t.Helper()
	st, err := recipe.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	artifacts, err := renderArtifacts(out)
	if err != nil {
		t.Fatal(err)
	}
	return artifacts
}

// TestServeCacheHitByteIdentical pins the core contract: a repeated
// study submission is answered from the content-addressed store with
// bytes bit-identical to the cold run (which are themselves identical
// to a direct local run), with zero simulation work — proved both by
// the engine-boundary run counter and by breaking the engine between
// the two submissions, so any simulation attempt would fail the job.
func TestServeCacheHitByteIdentical(t *testing.T) {
	e := newEnv(t, Config{})
	recipe := testRecipe(41)

	cold := e.await(t, e.submit(t, "", recipe, http.StatusAccepted).ID)
	if cold.CacheHit {
		t.Fatal("first submission reported a whole-study cache hit")
	}
	if cold.SimulatedRuns != cold.TotalTasks {
		t.Fatalf("cold run simulated %d of %d tasks", cold.SimulatedRuns, cold.TotalTasks)
	}
	if cold.FoldedTasks != cold.TotalTasks || len(cold.Marginals) == 0 {
		t.Fatalf("cold run folded %d/%d tasks, %d marginals", cold.FoldedTasks, cold.TotalTasks, len(cold.Marginals))
	}
	coldBytes := map[string][]byte{}
	for _, f := range artifactFormats {
		coldBytes[f] = e.outcome(t, "", cold.ID, f)
	}
	direct := directArtifacts(t, recipe)
	for _, f := range artifactFormats {
		if !bytes.Equal(coldBytes[f], direct[f]) {
			t.Fatalf("%s: served cold bytes differ from a direct local run", f)
		}
	}

	// The spy: a second server sharing the populated store, wired to an
	// engine that cannot exist. Any job that reaches RunChunk fails with
	// an unknown-engine error, so a done job proves the engine was never
	// consulted.
	broken := newEnv(t, Config{Engine: "no-such-engine", cache: e.s.cache})

	hit := broken.submit(t, "", recipe, http.StatusOK)
	if !hit.CacheHit || hit.State != JobDone {
		t.Fatalf("repeat submission: state %s, cacheHit %v (%s)", hit.State, hit.CacheHit, hit.Error)
	}
	if hit.SimulatedRuns != 0 {
		t.Fatalf("repeat submission simulated %d runs, want 0", hit.SimulatedRuns)
	}
	if hit.Digest != cold.Digest {
		t.Fatalf("digest changed across identical submissions: %s vs %s", hit.Digest, cold.Digest)
	}
	for _, f := range artifactFormats {
		if got := broken.outcome(t, "", hit.ID, f); !bytes.Equal(got, coldBytes[f]) {
			t.Fatalf("%s: cache-hit bytes differ from the cold run", f)
		}
	}
	// Same-server resubmission also hits and mints a fresh job record.
	again := e.submit(t, "", recipe, http.StatusOK)
	if !again.CacheHit || again.ID == cold.ID {
		t.Fatalf("same-server resubmission: hit %v, job %s (cold was %s)", again.CacheHit, again.ID, cold.ID)
	}
	if st := e.s.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats after hit: %+v", st)
	}
}

// TestServeCellReuse pins cross-study reuse: a study sharing matrix
// cells with an earlier one simulates only the new cells, and the mixed
// cached/fresh fold still renders bytes bit-identical to a pure local
// run of the new study.
func TestServeCellReuse(t *testing.T) {
	e := newEnv(t, Config{})
	a := testRecipe(77)
	sa := e.await(t, e.submit(t, "", a, http.StatusAccepted).ID)
	if sa.SimulatedRuns != sa.TotalTasks || sa.CachedCells != 0 {
		t.Fatalf("study A: %d/%d simulated, %d cached cells", sa.SimulatedRuns, sa.TotalTasks, sa.CachedCells)
	}

	// B appends a storage level: the 4 original cells keep their ledger
	// positions (and hence their per-task seeds), the 2 hybrid cells
	// are new.
	b := a
	b.Storage = a.Storage + ",hybrid:0.01:1"
	sb := e.await(t, e.submit(t, "", b, http.StatusAccepted).ID)
	if sb.CacheHit {
		t.Fatal("study B reported a whole-study hit despite new cells")
	}
	if sb.CachedCells != sa.TotalCells {
		t.Fatalf("study B reused %d cells, want all %d of study A's", sb.CachedCells, sa.TotalCells)
	}
	if want := sb.TotalTasks - sa.TotalTasks; sb.SimulatedRuns != want {
		t.Fatalf("study B simulated %d runs, want only the %d new-cell runs", sb.SimulatedRuns, want)
	}
	direct := directArtifacts(t, b)
	for _, f := range artifactFormats {
		if got := e.outcome(t, "", sb.ID, f); !bytes.Equal(got, direct[f]) {
			t.Fatalf("%s: mixed cached/fresh fold differs from a direct local run", f)
		}
	}
}

// TestServeBackpressure pins bounded admission: a full queue answers
// 429 with Retry-After, identical in-flight submissions coalesce, and
// a draining server refuses new work with 503 while finishing what it
// accepted.
func TestServeBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := Config{JobWorkers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second}
	cfg.startHook = func(j *Job) {
		started <- j.id
		<-release
	}
	e := newEnv(t, cfg)
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	j1 := e.submit(t, "", testRecipe(1), http.StatusAccepted)
	select {
	case id := <-started:
		if id != j1.ID {
			t.Fatalf("worker started %s, want %s", id, j1.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}

	// Identical submission while job 1 runs: coalesced, no queue slot.
	if co := e.submit(t, "", testRecipe(1), http.StatusOK); co.ID != j1.ID {
		t.Fatalf("coalesced submission got job %s, want %s", co.ID, j1.ID)
	}

	j2 := e.submit(t, "", testRecipe(2), http.StatusAccepted)
	if j2.State != JobQueued {
		t.Fatalf("job 2 state %s, want queued", j2.State)
	}
	// Queue full: explicit backpressure.
	resp, body := e.do(t, http.MethodPost, "/v1/jobs", "", testRecipe(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submission: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	e.await(t, j1.ID)
	e.await(t, j2.ID)

	e.s.Drain()
	if resp, body := e.do(t, http.MethodPost, "/v1/jobs", "", testRecipe(4)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submission: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestServeTenantNamespacing pins multi-tenant isolation: distinct
// tokens draw from independent seed namespaces (different digests, no
// cross-tenant cache hits), each tenant's own resubmission still hits,
// and one tenant cannot see another's jobs.
func TestServeTenantNamespacing(t *testing.T) {
	e := newEnv(t, Config{Tokens: []string{"alice", "bob"}})
	recipe := testRecipe(41)

	if resp, _ := e.do(t, http.MethodPost, "/v1/jobs", "", recipe); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit: HTTP %d, want 401", resp.StatusCode)
	}

	sa := e.await(t, e.submit(t, "alice", recipe, http.StatusAccepted).ID)
	sb := e.await(t, e.submit(t, "bob", recipe, http.StatusAccepted).ID)
	if sa.Digest == sb.Digest {
		t.Fatal("tenants share a digest for the same recipe — seed namespaces collide")
	}
	if sb.CacheHit || sb.SimulatedRuns != sb.TotalTasks {
		t.Fatalf("bob's run reused alice's results: hit %v, %d/%d simulated",
			sb.CacheHit, sb.SimulatedRuns, sb.TotalTasks)
	}
	if again := e.submit(t, "alice", recipe, http.StatusOK); !again.CacheHit || again.SimulatedRuns != 0 {
		t.Fatalf("alice's resubmission: hit %v, %d simulated", again.CacheHit, again.SimulatedRuns)
	}

	// Foreign job IDs answer like unknown ones.
	if resp, _ := e.do(t, http.MethodGet, "/v1/jobs/"+sa.ID, "bob", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant job fetch: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := e.do(t, http.MethodGet, "/v1/jobs/"+sa.ID+"/outcome", "alice", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("own-tenant outcome fetch: HTTP %d, want 200", resp.StatusCode)
	}

	// The namespace map is deterministic and non-trivial.
	if TenantSeed(41, "alice") == 41 || TenantSeed(41, "alice") == TenantSeed(41, "bob") {
		t.Fatal("TenantSeed is not a proper namespace map")
	}
	if TenantSeed(41, "alice") != TenantSeed(41, "alice") {
		t.Fatal("TenantSeed is not deterministic")
	}
}

// TestServeEvents pins the NDJSON progress stream: one status per
// visible change, ending with the final done status at the full fold
// frontier.
func TestServeEvents(t *testing.T) {
	e := newEnv(t, Config{})
	j := e.submit(t, "", testRecipe(5), http.StatusAccepted)

	resp, err := http.Get(e.srv.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var events []JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var js JobStatus
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if js.ID != j.ID {
			t.Fatalf("event for job %s on job %s's stream", js.ID, j.ID)
		}
		events = append(events, js)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want at least initial + final", len(events))
	}
	last := events[len(events)-1]
	if last.State != JobDone || last.FoldedTasks != last.TotalTasks {
		t.Fatalf("final event: state %s, %d/%d folded", last.State, last.FoldedTasks, last.TotalTasks)
	}
	for i := 1; i < len(events); i++ {
		if events[i].FoldedTasks < events[i-1].FoldedTasks {
			t.Fatalf("fold frontier went backwards: %d after %d", events[i].FoldedTasks, events[i-1].FoldedTasks)
		}
	}
}

// TestServeRequestValidation pins the refusal surface: strict recipe
// parsing, unknown scenarios, unknown jobs and unknown formats.
func TestServeRequestValidation(t *testing.T) {
	e := newEnv(t, Config{})

	resp, body := e.do(t, http.MethodPost, "/v1/jobs", "",
		map[string]any{"scenario": "stress-clouds", "reps": 1, "seed": 1, "utll": "1"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "utll") {
		t.Fatalf("unknown recipe field: HTTP %d (%s), want 400 naming the field", resp.StatusCode, body)
	}
	if resp, _ := e.do(t, http.MethodPost, "/v1/jobs", "",
		studycli.Config{Scenario: "no-such-scenario", Reps: 1, Seed: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := e.do(t, http.MethodGet, "/v1/jobs/job-999", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := e.do(t, http.MethodGet, "/v1/jobs/job-999/outcome", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job outcome: HTTP %d, want 404", resp.StatusCode)
	}

	done := e.await(t, e.submit(t, "", testRecipe(9), http.StatusAccepted).ID)
	if resp, body := e.do(t, http.MethodGet, "/v1/jobs/"+done.ID+"/outcome?format=yaml", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: HTTP %d (%s), want 400", resp.StatusCode, body)
	}

	resp, body = e.do(t, http.MethodGet, "/v1/scenarios", "", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "stress-clouds") {
		t.Fatalf("scenario listing: HTTP %d (%s)", resp.StatusCode, body)
	}
	var stats CacheStats
	if resp, body := e.do(t, http.MethodGet, "/v1/cache", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cache stats: HTTP %d", resp.StatusCode)
	} else if err := json.Unmarshal(body, &stats); err != nil || stats.Budget <= 0 {
		t.Fatalf("cache stats body %s: %v", body, err)
	}
}

// TestCacheEviction pins the LRU byte bound directly.
func TestCacheEviction(t *testing.T) {
	c := NewCache(100)
	val := bytes.Repeat([]byte("x"), 30)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), val) // 32 bytes per entry
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 || st.Bytes > 100 {
		t.Fatalf("after overflow: %+v", st)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	// Touching k1 makes k2 the eviction victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	c.Put("k4", val)
	if _, ok := c.Get("k2"); ok {
		t.Fatal("recency was ignored: k2 outlived the untouched k1")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	// An entry that alone exceeds the budget is refused.
	c.Put("huge", bytes.Repeat([]byte("y"), 200))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("over-budget entry was admitted")
	}
}
