package sim

import (
	"testing"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

// TestSmokeFullSunController runs the full closed loop for a simulated
// minute under constant full sun and checks the headline behaviours: the
// board survives, does useful work, and the supply stabilises near the
// array's maximum power point.
func TestSmokeFullSunController(t *testing.T) {
	arr := pv.SouthamptonArray()
	mpp, err := arr.MaximumPowerPoint(pv.StandardIrradiance)
	if err != nil {
		t.Fatalf("MPP: %v", err)
	}
	t.Logf("array MPP: %.3f V, %.3f A, %.3f W", mpp.V, mpp.I, mpp.P)

	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), mpp.V, soc.MinOPP(), 0)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	res, err := Run(Config{
		Array:       arr,
		Profile:     pv.Constant(pv.StandardIrradiance),
		Capacitance: 47e-3,
		InitialVC:   mpp.V,
		Platform:    plat,
		Controller:  ctrl,
		Duration:    60,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("brownouts=%d interrupts=%d instr=%.3g finalVC=%.3f stability(5%%)=%.3f",
		res.Brownouts, res.Interrupts, res.Instructions, res.FinalVC, res.StabilityWithin(0.05))
	t.Logf("controller stats: %+v", res.ControllerStats)
	t.Logf("final committed OPP: %v", plat.CommittedOPP())

	if res.BrownedOut {
		t.Errorf("board browned out at t=%.2f s under full sun", res.FirstBrownout)
	}
	if res.Instructions <= 0 {
		t.Errorf("no work completed")
	}
	if res.Interrupts == 0 {
		t.Errorf("controller never received a threshold interrupt")
	}
	if s := res.StabilityWithin(0.10); s < 0.5 {
		t.Errorf("supply spent only %.1f%% of the run within 10%% of MPP voltage", 100*s)
	}
}
