package soc

import (
	"testing"
)

func TestHotplugLatencyCalibration(t *testing.T) {
	lm := DefaultLatencyModel()
	if err := lm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 10 top: ≈10 ms at 1.4 GHz up to ≈40 ms at 200 MHz.
	fast, err := lm.HotplugLatency(CoreConfig{Little: 1}, CoreConfig{Little: 2}, NumFrequencyLevels-1)
	if err != nil {
		t.Fatal(err)
	}
	if fast < 3e-3 || fast > 15e-3 {
		t.Errorf("hot-plug at 1.4 GHz = %.1f ms, want ≈10 ms band", fast*1e3)
	}
	slow, err := lm.HotplugLatency(CoreConfig{Little: 4, Big: 3}, CoreConfig{Little: 4, Big: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 20e-3 || slow > 60e-3 {
		t.Errorf("hot-plug at 200 MHz = %.1f ms, want ≈40 ms band", slow*1e3)
	}
	if slow <= fast {
		t.Error("hot-plug must slow down at low frequency")
	}
}

func TestHotplugLatencyGrowsWithOnlineCores(t *testing.T) {
	lm := DefaultLatencyModel()
	ladder := ConfigLadder()
	prev := 0.0
	for i := 0; i+1 < len(ladder); i++ {
		lat, err := lm.HotplugLatency(ladder[i], ladder[i+1], 4)
		if err != nil {
			t.Fatal(err)
		}
		// The big-factor makes the 3->4 to 4->5 step jump; within a
		// cluster the latency grows monotonically.
		if i != 3 && lat <= prev {
			t.Errorf("latency at ladder step %d (%.2f ms) not above previous (%.2f ms)",
				i, lat*1e3, prev*1e3)
		}
		prev = lat
	}
}

func TestHotplugLatencyErrors(t *testing.T) {
	lm := DefaultLatencyModel()
	// Two-core jump.
	if _, err := lm.HotplugLatency(CoreConfig{Little: 1}, CoreConfig{Little: 3}, 0); err == nil {
		t.Error("multi-core step accepted")
	}
	// Simultaneous change of both clusters.
	if _, err := lm.HotplugLatency(CoreConfig{Little: 1}, CoreConfig{Little: 2, Big: 1}, 0); err == nil {
		t.Error("diagonal step accepted")
	}
	// No change.
	if _, err := lm.HotplugLatency(CoreConfig{Little: 2}, CoreConfig{Little: 2}, 0); err == nil {
		t.Error("no-op step accepted")
	}
	// Bad frequency index.
	if _, err := lm.HotplugLatency(CoreConfig{Little: 1}, CoreConfig{Little: 2}, 99); err == nil {
		t.Error("bad frequency index accepted")
	}
	// Leaving the envelope.
	if _, err := lm.HotplugLatency(CoreConfig{Little: 4, Big: 4}, CoreConfig{Little: 4, Big: 5}, 0); err == nil {
		t.Error("out-of-envelope target accepted")
	}
}

func TestDVFSLatencyCalibration(t *testing.T) {
	lm := DefaultLatencyModel()
	// Paper Fig. 10 bottom: ≈1–3 ms.
	for _, cfg := range []CoreConfig{{Little: 1}, {Little: 4}, {Little: 4, Big: 4}} {
		up, err := lm.DVFSLatency(0, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if up < 0.5e-3 || up > 3.5e-3 {
			t.Errorf("%v DVFS up = %.2f ms, want 1-3 ms band", cfg, up*1e3)
		}
		down, err := lm.DVFSLatency(1, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if down >= up {
			t.Errorf("%v: down-step (%.2f ms) should be faster than up (%.2f ms)",
				cfg, down*1e3, up*1e3)
		}
	}
}

func TestDVFSLatencyGrowsWithCores(t *testing.T) {
	lm := DefaultLatencyModel()
	l1, _ := lm.DVFSLatency(0, 1, CoreConfig{Little: 1})
	l8, _ := lm.DVFSLatency(0, 1, CoreConfig{Little: 4, Big: 4})
	if l8 <= l1 {
		t.Errorf("DVFS with 8 cores (%.2f ms) should exceed 1 core (%.2f ms)", l8*1e3, l1*1e3)
	}
}

func TestDVFSLatencyErrors(t *testing.T) {
	lm := DefaultLatencyModel()
	if _, err := lm.DVFSLatency(0, 2, CoreConfig{Little: 1}); err == nil {
		t.Error("multi-level step accepted")
	}
	if _, err := lm.DVFSLatency(7, 8, CoreConfig{Little: 1}); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := lm.DVFSLatency(0, 1, CoreConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLatencyValidation(t *testing.T) {
	bad := DefaultLatencyModel()
	bad.HotplugBase = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero base accepted")
	}
	bad2 := DefaultLatencyModel()
	bad2.DVFSDownFactor = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative factor accepted")
	}
	bad3 := DefaultLatencyModel()
	bad3.HotplugPerCore = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative increment accepted")
	}
}

func TestHotplugDVFSLatencyOrdering(t *testing.T) {
	// The premise of the paper's control split (Section II-B): DVFS is
	// much faster than hot-plugging, so DVFS handles micro variation.
	lm := DefaultLatencyModel()
	dvfs, _ := lm.DVFSLatency(4, 3, CoreConfig{Little: 4, Big: 4})
	hot, _ := lm.HotplugLatency(CoreConfig{Little: 4, Big: 4}, CoreConfig{Little: 4, Big: 3}, 4)
	if hot < 3*dvfs {
		t.Errorf("hot-plug (%.2f ms) should dominate DVFS (%.2f ms)", hot*1e3, dvfs*1e3)
	}
}
