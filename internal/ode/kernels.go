package ode

import "math"

// This file holds the cross-lane stage kernels of the batched RK23
// round. Each kernel sweeps one stage computation across every lane
// attempting a step this round, walking the stage-major slab (all
// lanes' storage for a stage is contiguous) with the bounds checks
// hoisted out of the inner loops by full-length reslices. The per-lane
// arithmetic is expression-for-expression the scalar stage methods
// (stageK2/stageK3/stageY1K4/stageErr), so kernel results are
// bit-identical to scalar integration — only the cross-lane iteration
// order differs, and lanes share no mutable state.

// axpyLanes forms the stage input ytmp = y + a·k for every stepping
// lane, where (a, k) is (hs/2, k1) for stage 2 and (3·hs/4, k2) for
// stage 3 — the same coefficients, computed by the same expressions, as
// the scalar stageK2/stageK3.
func (b *BatchIntegrator) axpyLanes(st []int, stage3 bool) {
	for _, l := range st {
		ln := &b.lanes[l]
		y := ln.s.y
		var a float64
		var k []float64
		if stage3 {
			a, k = 3*ln.s.hs/4, ln.in.k2
		} else {
			a, k = ln.s.hs/2, ln.in.k1
		}
		dst, k := ln.in.ytmp[:len(y)], k[:len(y)]
		for i, yv := range y {
			dst[i] = yv + a*k[i]
		}
	}
}

// y1Lanes forms the 3rd-order solution y1 = y + hs(2/9 k1 + 1/3 k2 +
// 4/9 k3) for every stepping lane — the update half of the scalar
// stageY1K4; the fused FSAL evaluation k4 = f(t+hs, y1) follows as one
// batched derivative call (evalStageLanes).
func (b *BatchIntegrator) y1Lanes(st []int) {
	for _, l := range st {
		ln := &b.lanes[l]
		y := ln.s.y
		hs := ln.s.hs
		n := len(y)
		k1, k2, k3, y1 := ln.in.k1[:n], ln.in.k2[:n], ln.in.k3[:n], ln.in.y1[:n]
		for i := range y {
			y1[i] = y[i] + hs*(2.0/9.0*k1[i]+1.0/3.0*k2[i]+4.0/9.0*k3[i])
		}
	}
}

// errNormLanes fuses the embedded 2nd-order solution, the error vector
// and the scaled RMS error norm into one pass per stepping lane,
// storing the result in each lane's segState.en. Per element it
// performs exactly the operations of the scalar stageErr + errNorm
// pair, in the same index order, so the fused norm is bit-identical.
func (b *BatchIntegrator) errNormLanes(st []int) {
	for _, l := range st {
		ln := &b.lanes[l]
		s := &ln.s
		y := s.y
		hs := s.hs
		atol, rtol := s.o.ATol, s.o.RTol
		n := len(y)
		k1, k2, k3, k4, y1 := ln.in.k1[:n], ln.in.k2[:n], ln.in.k3[:n], ln.in.k4[:n], ln.in.y1[:n]
		var sum float64
		for i := range y {
			y2 := y[i] + hs*(7.0/24.0*k1[i]+1.0/4.0*k2[i]+1.0/3.0*k3[i]+1.0/8.0*k4[i])
			e := y1[i] - y2
			sc := atol + rtol*math.Max(math.Abs(y[i]), math.Abs(y1[i]))
			e = e / sc
			sum += e * e
		}
		s.en = math.Sqrt(sum / float64(n))
	}
}

// evalStageLanes evaluates one RK stage's derivatives for every
// stepping lane: lanes armed through StartBatched are gathered into a
// single BatchRHS.EvalLanes call (one call per stage per round,
// regardless of width); lanes armed through Start fall back to their
// per-lane scalar RHS. stage selects the evaluation point and buffers:
// 2 → k2 = f(t+hs/2, ytmp), 3 → k3 = f(t+3hs/4, ytmp),
// 4 → k4 = f(t+hs, y1).
func (b *BatchIntegrator) evalStageLanes(st []int, stage int) {
	nb := 0
	for _, l := range st {
		ln := &b.lanes[l]
		var t float64
		var in, out []float64
		switch stage {
		case 2:
			t, in, out = ln.s.t+ln.s.hs/2, ln.in.ytmp, ln.in.k2
		case 3:
			t, in, out = ln.s.t+3*ln.s.hs/4, ln.in.ytmp, ln.in.k3
		default:
			t, in, out = ln.s.t+ln.s.hs, ln.in.y1, ln.in.k4
		}
		if ln.batched {
			b.bts[nb], b.bys[nb], b.bdys[nb], b.blanes[nb] = t, in, out, l
			nb++
		} else {
			ln.s.f(t, in, out)
		}
	}
	if nb > 0 {
		b.batch.EvalLanes(b.bts[:nb], b.bys[:nb], b.bdys[:nb], b.blanes[:nb])
	}
}

// roundStages advances every stepping lane through the four RK23 stage
// computations stage-major: each kernel sweeps the whole batch before
// the next begins, and each stage's derivative evaluations collapse to
// one EvalLanes call for the batched lanes.
func (b *BatchIntegrator) roundStages(st []int) {
	b.axpyLanes(st, false)
	b.evalStageLanes(st, 2)
	b.axpyLanes(st, true)
	b.evalStageLanes(st, 3)
	b.y1Lanes(st)
	b.evalStageLanes(st, 4)
	b.errNormLanes(st)
}
