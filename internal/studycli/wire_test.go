package studycli

import (
	"encoding/json"
	"strings"
	"testing"
)

// The Config JSON schema is a wire protocol: pncoord publishes it to
// workers, pnserve accepts it from clients. These tests pin the schema
// itself — field names, omission behaviour, strictness — because a
// silent schema drift would make two builds disagree about what study
// a recipe describes.

func wireRecipe() Config {
	return Config{
		Scenario: "stress-clouds", Duration: 12,
		Storage: "ideal:0.047,supercap:0.047", Control: "pn,static", Util: "1,0.6",
		Reps: 8, Seed: 23, Paired: true,
		Bins: 32, HistLo: 4, HistHi: 6,
	}
}

func TestConfigRoundTrip(t *testing.T) {
	want := wireRecipe()
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip changed the recipe:\n got %+v\nwant %+v", got, want)
	}
}

// TestConfigWireFieldNames pins the exact JSON field names — renaming a
// tag is a protocol break, not a refactor.
func TestConfigWireFieldNames(t *testing.T) {
	raw, err := json.Marshal(wireRecipe())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	want := []string{"scenario", "duration", "storage", "control", "util",
		"reps", "seed", "paired", "bins", "hist_lo", "hist_hi"}
	if len(doc) != len(want) {
		t.Fatalf("wire document has %d fields %v, want %d", len(doc), doc, len(want))
	}
	for _, f := range want {
		if _, ok := doc[f]; !ok {
			t.Errorf("wire field %q missing from %s", f, raw)
		}
	}
}

// TestConfigDefaultOmission pins which fields vanish from the wire when
// zero: a default recipe must stay minimal (and therefore stable) so
// digests of equal recipes are equal bytes.
func TestConfigDefaultOmission(t *testing.T) {
	raw, err := json.Marshal(Config{Scenario: "stress-clouds", Reps: 4, Seed: 2017})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"scenario":"stress-clouds","reps":4,"seed":2017}`
	if string(raw) != want {
		t.Fatalf("minimal recipe encodes as %s, want %s", raw, want)
	}
}

func TestDecodeConfigStrict(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  string
		want string
	}{
		{"unknown field", `{"scenario":"x","reps":1,"seed":1,"utll":"1"}`, "utll"},
		{"wrong type", `{"scenario":"x","reps":"many","seed":1}`, "undecodable"},
		{"trailing document", `{"scenario":"x","reps":1,"seed":1}{"again":true}`, "trailing data"},
		{"not json", `scenario=x`, "undecodable"},
	} {
		_, err := DecodeConfig([]byte(tc.raw))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: DecodeConfig error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Trailing whitespace is not trailing data.
	if _, err := DecodeConfig([]byte("{\"scenario\":\"x\",\"reps\":1,\"seed\":1}\n")); err != nil {
		t.Errorf("trailing newline refused: %v", err)
	}
}
