// Command pnstudy runs declarative cross-scenario study matrices: a
// registered base scenario crossed over storage, control and workload
// axes, each cell a seed-range of Monte-Carlo repetitions, with
// bit-identical aggregation at any worker count — and first-class
// sharding, resume and coordinated distributed execution.
//
// Usage:
//
//	pnstudy [-scenario name] [-storage specs] [-control list] [-util list] [-reps N] ...
//	pnstudy -shard i/n -checkpoint shard-i.json ...
//	pnstudy -resume ck.json ...
//	pnstudy -merge shard-0.json,shard-1.json,... ...
//	pnstudy -worker http://coordinator:8080
//	pnstudy -list
//
// The matrix flags (everything except -workers, -engine, -batch-width
// and -progress) define the study identity: shard, resume and merge
// invocations must repeat
// them exactly — checkpoints carry a fingerprint and refuse to mix
// with a different matrix. Worker counts, shard counts and
// interruption points never change the result: the merged outcome is
// bit-identical to a single unsharded run.
//
// -worker joins a pncoord coordinator instead: the study definition is
// fetched from the coordinator (no matrix flags needed), rebuilt
// locally, fingerprint-checked, and executed chunk by chunk until the
// study completes. Any number of workers may join and leave; the
// coordinator re-leases the chunks of workers that die.
//
// Axes (each optional; omitting all of them runs a plain Monte-Carlo
// campaign of the base scenario):
//
//	-storage  comma-separated storage levels:
//	            ideal:F        lossless capacitor of F farads
//	            supercap:F     bank with the built-in ESR/leakage parasitics
//	            hybrid:F:R     F-farad node backed by an R-farad reservoir
//	-control  comma-separated control levels: pn (power-neutral), static,
//	          or any Linux governor name (ondemand, conservative, ...)
//	-util     comma-separated workload utilisations in [0,1]
//
// -paired reuses one weather realisation per repetition across every
// cell (common random numbers), so cross-cell comparisons are paired
// rather than confounded by weather luck.
//
// Exports: -cells-csv (one row per cell), -runs-csv (one row per run),
// -json (full aggregate with marginals and dwell-time quantile bands).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pnps/internal/coord"
	"pnps/internal/scenario"
	"pnps/internal/study"
	"pnps/internal/studycli"
)

func main() {
	var (
		scn      = flag.String("scenario", "stress-clouds", "registered base scenario")
		duration = flag.Float64("duration", 0, "override scenario duration, seconds (0 keeps the registered value)")
		storage  = flag.String("storage", "", "storage axis: ideal:F,supercap:F,hybrid:F:R")
		control  = flag.String("control", "", "control axis: pn, static, or governor names")
		util     = flag.String("util", "", "workload axis: utilisations in [0,1]")
		reps     = flag.Int("reps", 4, "Monte-Carlo repetitions per cell")
		seed     = flag.Int64("seed", 2017, "study base seed")
		paired   = flag.Bool("paired", false, "common random numbers: one realisation per repetition across all cells")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs")
		engine   = flag.String("engine", "scalar", "execution engine: scalar, or batched (lockstep SoA lanes; bit-identical results)")
		batchW   = flag.Int("batch-width", 0, "batched engine lane count (0 selects the default width)")
		progress = flag.Bool("progress", false, "report run progress on stderr")
		bins     = flag.Int("bins", 250, "dwell-time voltage histogram bins (0 disables)")
		histLo   = flag.Float64("histlo", 0, "dwell histogram lower bound, volts")
		histHi   = flag.Float64("histhi", 10, "dwell histogram upper bound, volts")
		shard    = flag.String("shard", "", "run one shard i/n of the task ledger and write its checkpoint")
		ckpt     = flag.String("checkpoint", "", "checkpoint file to write (-shard) ")
		resume   = flag.String("resume", "", "checkpoint file to complete in place")
		merge    = flag.String("merge", "", "comma-separated shard checkpoints to merge")
		workerAt = flag.String("worker", "", "join the pncoord coordinator at this URL (matrix flags come from the coordinator)")
		name     = flag.String("name", "", "worker name reported to the coordinator (-worker; default host-pid)")
		token    = flag.String("token", "", "bearer token presented to a -token guarded coordinator (-worker)")
		cellsCSV = flag.String("cells-csv", "", "write per-cell aggregates as CSV to this file")
		runsCSV  = flag.String("runs-csv", "", "write per-run outcomes as CSV to this file")
		jsonOut  = flag.String("json", "", "write the full aggregate as JSON to this file")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.List() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return
	}

	ctx := context.Background()
	if *workerAt != "" {
		if err := runWorker(ctx, *workerAt, *name, *token, *workers, *engine, *batchW); err != nil {
			fatal(err)
		}
		return
	}

	st, err := studycli.Config{
		Scenario: *scn, Duration: *duration,
		Storage: *storage, Control: *control, Util: *util,
		Reps: *reps, Seed: *seed, Paired: *paired,
		Bins: *bins, HistLo: *histLo, HistHi: *histHi,
	}.Build()
	if err != nil {
		fatal(err)
	}
	st.Workers = *workers
	st.Engine, st.BatchWidth = *engine, *batchW
	if *progress {
		st.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rpnstudy: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var out *study.StudyOutcome
	switch {
	case *merge != "":
		out, err = mergeOutcome(st, strings.Split(*merge, ","))
	case *resume != "":
		out, err = resumeOutcome(ctx, st, *resume)
	case *shard != "":
		err = runShard(ctx, st, *shard, *ckpt)
	default:
		out, err = st.Run(ctx)
	}
	if err != nil {
		fatal(err)
	}
	if out == nil {
		return // shard mode: checkpoint written, nothing to aggregate yet
	}

	studycli.PrintOutcome(os.Stdout, st, out)
	if *cellsCSV != "" {
		err = studycli.WriteFileAtomic(*cellsCSV, out.WriteCellsCSV)
	}
	if err == nil && *runsCSV != "" {
		err = studycli.WriteFileAtomic(*runsCSV, out.WriteRunsCSV)
	}
	if err == nil && *jsonOut != "" {
		err = studycli.WriteFileAtomic(*jsonOut, out.WriteJSON)
	}
	if err != nil {
		fatal(err)
	}
}

// runWorker joins a coordinator: the study identity travels as a
// studycli.Config recipe, is rebuilt locally and fingerprint-verified
// before any chunk executes. The engine is local execution detail — it
// never changes results, so each worker picks its own.
func runWorker(ctx context.Context, url, name, token string, workers int, engine string, batchWidth int) error {
	w := &coord.Worker{
		URL: url, Name: name, Token: token, Workers: workers,
		BuildStudy: func(recipe json.RawMessage) (study.Study, error) {
			// Strict decode: a recipe field this build does not know means
			// flag skew between coordinator and worker — refuse before the
			// fingerprint check has to diagnose it less precisely.
			c, err := studycli.DecodeConfig(recipe)
			if err != nil {
				return study.Study{}, err
			}
			st, err := c.Build()
			if err != nil {
				return study.Study{}, err
			}
			st.Engine, st.BatchWidth = engine, batchWidth
			return st, nil
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pnstudy: "+format+"\n", args...)
		},
	}
	return w.Run(ctx)
}

// parseShard parses "i/n".
func parseShard(s string) (i, n int, err error) {
	parts := strings.Split(s, "/")
	if len(parts) == 2 {
		i, err = strconv.Atoi(parts[0])
		if err == nil {
			n, err = strconv.Atoi(parts[1])
		}
		if err == nil && n >= 1 && i >= 0 && i < n {
			return i, n, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q (want i/n with 0 <= i < n)", s)
}

// runShard executes one ledger shard and writes its checkpoint.
func runShard(ctx context.Context, st study.Study, shard, ckpt string) error {
	if ckpt == "" {
		return fmt.Errorf("-shard needs -checkpoint to write the shard's state to")
	}
	i, n, err := parseShard(shard)
	if err != nil {
		return err
	}
	cp, err := st.RunShard(ctx, i, n)
	if err != nil {
		return err
	}
	if err := studycli.WriteFileAtomic(ckpt, cp.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("shard %d/%d: %d of %d tasks done, checkpoint %s\n",
		i, n, len(cp.Records), cp.Total, ckpt)
	fmt.Printf("missing ranges: %v\n", cp.Missing())
	return nil
}

// resumeOutcome completes a checkpoint in place and returns its outcome.
func resumeOutcome(ctx context.Context, st study.Study, path string) (*study.StudyOutcome, error) {
	cp, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	full, err := st.Resume(ctx, cp)
	if err != nil {
		return nil, err
	}
	if err := studycli.WriteFileAtomic(path, full.WriteJSON); err != nil {
		return nil, err
	}
	return st.Outcome(full)
}

// mergeOutcome merges shard checkpoints; incomplete merges report the
// missing ledger ranges instead of an outcome.
func mergeOutcome(st study.Study, paths []string) (*study.StudyOutcome, error) {
	cps := make([]*study.Checkpoint, len(paths))
	for i, p := range paths {
		cp, err := readCheckpoint(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		cps[i] = cp
	}
	merged, err := study.MergeCheckpoints(cps...)
	if err != nil {
		return nil, err
	}
	if !merged.Complete() {
		return nil, fmt.Errorf("merged checkpoint covers %d of %d tasks; missing ranges %v — run the remaining shards or -resume",
			len(merged.Records), merged.Total, merged.Missing())
	}
	return st.Outcome(merged)
}

func readCheckpoint(path string) (*study.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return study.ReadCheckpoint(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnstudy:", err)
	os.Exit(1)
}
