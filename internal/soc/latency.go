package soc

import (
	"fmt"
	"math"
)

// LatencyModel computes OPP-transition latencies, calibrated to the
// paper's Fig. 10:
//
//   - Core hot-plug latency falls with operating frequency (the kernel's
//     hot-plug path executes on the CPU) and grows mildly with the number
//     of cores already online: ≈40 ms at 200 MHz down to ≈10 ms at 1.4 GHz.
//     Toggling a big core costs slightly more than a LITTLE core (cluster
//     power-up sequencing).
//   - A single DVFS step costs 1–3 ms, growing with the number of online
//     cores (more CPUs to synchronise) and slightly higher when the big
//     cluster is active.
type LatencyModel struct {
	// HotplugBase is the hot-plug latency at 1.4 GHz for the first core
	// transition, seconds.
	HotplugBase float64
	// HotplugPerCore adds latency per core already online.
	HotplugPerCore float64
	// HotplugBigFactor multiplies the latency when the toggled core is a
	// big (A15) core.
	HotplugBigFactor float64
	// HotplugFreqExp scales latency by (fmax/f)^exp.
	HotplugFreqExp float64
	// DVFSBase is the frequency-step latency with one core online, seconds.
	DVFSBase float64
	// DVFSPerCore adds latency per additional online core, seconds.
	DVFSPerCore float64
	// DVFSBigExtra adds cross-cluster synchronisation cost when any big
	// core is online, seconds.
	DVFSBigExtra float64
	// DVFSDownFactor scales down-steps relative to up-steps (clock
	// down-shifts complete slightly faster; Fig. 10 bottom).
	DVFSDownFactor float64
}

// DefaultLatencyModel returns coefficients calibrated to Fig. 10.
func DefaultLatencyModel() *LatencyModel {
	return &LatencyModel{
		HotplugBase:      5.0e-3,
		HotplugPerCore:   0.5e-3,
		HotplugBigFactor: 1.15,
		HotplugFreqExp:   0.78,
		DVFSBase:         0.9e-3,
		DVFSPerCore:      0.25e-3,
		DVFSBigExtra:     0.3e-3,
		DVFSDownFactor:   0.85,
	}
}

// Validate checks the plausibility of the coefficients.
func (m *LatencyModel) Validate() error {
	if m.HotplugBase <= 0 || m.DVFSBase <= 0 {
		return fmt.Errorf("soc: latency base coefficients must be positive")
	}
	if m.HotplugBigFactor <= 0 || m.DVFSDownFactor <= 0 {
		return fmt.Errorf("soc: latency factors must be positive")
	}
	if m.HotplugPerCore < 0 || m.DVFSPerCore < 0 || m.DVFSBigExtra < 0 {
		return fmt.Errorf("soc: latency increments must be non-negative")
	}
	return nil
}

// HotplugLatency returns the latency in seconds of a single-core hot-plug
// step from config from to config to (exactly one core added or removed)
// while running at frequency level freqIdx.
func (m *LatencyModel) HotplugLatency(from, to CoreConfig, freqIdx int) (float64, error) {
	dl := to.Little - from.Little
	db := to.Big - from.Big
	if abs(dl)+abs(db) != 1 {
		return 0, fmt.Errorf("soc: hot-plug transition %v->%v is not a single-core step", from, to)
	}
	if !from.Valid() || !to.Valid() {
		return 0, fmt.Errorf("soc: hot-plug transition %v->%v leaves the platform envelope", from, to)
	}
	if freqIdx < 0 || freqIdx >= NumFrequencyLevels {
		return 0, fmt.Errorf("soc: frequency level %d out of range", freqIdx)
	}
	f := FrequencyLevels()[freqIdx]
	fmax := FrequencyLevels()[NumFrequencyLevels-1]
	online := from.TotalCores()
	if to.TotalCores() > online {
		online = to.TotalCores()
	}
	lat := (m.HotplugBase + m.HotplugPerCore*float64(online-1)) * math.Pow(fmax/f, m.HotplugFreqExp)
	if db != 0 {
		lat *= m.HotplugBigFactor
	}
	return lat, nil
}

// DVFSLatency returns the latency in seconds of one frequency-ladder step
// (fromIdx -> toIdx must be adjacent) with the given core configuration
// online.
func (m *LatencyModel) DVFSLatency(fromIdx, toIdx int, cfg CoreConfig) (float64, error) {
	if d := toIdx - fromIdx; d != 1 && d != -1 {
		return 0, fmt.Errorf("soc: DVFS transition %d->%d is not a single ladder step", fromIdx, toIdx)
	}
	if fromIdx < 0 || toIdx < 0 || fromIdx >= NumFrequencyLevels || toIdx >= NumFrequencyLevels {
		return 0, fmt.Errorf("soc: DVFS transition %d->%d out of range", fromIdx, toIdx)
	}
	if !cfg.Valid() {
		return 0, fmt.Errorf("soc: DVFS step with invalid config %v", cfg)
	}
	lat := m.DVFSBase + m.DVFSPerCore*float64(cfg.TotalCores()-1)
	if cfg.Big > 0 {
		lat += m.DVFSBigExtra
	}
	if toIdx < fromIdx {
		lat *= m.DVFSDownFactor
	}
	return lat, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
