package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps stable scenario names to their declarative specs.
// Built-in scenarios self-register from builtin.go; callers may add
// their own with Register. Lookups return copies — a Spec is a value,
// so mutating a lookup result never affects the registry.
//
// Concurrency contract: every registry function (Register, MustRegister,
// Lookup, MustLookup, Names, List) is safe for concurrent use — reads
// take the shared lock, registrations the exclusive one, so campaigns
// and studies may resolve scenarios from worker goroutines while other
// code registers new ones. Registration is first-wins: a duplicate name
// errors rather than replacing, so a Spec observed through Lookup can
// never change behind a caller's back. Init-time registration (the
// built-ins' pattern) needs no locking discipline beyond this.
var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a named scenario. The name must be non-empty and unused.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: Register needs a name")
	}
	if err := s.validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register that panics on error (for init-time use).
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// MustLookup returns the named scenario, panicking when it is missing —
// for built-in names whose registration is unconditional.
func MustLookup(name string) Spec {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("scenario: %q not registered", name))
	}
	return s
}

// Names returns the registered scenario names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns the registered specs sorted by name.
func List() []Spec {
	names := Names()
	out := make([]Spec, 0, len(names))
	regMu.RLock()
	defer regMu.RUnlock()
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}
