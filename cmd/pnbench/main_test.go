package main

import (
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestParseEngine(t *testing.T) {
	cases := []struct {
		name, engine string
		width        int
	}{
		{"BenchmarkCampaignTraceFree/workers=1/engine=scalar", "scalar", 0},
		{"BenchmarkCampaignTraceFree/workers=1/engine=batched-w8", "batched", 8},
		{"BenchmarkCampaignTraceFree/workers=4/engine=batched-w8-4", "batched", 8},
		{"BenchmarkStorageDispatch/ideal-8", "", 0},
	}
	for _, c := range cases {
		eng, w := parseEngine(c.name)
		if eng != c.engine || w != c.width {
			t.Errorf("parseEngine(%q) = (%q, %d), want (%q, %d)", c.name, eng, w, c.engine, c.width)
		}
	}
}

func TestCompareReports(t *testing.T) {
	prev := Report{Results: []Result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: f64(10)},
		{Name: "BenchmarkB", Package: "p", NsPerOp: 1000, AllocsPerOp: f64(10)},
		{Name: "BenchmarkC", Package: "p", NsPerOp: 1000},
	}}
	cur := Report{Results: []Result{
		// Within tolerance, allocs flat: clean.
		{Name: "BenchmarkA", Package: "p", NsPerOp: 1100, AllocsPerOp: f64(10)},
		// Alloc regression (any increase) AND ns regression (>15%).
		{Name: "BenchmarkB", Package: "p", NsPerOp: 1200, AllocsPerOp: f64(11)},
		// Faster: never a regression.
		{Name: "BenchmarkC", Package: "p", NsPerOp: 500},
		// New benchmark with no baseline: skipped.
		{Name: "BenchmarkD", Package: "p", NsPerOp: 9e9, AllocsPerOp: f64(1e6)},
	}}
	regs := compareReports(prev, cur)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions (%v), want 2", len(regs), regs)
	}
	if !strings.Contains(regs[0], "allocs/op") || !strings.Contains(regs[0], "BenchmarkB") {
		t.Errorf("alloc regression diagnostic: %q", regs[0])
	}
	if !strings.Contains(regs[1], "ns/op") || !strings.Contains(regs[1], "BenchmarkB") {
		t.Errorf("ns regression diagnostic: %q", regs[1])
	}
	if got := compareReports(prev, prev); len(got) != 0 {
		t.Errorf("self-comparison reported regressions: %v", got)
	}
}

func TestBenchtimeMismatch(t *testing.T) {
	if msg, ok := benchtimeMismatch("50x", "50x"); !ok || msg != "" {
		t.Errorf("matching benchtimes refused: %q", msg)
	}
	if msg, ok := benchtimeMismatch("5x", "50x"); ok || !strings.Contains(msg, "5x") || !strings.Contains(msg, "50x") {
		t.Errorf("mismatched benchtimes: ok=%v msg=%q", ok, msg)
	}
	if msg, ok := benchtimeMismatch("", "50x"); ok || !strings.Contains(msg, "no benchtime") {
		t.Errorf("legacy baseline without benchtime: ok=%v msg=%q", ok, msg)
	}
}

func TestDefaultBenchCoversBatchKernels(t *testing.T) {
	// The README-quoted set must include the lockstep micro-benchmarks so
	// the CI allocs gate watches Round and SolveLanes steady state.
	for _, want := range []string{"BenchmarkBatchRound", "BenchmarkSolveLanes", "BenchmarkCampaignTraceFree"} {
		if !strings.Contains(defaultBench, want) {
			t.Errorf("defaultBench is missing %s", want)
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	pkg := "pnps/internal/sim"
	r, ok := parseBenchLine(
		"BenchmarkStorageDispatch/ideal-8         \t       5\t   7502666 ns/op\t    6177 B/op\t      31 allocs/op", pkg)
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkStorageDispatch/ideal-8" || r.Package != pkg {
		t.Errorf("identity: %+v", r)
	}
	if r.Iterations != 5 || r.NsPerOp != 7502666 {
		t.Errorf("timing: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 6177 || r.AllocsPerOp == nil || *r.AllocsPerOp != 31 {
		t.Errorf("memory: %+v", r)
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	r, ok := parseBenchLine(
		"BenchmarkCampaignTraceFree/workers=4/engine=batched-w8 \t 3\t 11937706 ns/op\t 22.02 meanPct5\t 452954 B/op\t 1453 allocs/op", "p")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Metrics["meanPct5"] != 22.02 {
		t.Errorf("custom metric: %+v", r.Metrics)
	}
	if r.Engine != "batched" || r.BatchWidth != 8 {
		t.Errorf("engine attribution: %+v", r)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tpnps/internal/sim\t0.12s",
		"BenchmarkBroken",                     // no fields
		"BenchmarkNoTiming-8 \t 10\t 42 B/op", // pairs but no ns/op
		"Benchmark bad iteration count x ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseBenchOutputTracksPackages(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pnps/internal/sim
cpu: Intel
BenchmarkA-8   	 10	 100 ns/op
PASS
pkg: pnps/internal/scenario
BenchmarkB-8   	 20	 200 ns/op	 5 B/op	 1 allocs/op
PASS
`
	rs := parseBenchOutput(out)
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	if rs[0].Package != "pnps/internal/sim" || rs[1].Package != "pnps/internal/scenario" {
		t.Errorf("package attribution: %+v", rs)
	}
	if rs[0].BytesPerOp != nil || rs[1].BytesPerOp == nil {
		t.Error("benchmem fields mis-parsed")
	}
}
