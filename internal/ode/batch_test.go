package ode

import (
	"math"
	"testing"
)

// stiffish is a mildly stiff 2-state system that forces step rejections
// at loose tolerances, exercising the per-lane reject path in lockstep.
func stiffish(k float64) RHS {
	return func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -k*y[0] - 0.5*y[1]
	}
}

// scalarTrace integrates one problem with a private Integrator and
// records every accepted (t, y...) pair plus the final Result.
func scalarTrace(t *testing.T, f RHS, t0, t1 float64, y0 []float64, opts Options) ([]float64, Result, []float64) {
	t.Helper()
	var trace []float64
	o := opts
	o.OnStep = func(tt float64, yy []float64) {
		trace = append(trace, tt)
		trace = append(trace, yy...)
	}
	y := append([]float64(nil), y0...)
	res, err := NewIntegrator().Integrate(f, t0, t1, y, o)
	if err != nil {
		t.Fatalf("scalar integrate: %v", err)
	}
	return y, res, trace
}

// TestBatchLockstepBitIdenticalToScalar runs W heterogeneous lanes —
// different RHS stiffness, spans and initial states, so lanes accept,
// reject and finish on different rounds — and requires every lane's
// final state, step/reject counts and full accepted-step trace to be
// bit-identical to a private scalar integration of the same problem.
func TestBatchLockstepBitIdenticalToScalar(t *testing.T) {
	const W, dim = 5, 2
	type lane struct {
		f      RHS
		t0, t1 float64
		y0     []float64
		opts   Options
	}
	lanes := make([]lane, W)
	for l := 0; l < W; l++ {
		k := 1.0 + 37.0*float64(l) // lane 0 smooth … lane 4 oscillatory
		lanes[l] = lane{
			f:  stiffish(k),
			t0: 0, t1: 1.0 + 0.3*float64(l),
			y0:   []float64{1 + 0.1*float64(l), -0.2 * float64(l)},
			opts: Options{RTol: 1e-6, ATol: 1e-9, InitialStep: 0.05},
		}
	}

	// Reference: scalar integrations.
	wantY := make([][]float64, W)
	wantRes := make([]Result, W)
	wantTrace := make([][]float64, W)
	for l, ln := range lanes {
		wantY[l], wantRes[l], wantTrace[l] = scalarTrace(t, ln.f, ln.t0, ln.t1, ln.y0, ln.opts)
	}

	// Batched: one shared SoA slab, lanes advanced in lockstep rounds.
	b := NewBatchIntegrator(W, dim)
	ySlab := make([]float64, W*dim)
	gotTrace := make([][]float64, W)
	for l, ln := range lanes {
		y := ySlab[l*dim : (l+1)*dim : (l+1)*dim]
		copy(y, ln.y0)
		o := ln.opts
		l := l
		o.OnStep = func(tt float64, yy []float64) {
			gotTrace[l] = append(gotTrace[l], tt)
			gotTrace[l] = append(gotTrace[l], yy...)
		}
		if err := b.Start(l, ln.f, ln.t0, ln.t1, y, o); err != nil {
			t.Fatalf("Start lane %d: %v", l, err)
		}
	}
	rounds := 0
	for b.Round() > 0 {
		rounds++
		if rounds > 100000 {
			t.Fatal("lockstep rounds did not converge")
		}
	}

	for l := range lanes {
		res, err := b.Take(l)
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
		if res.Steps != wantRes[l].Steps || res.Rejected != wantRes[l].Rejected {
			t.Errorf("lane %d: steps/rejected = %d/%d, scalar %d/%d",
				l, res.Steps, res.Rejected, wantRes[l].Steps, wantRes[l].Rejected)
		}
		if res.T != wantRes[l].T || res.LastStep != wantRes[l].LastStep {
			t.Errorf("lane %d: T/LastStep = %g/%g, scalar %g/%g",
				l, res.T, res.LastStep, wantRes[l].T, wantRes[l].LastStep)
		}
		got := ySlab[l*dim : (l+1)*dim]
		for i := range got {
			if got[i] != wantY[l][i] {
				t.Errorf("lane %d: y[%d] = %g, scalar %g (diff %g)",
					l, i, got[i], wantY[l][i], got[i]-wantY[l][i])
			}
		}
		if len(gotTrace[l]) != len(wantTrace[l]) {
			t.Fatalf("lane %d: trace length %d, scalar %d", l, len(gotTrace[l]), len(wantTrace[l]))
		}
		for i := range gotTrace[l] {
			if gotTrace[l][i] != wantTrace[l][i] {
				t.Fatalf("lane %d: trace[%d] = %g, scalar %g", l, i, gotTrace[l][i], wantTrace[l][i])
			}
		}
	}
}

// TestBatchEventsAndRestartBitIdentical drives lanes through terminal
// events and segment restarts — the divergence/rejoin pattern the sim
// layer uses — and checks bit-identity of event times, rewound states
// and post-restart integration against the scalar path.
func TestBatchEventsAndRestartBitIdentical(t *testing.T) {
	const W, dim = 3, 1
	decay := func(rate float64) RHS {
		return func(_ float64, y, dydt []float64) { dydt[0] = -rate * y[0] }
	}
	threshold := func(level float64) Event {
		return Event{
			Name:     "below",
			G:        func(_ float64, y []float64) float64 { return y[0] - level },
			Terminal: true, Direction: -1,
		}
	}
	rates := []float64{1.0, 2.5, 0.7}
	levels := []float64{0.5, 0.3, 0.8}

	type seg struct {
		t, y float64
		hit  bool
		hitT float64
	}
	runScalar := func(l int) []seg {
		in := NewIntegrator()
		y := []float64{1}
		tt := 0.0
		var segs []seg
		for s := 0; s < 3; s++ {
			res, err := in.Integrate(decay(rates[l]), tt, tt+2, y, Options{
				RTol: 1e-7, ATol: 1e-10,
				Events: []Event{threshold(levels[l] * math.Pow(0.5, float64(s)))},
			})
			if err != nil {
				t.Fatal(err)
			}
			tt = res.T
			segs = append(segs, seg{t: res.T, y: y[0], hit: res.Stopped, hitT: func() float64 {
				if len(res.Hits) > 0 {
					return res.Hits[0].T
				}
				return math.NaN()
			}()})
			if !res.Stopped {
				break
			}
		}
		return segs
	}

	want := make([][]seg, W)
	for l := 0; l < W; l++ {
		want[l] = runScalar(l)
	}

	b := NewBatchIntegrator(W, dim)
	ySlab := make([]float64, W*dim)
	got := make([][]seg, W)
	segIdx := make([]int, W)
	start := func(l int) {
		s := segIdx[l]
		tt := 0.0
		if s > 0 {
			tt = got[l][s-1].t
		}
		if err := b.Start(l, decay(rates[l]), tt, tt+2, ySlab[l:l+1], Options{
			RTol: 1e-7, ATol: 1e-10,
			Events: []Event{threshold(levels[l] * math.Pow(0.5, float64(s)))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	retired := make([]bool, W)
	activeRuns := W
	for l := 0; l < W; l++ {
		ySlab[l] = 1
		start(l)
	}
	for activeRuns > 0 {
		b.Round()
		for l := 0; l < W; l++ {
			if retired[l] || b.Running(l) {
				continue
			}
			res, err := b.Take(l)
			if err != nil {
				t.Fatal(err)
			}
			sg := seg{t: res.T, y: ySlab[l], hit: res.Stopped, hitT: math.NaN()}
			if len(res.Hits) > 0 {
				sg.hitT = res.Hits[0].T
			}
			got[l] = append(got[l], sg)
			segIdx[l]++
			if res.Stopped && segIdx[l] < 3 {
				start(l)
			} else {
				retired[l] = true
				activeRuns--
			}
		}
	}

	for l := 0; l < W; l++ {
		if len(got[l]) != len(want[l]) {
			t.Fatalf("lane %d: %d segments, scalar %d", l, len(got[l]), len(want[l]))
		}
		for s := range got[l] {
			g, w := got[l][s], want[l][s]
			if g.t != w.t || g.y != w.y || g.hit != w.hit ||
				(g.hitT != w.hitT && !(math.IsNaN(g.hitT) && math.IsNaN(w.hitT))) {
				t.Errorf("lane %d seg %d: got %+v, scalar %+v", l, s, g, w)
			}
		}
	}
}

// spyBatchRHS is a BatchRHS that counts calls and records the lane
// coverage of each, delegating the actual derivative work to per-lane
// scalar functions so results stay comparable to scalar integration.
type spyBatchRHS struct {
	fs         []RHS
	calls      int
	laneCounts []int
}

func (s *spyBatchRHS) EvalLanes(ts []float64, ys, dys [][]float64, lanes []int) {
	s.calls++
	s.laneCounts = append(s.laneCounts, len(lanes))
	for j, l := range lanes {
		s.fs[l](ts[j], ys[j], dys[j])
	}
}

// TestBatchRHSOneCallPerStagePerRound pins the batched evaluation
// contract: with every lane armed through StartBatched, each lockstep
// round issues exactly one EvalLanes call per derivative stage (three:
// k2, k3 and the FSAL k4) covering all stepping lanes — not one call
// per lane — and the integration stays bit-identical to scalar.
func TestBatchRHSOneCallPerStagePerRound(t *testing.T) {
	const W, dim = 6, 2
	f := stiffish(25)
	opts := Options{RTol: 1e-6, ATol: 1e-9, InitialStep: 0.05}

	// Scalar reference (identical problem on every lane).
	wantY, wantRes, wantTrace := scalarTrace(t, f, 0, 2, []float64{1, -0.25}, opts)

	b := NewBatchIntegrator(W, dim)
	spy := &spyBatchRHS{fs: make([]RHS, W)}
	b.SetBatchRHS(spy)
	ySlab := make([]float64, W*dim)
	gotTrace := make([][]float64, W)
	for l := 0; l < W; l++ {
		spy.fs[l] = f
		y := ySlab[l*dim : (l+1)*dim : (l+1)*dim]
		copy(y, []float64{1, -0.25})
		o := opts
		l := l
		o.OnStep = func(tt float64, yy []float64) {
			gotTrace[l] = append(gotTrace[l], tt)
			gotTrace[l] = append(gotTrace[l], yy...)
		}
		if err := b.StartBatched(l, f, 0, 2, y, o); err != nil {
			t.Fatalf("StartBatched lane %d: %v", l, err)
		}
	}
	rounds := 0
	for b.Round() > 0 {
		rounds++
	}

	// Identical lanes march in perfect lockstep: every lane attempts a
	// step on every round except the final span-covered discovery round,
	// so the batch performs exactly steps+rejected stepping rounds and 3
	// batched evaluations per stepping round, each covering all W lanes.
	attempts := wantRes.Steps + wantRes.Rejected
	if want := 3 * attempts; spy.calls != want {
		t.Errorf("EvalLanes calls = %d, want 3 stages × %d attempts = %d", spy.calls, attempts, want)
	}
	for c, n := range spy.laneCounts {
		if n != W {
			t.Errorf("EvalLanes call %d covered %d lanes, want the whole batch (%d)", c, n, W)
		}
	}
	for l := 0; l < W; l++ {
		res, err := b.Take(l)
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
		if res.Steps != wantRes.Steps || res.Rejected != wantRes.Rejected || res.T != wantRes.T {
			t.Errorf("lane %d: steps/rejected/T = %d/%d/%g, scalar %d/%d/%g",
				l, res.Steps, res.Rejected, res.T, wantRes.Steps, wantRes.Rejected, wantRes.T)
		}
		got := ySlab[l*dim : (l+1)*dim]
		for i := range got {
			if got[i] != wantY[i] {
				t.Errorf("lane %d: y[%d] = %g, scalar %g", l, i, got[i], wantY[i])
			}
		}
		if len(gotTrace[l]) != len(wantTrace) {
			t.Fatalf("lane %d: trace length %d, scalar %d", l, len(gotTrace[l]), len(wantTrace))
		}
		for i := range gotTrace[l] {
			if gotTrace[l][i] != wantTrace[i] {
				t.Fatalf("lane %d: trace[%d] = %g, scalar %g", l, i, gotTrace[l][i], wantTrace[i])
			}
		}
	}
}

// TestBatchRHSMixedLanesFallBackScalar arms only the even lanes through
// StartBatched and the odd lanes through plain Start — a mixed batch in
// which some lanes lack a batch path — and requires the batch evaluator
// to see exactly the batched lanes while every lane's full accepted-step
// trace stays bit-identical to scalar.
func TestBatchRHSMixedLanesFallBackScalar(t *testing.T) {
	const W, dim = 5, 2
	type lane struct {
		f      RHS
		t1     float64
		y0     []float64
		called int
	}
	lanes := make([]lane, W)
	for l := 0; l < W; l++ {
		l := l
		k := 2.0 + 31.0*float64(l)
		inner := stiffish(k)
		lanes[l] = lane{
			t1: 1.0 + 0.4*float64(l),
			y0: []float64{1 + 0.2*float64(l), 0.1 * float64(l)},
		}
		lanes[l].f = func(tt float64, y, dydt []float64) {
			lanes[l].called++
			inner(tt, y, dydt)
		}
	}
	opts := Options{RTol: 1e-6, ATol: 1e-9, InitialStep: 0.04}

	wantY := make([][]float64, W)
	wantTrace := make([][]float64, W)
	for l := range lanes {
		y, _, tr := scalarTrace(t, stiffish(2.0+31.0*float64(l)), 0, lanes[l].t1, lanes[l].y0, opts)
		wantY[l], wantTrace[l] = y, tr
	}

	b := NewBatchIntegrator(W, dim)
	spy := &spyBatchRHS{fs: make([]RHS, W)}
	for l := range lanes {
		spy.fs[l] = lanes[l].f
	}
	b.SetBatchRHS(spy)
	ySlab := make([]float64, W*dim)
	gotTrace := make([][]float64, W)
	for l := range lanes {
		y := ySlab[l*dim : (l+1)*dim : (l+1)*dim]
		copy(y, lanes[l].y0)
		o := opts
		l := l
		o.OnStep = func(tt float64, yy []float64) {
			gotTrace[l] = append(gotTrace[l], tt)
			gotTrace[l] = append(gotTrace[l], yy...)
		}
		var err error
		if l%2 == 0 {
			err = b.StartBatched(l, lanes[l].f, 0, lanes[l].t1, y, o)
		} else {
			err = b.Start(l, lanes[l].f, 0, lanes[l].t1, y, o)
		}
		if err != nil {
			t.Fatalf("arm lane %d: %v", l, err)
		}
	}
	for b.Round() > 0 {
	}

	if spy.calls == 0 {
		t.Fatal("EvalLanes was never called for the batched lanes")
	}
	for l := range lanes {
		if lanes[l].called == 0 {
			t.Errorf("lane %d RHS never called", l)
		}
		if _, err := b.Take(l); err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
		got := ySlab[l*dim : (l+1)*dim]
		for i := range got {
			if got[i] != wantY[l][i] {
				t.Errorf("lane %d: y[%d] = %g, scalar %g", l, i, got[i], wantY[l][i])
			}
		}
		if len(gotTrace[l]) != len(wantTrace[l]) {
			t.Fatalf("lane %d: trace length %d, scalar %d", l, len(gotTrace[l]), len(wantTrace[l]))
		}
		for i := range gotTrace[l] {
			if gotTrace[l][i] != wantTrace[l][i] {
				t.Fatalf("lane %d: trace[%d] = %g, scalar %g", l, i, gotTrace[l][i], wantTrace[l][i])
			}
		}
	}
}

// TestBatchWidthOneMatchesScalar pins the degenerate W=1 case.
func TestBatchWidthOneMatchesScalar(t *testing.T) {
	y := []float64{1, 0}
	wantY, wantRes, _ := scalarTrace(t, stiffish(40), 0, 3, y, Options{RTol: 1e-6, ATol: 1e-9})

	b := NewBatchIntegrator(1, 2)
	yb := []float64{1, 0}
	if err := b.Start(0, stiffish(40), 0, 3, yb, Options{RTol: 1e-6, ATol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	b.Drain()
	res, err := b.Take(0)
	if err != nil {
		t.Fatal(err)
	}
	if yb[0] != wantY[0] || yb[1] != wantY[1] || res.Steps != wantRes.Steps || res.T != wantRes.T {
		t.Errorf("W=1 batch diverged from scalar: y=%v want %v, steps %d want %d",
			yb, wantY, res.Steps, wantRes.Steps)
	}
}
