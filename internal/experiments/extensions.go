package experiments

import (
	"fmt"

	"pnps/internal/buffer"
	"pnps/internal/core"
	"pnps/internal/mppt"
	"pnps/internal/predict"
	"pnps/internal/pv"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// MPPTComparison quantifies the paper's claim that power-neutral voltage
// stabilisation displaces dedicated MPPT hardware: it measures the
// tracking efficiency of conventional Perturb & Observe and Incremental
// Conductance front-ends on the same array and compares them with the
// implicit efficiency the power-neutral loop achieved in the Fig. 14 run
// (energy consumed / energy available).
func MPPTComparison(seed int64) (*Report, error) {
	arr := pv.SouthamptonArray()
	po, err := mppt.NewPerturbObserve(0.05, 1.0, 6.5)
	if err != nil {
		return nil, err
	}
	ic, err := mppt.NewIncCond(0.05, 1.0, 6.5)
	if err != nil {
		return nil, err
	}

	tab := Table{
		Title:  "MPP tracking efficiency at steady irradiance (500 steps from 4.0 V)",
		Header: []string{"tracker", "G=400 W/m²", "G=1000 W/m²", "final V @1000"},
	}
	results := map[string]float64{}
	for _, tr := range []mppt.Tracker{po, ic} {
		r400, err := mppt.Track(tr, arr, 400, 4.0, 500)
		if err != nil {
			return nil, err
		}
		r1000, err := mppt.Track(tr, arr, 1000, 4.0, 500)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			tr.Name(),
			fmt.Sprintf("%.1f%%", r400.Efficiency*100),
			fmt.Sprintf("%.1f%%", r1000.Efficiency*100),
			fmt.Sprintf("%.2f V", r1000.FinalV),
		})
		results[tr.Name()] = r1000.Efficiency
	}

	// Implicit tracking efficiency of the power-neutral loop (Fig. 14).
	res, _, err := fig12Run(seed)
	if err != nil {
		return nil, err
	}
	eAvail, err := res.PowerAvailable.Integral()
	if err != nil {
		return nil, err
	}
	eCons, err := res.PowerConsumed.Integral()
	if err != nil {
		return nil, err
	}
	implicit := eCons / eAvail
	tab.Rows = append(tab.Rows, []string{
		"power-neutral (implicit)", "—", fmt.Sprintf("%.1f%%", implicit*100), "tracks knee",
	})

	r := &Report{
		ID:    "mppt",
		Title: "Implicit vs explicit maximum-power-point tracking",
		Description: "The power-neutral loop's harvest utilisation should approach the " +
			"efficiency of dedicated P&O / IncCond trackers, with zero extra hardware.",
		Tables: []Table{tab},
	}
	r.AddMetric("P&O efficiency (full sun)", results["perturb-observe"]*100, "%", "")
	r.AddMetric("IncCond efficiency (full sun)", results["incremental-conductance"]*100, "%", "")
	r.AddMetric("implicit power-neutral efficiency", implicit*100, "%",
		"paper Section V-B: 'negates the need for additional sizeable MPPT hardware'")
	return r, nil
}

// PredictiveComparison reproduces the paper's Section I argument against
// prediction-based schemes (SolarTune et al.): a slot-based
// prediction-driven governor works under steady conditions but browns out
// under micro variability that the interrupt-driven power-neutral
// controller rides through.
func PredictiveComparison(seed int64) (*Report, error) {
	const duration = 240.0
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, err
	}

	type outcome struct {
		survived bool
		lifetime float64
		instr    float64
	}
	runPredictive := func(profile pv.Profile) (outcome, error) {
		pred, err := predict.NewEWMA(0.3, 8)
		if err != nil {
			return outcome{}, err
		}
		gov, err := predict.NewGovernor(15, 0.9, pred, soc.DefaultPowerModel(), soc.DefaultPerfModel())
		if err != nil {
			return outcome{}, err
		}
		// SolarTune-class schemes carry a harvest sensor; grant the
		// baseline an ideal one (instantaneous MPP power of the array).
		arr := pv.SouthamptonArray()
		gov.Sense = func(t float64) float64 {
			p, err := arr.AvailablePower(profile.Irradiance(t))
			if err != nil {
				return 0
			}
			return p
		}
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.MinOPP())
		res, err := sim.Run(sim.Config{
			Array: pv.SouthamptonArray(), Profile: profile,
			Capacitance: 47e-3, InitialVC: mpp.V, Platform: plat,
			Governor: gov, Duration: duration, SkipSeries: true,
		})
		if err != nil {
			return outcome{}, err
		}
		return outcome{!res.BrownedOut, res.LifetimeSeconds, res.Instructions}, nil
	}
	runPN := func(profile pv.Profile) (outcome, error) {
		res, err := controllerRun(core.DefaultParams(), profile, duration, 47e-3, mpp.V, soc.MinOPP())
		if err != nil {
			return outcome{}, err
		}
		return outcome{!res.BrownedOut, res.LifetimeSeconds, res.Instructions}, nil
	}

	steady := pv.Constant(800)
	shadowed := pv.StressClouds(seed, duration) // deep micro variability

	predSteady, err := runPredictive(steady)
	if err != nil {
		return nil, err
	}
	predShadow, err := runPredictive(shadowed)
	if err != nil {
		return nil, err
	}
	pnSteady, err := runPN(steady)
	if err != nil {
		return nil, err
	}
	pnShadow, err := runPN(shadowed)
	if err != nil {
		return nil, err
	}

	tab := Table{
		Title:  "Prediction-driven vs power-neutral under micro variability (240 s)",
		Header: []string{"scheme", "conditions", "survived", "lifetime (s)", "instructions (G)"},
		Rows: [][]string{
			{"predictive (SolarTune-style)", "steady sun", fmt.Sprintf("%v", predSteady.survived),
				fmt.Sprintf("%.1f", predSteady.lifetime), fmtGiga(predSteady.instr)},
			{"predictive (SolarTune-style)", "shadowing", fmt.Sprintf("%v", predShadow.survived),
				fmt.Sprintf("%.1f", predShadow.lifetime), fmtGiga(predShadow.instr)},
			{"power-neutral (proposed)", "steady sun", fmt.Sprintf("%v", pnSteady.survived),
				fmt.Sprintf("%.1f", pnSteady.lifetime), fmtGiga(pnSteady.instr)},
			{"power-neutral (proposed)", "shadowing", fmt.Sprintf("%v", pnShadow.survived),
				fmt.Sprintf("%.1f", pnShadow.lifetime), fmtGiga(pnShadow.instr)},
		},
	}

	r := &Report{
		ID:    "predictive",
		Title: "Why prediction is not enough (paper Section I)",
		Description: "Slot-based harvest prediction cannot anticipate cloud shadowing; the " +
			"voltage-driven power-neutral controller reacts within one threshold crossing.",
		Tables: []Table{tab},
	}
	r.AddMetric("predictive survives steady sun", b2f(predSteady.survived), "bool", "")
	r.AddMetric("predictive survives shadowing", b2f(predShadow.survived), "bool",
		"paper: unsuitable for sources with significant micro variability")
	r.AddMetric("power-neutral survives shadowing", b2f(pnShadow.survived), "bool", "")
	r.AddMetric("predictive lifetime under shadowing", predShadow.lifetime, "s", "")
	return r, nil
}

// BufferComparison quantifies the paper's headline claim — "power
// neutrality means that large energy buffers are no longer required" —
// along two axes: (1) the supercapacitor an energy-neutral design needs
// to ride through harvest deficits, and (2) the minimum capacitance that
// keeps the Fig. 6 shadowing scenario alive, searched by bisection, with
// and without power-neutral control.
func BufferComparison(seed int64) (*Report, error) {
	arr := pv.SouthamptonArray()

	// (1) Energy-neutral sizing over a partly cloudy day: the load runs
	// at the mean harvest power (that is what energy neutrality means).
	day := pv.NewClouds(pv.StandardDay(), pv.PartialSun(24*3600), seed)
	const dt = 60.0
	var harvest []float64
	var mean float64
	for t := 0.0; t < 24*3600; t += dt {
		p, err := arr.AvailablePower(day.Irradiance(t))
		if err != nil {
			return nil, err
		}
		harvest = append(harvest, p)
		mean += p
	}
	mean /= float64(len(harvest))
	load := make([]float64, len(harvest))
	for i := range load {
		load[i] = mean
	}
	enFarads, enDeficit, err := buffer.EnergyNeutralSizing(harvest, load, dt,
		soc.MaxOperatingVolts, soc.MinOperatingVolts)
	if err != nil {
		return nil, err
	}
	// Leakage of that bank over a day (typical supercap leakage scale).
	bank := buffer.Supercap{Farads: enFarads, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts}
	leakWh := bank.DailyLeakageEnergy(5.0) / 3600

	// (2) Minimum surviving buffer for the Fig. 6 shadow, bisected over
	// three storage families through the scenario layer — the parasitics
	// now live in the ODE, not just in offline sizing maths.
	ctrlSpec := scenario.Spec{
		Profile:  scenario.FixedProfile(pv.DeepShadow(4)),
		Duration: 12,
	}
	staticSpec := ctrlSpec
	staticSpec.Control = scenario.Uncontrolled()
	staticSpec.Boot = soc.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}}

	minCtrl, err := scenario.MinCapacitance(ctrlSpec, 0, scenario.IdealCaps(), 0.2e-3, 10, 0.05)
	if err != nil {
		return nil, err
	}
	minStatic, err := scenario.MinCapacitance(staticSpec, 0, scenario.IdealCaps(), 1e-3, 50, 0.05)
	if err != nil {
		return nil, err
	}
	// A real supercap family (ESR + leakage simulated in the loop).
	lossy := scenario.SupercapsLike(sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
	}))
	minLossy, err := scenario.MinCapacitance(ctrlSpec, 0, lossy, 0.2e-3, 10, 0.05)
	if err != nil {
		return nil, err
	}

	tab := Table{
		Title:  "Buffer requirements by approach",
		Header: []string{"approach", "buffer needed", "notes"},
		Rows: [][]string{
			{"energy-neutral (24 h, supercap)", fmt.Sprintf("%.0f F", enFarads),
				fmt.Sprintf("worst deficit %.0f kJ; leakage ≈%.1f Wh/day", enDeficit/1e3, leakWh)},
			{"static OPP through Fig. 6 shadow", fmt.Sprintf("%.2f F", minStatic), "bisected survival"},
			{"power-neutral through Fig. 6 shadow", fmt.Sprintf("%.1f mF", minCtrl*1e3),
				"bisected survival; paper deploys 47 mF"},
			{"power-neutral, lossy supercap bank", fmt.Sprintf("%.1f mF", minLossy*1e3),
				"ESR 50 mΩ + 5 kΩ leak simulated in the live ODE"},
		},
	}

	r := &Report{
		ID:    "buffers",
		Title: "Energy buffers: energy-neutral vs power-neutral",
		Description: "Power-neutral scaling replaces farad-scale storage with tens of " +
			"millifarads of latency buffering.",
		Tables: []Table{tab},
	}
	r.AddMetric("energy-neutral supercap", enFarads, "F", "24 h perpetual operation")
	r.AddMetric("static min capacitance", minStatic, "F", "")
	r.AddMetric("power-neutral min capacitance", minCtrl*1e3, "mF", "")
	r.AddMetric("power-neutral min capacitance (lossy bank)", minLossy*1e3, "mF",
		"ESR + leakage in the live ODE; parasitics cost only a small margin")
	if minCtrl > 0 {
		r.AddMetric("buffer reduction vs static", minStatic/minCtrl, "x", "")
	}
	r.AddMetric("fits paper's 47 mF", b2f(minCtrl < 47e-3), "bool", "")
	return r, nil
}
