package workload

import (
	"bytes"
	"strings"
	"testing"
)

func tinyRender(t *testing.T) *Image {
	t.Helper()
	img, err := CornellScene().Render(RenderOptions{Width: 8, Height: 6, SamplesPerPixel: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestWritePPM(t *testing.T) {
	img := tinyRender(t)
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P6\n8 6\n255\n") {
		t.Fatalf("bad PPM header: %q", out[:16])
	}
	header := len("P6\n8 6\n255\n")
	if len(out) != header+3*8*6 {
		t.Errorf("PPM size %d, want %d", len(out), header+3*8*6)
	}
}

func TestWritePGMLuma(t *testing.T) {
	img := tinyRender(t)
	var buf bytes.Buffer
	if err := img.WritePGMLuma(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n8 6\n255\n") {
		t.Fatalf("bad PGM header: %q", out[:16])
	}
	header := len("P5\n8 6\n255\n")
	if len(out) != header+8*6 {
		t.Errorf("PGM size %d, want %d", len(out), header+8*6)
	}
}

func TestPPMDeterministic(t *testing.T) {
	a := tinyRender(t)
	b := tinyRender(t)
	var ba, bb bytes.Buffer
	if err := a.WritePPM(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePPM(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("same seed produced different PPM bytes")
	}
}
