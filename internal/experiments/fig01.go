package experiments

import (
	"fmt"

	"pnps/internal/pv"
	"pnps/internal/stats"
	"pnps/internal/trace"
)

// Fig1 regenerates the paper's Fig. 1: the power output of a 250 cm² solar
// cell over a 24-hour day, exhibiting slow 'macro' (diurnal) variability
// and fast 'micro' (cloud shadowing) variability.
func Fig1(seed int64) (*Report, error) {
	arr := pv.SmallArray()
	day := pv.StandardDay()
	span := 24 * 3600.0
	profile := pv.NewClouds(day, pv.PartialSun(span), seed)

	out := trace.NewSeries("Poutput", "W")
	macro := trace.NewSeries("Pmacro", "W")
	const step = 30.0 // seconds between samples
	for t := 0.0; t <= span; t += step {
		p, err := arr.AvailablePower(profile.Irradiance(t))
		if err != nil {
			return nil, fmt.Errorf("fig1: %w", err)
		}
		out.Append(t, p)
		pm, err := arr.AvailablePower(day.Irradiance(t))
		if err != nil {
			return nil, fmt.Errorf("fig1: %w", err)
		}
		macro.Append(t, pm)
	}

	peak, err := out.Max()
	if err != nil {
		return nil, err
	}
	// Micro variability: RMS of (output − macro envelope) during daylight.
	var resid []float64
	for i := 0; i < out.Len(); i++ {
		_, v := out.At(i)
		_, m := macro.At(i)
		if m > 0.05 {
			resid = append(resid, v-m)
		}
	}
	sum, err := stats.Summarize(resid)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:    "fig1",
		Title: "Daily solar power output (250 cm² cell), macro + micro variability",
		Description: "Synthetic irradiance: diurnal bell envelope (macro) with " +
			"stochastic cloud shadowing (micro), replacing the paper's measured trace.",
		Series: []*trace.Series{out, macro},
	}
	r.AddPaperMetric("peak power output", peak, 1.0, "W", "paper Fig. 1 peaks near 1 W")
	r.AddMetric("micro-variability residual (std dev)", sum.StdDev, "W",
		"cloud-induced deviation from clear-sky envelope")
	r.AddMetric("micro-variability worst dip", -sum.Min, "W", "deepest shadow")
	r.Plots = append(r.Plots, trace.ASCIIPlot(out, 72, 12))
	return r, nil
}
