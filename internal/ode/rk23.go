package ode

// RK23 integrates dy/dt = f(t,y) from t0 to t1 with the Bogacki–Shampine
// 3(2) embedded pair (the method behind MATLAB's ode23), adapting the step
// to the configured tolerances and localising any events in opts. y is
// updated in place and aliased by the returned Result.
//
// RK23 is a convenience wrapper that allocates a fresh Integrator per
// call; callers integrating many short segments should hold a reusable
// Integrator instead.
func RK23(f RHS, t0, t1 float64, y []float64, opts Options) (Result, error) {
	return NewIntegrator().Integrate(f, t0, t1, y, opts)
}

// hermite evaluates the cubic Hermite interpolant through (t0,y0,f0) and
// (t1,y1,f1) at time tc, writing into out.
func hermite(out []float64, t0, t1, tc float64, y0, y1, f0, f1 []float64) {
	h := t1 - t0
	s := (tc - t0) / h
	h00 := (1 + 2*s) * (1 - s) * (1 - s)
	h10 := s * (1 - s) * (1 - s)
	h01 := s * s * (3 - 2*s)
	h11 := s * s * (s - 1)
	for i := range out {
		out[i] = h00*y0[i] + h10*h*f0[i] + h01*y1[i] + h11*h*f1[i]
	}
}

func axpy(dst, y []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] = y[i] + a*x[i]
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
