package stats

import "math"

// This file holds the fixed-memory streaming accumulators used by the
// trace-free observer pipeline: campaigns and long runs summarise
// distributions online instead of retaining samples.

// Online is a mergeable streaming moment accumulator: count, mean,
// variance (Welford's algorithm) and extrema in O(1) memory. Two
// accumulators built over disjoint sample streams combine exactly with
// Merge (Chan et al.'s pairwise update), so per-run accumulators can be
// reduced across a campaign; merging in a fixed order keeps the result
// bit-identical at any worker count.
//
// The zero value is an empty accumulator, ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.mean, o.min, o.max = x, x, x
		o.m2 = 0
		return
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if x < o.min {
		o.min = x
	}
	if x > o.max {
		o.max = x
	}
}

// Merge folds the other accumulator into o, as if every observation it
// absorbed had been Added to o. Merging an empty accumulator is a no-op.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	o.mean += d * float64(other.n) / float64(n)
	o.m2 += other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}

// N returns the number of observations absorbed.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (NaN when empty).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Min returns the smallest observation (NaN when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation (NaN when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Variance returns the population variance (NaN when empty).
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation (NaN when empty).
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// P2 estimates a single quantile of an unbounded stream in O(1) memory
// with the P² algorithm (Jain & Chlamtac 1985): five markers track the
// minimum, the target quantile, the midpoints and the maximum, adjusted
// towards their ideal positions with piecewise-parabolic interpolation.
// Accuracy is exact up to five observations and typically within a
// fraction of a percent of the exact quantile for randomly ordered
// streams; monotone (sorted) streams are adversarial — the markers can
// only chase the drifting distribution — and degrade to roughly a tenth
// of the data span (see the cross-validation tests against Quantile).
// Consumers that need bin-bounded error on arbitrary orderings, or
// time-weighted observations, should use Histogram.Quantile.
type P2 struct {
	q       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	dwant   [5]float64 // desired-position increments per observation
}

// NewP2 returns a streaming estimator of the q-quantile, 0 < q < 1.
func NewP2(q float64) *P2 {
	if !(q > 0 && q < 1) {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	p := &P2{q: q}
	p.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the quantile this estimator tracks.
func (p *P2) Q() float64 { return p.q }

// N returns the number of observations absorbed.
func (p *P2) N() int { return p.n }

// Add folds one observation into the estimator.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		// Insertion-sort the first five observations into the markers.
		i := p.n
		for i > 0 && p.heights[i-1] > x {
			p.heights[i] = p.heights[i-1]
			i--
		}
		p.heights[i] = x
		p.n++
		if p.n == 5 {
			for j := range p.pos {
				p.pos[j] = float64(j + 1)
				p.want[j] = 1 + 4*p.dwant[j]
			}
		}
		return
	}

	// Find the cell k containing x and update the extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	p.n++
	for j := k + 1; j < 5; j++ {
		p.pos[j]++
	}
	for j := range p.want {
		p.want[j] += p.dwant[j]
	}

	// Adjust the three interior markers towards their desired positions.
	for j := 1; j <= 3; j++ {
		d := p.want[j] - p.pos[j]
		if (d >= 1 && p.pos[j+1]-p.pos[j] > 1) || (d <= -1 && p.pos[j-1]-p.pos[j] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := p.parabolic(j, s)
			if p.heights[j-1] < h && h < p.heights[j+1] {
				p.heights[j] = h
			} else {
				p.heights[j] = p.linear(j, s)
			}
			p.pos[j] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker j by s (±1).
func (p *P2) parabolic(j int, s float64) float64 {
	nj, njm, njp := p.pos[j], p.pos[j-1], p.pos[j+1]
	hj, hjm, hjp := p.heights[j], p.heights[j-1], p.heights[j+1]
	return hj + s/(njp-njm)*((nj-njm+s)*(hjp-hj)/(njp-nj)+(njp-nj-s)*(hj-hjm)/(nj-njm))
}

// linear is the fallback height prediction along the neighbouring marker.
func (p *P2) linear(j int, s float64) float64 {
	k := j + int(s)
	return p.heights[j] + s*(p.heights[k]-p.heights[j])/(p.pos[k]-p.pos[j])
}

// Quantile returns the current estimate: NaN when empty, the exact
// sample quantile while fewer than five observations have been seen, and
// the P² marker height thereafter.
func (p *P2) Quantile() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		// heights[:n] is sorted; interpolate the exact quantile.
		return Quantile(p.heights[:p.n], p.q)
	}
	return p.heights[2]
}

// Quantile estimates the q-quantile of the weighted observations in the
// histogram by linear interpolation within the containing bin, treating
// the weight of each bin as uniformly spread across it. Underflow mass
// is attributed to Lo and overflow mass to Hi (the histogram cannot
// resolve beyond its bounds). It returns an error when no weight has
// been recorded. Accuracy is bounded by the bin width — size the bins to
// the resolution the consumer needs.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total <= 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * h.total
	cum := h.under
	// Only genuine underflow mass maps to Lo; with none, q=0 falls
	// through to the lower edge of the first bin holding weight rather
	// than fabricating a value the data never reached.
	if target <= cum && cum > 0 {
		return h.Lo, nil
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, w := range h.Bins {
		if w > 0 && cum+w >= target {
			frac := (target - cum) / w
			return h.Lo + (float64(i)+frac)*width, nil
		}
		cum += w
	}
	return h.Hi, nil
}
