package scenario

import (
	"context"
	"testing"

	"pnps/internal/batch"
	"pnps/internal/buffer"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// supercapVsIdeal alternates runs between the ideal 47 mF capacitor and
// a real supercap bank with ESR and leakage — the paper's storage
// comparison as a Monte-Carlo campaign.
func supercapVsIdeal(k int, _ int64, s *Spec) {
	if k%2 == 0 {
		s.Storage = sim.IdealCap{Farads: 47e-3}
		return
	}
	s.Storage = sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
	})
}

// TestCampaignDeterministicAcrossWorkers: the supercap-vs-ideal campaign
// must produce bit-identical outcomes at 1, 2 and 8 workers (CI runs
// this under -race).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	base := MustLookup("stress-clouds")
	base.Duration = 20
	mk := func(workers int) *Outcome {
		out, err := Campaign{
			Base: base, Runs: 6, Seed: 99, Vary: supercapVsIdeal, Workers: workers,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		if got.Summary != ref.Summary {
			t.Fatalf("workers=%d summary diverged:\n%+v\nvs\n%+v", workers, got.Summary, ref.Summary)
		}
		for i := range ref.Results {
			a, b := ref.Results[i].Result, got.Results[i].Result
			if a.Instructions != b.Instructions || a.FinalVC != b.FinalVC ||
				a.Interrupts != b.Interrupts || a.Brownouts != b.Brownouts ||
				a.StorageEnergyEndJ != b.StorageEnergyEndJ {
				t.Fatalf("workers=%d run %d diverged", workers, i)
			}
		}
	}
}

// TestCampaignSeedsDecorrelated: with no Variant, runs still differ —
// each gets an independent weather realisation from its derived seed.
func TestCampaignSeedsDecorrelated(t *testing.T) {
	base := MustLookup("stress-clouds")
	base.Duration = 20
	out, err := Campaign{Base: base, Runs: 4, Seed: 7}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary.Runs != 4 {
		t.Fatalf("summary counted %d runs, want 4", out.Summary.Runs)
	}
	seen := map[float64]bool{}
	for k, r := range out.Results {
		if want := batch.Seed(7, k); r.Seed != want {
			t.Errorf("run %d seed %d, want %d", k, r.Seed, want)
		}
		seen[r.Result.Instructions] = true
	}
	if len(seen) < 2 {
		t.Error("all runs produced identical work — seeds not decorrelated")
	}
	if out.Summary.Instructions.Min > out.Summary.Instructions.Mean ||
		out.Summary.Instructions.Mean > out.Summary.Instructions.Max {
		t.Error("summary ordering broken")
	}
}

// TestCampaignSupercapPaysForParasitics: on an open-loop (static, no
// controller phase effects) run of the same weather, a leaky bank's
// supply trajectory is bounded above by the lossless capacitor's, so it
// never ends a run with more stored energy. Under closed-loop control
// this need not hold per run — the controller adapts to the lossy
// trajectory — which is exactly why the storage belongs in the live ODE.
func TestCampaignSupercapPaysForParasitics(t *testing.T) {
	base := MustLookup("stress-clouds")
	base.Duration = 20
	base.Control = Uncontrolled() // static MinOPP: event-free
	base.Profile = func(seed int64, span float64) pv.Profile {
		// Shallow clouds: deep occlusions would brown out even MinOPP.
		return pv.NewClouds(pv.Constant(800), pv.PartialSun(span), seed)
	}
	run := func(st sim.Storage) *Outcome {
		b := base
		b.Storage = st
		out, err := Campaign{Base: b, Runs: 3, Seed: 42}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ideal := run(sim.IdealCap{Farads: 47e-3})
	lossy := run(sim.NewSupercap(buffer.Supercap{
		Farads: 47e-3, ESROhms: 0.05, LeakOhms: 100, VMax: soc.MaxOperatingVolts,
	}))
	for i := range ideal.Results {
		a, b := ideal.Results[i].Result, lossy.Results[i].Result
		if a.BrownedOut || b.BrownedOut {
			t.Fatalf("run %d browned out — comparison requires an event-free scenario", i)
		}
		if b.StorageEnergyEndJ > a.StorageEnergyEndJ {
			t.Errorf("run %d: lossy bank ended with %.3f J > ideal %.3f J",
				i, b.StorageEnergyEndJ, a.StorageEnergyEndJ)
		}
	}
}
