package sim

import (
	"sync"

	"pnps/internal/ode"
	"pnps/internal/pv"
)

// batchRHS is RunBatch's ode.BatchRHS: one derivative-evaluation call
// per RK stage covers every stepping lane. Photovoltaic lanes are
// grouped through pv.LaneSolver.SolveLanes so all their implicit-diode
// Newton solves advance in lockstep (per-lane iterate sequences — and
// therefore warm states and results — unchanged from the scalar path),
// with the per-lane scenario lookups (irradiance, load draw, storage
// terminal shift) hoisted into flat gather passes instead of being
// re-dispatched through a closure per lane per stage. Lanes without a
// photovoltaic fast path fall back to their scalar RHS, lane by lane.
//
// The evaluation is arithmetic-identical to engine.rhs per lane: a
// predictor solve at the sensed voltage, an optional corrector solve at
// the storage's shifted terminal voltage, then the shared
// applyDerivative tail. Only the cross-lane interleaving differs, and
// lanes share no mutable state, so batched results stay bit-identical.
type batchRHS struct {
	engines []*engine
	ls      pv.LaneSolver

	// Predictor-pass gather (one slot per PV lane this call): the lane's
	// solver, clamped node voltage, irradiance, solved source current,
	// solve error and the index into the EvalLanes argument slices.
	solvers []*pv.Solver
	vs, gs  []float64
	isrc    []float64
	errs    []error
	args    []int

	// Corrector-pass gather, for lanes whose storage reports a shifted
	// terminal voltage: the same shape over the lanes needing a second
	// solve.
	csolvers []*pv.Solver
	cvs, cgs []float64
	cisrc    []float64
	cerrs    []error
	cargs    []int
}

// newBatchRHS returns a batched evaluator with scratch for n lanes.
// bind attaches the lane set before each batch; release detaches it.
func newBatchRHS(n int) *batchRHS {
	return &batchRHS{
		solvers: make([]*pv.Solver, n),
		vs:      make([]float64, n),
		gs:      make([]float64, n),
		isrc:    make([]float64, n),
		errs:    make([]error, n),
		args:    make([]int, n),

		csolvers: make([]*pv.Solver, n),
		cvs:      make([]float64, n),
		cgs:      make([]float64, n),
		cisrc:    make([]float64, n),
		cerrs:    make([]error, n),
		cargs:    make([]int, n),
	}
}

// bind attaches one RunBatch lane set (engines indexed by integrator
// lane; failed lanes are nil and never appear in EvalLanes calls).
func (b *batchRHS) bind(engines []*engine) { b.engines = engines }

// release drops every reference into the finished batch so a pooled
// evaluator cannot keep its engines (and their solver state) alive.
func (b *batchRHS) release() {
	b.engines = nil
	clear(b.solvers)
	clear(b.csolvers)
	clear(b.errs)
	clear(b.cerrs)
}

// batchScratch bundles the per-pack lockstep machinery — the SoA
// integrator and its batched evaluator, wired together once — so it can
// be recycled across packs instead of reallocated. One simulated pack
// costs a few hundred integrator rounds; without recycling, its setup
// (stage slab, gather scratch, lane-solver buffers) dominates the
// batched engine's allocation profile.
type batchScratch struct {
	bi *ode.BatchIntegrator
	br *batchRHS
}

// batchPool is a free list of idle batchScratch values, reused on exact
// (width, dim) fit. Exact fit keeps the recycled stage slab's geometry
// — and therefore every lane's buffer views — identical to a freshly
// built one, so pooling cannot perturb results; campaigns run
// constant-shape packs, so in steady state every pack after the first
// is a hit and pack setup allocates nothing. The list is capped: under
// concurrent workers at most one entry per in-flight pack is ever out,
// and mismatched shapes simply fall off.
var batchPool struct {
	sync.Mutex
	free []*batchScratch
}

const batchPoolCap = 16

// acquireBatch returns lockstep machinery for an n-lane, dim-state
// pack, recycled when an exactly matching idle scratch exists.
func acquireBatch(n, dim int) *batchScratch {
	batchPool.Lock()
	for i := len(batchPool.free) - 1; i >= 0; i-- {
		sc := batchPool.free[i]
		if sc.bi.Width() == n && sc.bi.Dim() == dim {
			batchPool.free = append(batchPool.free[:i], batchPool.free[i+1:]...)
			batchPool.Unlock()
			return sc
		}
	}
	batchPool.Unlock()
	sc := &batchScratch{bi: ode.NewBatchIntegrator(n, dim), br: newBatchRHS(n)}
	sc.bi.SetBatchRHS(sc.br)
	return sc
}

// releaseBatch returns finished machinery to the free list. Callers
// must have collected every armed lane (Take clears all per-lane
// segment state), and release drops the evaluator's engine references,
// so a pooled scratch retains only its own fixed-size buffers.
func releaseBatch(sc *batchScratch) {
	sc.br.release()
	batchPool.Lock()
	if len(batchPool.free) < batchPoolCap {
		batchPool.free = append(batchPool.free, sc)
	}
	batchPool.Unlock()
}

// EvalLanes implements ode.BatchRHS.
func (b *batchRHS) EvalLanes(ts []float64, ys, dys [][]float64, lanes []int) {
	// Gather pass: clamp each PV lane's node voltage and sample its
	// irradiance once (Irradiance is a pure function of t, so hoisting
	// it out of the corrector re-evaluation is exact); non-PV lanes
	// evaluate scalar immediately.
	n := 0
	for j, l := range lanes {
		e := b.engines[l]
		if e.fast == nil {
			e.rhs(ts[j], ys[j], dys[j])
			continue
		}
		v := ys[j][0]
		if v < 0 {
			v = 0
		}
		b.solvers[n] = e.fast
		b.vs[n] = v
		b.gs[n] = e.pvSrc.Profile.Irradiance(ts[j])
		b.args[n] = j
		n++
	}
	if n == 0 {
		return
	}

	// Predictor: all PV lanes' diode solves at the sensed voltage, in
	// lockstep.
	b.ls.SolveLanes(b.solvers[:n], b.vs[:n], b.gs[:n], b.isrc[:n], b.errs[:n])

	// Settle each lane's net current; lanes whose storage shifts the
	// terminal voltage (series resistance) queue a corrector solve.
	nc := 0
	for k := 0; k < n; k++ {
		j := b.args[k]
		e := b.engines[lanes[j]]
		isrc := b.isrc[k]
		if b.errs[k] != nil {
			// Out-of-range solves should not occur with validated
			// params; treat as zero harvest rather than aborting
			// mid-integration (same policy as netCurrent).
			isrc = 0
		}
		inet := isrc - e.loadCurrent(b.vs[k])
		y := ys[j]
		if vt := e.storage.Terminal(y, inet); vt != y[0] {
			if vt < 0 {
				vt = 0
			}
			if vt != b.vs[k] {
				b.csolvers[nc] = e.fast
				b.cvs[nc] = vt
				b.cgs[nc] = b.gs[k]
				b.cargs[nc] = j
				nc++
				continue
			}
		}
		e.applyDerivative(y, dys[j], inet)
	}
	if nc == 0 {
		return
	}

	// Corrector: re-solve harvest and load at the shifted terminal
	// voltage for the lanes that need it, again in lockstep.
	b.ls.SolveLanes(b.csolvers[:nc], b.cvs[:nc], b.cgs[:nc], b.cisrc[:nc], b.cerrs[:nc])
	for k := 0; k < nc; k++ {
		j := b.cargs[k]
		e := b.engines[lanes[j]]
		isrc := b.cisrc[k]
		if b.cerrs[k] != nil {
			isrc = 0
		}
		inet := isrc - e.loadCurrent(b.cvs[k])
		e.applyDerivative(ys[j], dys[j], inet)
	}
}
