package sim

import "pnps/internal/monitor"

// monitorCoarse returns a deliberately degraded threshold DAC: 17 taps
// over the default range (≈150 mV resolution, coarser than the paper's
// Vwidth).
func monitorCoarse() monitor.Config {
	c := monitor.DefaultConfig()
	c.Taps = 17
	return c
}
