// Package mppt implements the explicit maximum-power-point-tracking
// algorithms that conventional energy-harvesting front-ends use: Perturb
// & Observe (P&O) and Incremental Conductance (IncCond).
//
// The paper argues (Sections I and V-B) that power-neutral operation
// makes this hardware redundant: stabilising the supply at the array's
// knee *is* MPP tracking. This package provides the conventional trackers
// so the claim can be quantified — experiment id "mppt" compares the
// implicit tracking efficiency of the power-neutral loop against an ideal
// P&O front-end.
package mppt

import (
	"fmt"

	"pnps/internal/pv"
)

// Tracker steps an operating-voltage command toward the array's MPP from
// terminal measurements only.
type Tracker interface {
	// Name identifies the algorithm.
	Name() string
	// Step consumes the present operating point (v, i) and returns the
	// next voltage command.
	Step(v, i float64) float64
	// Reset clears internal state.
	Reset(v0 float64)
}

// PerturbObserve is the classic hill climber: keep stepping in the
// direction that increased power, reverse otherwise.
type PerturbObserve struct {
	// StepVolts is the perturbation size.
	StepVolts float64
	// VMin and VMax clamp the voltage command.
	VMin, VMax float64

	prevV, prevP float64
	dir          float64
	started      bool
}

// NewPerturbObserve builds a P&O tracker.
func NewPerturbObserve(stepVolts, vmin, vmax float64) (*PerturbObserve, error) {
	if stepVolts <= 0 {
		return nil, fmt.Errorf("mppt: step must be positive, got %g", stepVolts)
	}
	if !(vmax > vmin) {
		return nil, fmt.Errorf("mppt: voltage window [%g,%g] invalid", vmin, vmax)
	}
	return &PerturbObserve{StepVolts: stepVolts, VMin: vmin, VMax: vmax, dir: +1}, nil
}

// Name implements Tracker.
func (t *PerturbObserve) Name() string { return "perturb-observe" }

// Reset implements Tracker.
func (t *PerturbObserve) Reset(v0 float64) {
	t.prevV, t.prevP = v0, 0
	t.dir = +1
	t.started = false
}

// Step implements Tracker.
func (t *PerturbObserve) Step(v, i float64) float64 {
	p := v * i
	if t.started && p < t.prevP {
		t.dir = -t.dir // power fell: reverse
	}
	t.started = true
	t.prevV, t.prevP = v, p
	next := v + t.dir*t.StepVolts
	if next < t.VMin {
		next = t.VMin
		t.dir = +1
	}
	if next > t.VMax {
		next = t.VMax
		t.dir = -1
	}
	return next
}

// IncCond is the incremental-conductance tracker: at the MPP,
// dI/dV = −I/V; step toward satisfying that identity. It converges
// without the oscillation P&O exhibits at the optimum.
type IncCond struct {
	// StepVolts is the voltage step size.
	StepVolts float64
	// VMin and VMax clamp the voltage command.
	VMin, VMax float64
	// Epsilon is the conductance-match tolerance.
	Epsilon float64

	prevV, prevI float64
	started      bool
}

// NewIncCond builds an incremental-conductance tracker.
func NewIncCond(stepVolts, vmin, vmax float64) (*IncCond, error) {
	if stepVolts <= 0 {
		return nil, fmt.Errorf("mppt: step must be positive, got %g", stepVolts)
	}
	if !(vmax > vmin) {
		return nil, fmt.Errorf("mppt: voltage window [%g,%g] invalid", vmin, vmax)
	}
	return &IncCond{StepVolts: stepVolts, VMin: vmin, VMax: vmax, Epsilon: 1e-3}, nil
}

// Name implements Tracker.
func (t *IncCond) Name() string { return "incremental-conductance" }

// Reset implements Tracker.
func (t *IncCond) Reset(v0 float64) {
	t.prevV, t.prevI = v0, 0
	t.started = false
}

// Step implements Tracker.
func (t *IncCond) Step(v, i float64) float64 {
	defer func() { t.prevV, t.prevI = v, i }()
	if !t.started {
		t.started = true
		return clampV(v+t.StepVolts, t.VMin, t.VMax)
	}
	dv := v - t.prevV
	di := i - t.prevI
	var move float64
	if dv == 0 {
		switch {
		case di > 0:
			move = +t.StepVolts
		case di < 0:
			move = -t.StepVolts
		}
	} else {
		inc := di / dv   // incremental conductance
		target := -i / v // negative instantaneous conductance
		switch {
		case inc-target > t.Epsilon: // left of MPP
			move = +t.StepVolts
		case target-inc > t.Epsilon: // right of MPP
			move = -t.StepVolts
		}
	}
	return clampV(v+move, t.VMin, t.VMax)
}

func clampV(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TrackResult summarises a tracking run against the array model.
type TrackResult struct {
	// Efficiency is harvested energy / ideal MPP energy over the run.
	Efficiency float64
	// FinalV is the final voltage command.
	FinalV float64
	// Steps is the number of tracker iterations.
	Steps int
}

// Track runs a tracker against the array at fixed irradiance for n steps
// starting from v0, assuming the converter settles to each voltage
// command between steps (ideal front-end). It returns the achieved
// tracking efficiency.
func Track(tr Tracker, arr *pv.Array, g, v0 float64, n int) (TrackResult, error) {
	if n < 1 {
		return TrackResult{}, fmt.Errorf("mppt: need >=1 step, got %d", n)
	}
	mpp, err := arr.MaximumPowerPoint(g)
	if err != nil {
		return TrackResult{}, err
	}
	if mpp.P == 0 {
		return TrackResult{}, fmt.Errorf("mppt: dark array")
	}
	tr.Reset(v0)
	v := v0
	var harvested float64
	for k := 0; k < n; k++ {
		i, err := arr.CurrentAt(v, g)
		if err != nil {
			return TrackResult{}, err
		}
		harvested += v * i
		v = tr.Step(v, i)
	}
	return TrackResult{
		Efficiency: harvested / (mpp.P * float64(n)),
		FinalV:     v,
		Steps:      n,
	}, nil
}
