package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	pkg := "pnps/internal/sim"
	r, ok := parseBenchLine(
		"BenchmarkStorageDispatch/ideal-8         \t       5\t   7502666 ns/op\t    6177 B/op\t      31 allocs/op", pkg)
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkStorageDispatch/ideal-8" || r.Package != pkg {
		t.Errorf("identity: %+v", r)
	}
	if r.Iterations != 5 || r.NsPerOp != 7502666 {
		t.Errorf("timing: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 6177 || r.AllocsPerOp == nil || *r.AllocsPerOp != 31 {
		t.Errorf("memory: %+v", r)
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	r, ok := parseBenchLine(
		"BenchmarkCampaignTraceFree/workers=4-8 \t 3\t 11937706 ns/op\t 22.02 meanPct5\t 452954 B/op\t 1453 allocs/op", "p")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Metrics["meanPct5"] != 22.02 {
		t.Errorf("custom metric: %+v", r.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tpnps/internal/sim\t0.12s",
		"BenchmarkBroken",                     // no fields
		"BenchmarkNoTiming-8 \t 10\t 42 B/op", // pairs but no ns/op
		"Benchmark bad iteration count x ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseBenchOutputTracksPackages(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pnps/internal/sim
cpu: Intel
BenchmarkA-8   	 10	 100 ns/op
PASS
pkg: pnps/internal/scenario
BenchmarkB-8   	 20	 200 ns/op	 5 B/op	 1 allocs/op
PASS
`
	rs := parseBenchOutput(out)
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	if rs[0].Package != "pnps/internal/sim" || rs[1].Package != "pnps/internal/scenario" {
		t.Errorf("package attribution: %+v", rs)
	}
	if rs[0].BytesPerOp != nil || rs[1].BytesPerOp == nil {
		t.Error("benchmem fields mis-parsed")
	}
}
