package study

import (
	"context"
	"strings"
	"testing"

	"pnps/internal/batch"
	"pnps/internal/buffer"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// testStudy is the shared storage × workload matrix the contract tests
// run: 2 × 2 cells, 2 repetitions each — 8 ledger tasks of a short
// cloud-stressed scenario, with the dwell histogram on so histogram
// determinism is covered too.
func testStudy(workers int) Study {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 12
	return Study{
		Name: "contract",
		Base: base,
		Axes: []Axis{
			NewAxis("storage",
				Storage("ideal", sim.IdealCap{Farads: 47e-3}),
				Storage("supercap", sim.NewSupercap(buffer.Supercap{
					Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
				}))),
			NewAxis("load", Utilisation(1), Utilisation(0.6)),
		},
		Reps: 2, Seed: 23, Workers: workers,
		VCHistBins: 32, VCHistLo: 4, VCHistHi: 6,
	}
}

// sameOutcome asserts two study outcomes are bit-identical in every
// aggregate: overall summary, cells, marginals, dwell bands and
// histogram bins.
func sameOutcome(t *testing.T, label string, a, b *StudyOutcome) {
	t.Helper()
	if a.Summary != b.Summary {
		t.Fatalf("%s: overall summary diverged:\n%+v\nvs\n%+v", label, a.Summary, b.Summary)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("%s: %d vs %d cells", label, len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].Cell.Key != b.Cells[i].Cell.Key {
			t.Fatalf("%s: cell %d key %q vs %q", label, i, a.Cells[i].Cell.Key, b.Cells[i].Cell.Key)
		}
		if a.Cells[i].Summary != b.Cells[i].Summary {
			t.Fatalf("%s: cell %q summary diverged", label, a.Cells[i].Cell.Key)
		}
		ah, bh := a.Cells[i].DwellVC, b.Cells[i].DwellVC
		if (ah == nil) != (bh == nil) || (ah != nil && *ah != *bh) {
			t.Fatalf("%s: cell %q dwell band diverged", label, a.Cells[i].Cell.Key)
		}
	}
	if len(a.Marginals) != len(b.Marginals) {
		t.Fatalf("%s: marginal counts diverged", label)
	}
	for i := range a.Marginals {
		if a.Marginals[i] != b.Marginals[i] {
			t.Fatalf("%s: marginal %s=%s diverged", label, a.Marginals[i].Axis, a.Marginals[i].Level)
		}
	}
	switch {
	case a.VCHistogram == nil && b.VCHistogram == nil:
	case a.VCHistogram == nil || b.VCHistogram == nil:
		t.Fatalf("%s: one outcome lost its histogram", label)
	default:
		if a.VCHistogram.Total() != b.VCHistogram.Total() {
			t.Fatalf("%s: histogram totals diverged", label)
		}
		for i, w := range a.VCHistogram.Bins {
			if b.VCHistogram.Bins[i] != w {
				t.Fatalf("%s: histogram bin %d diverged", label, i)
			}
		}
	}
}

// TestStudyMatrixShape: the 2 × 2 matrix expands in canonical order
// (last axis fastest) with labelled cells and per-axis marginals, and
// per-cell run counts partition the ledger.
func TestStudyMatrixShape(t *testing.T) {
	out, err := testStudy(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{
		"storage=ideal load=util=1", "storage=ideal load=util=0.6",
		"storage=supercap load=util=1", "storage=supercap load=util=0.6",
	}
	if len(out.Cells) != len(wantKeys) {
		t.Fatalf("%d cells, want %d", len(out.Cells), len(wantKeys))
	}
	total := 0
	for i, c := range out.Cells {
		if c.Cell.Key != wantKeys[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Cell.Key, wantKeys[i])
		}
		if c.Summary.Runs != 2 {
			t.Errorf("cell %q aggregated %d runs, want 2", c.Cell.Key, c.Summary.Runs)
		}
		if c.DwellVC == nil {
			t.Errorf("cell %q missing dwell band", c.Cell.Key)
		}
		total += c.Summary.Runs
	}
	if total != out.Summary.Runs || total != 8 {
		t.Fatalf("cells hold %d runs, study %d, want 8", total, out.Summary.Runs)
	}
	if len(out.Marginals) != 4 {
		t.Fatalf("%d marginals, want 4 (2 axes × 2 levels)", len(out.Marginals))
	}
	for _, m := range out.Marginals {
		if m.Summary.Runs != 4 {
			t.Errorf("marginal %s=%s aggregated %d runs, want 4", m.Axis, m.Level, m.Summary.Runs)
		}
	}
	if out.DwellVC == nil || out.VCHistogram == nil {
		t.Fatal("study-wide dwell summary missing")
	}
	if out.DwellVC.P5 > out.DwellVC.Median || out.DwellVC.Median > out.DwellVC.P95 {
		t.Errorf("dwell band inverted: %+v", out.DwellVC)
	}
}

// TestStudyDeterministicAcrossWorkers: the matrix aggregate is
// bit-identical at 1, 2 and 8 workers (CI runs this under -race).
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	ref, err := testStudy(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := testStudy(workers).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, "workers", ref, got)
	}
}

// TestStudyShardMergeEqualsUnsharded: for several shard counts, running
// every shard separately (at varying worker counts), merging the
// checkpoints and folding them into an outcome reproduces the unsharded
// run bit for bit — the distributed-execution contract.
func TestStudyShardMergeEqualsUnsharded(t *testing.T) {
	ref, err := testStudy(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 8} {
		cps := make([]*Checkpoint, n)
		for i := 0; i < n; i++ {
			st := testStudy(1 + i%2) // shards need not agree on workers
			cp, err := st.RunShard(context.Background(), i, n)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			cps[i] = cp
		}
		merged, err := MergeCheckpoints(cps...)
		if err != nil {
			t.Fatalf("merge n=%d: %v", n, err)
		}
		if !merged.Complete() {
			t.Fatalf("n=%d: merged checkpoint incomplete, missing %v", n, merged.Missing())
		}
		got, err := testStudy(0).Outcome(merged)
		if err != nil {
			t.Fatalf("outcome n=%d: %v", n, err)
		}
		sameOutcome(t, "shards", ref, got)
	}
}

// TestStudyCheckpointResume: an interrupted study (one shard of three)
// serialises, round-trips through JSON, reports its missing ranges,
// resumes, and the completed checkpoint's outcome matches the unsharded
// run bit for bit.
func TestStudyCheckpointResume(t *testing.T) {
	st := testStudy(0)
	partial, err := st.RunShard(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Complete() {
		t.Fatal("one shard of three cannot be complete")
	}
	if _, err := st.Outcome(partial); err == nil ||
		!strings.Contains(err.Error(), "missing task ranges") {
		t.Fatalf("incomplete outcome error = %v, want missing-ranges report", err)
	}

	// JSON round-trip preserves the ledger exactly.
	var buf strings.Builder
	if err := partial.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Records) != len(partial.Records) || restored.Total != partial.Total {
		t.Fatalf("round-trip lost records: %d/%d vs %d/%d",
			len(restored.Records), restored.Total, len(partial.Records), partial.Total)
	}
	for i := range partial.Records {
		if restored.Records[i].Metrics != partial.Records[i].Metrics {
			t.Fatalf("record %d metrics changed across JSON round-trip", i)
		}
	}

	full, err := st.Resume(context.Background(), restored)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete() {
		t.Fatalf("resume left ranges missing: %v", full.Missing())
	}
	got, err := st.Outcome(full)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "resume", ref, got)
}

// TestStudyCheckpointSafety: merges refuse overlapping shards and
// checkpoints from different studies; Outcome refuses a foreign
// checkpoint.
func TestStudyCheckpointSafety(t *testing.T) {
	st := testStudy(0)
	a, err := st.RunShard(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(a, a); err == nil ||
		!strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping merge error = %v", err)
	}
	other := st
	other.Seed++
	b, err := other.RunShard(context.Background(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(a, b); err == nil ||
		!strings.Contains(err.Error(), "different studies") {
		t.Fatalf("cross-study merge error = %v", err)
	}
	if _, err := other.Outcome(a); err == nil {
		t.Fatal("foreign checkpoint accepted by Outcome")
	}

	// The base spec is part of the fingerprint: a shard cut from a
	// different duration of the "same" matrix must refuse to merge.
	longer := st
	longer.Base.Duration = st.Base.Duration * 2
	c, err := longer.RunShard(context.Background(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(a, c); err == nil ||
		!strings.Contains(err.Error(), "different studies") {
		t.Fatalf("cross-duration merge error = %v", err)
	}
}

// TestStudyGroups: the ad-hoc Group hook aggregates into per-label
// summaries on the study outcome itself (first-occurrence ledger
// order), surviving the checkpoint path identically.
func TestStudyGroups(t *testing.T) {
	st := testStudy(0)
	st.Group = func(rep int, _ int64, _ scenario.Spec) string {
		if rep == 0 {
			return "first-sky"
		}
		return "later-skies"
	}
	out, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Groups) != 2 || out.Groups[0].Name != "first-sky" || out.Groups[1].Name != "later-skies" {
		t.Fatalf("groups = %+v, want [first-sky later-skies]", out.Groups)
	}
	if out.Groups[0].Summary.Runs+out.Groups[1].Summary.Runs != out.Summary.Runs {
		t.Error("group run counts do not partition the study")
	}
	cp, err := st.RunShard(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Outcome(cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Groups {
		if got.Groups[i] != out.Groups[i] {
			t.Fatalf("group %q diverged through the checkpoint path", out.Groups[i].Name)
		}
	}
}

// TestStudySeedModes: SeedPerTask decorrelates every run, SeedPerRep
// pairs repetitions across cells (common random numbers), SeedShared
// holds the realisation fixed everywhere.
func TestStudySeedModes(t *testing.T) {
	st := testStudy(0)
	st.Reps = 2

	st.SeedMode = SeedPerTask
	out, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range out.Results {
		if want := batch.Seed(st.Seed, r.Task.Index); r.Task.Seed != want {
			t.Fatalf("task %d seed %d, want %d", r.Task.Index, r.Task.Seed, want)
		}
		seen[r.Task.Seed] = true
	}
	if len(seen) != len(out.Results) {
		t.Fatal("per-task seeds collided")
	}

	st.SeedMode = SeedPerRep
	out, err = st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Results {
		if want := batch.Seed(st.Seed, r.Task.Rep); r.Task.Seed != want {
			t.Fatalf("paired task %d seed %d, want rep-derived %d", r.Task.Index, r.Task.Seed, want)
		}
	}

	st.SeedMode = SeedShared
	out, err = st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Results {
		if r.Task.Seed != st.Seed {
			t.Fatalf("shared-seed task %d got seed %d", r.Task.Index, r.Task.Seed)
		}
	}
}

// TestStudyPlanValidation: malformed matrices are rejected up front.
func TestStudyPlanValidation(t *testing.T) {
	base := scenario.MustLookup("steady-sun")
	cases := []struct {
		name string
		st   Study
		want string
	}{
		{"unnamed axis", Study{Base: base, Axes: []Axis{NewAxis("", Utilisation(1))}}, "needs a name"},
		{"empty axis", Study{Base: base, Axes: []Axis{NewAxis("x")}}, "no levels"},
		{"duplicate axis", Study{Base: base, Axes: []Axis{
			NewAxis("x", Utilisation(1)), NewAxis("x", Utilisation(0.5)),
		}}, "duplicate axis"},
		{"duplicate level", Study{Base: base, Axes: []Axis{
			NewAxis("x", Utilisation(1), Utilisation(1)),
		}}, "duplicate level"},
		{"nil setter", Study{Base: base, Axes: []Axis{
			NewAxis("x", Level{Label: "a"}),
		}}, "no setter"},
		{"bad hist bounds", Study{Base: base, VCHistBins: 8, VCHistLo: 6, VCHistHi: 4}, "invalid"},
	}
	for _, tc := range cases {
		if _, err := tc.st.Run(context.Background()); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := testStudy(0).RunShard(context.Background(), 3, 3); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := testStudy(0).RunShard(context.Background(), 0, 0); err == nil {
		t.Error("zero shard count accepted")
	}
}

// TestStudyCampaignEquivalence: a Campaign and its single-cell Study
// counterpart execute the identical ledger — same seeds, same per-run
// results — pinning the campaign re-implementation to the engine.
func TestStudyCampaignEquivalence(t *testing.T) {
	base := scenario.MustLookup("stress-clouds")
	base.Duration = 12
	camp, err := Campaign{Base: base, Runs: 4, Seed: 31, VCHistBins: 16, VCHistLo: 4, VCHistHi: 6}.
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := Study{Base: base, Reps: 4, Seed: 31, VCHistBins: 16, VCHistLo: 4, VCHistHi: 6}
	out, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary != camp.Summary {
		t.Fatalf("single-cell study summary diverged from campaign:\n%+v\nvs\n%+v",
			out.Summary, camp.Summary)
	}
	for i := range camp.Results {
		if camp.Results[i].Seed != out.Results[i].Task.Seed {
			t.Fatalf("run %d seeds diverged", i)
		}
		if metricsFrom(camp.Results[i].Result) != out.Results[i].Metrics {
			t.Fatalf("run %d metrics diverged", i)
		}
	}
	for i, w := range camp.VCHistogram.Bins {
		if out.VCHistogram.Bins[i] != w {
			t.Fatalf("histogram bin %d diverged", i)
		}
	}
}
