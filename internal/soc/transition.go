package soc

import (
	"fmt"
)

// TransitionStepReport describes one atomic step of an analysed transition.
type TransitionStepReport struct {
	From, To  OPP
	IsHotplug bool
	Seconds   float64
	// Watts is the board power during the step (max of the endpoints).
	Watts float64
	// Coulombs is the charge drawn during the step at the analysis supply
	// voltage.
	Coulombs float64
}

// TransitionReport aggregates the cost of a full OPP transition — the
// paper's Table I analysis.
type TransitionReport struct {
	From, To OPP
	Order    TransitionOrder
	Steps    []TransitionStepReport
	// TotalSeconds is the paper's transition time δ.
	TotalSeconds float64
	// Coulombs is the paper's ∫I dt over the transition.
	Coulombs float64
	// RequiredCapacitance is the buffer capacitance that can supply
	// Coulombs while drooping by the allowed voltage margin, farads.
	RequiredCapacitance float64
}

// AnalyzeTransition computes the time and charge expended transitioning
// from one OPP to another in the given order, assuming the supply is held
// at supplyVolts and the workload keeps the CPU saturated. droopVolts is
// the supply droop the buffer capacitor may absorb before brownout
// (paper: from the operating point down to the 4.1 V minimum); the
// required capacitance is Coulombs/droopVolts.
func AnalyzeTransition(pm *PowerModel, lm *LatencyModel, from, to OPP, order TransitionOrder, supplyVolts, droopVolts float64) (TransitionReport, error) {
	if supplyVolts <= 0 {
		return TransitionReport{}, fmt.Errorf("soc: supply voltage must be positive, got %g", supplyVolts)
	}
	if droopVolts <= 0 {
		return TransitionReport{}, fmt.Errorf("soc: allowed droop must be positive, got %g", droopVolts)
	}
	steps, err := planSteps(nil, from, to, order)
	if err != nil {
		return TransitionReport{}, err
	}
	rep := TransitionReport{From: from, To: to, Order: order}
	for _, s := range steps {
		var lat float64
		if s.isHotplug {
			lat, err = lm.HotplugLatency(s.from.Config, s.to.Config, s.from.FreqIdx)
		} else {
			lat, err = lm.DVFSLatency(s.from.FreqIdx, s.to.FreqIdx, s.from.Config)
		}
		if err != nil {
			return TransitionReport{}, err
		}
		pw := pm.PowerAtFullLoad(s.from)
		if pt := pm.PowerAtFullLoad(s.to); pt > pw {
			pw = pt
		}
		q := pw / supplyVolts * lat
		rep.Steps = append(rep.Steps, TransitionStepReport{
			From: s.from, To: s.to, IsHotplug: s.isHotplug,
			Seconds: lat, Watts: pw, Coulombs: q,
		})
		rep.TotalSeconds += lat
		rep.Coulombs += q
	}
	rep.RequiredCapacitance = rep.Coulombs / droopVolts
	return rep, nil
}
