// Command pnbench runs the repository's key performance benchmarks
// reproducibly and emits a machine-readable JSON report, so perf
// trajectories can be tracked commit over commit without ad-hoc
// harnesses:
//
//	pnbench [-out BENCH_campaign.json] [-bench regex] [-benchtime 5x] [-count 1] [-pkg ./...]
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` and
// parses the standard benchmark output into one record per benchmark:
// iterations, ns/op, B/op, allocs/op and any custom metrics
// (e.g. meanPct5 for campaign stability). The default benchmark set is
// the perf-critical path: the storage-dispatch alloc guard, the
// end-to-end controller minute and the trace-free campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the benchmarks whose numbers the README quotes.
const defaultBench = "BenchmarkStorageDispatch|BenchmarkSimControllerMinute|BenchmarkCampaignTraceFree|BenchmarkIntegratorSegment"

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark and the
	// -cpu suffix (e.g. "BenchmarkStorageDispatch/ideal-8").
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in.
	Package string `json:"package"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document. Go version, GOMAXPROCS and the
// CPU count pin the execution environment, so perf-trajectory entries
// from different machines (or container CPU quotas) are comparable —
// an ns/op regression on 4 CPUs is not a regression against a 32-CPU
// baseline.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Timestamp  string   `json:"timestamp"`
	Bench      string   `json:"bench_regex"`
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_campaign.json", "output JSON path (- for stdout)")
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime value (fixed -Nx iteration counts keep runs reproducible)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", "./...", "package pattern to benchmark")
		verbose   = flag.Bool("v", false, "echo the raw go test output to stderr")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if *verbose {
		fmt.Fprint(os.Stderr, string(raw))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Results:    parseBenchOutput(string(raw)),
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "pnbench: no benchmark results parsed — check the -bench regex")
		os.Exit(1)
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnbench: %v\n", err)
			os.Exit(1)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "pnbench: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Printf("pnbench: wrote %d results to %s\n", len(rep.Results), *out)
	}
}

// parseBenchOutput extracts benchmark result lines from go test output.
// Package context comes from the interleaved "pkg:" lines.
func parseBenchOutput(out string) []Result {
	var results []Result
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	return results
}

// parseBenchLine parses one standard benchmark output line:
//
//	BenchmarkName/sub-8  	 100	 123456 ns/op	 42 B/op	 7 allocs/op	 93.3 pct5
//
// ok is false for non-benchmark lines.
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	seen := false
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}
