// Package workload provides the benchmark workloads of the paper's
// evaluation: a faithful Go port of the smallpt global-illumination path
// tracer [12] (the CPU-saturating, embarrassingly parallel application the
// authors ran on the ODROID-XU4), and synthetic utilisation profiles for
// driving the simulated governors.
//
// The path tracer is a real renderer: examples and benchmarks execute it
// on the host to produce images and FPS measurements, while the
// co-simulation uses the calibrated soc.PerfModel to model its throughput
// at each OPP.
package workload

import "math"

// Vec is a 3-component vector used for positions, directions and RGB
// radiance.
type Vec struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product (used for colour filtering).
func (v Vec) Mul(w Vec) Vec { return Vec{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the unit vector in v's direction (zero vector is returned
// unchanged).
func (v Vec) Norm() Vec {
	l := math.Sqrt(v.Dot(v))
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Length returns the Euclidean norm.
func (v Vec) Length() float64 { return math.Sqrt(v.Dot(v)) }

// MaxComponent returns the largest of X, Y, Z.
func (v Vec) MaxComponent() float64 {
	m := v.X
	if v.Y > m {
		m = v.Y
	}
	if v.Z > m {
		m = v.Z
	}
	return m
}

// clamp01 clamps x into [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ToSRGB converts linear radiance to an 8-bit sRGB-ish value with the
// smallpt gamma of 2.2.
func ToSRGB(x float64) uint8 {
	return uint8(math.Pow(clamp01(x), 1/2.2)*255 + 0.5)
}
