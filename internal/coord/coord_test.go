package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pnps/internal/study"
	"pnps/internal/studycli"
)

// testRecipe is the study the coordinator tests run: 2 storage × 2
// utilisation cells × 2 reps = 8 ledger tasks of a short cloud-stressed
// scenario, dwell histogram on. Built through studycli.Config so the
// tests exercise the exact recipe round-trip workers use in production.
func testRecipe() studycli.Config {
	return studycli.Config{
		Scenario: "stress-clouds", Duration: 12,
		Storage: "ideal:0.047,supercap:0.047", Util: "1,0.6",
		Reps: 2, Seed: 23,
		Bins: 32, HistLo: 4, HistHi: 6,
	}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	recipe := testRecipe()
	st, err := recipe.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(recipe)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Study = st
	cfg.Recipe = raw
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildFromRecipe(raw json.RawMessage) (study.Study, error) {
	var c studycli.Config
	if err := json.Unmarshal(raw, &c); err != nil {
		return study.Study{}, err
	}
	return c.Build()
}

// sameOutcome asserts two outcomes are bit-identical: the full exported
// aggregate byte for byte (Go serialises float64 losslessly), plus the
// raw dwell histogram bins the export summarises away.
func sameOutcome(t *testing.T, label string, a, b *study.StudyOutcome) {
	t.Helper()
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("%s: exported aggregates diverged:\n%s\nvs\n%s", label, ja.String(), jb.String())
	}
	switch {
	case a.VCHistogram == nil && b.VCHistogram == nil:
	case a.VCHistogram == nil || b.VCHistogram == nil:
		t.Fatalf("%s: one outcome lost its histogram", label)
	default:
		if a.VCHistogram.Total() != b.VCHistogram.Total() {
			t.Fatalf("%s: histogram totals diverged", label)
		}
		for i, w := range a.VCHistogram.Bins {
			if b.VCHistogram.Bins[i] != w {
				t.Fatalf("%s: histogram bin %d diverged", label, i)
			}
		}
	}
}

// TestCoordinatorEndToEnd is the acceptance test: a study executed
// through the coordinator by three workers — one of which leases a
// chunk and dies without submitting, forcing an expiry and re-lease —
// produces a StudyOutcome bit-identical to a single-process Study.Run.
func TestCoordinatorEndToEnd(t *testing.T) {
	refStudy, err := testRecipe().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refStudy.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var chunkEvents int
	var evMu sync.Mutex
	s := testServer(t, Config{
		ChunkSize: 2, LeaseTTL: 200 * time.Millisecond,
		Backoff: time.Millisecond, MaxAttempts: 5,
		Logf: t.Logf,
		OnChunk: func(st Status) {
			evMu.Lock()
			defer evMu.Unlock()
			chunkEvents++
			if st.FoldedTasks > 0 && len(st.Marginals) == 0 {
				t.Error("OnChunk status carries folded tasks but no live marginals")
			}
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The casualty: lease a chunk and vanish. Its lease must expire and
	// the chunk be re-run by a surviving worker.
	var dead Lease
	if _, err := (&Worker{URL: srv.URL}).doJSON(context.Background(),
		http.MethodPost, "/v1/lease", LeaseRequest{Worker: "casualty"}, &dead); err != nil {
		t.Fatal(err)
	}
	if !dead.Granted {
		t.Fatalf("casualty got no lease: %+v", dead)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		w := &Worker{
			URL: srv.URL, Name: fmt.Sprintf("worker-%d", i),
			BuildStudy: buildFromRecipe, Workers: 1, Logf: t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.Run(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	select {
	case <-s.Done():
	default:
		t.Fatal("workers exited but coordinator is not done")
	}
	got, err := s.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "coordinated run", ref, got)

	st := s.Status()
	if !st.Done || st.FoldedTasks != st.TotalTasks || st.DoneChunks != st.TotalChunks {
		t.Fatalf("final status not complete: %+v", st)
	}
	evMu.Lock()
	if chunkEvents != st.TotalChunks {
		t.Errorf("OnChunk fired %d times, want %d", chunkEvents, st.TotalChunks)
	}
	evMu.Unlock()

	// The HTTP outcome endpoint serves the same bytes the reference
	// exports.
	resp, err := http.Get(srv.URL + "/v1/outcome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var want, body bytes.Buffer
	if err := ref.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body.Bytes(), want.Bytes()) {
		t.Fatalf("GET /v1/outcome = HTTP %d, diverges from reference export", resp.StatusCode)
	}
}

// leaseAndRun grants a lease directly and executes its chunk, returning
// the lease and serialised checkpoint — the raw material the hostile
// submission tests corrupt.
func leaseAndRun(t *testing.T, s *Server, worker string) (Lease, *study.Checkpoint) {
	t.Helper()
	lease := s.lease(worker)
	if !lease.Granted {
		t.Fatalf("no lease for %s: %+v", worker, lease)
	}
	cp, err := s.cfg.Study.RunChunk(context.Background(), lease.Range)
	if err != nil {
		t.Fatal(err)
	}
	return lease, cp
}

func submission(t *testing.T, worker string, chunk int, leaseID string, cp *study.Checkpoint) Submission {
	t.Helper()
	var buf bytes.Buffer
	if err := cp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return Submission{Worker: worker, Chunk: chunk, LeaseID: leaseID, Checkpoint: buf.Bytes()}
}

// TestCoordinatorRejectsHostileSubmissions: corrupt checkpoints, wrong
// fingerprints and stale leases are refused with the right status codes,
// and a refused chunk can still be completed by a good submission on the
// same lease.
func TestCoordinatorRejectsHostileSubmissions(t *testing.T) {
	s := testServer(t, Config{ChunkSize: 2, Logf: t.Logf})
	lease, cp := leaseAndRun(t, s, "tester")

	// Structurally corrupt checkpoint: duplicate ledger index.
	bad := submission(t, "tester", lease.Chunk, lease.LeaseID, cp)
	var corrupt map[string]any
	if err := json.Unmarshal(bad.Checkpoint, &corrupt); err != nil {
		t.Fatal(err)
	}
	recs := corrupt["records"].([]any)
	recs[1].(map[string]any)["task"] = recs[0].(map[string]any)["task"]
	bad.Checkpoint, _ = json.Marshal(corrupt)
	if code, res := s.submit(bad); code != http.StatusUnprocessableEntity || !strings.Contains(res.Error, "duplicate") {
		t.Fatalf("corrupt checkpoint: HTTP %d %q, want 422 duplicate-index error", code, res.Error)
	}

	// A valid checkpoint of a different study: rejected on fingerprint.
	foreignRecipe := testRecipe()
	foreignRecipe.Seed++
	foreignStudy, err := foreignRecipe.Build()
	if err != nil {
		t.Fatal(err)
	}
	fcp, err := foreignStudy.RunChunk(context.Background(), lease.Range)
	if err != nil {
		t.Fatal(err)
	}
	foreign := submission(t, "tester", lease.Chunk, lease.LeaseID, fcp)
	if code, res := s.submit(foreign); code != http.StatusUnprocessableEntity || !strings.Contains(res.Error, "fingerprint") {
		t.Fatalf("foreign checkpoint: HTTP %d %q, want 422 fingerprint error", code, res.Error)
	}

	// Wrong lease id, bad chunk index, missing checkpoint.
	if code, _ := s.submit(submission(t, "tester", lease.Chunk, "lease-0-stolen", cp)); code != http.StatusConflict {
		t.Fatalf("stolen lease id: HTTP %d, want 409", code)
	}
	if code, _ := s.submit(submission(t, "tester", 99, lease.LeaseID, cp)); code != http.StatusBadRequest {
		t.Fatalf("chunk out of range: HTTP %d, want 400", code)
	}
	if code, _ := s.submit(Submission{Worker: "tester", Chunk: lease.Chunk, LeaseID: lease.LeaseID}); code != http.StatusBadRequest {
		t.Fatalf("empty checkpoint: HTTP %d, want 400", code)
	}

	// None of the refusals consumed the lease or corrupted the folder:
	// the genuine checkpoint still lands, exactly once.
	if code, res := s.submit(submission(t, "tester", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK || !res.Accepted {
		t.Fatalf("genuine submission after refusals: HTTP %d %q", code, res.Error)
	}
	// A replay on the completing lease (lost 200) is acknowledged
	// idempotently; a different lease id for a folded chunk still 409s.
	if code, res := s.submit(submission(t, "tester", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK || !res.Accepted || !res.Duplicate {
		t.Fatalf("replayed submission: HTTP %d %+v, want idempotent 200 duplicate", code, res)
	}
	if code, res := s.submit(submission(t, "tester", lease.Chunk, "lease-9-chunk-0-attempt-9", cp)); code != http.StatusConflict || !strings.Contains(res.Error, "already folded") {
		t.Fatalf("foreign-lease duplicate submission: HTTP %d %q, want 409 already-folded", code, res.Error)
	}
	if got := s.Status(); got.FoldedTasks != 2 || got.DoneChunks != 1 {
		t.Fatalf("status after one chunk: %+v", got)
	}
}

// TestDuplicateAndStaleSubmissions pins the two lost-response shapes a
// hostile network produces — a worker replaying a submission whose 200
// vanished, and a presumed-dead worker's submission landing after its
// chunk was re-leased and completed by someone else — and asserts both
// leave the folder state and the final outcome exactly unchanged.
func TestDuplicateAndStaleSubmissions(t *testing.T) {
	refStudy, err := testRecipe().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refStudy.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1700000000, 0)
	s := testServer(t, Config{
		ChunkSize: 2, LeaseTTL: time.Minute, Backoff: time.Millisecond,
		Logf: t.Logf, now: func() time.Time { return now },
	})

	// Lost 200: the same lease submits its chunk three times. One fold,
	// three acknowledgements.
	lease, cp := leaseAndRun(t, s, "flaky-net")
	for i := 0; i < 3; i++ {
		code, res := s.submit(submission(t, "flaky-net", lease.Chunk, lease.LeaseID, cp))
		if code != http.StatusOK || !res.Accepted {
			t.Fatalf("submit replay %d: HTTP %d %q", i, code, res.Error)
		}
		if wantDup := i > 0; res.Duplicate != wantDup {
			t.Fatalf("submit replay %d: duplicate=%v, want %v", i, res.Duplicate, wantDup)
		}
		if st := s.Status(); st.DoneChunks != 1 || st.FoldedTasks != 2 {
			t.Fatalf("replay %d disturbed the fold: %+v", i, st)
		}
	}

	// Two workers lease the next two chunks and go quiet; both leases
	// expire together. "slow" (chunk 1) will see its chunk re-leased but
	// not yet re-folded when its submission lands; "presumed-dead"
	// (chunk 2) will see its chunk re-leased *and* re-folded.
	race, raceCP := leaseAndRun(t, s, "slow")
	stale, staleCP := leaseAndRun(t, s, "presumed-dead")
	now = now.Add(2 * time.Minute) // both leases expire

	// The first post-expiry lease call reclaims both chunks into their
	// backoff window and grants the untouched chunk 3 instead.
	side := s.lease("w3")
	if !side.Granted || side.Chunk == race.Chunk || side.Chunk == stale.Chunk {
		t.Fatalf("lease during reclaim backoff: %+v", side)
	}
	sideCP, err := s.cfg.Study.RunChunk(context.Background(), side.Range)
	if err != nil {
		t.Fatal(err)
	}
	if code, res := s.submit(submission(t, "w3", side.Chunk, side.LeaseID, sideCP)); code != http.StatusOK {
		t.Fatalf("side-chunk submit: HTTP %d %q", code, res.Error)
	}

	now = now.Add(2 * time.Second) // past the attempt-scaled backoff

	// Chunk 1 re-leases to w3; the old worker's submission crawls in
	// before w3 finishes: refused as superseded, not folded twice.
	release := s.lease("w3")
	if !release.Granted || release.Chunk != race.Chunk || release.LeaseID == race.LeaseID {
		t.Fatalf("re-lease of the raced chunk: %+v (stale %+v)", release, race)
	}
	if code, res := s.submit(submission(t, "slow", race.Chunk, race.LeaseID, raceCP)); code != http.StatusConflict || !strings.Contains(res.Error, "superseded") {
		t.Fatalf("stale submission racing re-lease: HTTP %d %q, want 409 superseded", code, res.Error)
	}
	recp, err := s.cfg.Study.RunChunk(context.Background(), release.Range)
	if err != nil {
		t.Fatal(err)
	}
	if code, res := s.submit(submission(t, "w3", release.Chunk, release.LeaseID, recp)); code != http.StatusOK || !res.Accepted {
		t.Fatalf("winning submission after stale race: HTTP %d %q", code, res.Error)
	}

	// Chunk 2 re-leases to w2 and is re-folded; only then does the dead
	// worker's submission arrive: refused as already folded.
	release2 := s.lease("w2")
	if !release2.Granted || release2.Chunk != stale.Chunk || release2.LeaseID == stale.LeaseID {
		t.Fatalf("re-lease of the dead worker's chunk: %+v (stale %+v)", release2, stale)
	}
	recp2, err := s.cfg.Study.RunChunk(context.Background(), release2.Range)
	if err != nil {
		t.Fatal(err)
	}
	if code, res := s.submit(submission(t, "w2", release2.Chunk, release2.LeaseID, recp2)); code != http.StatusOK || !res.Accepted {
		t.Fatalf("re-leased chunk submission: HTTP %d %q", code, res.Error)
	}
	if code, res := s.submit(submission(t, "presumed-dead", stale.Chunk, stale.LeaseID, staleCP)); code != http.StatusConflict || !strings.Contains(res.Error, "already folded") {
		t.Fatalf("stale submission after re-lease + fold: HTTP %d %q, want 409", code, res.Error)
	}
	if st := s.Status(); st.DoneChunks != 4 || st.FoldedTasks != 8 {
		t.Fatalf("stale submissions disturbed the fold: %+v", st)
	}
	got, err := s.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "duplicate/stale-battered run", ref, got)
}

// TestLeaseStateMachine drives expiry, backoff and attempt exhaustion
// with a fake clock: an expired lease re-queues behind attempt-scaled
// backoff, its stale lease id is refused, and exhausting MaxAttempts
// fails the study.
func TestLeaseStateMachine(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	s := testServer(t, Config{
		ChunkSize: 8, // single chunk: the whole 8-task ledger
		LeaseTTL:  time.Minute, Backoff: time.Second, MaxAttempts: 2,
		Logf: t.Logf, now: clock,
	})

	first := s.lease("w1")
	if !first.Granted || first.Attempt != 1 {
		t.Fatalf("first lease: %+v", first)
	}
	if l := s.lease("w2"); l.Granted || l.RetryAfterMS <= 0 || l.RetryAfterMS > time.Minute.Milliseconds() {
		t.Fatalf("second lease while chunk held: %+v", l)
	}

	// TTL passes: the chunk re-queues but backs off before re-lease.
	now = now.Add(2 * time.Minute)
	if l := s.lease("w2"); l.Granted || l.RetryAfterMS > time.Second.Milliseconds() {
		t.Fatalf("lease during backoff window: %+v", l)
	}
	now = now.Add(2 * time.Second)
	second := s.lease("w2")
	if !second.Granted || second.Attempt != 2 || second.LeaseID == first.LeaseID {
		t.Fatalf("re-lease after expiry: %+v", second)
	}

	// The dead worker's submission arrives late: refused, chunk intact.
	cp, err := s.cfg.Study.RunChunk(context.Background(), first.Range)
	if err != nil {
		t.Fatal(err)
	}
	if code, res := s.submit(submission(t, "w1", first.Chunk, first.LeaseID, cp)); code != http.StatusConflict || !strings.Contains(res.Error, "superseded") {
		t.Fatalf("stale lease submission: HTTP %d %q", code, res.Error)
	}

	// Second lease expires too. The expiry re-queues the chunk behind
	// its backoff; once that passes, MaxAttempts is exhausted and the
	// study fails rather than spinning on a poisoned chunk.
	now = now.Add(2 * time.Minute)
	if l := s.lease("w3"); l.Granted || l.Done {
		t.Fatalf("lease during second backoff window: %+v", l)
	}
	now = now.Add(3 * time.Second)
	fail := s.lease("w3")
	if !fail.Done || !strings.Contains(fail.Failed, "exhausted") {
		t.Fatalf("lease after attempt exhaustion: %+v", fail)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed on study failure")
	}
	if _, err := s.Outcome(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("Outcome after failure = %v", err)
	}
	if st := s.Status(); !st.Done || !strings.Contains(st.Failed, "exhausted") {
		t.Fatalf("status after failure: %+v", st)
	}
}

// TestExpiredButUnclaimedLeaseAccepted: a straggler whose lease expired
// but whose chunk nobody re-claimed still lands its result — the work is
// done and valid; wasting a re-run would be pure loss.
func TestExpiredButUnclaimedLeaseAccepted(t *testing.T) {
	now := time.Unix(1700000000, 0)
	s := testServer(t, Config{
		ChunkSize: 8, LeaseTTL: time.Minute,
		Logf: t.Logf, now: func() time.Time { return now },
	})
	lease, cp := leaseAndRun(t, s, "straggler")
	now = now.Add(time.Hour) // long past expiry; nobody re-leased it
	if code, res := s.submit(submission(t, "straggler", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK || !res.Accepted {
		t.Fatalf("expired-but-unclaimed submission: HTTP %d %q", code, res.Error)
	}
	if out, err := s.Outcome(); err != nil || out == nil {
		t.Fatalf("single-chunk study not complete after fold: %v", err)
	}
}

// TestWorkerRefusesFingerprintSkew: a worker whose local build disagrees
// with the coordinator's fingerprint must refuse to run rather than
// submit subtly wrong results.
func TestWorkerRefusesFingerprintSkew(t *testing.T) {
	s := testServer(t, Config{ChunkSize: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	w := &Worker{
		URL: srv.URL, Name: "skewed",
		BuildStudy: func(raw json.RawMessage) (study.Study, error) {
			var c studycli.Config
			if err := json.Unmarshal(raw, &c); err != nil {
				return study.Study{}, err
			}
			c.Seed++ // simulated flag skew between machines
			return c.Build()
		},
	}
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("skewed worker ran: %v", err)
	}
	if st := s.Status(); st.FoldedTasks != 0 {
		t.Fatalf("skewed worker folded tasks: %+v", st)
	}
}
