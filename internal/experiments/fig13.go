package experiments

import (
	"fmt"

	"pnps/internal/pv"
	"pnps/internal/stats"
)

// Fig13 regenerates the paper's Fig. 13: the IV characteristics of the PV
// array overlaid with the proportion of time the system spends at each
// operating voltage — demonstrating that power-neutral voltage
// stabilisation keeps the board at (or close to) the maximum power point,
// displacing dedicated MPPT hardware.
func Fig13(seed int64) (*Report, error) {
	arr := pv.SouthamptonArray()
	curve, err := arr.IVCurve(pv.StandardIrradiance, 25)
	if err != nil {
		return nil, err
	}
	mpp, err := arr.MaximumPowerPoint(pv.StandardIrradiance)
	if err != nil {
		return nil, err
	}

	iv := Table{
		Title:  "PV array IV characteristic at full sun",
		Header: []string{"V (V)", "I (A)", "P (W)"},
	}
	for _, p := range curve {
		iv.Rows = append(iv.Rows, []string{
			fmt.Sprintf("%.2f", p.V), fmt.Sprintf("%.3f", p.I), fmt.Sprintf("%.3f", p.P),
		})
	}

	// Occupancy histogram of the operating voltage from the Fig. 12 run.
	res, target, err := fig12Run(seed)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(1, 7, 24) // 0.25 V bins over 1–7 V
	if err != nil {
		return nil, err
	}
	times := res.VC.Times()
	values := res.VC.Values()
	for i := 0; i+1 < len(times); i++ {
		hist.AddWeighted(values[i], times[i+1]-times[i])
	}
	occ := Table{
		Title:  "Proportion of time at each operating voltage",
		Header: []string{"V bin center (V)", "time share (%)"},
	}
	for i := range hist.Bins {
		if f := hist.Fraction(i); f > 0.0005 {
			occ.Rows = append(occ.Rows, []string{
				fmt.Sprintf("%.2f", hist.BinCenter(i)), fmt.Sprintf("%.2f", f*100),
			})
		}
	}
	mode := hist.BinCenter(hist.ModeBin())

	r := &Report{
		ID:    "fig13",
		Title: "IV characteristics and operating-voltage occupancy (implicit MPPT)",
		Description: "The histogram of the operating voltage should concentrate at the " +
			"IV-curve knee, i.e. the maximum power point.",
		Tables: []Table{iv, occ},
	}
	r.AddPaperMetric("array MPP voltage", mpp.V, 5.3, "V", "calibration target")
	r.AddPaperMetric("array MPP power", mpp.P, 5.5, "W", "Fig. 13 peak power")
	r.AddMetric("modal operating voltage", mode, "V", "should sit at/near the MPP")
	r.AddMetric("modal bin time share", hist.Fraction(hist.ModeBin())*100, "%",
		"paper's histogram peaks near 80%")
	r.AddMetric("|modal − MPP voltage|", abs64(mode-target), "V", "")
	return r, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
