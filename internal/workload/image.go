package workload

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM encodes the framebuffer as a binary PPM (P6) image with the
// smallpt gamma of 2.2 — the same output format as the original program.
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.Width, im.Height); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*im.Width)
	for y := 0; y < im.Height; y++ {
		buf = buf[:0]
		for x := 0; x < im.Width; x++ {
			p := im.Pixels[y*im.Width+x]
			buf = append(buf, ToSRGB(p.X), ToSRGB(p.Y), ToSRGB(p.Z))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePGMLuma encodes a grayscale PGM (P5) of the luminance channel —
// handy for quick terminal-side diffing of renders.
func (im *Image) WritePGMLuma(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.Width, im.Height); err != nil {
		return err
	}
	for _, p := range im.Pixels {
		if err := bw.WriteByte(ToSRGB(0.2126*p.X + 0.7152*p.Y + 0.0722*p.Z)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
