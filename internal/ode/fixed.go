package ode

import "fmt"

// Euler integrates with the explicit Euler method at a fixed step h. It is
// provided as the cheapest integrator for coarse sweeps and as a
// convergence-order reference in tests. Events are detected by sign change
// and localised by linear interpolation within the step.
func Euler(f RHS, t0, t1 float64, y []float64, h float64, opts Options) (Result, error) {
	return fixedStep(f, t0, t1, y, h, opts, stepEuler)
}

// RK4 integrates with the classic fourth-order Runge–Kutta method at a
// fixed step h.
func RK4(f RHS, t0, t1 float64, y []float64, h float64, opts Options) (Result, error) {
	return fixedStep(f, t0, t1, y, h, opts, stepRK4)
}

type stepper func(f RHS, t, h float64, y, ynext []float64, scratch [][]float64)

func stepEuler(f RHS, t, h float64, y, ynext []float64, scratch [][]float64) {
	k1 := scratch[0]
	f(t, y, k1)
	for i := range y {
		ynext[i] = y[i] + h*k1[i]
	}
}

func stepRK4(f RHS, t, h float64, y, ynext []float64, scratch [][]float64) {
	k1, k2, k3, k4, tmp := scratch[0], scratch[1], scratch[2], scratch[3], scratch[4]
	f(t, y, k1)
	axpy(tmp, y, h/2, k1)
	f(t+h/2, tmp, k2)
	axpy(tmp, y, h/2, k2)
	f(t+h/2, tmp, k3)
	axpy(tmp, y, h, k3)
	f(t+h, tmp, k4)
	for i := range y {
		ynext[i] = y[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
}

func fixedStep(f RHS, t0, t1 float64, y []float64, h float64, opts Options, step stepper) (Result, error) {
	if err := validateSpan(t0, t1, y); err != nil {
		return Result{}, err
	}
	if h <= 0 {
		return Result{}, fmt.Errorf("ode: fixed step must be positive, got %g", h)
	}
	o := opts.withDefaults(t1 - t0)
	n := len(y)
	scratch := make([][]float64, 5)
	for i := range scratch {
		scratch[i] = make([]float64, n)
	}
	ynext := make([]float64, n)
	gPrev := make([]float64, len(o.Events))
	for i, ev := range o.Events {
		gPrev[i] = ev.G(t0, y)
	}
	res := Result{T: t0, Y: y}
	if o.OnStep != nil {
		o.OnStep(t0, y)
	}
	t := t0
	for t < t1 {
		if res.Steps >= o.MaxSteps {
			return res, fmt.Errorf("ode: fixed-step integrator exceeded MaxSteps=%d at t=%g", o.MaxSteps, t)
		}
		hs := h
		if t+hs > t1 {
			hs = t1 - t
		}
		step(f, t, hs, y, ynext, scratch)
		tNext := t + hs

		// Linear event localisation within the step.
		stopped := false
		for i := range o.Events {
			g1 := o.Events[i].G(tNext, ynext)
			g0 := gPrev[i]
			crossed := (g0 <= 0 && g1 > 0 && o.Events[i].Direction >= 0) ||
				(g0 >= 0 && g1 < 0 && o.Events[i].Direction <= 0)
			if g0 == 0 && g1 == 0 {
				crossed = false
			}
			if crossed {
				frac := 0.5
				if g1 != g0 {
					frac = -g0 / (g1 - g0)
				}
				tc := t + frac*hs
				yc := make([]float64, n)
				for j := range yc {
					yc[j] = y[j] + frac*(ynext[j]-y[j])
				}
				res.Hits = append(res.Hits, EventHit{Index: i, Name: o.Events[i].Name, T: tc, Y: yc})
				if o.Events[i].Terminal {
					copy(y, yc)
					res.T = tc
					res.Stopped = true
					stopped = true
					break
				}
			}
			gPrev[i] = g1
		}
		if stopped {
			if o.OnStep != nil {
				o.OnStep(res.T, y)
			}
			return res, nil
		}
		copy(y, ynext)
		t = tNext
		res.T = t
		res.Steps++
		if o.OnStep != nil {
			o.OnStep(t, y)
		}
	}
	return res, nil
}
