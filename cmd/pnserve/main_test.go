package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseOptionsDefaults(t *testing.T) {
	opt, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt.addr != ":8090" {
		t.Errorf("addr = %q", opt.addr)
	}
	cfg := opt.cfg
	if cfg.Tokens != nil {
		t.Errorf("default tokens = %v, want none (open server)", cfg.Tokens)
	}
	if cfg.JobWorkers != 2 || cfg.QueueDepth != 16 || cfg.SimWorkers != 0 {
		t.Errorf("worker defaults: %d/%d/%d", cfg.JobWorkers, cfg.QueueDepth, cfg.SimWorkers)
	}
	if cfg.CacheBytes != 64<<20 || cfg.MaxJobs != 256 || cfg.RetryAfter != time.Second {
		t.Errorf("cache/retention defaults: %d bytes, %d jobs, %v", cfg.CacheBytes, cfg.MaxJobs, cfg.RetryAfter)
	}
	if cfg.Logf != nil {
		t.Error("default Logf set without -v")
	}
}

func TestParseOptionsFlags(t *testing.T) {
	opt, err := parseOptions([]string{
		"-addr", ":7070", "-token", "alice, bob", "-job-workers", "4",
		"-queue", "2", "-engine", "batched", "-batch-width", "8",
		"-cache-mb", "8", "-retry-after", "5s", "-v",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.addr != ":7070" {
		t.Errorf("addr = %q", opt.addr)
	}
	cfg := opt.cfg
	if !reflect.DeepEqual(cfg.Tokens, []string{"alice", "bob"}) {
		t.Errorf("tokens = %v", cfg.Tokens)
	}
	if cfg.JobWorkers != 4 || cfg.QueueDepth != 2 {
		t.Errorf("admission: %d workers, queue %d", cfg.JobWorkers, cfg.QueueDepth)
	}
	if cfg.Engine != "batched" || cfg.BatchWidth != 8 {
		t.Errorf("engine: %q width %d", cfg.Engine, cfg.BatchWidth)
	}
	if cfg.CacheBytes != 8<<20 || cfg.RetryAfter != 5*time.Second {
		t.Errorf("cache %d bytes, retry-after %v", cfg.CacheBytes, cfg.RetryAfter)
	}
	if cfg.Logf == nil {
		t.Error("-v did not wire Logf")
	}
}

func TestParseOptionsErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
		{[]string{"-cache-mb", "0"}, "positive budget"},
		{[]string{"stray"}, "unexpected arguments"},
	} {
		_, err := parseOptions(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseOptions(%v) error = %v, want %q", tc.args, err, tc.want)
		}
	}
}
