package ode

import (
	"fmt"
	"math"
)

// RK23 integrates dy/dt = f(t,y) from t0 to t1 with the Bogacki–Shampine
// 3(2) embedded pair (the method behind MATLAB's ode23), adapting the step
// to the configured tolerances and localising any events in opts. y is
// updated in place and aliased by the returned Result.
func RK23(f RHS, t0, t1 float64, y []float64, opts Options) (Result, error) {
	if err := validateSpan(t0, t1, y); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults(t1 - t0)
	n := len(y)

	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	ytmp := make([]float64, n)
	errv := make([]float64, n)
	yPrev := make([]float64, n)

	res := Result{T: t0, Y: y}

	// Event bookkeeping: previous g values.
	gPrev := make([]float64, len(o.Events))
	for i, ev := range o.Events {
		gPrev[i] = ev.G(t0, y)
	}
	if o.OnStep != nil {
		o.OnStep(t0, y)
	}

	t := t0
	h := clamp(o.InitialStep, o.MinStep, o.MaxStep)
	f(t, y, k1) // FSAL seed

	for t < t1 {
		if res.Steps >= o.MaxSteps {
			return res, fmt.Errorf("ode: RK23 exceeded MaxSteps=%d at t=%g", o.MaxSteps, t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Stage 2: k2 = f(t + h/2, y + h/2 k1)
		axpy(ytmp, y, h/2, k1)
		f(t+h/2, ytmp, k2)
		// Stage 3: k3 = f(t + 3h/4, y + 3h/4 k2)
		axpy(ytmp, y, 3*h/4, k2)
		f(t+3*h/4, ytmp, k3)
		// 3rd-order solution: y1 = y + h(2/9 k1 + 1/3 k2 + 4/9 k3)
		for i := 0; i < n; i++ {
			y1[i] = y[i] + h*(2.0/9.0*k1[i]+1.0/3.0*k2[i]+4.0/9.0*k3[i])
		}
		// Stage 4 (FSAL): k4 = f(t+h, y1)
		f(t+h, y1, k4)
		// 2nd-order solution: y2 = y + h(7/24 k1 + 1/4 k2 + 1/3 k3 + 1/8 k4)
		for i := 0; i < n; i++ {
			y2[i] = y[i] + h*(7.0/24.0*k1[i]+1.0/4.0*k2[i]+1.0/3.0*k3[i]+1.0/8.0*k4[i])
			errv[i] = y1[i] - y2[i]
		}
		en := errNorm(errv, y, y1, o.ATol, o.RTol)

		if en > 1 {
			// Reject: shrink and retry.
			res.Rejected++
			h = math.Max(o.MinStep, h*math.Max(0.1, 0.9*math.Pow(en, -1.0/3.0)))
			if h <= o.MinStep && en > 1 {
				// One last attempt at MinStep before giving up happens
				// naturally; if we are already at MinStep, fail.
				if h == o.MinStep {
					// Accept the MinStep result rather than loop forever
					// only if the error is marginal; otherwise error out.
					if en > 10 {
						return res, fmt.Errorf("%w: t=%g h=%g en=%g y=%v k1=%v",
							ErrStepUnderflow, t, h, en, y, k1)
					}
				} else {
					continue
				}
			} else {
				continue
			}
		}

		// Accept the step.
		copy(yPrev, y)
		tPrev := t
		copy(y, y1)
		t += h
		res.Steps++
		res.T = t

		// Event localisation over [tPrev, t] using cubic Hermite dense
		// output built from (yPrev, k1) and (y, k4).
		stopped, err := handleEvents(&res, o.Events, gPrev, tPrev, t, yPrev, y, k1, k4)
		if err != nil {
			return res, err
		}
		if stopped {
			res.Stopped = true
			if o.OnStep != nil {
				o.OnStep(res.T, y)
			}
			return res, nil
		}

		if o.OnStep != nil {
			o.OnStep(t, y)
		}

		// FSAL: k4 becomes next step's k1.
		copy(k1, k4)
		// Grow step.
		if en == 0 {
			h = o.MaxStep
		} else {
			h = h * math.Min(5, 0.9*math.Pow(en, -1.0/3.0))
		}
		h = clamp(h, o.MinStep, o.MaxStep)
	}
	return res, nil
}

// handleEvents scans for sign changes of each event function across the
// accepted step and bisects the dense-output interpolant to localise them.
// If a terminal event fires, the state y is rewound to the event point.
func handleEvents(res *Result, events []Event, gPrev []float64, t0, t1 float64, y0, y1, f0, f1 []float64) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	type hit struct {
		idx int
		t   float64
	}
	var hits []hit
	for i := range events {
		g1 := events[i].G(t1, y1)
		g0 := gPrev[i]
		crossed := false
		switch {
		case g0 == 0 && g1 == 0:
			// Sitting on the surface; no new crossing.
		case g0 <= 0 && g1 > 0 && events[i].Direction >= 0:
			crossed = true
		case g0 >= 0 && g1 < 0 && events[i].Direction <= 0:
			crossed = true
		}
		if crossed {
			tc := bisectEvent(events[i], t0, t1, y0, y1, f0, f1)
			hits = append(hits, hit{i, tc})
		}
		gPrev[i] = g1
	}
	if len(hits) == 0 {
		return false, nil
	}
	// Process hits in time order.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].t < hits[j-1].t; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	yc := make([]float64, len(y0))
	for _, h := range hits {
		hermite(yc, t0, t1, h.t, y0, y1, f0, f1)
		res.Hits = append(res.Hits, EventHit{
			Index: h.idx,
			Name:  events[h.idx].Name,
			T:     h.t,
			Y:     append([]float64(nil), yc...),
		})
		if events[h.idx].Terminal {
			// Rewind state to the event point.
			copy(y1, yc)
			res.T = h.t
			// Refresh gPrev for all events at the rewound state so a
			// subsequent integration restart is consistent.
			for i := range events {
				gPrev[i] = events[i].G(h.t, y1)
			}
			return true, nil
		}
	}
	return false, nil
}

// bisectEvent localises g=0 within [t0,t1] on the Hermite interpolant to
// ~1e-12 relative precision.
func bisectEvent(ev Event, t0, t1 float64, y0, y1, f0, f1 []float64) float64 {
	yc := make([]float64, len(y0))
	ga := ev.G(t0, y0)
	a, b := t0, t1
	for iter := 0; iter < 100 && (b-a) > 1e-12*math.Max(1, math.Abs(b)); iter++ {
		m := 0.5 * (a + b)
		hermite(yc, t0, t1, m, y0, y1, f0, f1)
		gm := ev.G(m, yc)
		if gm == 0 {
			return m
		}
		if (ga < 0) == (gm < 0) {
			a, ga = m, gm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b)
}

// hermite evaluates the cubic Hermite interpolant through (t0,y0,f0) and
// (t1,y1,f1) at time tc, writing into out.
func hermite(out []float64, t0, t1, tc float64, y0, y1, f0, f1 []float64) {
	h := t1 - t0
	s := (tc - t0) / h
	h00 := (1 + 2*s) * (1 - s) * (1 - s)
	h10 := s * (1 - s) * (1 - s)
	h01 := s * s * (3 - 2*s)
	h11 := s * s * (s - 1)
	for i := range out {
		out[i] = h00*y0[i] + h10*h*f0[i] + h01*y1[i] + h11*h*f1[i]
	}
}

func axpy(dst, y []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] = y[i] + a*x[i]
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
