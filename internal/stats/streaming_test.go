package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// quantileInputs are the cross-validation corpora: random, sorted,
// reverse-sorted, constant and bimodal streams, per the adversarial
// cases the P² literature flags.
func quantileInputs(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	random := make([]float64, n)
	for i := range random {
		random[i] = rng.NormFloat64()*3 + 10
	}
	sorted := append([]float64(nil), random...)
	sort.Float64s(sorted)
	reversed := make([]float64, n)
	for i := range reversed {
		reversed[i] = sorted[n-1-i]
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 4.7
	}
	bimodal := make([]float64, n)
	for i := range bimodal {
		if rng.Intn(2) == 0 {
			bimodal[i] = rng.NormFloat64()*0.5 - 20
		} else {
			bimodal[i] = rng.NormFloat64()*0.5 + 20
		}
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	return map[string][]float64{
		"random": random, "sorted": sorted, "reversed": reversed,
		"constant": constant, "bimodal": bimodal, "uniform": uniform,
	}
}

func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Quantile(s, q)
}

func TestP2AgainstExactQuantile(t *testing.T) {
	// Tolerances are fractions of the data span, scaled to the corpus:
	// tight for randomly ordered streams (the regime P² was designed
	// for), loose for monotone streams — where the markers can only chase
	// the drifting distribution — and for the bimodal stream, whose
	// central quantiles sit in the sparsely populated inter-mode gap.
	// These corpora pin the documented estimate quality; consumers that
	// need bin-bounded error on arbitrary orderings should use
	// Histogram.Quantile instead (see the P² doc comment).
	tolerances := map[string]float64{
		"random": 0.02, "uniform": 0.02, "constant": 0,
		"sorted": 0.20, "reversed": 0.20, "bimodal": 0.20,
	}
	for name, xs := range quantileInputs(5000) {
		lo, hi := exactQuantile(xs, 0), exactQuantile(xs, 1)
		span := hi - lo
		for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			p := NewP2(q)
			for _, x := range xs {
				p.Add(x)
			}
			got, want := p.Quantile(), exactQuantile(xs, q)
			if got < lo || got > hi {
				t.Errorf("%s q=%g: estimate %.4f outside sample range [%.4f, %.4f]", name, q, got, lo, hi)
			}
			if tol := tolerances[name] * span; math.Abs(got-want) > tol {
				t.Errorf("%s q=%g: P2 %.4f vs exact %.4f (tol %.4f)", name, q, got, want, tol)
			}
		}
	}
}

func TestP2JainChlamtacWorkedExample(t *testing.T) {
	// The worked median example from Jain & Chlamtac (1985): the paper
	// reports 4.44 after these 20 observations. Pins the marker
	// arithmetic (parabolic + linear adjustment) against the source.
	xs := []float64{0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92,
		34.60, 10.28, 1.47, 0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37}
	p := NewP2(0.5)
	for _, x := range xs {
		p.Add(x)
	}
	if got := p.Quantile(); math.Abs(got-4.44) > 0.005 {
		t.Errorf("median estimate %.4f, paper reports 4.44", got)
	}
}

func TestP2SmallStreamsExact(t *testing.T) {
	// Below five observations the estimate must be the exact sample
	// quantile, bit for bit.
	xs := []float64{3, -1, 7, 2}
	for n := 1; n <= len(xs); n++ {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			p := NewP2(q)
			for _, x := range xs[:n] {
				p.Add(x)
			}
			if got, want := p.Quantile(), exactQuantile(xs[:n], q); got != want {
				t.Errorf("n=%d q=%g: got %g, want exact %g", n, q, got, want)
			}
		}
	}
	if !math.IsNaN(NewP2(0.5).Quantile()) {
		t.Error("empty P2 should estimate NaN")
	}
}

func TestP2Deterministic(t *testing.T) {
	// Same stream twice → bit-identical estimate (no hidden state).
	xs := quantileInputs(2000)["random"]
	a, b := NewP2(0.9), NewP2(0.9)
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a.Quantile() != b.Quantile() {
		t.Error("P2 not deterministic")
	}
	if a.N() != len(xs) || a.Q() != 0.9 {
		t.Errorf("accessors wrong: N=%d Q=%g", a.N(), a.Q())
	}
}

func TestHistogramQuantile(t *testing.T) {
	for name, xs := range quantileInputs(5000) {
		lo, hi := exactQuantile(xs, 0), exactQuantile(xs, 1)
		if hi == lo {
			hi = lo + 1 // constant stream: any spanning bounds work
		}
		h, err := NewHistogram(lo, hi+1e-9, 200)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			h.Add(x)
		}
		width := (h.Hi - h.Lo) / float64(len(h.Bins))
		for _, q := range []float64{0.05, 0.5, 0.95} {
			got, err := h.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			want := exactQuantile(xs, q)
			// The histogram resolves quantiles to within ~a bin width.
			if math.Abs(got-want) > 2*width {
				t.Errorf("%s q=%g: histogram %.4f vs exact %.4f (bin %.4f)", name, q, got, want, width)
			}
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	if _, err := h.Quantile(0.5); err == nil {
		t.Error("empty histogram quantile should error")
	}
	h.Add(-5) // underflow
	h.Add(15) // overflow
	q0, _ := h.Quantile(0.25)
	q1, _ := h.Quantile(0.95)
	if q0 != h.Lo || q1 != h.Hi {
		t.Errorf("under/overflow mass should clamp to bounds, got %g and %g", q0, q1)
	}
	// With no underflow, q=0 must report where the data actually is —
	// the lower edge of the first occupied bin — not fabricate Lo.
	h2, _ := NewHistogram(0, 10, 10)
	h2.Add(5.3)
	if q, _ := h2.Quantile(0); q != 5 {
		t.Errorf("q=0 of mass in [5,6) bin should be 5, got %g", q)
	}
}

func TestOnlineMatchesSummarize(t *testing.T) {
	for name, xs := range quantileInputs(3000) {
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		s, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if o.N() != s.N || o.Min() != s.Min || o.Max() != s.Max {
			t.Errorf("%s: online extrema/count diverge", name)
		}
		if math.Abs(o.Mean()-s.Mean) > 1e-9*math.Max(1, math.Abs(s.Mean)) {
			t.Errorf("%s: mean %.12f vs %.12f", name, o.Mean(), s.Mean)
		}
		if math.Abs(o.StdDev()-s.StdDev) > 1e-6*math.Max(1, s.StdDev) {
			t.Errorf("%s: stddev %.12f vs %.12f", name, o.StdDev(), s.StdDev)
		}
	}
}

func TestOnlineMergeEquivalent(t *testing.T) {
	xs := quantileInputs(4000)["random"]
	var whole Online
	for _, x := range xs {
		whole.Add(x)
	}
	// Split into uneven shards, accumulate independently, merge in order.
	var merged Online
	for _, cut := range [][2]int{{0, 17}, {17, 1000}, {1000, 1001}, {1001, 4000}} {
		var shard Online
		for _, x := range xs[cut[0]:cut[1]] {
			shard.Add(x)
		}
		merged.Merge(shard)
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Error("merge diverges on count/extrema")
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 ||
		math.Abs(merged.Variance()-whole.Variance()) > 1e-6 {
		t.Errorf("merge diverges: mean %.12f vs %.12f, var %.9f vs %.9f",
			merged.Mean(), whole.Mean(), merged.Variance(), whole.Variance())
	}
	// Merging an empty accumulator is a no-op; merging into empty copies.
	before := merged
	merged.Merge(Online{})
	if merged != before {
		t.Error("merging empty changed the accumulator")
	}
	var fresh Online
	fresh.Merge(whole)
	if fresh != whole {
		t.Error("merging into empty should copy")
	}
	if !math.IsNaN((&Online{}).Mean()) || !math.IsNaN((&Online{}).StdDev()) {
		t.Error("empty Online should report NaN moments")
	}
}

func TestSummaryQuartiles(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles of 1..5: P25=%g P75=%g, want 2 and 4", s.P25, s.P75)
	}
	if s.P25 > s.Median || s.Median > s.P75 {
		t.Error("quantile ordering broken")
	}
}
