// Governors: the paper's Table II experiment as an example — race the
// power-neutral controller against every default Linux cpufreq governor
// on the same harvested supply and see who survives the hour. All six
// runs are field overrides of one registered scenario, so the harvest,
// board and buffer are identical by construction.
//
//	go run ./examples/governors
package main

import (
	"fmt"
	"log"

	"pnps"
)

func main() {
	base, ok := pnps.LookupScenario("table2-harvest")
	if !ok {
		log.Fatal("table2-harvest scenario missing")
	}
	base.SkipSeries = true
	const seed = 42

	fmt.Println("60-minute governor shoot-out on a harvested supply")
	fmt.Printf("%-16s %-10s %-12s %s\n", "scheme", "lifetime", "instructions", "verdict")

	for _, name := range []string{"performance", "ondemand", "interactive", "conservative", "powersave"} {
		spec := base
		spec.Control = pnps.GovernedBy(name)
		res, err := spec.Run(seed)
		if err != nil {
			log.Fatal(err)
		}
		print1(name, res)
	}

	// The proposed approach is the scenario's default control.
	res, err := base.Run(seed)
	if err != nil {
		log.Fatal(err)
	}
	print1("power-neutral", res)
}

func print1(name string, r *pnps.SimResult) {
	verdict := "browned out"
	if !r.BrownedOut {
		verdict = "survived"
	}
	fmt.Printf("%-16s %7.1fs  %9.1fG   %s\n",
		name, r.LifetimeSeconds, r.Instructions/1e9, verdict)
}
