// Command pncoord coordinates a distributed study: it serves the study
// matrix to any number of `pnstudy -worker` processes, leases ledger
// chunks to them over HTTP, folds their checkpoints in canonical ledger
// order as they land, re-leases the chunks of workers that die, and
// prints the final aggregate — bit-identical to what one machine
// running the whole study would have produced.
//
// Usage:
//
//	pncoord -addr :8080 -scenario stress-clouds -storage ideal:0.047,supercap:0.047 -util 1,0.6 -reps 256
//	pnstudy -worker http://host:8080        # on each machine, as many as you like
//
// The matrix flags are the same study-identity flags pnstudy takes;
// workers fetch them as a recipe from the coordinator, rebuild the
// study locally and refuse to run unless their fingerprint matches —
// version or flag skew between machines is caught before any chunk
// executes, not after results are polluted.
//
// Progress streams to stderr as chunks land, including live per-axis
// marginals. A chunk whose lease expires (dead or straggling worker)
// is re-leased with backoff; a chunk failing -max-attempts leases
// fails the whole study rather than silently dropping tasks.
//
// With -journal, every folded chunk is appended to a durable
// write-ahead journal before the worker's submission is acknowledged.
// If the coordinator dies — power cut, OOM kill, kill -9 — restart it
// with the same flags and the same -journal path: it replays the
// durable chunks through full checkpoint validation, refuses the file
// if it belongs to a different study, and resumes by leasing only the
// chunks still missing. On SIGINT/SIGTERM it instead drains
// gracefully: stops granting leases, finishes in-flight submissions,
// flushes the journal and prints how to resume.
//
// With -token, every endpoint requires "Authorization: Bearer <token>"
// with one of the configured tokens (give workers theirs via
// `pnstudy -worker URL -token ...`) — the shared auth layer pnserve
// uses, for coordinators reachable from untrusted networks.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pnps/internal/coord"
	"pnps/internal/studycli"
)

// options is the parsed CLI surface — separated from main so tests can
// drive flag parsing and config assembly without spawning processes.
type options struct {
	addr     string
	recipe   studycli.Config
	cfg      coord.Config // Study and Recipe populated from recipe
	tokens   []string
	journal  string
	cellsCSV string
	runsCSV  string
	jsonOut  string
}

func parseOptions(args []string) (*options, error) {
	fs := flag.NewFlagSet("pncoord", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		scn      = fs.String("scenario", "stress-clouds", "registered base scenario")
		duration = fs.Float64("duration", 0, "override scenario duration, seconds (0 keeps the registered value)")
		storage  = fs.String("storage", "", "storage axis: ideal:F,supercap:F,hybrid:F:R")
		control  = fs.String("control", "", "control axis: pn, static, or governor names")
		util     = fs.String("util", "", "workload axis: utilisations in [0,1]")
		reps     = fs.Int("reps", 4, "Monte-Carlo repetitions per cell")
		seed     = fs.Int64("seed", 2017, "study base seed")
		paired   = fs.Bool("paired", false, "common random numbers: one realisation per repetition across all cells")
		bins     = fs.Int("bins", 250, "dwell-time voltage histogram bins (0 disables)")
		histLo   = fs.Float64("histlo", 0, "dwell histogram lower bound, volts")
		histHi   = fs.Float64("histhi", 10, "dwell histogram upper bound, volts")
		chunk    = fs.Int("chunk", 64, "lease granularity, ledger tasks per chunk")
		leaseTTL = fs.Duration("lease-ttl", 2*time.Minute, "lease time-to-live before a chunk is re-leased")
		attempts = fs.Int("max-attempts", 5, "lease attempts per chunk before the study fails")
		backoff  = fs.Duration("backoff", time.Second, "re-lease backoff per prior attempt")
		journal  = fs.String("journal", "", "write-ahead journal path: folded chunks survive a coordinator crash and replay on restart")
		fsyncStr = fs.String("fsync", "always", "journal durability: always (fsync each record) or off (leave flushing to the OS)")
		tokens   = fs.String("token", "", "comma-separated bearer tokens; empty disables authentication")
		verbose  = fs.Bool("v", false, "log lease lifecycle events")
		cellsCSV = fs.String("cells-csv", "", "write per-cell aggregates as CSV to this file")
		runsCSV  = fs.String("runs-csv", "", "write per-run outcomes as CSV to this file")
		jsonOut  = fs.String("json", "", "write the full aggregate as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	fsync, err := coord.ParseSyncPolicy(*fsyncStr)
	if err != nil {
		return nil, err
	}

	recipe := studycli.Config{
		Scenario: *scn, Duration: *duration,
		Storage: *storage, Control: *control, Util: *util,
		Reps: *reps, Seed: *seed, Paired: *paired,
		Bins: *bins, HistLo: *histLo, HistHi: *histHi,
	}
	st, err := recipe.Build()
	if err != nil {
		return nil, err
	}
	rawRecipe, err := json.Marshal(recipe)
	if err != nil {
		return nil, err
	}

	opt := &options{
		addr: *addr, recipe: recipe,
		cfg: coord.Config{
			Study: st, Recipe: rawRecipe,
			ChunkSize: *chunk, LeaseTTL: *leaseTTL,
			MaxAttempts: *attempts, Backoff: *backoff,
			JournalPath: *journal, JournalSync: fsync,
			OnChunk: printChunkStatus,
		},
		tokens:  coord.SplitTokens(*tokens),
		journal: *journal,
		cellsCSV: *cellsCSV, runsCSV: *runsCSV, jsonOut: *jsonOut,
	}
	if *verbose {
		opt.cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return opt, nil
}

func main() {
	opt, err := parseOptions(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	srv, err := coord.NewServer(opt.cfg)
	if err != nil {
		fatal(err)
	}
	if replayed := srv.Status().DoneChunks; opt.journal != "" && replayed > 0 {
		fmt.Fprintf(os.Stderr, "pncoord: journal %s: resuming with %d chunks already durable\n", opt.journal, replayed)
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		fatal(err)
	}
	info := srv.Info()
	fmt.Fprintf(os.Stderr, "pncoord: study %s — %d tasks in %d chunks of %d, serving on %s\n",
		info.Name, info.TotalTasks, info.NumChunks, info.ChunkSize, ln.Addr())
	fmt.Fprintf(os.Stderr, "pncoord: join with: pnstudy -worker http://<this-host>%s\n", opt.addr)

	// The server is hardened against slow or hostile clients: a peer
	// that dribbles its headers, never reads its response or opens a
	// connection and goes silent gets cut, not a goroutine forever.
	httpSrv := &http.Server{
		Handler:           coord.RequireBearer(opt.tokens, srv.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// SIGINT/SIGTERM means drain, not die: stop granting leases (workers
	// park and retry), let in-flight submissions land and journal, then
	// close the listener gracefully.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interrupted := false
	select {
	case <-srv.Done():
	case <-sigCtx.Done():
		interrupted = true
		stop() // a second signal kills immediately
		fmt.Fprintln(os.Stderr, "pncoord: interrupt — draining (no new leases; in-flight submissions still land)")
		srv.Drain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		fatal(fmt.Errorf("closing journal: %w", err))
	}

	if interrupted {
		st := srv.Status()
		fmt.Fprintf(os.Stderr, "pncoord: stopped with %d/%d chunks folded\n", st.DoneChunks, st.TotalChunks)
		if opt.journal != "" {
			fmt.Fprintf(os.Stderr, "pncoord: folded chunks are durable — resume with the same flags and -journal %s\n", opt.journal)
		} else {
			fmt.Fprintln(os.Stderr, "pncoord: no -journal was set; a restart re-runs the study from scratch")
		}
		os.Exit(1)
	}

	out, err := srv.Outcome()
	if err != nil {
		fatal(err)
	}
	studycli.PrintOutcome(os.Stdout, opt.cfg.Study, out)
	if opt.cellsCSV != "" {
		err = studycli.WriteFileAtomic(opt.cellsCSV, out.WriteCellsCSV)
	}
	if err == nil && opt.runsCSV != "" {
		err = studycli.WriteFileAtomic(opt.runsCSV, out.WriteRunsCSV)
	}
	if err == nil && opt.jsonOut != "" {
		err = studycli.WriteFileAtomic(opt.jsonOut, out.WriteJSON)
	}
	if err != nil {
		fatal(err)
	}
}

// printChunkStatus streams fold progress with the live survival
// marginals — the headline number of the study, watchable while the
// fleet works.
func printChunkStatus(s coord.Status) {
	fmt.Fprintf(os.Stderr, "pncoord: %d/%d chunks folded (%d/%d tasks, %d leased)",
		s.DoneChunks, s.TotalChunks, s.FoldedTasks, s.TotalTasks, s.LeasedChunks)
	for _, m := range s.Marginals {
		fmt.Fprintf(os.Stderr, "  %s=%s %.0f%%", m.Axis, m.Level, m.Summary.SurvivalRate*100)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pncoord:", err)
	os.Exit(1)
}
