package experiments

import (
	"fmt"

	"pnps/internal/soc"
)

// Fig10 regenerates the paper's Fig. 10: the latency to switch the number
// of active CPU cores by hot-plugging (top panel, at 200 MHz, 800 MHz and
// 1.4 GHz) and the latency of DVFS frequency steps (bottom panel, for
// several core configurations, both directions).
func Fig10() (*Report, error) {
	lm := soc.DefaultLatencyModel()
	ladder := soc.ConfigLadder()

	// Hot-plug latency per ladder transition at three frequencies.
	// 800 MHz is not on the paper's 8-level list; index 2 (720 MHz) is the
	// nearest benchmarked level.
	freqIdxs := []int{0, 2, soc.NumFrequencyLevels - 1}
	freqNames := []string{"200 MHz", "720 MHz", "1.4 GHz"}
	hp := Table{
		Title:  "Hot-plug latency (ms) per core transition",
		Header: append([]string{"transition"}, freqNames...),
	}
	for i := 0; i+1 < len(ladder); i++ {
		row := []string{fmt.Sprintf("%d->%d cores", ladder[i].TotalCores(), ladder[i+1].TotalCores())}
		for _, fi := range freqIdxs {
			lat, err := lm.HotplugLatency(ladder[i], ladder[i+1], fi)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", lat*1e3))
		}
		hp.Rows = append(hp.Rows, row)
	}

	// DVFS latency for the paper's transition set across configurations.
	cfgs := []soc.CoreConfig{
		{Little: 1}, {Little: 4}, {Little: 4, Big: 1}, {Little: 4, Big: 4},
	}
	dv := Table{
		Title:  "DVFS step latency (ms) per configuration",
		Header: []string{"transition"},
	}
	for _, c := range cfgs {
		dv.Header = append(dv.Header, c.String())
	}
	type step struct {
		name     string
		from, to int
	}
	steps := []step{
		{"0.45->0.2 GHz (down)", 1, 0},
		{"1.1->0.92 GHz (down)", 4, 3},
		{"1.4->1.3 GHz (down)", 7, 6},
		{"0.2->0.45 GHz (up)", 0, 1},
		{"0.92->1.1 GHz (up)", 3, 4},
		{"1.3->1.4 GHz (up)", 6, 7},
	}
	for _, s := range steps {
		row := []string{s.name}
		for _, c := range cfgs {
			lat, err := lm.DVFSLatency(s.from, s.to, c)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", lat*1e3))
		}
		dv.Rows = append(dv.Rows, row)
	}

	r := &Report{
		ID:          "fig10",
		Title:       "OPP transition latencies (hot-plug and DVFS)",
		Description: "Calibrated latency model; the paper measured ≈10–40 ms hot-plug and ≈1–3 ms DVFS.",
		Tables:      []Table{hp, dv},
	}
	lmin, err := lm.HotplugLatency(ladder[0], ladder[1], soc.NumFrequencyLevels-1)
	if err != nil {
		return nil, err
	}
	lmax, err := lm.HotplugLatency(ladder[6], ladder[7], 0)
	if err != nil {
		return nil, err
	}
	r.AddPaperMetric("fastest hot-plug", lmin*1e3, 10, "ms", "at 1.4 GHz")
	r.AddPaperMetric("slowest hot-plug", lmax*1e3, 40, "ms", "at 200 MHz, 7->8 cores")
	return r, nil
}
