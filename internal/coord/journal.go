package coord

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"

	"pnps/internal/study"
)

// The write-ahead chunk journal: the coordinator's crash persistence.
//
// Every accepted chunk submission is appended to an on-disk journal
// before the coordinator acknowledges it, so a coordinator that dies —
// kill -9, OOM, power loss — loses at most the records that had not
// reached the disk yet (none under SyncAlways, the unflushed page-cache
// tail under SyncOff). On restart, `pncoord -journal <path>` replays the
// journal through the same validating Folder path live submissions take
// and resumes leasing only the still-missing chunks; the recovered
// outcome stays bit-identical to a single-process Study.Run because
// recovery re-folds the exact checkpoint bytes that were accepted live.
//
// File format (all integers big-endian):
//
//	frame  := uint32 length | payload | uint32 CRC-32C(payload)
//	journal := frame(header JSON) frame(record JSON)*
//
// The header frame binds the journal to one study: the fingerprint plus
// the chunk geometry. Opening a journal whose header disagrees with the
// live study is refused — replaying chunks of a different matrix is the
// distributed version of merging mismatched checkpoints.
//
// Failure taxonomy on replay:
//   - incomplete trailing bytes (the file ends inside a frame): a torn
//     tail — the crash interrupted an append. The tail is truncated and
//     its chunk is simply re-leased; this is the "at most the unflushed
//     tail" cost of a crash.
//   - a complete frame whose CRC does not match its payload, or whose
//     payload is not valid JSON: corruption, refused with a diagnostic
//     error. Truncating would silently discard records that were once
//     durable, so the operator must decide.

// SyncPolicy says when the journal reaches the platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record (default): an
	// acknowledged chunk survives power loss. Appends pay one fsync.
	SyncAlways SyncPolicy = iota
	// SyncOff leaves flushing to the OS page cache: a machine-level
	// crash may lose recently-acknowledged chunks (they re-lease on
	// restart — correctness holds, wall clock is lost).
	SyncOff
)

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return SyncAlways, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("coord: unknown fsync policy %q (always, off)", s)
}

func (p SyncPolicy) String() string {
	if p == SyncOff {
		return "off"
	}
	return "always"
}

const (
	journalMagic   = "pncoord-journal"
	journalVersion = 1
	// maxFrameBytes bounds a frame's declared length. A length prefix
	// beyond it cannot come from a torn append (truncation shortens,
	// it does not invent bytes), so it is diagnosed as corruption.
	maxFrameBytes = 1 << 30
)

// journalHeader is the first frame: the study identity the journal is
// bound to. Geometry rides along because chunk indices are meaningless
// under a different chunking.
type journalHeader struct {
	Magic       string            `json:"magic"`
	Version     int               `json:"version"`
	Fingerprint study.Fingerprint `json:"fingerprint"`
	TotalTasks  int               `json:"total_tasks"`
	ChunkSize   int               `json:"chunk_size"`
	NumChunks   int               `json:"num_chunks"`
}

// JournalRecord is one accepted chunk: the index, the lease that
// completed it (restored so duplicate submits stay idempotent across a
// coordinator restart), the submitting worker for diagnostics, and the
// checkpoint bytes exactly as accepted — replay pushes them through
// study.ReadCheckpoint and Folder.Fold, the same validation live
// submissions passed.
type JournalRecord struct {
	Chunk      int             `json:"chunk"`
	LeaseID    string          `json:"lease_id,omitempty"`
	Worker     string          `json:"worker,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// JournalReplay is what opening an existing journal recovered.
type JournalReplay struct {
	// Records are the durable chunk records, in append order.
	Records []JournalRecord
	// TornBytes counts trailing bytes discarded as a torn tail (0 when
	// the file ended cleanly on a frame boundary).
	TornBytes int64
}

// Journal is an append-only chunk journal positioned at its tail.
// Appends are not concurrency-safe; the coordinator serialises them
// under its state lock.
type Journal struct {
	f      *os.File
	path   string
	policy SyncPolicy
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenJournal opens (or creates) the chunk journal at path for the
// study identified by fp with the given chunk geometry. A fresh file
// gains a header frame; an existing file must carry a matching header —
// a fingerprint or geometry mismatch is refused, not truncated — and
// its records are replayed into the returned JournalReplay, with any
// torn tail truncated in place so the journal is append-ready.
func OpenJournal(path string, fp study.Fingerprint, totalTasks, chunkSize, numChunks int, policy SyncPolicy) (*Journal, *JournalReplay, error) {
	header := journalHeader{
		Magic: journalMagic, Version: journalVersion,
		Fingerprint: fp, TotalTasks: totalTasks, ChunkSize: chunkSize, NumChunks: numChunks,
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("coord: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, policy: policy}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("coord: sizing journal: %w", err)
	}
	if size == 0 {
		// Fresh journal: write and sync the header before any record.
		if err := j.appendFrame(header); err != nil {
			f.Close()
			os.Remove(path)
			return nil, nil, err
		}
		return j, &JournalReplay{}, nil
	}
	replay, err := j.replay(header, size)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, replay, nil
}

// replay validates the header frame, collects every durable record,
// truncates a torn tail and leaves the file positioned for append.
func (j *Journal) replay(want journalHeader, size int64) (*JournalReplay, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r := &frameReader{f: j.f, size: size}

	payload, err := r.next()
	if err != nil {
		return nil, fmt.Errorf("coord: journal %s header: %w", j.path, err)
	}
	if payload == nil {
		return nil, fmt.Errorf("coord: journal %s: torn header — the file never held a durable record; delete it and restart", j.path)
	}
	var header journalHeader
	if err := json.Unmarshal(payload, &header); err != nil {
		return nil, fmt.Errorf("coord: journal %s header: not a journal header: %w", j.path, err)
	}
	switch {
	case header.Magic != journalMagic:
		return nil, fmt.Errorf("coord: %s is not a pncoord journal (magic %q)", j.path, header.Magic)
	case header.Version != journalVersion:
		return nil, fmt.Errorf("coord: journal %s is format version %d, this build reads %d", j.path, header.Version, journalVersion)
	case !header.Fingerprint.Equal(want.Fingerprint):
		return nil, fmt.Errorf("coord: journal %s belongs to a different study (fingerprint mismatch) — flag or code skew since it was written", j.path)
	case header.TotalTasks != want.TotalTasks || header.ChunkSize != want.ChunkSize || header.NumChunks != want.NumChunks:
		return nil, fmt.Errorf("coord: journal %s chunk geometry %d×%d over %d tasks, study wants %d×%d over %d — rerun with the original -chunk",
			j.path, header.NumChunks, header.ChunkSize, header.TotalTasks, want.NumChunks, want.ChunkSize, want.TotalTasks)
	}

	replay := &JournalReplay{}
	for {
		goodEnd := r.off
		payload, err := r.next()
		if err != nil {
			return nil, fmt.Errorf("coord: journal %s record %d: %w", j.path, len(replay.Records), err)
		}
		if payload == nil { // torn tail: truncate back to the last whole frame
			replay.TornBytes = size - goodEnd
			if replay.TornBytes > 0 {
				if err := j.f.Truncate(goodEnd); err != nil {
					return nil, fmt.Errorf("coord: truncating torn journal tail: %w", err)
				}
			}
			if _, err := j.f.Seek(goodEnd, io.SeekStart); err != nil {
				return nil, err
			}
			return replay, nil
		}
		var rec JournalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("coord: journal %s record %d corrupt: CRC passed but payload is not a record: %w", j.path, len(replay.Records), err)
		}
		replay.Records = append(replay.Records, rec)
	}
}

// frameReader walks length|payload|CRC frames. next returns the payload
// of one complete, CRC-valid frame; (nil, nil) when the remaining bytes
// cannot hold a whole frame (clean EOF or torn tail — the caller
// truncates); an error for a complete frame that fails its CRC.
type frameReader struct {
	f    *os.File
	size int64
	off  int64
}

func (r *frameReader) next() ([]byte, error) {
	var prefix [4]byte
	if r.size-r.off < int64(len(prefix)) {
		return nil, nil
	}
	if _, err := io.ReadFull(r.f, prefix[:]); err != nil {
		return nil, fmt.Errorf("reading frame length: %w", err)
	}
	n := int64(binary.BigEndian.Uint32(prefix[:]))
	if n > maxFrameBytes {
		return nil, fmt.Errorf("frame length %d exceeds %d — corrupt length prefix", n, int64(maxFrameBytes))
	}
	if r.size-r.off-int64(len(prefix)) < n+4 { // payload + CRC truncated: torn
		return nil, nil
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r.f, buf); err != nil {
		return nil, fmt.Errorf("reading frame: %w", err)
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("CRC mismatch (stored %08x, computed %08x) — the journal is corrupt, not merely torn; refusing to guess which records to keep", sum, got)
	}
	r.off += int64(len(prefix)) + n + 4
	return payload, nil
}

// Append journals one accepted chunk. Under SyncAlways the record is on
// disk when Append returns — the coordinator acknowledges the worker
// only after that, so an acknowledged chunk survives any crash.
func (j *Journal) Append(rec JournalRecord) error {
	if j == nil {
		return nil
	}
	return j.appendFrame(rec)
}

func (j *Journal) appendFrame(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("coord: journal encode: %w", err)
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.BigEndian.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, crcTable))
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("coord: journal append: %w", err)
	}
	if j.policy == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("coord: journal fsync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the journal. Safe on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("coord: closing journal: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }
