package pv

import (
	"fmt"
	"math"
)

// Temperature behaviour of the single-diode model. Cell heating is a
// first-order effect for outdoor deployments: silicon loses ≈0.4%/K of
// output power, mostly through the diode saturation current's strong
// temperature dependence (Voc falls ≈2 mV/K per cell).

const (
	// refTempK is the STC reference temperature (25 °C).
	refTempK = 298.15
	// siliconBandgapEV is the bandgap used in the I0(T) scaling law.
	siliconBandgapEV = 1.12
	// alphaIscPerK is the relative short-circuit current temperature
	// coefficient, typical for monocrystalline silicon.
	alphaIscPerK = 5e-4
)

// AtTemperature returns a copy of the array re-parameterised for the
// given cell temperature in kelvin, applying the standard scaling laws:
//
//	Il(T) = Il,ref · (1 + α·(T − Tref))
//	I0(T) = I0,ref · (T/Tref)³ · exp( (Eg/k)·(1/Tref − 1/T) )
//
// The thermal voltage scales implicitly through TempK.
func (a *Array) AtTemperature(tempK float64) (*Array, error) {
	if tempK <= 0 {
		return nil, fmt.Errorf("pv: temperature %g K invalid", tempK)
	}
	out := *a
	out.TempK = tempK
	out.IscSTC = a.IscSTC * (1 + alphaIscPerK*(tempK-refTempK))
	egOverK := siliconBandgapEV / kOverQ // in kelvin
	ratio := tempK / refTempK
	out.I0 = a.I0 * ratio * ratio * ratio * math.Exp(egOverK*(1/refTempK-1/tempK))
	if out.IscSTC <= 0 {
		return nil, fmt.Errorf("pv: temperature %g K drives Isc non-positive", tempK)
	}
	return &out, nil
}

// PowerTemperatureCoefficient estimates the relative MPP power change per
// kelvin around the given temperature (W/W/K; expected ≈ −0.004 for
// silicon), by symmetric finite difference at standard irradiance.
func (a *Array) PowerTemperatureCoefficient(tempK float64) (float64, error) {
	const dT = 5.0
	lo, err := a.AtTemperature(tempK - dT)
	if err != nil {
		return 0, err
	}
	hi, err := a.AtTemperature(tempK + dT)
	if err != nil {
		return 0, err
	}
	pLo, err := lo.AvailablePower(StandardIrradiance)
	if err != nil {
		return 0, err
	}
	pHi, err := hi.AvailablePower(StandardIrradiance)
	if err != nil {
		return 0, err
	}
	mid, err := a.AtTemperature(tempK)
	if err != nil {
		return 0, err
	}
	pMid, err := mid.AvailablePower(StandardIrradiance)
	if err != nil {
		return 0, err
	}
	if pMid == 0 {
		return 0, fmt.Errorf("pv: zero power at %g K", tempK)
	}
	return (pHi - pLo) / (2 * dT) / pMid, nil
}
