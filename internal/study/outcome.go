package study

import (
	"fmt"

	"pnps/internal/stats"
)

// QuantileBand is a five-point quantile summary of a dwell-time
// distribution, computed with Histogram.Quantile — the bin-bounded
// estimator, preferred over the P² streaming sketch whenever a
// histogram is available (P² degrades on monotone streams; see the
// internal/stats package docs).
type QuantileBand struct {
	P5, P25, Median, P75, P95 float64
}

// dwellBand summarises a dwell histogram's quantiles; nil when the
// histogram is absent or empty.
func dwellBand(h *stats.Histogram) *QuantileBand {
	if h == nil || h.Total() <= 0 {
		return nil
	}
	b := &QuantileBand{}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.05, &b.P5}, {0.25, &b.P25}, {0.5, &b.Median}, {0.75, &b.P75}, {0.95, &b.P95}} {
		v, err := h.Quantile(q.p)
		if err != nil {
			return nil
		}
		*q.dst = v
	}
	return b
}

// CellOutcome is the aggregate of one matrix cell's repetitions.
type CellOutcome struct {
	// Cell identifies the matrix point (axis coordinates, labels, key).
	Cell Cell
	// Summary is the cell's deterministic aggregate with quantile bands.
	Summary Summary
	// VCHistogram is the task-order merge of the cell's dwell-time
	// voltage histograms (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
	// DwellVC summarises the cell's supply dwell-time distribution
	// (VCHistBins > 0 only).
	DwellVC *QuantileBand
}

// Marginal is the aggregate of every run sharing one axis level,
// marginalised over all other axes — the "controller vs. governors,
// everything else averaged out" view of a matrix.
type Marginal struct {
	// Axis and Level name the margin.
	Axis, Level string
	// Summary is the level's aggregate across all other axes.
	Summary Summary
}

// StudyOutcome is a completed study matrix.
type StudyOutcome struct {
	// Axes digests the matrix dimensions (names and level labels, in
	// declaration order) — the column structure of the exports.
	Axes []AxisDigest
	// Cells holds one aggregate per matrix cell, in canonical matrix
	// order.
	Cells []CellOutcome
	// Summary is the deterministic aggregate over every run of the
	// matrix.
	Summary Summary
	// DwellVC summarises the study-wide supply dwell-time distribution
	// (VCHistBins > 0 only).
	DwellVC *QuantileBand
	// Marginals holds one aggregate per axis level (axes in declaration
	// order, levels in axis order); nil for studies without axes.
	Marginals []Marginal
	// Groups holds one aggregate per Study.Group label, ordered by
	// first occurrence in the ledger; nil when the study was ungrouped.
	Groups []GroupSummary
	// VCHistogram is the task-order merge of every run's dwell-time
	// voltage histogram (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
	// Results holds every run in ledger order. In-process runs carry
	// the full *sim.Result; checkpoint-restored runs carry metrics only.
	Results []TaskResult
}

// CellByKey returns the cell outcome with the given canonical key.
func (o *StudyOutcome) CellByKey(key string) (CellOutcome, bool) {
	for _, c := range o.Cells {
		if c.Cell.Key == key {
			return c, true
		}
	}
	return CellOutcome{}, false
}

// outcomeFrom aggregates completed ledger results (sorted by task
// index, one per ledger entry) into the study outcome. Everything is
// accumulated strictly in task order — scalar summaries and histogram
// merges alike — which is what makes the outcome bit-identical at any
// worker count, across shard counts and through checkpoint round-trips.
func (st Study) outcomeFrom(p *plan, results []TaskResult) (*StudyOutcome, error) {
	if len(results) != p.total {
		return nil, fmt.Errorf("study: %d results for a %d-task ledger", len(results), p.total)
	}
	for i := range results {
		if results[i].Task.Index != i {
			return nil, fmt.Errorf("study: result %d carries task index %d", i, results[i].Task.Index)
		}
	}

	overall := newSummaryAccum(p.total)
	cellAccums := make([]*summaryAccum, len(p.cells))
	for i := range cellAccums {
		cellAccums[i] = newSummaryAccum(p.reps)
	}
	marginAccums := make([][]*summaryAccum, len(st.Axes))
	for a, ax := range st.Axes {
		marginAccums[a] = make([]*summaryAccum, len(ax.Levels))
		for l := range ax.Levels {
			marginAccums[a][l] = newSummaryAccum(0)
		}
	}

	out := &StudyOutcome{Axes: st.fingerprint(p).Axes, Results: results}
	cellHists := make([]*stats.Histogram, len(p.cells))
	mergeHist := func(into **stats.Histogram, h *stats.Histogram) error {
		if *into == nil {
			merged := *h // copy bounds; clone the bins
			merged.Bins = append([]float64(nil), h.Bins...)
			*into = &merged
			return nil
		}
		return (*into).Merge(h)
	}

	var groupOrder []string
	groupAccums := map[string]*summaryAccum{}
	for i := range results {
		r := &results[i]
		cell := p.cells[r.Task.Cell]
		overall.add(r.Metrics)
		cellAccums[cell.Index].add(r.Metrics)
		for a := range st.Axes {
			marginAccums[a][cell.Coords[a]].add(r.Metrics)
		}
		if st.Group != nil {
			g, ok := groupAccums[r.Group]
			if !ok {
				g = newSummaryAccum(0)
				groupAccums[r.Group] = g
				groupOrder = append(groupOrder, r.Group)
			}
			g.add(r.Metrics)
		}
		if r.Hist != nil {
			if err := mergeHist(&cellHists[cell.Index], r.Hist); err != nil {
				return nil, err
			}
			if err := mergeHist(&out.VCHistogram, r.Hist); err != nil {
				return nil, err
			}
			// Merged; drop the per-task histogram so a large study does
			// not keep O(tasks × bins) dead weight alive in Results.
			r.Hist = nil
		}
	}

	var err error
	if out.Summary, err = overall.summary(); err != nil {
		return nil, err
	}
	out.DwellVC = dwellBand(out.VCHistogram)
	out.Cells = make([]CellOutcome, len(p.cells))
	for c := range p.cells {
		co := CellOutcome{Cell: p.cells[c], VCHistogram: cellHists[c]}
		if co.Summary, err = cellAccums[c].summary(); err != nil {
			return nil, err
		}
		co.DwellVC = dwellBand(co.VCHistogram)
		out.Cells[c] = co
	}
	if len(st.Axes) > 0 {
		for a, ax := range st.Axes {
			for l, lv := range ax.Levels {
				m := Marginal{Axis: ax.Name, Level: lv.Label}
				if m.Summary, err = marginAccums[a][l].summary(); err != nil {
					return nil, err
				}
				out.Marginals = append(out.Marginals, m)
			}
		}
	}
	for _, name := range groupOrder {
		s, err := groupAccums[name].summary()
		if err != nil {
			return nil, err
		}
		out.Groups = append(out.Groups, GroupSummary{Name: name, Summary: s})
	}
	return out, nil
}
