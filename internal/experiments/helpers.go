package experiments

import (
	"fmt"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
)

// DefaultSeed keeps every stochastic experiment reproducible.
const DefaultSeed int64 = 20170327 // DATE 2017, Lausanne

// fullSunMPP returns the calibrated MPP of the experiment array at
// standard irradiance — the paper's 5.3 V target voltage.
func fullSunMPP() (pv.MPP, error) {
	return pv.SouthamptonArray().MaximumPowerPoint(pv.StandardIrradiance)
}

// controllerRun executes a power-neutral run with the given parameters,
// assembled through the scenario layer.
func controllerRun(params core.Params, profile pv.Profile, duration, capacitance, initialVC float64, boot soc.OPP) (*sim.Result, error) {
	return scenario.Spec{
		Profile:   scenario.FixedProfile(profile),
		Storage:   sim.IdealCap{Farads: capacitance},
		Boot:      boot,
		Control:   scenario.Controlled(params),
		Duration:  duration,
		InitialVC: initialVC,
	}.Run(0)
}

// staticRun executes an uncontrolled run at a fixed OPP (the paper's
// "without control" baselines).
func staticRun(opp soc.OPP, profile pv.Profile, duration, capacitance, initialVC float64) (*sim.Result, error) {
	return scenario.Spec{
		Profile:   scenario.FixedProfile(profile),
		Storage:   sim.IdealCap{Farads: capacitance},
		Boot:      opp,
		Control:   scenario.Uncontrolled(),
		Duration:  duration,
		InitialVC: initialVC,
	}.Run(0)
}

// fmtSeconds renders seconds as the paper's mm:ss lifetime format.
func fmtSeconds(s float64) string {
	if s < 0 {
		s = 0
	}
	m := int(s) / 60
	sec := int(s+0.5) % 60
	return fmt.Sprintf("%02d:%02d", m, sec)
}

// fmtGiga renders a count in billions, one decimal.
func fmtGiga(x float64) string { return fmt.Sprintf("%.1f", x/1e9) }
