// Quickstart: run the power-neutral system for one simulated minute under
// full sun and print what the controller did. The run is assembled from
// the declarative scenario registry — "steady-sun" names the paper's
// array, the 47 mF buffer, the Exynos5422 board and the power-neutral
// controller with its published parameters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pnps"
)

func main() {
	scenario, ok := pnps.LookupScenario("steady-sun")
	if !ok {
		log.Fatal("steady-sun scenario missing")
	}

	// Assemble keeps the platform accessible; Simulate executes the run.
	cfg, err := scenario.Assemble(0)
	if err != nil {
		log.Fatal(err)
	}
	result, err := pnps.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Power-neutral quickstart (60 s, full sun)")
	fmt.Printf("  survived:              %v\n", !result.BrownedOut)
	fmt.Printf("  final OPP:             %v\n", cfg.Platform.CommittedOPP())
	fmt.Printf("  final supply voltage:  %.3f V\n", result.FinalVC)
	fmt.Printf("  threshold interrupts:  %d\n", result.Interrupts)
	fmt.Printf("  DVFS steps:            %d\n", result.ControllerStats.FreqSteps)
	fmt.Printf("  core hot-plugs:        %d\n",
		result.ControllerStats.BigToggles+result.ControllerStats.LittleToggles)
	fmt.Printf("  instructions done:     %.1f billion\n", result.Instructions/1e9)
	fmt.Printf("  within 10%% of target:  %.1f%% of the time\n", result.StabilityWithin(0.10)*100)
	fmt.Printf("  energy in buffer:      %.2f J -> %.2f J\n",
		result.StorageEnergyStartJ, result.StorageEnergyEndJ)
}
