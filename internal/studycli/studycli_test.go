package studycli

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"pnps/internal/study"
)

func TestParseStorageAxis(t *testing.T) {
	ax, err := ParseStorageAxis("ideal:0.047,supercap:0.1,hybrid:0.01:1")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "storage" || len(ax.Levels) != 3 {
		t.Fatalf("axis %q with %d levels", ax.Name, len(ax.Levels))
	}
	if ax.Levels[2].Label != "hybrid:0.01:1" {
		t.Errorf("level label %q", ax.Levels[2].Label)
	}
	for _, bad := range []string{"ideal", "ideal:zero", "ideal:-1", "flywheel:1", "hybrid:0.01"} {
		if _, err := ParseStorageAxis(bad); err == nil {
			t.Errorf("ParseStorageAxis(%q) accepted", bad)
		}
	}
}

func TestParseControlAxis(t *testing.T) {
	ax := ParseControlAxis("pn,static,ondemand")
	if len(ax.Levels) != 3 {
		t.Fatalf("%d levels", len(ax.Levels))
	}
	want := []string{"power-neutral", "static", "ondemand"}
	for i, lv := range ax.Levels {
		if lv.Label != want[i] {
			t.Errorf("level %d label %q, want %q", i, lv.Label, want[i])
		}
	}
}

func TestParseUtilAxis(t *testing.T) {
	ax, err := ParseUtilAxis("1, 0.5")
	if err != nil || len(ax.Levels) != 2 {
		t.Fatalf("ParseUtilAxis = %+v, %v", ax, err)
	}
	for _, bad := range []string{"2", "-0.1", "x"} {
		if _, err := ParseUtilAxis(bad); err == nil {
			t.Errorf("ParseUtilAxis(%q) accepted", bad)
		}
	}
}

// TestConfigFingerprintStable: the same recipe builds the same study
// twice — the property shard/resume/merge cooperation and the
// coordinator's recipe hand-off rely on — and survives a JSON round
// trip, the wire format pncoord publishes to workers.
func TestConfigFingerprintStable(t *testing.T) {
	c := Config{
		Scenario: "stress-clouds", Duration: 10,
		Storage: "ideal:0.047,hybrid:0.01:1", Control: "pn,ondemand",
		Reps: 2, Seed: 7, Paired: true, Bins: 32, HistLo: 4, HistHi: 6,
	}
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Config
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	b, err := decoded.Build()
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !fpA.Equal(fpB) {
		t.Fatal("JSON round trip changed the study fingerprint")
	}

	cpA, err := a.RunShard(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := b.RunShard(context.Background(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := study.MergeCheckpoints(cpA, cpB)
	if err != nil {
		t.Fatalf("checkpoints from identical recipes refused to merge: %v", err)
	}
	if merged.Complete() {
		t.Fatal("two shards of four cannot be complete")
	}

	if _, err := (Config{Scenario: "no-such"}).Build(); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario error = %v", err)
	}
}
