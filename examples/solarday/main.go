// Solarday: a full 24-hour run of the power-neutral system on a partly
// cloudy day, with brownout restarts enabled — the system dies after
// sunset and reboots after sunrise, harvesting whenever the sun allows.
// The whole run is the registered "solar-day" scenario.
//
//	go run ./examples/solarday
package main

import (
	"fmt"
	"log"

	"pnps"
	"pnps/internal/trace"
)

func main() {
	const seed = 7
	result, err := pnps.RunScenario("solar-day", seed)
	if err != nil {
		log.Fatal(err)
	}
	const day = 24 * 3600.0

	fmt.Println("24-hour solar day with brownout restart")
	fmt.Printf("  alive time:           %.1f h of %.0f h\n", result.LifetimeSeconds/3600, day/3600)
	fmt.Printf("  brownouts:            %d\n", result.Brownouts)
	fmt.Printf("  restarts:             %d\n", result.Restarts)
	fmt.Printf("  instructions done:    %.0f billion\n", result.Instructions/1e9)
	fmt.Printf("  frames rendered:      %.1f\n", result.Frames)
	fmt.Printf("  threshold interrupts: %d\n", result.Interrupts)

	if eAvail, err := result.PowerAvailable.Integral(); err == nil {
		if eCons, err := result.PowerConsumed.Integral(); err == nil {
			fmt.Printf("  energy available:     %.1f Wh\n", eAvail/3600)
			fmt.Printf("  energy consumed:      %.1f Wh (%.0f%% of available)\n",
				eCons/3600, eCons/eAvail*100)
		}
	}

	fmt.Println()
	fmt.Println("Supply voltage over the day:")
	fmt.Print(trace.ASCIIPlot(result.VC.Decimate(64), 72, 12))
	fmt.Println("Consumed power over the day:")
	fmt.Print(trace.ASCIIPlot(result.PowerConsumed.Decimate(64), 72, 10))
}
