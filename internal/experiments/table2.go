package experiments

import (
	"fmt"
	"math"

	"pnps/internal/governor"
	"pnps/internal/scenario"
	"pnps/internal/sim"
)

// table2Row is one scheme's outcome.
type table2Row struct {
	name         string
	rendersMin   float64
	lifetime     float64
	instructions float64
}

// Table2 regenerates the paper's Table II: a 60-minute comparison of the
// proposed power-neutral approach against the default Linux governors
// while harvesting from the PV array. The paper reports that performance,
// ondemand and interactive could not support operation at all,
// conservative survived five seconds, powersave ran the full hour at
// minimum throughput, and the proposed approach ran the full hour while
// completing 69% more instructions than powersave.
func Table2(seed int64) (*Report, error) {
	// Every scheme races on the same registered harvest scenario; only
	// the control scheme differs between rows.
	base := scenario.MustLookup("table2-harvest")
	base.SkipSeries = true
	duration := base.Duration

	var rows []table2Row

	for _, gov := range governor.All() {
		sp := base
		sp.Control = scenario.Governed(gov.Name())
		res, err := sp.Run(seed)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", gov.Name(), err)
		}
		rows = append(rows, table2Row{
			name:         "Linux " + gov.Name(),
			rendersMin:   rendersPerMin(res, duration),
			lifetime:     res.LifetimeSeconds,
			instructions: res.Instructions,
		})
	}

	// Proposed power-neutral approach.
	res, err := base.Run(seed)
	if err != nil {
		return nil, fmt.Errorf("table2 proposed: %w", err)
	}
	rows = append(rows, table2Row{
		name:         "Proposed approach",
		rendersMin:   rendersPerMin(res, duration),
		lifetime:     res.LifetimeSeconds,
		instructions: res.Instructions,
	})

	tab := Table{
		Title: "60-minute governor comparison under PV harvesting",
		Header: []string{"Power management scheme", "Avg perf (renders/min)",
			"Lifetime (mm:ss)", "Instructions (billions)"},
	}
	var powersave, proposed table2Row
	for _, row := range rows {
		tab.Rows = append(tab.Rows, []string{
			row.name,
			fmt.Sprintf("%.4f", row.rendersMin),
			fmtSeconds(row.lifetime),
			fmtGiga(row.instructions),
		})
		switch row.name {
		case "Linux powersave":
			powersave = row
		case "Proposed approach":
			proposed = row
		}
	}

	r := &Report{
		ID:    "table2",
		Title: "Comparison with Linux governors (paper Table II)",
		Description: "Aggressive governors brown the board out almost immediately; powersave " +
			"survives at minimum throughput; the proposed approach survives the hour and " +
			"completes substantially more work.",
		Tables: []Table{tab},
	}
	if powersave.instructions > 0 {
		gain := (proposed.instructions/powersave.instructions - 1) * 100
		r.AddPaperMetric("instruction gain vs powersave", gain, 69.0, "%",
			"shape target: substantially positive")
	}
	r.AddPaperMetric("proposed lifetime", proposed.lifetime, 3600, "s", "must survive the hour")
	r.AddPaperMetric("powersave lifetime", powersave.lifetime, 3600, "s", "")
	for _, row := range rows {
		if row.name == "Linux conservative" {
			r.AddPaperMetric("conservative lifetime", row.lifetime, 5, "s",
				"dies during its ramp-up")
		}
		if row.name == "Linux performance" || row.name == "Linux ondemand" || row.name == "Linux interactive" {
			r.AddMetric(row.name+" lifetime", math.Min(row.lifetime, duration), "s",
				"paper: could not support any operation")
		}
	}
	return r, nil
}

func rendersPerMin(res *sim.Result, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return res.Frames / (duration / 60)
}
