package pv

import "math"

// Solver is the accelerated solve layer over an Array for per-simulation
// hot paths. It keeps the exact semantics of the Array methods it mirrors
// but removes their dominant costs:
//
//   - CurrentAt runs a warm-started Newton iteration seeded from the
//     previous root instead of re-bracketing from scratch. The residual is
//     strictly decreasing and concave in I, so Newton is globally
//     convergent here: after one step the iterate is at or beyond the root
//     and approaches it monotonically. A bracketed exact solve remains as
//     a fallback for numerically hostile inputs.
//   - OpenCircuitVoltage exploits that at I = 0 the implicit equation
//     collapses to a scalar equation in V alone, solved by damped-free
//     Newton from the analytic ln(Il/I0+1) estimate — versus the exact
//     method's 200-probe bisection, each probe a full implicit solve.
//   - OpenCircuitVoltage and MaximumPowerPoint results are memoised per
//     irradiance, which collapses repeated sampling under constant or
//     stepped profiles to a map lookup.
//
// Successive solves during an ODE integration move the operating point
// only slightly, so the warm start typically converges in 2-4 iterations.
// A Solver is not safe for concurrent use; each simulation engine owns
// its own, which also keeps runs bit-reproducible regardless of how many
// run in parallel.
type Solver struct {
	a    *Array
	warm bool
	// Converged state of the previous CurrentAt solve: the root, the
	// inputs it was solved at, and the residual derivative there. The next
	// solve seeds Newton with a first-order extrapolation
	//
	//	i ≈ prevI + (∂I/∂V)·ΔV + (∂I/∂Il)·ΔIl
	//
	// whose sensitivities come from the implicit function theorem on the
	// diode residual, cutting typical iteration counts from ~5 to ~2.
	prevI, prevV, prevIl, prevDf float64

	voc map[float64]float64
	mpp map[float64]MPP
}

// expm1 is math.Expm1 with a fast path: for arguments above 1/16 there is
// no cancellation in exp(x)-1, so the hardware-accelerated math.Exp is
// used instead of the (software, ~3× slower) math.Expm1 — and the diode
// exponent sits around 15 at normal operating voltages.
func expm1(x float64) float64 {
	if x > 0.0625 {
		return math.Exp(x) - 1
	}
	return math.Expm1(x)
}

// memoCap bounds the per-irradiance memo maps; profiles with continuously
// varying irradiance would otherwise grow them without bound over long
// simulated spans.
const memoCap = 4096

// VocMemo is a per-irradiance open-circuit-voltage memo shareable by
// every Solver in a batch whose arrays are value-equal. Voc is a pure
// function of the array parameters and the irradiance — solveVoc always
// cold-starts from the analytic estimate, unlike the MPP memo whose
// golden search rides the owning solver's warm Newton state — so a shared
// entry is bit-identical no matter which lane computed it first, and
// sharing cannot perturb per-lane results. Sharing is guarded by Array
// value equality in Solver.ShareVoc. A VocMemo is not safe for concurrent
// use; share it only among solvers driven by one goroutine (one batch).
type VocMemo struct {
	arr Array
	voc map[float64]float64
}

// NewVocMemo returns an empty shared memo bound to the array's current
// parameter values.
func NewVocMemo(a *Array) *VocMemo {
	return &VocMemo{arr: *a, voc: make(map[float64]float64, 8)}
}

// ShareVoc attaches the solver's open-circuit-voltage memoisation to the
// shared memo and reports whether it did: attachment requires the
// solver's array to be value-equal to the memo's, since each entry is a
// function of those parameter values.
func (s *Solver) ShareVoc(m *VocMemo) bool {
	if m == nil || *s.a != m.arr {
		return false
	}
	s.voc = m.voc
	return true
}

// MPPCache memoises the exact Array.MaximumPowerPoint solve keyed by
// (array parameter values, irradiance). Batch setup paths use it to
// collapse the per-run default-voltage solves — the single most expensive
// per-run setup cost — into one solve per distinct array across a batch.
// The exact solve is a pure function of the key, so cached replies are
// bit-identical to fresh ones. Not safe for concurrent use.
type MPPCache struct {
	m map[mppCacheKey]MPP
}

type mppCacheKey struct {
	arr Array
	g   float64
}

// MaximumPowerPoint returns the exact MPP for the array at irradiance g,
// computing it at most once per distinct (array values, g).
func (c *MPPCache) MaximumPowerPoint(a *Array, g float64) (MPP, error) {
	key := mppCacheKey{arr: *a, g: g}
	if m, ok := c.m[key]; ok {
		return m, nil
	}
	m, err := a.MaximumPowerPoint(g)
	if err != nil {
		return MPP{}, err
	}
	if c.m == nil {
		c.m = make(map[mppCacheKey]MPP, 4)
	} else if len(c.m) >= memoCap {
		clear(c.m)
	}
	c.m[key] = m
	return m, nil
}

// NewSolver returns an accelerated solver for the array. The array
// parameters must not be mutated while the solver is in use (memoised
// results would go stale).
func NewSolver(a *Array) *Solver {
	return &Solver{
		a:   a,
		voc: make(map[float64]float64),
		mpp: make(map[float64]MPP),
	}
}

// Array returns the underlying array model.
func (s *Solver) Array() *Array { return s.a }

// CurrentAt solves the implicit single-diode equation for the terminal
// current at voltage v and irradiance g, warm-starting Newton from the
// previous root. Agrees with Array.CurrentAt to the solver tolerance
// (~1e-12 relative).
func (s *Solver) CurrentAt(v, g float64) (float64, error) {
	il := s.a.LightCurrent(g)
	vt := s.a.thermalVoltageString()

	i := il
	if s.warm {
		i = s.prevI
		if s.a.Rs > 0 && s.prevDf != 0 {
			// First-order extrapolation from the previous root: by the
			// implicit function theorem, ∂I/∂V = -(df+1)/(Rs·df) and
			// ∂I/∂Il = -1/df at the converged residual derivative df.
			i += -(s.prevDf+1)/(s.a.Rs*s.prevDf)*(v-s.prevV) - (il-s.prevIl)/s.prevDf
		}
	}
	var df float64
	for iter := 0; iter < 40; iter++ {
		arg := (v + s.a.Rs*i) / vt
		if arg > 500 {
			arg = 500
		}
		em1 := expm1(arg)
		f := il - s.a.I0*em1 - (v+s.a.Rs*i)/s.a.Rp - i
		df = -s.a.I0*(em1+1)*s.a.Rs/vt - s.a.Rs/s.a.Rp - 1
		next := i - f/df
		if math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		if math.Abs(next-i) < 1e-12*(1+math.Abs(i)) {
			s.prevI, s.prevV, s.prevIl, s.prevDf = next, v, il, df
			s.warm = true
			return next, nil
		}
		i = next
	}
	// Hostile inputs (e.g. the clamped-exponent region): fall back to the
	// exact bracketed solve.
	iex, err := s.a.CurrentAt(v, g)
	if err == nil {
		s.prevI, s.prevV, s.prevIl, s.prevDf = iex, v, il, 0
		s.warm = true
	}
	return iex, err
}

// PowerAt returns V·I at voltage v and irradiance g using the warm solve.
func (s *Solver) PowerAt(v, g float64) (float64, error) {
	i, err := s.CurrentAt(v, g)
	if err != nil {
		return 0, err
	}
	return v * i, nil
}

// OpenCircuitVoltage returns the terminal voltage at which the output
// current is zero, memoised per irradiance.
func (s *Solver) OpenCircuitVoltage(g float64) (float64, error) {
	if g <= 0 {
		return 0, nil
	}
	if v, ok := s.voc[g]; ok {
		return v, nil
	}
	v, err := s.solveVoc(g)
	if err != nil {
		return 0, err
	}
	if len(s.voc) >= memoCap {
		// Clear in place rather than reallocating so a memo attached via
		// ShareVoc stays shared across its batch after eviction.
		clear(s.voc)
	}
	s.voc[g] = v
	return v, nil
}

// solveVoc finds Voc by Newton on the I=0 form of the diode equation,
// q(V) = Il − I0·expm1(V/vt) − V/Rp, which is strictly decreasing and
// concave: starting from the analytic upper estimate vt·ln(Il/I0+1) the
// iterates decrease monotonically onto the root.
func (s *Solver) solveVoc(g float64) (float64, error) {
	il := s.a.LightCurrent(g)
	vt := s.a.thermalVoltageString()
	v := vt * math.Log(il/s.a.I0+1)
	for iter := 0; iter < 60; iter++ {
		arg := v / vt
		if arg > 500 {
			arg = 500
		}
		em1 := expm1(arg)
		q := il - s.a.I0*em1 - v/s.a.Rp
		dq := -s.a.I0*(em1+1)/vt - 1/s.a.Rp
		next := v - q/dq
		if math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		if math.Abs(next-v) < 1e-12*(1+math.Abs(v)) {
			return next, nil
		}
		v = next
	}
	return s.a.OpenCircuitVoltage(g) // exact fallback
}

// MaximumPowerPoint locates the MPP at irradiance g by the same
// golden-section search as Array.MaximumPowerPoint, but with warm-started
// current solves, the fast Voc bound, and per-irradiance memoisation.
func (s *Solver) MaximumPowerPoint(g float64) (MPP, error) {
	if g <= 0 {
		return MPP{}, nil
	}
	if m, ok := s.mpp[g]; ok {
		return m, nil
	}
	voc, err := s.OpenCircuitVoltage(g)
	if err != nil {
		return MPP{}, err
	}
	v := goldenMPPVoltage(voc, func(v float64) float64 {
		p, perr := s.PowerAt(v, g)
		if perr != nil {
			return math.Inf(-1)
		}
		return p
	})
	i, err := s.CurrentAt(v, g)
	if err != nil {
		return MPP{}, err
	}
	m := MPP{V: v, I: i, P: v * i}
	if len(s.mpp) >= memoCap {
		s.mpp = make(map[float64]MPP)
	}
	s.mpp[g] = m
	return m, nil
}

// AvailablePower returns the maximum extractable power at irradiance g
// using the memoised fast MPP solve.
func (s *Solver) AvailablePower(g float64) (float64, error) {
	m, err := s.MaximumPowerPoint(g)
	if err != nil {
		return 0, err
	}
	return m.P, nil
}
