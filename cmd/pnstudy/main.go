// Command pnstudy runs declarative cross-scenario study matrices: a
// registered base scenario crossed over storage, control and workload
// axes, each cell a seed-range of Monte-Carlo repetitions, with
// bit-identical aggregation at any worker count — and first-class
// sharding and resume for campaign-scale distributed execution.
//
// Usage:
//
//	pnstudy [-scenario name] [-storage specs] [-control list] [-util list] [-reps N] ...
//	pnstudy -shard i/n -checkpoint shard-i.json ...
//	pnstudy -resume ck.json ...
//	pnstudy -merge shard-0.json,shard-1.json,... ...
//	pnstudy -list
//
// The matrix flags (everything except -workers and -progress) define
// the study identity: shard, resume and merge invocations must repeat
// them exactly — checkpoints carry a fingerprint and refuse to mix
// with a different matrix. Worker counts, shard counts and
// interruption points never change the result: the merged outcome is
// bit-identical to a single unsharded run.
//
// Axes (each optional; omitting all of them runs a plain Monte-Carlo
// campaign of the base scenario):
//
//	-storage  comma-separated storage levels:
//	            ideal:F        lossless capacitor of F farads
//	            supercap:F     bank with the built-in ESR/leakage parasitics
//	            hybrid:F:R     F-farad node backed by an R-farad reservoir
//	-control  comma-separated control levels: pn (power-neutral), static,
//	          or any Linux governor name (ondemand, conservative, ...)
//	-util     comma-separated workload utilisations in [0,1]
//
// -paired reuses one weather realisation per repetition across every
// cell (common random numbers), so cross-cell comparisons are paired
// rather than confounded by weather luck.
//
// Exports: -cells-csv (one row per cell), -runs-csv (one row per run),
// -json (full aggregate with marginals and dwell-time quantile bands).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pnps/internal/buffer"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/study"
)

func main() {
	var (
		scn      = flag.String("scenario", "stress-clouds", "registered base scenario")
		duration = flag.Float64("duration", 0, "override scenario duration, seconds (0 keeps the registered value)")
		storage  = flag.String("storage", "", "storage axis: ideal:F,supercap:F,hybrid:F:R")
		control  = flag.String("control", "", "control axis: pn, static, or governor names")
		util     = flag.String("util", "", "workload axis: utilisations in [0,1]")
		reps     = flag.Int("reps", 4, "Monte-Carlo repetitions per cell")
		seed     = flag.Int64("seed", 2017, "study base seed")
		paired   = flag.Bool("paired", false, "common random numbers: one realisation per repetition across all cells")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs")
		progress = flag.Bool("progress", false, "report run progress on stderr")
		bins     = flag.Int("bins", 250, "dwell-time voltage histogram bins (0 disables)")
		histLo   = flag.Float64("histlo", 0, "dwell histogram lower bound, volts")
		histHi   = flag.Float64("histhi", 10, "dwell histogram upper bound, volts")
		shard    = flag.String("shard", "", "run one shard i/n of the task ledger and write its checkpoint")
		ckpt     = flag.String("checkpoint", "", "checkpoint file to write (-shard) ")
		resume   = flag.String("resume", "", "checkpoint file to complete in place")
		merge    = flag.String("merge", "", "comma-separated shard checkpoints to merge")
		cellsCSV = flag.String("cells-csv", "", "write per-cell aggregates as CSV to this file")
		runsCSV  = flag.String("runs-csv", "", "write per-run outcomes as CSV to this file")
		jsonOut  = flag.String("json", "", "write the full aggregate as JSON to this file")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.List() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return
	}

	st, err := buildStudy(studyFlags{
		Scenario: *scn, Duration: *duration,
		Storage: *storage, Control: *control, Util: *util,
		Reps: *reps, Seed: *seed, Paired: *paired,
		Bins: *bins, HistLo: *histLo, HistHi: *histHi,
	})
	if err != nil {
		fatal(err)
	}
	st.Workers = *workers
	if *progress {
		st.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rpnstudy: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	ctx := context.Background()
	var out *study.StudyOutcome
	switch {
	case *merge != "":
		out, err = mergeOutcome(st, strings.Split(*merge, ","))
	case *resume != "":
		out, err = resumeOutcome(ctx, st, *resume)
	case *shard != "":
		err = runShard(ctx, st, *shard, *ckpt)
	default:
		out, err = st.Run(ctx)
	}
	if err != nil {
		fatal(err)
	}
	if out == nil {
		return // shard mode: checkpoint written, nothing to aggregate yet
	}

	printOutcome(st, out)
	if *cellsCSV != "" {
		err = writeFile(*cellsCSV, out.WriteCellsCSV)
	}
	if err == nil && *runsCSV != "" {
		err = writeFile(*runsCSV, out.WriteRunsCSV)
	}
	if err == nil && *jsonOut != "" {
		err = writeFile(*jsonOut, out.WriteJSON)
	}
	if err != nil {
		fatal(err)
	}
}

// studyFlags is the study-identity subset of the CLI flags.
type studyFlags struct {
	Scenario       string
	Duration       float64
	Storage        string
	Control        string
	Util           string
	Reps           int
	Seed           int64
	Paired         bool
	Bins           int
	HistLo, HistHi float64
}

// buildStudy assembles the study from the identity flags; the same
// flags always build the same fingerprint, which is what lets separate
// shard/resume/merge invocations cooperate.
func buildStudy(f studyFlags) (study.Study, error) {
	base, ok := scenario.Lookup(f.Scenario)
	if !ok {
		return study.Study{}, fmt.Errorf("unknown scenario %q (known: %v)", f.Scenario, scenario.Names())
	}
	if f.Duration > 0 {
		base.Duration = f.Duration
	}
	st := study.Study{
		Name: "pnstudy-" + f.Scenario, Base: base,
		Reps: f.Reps, Seed: f.Seed,
		VCHistBins: f.Bins, VCHistLo: f.HistLo, VCHistHi: f.HistHi,
	}
	if f.Paired {
		st.SeedMode = study.SeedPerRep
	}
	if f.Storage != "" {
		ax, err := parseStorageAxis(f.Storage)
		if err != nil {
			return study.Study{}, err
		}
		st.Axes = append(st.Axes, ax)
	}
	if f.Control != "" {
		st.Axes = append(st.Axes, parseControlAxis(f.Control))
	}
	if f.Util != "" {
		ax, err := parseUtilAxis(f.Util)
		if err != nil {
			return study.Study{}, err
		}
		st.Axes = append(st.Axes, ax)
	}
	return st, nil
}

// parseStorageAxis parses "ideal:0.047,supercap:0.047,hybrid:0.01:1"
// into a storage axis; the spec strings are the level labels.
func parseStorageAxis(s string) (study.Axis, error) {
	var levels []study.Level
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		parts := strings.Split(spec, ":")
		farads := func(i int) (float64, error) {
			if i >= len(parts) {
				return 0, fmt.Errorf("storage spec %q: missing capacitance", spec)
			}
			v, err := strconv.ParseFloat(parts[i], 64)
			if err != nil || v <= 0 {
				return 0, fmt.Errorf("storage spec %q: bad capacitance %q", spec, parts[i])
			}
			return v, nil
		}
		switch parts[0] {
		case "ideal":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.IdealCap{Farads: fd}))
		case "supercap":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.NewSupercap(buffer.Supercap{
				Farads: fd, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
			})))
		case "hybrid":
			fd, err := farads(1)
			if err != nil {
				return study.Axis{}, err
			}
			res, err := farads(2)
			if err != nil {
				return study.Axis{}, err
			}
			levels = append(levels, study.Storage(spec, sim.HybridCap{
				NodeFarads: fd, ReservoirFarads: res,
				DiodeDropVolts: 0.35, DiodeOhms: 0.2,
				ChargeOhms: 10, LeakOhms: 20000,
			}))
		default:
			return study.Axis{}, fmt.Errorf("storage spec %q: unknown family %q (ideal, supercap, hybrid)", spec, parts[0])
		}
	}
	return study.NewAxis("storage", levels...), nil
}

// parseControlAxis parses "pn,static,ondemand" into a control axis;
// governor names are validated at assembly time, not here.
func parseControlAxis(s string) study.Axis {
	var levels []study.Level
	for _, name := range strings.Split(s, ",") {
		switch name = strings.TrimSpace(name); name {
		case "pn", "power-neutral":
			levels = append(levels, study.PowerNeutral())
		case "static":
			levels = append(levels, study.Control("static", scenario.Uncontrolled()))
		default:
			levels = append(levels, study.Governor(name))
		}
	}
	return study.NewAxis("control", levels...)
}

// parseUtilAxis parses "1,0.6,0.3" into a workload axis.
func parseUtilAxis(s string) (study.Axis, error) {
	var levels []study.Level
	for _, part := range strings.Split(s, ",") {
		u, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || u < 0 || u > 1 {
			return study.Axis{}, fmt.Errorf("bad utilisation %q (want [0,1])", part)
		}
		levels = append(levels, study.Utilisation(u))
	}
	return study.NewAxis("load", levels...), nil
}

// parseShard parses "i/n".
func parseShard(s string) (i, n int, err error) {
	parts := strings.Split(s, "/")
	if len(parts) == 2 {
		i, err = strconv.Atoi(parts[0])
		if err == nil {
			n, err = strconv.Atoi(parts[1])
		}
		if err == nil && n >= 1 && i >= 0 && i < n {
			return i, n, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q (want i/n with 0 <= i < n)", s)
}

// runShard executes one ledger shard and writes its checkpoint.
func runShard(ctx context.Context, st study.Study, shard, ckpt string) error {
	if ckpt == "" {
		return fmt.Errorf("-shard needs -checkpoint to write the shard's state to")
	}
	i, n, err := parseShard(shard)
	if err != nil {
		return err
	}
	cp, err := st.RunShard(ctx, i, n)
	if err != nil {
		return err
	}
	if err := writeFile(ckpt, cp.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("shard %d/%d: %d of %d tasks done, checkpoint %s\n",
		i, n, len(cp.Records), cp.Total, ckpt)
	fmt.Printf("missing ranges: %v\n", cp.Missing())
	return nil
}

// resumeOutcome completes a checkpoint in place and returns its outcome.
func resumeOutcome(ctx context.Context, st study.Study, path string) (*study.StudyOutcome, error) {
	cp, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	full, err := st.Resume(ctx, cp)
	if err != nil {
		return nil, err
	}
	if err := writeFile(path, full.WriteJSON); err != nil {
		return nil, err
	}
	return st.Outcome(full)
}

// mergeOutcome merges shard checkpoints; incomplete merges report the
// missing ledger ranges instead of an outcome.
func mergeOutcome(st study.Study, paths []string) (*study.StudyOutcome, error) {
	cps := make([]*study.Checkpoint, len(paths))
	for i, p := range paths {
		cp, err := readCheckpoint(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		cps[i] = cp
	}
	merged, err := study.MergeCheckpoints(cps...)
	if err != nil {
		return nil, err
	}
	if !merged.Complete() {
		return nil, fmt.Errorf("merged checkpoint covers %d of %d tasks; missing ranges %v — run the remaining shards or -resume",
			len(merged.Records), merged.Total, merged.Missing())
	}
	return st.Outcome(merged)
}

func readCheckpoint(path string) (*study.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return study.ReadCheckpoint(f)
}

// writeFile writes atomically (temp file + rename): a crash or
// disk-full mid-write must never truncate an existing checkpoint —
// losing completed work is the exact failure the resumable ledger
// exists to survive.
func writeFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// printOutcome renders the per-cell table, the per-axis marginals and
// the overall aggregate.
func printOutcome(st study.Study, out *study.StudyOutcome) {
	fmt.Printf("study %s: %d cells × %d reps = %d runs (seed %d)\n\n",
		st.Name, len(out.Cells), st.Reps, out.Summary.Runs, st.Seed)
	keyWidth := len("cell")
	for _, c := range out.Cells {
		if len(c.Cell.Key) > keyWidth {
			keyWidth = len(c.Cell.Key)
		}
	}
	fmt.Printf("%-*s  %-9s %-9s %-22s %-11s %s\n", keyWidth, "cell",
		"survival", "brownouts", "within ±5% (P25..P75)", "mean instr", "dwell med")
	for _, c := range out.Cells {
		s := c.Summary
		key := c.Cell.Key
		if key == "" {
			key = "(all)"
		}
		dwell := "-"
		if c.DwellVC != nil {
			dwell = fmt.Sprintf("%.3f V", c.DwellVC.Median)
		}
		fmt.Printf("%-*s  %6.1f%%  %-9d %5.1f%% (%4.1f..%4.1f%%)     %7.2f G   %s\n",
			keyWidth, key, s.SurvivalRate*100, s.TotalBrownouts,
			s.Stability.Mean*100, s.Stability.P25*100, s.Stability.P75*100,
			s.Instructions.Mean/1e9, dwell)
	}
	if len(out.Marginals) > 0 {
		fmt.Println("\nmarginals (each level aggregated across all other axes):")
		for _, m := range out.Marginals {
			s := m.Summary
			fmt.Printf("  %-10s %-22s survival %5.1f%%  within ±5%% %5.1f%%  instr %7.2f G\n",
				m.Axis, m.Level, s.SurvivalRate*100, s.Stability.Mean*100, s.Instructions.Mean/1e9)
		}
	}
	s := out.Summary
	fmt.Printf("\noverall: survival %.1f%%, within ±5%% mean %.1f%% (P5 %.1f%%, median %.1f%%, P95 %.1f%%)\n",
		s.SurvivalRate*100, s.Stability.Mean*100,
		s.Stability.P5*100, s.Stability.Median*100, s.Stability.P95*100)
	if out.DwellVC != nil {
		fmt.Printf("supply dwell: median %.3f V (P25..P75 %.3f..%.3f V) over %.0f run-seconds\n",
			out.DwellVC.Median, out.DwellVC.P25, out.DwellVC.P75, out.VCHistogram.Total())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnstudy:", err)
	os.Exit(1)
}
