package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// expDecay is dy/dt = -y with solution y0·exp(-t).
func expDecay(_ float64, y, dydt []float64) { dydt[0] = -y[0] }

// harmonic is y” = -y as a 2-state system; solution (cos t, -sin t) from
// (1, 0).
func harmonic(_ float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

func TestRK23ExpDecayAccuracy(t *testing.T) {
	y := []float64{1}
	res, err := RK23(expDecay, 0, 5, y, Options{RTol: 1e-8, ATol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if got := y[0]; math.Abs(got-want) > 1e-6 {
		t.Errorf("y(5) = %g, want %g", got, want)
	}
	if res.Steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestRK23Harmonic(t *testing.T) {
	y := []float64{1, 0}
	_, err := RK23(harmonic, 0, 2*math.Pi, y, Options{RTol: 1e-9, ATol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-5 || math.Abs(y[1]) > 1e-5 {
		t.Errorf("after full period got (%g, %g), want (1, 0)", y[0], y[1])
	}
}

func TestRK23TightensWithTolerance(t *testing.T) {
	run := func(rtol float64) float64 {
		y := []float64{1}
		if _, err := RK23(expDecay, 0, 3, y, Options{RTol: rtol, ATol: rtol * 1e-2}); err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-3))
	}
	loose := run(1e-3)
	tight := run(1e-9)
	if tight >= loose {
		t.Errorf("tight tolerance error %g not better than loose %g", tight, loose)
	}
}

func TestEulerConvergenceOrder(t *testing.T) {
	errAt := func(h float64) float64 {
		y := []float64{1}
		if _, err := Euler(expDecay, 0, 1, y, h, Options{}); err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-1))
	}
	e1 := errAt(1e-2)
	e2 := errAt(5e-3)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 { // first order: halving h halves error
		t.Errorf("Euler error ratio %g, want ≈2", ratio)
	}
}

func TestRK4ConvergenceOrder(t *testing.T) {
	errAt := func(h float64) float64 {
		y := []float64{1, 0}
		if _, err := RK4(harmonic, 0, 1, y, h, Options{}); err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Cos(1))
	}
	e1 := errAt(1e-2)
	e2 := errAt(5e-3)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 { // fourth order: halving h gives ~16x
		t.Errorf("RK4 error ratio %g, want ≈16", ratio)
	}
}

func TestRK23EventLocalisation(t *testing.T) {
	// y = exp(-t) crosses 0.5 at t = ln 2.
	y := []float64{1}
	res, err := RK23(expDecay, 0, 5, y, Options{
		Events: []Event{{
			Name:      "half",
			G:         func(_ float64, y []float64) float64 { return y[0] - 0.5 },
			Direction: -1,
			Terminal:  true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("terminal event did not stop integration")
	}
	want := math.Log(2)
	if math.Abs(res.T-want) > 5e-6 {
		t.Errorf("event at t=%g, want %g", res.T, want)
	}
	if math.Abs(y[0]-0.5) > 5e-6 {
		t.Errorf("state at event y=%g, want 0.5", y[0])
	}
	if len(res.Hits) != 1 || res.Hits[0].Name != "half" {
		t.Errorf("hits = %+v", res.Hits)
	}
}

func TestRK23EventDirectionFilter(t *testing.T) {
	// Harmonic y0 = cos t crosses zero falling at π/2 and rising at 3π/2.
	y := []float64{1, 0}
	res, err := RK23(harmonic, 0, 7, y, Options{
		Events: []Event{{
			Name:      "risingZero",
			G:         func(_ float64, y []float64) float64 { return y[0] },
			Direction: +1,
			Terminal:  true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Pi / 2
	if !res.Stopped || math.Abs(res.T-want) > 1e-5 {
		t.Errorf("rising zero at t=%g, want %g", res.T, want)
	}
}

func TestRK23NonTerminalEventsAllRecorded(t *testing.T) {
	// cos t has zeros at π/2 + kπ; over [0, 10] that is 3 zeros.
	y := []float64{1, 0}
	res, err := RK23(harmonic, 0, 10, y, Options{
		Events: []Event{{
			Name: "zero",
			G:    func(_ float64, y []float64) float64 { return y[0] },
		}},
		MaxStep: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("got %d zero crossings, want 3: %+v", len(res.Hits), res.Hits)
	}
	wants := []float64{math.Pi / 2, 3 * math.Pi / 2, 5 * math.Pi / 2}
	for i, h := range res.Hits {
		if math.Abs(h.T-wants[i]) > 1e-4 {
			t.Errorf("hit %d at t=%g, want %g", i, h.T, wants[i])
		}
	}
}

func TestFixedStepEvents(t *testing.T) {
	y := []float64{1}
	res, err := RK4(expDecay, 0, 5, y, 1e-3, Options{
		Events: []Event{{
			Name:      "half",
			G:         func(_ float64, y []float64) float64 { return y[0] - 0.5 },
			Direction: -1,
			Terminal:  true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || math.Abs(res.T-math.Log(2)) > 1e-4 {
		t.Errorf("event at t=%g, want ln2=%g", res.T, math.Log(2))
	}
}

func TestInvalidInputs(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"empty state", func() error {
			_, err := RK23(expDecay, 0, 1, nil, Options{})
			return err
		}},
		{"backward span", func() error {
			_, err := RK23(expDecay, 1, 0, []float64{1}, Options{})
			return err
		}},
		{"zero span", func() error {
			_, err := RK23(expDecay, 1, 1, []float64{1}, Options{})
			return err
		}},
		{"NaN initial", func() error {
			_, err := RK23(expDecay, 0, 1, []float64{math.NaN()}, Options{})
			return err
		}},
		{"Inf initial", func() error {
			_, err := RK23(expDecay, 0, 1, []float64{math.Inf(1)}, Options{})
			return err
		}},
		{"euler bad step", func() error {
			_, err := Euler(expDecay, 0, 1, []float64{1}, -1, Options{})
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMaxStepsGuard(t *testing.T) {
	y := []float64{1}
	_, err := RK23(expDecay, 0, 1e9, y, Options{MaxStep: 1e-3, MaxSteps: 100})
	if err == nil {
		t.Fatal("expected MaxSteps error")
	}
}

func TestOnStepCallback(t *testing.T) {
	var times []float64
	y := []float64{1}
	_, err := RK23(expDecay, 0, 1, y, Options{
		OnStep: func(tt float64, _ []float64) { times = append(times, tt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 {
		t.Fatalf("OnStep called %d times", len(times))
	}
	if times[0] != 0 {
		t.Errorf("first OnStep at %g, want 0", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Errorf("OnStep times not monotone at %d", i)
		}
	}
	if last := times[len(times)-1]; last != 1 {
		t.Errorf("last OnStep at %g, want 1", last)
	}
}

func TestHermiteReproducesCubic(t *testing.T) {
	// The dense-output interpolant must be exact for cubics.
	f := func(x float64) float64 { return 2*x*x*x - 3*x*x + x - 7 }
	df := func(x float64) float64 { return 6*x*x - 6*x + 1 }
	t0, t1 := 0.3, 1.7
	y0 := []float64{f(t0)}
	y1 := []float64{f(t1)}
	f0 := []float64{df(t0)}
	f1 := []float64{df(t1)}
	out := make([]float64, 1)
	for _, tc := range []float64{0.3, 0.5, 1.0, 1.4, 1.7} {
		hermite(out, t0, t1, tc, y0, y1, f0, f1)
		if math.Abs(out[0]-f(tc)) > 1e-12 {
			t.Errorf("hermite(%g) = %g, want %g", tc, out[0], f(tc))
		}
	}
}

// TestQuickRK23MatchesRK4 cross-validates the adaptive solver against a
// fine fixed-step RK4 run on random stable linear scalar ODEs.
func TestQuickRK23MatchesRK4(t *testing.T) {
	f := func(lambda0, y00 float64) bool {
		lambda := -math.Mod(math.Abs(lambda0), 3) - 0.1
		y0 := math.Mod(y00, 10)
		rhs := func(_ float64, y, dydt []float64) { dydt[0] = lambda * y[0] }
		ya := []float64{y0}
		if _, err := RK23(rhs, 0, 2, ya, Options{RTol: 1e-9, ATol: 1e-12}); err != nil {
			return false
		}
		yb := []float64{y0}
		if _, err := RK4(rhs, 0, 2, yb, 1e-4, Options{}); err != nil {
			return false
		}
		return math.Abs(ya[0]-yb[0]) < 1e-6*(1+math.Abs(yb[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}

func TestErrNormScaling(t *testing.T) {
	// err exactly at tolerance gives norm 1.
	en := errNorm([]float64{1e-6}, []float64{1}, []float64{1}, 0, 1e-6)
	if math.Abs(en-1) > 1e-12 {
		t.Errorf("errNorm = %g, want 1", en)
	}
	// Larger state loosens the relative scale.
	en2 := errNorm([]float64{1e-6}, []float64{10}, []float64{10}, 0, 1e-6)
	if en2 >= en {
		t.Errorf("errNorm with larger state %g should shrink below %g", en2, en)
	}
}
