package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFullLoad(t *testing.T) {
	if (FullLoad{}).Load(123) != 1 {
		t.Error("full load not 1")
	}
}

func TestConstantLoadClamped(t *testing.T) {
	if ConstantLoad(0.5).Load(0) != 0.5 {
		t.Error("constant load wrong")
	}
	if ConstantLoad(7).Load(0) != 1 || ConstantLoad(-2).Load(0) != 0 {
		t.Error("clamping broken")
	}
}

func TestSquareLoad(t *testing.T) {
	s := SquareLoad{High: 0.9, Low: 0.1, Period: 10, Duty: 0.3}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(1); got != 0.9 {
		t.Errorf("high phase load %g", got)
	}
	if got := s.Load(5); got != 0.1 {
		t.Errorf("low phase load %g", got)
	}
	// Periodicity.
	if s.Load(11) != s.Load(1) {
		t.Error("not periodic")
	}
	// Negative time wraps.
	if s.Load(-9) != s.Load(1) {
		t.Error("negative time broken")
	}
}

func TestSquareLoadValidation(t *testing.T) {
	if err := (SquareLoad{Period: 0, Duty: 0.5}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
	if err := (SquareLoad{Period: 1, Duty: 1.5}).Validate(); err == nil {
		t.Error("duty > 1 accepted")
	}
}

func TestRampLoad(t *testing.T) {
	r := RampLoad{Duration: 10}
	if r.Load(-1) != 0 || r.Load(0) != 0 {
		t.Error("pre-ramp load wrong")
	}
	if math.Abs(r.Load(5)-0.5) > 1e-12 {
		t.Error("mid-ramp load wrong")
	}
	if r.Load(10) != 1 || r.Load(100) != 1 {
		t.Error("post-ramp load wrong")
	}
	if (RampLoad{}).Load(5) != 1 {
		t.Error("zero-duration ramp should saturate")
	}
}

// TestQuickLoadsBounded: every profile yields loads in [0,1] at any time.
func TestQuickLoadsBounded(t *testing.T) {
	profiles := []LoadProfile{
		FullLoad{}, ConstantLoad(0.4),
		SquareLoad{High: 2, Low: -1, Period: 7, Duty: 0.5},
		RampLoad{Duration: 3},
	}
	f := func(tRaw float64) bool {
		tt := math.Mod(tRaw, 1e6)
		for _, p := range profiles {
			l := p.Load(tt)
			if l < 0 || l > 1 || math.IsNaN(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
