package soc

import (
	"fmt"
	"math"
)

// PowerModel computes board power from the operating point and CPU
// utilisation, following the standard CMOS decomposition
//
//	P = Pbase + Σ_core ( u · Cdyn · f · Vdd(f)² + Kleak · Vdd(f) )
//
// with a per-cluster dynamic coefficient and a per-cluster voltage/frequency
// ladder. Coefficients are calibrated against the paper's Fig. 4 (board
// power vs frequency for every core configuration under a CPU-saturating
// ray-tracing workload).
type PowerModel struct {
	// BaseWatts is the frequency-independent board floor (DRAM, eMMC,
	// regulators, fan), watts.
	BaseWatts float64
	// DynLittle and DynBig are dynamic power coefficients in W/(GHz·V²)
	// per core.
	DynLittle, DynBig float64
	// LeakLittle and LeakBig are leakage coefficients in W/V per core.
	LeakLittle, LeakBig float64
	// VddLittle and VddBig map each DVFS level to a rail voltage, volts.
	// Length must equal NumFrequencyLevels.
	VddLittle, VddBig []float64
}

// DefaultPowerModel returns coefficients calibrated to the Exynos5422
// measurements in the paper's Fig. 4: ≈1.8 W for 1×A7 at 0.2 GHz rising to
// ≈7 W for 4×A7+4×A15 at 1.4 GHz.
func DefaultPowerModel() *PowerModel {
	return &PowerModel{
		BaseWatts:  1.70,
		DynLittle:  0.126,
		DynBig:     0.500,
		LeakLittle: 0.008,
		LeakBig:    0.040,
		// Rail voltages per frequency level, approximating the Exynos5422
		// DVFS tables (LITTLE rail tops out lower than the big rail).
		VddLittle: []float64{0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20, 1.25},
		VddBig:    []float64{0.90, 0.94, 0.98, 1.03, 1.08, 1.12, 1.16, 1.20},
	}
}

// Validate checks dimensional consistency of the model tables.
func (m *PowerModel) Validate() error {
	if len(m.VddLittle) != NumFrequencyLevels || len(m.VddBig) != NumFrequencyLevels {
		return fmt.Errorf("soc: Vdd tables must have %d entries, got %d/%d",
			NumFrequencyLevels, len(m.VddLittle), len(m.VddBig))
	}
	if m.BaseWatts < 0 || m.DynLittle < 0 || m.DynBig < 0 || m.LeakLittle < 0 || m.LeakBig < 0 {
		return fmt.Errorf("soc: power coefficients must be non-negative")
	}
	for i := 1; i < NumFrequencyLevels; i++ {
		if m.VddLittle[i] < m.VddLittle[i-1] || m.VddBig[i] < m.VddBig[i-1] {
			return fmt.Errorf("soc: Vdd tables must be non-decreasing in frequency")
		}
	}
	return nil
}

// Power returns board power in watts at the given OPP and utilisation
// (0..1; 1 = fully CPU-bound, the paper's ray-tracing workload).
// Utilisation outside [0,1] is clamped.
func (m *PowerModel) Power(o OPP, utilisation float64) float64 {
	o = o.Clamp()
	u := math.Min(math.Max(utilisation, 0), 1)
	fGHz := o.Frequency() / 1e9
	vl := m.VddLittle[o.FreqIdx]
	vb := m.VddBig[o.FreqIdx]
	p := m.BaseWatts
	p += float64(o.Config.Little) * (u*m.DynLittle*fGHz*vl*vl + m.LeakLittle*vl)
	p += float64(o.Config.Big) * (u*m.DynBig*fGHz*vb*vb + m.LeakBig*vb)
	return p
}

// PowerAtFullLoad is Power with utilisation 1 — the surface plotted in the
// paper's Fig. 4.
func (m *PowerModel) PowerAtFullLoad(o OPP) float64 { return m.Power(o, 1) }

// CurrentDraw converts board power into supply current at the given supply
// voltage, modelling the board's switching regulator as a constant-power
// load: I = P / V (regulator efficiency is folded into the calibrated
// power numbers).
func (m *PowerModel) CurrentDraw(o OPP, utilisation, supplyVolts float64) float64 {
	if supplyVolts <= 0 {
		return 0
	}
	return m.Power(o, utilisation) / supplyVolts
}

// MinPower returns the full-load power at the minimal OPP.
func (m *PowerModel) MinPower() float64 { return m.PowerAtFullLoad(MinOPP()) }

// MaxPower returns the full-load power at the maximal OPP.
func (m *PowerModel) MaxPower() float64 { return m.PowerAtFullLoad(MaxOPP()) }

// AllOPPs enumerates the full OPP space (8 frequency levels × 20 core
// configurations) in deterministic order.
func AllOPPs() []OPP {
	var opps []OPP
	for nl := 1; nl <= 4; nl++ {
		for nb := 0; nb <= 4; nb++ {
			for fi := 0; fi < NumFrequencyLevels; fi++ {
				opps = append(opps, OPP{FreqIdx: fi, Config: CoreConfig{Little: nl, Big: nb}})
			}
		}
	}
	return opps
}

// HighestOPPWithin returns the highest-performance OPP whose full-load
// power does not exceed budget watts, scanning the whole OPP space.
// ok is false when even the minimal OPP exceeds the budget. "Higher
// performance" follows instructions/s as given by perf.
func (m *PowerModel) HighestOPPWithin(budget float64, perf *PerfModel) (best OPP, ok bool) {
	bestIPS := -1.0
	for _, o := range AllOPPs() {
		if m.PowerAtFullLoad(o) > budget {
			continue
		}
		if ips := perf.InstructionsPerSecond(o); ips > bestIPS {
			bestIPS = ips
			best = o
			ok = true
		}
	}
	return best, ok
}
