// Command pnrender runs the paper's benchmark application — a smallpt-
// style global-illumination path tracer — on the host, reporting the FPS
// metric of the paper's Fig. 7 and optionally writing the rendered frame.
//
// Usage:
//
//	pnrender [-width W] [-height H] [-spp N] [-workers N] [-o out.ppm]
//
// The paper benchmarks at 5 samples/pixel; throughput scales with the
// worker count, mirroring the board's core scaling.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnps/internal/workload"
)

func main() {
	var (
		width   = flag.Int("width", 256, "image width, pixels")
		height  = flag.Int("height", 192, "image height, pixels")
		spp     = flag.Int("spp", 5, "samples per pixel (paper quality: 5)")
		workers = flag.Int("workers", 0, "render workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "Monte-Carlo seed")
		out     = flag.String("o", "", "write the frame as PPM to this path")
	)
	flag.Parse()

	scene := workload.CornellScene()
	start := time.Now()
	img, err := scene.Render(workload.RenderOptions{
		Width: *width, Height: *height,
		SamplesPerPixel: *spp, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnrender:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("rendered %dx%d at %d spp in %v\n", *width, *height, *spp, elapsed)
	fmt.Printf("throughput: %.4f frames/s (%.4f frames/min)\n",
		1/elapsed.Seconds(), 60/elapsed.Seconds())
	fmt.Printf("mean luminance: %.4f\n", img.MeanLuminance())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pnrender:", err)
			os.Exit(1)
		}
		if err := img.WritePPM(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pnrender:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pnrender:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
