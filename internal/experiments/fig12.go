package experiments

import (
	"sync"

	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/trace"
)

// fig12Duration is the paper's 10:30–16:30 test window.
const fig12Duration = 6 * 3600.0

// fig12Cache memoises the expensive six-hour run per seed: Fig12, Fig13,
// Fig14 and Fig15 all analyse the same scenario, as in the paper.
var (
	fig12Mu    sync.Mutex
	fig12Cache = map[int64]*fig12Entry{}
)

type fig12Entry struct {
	res    *sim.Result
	target float64
}

// fig12Run executes the paper's Fig. 12 scenario: a six-hour full-sun run
// of the complete system, starting at 10:30, with light atmospheric
// micro-variability. Shared by Fig12, Fig13, Fig14 and Fig15.
func fig12Run(seed int64) (*sim.Result, float64, error) {
	fig12Mu.Lock()
	defer fig12Mu.Unlock()
	if e, ok := fig12Cache[seed]; ok {
		return e.res, e.target, nil
	}
	res, target, err := fig12RunUncached(seed)
	if err != nil {
		return nil, 0, err
	}
	fig12Cache[seed] = &fig12Entry{res: res, target: target}
	return res, target, nil
}

func fig12RunUncached(seed int64) (*sim.Result, float64, error) {
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, 0, err
	}
	target := mpp.V // the paper's calibrated MPP target (5.3 V)

	// The scenario registry holds the run definition (full sun with faint
	// haze passages from 10:30); the experiment only pins the target.
	spec := scenario.MustLookup("fig12-fullsun")
	spec.TargetVolts = target
	res, err := spec.Run(seed)
	if err != nil {
		return nil, 0, err
	}
	return res, target, nil
}

// Fig12 regenerates the paper's Fig. 12: the supercapacitor voltage over a
// six-hour full-sun test, reporting the proportion of time spent within
// ±5% of the target (MPP) voltage. The paper measured 93.3%.
func Fig12(seed int64) (*Report, error) {
	res, target, err := fig12Run(seed)
	if err != nil {
		return nil, err
	}
	within5 := res.StabilityWithin(0.05)
	within10 := res.StabilityWithin(0.10)
	minV, _ := res.VC.Min()
	maxV, _ := res.VC.Max()
	meanV, _ := res.VC.TimeMean()

	r := &Report{
		ID:    "fig12",
		Title: "Supply-voltage stabilisation over a 6 h full-sun run",
		Description: "Vc held near the array's calibrated MPP voltage by the power-neutral " +
			"controller; no MPPT hardware involved.",
		Series: []*trace.Series{res.VC.Decimate(8)},
	}
	r.AddPaperMetric("time within ±5% of target", within5*100, 93.3, "%", "headline stability metric")
	r.AddMetric("time within ±10% of target", within10*100, "%", "")
	r.AddMetric("target voltage (calibrated MPP)", target, "V", "paper: 5.3 V")
	r.AddMetric("mean Vc", meanV, "V", "")
	r.AddMetric("min Vc", minV, "V", "")
	r.AddMetric("max Vc", maxV, "V", "")
	r.AddMetric("brownouts", float64(res.Brownouts), "", "must be 0")
	r.AddMetric("threshold interrupts", float64(res.Interrupts), "", "")
	r.Plots = append(r.Plots, trace.ASCIIPlot(res.VC.Decimate(32), 72, 12))
	return r, nil
}
