package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean %g", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 { // classic example: σ = 2
		t.Errorf("stddev %g, want 2", s.StdDev)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("median %g", s.Median)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("empty summarize should error")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5, -1: 1, 2: 5}
	for q, want := range cases {
		if got := Quantile(sorted, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median %g", got)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, v := range sorted {
			if math.IsNaN(v) {
				return true
			}
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(sorted, a) <= Quantile(sorted, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)            // bin 0
	h.Add(9.999)        // bin 4
	h.Add(-3)           // underflow
	h.Add(10)           // overflow (half-open)
	h.AddWeighted(5, 3) // bin 2 with weight 3
	if h.Total() != 7 {
		t.Errorf("total %g", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under %g over %g", h.Underflow(), h.Overflow())
	}
	if h.Bins[2] != 3 {
		t.Errorf("bin 2 weight %g", h.Bins[2])
	}
	if h.ModeBin() != 2 {
		t.Errorf("mode bin %d", h.ModeBin())
	}
	if c := h.BinCenter(2); c != 5 {
		t.Errorf("bin 2 center %g", c)
	}
	if f := h.Fraction(2); math.Abs(f-3.0/7) > 1e-12 {
		t.Errorf("fraction %g", f)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1) > 1e-12 || math.Abs(fit.Slope-2) > 1e-12 {
		t.Errorf("fit %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R² = %g, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLineFlat(t *testing.T) {
	fit, err := FitLine([]float64{0, 1, 2}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R2 != 1 {
		t.Errorf("flat fit %+v", fit)
	}
}
