// Package testutil holds the shared helpers behind the repo's
// golden-equality discipline: a refactor, migration or alternative
// engine is accepted only when its outcomes are bit-identical to the
// reference path. The scenario, experiments and study layers all pin
// that invariant; the assertion lived as hand-rolled field-by-field
// comparisons in each of them before being extracted here.
//
// The helpers use == throughout — never a tolerance — because the
// invariant under test is exact floating-point equality, not numerical
// closeness.
//
// (internal/sim's own tests cannot import this package — it imports sim
// — and keep their in-package comparisons instead.)
package testutil

import (
	"testing"

	"pnps/internal/core"
	"pnps/internal/sim"
	"pnps/internal/trace"
)

// RequireEqual fails the test unless got == want, for any comparable
// summary/outcome struct (study summaries, sweep points, histograms
// bins). label names the comparison in the failure message.
func RequireEqual[T comparable](t testing.TB, label string, got, want T) {
	t.Helper()
	if got != want {
		t.Fatalf("%s diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
}

// RequireEqualSeries fails the test unless the two series carry
// bit-identical (time, value) samples. Both nil passes (series capture
// off on both sides); one nil fails.
func RequireEqualSeries(t testing.TB, label string, got, want *trace.Series) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: one series is nil (got %v, want %v)", label, got != nil, want != nil)
	}
	if got == nil {
		return
	}
	gt, gv := got.Times(), got.Values()
	wt, wv := want.Times(), want.Values()
	if len(gt) != len(wt) {
		t.Fatalf("%s: series lengths differ: got %d, want %d", label, len(gt), len(wt))
	}
	for i := range gt {
		if gt[i] != wt[i] || gv[i] != wv[i] {
			t.Fatalf("%s: series diverge at sample %d: got (%g, %g), want (%g, %g)",
				label, i, gt[i], gv[i], wt[i], wv[i])
		}
	}
}

// resultScalars is the comparable snapshot of every scalar outcome a
// sim.Result carries; two results agree bit-identically iff their
// snapshots are == and their series pass RequireEqualSeries.
type resultScalars struct {
	Interrupts, Brownouts, Restarts, GovernorTicks int
	BrownedOut                                     bool
	FirstBrownout, Instructions, Frames            float64
	LifetimeSeconds, FinalVC                       float64
	StorageEnergyStartJ, StorageEnergyEndJ         float64
	TargetVolts, CPUOverhead, MonitorPowerWatts    float64
	Stats                                          core.Stats
	Env                                            sim.Envelope
}

func scalarsOf(r *sim.Result) resultScalars {
	return resultScalars{
		Interrupts:          r.Interrupts,
		Brownouts:           r.Brownouts,
		Restarts:            r.Restarts,
		GovernorTicks:       r.GovernorTicks,
		BrownedOut:          r.BrownedOut,
		FirstBrownout:       r.FirstBrownout,
		Instructions:        r.Instructions,
		Frames:              r.Frames,
		LifetimeSeconds:     r.LifetimeSeconds,
		FinalVC:             r.FinalVC,
		StorageEnergyStartJ: r.StorageEnergyStartJ,
		StorageEnergyEndJ:   r.StorageEnergyEndJ,
		TargetVolts:         r.TargetVolts,
		CPUOverhead:         r.CPUOverhead,
		MonitorPowerWatts:   r.MonitorPowerWatts,
		Stats:               r.ControllerStats,
		Env:                 r.VCEnvelope,
	}
}

// RequireEqualResults fails the test unless got and want are
// bit-identical: every scalar outcome, the controller stats, the supply
// envelope and every captured series. label names the comparison in
// failure messages.
func RequireEqualResults(t testing.TB, label string, got, want *sim.Result) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: one result is nil (got %v, want %v)", label, got != nil, want != nil)
	}
	if got == nil {
		return
	}
	RequireEqual(t, label+" scalars", scalarsOf(got), scalarsOf(want))
	RequireEqualSeries(t, label+" VC", got.VC, want.VC)
	RequireEqualSeries(t, label+" PowerConsumed", got.PowerConsumed, want.PowerConsumed)
	RequireEqualSeries(t, label+" PowerAvailable", got.PowerAvailable, want.PowerAvailable)
	RequireEqualSeries(t, label+" FreqGHz", got.FreqGHz, want.FreqGHz)
	RequireEqualSeries(t, label+" LittleCores", got.LittleCores, want.LittleCores)
	RequireEqualSeries(t, label+" BigCores", got.BigCores, want.BigCores)
	RequireEqualSeries(t, label+" TotalCores", got.TotalCores, want.TotalCores)
}
