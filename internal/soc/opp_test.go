package soc

import (
	"testing"
	"testing/quick"
)

func TestCoreConfigString(t *testing.T) {
	cases := map[CoreConfig]string{
		{Little: 1}:         "1xA7",
		{Little: 4}:         "4xA7",
		{Little: 4, Big: 2}: "4xA7+2xA15",
	}
	for cfg, want := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", cfg, got, want)
		}
	}
}

func TestCoreConfigValid(t *testing.T) {
	valid := []CoreConfig{{Little: 1}, {Little: 4, Big: 4}, {Little: 2, Big: 3}}
	invalid := []CoreConfig{{}, {Little: 0, Big: 1}, {Little: 5}, {Little: 1, Big: 5}, {Little: -1}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestQuickConfigClampAlwaysValid(t *testing.T) {
	f := func(l, b int8) bool {
		return CoreConfig{Little: int(l), Big: int(b)}.Clamp().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigLadder(t *testing.T) {
	ladder := ConfigLadder()
	if len(ladder) != NumLadderConfigs {
		t.Fatalf("ladder length %d", len(ladder))
	}
	for i, cfg := range ladder {
		if !cfg.Valid() {
			t.Errorf("ladder[%d] = %v invalid", i, cfg)
		}
		if cfg.TotalCores() != i+1 {
			t.Errorf("ladder[%d] has %d cores, want %d", i, cfg.TotalCores(), i+1)
		}
		idx, err := LadderIndex(cfg)
		if err != nil || idx != i {
			t.Errorf("LadderIndex(%v) = %d, %v", cfg, idx, err)
		}
	}
	if _, err := LadderIndex(CoreConfig{Little: 2, Big: 1}); err == nil {
		t.Error("off-ladder config should error")
	}
}

func TestFrequencyLevels(t *testing.T) {
	fl := FrequencyLevels()
	if len(fl) != NumFrequencyLevels {
		t.Fatalf("got %d levels", len(fl))
	}
	// The paper's exact list.
	want := []float64{0.2e9, 0.45e9, 0.72e9, 0.92e9, 1.1e9, 1.2e9, 1.3e9, 1.4e9}
	for i := range want {
		if fl[i] != want[i] {
			t.Errorf("level %d = %g, want %g", i, fl[i], want[i])
		}
	}
	for i := 1; i < len(fl); i++ {
		if fl[i] <= fl[i-1] {
			t.Errorf("levels not ascending at %d", i)
		}
	}
}

func TestOPPBasics(t *testing.T) {
	min, max := MinOPP(), MaxOPP()
	if !min.Valid() || !max.Valid() {
		t.Fatal("boundary OPPs invalid")
	}
	if min.Frequency() != 0.2e9 || max.Frequency() != 1.4e9 {
		t.Error("boundary frequencies wrong")
	}
	if min.Config.TotalCores() != 1 || max.Config.TotalCores() != 8 {
		t.Error("boundary core counts wrong")
	}
	if s := max.String(); s != "4xA7+4xA15@1.40GHz" {
		t.Errorf("String = %q", s)
	}
}

func TestQuickOPPClampAlwaysValid(t *testing.T) {
	f := func(fi int8, l, b int8) bool {
		o := OPP{FreqIdx: int(fi), Config: CoreConfig{Little: int(l), Big: int(b)}}
		return o.Clamp().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllOPPs(t *testing.T) {
	opps := AllOPPs()
	want := 4 * 5 * NumFrequencyLevels // 4 LITTLE counts × 5 big counts × 8 levels
	if len(opps) != want {
		t.Fatalf("got %d OPPs, want %d", len(opps), want)
	}
	seen := map[OPP]bool{}
	for _, o := range opps {
		if !o.Valid() {
			t.Errorf("invalid OPP %v enumerated", o)
		}
		if seen[o] {
			t.Errorf("duplicate OPP %v", o)
		}
		seen[o] = true
	}
}
