package soc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlatformBoot(t *testing.T) {
	p := NewDefaultPlatform()
	if !p.Alive() {
		t.Fatal("platform not alive after construction")
	}
	if p.EffectiveOPP() != MinOPP() || p.CommittedOPP() != MinOPP() {
		t.Error("platform should boot at the minimal OPP")
	}
	if p.InTransition() {
		t.Error("fresh platform should be idle")
	}
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(nil, DefaultPerfModel(), DefaultLatencyModel()); err == nil {
		t.Error("nil power model accepted")
	}
	badPerf := DefaultPerfModel()
	badPerf.IPCBig = -1
	if _, err := NewPlatform(DefaultPowerModel(), badPerf, DefaultLatencyModel()); err == nil {
		t.Error("invalid perf model accepted")
	}
}

func TestAdvanceAccruesInstructions(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	if err := p.Advance(10); err != nil {
		t.Fatal(err)
	}
	want := p.Perf.InstructionsPerSecond(MinOPP()) * 10
	if got := p.Instructions(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("instructions = %g, want %g", got, want)
	}
	if p.Frames() <= 0 {
		t.Error("no frames accrued")
	}
	// Time cannot go backwards.
	if err := p.Advance(5); err == nil {
		t.Error("backwards Advance accepted")
	}
}

func TestUtilisationScalesAccrual(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	p.SetUtilisation(0.5)
	if err := p.Advance(10); err != nil {
		t.Fatal(err)
	}
	want := p.Perf.InstructionsPerSecond(MinOPP()) * 10 * 0.5
	if got := p.Instructions(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("instructions = %g, want %g", got, want)
	}
	p.SetUtilisation(7)
	if p.Utilisation() != 1 {
		t.Error("utilisation not clamped")
	}
}

func TestRequestOPPSingleStep(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	target := OPP{FreqIdx: 1, Config: CoreConfig{Little: 1}}
	done, err := p.RequestOPP(target, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("zero-latency transition")
	}
	if p.CommittedOPP() != target {
		t.Error("committed OPP not updated")
	}
	if p.EffectiveOPP() != MinOPP() {
		t.Error("effective OPP changed before completion")
	}
	if !p.InTransition() {
		t.Error("platform should be mid-transition")
	}
	if err := p.Advance(done); err != nil {
		t.Fatal(err)
	}
	if p.EffectiveOPP() != target {
		t.Error("effective OPP not updated after completion")
	}
	if p.InTransition() {
		t.Error("transition should be complete")
	}
	dvfs, hot := p.TransitionCounts()
	if dvfs != 1 || hot != 0 {
		t.Errorf("counts dvfs=%d hot=%d", dvfs, hot)
	}
}

func TestNoWorkDuringTransition(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	done, err := p.RequestOPP(OPP{FreqIdx: 0, Config: CoreConfig{Little: 2}}, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(done / 2); err != nil {
		t.Fatal(err)
	}
	if p.Instructions() != 0 {
		t.Errorf("instructions %g accrued mid-hot-plug", p.Instructions())
	}
	if err := p.Advance(done + 1); err != nil {
		t.Fatal(err)
	}
	if p.Instructions() <= 0 {
		t.Error("no instructions after completion")
	}
	if p.BusySeconds() <= 0 {
		t.Error("busy time not recorded")
	}
}

func TestPowerDrawDuringDownTransitionIsOld(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MaxOPP())
	before := p.PowerDraw()
	_, err := p.RequestOPP(OPP{FreqIdx: NumFrequencyLevels - 1, Config: CoreConfig{Little: 4, Big: 3}}, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PowerDraw(); got != before {
		t.Errorf("power during shed = %g, want pre-transition %g", got, before)
	}
}

func TestPowerDrawDuringUpTransitionIsNew(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	target := OPP{FreqIdx: 0, Config: CoreConfig{Little: 2}}
	_, err := p.RequestOPP(target, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Power.PowerAtFullLoad(target)
	if got := p.PowerDraw(); got != want {
		t.Errorf("power during grow = %g, want target %g", got, want)
	}
}

func TestKillDropsLoad(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MaxOPP())
	p.Kill()
	if p.Alive() {
		t.Fatal("alive after Kill")
	}
	if p.PowerDraw() != 0 || p.CurrentDraw(5) != 0 {
		t.Error("dead board still draws power")
	}
	if _, err := p.RequestOPP(MinOPP(), 1, CoreFirst); err == nil {
		t.Error("dead board accepted OPP request")
	}
}

func TestCurrentDrawUVLO(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MaxOPP())
	// Above UVLO: constant power.
	i5 := p.CurrentDraw(5)
	if math.Abs(i5-p.PowerDraw()/5) > 1e-12 {
		t.Error("constant-power draw wrong")
	}
	// Below UVLO the draw must collapse, not explode.
	i001 := p.CurrentDraw(0.01)
	if i001 > i5 {
		t.Errorf("draw at 10 mV (%g A) exceeds draw at 5 V (%g A)", i001, i5)
	}
	if p.CurrentDraw(0) != 0 || p.CurrentDraw(-1) != 0 {
		t.Error("non-positive voltage should draw nothing")
	}
}

func TestQueuedTransitionsSequence(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	d1, err := p.RequestOPP(OPP{FreqIdx: 1, Config: CoreConfig{Little: 1}}, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.RequestOPP(OPP{FreqIdx: 2, Config: CoreConfig{Little: 1}}, 0, CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("second request completes at %g, not after first %g", d2, d1)
	}
	if end, ok := p.TransitionEnd(); !ok || end != d2 {
		t.Errorf("TransitionEnd = %g, want %g", end, d2)
	}
	if next, ok := p.NextCompletion(); !ok || next != d1 {
		t.Errorf("NextCompletion = %g, want %g", next, d1)
	}
}

func TestRequestCommittedOPPNoop(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	done, err := p.RequestOPP(MinOPP(), 3, CoreFirst)
	if err != nil || done != 3 {
		t.Errorf("no-op request: done=%g err=%v", done, err)
	}
	dvfs, hot := p.TransitionCounts()
	if dvfs+hot != 0 {
		t.Error("no-op request queued steps")
	}
}

func TestPlanStepsProperties(t *testing.T) {
	// Property: for random OPP pairs and both orders, the plan reaches
	// the target through single-unit valid steps.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		from := OPP{FreqIdx: rng.Intn(8), Config: CoreConfig{Little: 1 + rng.Intn(4), Big: rng.Intn(5)}}
		to := OPP{FreqIdx: rng.Intn(8), Config: CoreConfig{Little: 1 + rng.Intn(4), Big: rng.Intn(5)}}
		order := TransitionOrder(rng.Intn(2))
		steps, err := planSteps(nil, from, to, order)
		if err != nil {
			t.Fatalf("planSteps(%v, %v, %v): %v", from, to, order, err)
		}
		cur := from
		for i, s := range steps {
			if s.from != cur {
				t.Fatalf("step %d: from %v, want %v", i, s.from, cur)
			}
			df := s.to.FreqIdx - s.from.FreqIdx
			dl := s.to.Config.Little - s.from.Config.Little
			db := s.to.Config.Big - s.from.Config.Big
			units := abs(df) + abs(dl) + abs(db)
			if units != 1 {
				t.Fatalf("step %d changes %d units", i, units)
			}
			if s.isHotplug != (df == 0) {
				t.Fatalf("step %d: hot-plug flag wrong", i)
			}
			if !s.to.Valid() {
				t.Fatalf("step %d leaves envelope: %v", i, s.to)
			}
			cur = s.to
		}
		if cur != to {
			t.Fatalf("plan ends at %v, want %v", cur, to)
		}
	}
}

func TestCoreFirstShedsBigFirst(t *testing.T) {
	steps, err := planSteps(nil, MaxOPP(), MinOPP(), CoreFirst)
	if err != nil {
		t.Fatal(err)
	}
	// The first step must be a big-core removal at full frequency.
	if !steps[0].isHotplug || steps[0].to.Config.Big != 3 || steps[0].from.FreqIdx != NumFrequencyLevels-1 {
		t.Errorf("first core-first step = %+v, want big removal at fmax", steps[0])
	}
	// Frequency steps come last.
	last := steps[len(steps)-1]
	if last.isHotplug {
		t.Error("core-first scale-down should end with frequency steps")
	}
}

func TestFreqFirstDropsFrequencyFirst(t *testing.T) {
	steps, err := planSteps(nil, MaxOPP(), MinOPP(), FreqFirst)
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].isHotplug {
		t.Error("freq-first scale-down should start with a frequency step")
	}
	last := steps[len(steps)-1]
	if !last.isHotplug {
		t.Error("freq-first scale-down should end with hot-plug steps")
	}
}

func TestResetClearsState(t *testing.T) {
	p := NewDefaultPlatform()
	p.Reset(0, MaxOPP())
	if err := p.Advance(5); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	p.Reset(100, MinOPP())
	if !p.Alive() || p.Instructions() != 0 || p.Now() != 100 {
		t.Error("Reset did not restore boot state")
	}
	if p.CommittedOPP() != MinOPP() {
		t.Error("Reset OPP wrong")
	}
}

func TestQuickRequestOPPCompletionMonotone(t *testing.T) {
	f := func(fi, l, b uint8) bool {
		p := NewDefaultPlatform()
		p.Reset(0, MinOPP())
		target := OPP{
			FreqIdx: int(fi % NumFrequencyLevels),
			Config:  CoreConfig{Little: 1 + int(l%4), Big: int(b % 5)},
		}
		done, err := p.RequestOPP(target, 0, CoreFirst)
		if err != nil {
			return false
		}
		if target == MinOPP() {
			return done == 0
		}
		return done > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransitionOrderString(t *testing.T) {
	if CoreFirst.String() != "core-first" || FreqFirst.String() != "frequency-first" {
		t.Error("order strings wrong")
	}
	if TransitionOrder(9).String() == "" {
		t.Error("unknown order should still render")
	}
}

func TestQueueCompactionUnderBacklog(t *testing.T) {
	// Requests that always land while a transition is still pending must
	// not grow the queue's backing array with the total number of
	// requests ever made: the consumed prefix is compacted away on each
	// request. Semantics are pinned too — steps still complete in order.
	p := NewDefaultPlatform()
	p.Reset(0, MinOPP())
	now := 0.0
	for i := 0; i < 1000; i++ {
		target := OPP{FreqIdx: 1, Config: CoreConfig{Little: 1}}
		if p.CommittedOPP() == target {
			target = MinOPP()
		}
		end, err := p.RequestOPP(target, now, CoreFirst)
		if err != nil {
			t.Fatal(err)
		}
		// Advance only halfway to the completion: the queue never fully
		// drains, so the full-drain rewind alone would never fire.
		now += (end - now) / 2
		if err := p.Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	if c := cap(p.queue); c > 64 {
		t.Errorf("queue backing array grew to %d entries under backlog; compaction failed", c)
	}
	// Let everything finish and confirm the committed point is reached.
	if end, ok := p.TransitionEnd(); ok {
		if err := p.Advance(end); err != nil {
			t.Fatal(err)
		}
	}
	if p.EffectiveOPP() != p.CommittedOPP() {
		t.Error("queue did not settle to the committed OPP")
	}
}
