package study

import (
	"context"
	"testing"

	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/testutil"
)

// cellCacheStudy is a small two-axis matrix used by the cell-identity
// tests: 2 storage levels × 2 utilisations × reps repetitions.
func cellCacheStudy(t *testing.T, reps int, storages []Level) Study {
	t.Helper()
	base, ok := scenario.Lookup("stress-clouds")
	if !ok {
		t.Fatal("stress-clouds not registered")
	}
	base.Duration = 8
	return Study{
		Name: "cellcache", Base: base, Reps: reps, Seed: 99,
		Axes: []Axis{
			NewAxis("storage", storages...),
			NewAxis("load", Utilisation(1), Utilisation(0.5)),
		},
		VCHistBins: 16, VCHistLo: 3, VCHistHi: 7,
	}
}

func idealLevel() Level    { return Storage("ideal", sim.IdealCap{Farads: 0.047}) }
func ideal2Level() Level   { return Storage("ideal-2", sim.IdealCap{Farads: 0.1}) }
func hybridLevel() Level { return Storage("hybrid", sim.HybridCap{
	NodeFarads: 0.01, ReservoirFarads: 1, DiodeDropVolts: 0.35,
	DiodeOhms: 0.2, ChargeOhms: 10, LeakOhms: 20000,
}) }

func TestCellIdentityDigests(t *testing.T) {
	st := cellCacheStudy(t, 3, []Level{idealLevel(), ideal2Level()})
	ids, err := st.CellIdentities()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("%d identities, want 4", len(ids))
	}
	seen := map[string]int{}
	for i, ci := range ids {
		if len(ci.Seeds) != 3 {
			t.Fatalf("cell %d carries %d seeds", i, len(ci.Seeds))
		}
		d, err := ci.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("cells %d and %d share digest %s", prev, i, d)
		}
		seen[d] = i
	}
	// The same study built twice digests identically.
	again, err := cellCacheStudy(t, 3, []Level{idealLevel(), ideal2Level()}).CellIdentities()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		a, _ := ids[i].Digest()
		b, _ := again[i].Digest()
		if a != b {
			t.Fatalf("cell %d digest unstable across builds", i)
		}
	}
	// A different seed changes every digest.
	reseeded := cellCacheStudy(t, 3, []Level{idealLevel(), ideal2Level()})
	reseeded.Seed++
	other, err := reseeded.CellIdentities()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		a, _ := ids[i].Digest()
		b, _ := other[i].Digest()
		if a == b {
			t.Fatalf("cell %d digest ignores the study seed", i)
		}
	}
}

// TestCellIdentitySharedAcrossMatrices: two studies whose storage axes
// differ in the second level share cell identities for every cell of
// the first level — the cross-study reuse the serve cache performs.
func TestCellIdentitySharedAcrossMatrices(t *testing.T) {
	a := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	b := cellCacheStudy(t, 2, []Level{idealLevel(), hybridLevel()})
	idsA, err := a.CellIdentities()
	if err != nil {
		t.Fatal(err)
	}
	idsB, err := b.CellIdentities()
	if err != nil {
		t.Fatal(err)
	}
	// Cells 0 and 1 (storage=ideal × both loads) occupy the same ledger
	// positions in both studies, so SeedPerTask seeds agree and the
	// identities must match; cells 2 and 3 differ in storage level.
	for c := 0; c < 2; c++ {
		da, _ := idsA[c].Digest()
		db, _ := idsB[c].Digest()
		if da != db {
			t.Fatalf("shared cell %d digests differ across matrices", c)
		}
	}
	for c := 2; c < 4; c++ {
		da, _ := idsA[c].Digest()
		db, _ := idsB[c].Digest()
		if da == db {
			t.Fatalf("cell %d digest ignores the storage level", c)
		}
	}
}

// TestCellRecordsRoundTrip: records extracted from one study's
// checkpoint and re-based into a second identical study fold into an
// outcome bit-identical to a direct run — the cache-restore contract.
func TestCellRecordsRoundTrip(t *testing.T) {
	st := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	ctx := context.Background()

	direct, err := st.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	full, err := st.RunShard(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the outcome purely from extracted-and-restored cells.
	twin := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	folder, err := twin.NewFolder(2) // chunk = one cell (reps = 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		recs, err := st.ExtractCellRecords(full, c)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := twin.CellCheckpoint(c, recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := folder.Fold(c, cp); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := folder.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Results) != len(direct.Results) {
		t.Fatalf("%d restored results, want %d", len(restored.Results), len(direct.Results))
	}
	for i := range restored.Results {
		testutil.RequireEqual(t, "metrics", restored.Results[i].Metrics, direct.Results[i].Metrics)
	}
	testutil.RequireEqual(t, "summary", restored.Summary, direct.Summary)
	testutil.RequireEqual(t, "marginal count", len(restored.Marginals), len(direct.Marginals))
	for i := range restored.Marginals {
		testutil.RequireEqual(t, "marginal", restored.Marginals[i], direct.Marginals[i])
	}
	testutil.RequireEqual(t, "dwell band", *restored.DwellVC, *direct.DwellVC)
}

func TestCellCheckpointRefusals(t *testing.T) {
	st := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	full, err := st.RunShard(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.ExtractCellRecords(full, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Restoring into the wrong cell trips the seed verification.
	if _, err := st.CellCheckpoint(2, recs); err == nil {
		t.Fatal("mis-keyed cell restore accepted")
	}
	// Wrong record count.
	if _, err := st.CellCheckpoint(1, recs[:1]); err == nil {
		t.Fatal("short cell restore accepted")
	}
	// Tampered seed.
	bad := append([]TaskRecord(nil), recs...)
	bad[0].Seed++
	if _, err := st.CellCheckpoint(1, bad); err == nil {
		t.Fatal("tampered seed accepted")
	}
	// Out-of-range cells.
	if _, err := st.ExtractCellRecords(full, 7); err == nil {
		t.Fatal("out-of-range extract accepted")
	}
	if _, err := st.CellCheckpoint(-1, recs); err == nil {
		t.Fatal("out-of-range restore accepted")
	}

	// Hook-bearing studies cannot promise serialisable cell identity.
	hooked := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	hooked.Vary = func(rep int, seed int64, s *scenario.Spec) {}
	if _, err := hooked.CellIdentities(); err == nil {
		t.Fatal("Vary study produced cell identities")
	}
	grouped := cellCacheStudy(t, 2, []Level{idealLevel(), ideal2Level()})
	grouped.Group = func(rep int, seed int64, s scenario.Spec) string { return "g" }
	if _, err := grouped.CellIdentities(); err == nil {
		t.Fatal("Group study produced cell identities")
	}

	// The round trip only covers whole cells: a partial checkpoint errors.
	partial, err := st.RunChunk(context.Background(), TaskRange{Lo: 2, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExtractCellRecords(partial, 1); err == nil {
		t.Fatal("partial-cell extract accepted")
	}
}
