package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"pnps/internal/study"
)

// Worker is the client side of the coordinator protocol: the loop
// behind `pnstudy -worker <url>`. It fetches the coordinator's study
// recipe, rebuilds the study locally, refuses to run if the local
// fingerprint disagrees with the coordinator's (flag or code skew
// between machines), then leases chunks, executes them with
// Study.RunChunk and submits the checkpoints until the study is done.
type Worker struct {
	// URL is the coordinator's base URL (e.g. http://host:9old77).
	URL string
	// Name identifies the worker in leases and logs (default host:pid).
	Name string
	// BuildStudy rebuilds the study from the coordinator's recipe —
	// typically studycli.Config via json.Unmarshal + Build.
	BuildStudy func(recipe json.RawMessage) (study.Study, error)
	// Workers bounds per-chunk run concurrency (0 keeps the study's
	// setting, which defaults to GOMAXPROCS).
	Workers int
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// Logf, when non-nil, receives progress diagnostics.
	Logf func(format string, args ...any)
	// MaxChunks, when positive, exits cleanly after that many accepted
	// submissions — bounded-budget workers, and the lever integration
	// tests use to make a worker disappear mid-study.
	MaxChunks int
	// RetryBase is the first transport-retry delay (default 250ms); each
	// further attempt doubles it up to RetryCap (default 10s), and the
	// actual wait is jittered uniformly over [d/2, d) so a worker fleet
	// knocked over by one coordinator outage does not stampede back in
	// lockstep.
	RetryBase time.Duration
	// RetryCap bounds a single retry delay (default 10s).
	RetryCap time.Duration
	// RetryAttempts bounds tries per request (default 5): one initial
	// attempt plus RetryAttempts-1 retries of network or 5xx failures.
	RetryAttempts int
	// RetrySeed seeds the jitter stream (0 derives one from the worker
	// name) — deterministic so fault-injection schedules replay exactly.
	RetrySeed int64
	// Token, when non-empty, is presented as "Authorization: Bearer
	// <token>" on every request — the client side of the shared
	// RequireBearer middleware on coordinators exposed to untrusted
	// networks. An authentication refusal is a 4xx and therefore
	// terminal, not retried.
	Token string

	rngOnce sync.Once
	rng     *rand.Rand
	rngMu   sync.Mutex
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// defaultClient bounds every exchange: a coordinator that accepts the
// connection and then hangs must not wedge the worker forever — the
// timeout surfaces as a retryable transport error instead.
var defaultClient = &http.Client{Timeout: 2 * time.Minute}

func (w *Worker) client() *http.Client {
	if w.HTTP != nil {
		return w.HTTP
	}
	return defaultClient
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// Run executes the worker loop until the coordinator reports the study
// done, ctx is cancelled, or a local failure makes progress impossible.
// A nil error means the study finished (or this worker cleanly hit its
// MaxChunks budget); the coordinator holds the outcome either way.
func (w *Worker) Run(ctx context.Context) error {
	if w.BuildStudy == nil {
		return fmt.Errorf("coord: worker needs a BuildStudy hook")
	}
	var info StudyInfo
	if _, err := w.doJSON(ctx, http.MethodGet, "/v1/study", nil, &info); err != nil {
		return fmt.Errorf("coord: fetching study: %w", err)
	}
	st, err := w.BuildStudy(info.Recipe)
	if err != nil {
		return fmt.Errorf("coord: building study from recipe: %w", err)
	}
	if w.Workers > 0 {
		st.Workers = w.Workers
	}
	st.OnProgress = nil
	fp, err := st.Fingerprint()
	if err != nil {
		return fmt.Errorf("coord: local study invalid: %w", err)
	}
	if !fp.Equal(info.Fingerprint) {
		return fmt.Errorf("coord: local study fingerprint disagrees with coordinator %s — flag or code skew between machines", w.URL)
	}
	w.logf("worker %s: joined study %s (%d tasks in %d chunks)",
		w.name(), info.Name, info.TotalTasks, info.NumChunks)

	accepted := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease Lease
		if _, err := w.doJSON(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: w.name()}, &lease); err != nil {
			return fmt.Errorf("coord: leasing: %w", err)
		}
		switch {
		case lease.Done && lease.Failed != "":
			return fmt.Errorf("coord: study failed: %s", lease.Failed)
		case lease.Done:
			w.logf("worker %s: study complete", w.name())
			return nil
		case !lease.Granted:
			wait := time.Duration(lease.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}

		w.logf("worker %s: running chunk %d %v (attempt %d)", w.name(), lease.Chunk, lease.Range, lease.Attempt)
		cp, err := st.RunChunk(ctx, lease.Range)
		if err != nil {
			// A failing simulation is not retryable here — drop the lease
			// (it expires server-side) and surface the error locally.
			return fmt.Errorf("coord: chunk %d: %w", lease.Chunk, err)
		}
		ok, err := w.submitChunk(ctx, lease, cp)
		if err != nil {
			return err
		}
		if ok {
			accepted++
			if w.MaxChunks > 0 && accepted >= w.MaxChunks {
				w.logf("worker %s: chunk budget %d reached, exiting", w.name(), w.MaxChunks)
				return nil
			}
		}
	}
}

// submitChunk delivers one checkpoint. Lease races (409) are benign —
// someone else completed the chunk — and return (false, nil); rejected
// checkpoints (422) are a real fault and error out.
func (w *Worker) submitChunk(ctx context.Context, lease Lease, cp *study.Checkpoint) (bool, error) {
	var buf bytes.Buffer
	if err := cp.WriteJSON(&buf); err != nil {
		return false, fmt.Errorf("coord: serialising chunk %d: %w", lease.Chunk, err)
	}
	sub := Submission{
		Worker: w.name(), Chunk: lease.Chunk, LeaseID: lease.LeaseID,
		Checkpoint: json.RawMessage(buf.Bytes()),
	}
	var res SubmitResult
	code, err := w.doJSON(ctx, http.MethodPost, "/v1/chunks", sub, &res)
	switch {
	case err != nil:
		return false, fmt.Errorf("coord: submitting chunk %d: %w", lease.Chunk, err)
	case code == http.StatusConflict:
		w.logf("worker %s: chunk %d submission superseded (%s) — moving on", w.name(), lease.Chunk, res.Error)
		return false, nil
	case code != http.StatusOK || !res.Accepted:
		return false, fmt.Errorf("coord: chunk %d rejected (HTTP %d): %s", lease.Chunk, code, res.Error)
	}
	if res.Duplicate {
		w.logf("worker %s: chunk %d was already accepted (lost acknowledgement replayed)", w.name(), lease.Chunk)
	} else {
		w.logf("worker %s: chunk %d accepted", w.name(), lease.Chunk)
	}
	return true, nil
}

// retryWait returns the delay before retry n (0-based): capped
// exponential backoff d = min(RetryCap, RetryBase·2ⁿ), jittered
// uniformly over [d/2, d) from the worker's seeded stream.
func (w *Worker) retryWait(n int) time.Duration {
	base, limit := w.RetryBase, w.RetryCap
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if limit <= 0 {
		limit = 10 * time.Second
	}
	d := limit
	if n < 30 { // beyond 2³⁰·base the shift could overflow; it is past any sane cap anyway
		if scaled := base << n; scaled > 0 && scaled < limit {
			d = scaled
		}
	}
	w.rngOnce.Do(func() {
		seed := w.RetrySeed
		if seed == 0 {
			h := fnv.New64a()
			h.Write([]byte(w.name()))
			seed = int64(h.Sum64())
		}
		w.rng = rand.New(rand.NewSource(seed))
	})
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)))
}

// doJSON performs one JSON request with capped, jittered exponential
// backoff on retryable failures: transient network errors, 5xx
// responses (the coordinator down or restarting behind the same
// address) and garbled 2xx bodies (a truncated response is a transport
// fault, not an answer). Anything else is terminal and returned to the
// caller — the coordinator's answers are deterministic, so a 4xx will
// not improve on retry (409 lease races are benign, 422 means the data
// was refused). Every wait honors ctx cancellation.
func (w *Worker) doJSON(ctx context.Context, method, path string, in, out any) (int, error) {
	attempts := w.RetryAttempts
	if attempts <= 0 {
		attempts = 5
	}
	var reqBody []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		reqBody = b
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(w.retryWait(attempt - 1)):
			}
		}
		var body io.Reader
		if reqBody != nil {
			body = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequestWithContext(ctx, method, w.URL+path, body)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if w.Token != "" {
			req.Header.Set("Authorization", "Bearer "+w.Token)
		}
		resp, err := w.client().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			lastErr = err
			w.logf("worker %s: %s %s failed (attempt %d/%d): %v", w.name(), method, path, attempt+1, attempts, err)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("reading response: %w", err)
			w.logf("worker %s: %s %s response lost (attempt %d/%d): %v", w.name(), method, path, attempt+1, attempts, err)
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			lastErr = fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
			w.logf("worker %s: %s %s → %v (attempt %d/%d) — retrying", w.name(), method, path, lastErr, attempt+1, attempts)
			continue
		}
		if out != nil && len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				if resp.StatusCode >= http.StatusBadRequest {
					// Non-JSON 4xx bodies (http.Error) surface as-is — and
					// like every 4xx they are terminal.
					return resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
				}
				lastErr = fmt.Errorf("HTTP %d with undecodable body: %w", resp.StatusCode, err)
				w.logf("worker %s: %s %s truncated/garbled response (attempt %d/%d) — retrying", w.name(), method, path, attempt+1, attempts)
				continue
			}
		}
		return resp.StatusCode, nil
	}
	return 0, fmt.Errorf("after %d attempts: %w", attempts, lastErr)
}
