package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pnps/internal/studycli"
)

// benchRecipe is deliberately small: the miss path's cost is dominated
// by simulation, and the benchmark's point is the miss/hit ratio — a
// hit must cost HTTP + store lookup, not engine time.
func benchRecipe(seed int64) studycli.Config {
	return studycli.Config{
		Scenario: "stress-clouds", Duration: 2,
		Storage: "ideal:0.047", Reps: 1, Seed: seed,
	}
}

func benchSubmitWait(b *testing.B, e *env, recipe studycli.Config) JobStatus {
	b.Helper()
	resp, data := e.do(b, http.MethodPost, "/v1/jobs", "", recipe)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		b.Fatalf("submit: HTTP %d (%s)", resp.StatusCode, data)
	}
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := e.s.WaitJob(ctx, js.ID)
	if err != nil {
		b.Fatal(err)
	}
	if final.State != JobDone {
		b.Fatalf("job %s: %s (%s)", js.ID, final.State, final.Error)
	}
	e.outcome(b, "", js.ID, FormatJSON)
	return final
}

// BenchmarkServeCache measures the full service path — submit over
// HTTP, wait, fetch the JSON outcome — cold (every submission a new
// study, simulated) against hot (the same study resubmitted, answered
// from the content-addressed store). The gap is the cache's value; the
// hit number is the service's floor latency.
func BenchmarkServeCache(b *testing.B) {
	b.Run("miss", func(b *testing.B) {
		e := newEnv(b, Config{JobWorkers: 1, MaxJobs: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := benchSubmitWait(b, e, benchRecipe(int64(i+1))); s.SimulatedRuns == 0 {
				b.Fatal("miss iteration did not simulate")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		e := newEnv(b, Config{JobWorkers: 1, MaxJobs: 8})
		recipe := benchRecipe(1)
		benchSubmitWait(b, e, recipe) // populate the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := benchSubmitWait(b, e, recipe); !s.CacheHit {
				b.Fatal("hit iteration missed the cache")
			}
		}
	})
}
