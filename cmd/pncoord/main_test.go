package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"pnps/internal/study"
	"pnps/internal/studycli"
)

func TestParseOptionsDefaults(t *testing.T) {
	opt, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt.addr != ":8080" {
		t.Errorf("addr = %q", opt.addr)
	}
	wantRecipe := studycli.Config{
		Scenario: "stress-clouds", Reps: 4, Seed: 2017, Bins: 250, HistHi: 10,
	}
	if opt.recipe != wantRecipe {
		t.Errorf("default recipe = %+v, want %+v", opt.recipe, wantRecipe)
	}
	cfg := opt.cfg
	if cfg.ChunkSize != 64 || cfg.LeaseTTL != 2*time.Minute || cfg.MaxAttempts != 5 || cfg.Backoff != time.Second {
		t.Errorf("lease defaults: chunk %d, ttl %v, attempts %d, backoff %v",
			cfg.ChunkSize, cfg.LeaseTTL, cfg.MaxAttempts, cfg.Backoff)
	}
	if cfg.JournalPath != "" || opt.tokens != nil || cfg.Logf != nil {
		t.Errorf("journal %q / tokens %v / Logf set = %v by default", cfg.JournalPath, opt.tokens, cfg.Logf != nil)
	}
	// The published recipe is the parsed one, byte-exact.
	var published studycli.Config
	if err := json.Unmarshal(cfg.Recipe, &published); err != nil || published != opt.recipe {
		t.Errorf("published recipe %+v (%v), want %+v", published, err, opt.recipe)
	}
}

// TestParseOptionsStudyIdentity pins that the matrix flags build the
// study the recipe describes — axes, seed mode and histogram geometry.
func TestParseOptionsStudyIdentity(t *testing.T) {
	opt, err := parseOptions([]string{
		"-scenario", "stress-clouds", "-duration", "12",
		"-storage", "ideal:0.047,supercap:0.047", "-util", "1,0.6",
		"-reps", "8", "-seed", "23", "-paired",
		"-bins", "32", "-histlo", "4", "-histhi", "6",
		"-token", "secret-a, secret-b",
	})
	if err != nil {
		t.Fatal(err)
	}
	st := opt.cfg.Study
	if st.Reps != 8 || st.Seed != 23 || st.SeedMode != study.SeedPerRep {
		t.Errorf("study: reps %d, seed %d, mode %v", st.Reps, st.Seed, st.SeedMode)
	}
	if len(st.Axes) != 2 || st.Axes[0].Name != "storage" || st.Axes[1].Name != "load" {
		t.Fatalf("axes = %v", st.Axes)
	}
	if st.VCHistBins != 32 || st.VCHistLo != 4 || st.VCHistHi != 6 {
		t.Errorf("hist geometry: %d bins [%g,%g)", st.VCHistBins, st.VCHistLo, st.VCHistHi)
	}
	if !reflect.DeepEqual(opt.tokens, []string{"secret-a", "secret-b"}) {
		t.Errorf("tokens = %v", opt.tokens)
	}
	// The same recipe rebuilt (the worker's path) carries the same
	// fingerprint — the skew check the protocol rests on.
	rebuilt, err := opt.recipe.Build()
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := rebuilt.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !fpA.Equal(fpB) {
		t.Error("recipe rebuild changes the study fingerprint")
	}
}

func TestParseOptionsErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-fsync", "sometimes"}, "fsync"},
		{[]string{"-scenario", "no-such-scenario"}, "unknown scenario"},
		{[]string{"-storage", "ideal:-1"}, "bad capacitance"},
		{[]string{"-util", "1.5"}, "bad utilisation"},
	} {
		_, err := parseOptions(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseOptions(%v) error = %v, want %q", tc.args, err, tc.want)
		}
	}
}
