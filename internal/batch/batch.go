// Package batch is a worker-pool execution engine for embarrassingly
// parallel simulation workloads: parameter sweeps, figure regeneration,
// Monte-Carlo repetitions. It guarantees deterministic output — results
// are collected in job order and error aggregation is index-ordered — so
// a batch produces bit-identical results regardless of worker count.
//
// Jobs must be independent: they may not share mutable state, and any
// randomness must come from a per-job seed (see Seed) rather than a
// shared generator.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Func is one unit of work. The context is the batch context; jobs that
// run long should poll ctx.Err() and abandon work once cancelled.
type Func[T any] func(ctx context.Context) (T, error)

// Options tunes a batch run.
type Options struct {
	// Workers is the number of concurrent goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is called after every executed job with
	// the number of completed jobs and the total; jobs skipped because
	// the context was cancelled are not counted, so a cancelled batch
	// never reports completed == total. Calls are serialised and the
	// completed count is monotone, but completions do not follow job
	// order.
	OnProgress func(completed, total int)
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes jobs on a worker pool and returns their results in job
// order: out[i] is the result of jobs[i], whatever the interleaving.
//
// Every job is attempted (no fail-fast) unless the context is cancelled,
// in which case unstarted jobs fail with the context error. All failures
// are aggregated with errors.Join in job-index order, so the returned
// error is deterministic too. On error the result slice is still
// returned; slots whose job failed hold the zero value.
func Run[T any](ctx context.Context, jobs []Func[T], opts Options) ([]T, error) {
	n := len(jobs)
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, n)
	workers := opts.workers(n)

	var next atomic.Int64
	var progressMu sync.Mutex
	completed := 0
	report := func() {
		if opts.OnProgress == nil {
			return
		}
		// Increment under the same mutex that serialises the callback so
		// counts are monotone and the completed == total call is last.
		progressMu.Lock()
		completed++
		opts.OnProgress(completed, n)
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Skipped, not completed: no progress report — a
					// cancelled batch must not claim to reach total.
					errs[i] = fmt.Errorf("batch: job %d not started: %w", i, err)
					continue
				}
				out[i], errs[i] = runJob(ctx, jobs[i], i)
				report()
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// runJob executes one job, converting a panic into an error so a single
// bad parameter combination cannot take down a whole sweep.
func runJob[T any](ctx context.Context, job Func[T], i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch: job %d panicked: %v", i, r)
		}
	}()
	out, err = job(ctx)
	if err != nil {
		err = fmt.Errorf("batch: job %d: %w", i, err)
	}
	return out, err
}

// Map runs fn over items on a worker pool, returning out[i] = fn(items[i])
// in input order. It is Run with the job list built for you.
func Map[In, Out any](ctx context.Context, items []In, fn func(ctx context.Context, item In) (Out, error), opts Options) ([]Out, error) {
	jobs := make([]Func[Out], len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (Out, error) { return fn(ctx, item) }
	}
	return Run(ctx, jobs, opts)
}

// Seed derives a deterministic per-job seed from a base seed and a job
// index via a splitmix64 step, so parallel jobs get decorrelated streams
// while the whole batch remains reproducible from the base seed alone.
func Seed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
