// Command pnsim regenerates the paper's evaluation artefacts and runs
// named scenarios from the declarative registry. Each experiment id
// corresponds to a table or figure of "Power Neutral Performance Scaling
// for Energy Harvesting MP-SoCs" (DATE 2017); see DESIGN.md for the
// index.
//
// Usage:
//
//	pnsim [-seed N] [-csv dir] [-workers N] <experiment>...
//	pnsim -all
//	pnsim -scenario name [-mc N]
//	pnsim -list
//
// With -csv, every series the experiment records is written as
// <dir>/<experiment>.csv for external plotting. Experiments are
// independent and execute concurrently on -workers goroutines (default
// GOMAXPROCS); reports are printed in the order the ids were given.
//
// -scenario runs one registered scenario (see -list for names) and
// prints its outcome; with -mc N it becomes a Monte-Carlo campaign of N
// seed-varied repetitions fanned over -workers goroutines, reporting
// the deterministic aggregate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"pnps/internal/experiments"
	"pnps/internal/scenario"
	"pnps/internal/stats"
	"pnps/internal/trace"
)

func main() {
	var (
		seed    = flag.Int64("seed", experiments.DefaultSeed, "random seed for stochastic scenarios")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV series into")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment/campaign executions")
		all     = flag.Bool("all", false, "run every registered experiment")
		list    = flag.Bool("list", false, "list experiment ids and scenario names, then exit")
		scn     = flag.String("scenario", "", "run a registered scenario instead of experiments")
		mc      = flag.Int("mc", 1, "with -scenario: Monte-Carlo repetitions (campaign mode when > 1)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("scenarios:")
		for _, s := range scenario.List() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Description)
		}
		return
	}

	if *scn != "" {
		if err := runScenario(*scn, *seed, *mc, *workers, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "pnsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "pnsim: no experiments given; try -list, -all or -scenario")
		os.Exit(2)
	}
	reps, runErr := experiments.RunAll(context.Background(), experiments.RunAllOptions{
		IDs: ids, Seed: *seed, Workers: *workers,
	})
	failed := runErr != nil
	for i, rep := range reps {
		if rep == nil {
			continue // failure; reported via runErr below
		}
		fmt.Println(rep.String())
		if *csvDir != "" && len(rep.Series) > 0 {
			if err := writeCSV(*csvDir, ids[i], rep.Series...); err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: csv %s: %v\n", ids[i], err)
				failed = true
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "pnsim: %v\n", runErr)
	}
	if failed {
		os.Exit(1)
	}
}

// runScenario executes one registered scenario, or a Monte-Carlo
// campaign of it when mc > 1.
func runScenario(name string, seed int64, mc, workers int, csvDir string) error {
	spec, ok := scenario.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (known: %v)", name, scenario.Names())
	}
	if mc <= 1 {
		res, err := spec.Run(seed)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %s (seed %d, %.0f s)\n", name, seed, spec.Duration)
		fmt.Printf("  survived:            %v\n", !res.BrownedOut)
		fmt.Printf("  lifetime:            %.1f s\n", res.LifetimeSeconds)
		fmt.Printf("  brownouts/restarts:  %d/%d\n", res.Brownouts, res.Restarts)
		fmt.Printf("  instructions:        %.2f G\n", res.Instructions/1e9)
		fmt.Printf("  threshold interrupts:%d\n", res.Interrupts)
		fmt.Printf("  final supply:        %.3f V\n", res.FinalVC)
		fmt.Printf("  within 5%% of target: %.1f%%\n", res.StabilityWithin(0.05)*100)
		fmt.Printf("  stored energy:       %.3f J -> %.3f J\n",
			res.StorageEnergyStartJ, res.StorageEnergyEndJ)
		if csvDir != "" && res.VC != nil {
			return writeCSV(csvDir, "scenario-"+name, res.VC, res.PowerConsumed, res.FreqGHz)
		}
		return nil
	}

	out, err := scenario.Campaign{
		Base: spec, Runs: mc, Seed: seed, Workers: workers,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rpnsim: %d/%d campaign runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}.Run(context.Background())
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := writeCampaignCSV(csvDir, "campaign-"+name, out); err != nil {
			return err
		}
	}
	s := out.Summary
	fmt.Printf("campaign %s: %d runs (base seed %d)\n", name, s.Runs, seed)
	fmt.Printf("  survival rate:      %.1f%%\n", s.SurvivalRate*100)
	fmt.Printf("  total brownouts:    %d\n", s.TotalBrownouts)
	p := func(label, unit string, sm stats.Summary, scale float64) {
		fmt.Printf("  %-19s mean %.3f %s (min %.3f, max %.3f, σ %.3f)\n",
			label+":", sm.Mean*scale, unit, sm.Min*scale, sm.Max*scale, sm.StdDev*scale)
	}
	p("instructions", "G", s.Instructions, 1e-9)
	p("lifetime", "s", s.LifetimeSeconds, 1)
	p("final supply", "V", s.FinalVC, 1)
	p("storage Δenergy", "J", s.StorageEnergyDeltaJ, 1)
	return nil
}

// writeCampaignCSV exports the per-run scalar outcomes of a campaign.
func writeCampaignCSV(dir, id string, out *scenario.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "run,seed,survived,brownouts,lifetime_s,instructions,final_vc_v,storage_denergy_j"); err != nil {
		return err
	}
	for _, r := range out.Results {
		res := r.Result
		if _, err := fmt.Fprintf(f, "%d,%d,%v,%d,%g,%g,%g,%g\n",
			r.Index, r.Seed, !res.BrownedOut, res.Brownouts, res.LifetimeSeconds,
			res.Instructions, res.FinalVC, res.StorageEnergyEndJ-res.StorageEnergyStartJ); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

func writeCSV(dir, id string, series ...*trace.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
