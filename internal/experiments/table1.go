package experiments

import (
	"fmt"

	"pnps/internal/soc"
)

// Table1 regenerates the paper's Table I: the time and charge expended
// transitioning from the highest to the lowest OPP under the two possible
// orderings — (a) frequency then cores, (b) cores then frequency — and the
// buffer capacitance each would require. The paper selects (b) and sizes
// its 47 mF capacitor from it.
func Table1() (*Report, error) {
	pm := soc.DefaultPowerModel()
	lm := soc.DefaultLatencyModel()
	const (
		// The transition is measured at the MPP-tracking operating point;
		// the capacitor may droop from there to the 4.1 V brownout floor.
		supplyVolts = 5.3
		droopVolts  = 5.64 - soc.MinOperatingVolts
	)

	repA, err := soc.AnalyzeTransition(pm, lm, soc.MaxOPP(), soc.MinOPP(), soc.FreqFirst, supplyVolts, droopVolts)
	if err != nil {
		return nil, err
	}
	repB, err := soc.AnalyzeTransition(pm, lm, soc.MaxOPP(), soc.MinOPP(), soc.CoreFirst, supplyVolts, droopVolts)
	if err != nil {
		return nil, err
	}

	tab := Table{
		Title:  "Highest -> lowest OPP transition cost",
		Header: []string{"Scenario", "Transition time δ (ms)", "Q = ∫I dt (C)", "Required C (mF)"},
		Rows: [][]string{
			{"(a) Frequency, Core", fmt.Sprintf("%.2f", repA.TotalSeconds*1e3),
				fmt.Sprintf("%.4f", repA.Coulombs), fmt.Sprintf("%.1f", repA.RequiredCapacitance*1e3)},
			{"(b) Core, Frequency", fmt.Sprintf("%.2f", repB.TotalSeconds*1e3),
				fmt.Sprintf("%.4f", repB.Coulombs), fmt.Sprintf("%.1f", repB.RequiredCapacitance*1e3)},
		},
	}

	r := &Report{
		ID:    "table1",
		Title: "Transition cost and required buffer capacitance (paper Table I)",
		Description: "Scenario (b) sheds the power-hungry big cores while the clock is still fast, " +
			"so it finishes far sooner and draws far less charge — the 47 mF capacitor covers it with margin.",
		Tables: []Table{tab},
	}
	r.AddPaperMetric("(a) transition time", repA.TotalSeconds*1e3, 345.42, "ms", "shape target")
	r.AddPaperMetric("(a) charge", repA.Coulombs, 0.1299, "C", "")
	r.AddPaperMetric("(a) required capacitance", repA.RequiredCapacitance*1e3, 84.2, "mF", "")
	r.AddPaperMetric("(b) transition time", repB.TotalSeconds*1e3, 63.21, "ms", "")
	r.AddPaperMetric("(b) charge", repB.Coulombs, 0.0461, "C", "")
	r.AddPaperMetric("(b) required capacitance", repB.RequiredCapacitance*1e3, 15.4, "mF",
		"paper divides (b) by a larger allowed droop; see EXPERIMENTS.md")
	r.AddMetric("(a)/(b) charge ratio", repA.Coulombs/repB.Coulombs, "x", "paper: 2.8x")
	r.AddMetric("(b) fits 47 mF buffer", b2f(repB.RequiredCapacitance < 47e-3), "bool", "")
	return r, nil
}
