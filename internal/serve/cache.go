// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON server that accepts single-run specs and full study
// recipes (the studycli.Config wire format shared with pncoord and
// `pnstudy -worker`), executes them through the study engine with
// bounded admission, and answers repeated or overlapping requests from
// a content-addressed result cache instead of re-simulating.
//
// Everything rests on one property the rest of the repository already
// guarantees: a run is a deterministic function of (spec, seed), and a
// study outcome a deterministic function of its fingerprint. That
// makes results content-addressable — the cache key is the canonical
// digest of the study identity (fingerprint: base-spec digest, axes,
// seed, seed mode, reps, histogram geometry), and nothing execution-
// dependent (workers, engine, batch width) ever reaches the key. A
// cache hit therefore returns bytes that are bit-identical to what a
// cold run would have produced, with zero simulation work; and because
// cells are content-addressed individually (study.CellIdentity), a new
// study that shares matrix cells with an earlier one re-simulates only
// the cells the cache has never seen.
package serve

import (
	"container/list"
	"sync"
)

// CacheStats is the observable state of the result cache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type cacheEntry struct {
	key string
	val []byte
}

// Cache is a bounded, concurrency-safe content-addressed byte store:
// least-recently-used entries are evicted once the byte budget
// (values plus keys) is exceeded. Values are stored and returned by
// reference — callers must treat them as immutable, which is natural
// here: every value is a canonical rendering of content-addressed data,
// so mutating one would break the "bit-identical to a cold run"
// contract anyway.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	ll        *list.List // front = most recently used
	index     map[string]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// NewCache returns a cache bounded to roughly budget bytes of keys and
// values (budget <= 0 selects 64 MiB).
func NewCache(budget int64) *Cache {
	if budget <= 0 {
		budget = 64 << 20
	}
	return &Cache{budget: budget, ll: list.New(), index: map[string]*list.Element{}}
}

func entryCost(e *cacheEntry) int64 { return int64(len(e.key) + len(e.val)) }

// Get returns the value stored under key and refreshes its recency.
// The returned slice is shared — read-only by contract.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key (replacing any previous value) and evicts
// least-recently-used entries until the store fits its budget. A value
// that alone exceeds the whole budget is not cached — admitting it
// would evict everything else for one entry that can never be retained
// alongside anything.
func (c *Cache) Put(key string, val []byte) {
	e := &cacheEntry{key: key, val: val}
	if entryCost(e) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += entryCost(e) - entryCost(old)
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(e)
		c.bytes += entryCost(e)
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.index, victim.key)
		c.bytes -= entryCost(victim)
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), Bytes: c.bytes, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
