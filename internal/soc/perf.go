package soc

import (
	"fmt"
	"math"
)

// PerfModel computes workload throughput at an OPP. Throughput combines a
// per-cluster effective IPC (instructions per cycle, folded with memory
// stalls so the numbers are lower than architectural peak) with an
// Amdahl-style parallel-efficiency correction:
//
//	IPS(o) = (ipcL·nL + ipcB·nB) · f · E(nL+nB)
//
// where E(n) is the fraction of ideal n-way speedup retained, calibrated
// so the FPS-vs-power surface matches the paper's Fig. 7 (smallpt ray
// tracing at 5 samples/pixel).
type PerfModel struct {
	// IPCLittle and IPCBig are effective instructions/cycle per core.
	IPCLittle, IPCBig float64
	// ParallelFraction is the Amdahl parallel fraction of the workload
	// (ray tracing is embarrassingly parallel, ≈0.97).
	ParallelFraction float64
	// InstructionsPerFrame converts instruction throughput into rendered
	// frames (smallpt at the paper's quality setting).
	InstructionsPerFrame float64
}

// DefaultPerfModel returns coefficients calibrated to the paper's Fig. 7
// and Table II: ≈0.25 FPS at the maximal OPP, ≈0.065 FPS with 4×A7, and
// instruction totals in the few-thousand-billions per hour range.
func DefaultPerfModel() *PerfModel {
	return &PerfModel{
		IPCLittle:            0.35,
		IPCBig:               0.60,
		ParallelFraction:     0.97,
		InstructionsPerFrame: 2.2e10,
	}
}

// Validate checks the plausibility of the coefficients.
func (p *PerfModel) Validate() error {
	if p.IPCLittle <= 0 || p.IPCBig <= 0 {
		return fmt.Errorf("soc: IPC coefficients must be positive")
	}
	if p.ParallelFraction < 0 || p.ParallelFraction > 1 {
		return fmt.Errorf("soc: parallel fraction %g outside [0,1]", p.ParallelFraction)
	}
	if p.InstructionsPerFrame <= 0 {
		return fmt.Errorf("soc: InstructionsPerFrame must be positive")
	}
	return nil
}

// amdahlEfficiency returns the fraction of ideal n-way speedup retained at
// n cores for the configured parallel fraction.
func (p *PerfModel) amdahlEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	speedup := 1 / ((1 - p.ParallelFraction) + p.ParallelFraction/float64(n))
	return speedup / float64(n)
}

// InstructionsPerSecond returns sustained instruction throughput at OPP o
// under a CPU-saturating workload.
func (p *PerfModel) InstructionsPerSecond(o OPP) float64 {
	o = o.Clamp()
	f := o.Frequency()
	raw := (p.IPCLittle*float64(o.Config.Little) + p.IPCBig*float64(o.Config.Big)) * f
	return raw * p.amdahlEfficiency(o.Config.TotalCores())
}

// FramesPerSecond returns ray-tracing throughput at OPP o — the metric of
// the paper's Fig. 7.
func (p *PerfModel) FramesPerSecond(o OPP) float64 {
	return p.InstructionsPerSecond(o) / p.InstructionsPerFrame
}

// RendersPerMinute returns FramesPerSecond scaled to the Table II metric.
func (p *PerfModel) RendersPerMinute(o OPP) float64 {
	return p.FramesPerSecond(o) * 60
}

// EnergyPerInstruction returns joules per instruction at OPP o under full
// load — a derived efficiency metric used by the ablation benches.
func (p *PerfModel) EnergyPerInstruction(o OPP, pm *PowerModel) float64 {
	ips := p.InstructionsPerSecond(o)
	if ips == 0 {
		return math.Inf(1)
	}
	return pm.PowerAtFullLoad(o) / ips
}
