package soc

import (
	"errors"
	"fmt"
)

// Operating voltage envelope of the ODROID-XU4 board (paper Section IV).
const (
	// MinOperatingVolts is the brownout threshold: below this the board
	// resets (4.1 V).
	MinOperatingVolts = 4.1
	// MaxOperatingVolts is the absolute maximum supply voltage (5.7 V).
	MaxOperatingVolts = 5.7
)

// TransitionOrder selects how a multi-dimensional OPP change is sequenced
// (paper Table I).
type TransitionOrder int

const (
	// CoreFirst performs hot-plug steps before frequency steps when
	// scaling down (and frequency before cores when scaling up). This is
	// the paper's scenario (b), the one it selects: it sheds the
	// expensive cores at a still-high frequency where hot-plugging is
	// fast.
	CoreFirst TransitionOrder = iota
	// FreqFirst performs frequency steps before hot-plug steps when
	// scaling down — the paper's slower scenario (a).
	FreqFirst
)

// String implements fmt.Stringer.
func (o TransitionOrder) String() string {
	switch o {
	case CoreFirst:
		return "core-first"
	case FreqFirst:
		return "frequency-first"
	default:
		return fmt.Sprintf("TransitionOrder(%d)", int(o))
	}
}

// atomicStep is a single DVFS or hot-plug step being executed.
type atomicStep struct {
	from, to   OPP
	start, end float64
	isHotplug  bool
}

// Platform is the simulated ODROID-XU4: it tracks the current OPP, pending
// transitions, liveness, and accumulated work. All times are simulation
// seconds. The zero value is not usable; construct with NewPlatform or
// NewDefaultPlatform.
type Platform struct {
	Power   *PowerModel
	Perf    *PerfModel
	Latency *LatencyModel

	cur       OPP // OPP whose power applies right now (head of queue aside)
	committed OPP // OPP at the end of the pending queue
	// queue[qhead:] is the pending-step queue. Completed steps advance
	// qhead instead of re-slicing the front off, so the backing array is
	// reused once drained: the discrete-event loop requests tens of OPP
	// changes per simulated second and must not allocate for each.
	queue       []atomicStep
	qhead       int
	planBuf     []stepPlan // reusable planSteps scratch
	utilisation float64
	alive       bool
	now         float64

	instructions float64
	frames       float64
	busySeconds  float64 // time spent inside transitions
	dvfsSteps    int
	hotplugSteps int
	lastAccrue   float64
}

// NewPlatform builds a platform from explicit models, validating them.
func NewPlatform(pm *PowerModel, pf *PerfModel, lm *LatencyModel) (*Platform, error) {
	if pm == nil || pf == nil || lm == nil {
		return nil, errors.New("soc: NewPlatform requires all three models")
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	if err := lm.Validate(); err != nil {
		return nil, err
	}
	return &Platform{
		Power:       pm,
		Perf:        pf,
		Latency:     lm,
		cur:         MinOPP(),
		committed:   MinOPP(),
		queue:       make([]atomicStep, 0, 2*maxTransitionSteps),
		planBuf:     make([]stepPlan, 0, maxTransitionSteps),
		utilisation: 1,
		alive:       true,
	}, nil
}

// NewDefaultPlatform builds a platform with the calibrated Exynos5422
// models.
func NewDefaultPlatform() *Platform {
	p, err := NewPlatform(DefaultPowerModel(), DefaultPerfModel(), DefaultLatencyModel())
	if err != nil {
		panic("soc: default models invalid: " + err.Error())
	}
	return p
}

// Reset restores boot state at time t: the boot OPP, alive, counters
// zeroed.
func (p *Platform) Reset(t float64, boot OPP) {
	p.cur = boot.Clamp()
	p.committed = p.cur
	p.queue = p.queue[:0]
	p.qhead = 0
	p.alive = true
	p.now = t
	p.lastAccrue = t
	p.instructions = 0
	p.frames = 0
	p.busySeconds = 0
	p.dvfsSteps = 0
	p.hotplugSteps = 0
	p.utilisation = 1
}

// Advance moves simulation time forward to now, completing any transitions
// that finish on the way and accruing workload progress. Calling with a
// time before the current time is an error.
func (p *Platform) Advance(now float64) error {
	if now < p.now {
		return fmt.Errorf("soc: Advance to t=%g before current t=%g", now, p.now)
	}
	for p.qhead < len(p.queue) && p.queue[p.qhead].end <= now {
		st := p.queue[p.qhead]
		p.qhead++
		// No workload progress during the step itself.
		p.busySeconds += st.end - st.start
		p.cur = st.to
		p.lastAccrue = st.end
	}
	if p.qhead == len(p.queue) {
		// Drained: rewind so the backing array is reused.
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	if p.alive && (p.qhead == len(p.queue) || now < p.queue[p.qhead].start) {
		dt := now - p.lastAccrue
		if dt > 0 {
			ips := p.Perf.InstructionsPerSecond(p.cur) * p.utilisation
			p.instructions += ips * dt
			p.frames += ips * dt / p.Perf.InstructionsPerFrame
		}
	}
	p.lastAccrue = now
	p.now = now
	return nil
}

// Now returns the platform's current simulation time.
func (p *Platform) Now() float64 { return p.now }

// SetUtilisation sets workload CPU utilisation (clamped to [0,1]).
func (p *Platform) SetUtilisation(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	p.utilisation = u
}

// Utilisation returns the configured workload utilisation.
func (p *Platform) Utilisation() float64 { return p.utilisation }

// Alive reports whether the board is powered and running.
func (p *Platform) Alive() bool { return p.alive }

// Kill powers the board off (brownout). Pending transitions are dropped.
func (p *Platform) Kill() {
	p.alive = false
	p.queue = p.queue[:0]
	p.qhead = 0
}

// pending returns the live pending-step window of the queue.
func (p *Platform) pending() []atomicStep { return p.queue[p.qhead:] }

// EffectiveOPP returns the OPP whose performance applies right now.
func (p *Platform) EffectiveOPP() OPP { return p.cur }

// CommittedOPP returns the OPP the platform will reach once all pending
// transitions complete.
func (p *Platform) CommittedOPP() OPP { return p.committed }

// InTransition reports whether an OPP change is in flight at time p.Now().
func (p *Platform) InTransition() bool {
	q := p.pending()
	return len(q) > 0 && p.now >= q[0].start
}

// TransitionEnd returns the completion time of the last queued step and
// ok=false when the queue is empty.
func (p *Platform) TransitionEnd() (float64, bool) {
	q := p.pending()
	if len(q) == 0 {
		return 0, false
	}
	return q[len(q)-1].end, true
}

// NextCompletion returns the completion time of the step currently at the
// head of the queue, and ok=false when idle.
func (p *Platform) NextCompletion() (float64, bool) {
	q := p.pending()
	if len(q) == 0 {
		return 0, false
	}
	return q[0].end, true
}

// PowerDraw returns board power in watts at the current instant. During a
// transition the larger of the two endpoint powers applies: when shedding
// load the old cores stay powered until the step completes, and when
// adding load the incoming OPP dominates as soon as the step begins.
func (p *Platform) PowerDraw() float64 {
	if !p.alive {
		return 0
	}
	if q := p.pending(); len(q) > 0 && p.now >= q[0].start {
		st := q[0]
		pf := p.Power.Power(st.from, p.utilisation)
		pt := p.Power.Power(st.to, p.utilisation)
		if pt > pf {
			return pt
		}
		return pf
	}
	return p.Power.Power(p.cur, p.utilisation)
}

// CurrentDraw returns supply current in amps at supply voltage v,
// modelling the regulator as a constant-power load. Below a deep
// under-voltage lockout the regulator stops switching and the draw
// collapses resistively instead of demanding unbounded current.
func (p *Platform) CurrentDraw(v float64) float64 {
	if v <= 0 || !p.alive {
		return 0
	}
	const uvlo = 2.0 // volts; well below the 4.1 V brownout threshold
	if v < uvlo {
		return p.PowerDraw() / uvlo * (v / uvlo)
	}
	return p.PowerDraw() / v
}

// Instructions returns total completed instructions.
func (p *Platform) Instructions() float64 { return p.instructions }

// Frames returns total completed rendered frames.
func (p *Platform) Frames() float64 { return p.frames }

// BusySeconds returns cumulative time spent inside OPP transitions.
func (p *Platform) BusySeconds() float64 { return p.busySeconds }

// TransitionCounts returns the number of DVFS and hot-plug steps executed
// or queued so far.
func (p *Platform) TransitionCounts() (dvfs, hotplug int) {
	return p.dvfsSteps, p.hotplugSteps
}

// RequestOPP queues the atomic steps to move from the committed OPP to
// target, ordered per order, starting no earlier than now (steps queue
// behind any in-flight transition). It returns the predicted completion
// time. Requesting the committed OPP is a no-op returning now.
func (p *Platform) RequestOPP(target OPP, now float64, order TransitionOrder) (completion float64, err error) {
	if !p.alive {
		return now, errors.New("soc: platform is powered off")
	}
	if !target.Valid() {
		return now, fmt.Errorf("soc: invalid target OPP %+v", target)
	}
	if now < p.now {
		return now, fmt.Errorf("soc: RequestOPP at t=%g before current t=%g", now, p.now)
	}
	if target == p.committed {
		if end, ok := p.TransitionEnd(); ok {
			return end, nil
		}
		return now, nil
	}
	start := now
	if end, ok := p.TransitionEnd(); ok && end > start {
		start = end
	}
	// Compact the consumed prefix before queueing more: without this, a
	// sustained backlog (requests always landing while a transition is
	// still pending) would keep qhead from ever rewinding and the
	// backing array would grow with every request ever made instead of
	// with the pending depth. The copy is O(pending), alloc-free.
	if p.qhead > 0 {
		n := copy(p.queue, p.queue[p.qhead:])
		p.queue = p.queue[:n]
		p.qhead = 0
	}
	steps, err := planSteps(p.planBuf[:0], p.committed, target, order)
	if err != nil {
		return now, err
	}
	p.planBuf = steps[:0] // keep any capacity growth for the next request
	t := start
	for _, s := range steps {
		var lat float64
		if s.isHotplug {
			lat, err = p.Latency.HotplugLatency(s.from.Config, s.to.Config, s.from.FreqIdx)
			p.hotplugSteps++
		} else {
			lat, err = p.Latency.DVFSLatency(s.from.FreqIdx, s.to.FreqIdx, s.from.Config)
			p.dvfsSteps++
		}
		if err != nil {
			return now, err
		}
		p.queue = append(p.queue, atomicStep{from: s.from, to: s.to, start: t, end: t + lat, isHotplug: s.isHotplug})
		t += lat
	}
	p.committed = target
	return t, nil
}

// stepPlan is a latency-free description of one atomic step.
type stepPlan struct {
	from, to  OPP
	isHotplug bool
}

// maxTransitionSteps bounds the single-unit steps of any valid
// transition: the full frequency ladder plus all eight cores.
const maxTransitionSteps = NumFrequencyLevels - 1 + 8

// planSteps decomposes from->to into single-unit steps in the requested
// order, appending them to dst (pass a reused buffer sliced to length
// zero to plan without allocating; at most maxTransitionSteps are added).
// Scaling down, CoreFirst sheds cores (big before LITTLE) before
// dropping frequency; FreqFirst is the reverse. Scaling up mirrors:
// CoreFirst raises frequency before adding cores, FreqFirst adds cores
// (LITTLE before big) first.
func planSteps(dst []stepPlan, from, to OPP, order TransitionOrder) ([]stepPlan, error) {
	if !from.Valid() || !to.Valid() {
		return nil, fmt.Errorf("soc: invalid OPP in transition %v -> %v", from, to)
	}
	df := to.FreqIdx - from.FreqIdx
	dl := to.Config.Little - from.Config.Little
	db := to.Config.Big - from.Config.Big

	// Emit the single-unit moves straight into dst — this runs once per
	// threshold interrupt, so it must not build intermediate move slices.
	out := dst
	cur := from
	var stepErr error
	emit := func(dFreq, dLittle, dBig int) {
		if stepErr != nil {
			return
		}
		next := cur
		next.FreqIdx += dFreq
		next.Config.Little += dLittle
		next.Config.Big += dBig
		if !next.Valid() {
			stepErr = fmt.Errorf("soc: step planning left the envelope at %v", next)
			return
		}
		out = append(out, stepPlan{from: cur, to: next, isHotplug: dFreq == 0})
		cur = next
	}
	freqMoves := func() {
		s := 1
		if df < 0 {
			s = -1
		}
		for i := 0; i < abs(df); i++ {
			emit(s, 0, 0)
		}
	}
	// Core moves: when shedding, drop big cores first (they cost the most
	// power); when adding, bring up LITTLE cores first (cheapest power for
	// the earliest throughput).
	coreMoves := func() {
		for i := 0; i < -db; i++ {
			emit(0, 0, -1)
		}
		for i := 0; i < -dl; i++ {
			emit(0, -1, 0)
		}
		for i := 0; i < dl; i++ {
			emit(0, 1, 0)
		}
		for i := 0; i < db; i++ {
			emit(0, 0, 1)
		}
	}

	scalingDown := to.Config.TotalCores() < from.Config.TotalCores() ||
		(to.Config.TotalCores() == from.Config.TotalCores() && to.FreqIdx < from.FreqIdx)

	if coresLead := (order == CoreFirst) == scalingDown; coresLead {
		coreMoves()
		freqMoves()
	} else {
		freqMoves()
		coreMoves()
	}
	if stepErr != nil {
		return nil, stepErr
	}
	if cur != to {
		return nil, fmt.Errorf("soc: step planning did not reach target: %v != %v", cur, to)
	}
	return out, nil
}
