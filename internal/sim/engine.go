package sim

import (
	"pnps/internal/pv"
)

// Engine abstracts how a group of independent runs is executed. The
// scalar engine runs them one after another; the batched engine advances
// up to W of them in lockstep over a structure-of-arrays state layout.
// Both produce bit-identical results: the batched path drives the exact
// per-run step/settle sequence the scalar path does, merely interleaving
// the integration stages of independent lanes.
type Engine interface {
	// Name identifies the engine in benchmark records ("scalar",
	// "batched").
	Name() string
	// Width is the maximum number of runs advanced in lockstep (1 for
	// scalar).
	Width() int
	// RunGroup executes every config and returns, per config, its Result
	// or its error (indices correspond; exactly one of results[i] and
	// errs[i] is non-nil).
	RunGroup(cfgs []Config) (results []*Result, errs []error)
}

// ScalarEngine executes runs sequentially via Run — the reference
// implementation everything else is pinned against.
type ScalarEngine struct{}

// Name implements Engine.
func (ScalarEngine) Name() string { return "scalar" }

// Width implements Engine.
func (ScalarEngine) Width() int { return 1 }

// RunGroup implements Engine.
func (ScalarEngine) RunGroup(cfgs []Config) ([]*Result, []error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	for i := range cfgs {
		results[i], errs[i] = Run(cfgs[i])
	}
	return results, errs
}

// DefaultBatchWidth is the lane count a zero-valued BatchEngine uses.
// Eight lanes keep the shared stage slab well inside L1 for every
// storage model while amortising per-batch setup (shared exact-MPP
// solve, shared Voc memo) over enough runs to matter.
const DefaultBatchWidth = 8

// BatchEngine executes runs in lockstep groups of W lanes via RunBatch.
type BatchEngine struct {
	// W is the lane count per lockstep group; <1 selects
	// DefaultBatchWidth.
	W int
}

// Name implements Engine.
func (BatchEngine) Name() string { return "batched" }

// Width implements Engine.
func (b BatchEngine) Width() int {
	if b.W < 1 {
		return DefaultBatchWidth
	}
	return b.W
}

// RunGroup implements Engine.
func (b BatchEngine) RunGroup(cfgs []Config) ([]*Result, []error) {
	w := b.Width()
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	for lo := 0; lo < len(cfgs); lo += w {
		hi := lo + w
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		rs, es := RunBatch(cfgs[lo:hi])
		copy(results[lo:hi], rs)
		copy(errs[lo:hi], es)
	}
	return results, errs
}

// EngineFor returns the engine named by name: "scalar" (or empty) for
// the sequential reference engine, "batched" for lockstep batching with
// the given width (<1 selects DefaultBatchWidth). Unknown names return
// false.
func EngineFor(name string, width int) (Engine, bool) {
	switch name {
	case "", "scalar":
		return ScalarEngine{}, true
	case "batched":
		return BatchEngine{W: width}, true
	}
	return nil, false
}

// RunBatch executes len(cfgs) independent runs in lockstep: one engine
// per lane, their integration segments interleaved stage-by-stage
// through a shared structure-of-arrays ode.BatchIntegrator. Per-lane
// control flow is byte-for-byte the scalar step/settle sequence, so
// every lane's Result is bit-identical to Run(cfgs[i]) regardless of how
// the other lanes behave. Batching pays through sharing: the exact
// MPP solve behind the TargetVolts default is computed once per distinct
// array (not once per run), and lanes over value-equal arrays share a
// Voc memo. Lanes whose steps diverge — event hits, rejects, service
// delays — simply settle on their own schedule through the scalar settle
// path and rejoin the lockstep rounds with their next segment.
//
// Results and errors correspond by index, exactly one non-nil per lane.
func RunBatch(cfgs []Config) ([]*Result, []error) {
	n := len(cfgs)
	results := make([]*Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}

	// Per-lane construction with batch-shared setup caches.
	engines := make([]*engine, n)
	var mpps pv.MPPCache
	dim := 0
	for i := range cfgs {
		cfg := cfgs[i]
		if err := validateCached(&cfg, &mpps); err != nil {
			errs[i] = err
			continue
		}
		e, err := newEngine(cfg)
		if err != nil {
			errs[i] = err
			continue
		}
		engines[i] = e
		if d := e.storage.Dim(); d > dim {
			dim = d
		}
	}
	if dim == 0 {
		return results, errs // every lane failed validation
	}

	// Share the Voc memo among lanes over value-equal arrays. Voc is a
	// pure cold-start function of (array, irradiance), so sharing cannot
	// perturb per-lane results; the warm-history-dependent MPP memo
	// stays per-lane.
	memos := make(map[pv.Array]*pv.VocMemo, 1)
	for _, e := range engines {
		if e == nil || e.fast == nil {
			continue
		}
		arr := *e.pvSrc.Array
		m := memos[arr]
		if m == nil {
			m = pv.NewVocMemo(e.pvSrc.Array)
			memos[arr] = m
		}
		e.fast.ShareVoc(m)
	}

	// Re-point each lane's state vector into one contiguous slab so the
	// batch's live state is adjacent in memory.
	ySlab := make([]float64, n*dim)
	for i, e := range engines {
		if e == nil {
			continue
		}
		d := e.storage.Dim()
		y := ySlab[i*dim : i*dim+d : i*dim+d]
		copy(y, e.y)
		e.y = y
	}

	// Every lane's in-round stage evaluations flow through one batched
	// derivative call per stage: PV lanes advance their diode Newton
	// solves in lockstep via pv.LaneSolver, non-PV lanes fall back to
	// their scalar RHS inside the same call. The scalar RHS still seeds
	// each segment's FSAL stage — both paths advance the same per-lane
	// solver state identically, so mixing them preserves bit-identity.
	// The integrator/evaluator pair is recycled across packs of the same
	// shape, so steady-state pack setup allocates nothing for it.
	sc := acquireBatch(n, dim)
	bi := sc.bi
	sc.br.bind(engines)
	done := make([]bool, n)

	// startNext drives lane i's discrete-event machine until its next
	// integration segment is armed and started, or the lane finishes.
	startNext := func(i int) {
		e := engines[i]
		if !e.pendArmed {
			more, err := e.step()
			if err != nil {
				errs[i] = err
				done[i] = true
				return
			}
			if !more {
				results[i] = e.finish()
				done[i] = true
				return
			}
		}
		if err := bi.StartBatched(i, e.rhsFn, e.pendT0, e.pendT1, e.stateBuf(), e.pendOptions()); err != nil {
			errs[i] = e.wrapSegErr(e.pendKind, e.pendT0, err)
			done[i] = true
		}
	}

	for i, e := range engines {
		if e == nil {
			done[i] = true
			continue
		}
		startNext(i)
	}

	// Lockstep rounds: every running lane performs one step attempt per
	// round; lanes whose segment completed settle scalar-side and re-arm.
	for bi.Active() > 0 {
		bi.Round()
		for i, e := range engines {
			if e == nil || done[i] || bi.Running(i) {
				continue
			}
			res, err := bi.Take(i)
			if err != nil {
				errs[i] = e.wrapSegErr(e.pendKind, e.pendT0, err)
				done[i] = true
				continue
			}
			if err := e.settle(res); err != nil {
				errs[i] = err
				done[i] = true
				continue
			}
			startNext(i)
		}
	}
	releaseBatch(sc)
	return results, errs
}
