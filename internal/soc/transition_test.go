package soc

import (
	"testing"
)

func TestAnalyzeTransitionTable1Shape(t *testing.T) {
	pm := DefaultPowerModel()
	lm := DefaultLatencyModel()
	const supply, droop = 5.3, 1.54

	a, err := AnalyzeTransition(pm, lm, MaxOPP(), MinOPP(), FreqFirst, supply, droop)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeTransition(pm, lm, MaxOPP(), MinOPP(), CoreFirst, supply, droop)
	if err != nil {
		t.Fatal(err)
	}

	// The paper's Table I shape: (b) is much faster and much cheaper.
	if b.TotalSeconds >= a.TotalSeconds/2 {
		t.Errorf("core-first time %.1f ms should be well under freq-first %.1f ms",
			b.TotalSeconds*1e3, a.TotalSeconds*1e3)
	}
	if b.Coulombs >= a.Coulombs/1.5 {
		t.Errorf("core-first charge %.4f C should be well under freq-first %.4f C",
			b.Coulombs, a.Coulombs)
	}
	// Magnitudes: (b) ≈ 60 ms / 0.05 C (paper: 63.21 ms / 0.0461 C).
	if b.TotalSeconds < 0.03 || b.TotalSeconds > 0.12 {
		t.Errorf("core-first time %.1f ms outside paper band", b.TotalSeconds*1e3)
	}
	if b.Coulombs < 0.02 || b.Coulombs > 0.09 {
		t.Errorf("core-first charge %.4f C outside paper band", b.Coulombs)
	}
	// The selected order must fit the paper's 47 mF capacitor.
	if b.RequiredCapacitance >= 47e-3 {
		t.Errorf("required capacitance %.1f mF exceeds the 47 mF buffer", b.RequiredCapacitance*1e3)
	}
	// Both transitions decompose into 7 hot-plug + 7 DVFS steps.
	if len(a.Steps) != 14 || len(b.Steps) != 14 {
		t.Errorf("step counts a=%d b=%d, want 14", len(a.Steps), len(b.Steps))
	}
}

func TestAnalyzeTransitionChargeConsistency(t *testing.T) {
	pm := DefaultPowerModel()
	lm := DefaultLatencyModel()
	rep, err := AnalyzeTransition(pm, lm, MaxOPP(), MinOPP(), CoreFirst, 5.3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var tsum, qsum float64
	for _, s := range rep.Steps {
		if s.Seconds <= 0 || s.Coulombs <= 0 || s.Watts <= 0 {
			t.Errorf("non-positive step cost: %+v", s)
		}
		tsum += s.Seconds
		qsum += s.Coulombs
	}
	if diff := rep.TotalSeconds - tsum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total time %.6f != step sum %.6f", rep.TotalSeconds, tsum)
	}
	if diff := rep.Coulombs - qsum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total charge %.6f != step sum %.6f", rep.Coulombs, qsum)
	}
	wantC := rep.Coulombs / 1.5
	if diff := rep.RequiredCapacitance - wantC; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("required capacitance %.6f != Q/droop %.6f", rep.RequiredCapacitance, wantC)
	}
}

func TestAnalyzeTransitionValidation(t *testing.T) {
	pm := DefaultPowerModel()
	lm := DefaultLatencyModel()
	if _, err := AnalyzeTransition(pm, lm, MaxOPP(), MinOPP(), CoreFirst, 0, 1.5); err == nil {
		t.Error("zero supply accepted")
	}
	if _, err := AnalyzeTransition(pm, lm, MaxOPP(), MinOPP(), CoreFirst, 5.3, 0); err == nil {
		t.Error("zero droop accepted")
	}
}

func TestAnalyzeTransitionUpward(t *testing.T) {
	pm := DefaultPowerModel()
	lm := DefaultLatencyModel()
	rep, err := AnalyzeTransition(pm, lm, MinOPP(), MaxOPP(), CoreFirst, 5.3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSeconds <= 0 {
		t.Error("upward transition has no cost")
	}
	// Scaling up, CoreFirst raises frequency before adding cores.
	if rep.Steps[0].IsHotplug {
		t.Error("core-first scale-up should start with frequency steps")
	}
}
