package pnps

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artefact; see DESIGN.md §5) and reports
// the headline quantity of each as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation in one run. Experiment benchmarks
// typically execute one iteration (each is a whole scenario simulation);
// the micro-benchmarks at the bottom characterise the hot paths.

import (
	"context"
	"fmt"
	"testing"

	"pnps/internal/batch"
	"pnps/internal/core"
	"pnps/internal/experiments"
	"pnps/internal/governor"
	"pnps/internal/ode"
	"pnps/internal/pv"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/workload"
)

// benchExperiment runs a registered experiment b.N times and reports the
// named metrics from the final report.
func benchExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(id, experiments.DefaultSeed)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	for name, unit := range metrics {
		for _, m := range rep.Metrics {
			if m.Name == name {
				b.ReportMetric(m.Value, unit)
			}
		}
	}
}

func BenchmarkFig01SolarDayTrace(b *testing.B) {
	benchExperiment(b, "fig1", map[string]string{
		"peak power output": "peakW",
	})
}

func BenchmarkFig03TransientResponse(b *testing.B) {
	benchExperiment(b, "fig3", map[string]string{
		"lifetime extension factor": "lifex",
	})
}

func BenchmarkFig04PowerVsFrequency(b *testing.B) {
	benchExperiment(b, "fig4", map[string]string{
		"max config/frequency power": "maxW",
	})
}

func BenchmarkFig06ShadowingSimulation(b *testing.B) {
	benchExperiment(b, "fig6", map[string]string{
		"min Vc with control": "minVc",
	})
}

func BenchmarkFig07PerformanceVsPower(b *testing.B) {
	benchExperiment(b, "fig7", map[string]string{
		"max FPS (8 cores @1.4 GHz)": "maxFPS",
	})
}

func BenchmarkFig10TransitionLatency(b *testing.B) {
	benchExperiment(b, "fig10", map[string]string{
		"slowest hot-plug": "slowMs",
		"fastest hot-plug": "fastMs",
	})
}

func BenchmarkTable1RequiredCapacitance(b *testing.B) {
	benchExperiment(b, "table1", map[string]string{
		"(b) required capacitance": "mF",
		"(a)/(b) charge ratio":     "ratio",
	})
}

func BenchmarkFig11ControlledSupply(b *testing.B) {
	benchExperiment(b, "fig11", map[string]string{
		"DVFS:hot-plug ratio": "ratio",
	})
}

func BenchmarkFig12VoltageStabilisation(b *testing.B) {
	benchExperiment(b, "fig12", map[string]string{
		"time within ±5% of target": "pct5",
	})
}

func BenchmarkFig13MPPTracking(b *testing.B) {
	benchExperiment(b, "fig13", map[string]string{
		"|modal − MPP voltage|": "dV",
	})
}

func BenchmarkFig14PowerNeutrality(b *testing.B) {
	benchExperiment(b, "fig14", map[string]string{
		"utilisation of harvest (energy)": "pct",
	})
}

func BenchmarkTable2GovernorComparison(b *testing.B) {
	benchExperiment(b, "table2", map[string]string{
		"instruction gain vs powersave": "gainPct",
	})
}

func BenchmarkFig15ControlOverhead(b *testing.B) {
	benchExperiment(b, "fig15", map[string]string{
		"controller CPU overhead": "pct",
	})
}

func BenchmarkParamSweep(b *testing.B) {
	// A reduced grid keeps one iteration in the seconds range while
	// exercising the full sweep machinery (cmd/pnsweep runs the paper
	// grid).
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunSweep(experiments.SweepOptions{
			VWidths:  []float64{0.144, 0.28},
			VQs:      []float64{0.0479, 0.08},
			Alphas:   []float64{0.12},
			Betas:    []float64{0.479},
			Duration: 120,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(pts[0].Stability*100, "bestPct5")
		}
	}
}

func BenchmarkAblationSemantics(b *testing.B) {
	benchExperiment(b, "ablation-semantics", map[string]string{
		"flowchart stability": "flowPct",
		"eq2 stability":       "eq2Pct",
	})
}

func BenchmarkAblationOrder(b *testing.B) {
	benchExperiment(b, "ablation-order", map[string]string{
		"min Vc, core-first":      "coreMinVc",
		"min Vc, frequency-first": "freqMinVc",
	})
}

func BenchmarkExtMPPTComparison(b *testing.B) {
	benchExperiment(b, "mppt", map[string]string{
		"implicit power-neutral efficiency": "pct",
	})
}

func BenchmarkExtPredictiveComparison(b *testing.B) {
	benchExperiment(b, "predictive", map[string]string{
		"predictive lifetime under shadowing": "sec",
	})
}

func BenchmarkExtBufferComparison(b *testing.B) {
	benchExperiment(b, "buffers", map[string]string{
		"power-neutral min capacitance": "mF",
		"buffer reduction vs static":    "x",
	})
}

// --- batch engine: serial-vs-parallel scaling ---

// BenchmarkRunSweepWorkers scores the paper's full default (Vwidth, Vq,
// α, β) grid at 1, 2, 4 and GOMAXPROCS workers (shortened per-point
// scenarios keep an iteration tractable; the grid shape is the paper's).
// Compare the workers=1 and workers=4 wall-clock times for the speedup
// of the batch engine; on ≥4 hardware threads the parallel run is
// expected ≥2× faster, with identical output by construction.
func BenchmarkRunSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.RunSweep(experiments.SweepOptions{
					Duration: 10, // default grids, shortened scenario
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(pts)), "gridPts")
				}
			}
		})
	}
}

// BenchmarkRunAllExperiments regenerates the fast paper artefacts
// serially and in parallel through the experiment-level worker pool.
func BenchmarkRunAllExperiments(b *testing.B) {
	ids := []string{"fig3", "fig4", "fig6", "fig7", "fig10", "table1"}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunAll(context.Background(), experiments.RunAllOptions{
					IDs: ids, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchOverhead measures the engine's per-job cost with no-op
// jobs — the fixed tax the pool adds on top of real simulation work.
func BenchmarkBatchOverhead(b *testing.B) {
	jobs := make([]batch.Func[int], 1024)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i, nil }
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkPVCurrentSolve(b *testing.B) {
	arr := pv.SouthamptonArray()
	var acc float64
	for i := 0; i < b.N; i++ {
		v := 4.0 + float64(i%200)*0.01
		iout, err := arr.CurrentAt(v, 850)
		if err != nil {
			b.Fatal(err)
		}
		acc += iout
	}
	_ = acc
}

func BenchmarkPVMaximumPowerPoint(b *testing.B) {
	arr := pv.SouthamptonArray()
	for i := 0; i < b.N; i++ {
		if _, err := arr.MaximumPowerPoint(600 + float64(i%5)*100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerResponse(b *testing.B) {
	p := core.DefaultParams()
	opp := soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 2}}
	for i := 0; i < b.N; i++ {
		which := core.CrossLow
		if i%2 == 0 {
			which = core.CrossHigh
		}
		core.Response(p, which, 0.05+float64(i%10)*0.01, opp)
	}
}

func BenchmarkPlatformTransition(b *testing.B) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	t := 0.0
	for i := 0; i < b.N; i++ {
		target := soc.MaxOPP()
		if i%2 == 1 {
			target = soc.MinOPP()
		}
		done, err := plat.RequestOPP(target, t, soc.CoreFirst)
		if err != nil {
			b.Fatal(err)
		}
		if err := plat.Advance(done); err != nil {
			b.Fatal(err)
		}
		t = done
	}
}

func BenchmarkRK23CircuitSecond(b *testing.B) {
	// One simulated second of the supply node under a static load.
	arr := pv.SouthamptonArray()
	rhs := func(_ float64, y, dydt []float64) {
		i, _ := arr.CurrentAt(y[0], 900)
		dydt[0] = (i - 2.5/y[0]) / 47e-3
	}
	for i := 0; i < b.N; i++ {
		y := []float64{5.3}
		if _, err := ode.RK23(rhs, 0, 1, y, ode.Options{MaxStep: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntegratorSegment measures the per-segment cost of the
// ODE layer the way the sim engine drives it: thousands of short
// continuation segments. "reused" holds one Integrator (the engine's
// configuration, zero steady-state allocations); "fresh" calls the RK23
// wrapper, which allocates its stage buffers every segment.
func BenchmarkIntegratorSegment(b *testing.B) {
	arr := pv.SouthamptonArray()
	sol := pv.NewSolver(arr)
	rhs := func(_ float64, y, dydt []float64) {
		i, _ := sol.CurrentAt(y[0], 900)
		dydt[0] = (i - 2.5/y[0]) / 47e-3
	}
	opts := ode.Options{MaxStep: 0.25, RTol: 1e-6, ATol: 1e-7, InitialStep: 0.05}
	b.Run("reused", func(b *testing.B) {
		integ := ode.NewIntegrator()
		y := []float64{5.3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := float64(i) * 0.05
			if _, err := integ.Integrate(rhs, t0, t0+0.05, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		y := []float64{5.3}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := float64(i) * 0.05
			if _, err := ode.RK23(rhs, t0, t0+0.05, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPVSolverCurrentSolve is the warm-started counterpart of
// BenchmarkPVCurrentSolve: the same voltage ladder through the per-run
// accelerated solver.
func BenchmarkPVSolverCurrentSolve(b *testing.B) {
	sol := pv.NewSolver(pv.SouthamptonArray())
	var acc float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := 4.0 + float64(i%200)*0.01
		iout, err := sol.CurrentAt(v, 850)
		if err != nil {
			b.Fatal(err)
		}
		acc += iout
	}
	_ = acc
}

// BenchmarkPVSolverAvailablePower exercises the fast Voc + MPP path on a
// rotating irradiance set (after the first lap every query is memoised).
func BenchmarkPVSolverAvailablePower(b *testing.B) {
	sol := pv.NewSolver(pv.SouthamptonArray())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sol.AvailablePower(600 + float64(i%5)*100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimClosedLoopSecond(b *testing.B) {
	// One simulated second of the full closed loop (PV + monitor +
	// controller + platform), amortised: each iteration runs a fresh
	// 1-second scenario.
	for i := 0; i < b.N; i++ {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.MinOPP())
		ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
		if err != nil {
			b.Fatal(err)
		}
		_, err = sim.Run(sim.Config{
			Array: pv.SouthamptonArray(), Profile: pv.Constant(1000),
			Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
			Controller: ctrl, Duration: 1, SkipSeries: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimControllerMinute is the representative end-to-end hot-path
// benchmark: one simulated minute of the full power-neutral closed loop
// (PV array + threshold monitor + controller + platform) under a cloud-
// shadowed sky, with full time-series capture including the periodic
// available-power MPP sampling. This is the per-run path every sweep
// point and scenario experiment pays.
func BenchmarkSimControllerMinute(b *testing.B) {
	profile := pv.NewClouds(pv.Constant(900), pv.PartialSun(60), 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.MinOPP())
		ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sim.Config{
			Array: pv.SouthamptonArray(), Profile: profile,
			Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
			Controller: ctrl, Duration: 60,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimGovernorMinute is the baseline-governor counterpart of
// BenchmarkSimControllerMinute: the same supply and platform driven by a
// periodically sampling Linux governor instead of threshold interrupts.
func BenchmarkSimGovernorMinute(b *testing.B) {
	profile := pv.NewClouds(pv.Constant(900), pv.PartialSun(60), 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, soc.MinOPP())
		if _, err := sim.Run(sim.Config{
			Array: pv.SouthamptonArray(), Profile: profile,
			Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
			Governor: governor.NewOndemand(), Duration: 60,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRaytraceScanline(b *testing.B) {
	// The paper's benchmark application: smallpt at 5 samples/pixel
	// (one 64-pixel scanline per iteration).
	sc := workload.CornellScene()
	for i := 0; i < b.N; i++ {
		_, err := sc.Render(workload.RenderOptions{
			Width: 64, Height: 1, SamplesPerPixel: 5, Seed: int64(i), Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
