package study

import (
	"fmt"

	"pnps/internal/stats"
)

// QuantileBand is a five-point quantile summary of a dwell-time
// distribution, computed with Histogram.Quantile — the bin-bounded
// estimator, preferred over the P² streaming sketch whenever a
// histogram is available (P² degrades on monotone streams; see the
// internal/stats package docs).
type QuantileBand struct {
	P5, P25, Median, P75, P95 float64
}

// dwellBand summarises a dwell histogram's quantiles; nil when the
// histogram is absent or empty.
func dwellBand(h *stats.Histogram) *QuantileBand {
	if h == nil || h.Total() <= 0 {
		return nil
	}
	b := &QuantileBand{}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.05, &b.P5}, {0.25, &b.P25}, {0.5, &b.Median}, {0.75, &b.P75}, {0.95, &b.P95}} {
		v, err := h.Quantile(q.p)
		if err != nil {
			return nil
		}
		*q.dst = v
	}
	return b
}

// CellOutcome is the aggregate of one matrix cell's repetitions.
type CellOutcome struct {
	// Cell identifies the matrix point (axis coordinates, labels, key).
	Cell Cell
	// Summary is the cell's deterministic aggregate with quantile bands.
	Summary Summary
	// VCHistogram is the task-order merge of the cell's dwell-time
	// voltage histograms (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
	// DwellVC summarises the cell's supply dwell-time distribution
	// (VCHistBins > 0 only).
	DwellVC *QuantileBand
}

// Marginal is the aggregate of every run sharing one axis level,
// marginalised over all other axes — the "controller vs. governors,
// everything else averaged out" view of a matrix.
type Marginal struct {
	// Axis and Level name the margin.
	Axis, Level string
	// Summary is the level's aggregate across all other axes.
	Summary Summary
}

// StudyOutcome is a completed study matrix.
type StudyOutcome struct {
	// Axes digests the matrix dimensions (names and level labels, in
	// declaration order) — the column structure of the exports.
	Axes []AxisDigest
	// Cells holds one aggregate per matrix cell, in canonical matrix
	// order.
	Cells []CellOutcome
	// Summary is the deterministic aggregate over every run of the
	// matrix.
	Summary Summary
	// DwellVC summarises the study-wide supply dwell-time distribution
	// (VCHistBins > 0 only).
	DwellVC *QuantileBand
	// Marginals holds one aggregate per axis level (axes in declaration
	// order, levels in axis order); nil for studies without axes.
	Marginals []Marginal
	// Groups holds one aggregate per Study.Group label, ordered by
	// first occurrence in the ledger; nil when the study was ungrouped.
	Groups []GroupSummary
	// VCHistogram is the task-order merge of every run's dwell-time
	// voltage histogram (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
	// Results holds every run in ledger order. In-process runs carry
	// the full *sim.Result; checkpoint-restored runs carry metrics only.
	Results []TaskResult
}

// CellByKey returns the cell outcome with the given canonical key.
func (o *StudyOutcome) CellByKey(key string) (CellOutcome, bool) {
	for _, c := range o.Cells {
		if c.Cell.Key == key {
			return c, true
		}
	}
	return CellOutcome{}, false
}

// outcomeAccum is the streaming heart of study aggregation: results
// are folded one at a time, strictly in canonical ledger order, into
// the scalar summary accumulators and the cell/study histograms. Both
// aggregation paths — the in-process outcomeFrom over a full result
// slice and the chunk Folder consuming coordinator submissions — run
// through this one accumulator, so a chunked, re-leased, out-of-order
// distributed study is bit-identical to an unsharded Run by
// construction, not by coincidence.
//
// Per-task histograms are merged and dropped as they are folded, so
// the accumulator's histogram state is O(cells × bins) however many
// tasks stream through it; the retained per-task state is the scalar
// records the outcome's Results and quantile bands are made of.
type outcomeAccum struct {
	st *Study
	p  *plan

	overall      *summaryAccum
	cellAccums   []*summaryAccum
	marginAccums [][]*summaryAccum
	groupOrder   []string
	groupAccums  map[string]*summaryAccum
	cellHists    []*stats.Histogram
	vcHist       *stats.Histogram
	results      []TaskResult
}

func (st *Study) newOutcomeAccum(p *plan) *outcomeAccum {
	a := &outcomeAccum{
		st: st, p: p,
		overall:      newSummaryAccum(p.total),
		cellAccums:   make([]*summaryAccum, len(p.cells)),
		marginAccums: make([][]*summaryAccum, len(st.Axes)),
		groupAccums:  map[string]*summaryAccum{},
		cellHists:    make([]*stats.Histogram, len(p.cells)),
		results:      make([]TaskResult, 0, p.total),
	}
	for i := range a.cellAccums {
		a.cellAccums[i] = newSummaryAccum(p.reps)
	}
	for ax, axis := range st.Axes {
		a.marginAccums[ax] = make([]*summaryAccum, len(axis.Levels))
		for l := range axis.Levels {
			a.marginAccums[ax][l] = newSummaryAccum(0)
		}
	}
	return a
}

// mergeHist folds h into *into, materialising the target from the
// first histogram's bounds (bins cloned, never aliased).
func mergeHist(into **stats.Histogram, h *stats.Histogram) error {
	if *into == nil {
		merged := *h // copy bounds; clone the bins
		merged.Bins = append([]float64(nil), h.Bins...)
		*into = &merged
		return nil
	}
	return (*into).Merge(h)
}

// add folds the next ledger result. Results must arrive in canonical
// task order — the invariant every bit-identity guarantee rests on —
// so the accumulator rejects anything else.
func (a *outcomeAccum) add(r TaskResult) error {
	if r.Task.Index != len(a.results) {
		return fmt.Errorf("study: result %d carries task index %d", len(a.results), r.Task.Index)
	}
	cell := a.p.cells[r.Task.Cell]
	a.overall.add(r.Metrics)
	a.cellAccums[cell.Index].add(r.Metrics)
	for ax := range a.st.Axes {
		a.marginAccums[ax][cell.Coords[ax]].add(r.Metrics)
	}
	if a.st.Group != nil {
		g, ok := a.groupAccums[r.Group]
		if !ok {
			g = newSummaryAccum(0)
			a.groupAccums[r.Group] = g
			a.groupOrder = append(a.groupOrder, r.Group)
		}
		g.add(r.Metrics)
	}
	if r.Hist != nil {
		if err := mergeHist(&a.cellHists[cell.Index], r.Hist); err != nil {
			return err
		}
		if err := mergeHist(&a.vcHist, r.Hist); err != nil {
			return err
		}
		// Merged; drop the per-task histogram so a large study does
		// not keep O(tasks × bins) dead weight alive in Results.
		r.Hist = nil
	}
	a.results = append(a.results, r)
	return nil
}

// folded returns the number of results accumulated so far.
func (a *outcomeAccum) folded() int { return len(a.results) }

// marginals snapshots the per-axis marginal summaries over the results
// folded so far, skipping levels no run has reached yet — the live
// "controller vs. governors so far" view the coordinator streams as
// chunks land. Snapshotting never mutates the accumulator.
func (a *outcomeAccum) marginals() []Marginal {
	var out []Marginal
	for ax, axis := range a.st.Axes {
		for l, lv := range axis.Levels {
			acc := a.marginAccums[ax][l]
			if len(acc.instr) == 0 {
				continue
			}
			s, err := acc.summary()
			if err != nil {
				continue
			}
			out = append(out, Marginal{Axis: axis.Name, Level: lv.Label, Summary: s})
		}
	}
	return out
}

// outcome finalises the accumulator into the study outcome; the full
// ledger must have been folded.
func (a *outcomeAccum) outcome() (*StudyOutcome, error) {
	if len(a.results) != a.p.total {
		return nil, fmt.Errorf("study: %d results for a %d-task ledger", len(a.results), a.p.total)
	}
	out := &StudyOutcome{
		Axes: a.st.fingerprint(a.p).Axes, Results: a.results,
		VCHistogram: a.vcHist,
	}
	var err error
	if out.Summary, err = a.overall.summary(); err != nil {
		return nil, err
	}
	out.DwellVC = dwellBand(out.VCHistogram)
	out.Cells = make([]CellOutcome, len(a.p.cells))
	for c := range a.p.cells {
		co := CellOutcome{Cell: a.p.cells[c], VCHistogram: a.cellHists[c]}
		if co.Summary, err = a.cellAccums[c].summary(); err != nil {
			return nil, err
		}
		co.DwellVC = dwellBand(co.VCHistogram)
		out.Cells[c] = co
	}
	for ax, axis := range a.st.Axes {
		for l, lv := range axis.Levels {
			m := Marginal{Axis: axis.Name, Level: lv.Label}
			if m.Summary, err = a.marginAccums[ax][l].summary(); err != nil {
				return nil, err
			}
			out.Marginals = append(out.Marginals, m)
		}
	}
	for _, name := range a.groupOrder {
		s, err := a.groupAccums[name].summary()
		if err != nil {
			return nil, err
		}
		out.Groups = append(out.Groups, GroupSummary{Name: name, Summary: s})
	}
	return out, nil
}

// outcomeFrom aggregates completed ledger results (sorted by task
// index, one per ledger entry) into the study outcome. Everything is
// accumulated strictly in task order — scalar summaries and histogram
// merges alike — which is what makes the outcome bit-identical at any
// worker count, across shard and chunk counts and through checkpoint
// round-trips.
func (st Study) outcomeFrom(p *plan, results []TaskResult) (*StudyOutcome, error) {
	if len(results) != p.total {
		return nil, fmt.Errorf("study: %d results for a %d-task ledger", len(results), p.total)
	}
	a := st.newOutcomeAccum(p)
	for i := range results {
		if err := a.add(results[i]); err != nil {
			return nil, err
		}
	}
	return a.outcome()
}
