// Package pv models the photovoltaic energy-harvesting source: a
// single-diode solar cell/array equivalent circuit (the paper's Eq. 4),
// maximum-power-point analysis, and synthetic irradiance profiles with the
// macro (diurnal) and micro (cloud shadowing) variability of the paper's
// Fig. 1.
//
// The default array parameters are calibrated to the 1340 cm² mono-
// crystalline array used for the paper's experimental validation:
// Isc ≈ 1.15 A, Voc ≈ 6.6 V, and a maximum power point of ≈ 5.5 W at
// ≈ 5.3 V under full sun (Fig. 13).
package pv

import (
	"errors"
	"fmt"
	"math"
)

// Boltzmann constant over elementary charge, volts per kelvin.
const kOverQ = 8.617333262e-5

// StandardIrradiance is the full-sun reference irradiance in W/m².
const StandardIrradiance = 1000.0

// Array models a PV array as a lumped single-diode equivalent circuit:
//
//	I = Il − I0·(exp((V + Rs·I)/(Ns·N·VT)) − 1) − (V + Rs·I)/Rp
//
// where Il scales linearly with irradiance. All voltages are across the
// array terminals; currents flow out of the array.
type Array struct {
	// IscSTC is the short-circuit current at StandardIrradiance, amps.
	IscSTC float64
	// I0 is the diode reverse saturation current, amps.
	I0 float64
	// Rs is the lumped series resistance, ohms.
	Rs float64
	// Rp is the lumped parallel (shunt) resistance, ohms.
	Rp float64
	// Ns is the number of series-connected cells.
	Ns int
	// N is the diode ideality (quality) factor.
	N float64
	// TempK is the cell temperature in kelvin (sets the thermal voltage).
	TempK float64
	// AreaCM2 is the array area in cm²; informational, used by docs/traces.
	AreaCM2 float64
}

// SouthamptonArray returns parameters calibrated to the paper's 1340 cm²
// monocrystalline array (Section V-B, Fig. 13).
func SouthamptonArray() *Array {
	return &Array{
		IscSTC:  1.15,
		I0:      4.5e-9,
		Rs:      0.25,
		Rp:      200,
		Ns:      11,
		N:       1.20,
		TempK:   298.15,
		AreaCM2: 1340,
	}
}

// SmallArray returns parameters for the 250 cm² cell whose day-long output
// is plotted in the paper's Fig. 1 (peak output ≈ 1 W).
func SmallArray() *Array {
	return &Array{
		IscSTC:  0.22,
		I0:      9e-10,
		Rs:      1.2,
		Rp:      900,
		Ns:      11,
		N:       1.20,
		TempK:   298.15,
		AreaCM2: 250,
	}
}

// Validate checks the physical plausibility of the parameters.
func (a *Array) Validate() error {
	switch {
	case a.IscSTC <= 0:
		return fmt.Errorf("pv: IscSTC must be positive, got %g", a.IscSTC)
	case a.I0 <= 0:
		return fmt.Errorf("pv: I0 must be positive, got %g", a.I0)
	case a.Rs < 0:
		return fmt.Errorf("pv: Rs must be non-negative, got %g", a.Rs)
	case a.Rp <= 0:
		return fmt.Errorf("pv: Rp must be positive, got %g", a.Rp)
	case a.Ns < 1:
		return fmt.Errorf("pv: Ns must be >=1, got %d", a.Ns)
	case a.N <= 0:
		return fmt.Errorf("pv: ideality factor must be positive, got %g", a.N)
	case a.TempK <= 0:
		return fmt.Errorf("pv: TempK must be positive, got %g", a.TempK)
	}
	return nil
}

// thermalVoltageString returns Ns·N·VT, the denominator of the diode
// exponent for the whole series string.
func (a *Array) thermalVoltageString() float64 {
	return float64(a.Ns) * a.N * kOverQ * a.TempK
}

// LightCurrent returns the photo-generated current Il at irradiance g
// (W/m²). Negative irradiance is treated as zero.
func (a *Array) LightCurrent(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return a.IscSTC * g / StandardIrradiance
}

// ErrNoConvergence is returned when the implicit IV solve fails; with
// validated parameters this indicates numerically hostile inputs.
var ErrNoConvergence = errors.New("pv: IV solve did not converge")

// CurrentAt solves the implicit single-diode equation for the terminal
// current at voltage v (volts) and irradiance g (W/m²). The equation has a
// unique root because the residual is strictly decreasing in I; the solver
// brackets the root and polishes it by safeguarded Newton iteration.
func (a *Array) CurrentAt(v, g float64) (float64, error) {
	il := a.LightCurrent(g)
	vt := a.thermalVoltageString()

	resid := func(i float64) float64 {
		arg := (v + a.Rs*i) / vt
		// Clamp the exponent: beyond this the residual is astronomically
		// negative anyway, and math.Exp would overflow to +Inf.
		if arg > 500 {
			arg = 500
		}
		return il - a.I0*math.Expm1(arg) - (v+a.Rs*i)/a.Rp - i
	}

	// Upper bracket: resid(Il) <= 0 whenever v >= 0 (diode + shunt terms
	// only subtract). For v < 0 extend upward geometrically.
	hi := il
	for iter := 0; resid(hi) > 0; iter++ {
		if iter > 200 {
			return 0, ErrNoConvergence
		}
		hi = hi*2 + 1
	}
	// Lower bracket: walk down geometrically until the residual is
	// non-negative.
	lo := hi - 1
	for iter := 0; resid(lo) < 0; iter++ {
		if iter > 200 {
			return 0, ErrNoConvergence
		}
		lo = hi - (hi-lo)*2
	}

	// Bisection with Newton acceleration.
	i := 0.5 * (lo + hi)
	for iter := 0; iter < 200; iter++ {
		f := resid(i)
		if f > 0 {
			lo = i
		} else {
			hi = i
		}
		// Newton step from the analytic derivative.
		arg := (v + a.Rs*i) / vt
		if arg > 500 {
			arg = 500
		}
		df := -a.I0*math.Exp(arg)*a.Rs/vt - a.Rs/a.Rp - 1
		next := i - f/df
		if !(next > lo && next < hi) {
			next = 0.5 * (lo + hi) // fall back to bisection
		}
		if math.Abs(next-i) < 1e-12*(1+math.Abs(i)) {
			return next, nil
		}
		i = next
	}
	if hi-lo < 1e-9 {
		return 0.5 * (lo + hi), nil
	}
	return 0, ErrNoConvergence
}

// PowerAt returns the electrical output power V·I at voltage v and
// irradiance g.
func (a *Array) PowerAt(v, g float64) (float64, error) {
	i, err := a.CurrentAt(v, g)
	if err != nil {
		return 0, err
	}
	return v * i, nil
}

// ShortCircuitCurrent returns I at V=0 for irradiance g.
func (a *Array) ShortCircuitCurrent(g float64) (float64, error) {
	return a.CurrentAt(0, g)
}

// OpenCircuitVoltage returns the terminal voltage at which the output
// current is zero, found by bisection. Returns 0 for zero irradiance.
func (a *Array) OpenCircuitVoltage(g float64) (float64, error) {
	if g <= 0 {
		return 0, nil
	}
	// Analytic upper bound ignoring Rp: Voc <= vt·ln(Il/I0 + 1).
	vt := a.thermalVoltageString()
	hi := vt * math.Log(a.LightCurrent(g)/a.I0+1)
	hi *= 1.05
	lo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lo + hi)
		i, err := a.CurrentAt(mid, g)
		if err != nil {
			return 0, err
		}
		if i > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}

// IVPoint is a single (voltage, current, power) operating point.
type IVPoint struct {
	V, I, P float64
}

// IVCurve samples n evenly spaced points of the IV characteristic between
// V=0 and Voc at irradiance g.
func (a *Array) IVCurve(g float64, n int) ([]IVPoint, error) {
	if n < 2 {
		return nil, fmt.Errorf("pv: IVCurve needs >=2 points, got %d", n)
	}
	voc, err := a.OpenCircuitVoltage(g)
	if err != nil {
		return nil, err
	}
	pts := make([]IVPoint, n)
	for k := 0; k < n; k++ {
		v := voc * float64(k) / float64(n-1)
		i, err := a.CurrentAt(v, g)
		if err != nil {
			return nil, err
		}
		pts[k] = IVPoint{V: v, I: i, P: v * i}
	}
	return pts, nil
}
