package experiments

import (
	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

// Fig6 regenerates the paper's Fig. 6 simulation: operation of the control
// algorithm through a period of sudden shadowing, compared against the
// same system without control. Parameters follow the figure caption:
// Vwidth=0.2 V, Vq=80 mV, α=0.1 V/s, β=0.12 V/s.
func Fig6() (*Report, error) {
	const (
		duration    = 10.0
		capacitance = 47e-3
	)
	// Depth is chosen so the shadowed harvest still covers the minimal
	// OPP (the paper's Fig. 6 trough is survivable with scaling but not
	// without).
	shadow := pv.DeepShadow(4)
	mpp, err := fullSunMPP()
	if err != nil {
		return nil, err
	}

	ctrlRes, err := controllerRun(core.Fig6Params(), shadow, duration, capacitance, mpp.V, soc.MinOPP())
	if err != nil {
		return nil, err
	}

	// "Without the proposed control scheme": the platform stays at the
	// high OPP the full-sun harvest supports.
	staticOPP := soc.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}}
	staticRes, err := staticRun(staticOPP, shadow, duration, capacitance, mpp.V)
	if err != nil {
		return nil, err
	}

	ctrlRes.VC.Name = "Vc-controlled"
	staticRes.VC.Name = "Vc-uncontrolled"
	minCtrl, _ := ctrlRes.VC.Min()
	minStatic, _ := staticRes.VC.Min()

	r := &Report{
		ID:    "fig6",
		Title: "Control algorithm under sudden shadowing (simulation)",
		Description: "Full sun interrupted by a deep 3 s shadow. With control, Vc is held " +
			"above Vmin by shedding frequency and cores; without, the supply collapses.",
		Series: []*trace.Series{
			ctrlRes.VC, staticRes.VC, ctrlRes.FreqGHz,
			ctrlRes.LittleCores, ctrlRes.BigCores,
		},
	}
	r.AddMetric("min Vc with control", minCtrl, "V", "paper: stays above Vmin=4.1 V")
	r.AddMetric("min Vc without control", minStatic, "V", "paper: falls below Vmin")
	r.AddMetric("controlled survived", b2f(!ctrlRes.BrownedOut), "bool", "")
	r.AddMetric("uncontrolled survived", b2f(!staticRes.BrownedOut), "bool", "")
	r.AddMetric("threshold interrupts", float64(ctrlRes.Interrupts), "", "")
	r.AddMetric("DVFS steps", float64(ctrlRes.ControllerStats.FreqSteps), "", "")
	r.AddMetric("core toggles",
		float64(ctrlRes.ControllerStats.BigToggles+ctrlRes.ControllerStats.LittleToggles), "", "")
	r.Plots = append(r.Plots,
		trace.ASCIIPlot(ctrlRes.VC, 72, 10),
		trace.ASCIIPlot(ctrlRes.FreqGHz, 72, 8))
	return r, nil
}
