package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pnps/internal/batch"
	"pnps/internal/coord"
	"pnps/internal/scenario"
	"pnps/internal/study"
	"pnps/internal/studycli"
)

// Config configures the simulation service.
type Config struct {
	// Tokens is the bearer-token set (see coord.RequireBearer). Empty
	// disables authentication; with tokens configured, each token is a
	// tenant whose studies draw from an independent seed namespace.
	Tokens []string
	// JobWorkers bounds concurrently executing jobs (default 2).
	JobWorkers int
	// QueueDepth bounds jobs admitted but not yet running (default 16).
	// A full queue answers 429 with Retry-After — bounded admission, so
	// a submission burst degrades into explicit backpressure instead of
	// unbounded memory growth.
	QueueDepth int
	// SimWorkers bounds per-job run concurrency (0 keeps the study
	// default, GOMAXPROCS).
	SimWorkers int
	// Engine and BatchWidth select the execution engine. Execution
	// detail only: both are excluded from cache keys because engines
	// are bit-identical by contract.
	Engine     string
	BatchWidth int
	// CacheBytes bounds the content-addressed result cache (<=0 selects
	// 64 MiB).
	CacheBytes int64
	// MaxJobs bounds retained job records (default 256). Queued and
	// running jobs are never pruned; beyond the bound the oldest
	// finished jobs are forgotten first.
	MaxJobs int
	// RetryAfter is the backoff hint answered with a 429 (default 1s).
	RetryAfter time.Duration
	// Logf, when non-nil, receives service diagnostics.
	Logf func(format string, args ...any)

	// startHook, when non-nil, runs just before a job leaves the queue
	// and starts executing — the seam backpressure tests use to hold
	// workers busy deterministically.
	startHook func(j *Job)
	// cache, when non-nil, replaces the server's own store — the seam
	// cache tests use to point a second server (with a deliberately
	// broken engine) at a populated store.
	cache *Cache
}

// Job states, as reported on the wire.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Digest is the content address of the study outcome — the
	// whole-study fingerprint digest in the submitting tenant's seed
	// namespace.
	Digest     string `json:"digest"`
	TotalTasks int    `json:"total_tasks"`
	TotalCells int    `json:"total_cells"`
	// FoldedTasks counts tasks folded into the aggregate so far —
	// cached and simulated alike.
	FoldedTasks int `json:"folded_tasks"`
	// CachedCells counts matrix cells answered from the cell cache.
	CachedCells int `json:"cached_cells"`
	// SimulatedRuns counts runs this job actually executed. A repeat
	// submission of a cached study reports zero.
	SimulatedRuns int `json:"simulated_runs"`
	// CacheHit marks a whole-study hit: the response bytes were served
	// from the store without touching the engine or the folder.
	CacheHit bool `json:"cache_hit"`
	// Marginals are the live per-axis marginal summaries at the fold
	// frontier — mid-study observability while the job runs, the final
	// marginals once it is done. Empty on whole-study cache hits (the
	// folder never runs).
	Marginals []study.Marginal `json:"marginals,omitempty"`
}

// Job is one submitted study: the serve-side execution state behind a
// JobStatus.
type Job struct {
	id     string
	tenant string
	digest string
	st     study.Study
	reps   int

	mu            sync.Mutex
	rev           int // bumped on every visible mutation; event streams poll it
	state         string
	err           string
	totalTasks    int
	totalCells    int
	foldedTasks   int
	cachedCells   int
	simulatedRuns int
	cacheHit      bool
	marginals     []study.Marginal
	artifacts     map[string][]byte // format → rendered outcome bytes
	done          chan struct{}
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, State: j.state, Error: j.err, Digest: j.digest,
		TotalTasks: j.totalTasks, TotalCells: j.totalCells,
		FoldedTasks: j.foldedTasks, CachedCells: j.cachedCells,
		SimulatedRuns: j.simulatedRuns, CacheHit: j.cacheHit,
		Marginals: append([]study.Marginal(nil), j.marginals...),
	}
}

func (j *Job) revision() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rev
}

func (j *Job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.rev++
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err.Error()
	j.rev++
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) complete(artifacts map[string][]byte) {
	j.mu.Lock()
	j.state = JobDone
	j.artifacts = artifacts
	j.rev++
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) addSimulated(delta int) {
	if delta <= 0 {
		return
	}
	j.mu.Lock()
	j.simulatedRuns += delta
	j.rev++
	j.mu.Unlock()
}

// noteFold snapshots the fold frontier after a cell lands.
func (j *Job) noteFold(cached bool, folded int, marginals []study.Marginal) {
	j.mu.Lock()
	if cached {
		j.cachedCells++
	}
	j.foldedTasks = folded
	j.marginals = marginals
	j.rev++
	j.mu.Unlock()
}

// Server is the simulation service: bounded-admission job execution in
// front of a content-addressed result store.
type Server struct {
	cfg   Config
	cache *Cache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for bounded retention
	seq      int
	queue    chan *Job
	draining bool

	workerWG sync.WaitGroup
}

// NewServer starts a service with cfg's admission bounds and cache
// budget. The job workers run until Drain/Shutdown.
func NewServer(cfg Config) *Server {
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.cache == nil {
		cfg.cache = NewCache(cfg.CacheBytes)
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.cache,
		jobs:  map[string]*Job{},
		queue: make(chan *Job, cfg.QueueDepth),
	}
	s.workerWG.Add(cfg.JobWorkers)
	for i := 0; i < cfg.JobWorkers; i++ {
		go func() {
			defer s.workerWG.Done()
			for j := range s.queue {
				s.execute(j)
			}
		}()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// CacheStats snapshots the result-store counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Drain stops admitting jobs: new submissions are answered 503 while
// queued and running jobs finish — their results land in the cache, so
// nothing accepted is lost to a restart-for-deploy.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.queue)
}

// Shutdown drains and waits for in-flight jobs, up to ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown incomplete: %w", ctx.Err())
	}
}

// WaitJob blocks until the job finishes (done or failed) and returns
// its final status.
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// TenantSeed maps a study seed into a tenant's seed namespace. Distinct
// tenants get independent streams — their runs, and therefore their
// cache entries, can never collide — while each tenant's mapping is a
// pure function of (tenant, seed), so resubmitting the same recipe is
// exactly as reproducible as running it locally. The empty tenant
// (authentication disabled) keeps the seed untouched.
func TenantSeed(seed int64, tenant string) int64 {
	if tenant == "" {
		return seed
	}
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return batch.Seed(seed^int64(h.Sum64()), 0)
}

// buildStudy turns a wire recipe into the executable, tenant-namespaced
// study this server would run.
func (s *Server) buildStudy(recipe studycli.Config, tenant string) (study.Study, error) {
	st, err := recipe.Build()
	if err != nil {
		return study.Study{}, err
	}
	st.Seed = TenantSeed(st.Seed, tenant)
	st.Workers = s.cfg.SimWorkers
	st.Engine = s.cfg.Engine
	st.BatchWidth = s.cfg.BatchWidth
	return st, nil
}

// Artifact format names, also the ?format= values of the outcome
// endpoint.
const (
	FormatJSON     = "json"
	FormatCellsCSV = "cells-csv"
	FormatRunsCSV  = "runs-csv"
)

var artifactFormats = []string{FormatJSON, FormatCellsCSV, FormatRunsCSV}

func studyKey(digest, format string) string { return "study:" + digest + ":" + format }
func cellKey(digest string) string          { return "cell:" + digest }

// renderArtifacts produces every response format from a completed
// outcome. Rendering is deterministic (fixed field order, sorted map
// keys), which is what lets the byte-identity contract extend from the
// outcome to the response body.
func renderArtifacts(out *study.StudyOutcome) (map[string][]byte, error) {
	artifacts := make(map[string][]byte, len(artifactFormats))
	for _, f := range artifactFormats {
		var buf bytes.Buffer
		var err error
		switch f {
		case FormatJSON:
			err = out.WriteJSON(&buf)
		case FormatCellsCSV:
			err = out.WriteCellsCSV(&buf)
		case FormatRunsCSV:
			err = out.WriteRunsCSV(&buf)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: rendering %s: %w", f, err)
		}
		artifacts[f] = buf.Bytes()
	}
	return artifacts, nil
}

// lookupArtifacts returns the stored whole-study artifact set, all
// formats or nothing: eviction may have taken some formats, and a
// partial hit could not serve every outcome request.
func (s *Server) lookupArtifacts(digest string) (map[string][]byte, bool) {
	artifacts := make(map[string][]byte, len(artifactFormats))
	for _, f := range artifactFormats {
		raw, ok := s.cache.Get(studyKey(digest, f))
		if !ok {
			return nil, false
		}
		artifacts[f] = raw
	}
	return artifacts, true
}

func (s *Server) storeArtifacts(digest string, artifacts map[string][]byte) {
	for _, f := range artifactFormats {
		s.cache.Put(studyKey(digest, f), artifacts[f])
	}
}

// execute runs one job off the queue.
func (s *Server) execute(j *Job) {
	if s.cfg.startHook != nil {
		s.cfg.startHook(j)
	}
	j.setState(JobRunning)
	if err := s.runJob(j); err != nil {
		s.logf("serve: job %s failed: %v", j.id, err)
		j.fail(err)
		return
	}
	s.logf("serve: job %s done (%d/%d cells cached, %d runs simulated)",
		j.id, j.status().CachedCells, j.totalCells, j.status().SimulatedRuns)
}

// runJob executes a study cell by cell: each cell is either restored
// from the content-addressed store (CellCheckpoint verifies seeds
// before anything reaches the folder) or simulated as one chunk, and
// every fresh cell's records are stored for the next study that shares
// them. With chunk size = reps, cells and chunks coincide, so the
// Folder folds mixed cached/fresh cells in canonical order and its
// outcome stays bit-identical to an unsharded Run.
func (s *Server) runJob(j *Job) error {
	st := j.st
	ids, err := st.CellIdentities()
	if err != nil {
		return err
	}
	folder, err := st.NewFolder(j.reps)
	if err != nil {
		return err
	}
	for c := range ids {
		digest, err := ids[c].Digest()
		if err != nil {
			return err
		}
		if recs, ok := s.restoreCell(st, c, digest); ok {
			cp, err := st.CellCheckpoint(c, recs)
			if err != nil {
				// A digest collision or corrupt entry: refuse the cache,
				// simulate the truth instead.
				s.logf("serve: job %s cell %d: cached records refused (%v) — simulating", j.id, c, err)
			} else if err := folder.Fold(c, cp); err != nil {
				return err
			} else {
				j.noteFold(true, folder.FoldedTasks(), folder.Marginals())
				continue
			}
		}
		cp, err := s.simulateCell(j, folder.Range(c))
		if err != nil {
			return fmt.Errorf("serve: job %s cell %d: %w", j.id, c, err)
		}
		if recs, err := st.ExtractCellRecords(cp, c); err == nil {
			if raw, err := json.Marshal(recs); err == nil {
				s.cache.Put(cellKey(digest), raw)
			}
		}
		if err := folder.Fold(c, cp); err != nil {
			return err
		}
		j.noteFold(false, folder.FoldedTasks(), folder.Marginals())
	}
	out, err := folder.Outcome()
	if err != nil {
		return err
	}
	artifacts, err := renderArtifacts(out)
	if err != nil {
		return err
	}
	s.storeArtifacts(j.digest, artifacts)
	j.complete(artifacts)
	return nil
}

// restoreCell fetches and decodes one cell's cached records.
func (s *Server) restoreCell(st study.Study, c int, digest string) ([]study.TaskRecord, bool) {
	raw, ok := s.cache.Get(cellKey(digest))
	if !ok {
		return nil, false
	}
	var recs []study.TaskRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		s.logf("serve: cell %d cache entry undecodable (%v) — simulating", c, err)
		return nil, false
	}
	return recs, true
}

// simulateCell runs one cell's repetitions through the engine, counting
// every completed run on the job. The count hangs off OnProgress — the
// engine-boundary completion callback — so it measures work the engine
// actually did, which is what the zero-work-on-repeat guarantee is
// stated against.
func (s *Server) simulateCell(j *Job, r study.TaskRange) (*study.Checkpoint, error) {
	run := j.st
	var mu sync.Mutex
	prev := 0
	run.OnProgress = func(completed, total int) {
		mu.Lock()
		delta := completed - prev
		prev = completed
		mu.Unlock()
		j.addSimulated(delta)
	}
	return run.RunChunk(context.Background(), r)
}

// Handler returns the service's HTTP API, wrapped in bearer
// authentication when tokens are configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/outcome", s.handleOutcome)
	return coord.RequireBearer(s.cfg.Tokens, mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []entry
	for _, sp := range scenario.List() {
		out = append(out, entry{Name: sp.Name, Description: sp.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

// handleSubmit admits one study: parse strictly, build in the tenant's
// namespace, answer whole-study cache hits instantly, coalesce onto an
// identical in-flight job, otherwise enqueue — or refuse with explicit
// backpressure when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	recipe, err := studycli.DecodeConfig(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tenant := coord.BearerToken(r)
	st, err := s.buildStudy(recipe, tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp, err := st.Fingerprint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	digest, err := fp.Digest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	chunks, err := st.Chunks(fp.Reps)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	// Coalesce: an identical study already queued or running becomes
	// this caller's job too — simulating it twice concurrently would
	// only race to write the same cache entries.
	for _, id := range s.order {
		prior := s.jobs[id]
		if prior != nil && prior.digest == digest && prior.tenant == tenant && !prior.finished() {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, prior.status())
			return
		}
	}
	s.seq++
	j := &Job{
		id:     fmt.Sprintf("job-%d", s.seq),
		tenant: tenant, digest: digest, st: st, reps: fp.Reps,
		state: JobQueued, totalTasks: fp.Reps * len(chunks), totalCells: len(chunks),
		done: make(chan struct{}),
	}

	if artifacts, ok := s.lookupArtifacts(digest); ok {
		// Whole-study hit: the stored bytes are bit-identical to what a
		// cold run would render, so the job is born done — no queue slot,
		// no folder, no engine.
		j.state = JobDone
		j.cacheHit = true
		j.foldedTasks = j.totalTasks
		j.cachedCells = j.totalCells
		j.artifacts = artifacts
		close(j.done)
		s.registerLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "service draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "job queue full", http.StatusTooManyRequests)
		return
	}
	s.registerLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.status())
}

// registerLocked records a job and prunes the oldest finished jobs
// beyond the retention bound. Caller holds s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if old := s.jobs[id]; old != nil && old.finished() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything retained is still in flight
		}
	}
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	// A job is visible to its submitting tenant only; leaking even the
	// existence of another tenant's job would leak what they run, so a
	// foreign ID answers exactly like an unknown one.
	if j != nil && j.tenant != coord.BearerToken(r) {
		j = nil
	}
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleEvents streams the job's status as NDJSON: one status line per
// visible change, a final line when the job finishes, then EOF. Clients
// tail it for live mid-fold marginals without polling.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() bool {
		if err := enc.Encode(j.status()); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	lastRev := j.revision()
	if !emit() {
		return
	}
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			emit()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if rev := j.revision(); rev != lastRev {
				lastRev = rev
				if !emit() {
					return
				}
			}
		}
	}
}

// handleOutcome serves a finished job's rendered outcome. The bytes are
// the job's stored artifact — on a cache hit, the very bytes the cold
// run rendered.
func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = FormatJSON
	}
	j.mu.Lock()
	state, errmsg := j.state, j.err
	artifact, ok := j.artifacts[format]
	j.mu.Unlock()
	switch {
	case state == JobFailed:
		http.Error(w, "job failed: "+errmsg, http.StatusConflict)
	case state != JobDone:
		http.Error(w, "job not complete", http.StatusNotFound)
	case !ok:
		http.Error(w, fmt.Sprintf("unknown format %q (want %v)", format, artifactFormats), http.StatusBadRequest)
	default:
		if format == FormatJSON {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/csv")
		}
		w.Write(artifact)
	}
}
