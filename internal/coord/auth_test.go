package coord

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestRequireBearer(t *testing.T) {
	var gotTenant string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTenant = BearerToken(r)
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(RequireBearer([]string{"alpha", "beta"}, inner))
	defer srv.Close()

	get := func(t *testing.T, auth string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No header, empty scheme, wrong scheme: 401 with a challenge.
	for _, auth := range []string{"", "Basic YWJjOmRlZg==", "Bearer ", "alpha"} {
		resp := get(t, auth)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("auth %q: HTTP %d, want 401", auth, resp.StatusCode)
		}
		if !strings.Contains(resp.Header.Get("WWW-Authenticate"), "Bearer") {
			t.Fatalf("auth %q: missing WWW-Authenticate challenge", auth)
		}
	}
	// Well-formed but unknown token: 403.
	if resp := get(t, "Bearer gamma"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown token: HTTP %d, want 403", resp.StatusCode)
	}
	// A prefix of a real token must not pass.
	if resp := get(t, "Bearer alph"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("token prefix: HTTP %d, want 403", resp.StatusCode)
	}
	// Known tokens pass and surface as the tenant identity.
	for _, tok := range []string{"alpha", "beta"} {
		if resp := get(t, "Bearer "+tok); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("token %q: HTTP %d, want 204", tok, resp.StatusCode)
		}
		if gotTenant != tok {
			t.Fatalf("BearerToken = %q, want %q", gotTenant, tok)
		}
	}
}

func TestRequireBearerDisabled(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if BearerToken(r) != "" {
			t.Error("tenant identity without auth configured")
		}
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(RequireBearer(nil, inner))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("open server: HTTP %d, want 204", resp.StatusCode)
	}
}

func TestSplitTokens(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a, b ,,c", []string{"a", "b", "c"}},
	} {
		if got := SplitTokens(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitTokens(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestWorkerBearerToken runs the full worker loop against a
// token-guarded coordinator: without the token every request is
// refused (terminal 4xx, no retry storm), with it the study completes.
func TestWorkerBearerToken(t *testing.T) {
	s := testServer(t, Config{ChunkSize: 2})
	srv := httptest.NewServer(RequireBearer([]string{"secret"}, s.Handler()))
	defer srv.Close()

	bare := &Worker{URL: srv.URL, Name: "anon", BuildStudy: buildFromRecipe}
	if err := bare.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "missing bearer token") {
		t.Fatalf("unauthenticated worker error = %v, want bearer refusal", err)
	}
	wrong := &Worker{URL: srv.URL, Name: "spoof", BuildStudy: buildFromRecipe, Token: "guess"}
	if err := wrong.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "unknown bearer token") {
		t.Fatalf("wrong-token worker error = %v, want bearer refusal", err)
	}

	authed := &Worker{URL: srv.URL, Name: "w1", BuildStudy: buildFromRecipe, Token: "secret"}
	if err := authed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	if _, err := s.Outcome(); err != nil {
		t.Fatal(err)
	}
}
