package ode

import (
	"fmt"
	"testing"
)

// benchBatchRHS is a vectorised derivative evaluator for the benchmark
// system: one call sweeps every stepping lane, the way a production
// BatchRHS (e.g. the simulation engine's lockstep PV solver) amortises
// per-lane dispatch.
type benchBatchRHS struct{ k float64 }

func (b benchBatchRHS) EvalLanes(ts []float64, ys, dys [][]float64, lanes []int) {
	for j := range lanes {
		y, dydt := ys[j], dys[j]
		dydt[0] = y[1]
		dydt[1] = -b.k*y[0] - 0.5*y[1]
	}
}

// BenchmarkBatchRound measures one lockstep Round per iteration across
// batch widths, in both evaluation modes: rhs=batch routes all lanes
// through a single EvalLanes call per stage (the vectorised kernels'
// full path), rhs=scalar falls back to one RHS closure call per lane
// per stage. Zero allocs/op is the steady-state contract the pnbench
// -compare gate enforces.
func BenchmarkBatchRound(b *testing.B) {
	const dim = 2
	f := stiffish(30)
	for _, w := range []int{1, 8, 16} {
		for _, mode := range []string{"batch", "scalar"} {
			b.Run(fmt.Sprintf("w=%d/rhs=%s", w, mode), func(b *testing.B) {
				bi := NewBatchIntegrator(w, dim)
				bi.SetBatchRHS(benchBatchRHS{k: 30})
				ySlab := make([]float64, w*dim)
				// A fixed step over a long span keeps every round a plain
				// accepted step; lanes are re-armed if b.N outlasts the span.
				opts := Options{RTol: 1e-6, ATol: 1e-9, InitialStep: 0.02, MaxStep: 0.02}
				arm := func() {
					for l := 0; l < w; l++ {
						y := ySlab[l*dim : (l+1)*dim : (l+1)*dim]
						y[0], y[1] = 1, 0
						var err error
						if mode == "batch" {
							err = bi.StartBatched(l, f, 0, 1e6, y, opts)
						} else {
							err = bi.Start(l, f, 0, 1e6, y, opts)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				}
				arm()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if bi.Round() == 0 {
						b.StopTimer()
						for l := 0; l < w; l++ {
							if _, err := bi.Take(l); err != nil {
								b.Fatal(err)
							}
						}
						arm()
						b.StartTimer()
					}
				}
			})
		}
	}
}
