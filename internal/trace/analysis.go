package trace

import (
	"fmt"
	"math"
)

// Derivative returns a new series of finite-difference slopes dValue/dt
// (central differences inside, one-sided at the ends). It needs at least
// two samples with distinct times.
func (s *Series) Derivative() (*Series, error) {
	n := s.Len()
	if n < 2 {
		return nil, fmt.Errorf("trace: Derivative needs >=2 samples, got %d", n)
	}
	out := NewSeries(s.Name+"'", s.Unit+"/s")
	slope := func(i, j int) float64 {
		dt := s.times[j] - s.times[i]
		if dt == 0 {
			return 0
		}
		return (s.values[j] - s.values[i]) / dt
	}
	out.Append(s.times[0], slope(0, 1))
	for i := 1; i < n-1; i++ {
		out.Append(s.times[i], slope(i-1, i+1))
	}
	out.Append(s.times[n-1], slope(n-2, n-1))
	return out, nil
}

// MovingAverage returns a new series smoothed with a centred time window
// of the given width in seconds (samples inside [t−w/2, t+w/2] averaged
// uniformly).
func (s *Series) MovingAverage(window float64) (*Series, error) {
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	if window <= 0 {
		return nil, fmt.Errorf("trace: window must be positive, got %g", window)
	}
	out := NewSeries(s.Name+"~", s.Unit)
	half := window / 2
	lo := 0
	hi := 0
	var sum float64
	var cnt int
	for i := 0; i < s.Len(); i++ {
		t := s.times[i]
		for hi < s.Len() && s.times[hi] <= t+half {
			sum += s.values[hi]
			cnt++
			hi++
		}
		for lo < s.Len() && s.times[lo] < t-half {
			sum -= s.values[lo]
			cnt--
			lo++
		}
		if cnt > 0 {
			out.Append(t, sum/float64(cnt))
		} else {
			out.Append(t, s.values[i])
		}
	}
	return out, nil
}

// RMS returns the time-weighted root-mean-square of the signal (zero-order
// hold), e.g. ripple magnitude for a voltage series.
func (s *Series) RMS() (float64, error) {
	if s.Len() == 0 {
		return 0, ErrEmpty
	}
	if s.Len() == 1 {
		return math.Abs(s.values[0]), nil
	}
	var acc, dur float64
	for i := 0; i+1 < s.Len(); i++ {
		dt := s.times[i+1] - s.times[i]
		acc += s.values[i] * s.values[i] * dt
		dur += dt
	}
	if dur == 0 {
		return math.Abs(s.values[0]), nil
	}
	return math.Sqrt(acc / dur), nil
}

// Detrended returns a copy with the time-weighted mean subtracted —
// useful before RMS to measure ripple about the operating point.
func (s *Series) Detrended() (*Series, error) {
	mean, err := s.TimeMean()
	if err != nil {
		return nil, err
	}
	out := NewSeries(s.Name+"-detrended", s.Unit)
	for i := 0; i < s.Len(); i++ {
		out.Append(s.times[i], s.values[i]-mean)
	}
	return out, nil
}

// CrossingCount returns how many times the signal crosses the given level
// (either direction), counting each sign change of (value − level).
func (s *Series) CrossingCount(level float64) int {
	count := 0
	prevSign := 0
	for _, v := range s.values {
		sign := 0
		if v > level {
			sign = 1
		} else if v < level {
			sign = -1
		}
		if sign != 0 && prevSign != 0 && sign != prevSign {
			count++
		}
		if sign != 0 {
			prevSign = sign
		}
	}
	return count
}
