package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// 129-tap MCP4131 over the configured range.
	if cfg.Taps != 129 {
		t.Errorf("taps = %d, want 129", cfg.Taps)
	}
	// Resolution must be finer than the paper's Vq (47.9 mV) or the
	// controller cannot express its threshold slides.
	if r := cfg.Resolution(); r > 0.0479/2 {
		t.Errorf("resolution %.1f mV too coarse for Vq", r*1e3)
	}
}

func TestConfigValidation(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.VMax = c.VMin }),
		mut(func(c *Config) { c.Taps = 1 }),
		mut(func(c *Config) { c.PropagationDelay = -1 }),
		mut(func(c *Config) { c.ISRCPUSeconds = -1 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQuantizeSnapsToGrid(t *testing.T) {
	cfg := DefaultConfig()
	step := cfg.Resolution()
	for _, v := range []float64{4.0, 4.73, 5.3, 5.69} {
		q := cfg.Quantize(v)
		if math.Abs(q-v) > step/2+1e-12 {
			t.Errorf("Quantize(%g) = %g, further than half a step", v, q)
		}
		// Must be an exact grid point.
		k := (q - cfg.VMin) / step
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Errorf("Quantize(%g) = %g not on grid", v, q)
		}
	}
}

func TestQuantizeClamps(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Quantize(0) != cfg.VMin {
		t.Error("below-range not clamped to VMin")
	}
	if cfg.Quantize(99) != cfg.VMax {
		t.Error("above-range not clamped to VMax")
	}
}

func TestQuickQuantizeIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 10)
		q := cfg.Quantize(v)
		return cfg.Quantize(q) == q && q >= cfg.VMin && q <= cfg.VMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChannelProgramming(t *testing.T) {
	ch, err := NewChannel("Vlow", DefaultConfig(), 5.2)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Name() != "Vlow" {
		t.Error("name lost")
	}
	actual, cpu := ch.Program(5.31)
	if cpu <= 0 {
		t.Error("SPI programming should cost CPU time")
	}
	if actual != ch.Threshold() {
		t.Error("returned threshold disagrees with state")
	}
	if ch.Updates() != 1 {
		t.Errorf("updates = %d", ch.Updates())
	}
	if ch.InterruptDelay() <= 0 {
		t.Error("interrupt delay must be positive")
	}
}

func TestHardwareAccounting(t *testing.T) {
	hw, err := NewHardware(DefaultConfig(), 5.4, 5.2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1.61 mW for the two channels.
	if p := hw.PowerWatts(); math.Abs(p-1.61e-3) > 0.1e-3 {
		t.Errorf("monitor power %.2f mW, want 1.61", p*1e3)
	}
	if hw.High.Threshold() <= hw.Low.Threshold() {
		t.Error("threshold ordering broken")
	}
	hw.RecordInterrupt()
	hw.RecordInterrupt()
	hw.RecordProgramming()
	if hw.Interrupts() != 2 {
		t.Errorf("interrupts = %d", hw.Interrupts())
	}
	if hw.CPUSeconds() <= 0 {
		t.Error("CPU accounting empty")
	}
	// Overhead: the paper's run measured ≈0.104%; two ISRs over an hour
	// is far below that.
	if ov := hw.CPUOverhead(3600); ov <= 0 || ov > 1e-4 {
		t.Errorf("overhead = %g", ov)
	}
	if hw.CPUOverhead(0) != 0 {
		t.Error("zero-duration overhead should be 0")
	}
}

func TestHardwareBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Taps = 0
	if _, err := NewHardware(cfg, 5.4, 5.2); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPaperOverheadMagnitude(t *testing.T) {
	// Reconstruct the paper's Fig. 15 arithmetic: at the interrupt rate
	// seen in our Fig. 12 run (≈12/s), ISR + two SPI updates per event
	// should land near 0.1% CPU.
	cfg := DefaultConfig()
	perEvent := cfg.ISRCPUSeconds + 2*cfg.SPICPUSeconds
	overhead := 12.0 * perEvent // per second of wall time
	if overhead < 0.0005 || overhead > 0.003 {
		t.Errorf("per-second overhead %g outside the paper's 0.1%% order", overhead)
	}
}
