// Package buffer models the conventional energy-storage alternative the
// paper argues against: supercapacitor banks sized for *energy-neutral*
// operation (consume over a period exactly what is harvested), including
// their parasitic leakage (Weddell et al., cited as [5]).
//
// It also provides the generic minimum-capacitance search used by the
// "buffers" experiment: binary-searching the smallest buffer that keeps a
// given scenario alive, which quantifies the paper's headline claim that
// power-neutral scaling shrinks the required buffer from farads to tens
// of millifarads.
package buffer

import (
	"fmt"
	"math"
)

// Supercap is a supercapacitor bank with series resistance and a
// leakage path, the standard equivalent circuit for harvesting buffers.
type Supercap struct {
	// Farads is the bank capacitance.
	Farads float64
	// ESROhms is the equivalent series resistance.
	ESROhms float64
	// LeakOhms models self-discharge as a parallel resistance.
	LeakOhms float64
	// VMax is the rated voltage.
	VMax float64
}

// Validate checks the parameters.
func (s Supercap) Validate() error {
	switch {
	case s.Farads <= 0:
		return fmt.Errorf("buffer: capacitance must be positive, got %g", s.Farads)
	case s.ESROhms < 0:
		return fmt.Errorf("buffer: ESR must be non-negative, got %g", s.ESROhms)
	case s.LeakOhms <= 0:
		return fmt.Errorf("buffer: leakage resistance must be positive, got %g", s.LeakOhms)
	case s.VMax <= 0:
		return fmt.Errorf("buffer: rated voltage must be positive, got %g", s.VMax)
	}
	return nil
}

// Energy returns the stored energy at voltage v, joules.
func (s Supercap) Energy(v float64) float64 { return 0.5 * s.Farads * v * v }

// UsableEnergy returns the energy released discharging from vFrom to vTo.
func (s Supercap) UsableEnergy(vFrom, vTo float64) float64 {
	return s.Energy(vFrom) - s.Energy(vTo)
}

// LeakagePower returns the instantaneous self-discharge power at voltage
// v, watts.
func (s Supercap) LeakagePower(v float64) float64 { return v * v / s.LeakOhms }

// DailyLeakageEnergy approximates the energy lost to self-discharge over
// a day at roughly constant voltage, joules.
func (s Supercap) DailyLeakageEnergy(v float64) float64 {
	return s.LeakagePower(v) * 24 * 3600
}

// EnergyNeutralSizing computes the buffer an energy-neutral design needs:
// the bank must ride through the worst cumulative harvest deficit of the
// period while swinging between vMax and vMin.
//
// harvest and load are power samples (watts) at a fixed period dt
// (seconds); the two slices must be equally long.
func EnergyNeutralSizing(harvest, load []float64, dt, vMax, vMin float64) (farads float64, deficit float64, err error) {
	if len(harvest) != len(load) || len(harvest) == 0 {
		return 0, 0, fmt.Errorf("buffer: harvest/load length mismatch (%d vs %d)", len(harvest), len(load))
	}
	if dt <= 0 {
		return 0, 0, fmt.Errorf("buffer: non-positive dt %g", dt)
	}
	if !(vMax > vMin) || vMin < 0 {
		return 0, 0, fmt.Errorf("buffer: voltage swing [%g,%g] invalid", vMin, vMax)
	}
	// Worst cumulative deficit of (load − harvest).
	var cum, worst float64
	for i := range harvest {
		cum += (load[i] - harvest[i]) * dt
		if cum < 0 {
			cum = 0 // surplus refills the buffer (clamped at full)
		}
		if cum > worst {
			worst = cum
		}
	}
	if worst == 0 {
		return 0, 0, nil
	}
	denom := 0.5 * (vMax*vMax - vMin*vMin)
	return worst / denom, worst, nil
}

// SurvivalFunc reports whether a scenario survives with the given buffer
// capacitance. It must be monotone in capacitance (more buffer never
// hurts) for MinCapacitance to be meaningful.
type SurvivalFunc func(farads float64) (bool, error)

// MinCapacitance binary-searches the smallest capacitance in [lo, hi]
// for which survive returns true, to within relTol (e.g. 0.05 = 5%). It
// returns an error when even hi fails or lo already suffices (bracket
// misuse).
func MinCapacitance(survive SurvivalFunc, lo, hi, relTol float64) (float64, error) {
	if !(hi > lo) || lo <= 0 {
		return 0, fmt.Errorf("buffer: bracket [%g,%g] invalid", lo, hi)
	}
	if relTol <= 0 {
		relTol = 0.05
	}
	okHi, err := survive(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return 0, fmt.Errorf("buffer: scenario dies even with %g F", hi)
	}
	okLo, err := survive(lo)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil // already survives at the lower bracket
	}
	for hi/lo > 1+relTol {
		mid := math.Sqrt(lo * hi) // geometric: the range spans decades
		ok, err := survive(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
