package study

import (
	"context"
	"fmt"
	"sync"

	"pnps/internal/batch"
	"pnps/internal/scenario"
	"pnps/internal/sim"
	"pnps/internal/stats"
)

// RunMetrics are the scalar outcomes of one run — the complete input of
// study aggregation, small enough to checkpoint by the million. Every
// summary a study reports derives from these (plus the optional dwell
// histogram), so outcomes rebuilt from checkpoints are bit-identical to
// in-process runs.
type RunMetrics struct {
	// Survived is true when the run completed without a brownout.
	Survived bool `json:"survived"`
	// Brownouts counts supply collapses.
	Brownouts int `json:"brownouts"`
	// Stability is the fraction of the run within ±5% of the target
	// voltage (the paper's headline metric), from the online band.
	Stability float64 `json:"stability_pct5"`
	// Instructions is total completed work.
	Instructions float64 `json:"instructions"`
	// LifetimeSeconds is accumulated alive time.
	LifetimeSeconds float64 `json:"lifetime_s"`
	// FinalVC is the supply voltage at the end of the run.
	FinalVC float64 `json:"final_vc_v"`
	// MinVC is the supply-voltage minimum, from the online envelope.
	MinVC float64 `json:"min_vc_v"`
	// StorageEnergyDeltaJ is the stored-energy change (end − start).
	StorageEnergyDeltaJ float64 `json:"storage_denergy_j"`
}

// metricsFrom extracts the aggregation scalars from one run result.
func metricsFrom(res *sim.Result) RunMetrics {
	return RunMetrics{
		Survived:            !res.BrownedOut,
		Brownouts:           res.Brownouts,
		Stability:           res.StabilityWithin(summaryBand),
		Instructions:        res.Instructions,
		LifetimeSeconds:     res.LifetimeSeconds,
		FinalVC:             res.FinalVC,
		MinVC:               res.VCEnvelope.Min,
		StorageEnergyDeltaJ: res.StorageEnergyEndJ - res.StorageEnergyStartJ,
	}
}

// TaskResult is one completed ledger task. In-process runs carry the
// full simulation Result (and the perturbed Spec); results restored
// from a Checkpoint carry only the metrics and histogram — which is all
// aggregation consumes, keeping the two paths bit-identical.
type TaskResult struct {
	// Task locates the run in the ledger.
	Task Task
	// Group is the aggregation label assigned by Study.Group ("" when
	// ungrouped).
	Group string
	// Spec is the (possibly perturbed) scenario the run executed (zero
	// for checkpoint-restored results).
	Spec scenario.Spec
	// Metrics are the scalar outcomes aggregation runs on.
	Metrics RunMetrics
	// Result is the full simulation outcome (nil for checkpoint-restored
	// results).
	Result *sim.Result
	// Hist is the per-run dwell-time supply histogram (VCHistBins > 0).
	Hist *stats.Histogram
}

// runOutput is what one executed task contributes back: the full run
// result plus its dwell histogram.
type runOutput struct {
	res  *sim.Result
	hist *stats.Histogram
}

// failTask wraps a task failure with its ledger identity and, under
// FailFast, cancels the remaining tasks.
func (st Study) failTask(cancel context.CancelFunc, t Task, err error) error {
	if st.FailFast {
		cancel()
	}
	return fmt.Errorf("study task %d (cell %d, seed %d): %w", t.Index, t.Cell, t.Seed, err)
}

// instrument attaches the per-run online observers to an assembled
// config: stability bands always (appended to any spec-level bands), the
// dwell histogram when configured. Fresh slices per run — specs fan out
// across workers and must not share mutable state. Returns the run's
// histogram (nil when the study runs without one).
func (st Study) instrument(cfg *sim.Config, bands []float64) (*stats.Histogram, error) {
	cfg.StabilityBands = append(append([]float64(nil), cfg.StabilityBands...), bands...)
	if st.VCHistBins <= 0 {
		return nil, nil
	}
	tis, err := sim.NewTimeInStateObserver(sim.ChanVC, st.VCHistLo, st.VCHistHi, st.VCHistBins)
	if err != nil {
		return nil, err
	}
	cfg.Observers = append(append([]sim.Observer(nil), cfg.Observers...), tis)
	return tis.Hist, nil
}

// runTasks executes the given ledger tasks over the configured engine.
// Specs, seeds and group labels are derived up front in task order,
// deterministically; results come back in task order, and the batched
// engine is bit-identical to the scalar one by construction, so
// everything downstream is bit-identical for any Workers value and
// either engine.
func (st Study) runTasks(ctx context.Context, p *plan, tasks []Task) ([]TaskResult, error) {
	eng, ok := sim.EngineFor(st.Engine, st.BatchWidth)
	if !ok {
		return nil, fmt.Errorf("study: unknown engine %q", st.Engine)
	}
	bands := st.stabilityBands()
	results := make([]TaskResult, len(tasks))
	for i, t := range tasks {
		sp, group := st.taskSpec(p, t)
		results[i] = TaskResult{Task: t, Group: group, Spec: sp}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var outs []runOutput
	var err error
	if eng.Width() > 1 {
		outs, err = st.runTasksBatched(ctx, cancel, eng, results, bands)
	} else {
		outs, err = st.runTasksScalar(ctx, cancel, results, bands)
	}
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Result = outs[i].res
		results[i].Metrics = metricsFrom(outs[i].res)
		results[i].Hist = outs[i].hist
	}
	return results, nil
}

// runTasksScalar fans individual tasks over the worker pool, one
// sim.Run per task — the reference execution path.
func (st Study) runTasksScalar(ctx context.Context, cancel context.CancelFunc, results []TaskResult, bands []float64) ([]runOutput, error) {
	return batch.Map(ctx, results, func(_ context.Context, r TaskResult) (runOutput, error) {
		fail := func(err error) (runOutput, error) {
			return runOutput{}, st.failTask(cancel, r.Task, err)
		}
		cfg, err := r.Spec.Assemble(r.Task.Seed)
		if err != nil {
			return fail(err)
		}
		var out runOutput
		if out.hist, err = st.instrument(&cfg, bands); err != nil {
			return fail(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return fail(err)
		}
		out.res = res
		return out, nil
	}, batch.Options{Workers: st.Workers, OnProgress: st.OnProgress})
}

// runTasksBatched executes the ledger in lockstep lane packs of the
// engine's width. Consecutive ledger tasks pack together — the ledger is
// cell-major (task index = cell*Reps + rep), so a cell's repetitions
// share a pack and therefore a batch's shared assembly and solver
// caches; packs fan out over the worker pool exactly as scalar tasks do.
// Results scatter back in task order, and each lane is bit-identical to
// its scalar run, so the outcome does not depend on the engine, the
// width or the worker count.
func (st Study) runTasksBatched(ctx context.Context, cancel context.CancelFunc, eng sim.Engine, results []TaskResult, bands []float64) ([]runOutput, error) {
	w := eng.Width()
	type pack struct{ lo, hi int }
	packs := make([]pack, 0, (len(results)+w-1)/w)
	for lo := 0; lo < len(results); lo += w {
		packs = append(packs, pack{lo, min(lo+w, len(results))})
	}
	var mu sync.Mutex
	completed := 0
	outs, err := batch.Map(ctx, packs, func(_ context.Context, g pack) ([]runOutput, error) {
		rs := results[g.lo:g.hi]
		fail := func(lane int, err error) ([]runOutput, error) {
			return nil, st.failTask(cancel, rs[lane].Task, err)
		}
		specs := make([]scenario.Spec, len(rs))
		seeds := make([]int64, len(rs))
		for i := range rs {
			specs[i], seeds[i] = rs[i].Spec, rs[i].Task.Seed
		}
		cfgs, err := scenario.AssembleGroup(specs, seeds)
		if err != nil {
			// Group assembly reports one error for the whole pack;
			// re-assemble scalar-side to attribute it to its task.
			for i := range rs {
				if _, aerr := rs[i].Spec.Assemble(rs[i].Task.Seed); aerr != nil {
					return fail(i, aerr)
				}
			}
			return fail(0, err)
		}
		packOuts := make([]runOutput, len(rs))
		for i := range cfgs {
			if packOuts[i].hist, err = st.instrument(&cfgs[i], bands); err != nil {
				return fail(i, err)
			}
		}
		ress, errs := eng.RunGroup(cfgs)
		for i, err := range errs {
			if err != nil {
				return fail(i, err)
			}
		}
		for i := range ress {
			packOuts[i].res = ress[i]
		}
		if st.OnProgress != nil {
			mu.Lock()
			completed += len(rs)
			st.OnProgress(completed, len(results))
			mu.Unlock()
		}
		return packOuts, nil
	}, batch.Options{Workers: st.Workers})
	if err != nil {
		return nil, err
	}
	flat := make([]runOutput, 0, len(results))
	for _, po := range outs {
		flat = append(flat, po...)
	}
	return flat, nil
}

// Run executes the whole study matrix and aggregates it. Runs are
// independent simulations fanned over the batch engine; a failing run
// fails the study (index-ordered error aggregation) and cancelling ctx
// abandons unstarted runs. The outcome is bit-identical for any
// Workers value and to any sharded execution of the same study.
func (st Study) Run(ctx context.Context) (*StudyOutcome, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	results, err := st.runTasks(ctx, p, p.allTasks(st))
	if err != nil {
		return nil, err
	}
	return st.outcomeFrom(p, results)
}

// RunShard executes shard i of n — the strided slice of the task ledger
// with index % n == i — and returns its Checkpoint. Shards of the same
// study merge back into one complete checkpoint (see Checkpoint.Merge)
// whose Outcome is bit-identical to an unsharded Run, whatever the
// shard count or worker counts involved.
func (st Study) RunShard(ctx context.Context, i, n int) (*Checkpoint, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	tasks, err := p.shardTasks(st, i, n)
	if err != nil {
		return nil, err
	}
	results, err := st.runTasks(ctx, p, tasks)
	if err != nil {
		return nil, err
	}
	return st.checkpointFrom(p, results)
}

// Resume executes every ledger task the checkpoint has not completed
// and returns the union checkpoint (the input is not mutated). Resuming
// a complete checkpoint is a no-op copy. The checkpoint must belong to
// this study (same fingerprint).
func (st Study) Resume(ctx context.Context, cp *Checkpoint) (*Checkpoint, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.checkFingerprint(p, cp); err != nil {
		return nil, err
	}
	done := cp.completedSet()
	var tasks []Task
	for t := 0; t < p.total; t++ {
		if !done[t] {
			tasks = append(tasks, p.task(st, t))
		}
	}
	results, err := st.runTasks(ctx, p, tasks)
	if err != nil {
		return nil, err
	}
	fresh, err := st.checkpointFrom(p, results)
	if err != nil {
		return nil, err
	}
	merged := cp.clone()
	if err := merged.Merge(fresh); err != nil {
		return nil, err
	}
	return merged, nil
}
