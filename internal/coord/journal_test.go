package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// journalPath returns a per-test journal location.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "study.journal")
}

// TestJournalRoundTrip: records appended to a journal come back intact
// from a reopen, in order, and the reopened journal keeps appending.
func TestJournalRoundTrip(t *testing.T) {
	st, err := testRecipe().Build()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	path := journalPath(t)
	j, replay, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != 0 || replay.TornBytes != 0 {
		t.Fatalf("fresh journal replayed %+v", replay)
	}
	recs := []JournalRecord{
		{Chunk: 2, LeaseID: "lease-1", Worker: "w0", Checkpoint: json.RawMessage(`{"a":1}`)},
		{Chunk: 0, LeaseID: "lease-2", Worker: "w1", Checkpoint: json.RawMessage(`{"b":[2,3]}`)},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replay, err := OpenJournal(path, fp, 8, 2, 4, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if replay.TornBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", replay.TornBytes)
	}
	if len(replay.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(replay.Records), len(recs))
	}
	for i, got := range replay.Records {
		want := recs[i]
		if got.Chunk != want.Chunk || got.LeaseID != want.LeaseID || got.Worker != want.Worker ||
			!bytes.Equal(got.Checkpoint, want.Checkpoint) {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, got, want)
		}
	}
	// The reopened journal appends past the replayed tail.
	if err := j2.Append(JournalRecord{Chunk: 1, Checkpoint: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, replay, err = func() (*Journal, *JournalReplay, error) {
		j, r, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
		if err == nil {
			j.Close()
		}
		return j, r, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != 3 || replay.Records[2].Chunk != 1 {
		t.Fatalf("append-after-reopen lost: %+v", replay.Records)
	}
}

// TestJournalTornTail: a file truncated mid-record (the kill -9 case)
// replays every whole record, reports and truncates the torn bytes, and
// the journal keeps working.
func TestJournalTornTail(t *testing.T) {
	st, _ := testRecipe().Build()
	fp, _ := st.Fingerprint()
	path := journalPath(t)
	j, _, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Chunk: 0, Checkpoint: json.RawMessage(`{"keep":"me"}`)}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Chunk: 1, Checkpoint: json.RawMessage(`{"torn":"away"}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	full, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point inside the second record — from losing its
	// trailing CRC byte to keeping only one byte of its length prefix —
	// must recover the first record and drop the torn one.
	for _, cut := range []int64{full.Size() - 1, full.Size() - 5, whole.Size() + 5, whole.Size() + 1} {
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		j, replay, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(replay.Records) != 1 || replay.Records[0].Chunk != 0 {
			t.Fatalf("cut at %d: replayed %+v, want just chunk 0", cut, replay.Records)
		}
		if want := cut - whole.Size(); replay.TornBytes != want {
			t.Fatalf("cut at %d: reported %d torn bytes, want %d", cut, replay.TornBytes, want)
		}
		// The torn tail was truncated in place: an append then a replay
		// yields exactly the surviving record plus the new one.
		if err := j.Append(JournalRecord{Chunk: 3, Checkpoint: json.RawMessage(`{}`)}); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j, replay, err = OpenJournal(path, fp, 8, 2, 4, SyncAlways)
		if err != nil {
			t.Fatalf("reopen after healed cut at %d: %v", cut, err)
		}
		if len(replay.Records) != 2 || replay.Records[1].Chunk != 3 || replay.TornBytes != 0 {
			t.Fatalf("healed journal at cut %d replayed %+v (torn %d)", cut, replay.Records, replay.TornBytes)
		}
		j.Close()
		// Restore the full two-record file for the next truncation point.
		rebuild, _, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, whole.Size()); err != nil {
			t.Fatal(err)
		}
		if _, err := rebuild.f.Seek(whole.Size(), 0); err != nil {
			t.Fatal(err)
		}
		if err := rebuild.Append(JournalRecord{Chunk: 1, Checkpoint: json.RawMessage(`{"torn":"away"}`)}); err != nil {
			t.Fatal(err)
		}
		rebuild.Close()
	}
}

// TestJournalRefusesCorruption: a bit flipped inside a durable record is
// not a torn tail — replay must refuse with a CRC diagnostic rather
// than silently dropping once-durable data.
func TestJournalRefusesCorruption(t *testing.T) {
	st, _ := testRecipe().Build()
	fp, _ := st.Fingerprint()
	path := journalPath(t)
	j, _, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd, _ := j.f.Seek(0, 1)
	for c := 0; c < 2; c++ {
		if err := j.Append(JournalRecord{Chunk: c, Checkpoint: json.RawMessage(`{"payload":"0123456789"}`)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerEnd+10] ^= 0x40 // flip a bit inside record 0's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenJournal(path, fp, 8, 2, 4, SyncAlways)
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("corrupt record opened: %v", err)
	}
}

// TestJournalRefusesWrongStudy: fingerprint and geometry mismatches are
// refused with diagnostics — a journal never folds into a study it was
// not cut from.
func TestJournalRefusesWrongStudy(t *testing.T) {
	st, _ := testRecipe().Build()
	fp, _ := st.Fingerprint()
	path := journalPath(t)
	j, _, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	skewed := testRecipe()
	skewed.Seed++
	stSkew, _ := skewed.Build()
	fpSkew, _ := stSkew.Fingerprint()
	if _, _, err := OpenJournal(path, fpSkew, 8, 2, 4, SyncAlways); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint-skewed journal opened: %v", err)
	}
	if _, _, err := OpenJournal(path, fp, 8, 4, 2, SyncAlways); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("geometry-skewed journal opened: %v", err)
	}
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, fp, 8, 2, 4, SyncAlways); err == nil {
		t.Fatal("garbage file opened as journal")
	}
}

// TestParseSyncPolicy pins the -fsync flag grammar.
func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "Always": SyncAlways,
		"off": SyncOff, "none": SyncOff,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("fsyncgate"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestServerJournalRecovery is the restart contract at the Server level:
// run part of a study against a journalling coordinator, abandon it
// (kill -9 — no drain, no close), build a fresh Server on the same
// journal, and the recovered server must resume at the durable frontier
// and finish with an outcome bit-identical to a single-process Run.
func TestServerJournalRecovery(t *testing.T) {
	refStudy, err := testRecipe().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refStudy.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	path := journalPath(t)
	cfg := Config{ChunkSize: 2, Logf: t.Logf, JournalPath: path}
	s1 := testServer(t, cfg)

	// Fold 2 of the 4 chunks, then "crash": s1 is simply abandoned with
	// its journal file open, exactly like a SIGKILL.
	for i := 0; i < 2; i++ {
		lease, cp := leaseAndRun(t, s1, "pre-crash")
		if code, res := s1.submit(submission(t, "pre-crash", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK {
			t.Fatalf("pre-crash submit: HTTP %d %q", code, res.Error)
		}
	}

	s2 := testServer(t, cfg)
	st := s2.Status()
	if st.DoneChunks != 2 || st.FoldedTasks != 4 {
		t.Fatalf("recovered server at %d chunks / %d tasks, want 2 / 4", st.DoneChunks, st.FoldedTasks)
	}

	// Recovery must lease only the missing chunks — and the pre-crash
	// worker's replayed submission (it never saw its 200) must be
	// idempotent on the recovered server too.
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		lease, cp := leaseAndRun(t, s2, "post-crash")
		if seen[lease.Chunk] {
			t.Fatalf("chunk %d leased twice after recovery", lease.Chunk)
		}
		seen[lease.Chunk] = true
		if code, res := s2.submit(submission(t, "post-crash", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK {
			t.Fatalf("post-crash submit: HTTP %d %q", code, res.Error)
		}
	}
	if l := s2.lease("post-crash"); !l.Done {
		t.Fatalf("study not done after recovery completed the missing chunks: %+v", l)
	}
	got, err := s2.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "journal-recovered run", ref, got)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third incarnation finds every chunk durable: done before any
	// lease is issued.
	s3 := testServer(t, cfg)
	select {
	case <-s3.Done():
	default:
		t.Fatal("fully-journalled study not done on open")
	}
	got3, err := s3.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "fully-journalled reopen", ref, got3)
	s3.Close()
}

// TestServerDrain: a draining server grants no leases but still accepts
// (and journals) in-flight submissions.
func TestServerDrain(t *testing.T) {
	s := testServer(t, Config{ChunkSize: 2, Logf: t.Logf, JournalPath: journalPath(t)})
	lease, cp := leaseAndRun(t, s, "w")
	s.Drain()
	if l := s.lease("late"); l.Granted || l.Done || l.RetryAfterMS <= 0 {
		t.Fatalf("draining server granted a lease: %+v", l)
	}
	if code, res := s.submit(submission(t, "w", lease.Chunk, lease.LeaseID, cp)); code != http.StatusOK || !res.Accepted {
		t.Fatalf("in-flight submission during drain: HTTP %d %q", code, res.Error)
	}
	if st := s.Status(); st.DoneChunks != 1 {
		t.Fatalf("drained server lost the submission: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmissionBodyCap: an oversized POST /v1/chunks body is refused
// with 413 before it buffers, and leaves the study able to proceed.
func TestSubmissionBodyCap(t *testing.T) {
	s := testServer(t, Config{ChunkSize: 2, MaxBodyBytes: 1024, Logf: t.Logf})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	big := append([]byte(`{"worker":"`), bytes.Repeat([]byte("x"), 4096)...)
	big = append(big, `"}`...)
	resp, err := http.Post(srv.URL+"/v1/chunks", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: HTTP %d, want 413", resp.StatusCode)
	}
	if st := s.Status(); st.DoneChunks != 0 || st.Failed != "" {
		t.Fatalf("oversized submission disturbed the study: %+v", st)
	}
}

// TestWorkerRetryWait pins the backoff envelope: exponential growth from
// RetryBase, every wait inside [d/2, d), capped at RetryCap, and
// deterministic for a fixed seed.
func TestWorkerRetryWait(t *testing.T) {
	w := &Worker{RetryBase: 100 * time.Millisecond, RetryCap: 2 * time.Second, RetrySeed: 7}
	exp := []time.Duration{100, 200, 400, 800, 1600, 2000, 2000, 2000}
	for n, d := range exp {
		d *= time.Millisecond
		got := w.retryWait(n)
		if got < d/2 || got >= d {
			t.Errorf("retryWait(%d) = %v, want in [%v, %v)", n, got, d/2, d)
		}
	}
	// Determinism: a second worker with the same seed replays the waits.
	a := &Worker{RetrySeed: 7}
	b := &Worker{RetrySeed: 7}
	for n := 0; n < 8; n++ {
		if wa, wb := a.retryWait(n), b.retryWait(n); wa != wb {
			t.Fatalf("retryWait(%d) not deterministic: %v vs %v", n, wa, wb)
		}
	}
}
